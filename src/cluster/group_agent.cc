#include "cluster/group_agent.h"

#include "cluster/cluster_manager.h"
#include "controller/flow_rule_store.h"
#include "net/packet.h"
#include "util/logging.h"

namespace zen::cluster {

using controller::Dpid;

bool GroupAgent::on_packet_in(const controller::PacketInEvent& event) {
  if (!event.parsed) return false;
  const net::ParsedPacket& pkt = *event.parsed;

  if (pkt.arp && pkt.arp->opcode == net::ArpMessage::kReply) {
    // L3Routing edge-floods every punted reply (bounded in an unscoped
    // view, explosive across borders): let each group flood a given reply
    // once, and consume the border leak-backs.
    return suppress_border_flood(pkt.arp->sender_ip, pkt.arp->target_ip,
                                 event.dpid, event.pin->in_port);
  }

  if (pkt.arp && pkt.arp->opcode == net::ArpMessage::kRequest) {
    const net::Ipv4Address target = pkt.arp->target_ip;
    // Local targets are L3Routing's proxy-ARP business.
    if (controller_->view().host_by_ip(target)) return false;
    // Engage only for targets the directory places OUTSIDE our scope.
    // Anything else — unknown everywhere, or local but not yet learned —
    // falls through to L3Routing's edge flood, which is how local hosts
    // get discovered in the first place.
    const auto* entry = cluster_.directory_lookup(target);
    if (!entry || controller_->view().in_scope(entry->info.dpid)) {
      return suppress_border_flood(pkt.arp->sender_ip, target, event.dpid,
                                   event.pin->in_port);
    }
    const auto it = granted_.find(target.value());
    if (it != granted_.end()) {
      // Already resolved: answer straight from the cached grant.
      const openflow::Bytes reply = net::build_arp_reply(
          it->second.dst_mac, target, pkt.arp->sender_mac, pkt.arp->sender_ip);
      openflow::PacketOut out;
      out.in_port = openflow::Ports::kController;
      out.actions.push_back(openflow::OutputAction{event.pin->in_port});
      out.data = reply;
      controller_->packet_out(event.dpid, out);
      ++stats_.proxy_arps;
      return true;
    }
    PendingFrame frame;
    frame.dpid = event.dpid;
    frame.in_port = event.pin->in_port;
    frame.is_arp = true;
    frame.src_mac = pkt.arp->sender_mac;
    frame.src_ip = pkt.arp->sender_ip;
    PendingRoute& pending = pending_[target.value()];
    if (pending.frames.size() < kMaxPendingFrames) {
      pending.frames.push_back(std::move(frame));
    }
    if (pending.frames.size() == 1 && pending.attempts == 0) {
      request_route(target);
    }
    return true;
  }

  if (pkt.ipv4) {
    const net::Ipv4Address dst = pkt.ipv4->dst;
    if (controller_->view().host_by_ip(dst)) return false;  // local business
    const auto it = granted_.find(dst.value());
    if (it != granted_.end()) {
      // Route granted; transit rules may still be in flight — walk the
      // frame one hop so nothing stalls on installation latency.
      forward_toward(event.dpid, event.pin->in_port, event.pin->data,
                     it->second.egress_dpid, it->second.egress_port);
      return true;
    }
    const auto* entry = cluster_.directory_lookup(dst);
    if (!entry || controller_->view().in_scope(entry->info.dpid)) {
      // Unknown everywhere, or local but not yet learned: not cluster
      // traffic — leave it to the local stack (bounding its edge flood).
      return suppress_border_flood(pkt.ipv4->src, dst, event.dpid,
                                   event.pin->in_port);
    }
    const auto pend_it = pending_.find(dst.value());
    const bool fresh = pend_it == pending_.end();
    PendingRoute& pending = pending_[dst.value()];
    PendingFrame frame;
    frame.dpid = event.dpid;
    frame.in_port = event.pin->in_port;
    frame.data = event.pin->data;
    if (pending.frames.size() < kMaxPendingFrames) {
      pending.frames.push_back(std::move(frame));
    }
    if (fresh) request_route(dst);
    return true;
  }

  return false;
}

bool GroupAgent::suppress_border_flood(net::Ipv4Address src,
                                       net::Ipv4Address dst,
                                       controller::Dpid dpid,
                                       std::uint32_t in_port) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(src.value()) << 32) | dst.value();
  const double now = cluster_.now();
  const auto it = flood_seen_.find(key);
  const bool duplicate =
      it != flood_seen_.end() && now - it->second < kFloodDedupWindowS;
  flood_seen_[key] = now;
  if (duplicate && cluster_.is_border_port(dpid, in_port)) {
    ++stats_.floods_suppressed;
    return true;  // consumed: this group already flooded it this window
  }
  return false;  // first sighting (or host retry): let the flood run once
}

void GroupAgent::on_host_discovered(const controller::HostInfo& host) {
  // Report upward under the switch's home group: after an adoption this
  // agent also hears hosts appearing on adopted switches. Weak (border)
  // ports never learn hosts, so every sighting reported here is a genuine
  // edge attachment.
  ++stats_.hosts_reported;
  cluster_.report_host(cluster_.group_of(host.dpid), host);
}

void GroupAgent::request_route(net::Ipv4Address dst) {
  auto it = pending_.find(dst.value());
  if (it == pending_.end()) return;
  ++it->second.attempts;
  ++stats_.route_requests;
  cluster_.request_route(group_, dst,
                         [this](const RouteGrant& grant) { on_grant(grant); });
  arm_retry(dst);
}

void GroupAgent::arm_retry(net::Ipv4Address dst) {
  controller_->events().schedule_in(kRetryDelayS, [this, dst] {
    auto it = pending_.find(dst.value());
    if (it == pending_.end()) return;  // granted meanwhile
    if (it->second.attempts >= kMaxRouteAttempts) {
      stats_.pending_dropped += it->second.frames.size();
      pending_.erase(it);
      ZEN_LOG(Warn) << "group_agent[" << group_ << "]: route to "
                    << dst.to_string() << " abandoned after "
                    << kMaxRouteAttempts << " attempts";
      return;
    }
    ++stats_.route_retries;
    ++it->second.attempts;
    ++stats_.route_requests;
    cluster_.request_route(group_, dst,
                           [this](const RouteGrant& grant) { on_grant(grant); });
    arm_retry(dst);
  });
}

void GroupAgent::on_grant(const RouteGrant& grant) {
  if (granted_.contains(grant.dst.value())) {
    pending_.erase(grant.dst.value());
    return;  // duplicate reply (retry raced the grant)
  }
  ++stats_.route_grants;
  granted_[grant.dst.value()] = grant;
  install_route_toward(grant.dst, grant.egress_dpid, grant.egress_port);
  auto it = pending_.find(grant.dst.value());
  if (it != pending_.end()) {
    for (const PendingFrame& frame : it->second.frames) {
      release_frame(frame, grant);
    }
    pending_.erase(it);
  }
}

void GroupAgent::release_frame(const PendingFrame& frame,
                               const RouteGrant& grant) {
  if (frame.is_arp) {
    const openflow::Bytes reply = net::build_arp_reply(
        grant.dst_mac, grant.dst, frame.src_mac, frame.src_ip);
    openflow::PacketOut out;
    out.in_port = openflow::Ports::kController;
    out.actions.push_back(openflow::OutputAction{frame.in_port});
    out.data = reply;
    controller_->packet_out(frame.dpid, out);
    ++stats_.proxy_arps;
    return;
  }
  forward_toward(frame.dpid, frame.in_port, frame.data, grant.egress_dpid,
                 grant.egress_port);
}

void GroupAgent::forward_toward(Dpid from, std::uint32_t in_port,
                                const openflow::Bytes& data, Dpid egress_dpid,
                                std::uint32_t egress_port) {
  std::uint32_t out_port = 0;
  if (from == egress_dpid) {
    out_port = egress_port;
  } else {
    const auto& hops =
        controller_->view().path_engine().next_hops(from, egress_dpid);
    if (hops.empty()) return;  // border unreachable from here; drop
    out_port = hops.front().out_port;
  }
  openflow::PacketOut out;
  out.in_port = in_port;
  out.actions.push_back(openflow::OutputAction{out_port});
  out.data = data;
  controller_->packet_out(from, out);
  ++stats_.first_packets_forwarded;
}

void GroupAgent::install_route_toward(net::Ipv4Address dst, Dpid egress_dpid,
                                      std::uint32_t egress_port) {
  for (const Dpid sw : controller_->view().switch_ids()) {
    std::uint32_t out_port = 0;
    if (sw == egress_dpid) {
      out_port = egress_port;
    } else {
      const auto& hops =
          controller_->view().path_engine().next_hops(sw, egress_dpid);
      if (hops.empty()) continue;
      out_port = hops.front().out_port;
    }
    openflow::FlowMod mod;
    mod.cookie = cookie_for(dst);
    mod.priority = cluster_.options().transit_priority;
    mod.match.eth_type(net::EtherType::kIpv4).ipv4_dst(dst, 32);
    mod.instructions = openflow::output_to(out_port);
    controller_->rule_store().install(sw, mod);
    ++stats_.transit_installs;
  }
}

}  // namespace zen::cluster
