// FailoverManager: heartbeat liveness over a set of controller slots.
//
// Every live controller publishes a beat each interval (the ClusterManager
// wires publishers that skip halted controllers). The manager's monitor
// tick runs at the same cadence and counts, per slot, consecutive
// intervals without a beat; at miss_limit the slot is declared dead
// exactly once and the on_down callback fires — that callback is where
// the cluster promotes a standby and re-homes the dead controller's
// groups. Detection latency is therefore bounded by
// (miss_limit + 1) * interval_s of virtual time.
//
// The manager itself is deliberately dumb: no network, no roles, no
// group knowledge — just beats in, verdicts out. That keeps the
// detection logic testable in isolation and reusable for any future
// membership (e.g. a root quorum).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.h"

namespace zen::cluster {

class FailoverManager {
 public:
  struct Options {
    double interval_s = 0.05;
    int miss_limit = 3;
  };

  // `on_down(idx)` fires exactly once per slot, at the tick that crossed
  // miss_limit.
  using DownFn = std::function<void(std::size_t idx)>;

  FailoverManager(sim::EventQueue& events, std::size_t slots, Options options,
                  DownFn on_down);

  // Arms the recurring monitor tick (idempotent).
  void start();

  // Records a heartbeat from slot `idx` at virtual-now.
  void beat(std::size_t idx);

  bool live(std::size_t idx) const;
  std::size_t live_count() const;
  // Total missed intervals observed across all slots (a dead slot stops
  // accumulating once declared down).
  std::uint64_t misses() const noexcept { return total_misses_; }
  // Upper bound on detection latency in virtual seconds.
  double detection_budget_s() const noexcept {
    return (options_.miss_limit + 1) * options_.interval_s;
  }
  const Options& options() const noexcept { return options_; }

 private:
  struct Slot {
    double last_beat_s = 0;
    int misses = 0;
    bool live = true;
  };

  void tick();

  sim::EventQueue& events_;
  Options options_;
  DownFn on_down_;
  std::vector<Slot> slots_;
  std::uint64_t total_misses_ = 0;
  bool started_ = false;
};

}  // namespace zen::cluster
