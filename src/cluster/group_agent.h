// GroupAgent: the delegated controller's cluster-facing app.
//
// Registered ahead of L3Routing in the app chain, it intercepts the two
// packet classes a group-local controller cannot resolve alone:
//
//   ARP requests for hosts outside the group's scoped view — answered by
//   proxy from the coordinator's host directory (one RPC round trip of
//   latency, never a cross-fabric flood).
//
//   IPv4 punts whose destination lives in another group — the first
//   packet is carried hop-by-hop toward the border while a /32 transit
//   route (cookie-tagged, below local-route priority) is requested from
//   the coordinator and installed through the FlowRuleStore so audits
//   own it like any other rule.
//
// Route RPCs are deliberately lossy during failover: the coordinator
// drops requests while halted, and the agent retries on a timer — the
// visible symptom of a coordinator crash is a short first-packet latency
// bump, never a blackhole. Everything the agent learns locally (hosts on
// its own switches) is reported upward so the directory survives the
// group controller that learned it.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "controller/controller.h"

namespace zen::cluster {

class ClusterManager;

// Coordinator's answer to a cross-group route request, scoped to the
// requesting group: which border switch/port to leave through, plus the
// directory identity of the destination (for proxy ARP).
struct RouteGrant {
  net::Ipv4Address dst;
  net::MacAddress dst_mac;
  std::size_t dst_group = 0;
  controller::Dpid egress_dpid = 0;  // border switch inside the requester group
  std::uint32_t egress_port = 0;     // its port on the border link
};

class GroupAgent : public controller::App {
 public:
  struct Stats {
    std::uint64_t proxy_arps = 0;
    std::uint64_t route_requests = 0;
    std::uint64_t route_retries = 0;
    std::uint64_t route_grants = 0;
    std::uint64_t transit_installs = 0;
    std::uint64_t first_packets_forwarded = 0;
    std::uint64_t hosts_reported = 0;
    std::uint64_t pending_dropped = 0;     // retries exhausted
    std::uint64_t floods_suppressed = 0;   // border ping-pong cut short
  };

  // Transit cookies live in their own namespace so a takeover audit can
  // tell cluster rules from app rules; the low 32 bits are the /32 itself,
  // making the cookie identical no matter which controller installed it —
  // an adopter's re-install converges instead of churning.
  static constexpr std::uint64_t kCookieBase = 0xC1D0ULL << 32;
  static constexpr std::uint64_t cookie_for(net::Ipv4Address dst) {
    return kCookieBase | dst.value();
  }

  GroupAgent(ClusterManager& cluster, std::size_t group)
      : cluster_(cluster), group_(group) {}

  std::string name() const override { return "group_agent"; }

  bool on_packet_in(const controller::PacketInEvent& event) override;
  void on_host_discovered(const controller::HostInfo& host) override;

  // Coordinator instruction: program the /32 toward the given border
  // egress on every switch currently in this controller's scope (which,
  // after an adoption, includes the adopted group). Used both for the
  // requesting group and for transit groups along the inter-group path.
  void install_route_toward(net::Ipv4Address dst, controller::Dpid egress_dpid,
                            std::uint32_t egress_port);

  std::size_t group() const noexcept { return group_; }
  const Stats& stats() const noexcept { return stats_; }

 private:
  struct PendingFrame {
    controller::Dpid dpid = 0;
    std::uint32_t in_port = 0;
    bool is_arp = false;
    net::MacAddress src_mac;       // ARP requester (for the proxy reply)
    net::Ipv4Address src_ip;
    openflow::Bytes data;          // original frame (IPv4 forwarding)
  };
  struct PendingRoute {
    std::vector<PendingFrame> frames;
    int attempts = 0;
  };

  static constexpr int kMaxRouteAttempts = 8;
  static constexpr double kRetryDelayS = 0.25;
  static constexpr std::size_t kMaxPendingFrames = 64;
  // An edge flood that leaks across a border comes back through every
  // other border link, and each group re-floods what it hasn't seen —
  // unchecked, the groups play exponential ping-pong. Each group floods a
  // given (src, dst) once per window; border re-arrivals are consumed.
  static constexpr double kFloodDedupWindowS = 0.5;

  // Returns true when this (src, dst) flood re-arrived on a border port
  // within the window and must be consumed instead of re-flooded.
  bool suppress_border_flood(net::Ipv4Address src, net::Ipv4Address dst,
                             controller::Dpid dpid, std::uint32_t in_port);

  void request_route(net::Ipv4Address dst);
  void arm_retry(net::Ipv4Address dst);
  void on_grant(const RouteGrant& grant);
  void release_frame(const PendingFrame& frame, const RouteGrant& grant);
  // Sends the frame one hop from `from` toward the border egress; each
  // subsequent punt repeats this until the transit rules land.
  void forward_toward(controller::Dpid from, std::uint32_t in_port,
                      const openflow::Bytes& data, controller::Dpid egress_dpid,
                      std::uint32_t egress_port);

  ClusterManager& cluster_;
  std::size_t group_;
  Stats stats_;
  std::unordered_map<std::uint32_t, PendingRoute> pending_;  // by dst ip
  std::unordered_map<std::uint32_t, RouteGrant> granted_;    // by dst ip
  std::unordered_map<std::uint64_t, double> flood_seen_;  // (src,dst) -> time
};

}  // namespace zen::cluster
