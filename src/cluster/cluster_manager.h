// ClusterManager: the clustered control plane (paper's "delegation to
// the edge" applied to the controller itself).
//
// One fabric, k + 1 controllers:
//
//   root (index 0)       pure coordinator. Unscoped view, Slave role on
//                        every switch, NO forwarding apps. Owns only the
//                        inter-group layer: the host directory, the
//                        abstract group graph built from border links,
//                        the cluster intent registry, and route RPCs.
//   delegates (1 + g)    one per partition group. Scoped NetworkView
//                        (only its group's switches are admitted), warm
//                        sessions to EVERY switch — Master on its own
//                        group, Slave elsewhere — running the ordinary
//                        app stack (Discovery, GroupAgent, L3Routing,
//                        IntentManager, InvariantMonitor) against its
//                        group alone.
//
// Failure handling (the tentpole):
//
//   root dies       the lowest-indexed live delegate becomes coordinator
//                   (the directory/registry are replicated config, not
//                   runtime state — any survivor can serve them). Route
//                   RPCs in the detection window are lost; GroupAgents
//                   retry. Intra-group forwarding never notices.
//
//   delegate dies   detected by heartbeat misses; every group it owned is
//                   adopted by the lowest-indexed live delegate: scope
//                   grows, features are refreshed (firing on_switch_up
//                   into the adopter's apps), Master is claimed with a
//                   bumped election epoch (fencing the dead master's late
//                   writes at the switches), directory hosts are imported,
//                   registry intents are re-homed via IntentManager::adopt
//                   (Degraded stays parked — no recompile storm), and
//                   every adopted switch is re-audited through the
//                   FlowRuleStore, then re-traced by the InvariantMonitor.
//
// Every takeover is measured (TakeoverRecord), scored against the
// "cluster_takeover" SLO, counted in zen_cluster_* metrics and dropped
// into the flight recorder (kControllerDown / kTakeover).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cluster/failover.h"
#include "cluster/group_agent.h"
#include "controller/controller.h"
#include "intent/intent.h"
#include "topo/partition.h"

namespace zen::controller::apps {
class L3Routing;
}
namespace zen::intent {
class IntentManager;
}
namespace zen::diag {
class InvariantMonitor;
}

namespace zen::cluster {

struct ClusterOptions {
  std::size_t n_groups = 2;
  std::uint64_t partition_seed = 1;

  // Controller-to-controller heartbeat cadence and tolerance; detection
  // latency is bounded by (miss_limit + 1) * interval.
  double heartbeat_interval_s = 0.05;
  int heartbeat_miss_limit = 3;

  // One-way latency of a coordinator RPC (route requests, directory
  // imports). Requests reaching a halted coordinator are lost.
  double rpc_latency_s = 200e-6;

  // Priority of cross-group /32 transit routes — below L3Routing's local
  // routes so a group-local destination always wins.
  std::uint16_t transit_priority = 90;

  // Takeover duration above this threshold burns the cluster_takeover SLO.
  double takeover_slo_threshold_s = 1.0;

  bool enable_invariant_monitor = true;
  controller::Controller::Options controller;
};

// One takeover, end to end: from the down verdict to the last adopted
// switch's audit verdict.
struct TakeoverRecord {
  std::size_t group = 0;
  std::size_t adopter = 0;  // controller index
  double started_s = 0;
  double finished_s = -1;  // -1: still in progress
  bool roles_granted = false;
  bool audits_converged = false;
  std::size_t switches = 0;
  std::size_t intents_adopted = 0;

  double duration_s() const noexcept {
    return finished_s < 0 ? -1 : finished_s - started_s;
  }
  bool complete() const noexcept {
    return finished_s >= 0 && roles_granted && audits_converged;
  }
};

class ClusterManager {
 public:
  struct DirectoryEntry {
    controller::HostInfo info;
    std::size_t group = 0;
  };

  ClusterManager(sim::SimNetwork& net, ClusterOptions options);
  ~ClusterManager();

  // Connects every controller, claims the initial role layout (Master on
  // own group, Slave elsewhere, root Slave everywhere) and arms the
  // heartbeat mesh. Pump events afterwards: net.run_until(...).
  void start();

  // ---- topology ----
  const topo::Partition& partition() const noexcept { return part_; }
  const std::vector<topo::BorderLink>& borders() const noexcept {
    return borders_;
  }
  std::size_t group_of(controller::Dpid dpid) const;
  // True when (dpid, port) is an endpoint of a border link. Scoped views
  // cannot tell border ports from edge ports (the far switch is outside
  // scope), so cluster code asks the partition instead.
  bool is_border_port(controller::Dpid dpid, std::uint32_t port) const;

  // ---- controllers (index 0 = root, 1 + g = delegate of group g) ----
  std::size_t controller_count() const noexcept { return controllers_.size(); }
  controller::Controller& root() { return *controllers_[0]; }
  controller::Controller& delegate(std::size_t group) {
    return *controllers_[1 + group];
  }
  controller::Controller& controller_at(std::size_t idx) {
    return *controllers_[idx];
  }
  // The delegate apps of controller `idx` (nullptr for the root).
  GroupAgent* agent_at(std::size_t idx) { return agents_[idx]; }
  intent::IntentManager* intents_at(std::size_t idx) { return intents_[idx]; }
  diag::InvariantMonitor* monitor_at(std::size_t idx) { return monitors_[idx]; }

  // ---- failure injection ----
  // Halts the controller; heartbeat misses then drive detection, election
  // and adoption.
  void kill_controller(std::size_t idx);
  // Partitions the controller off the cluster WITHOUT halting it: beats
  // stop (so detection and adoption run exactly as for a crash) but its
  // process keeps running and believes itself master — the split-brain
  // case. Every write it issues after the adopter's epoch bump must be
  // fenced at the switches; that rejection stream is the proof.
  void isolate_controller(std::size_t idx);
  bool isolated(std::size_t idx) const {
    return idx < isolated_.size() && isolated_[idx];
  }

  std::size_t coordinator() const noexcept { return coordinator_; }
  // Controller index currently mastering group `g`.
  std::size_t owner_of(std::size_t group) const { return owner_[group]; }
  FailoverManager& failover() noexcept { return *failover_; }

  // ---- coordinator services ----
  void report_host(std::size_t group, const controller::HostInfo& info);
  const DirectoryEntry* directory_lookup(net::Ipv4Address ip) const;
  std::size_t directory_size() const noexcept { return directory_.size(); }
  using RouteFn = std::function<void(const RouteGrant&)>;
  // Asks the coordinator for a cross-group route. `done` fires after a
  // round trip of rpc_latency — or never, if the coordinator is halted or
  // the destination unknown (callers retry; see GroupAgent).
  void request_route(std::size_t src_group, net::Ipv4Address dst,
                     RouteFn done);

  // ---- cluster northbound (intents survive their owner's death) ----
  std::uint64_t submit_intent(std::size_t group, intent::IntentSpec spec);
  intent::IntentState intent_state(std::uint64_t cluster_id) const;

  // ---- observability ----
  const std::vector<TakeoverRecord>& takeovers() const noexcept {
    return takeovers_;
  }
  const ClusterOptions& options() const noexcept { return options_; }
  sim::EventQueue& events() noexcept;
  double now() const noexcept;

 private:
  struct RegisteredIntent {
    std::uint64_t cluster_id = 0;
    std::size_t group = 0;
    std::size_t owner = 0;  // controller index
    intent::IntentId local_id = 0;
    intent::IntentSpec spec;
    // Owner-reported state, refreshed on every heartbeat (the piggyback
    // sync); what adoption hands to IntentManager::adopt.
    intent::IntentState last_state = intent::IntentState::Pending;
  };

  void build_partition();
  void build_controllers();
  void claim_initial_roles();
  void cluster_tick();
  void sync_intent_states(std::size_t owner_idx);
  void on_controller_down(std::size_t idx);
  std::size_t elect_coordinator() const;
  std::size_t pick_adopter(std::size_t dead_idx) const;
  void adopt_group(std::size_t group, std::size_t adopter_idx);
  void adopt_intents(std::size_t group, std::size_t adopter_idx,
                     std::size_t takeover_idx);
  void finish_takeover(std::size_t takeover_idx, bool audits_converged);
  // Shortest group-level path (BFS over border adjacency), deterministic.
  std::vector<std::size_t> group_route(std::size_t from, std::size_t to) const;
  const topo::BorderLink* border_between(std::size_t a, std::size_t b) const;

  sim::SimNetwork& net_;
  ClusterOptions options_;
  topo::Partition part_;
  std::vector<topo::BorderLink> borders_;
  std::vector<std::vector<std::size_t>> group_adj_;
  std::vector<std::unique_ptr<controller::Controller>> controllers_;
  // Parallel to controllers_ (nullptr at index 0 / the root).
  std::vector<GroupAgent*> agents_;
  std::vector<controller::apps::L3Routing*> l3_;
  std::vector<intent::IntentManager*> intents_;
  std::vector<diag::InvariantMonitor*> monitors_;
  std::unique_ptr<FailoverManager> failover_;
  std::vector<std::size_t> owner_;  // group -> controller index
  std::size_t coordinator_ = 0;
  std::uint64_t election_epoch_ = 1;
  std::unordered_map<std::uint32_t, DirectoryEntry> directory_;  // by ip
  std::vector<RegisteredIntent> registry_;
  std::uint64_t next_cluster_intent_ = 1;
  std::vector<TakeoverRecord> takeovers_;
  std::vector<bool> isolated_;
  std::uint64_t last_misses_ = 0;
  bool started_ = false;
};

}  // namespace zen::cluster
