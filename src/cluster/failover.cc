#include "cluster/failover.h"

#include "util/logging.h"

namespace zen::cluster {

FailoverManager::FailoverManager(sim::EventQueue& events, std::size_t slots,
                                 Options options, DownFn on_down)
    : events_(events),
      options_(options),
      on_down_(std::move(on_down)),
      slots_(slots) {
  for (auto& slot : slots_) slot.last_beat_s = events_.now();
}

void FailoverManager::start() {
  if (started_) return;
  started_ = true;
  events_.schedule_in(options_.interval_s, [this] { tick(); });
}

void FailoverManager::beat(std::size_t idx) {
  if (idx >= slots_.size()) return;
  Slot& slot = slots_[idx];
  slot.last_beat_s = events_.now();
  if (slot.live) slot.misses = 0;
}

bool FailoverManager::live(std::size_t idx) const {
  return idx < slots_.size() && slots_[idx].live;
}

std::size_t FailoverManager::live_count() const {
  std::size_t n = 0;
  for (const auto& slot : slots_) n += slot.live ? 1 : 0;
  return n;
}

void FailoverManager::tick() {
  const double now = events_.now();
  // A beat published this interval arrived strictly within the last
  // interval_s; the 1.5x grace absorbs same-instant event ordering
  // between a publisher and this tick.
  const double stale_after = options_.interval_s * 1.5;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (!slot.live) continue;
    if (now - slot.last_beat_s <= stale_after) continue;
    ++slot.misses;
    ++total_misses_;
    if (slot.misses < options_.miss_limit) continue;
    slot.live = false;
    ZEN_LOG(Warn) << "failover: controller slot " << i << " declared dead ("
                  << slot.misses << " missed beats)";
    if (on_down_) on_down_(i);
  }
  events_.schedule_in(options_.interval_s, [this] { tick(); });
}

}  // namespace zen::cluster
