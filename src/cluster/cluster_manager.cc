#include "cluster/cluster_manager.h"

#include <algorithm>
#include <cstdio>

#include "controller/apps/discovery.h"
#include "controller/apps/l3_routing.h"
#include "controller/flow_rule_store.h"
#include "diag/invariant_monitor.h"
#include "intent/intent_manager.h"
#include "obs/obs.h"
#include "util/logging.h"

namespace zen::cluster {

using controller::Dpid;
using openflow::ControllerRole;

namespace {

struct ClusterMetrics {
  obs::Counter& controller_down;
  obs::Counter& takeovers;
  obs::Counter& route_requests;
  obs::Counter& route_grants;
  obs::Counter& heartbeat_misses;
  obs::Counter& intents_adopted;
  obs::Gauge& groups;
  obs::Gauge& live_controllers;

  static ClusterMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static ClusterMetrics m{
        reg.counter("zen_cluster_controller_down_total", "",
                    "controllers declared dead by heartbeat misses"),
        reg.counter("zen_cluster_takeovers_total", "",
                    "group adoptions completed"),
        reg.counter("zen_cluster_route_requests_total", "",
                    "cross-group route RPCs received"),
        reg.counter("zen_cluster_route_grants_total", "",
                    "cross-group route RPCs answered"),
        reg.counter("zen_cluster_heartbeat_misses_total", "",
                    "missed controller heartbeat intervals"),
        reg.counter("zen_cluster_intents_adopted_total", "",
                    "intents re-homed during takeovers"),
        reg.gauge("zen_cluster_groups", "", "partition group count"),
        reg.gauge("zen_cluster_live_controllers", "",
                  "controllers currently believed live"),
    };
    return m;
  }
};

}  // namespace

ClusterManager::ClusterManager(sim::SimNetwork& net, ClusterOptions options)
    : net_(net), options_(options) {
  build_partition();
  build_controllers();
  failover_ = std::make_unique<FailoverManager>(
      net_.events(), controllers_.size(),
      FailoverManager::Options{options_.heartbeat_interval_s,
                               options_.heartbeat_miss_limit},
      [this](std::size_t idx) { on_controller_down(idx); });
  ClusterMetrics::get().groups.set(static_cast<double>(part_.size()));
  ClusterMetrics::get().live_controllers.set(
      static_cast<double>(controllers_.size()));
}

ClusterManager::~ClusterManager() = default;

sim::EventQueue& ClusterManager::events() noexcept { return net_.events(); }
double ClusterManager::now() const noexcept { return net_.now(); }

void ClusterManager::build_partition() {
  const auto& switches = net_.generated().switches;
  std::vector<topo::NodeId> nodes(switches.begin(), switches.end());
  topo::PartitionOptions popts;
  popts.n_groups = options_.n_groups;
  popts.seed = options_.partition_seed;
  part_ = topo::partition_switches(net_.topology(), nodes, popts);
  borders_ = topo::border_links(net_.topology(), part_);
  group_adj_.assign(part_.size(), {});
  for (const topo::BorderLink& bl : borders_) {
    group_adj_[bl.a_group].push_back(bl.b_group);
    group_adj_[bl.b_group].push_back(bl.a_group);
  }
  for (auto& adj : group_adj_) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }
}

void ClusterManager::build_controllers() {
  const std::size_t k = part_.size();
  controllers_.reserve(1 + k);
  agents_.assign(1 + k, nullptr);
  l3_.assign(1 + k, nullptr);
  intents_.assign(1 + k, nullptr);
  monitors_.assign(1 + k, nullptr);
  isolated_.assign(1 + k, false);
  owner_.resize(k);

  // Root: pure coordinator. Unscoped view, no forwarding apps — as a
  // Slave everywhere its writes would only bounce off role fencing.
  controllers_.push_back(
      std::make_unique<controller::Controller>(net_, options_.controller));

  for (std::size_t g = 0; g < k; ++g) {
    auto ctrl =
        std::make_unique<controller::Controller>(net_, options_.controller);
    std::vector<Dpid> scope(part_.groups[g].begin(), part_.groups[g].end());
    ctrl->view().restrict_scope(scope);
    ctrl->add_app<controller::apps::Discovery>();
    // GroupAgent ahead of L3Routing: cross-group punts must be claimed
    // before the local stack tries (and fails) to resolve them.
    agents_[1 + g] = &ctrl->add_app<GroupAgent>(*this, g);
    l3_[1 + g] = &ctrl->add_app<controller::apps::L3Routing>();
    intents_[1 + g] = &ctrl->add_app<intent::IntentManager>();
    if (options_.enable_invariant_monitor) {
      monitors_[1 + g] =
          &ctrl->add_app<diag::InvariantMonitor>(net_, *intents_[1 + g]);
    }
    owner_[g] = 1 + g;
    controllers_.push_back(std::move(ctrl));
  }

  // Border-link endpoints are weak ports in every view: leaked floods
  // never learn hosts there, so cross-group reachability flows through
  // the coordinator (directory + route RPC) alone.
  for (const auto& ctrl : controllers_) {
    for (const topo::BorderLink& link : borders_) {
      ctrl->view().mark_weak_port(link.a, link.a_port);
      ctrl->view().mark_weak_port(link.b, link.b_port);
    }
  }
}

void ClusterManager::start() {
  if (started_) return;
  started_ = true;
  for (auto& ctrl : controllers_) ctrl->connect_all();
  events().schedule_in(0.3, [this] { claim_initial_roles(); });
  failover_->start();
  // Beats interleave between monitor ticks (half-interval offset) so a
  // live controller is never a same-instant race away from "stale".
  events().schedule_in(options_.heartbeat_interval_s * 0.5,
                       [this] { cluster_tick(); });
}

void ClusterManager::claim_initial_roles() {
  controllers_[0]->request_role_all(
      ControllerRole::Slave, election_epoch_,
      [](const controller::Controller::RoleAllResult& r) {
        if (!r.all_granted()) {
          ZEN_LOG(Warn) << "cluster: root slave claim incomplete ("
                        << r.refused.size() << " refused, " << r.down.size()
                        << " down)";
        }
      });
  const auto& switches = net_.generated().switches;
  for (std::size_t g = 0; g < part_.size(); ++g) {
    std::vector<Dpid> own(part_.groups[g].begin(), part_.groups[g].end());
    std::vector<Dpid> others;
    for (const topo::NodeId sw : switches) {
      if (part_.group_of.at(sw) != g) others.push_back(sw);
    }
    delegate(g).request_role_many(
        own, ControllerRole::Master, election_epoch_,
        [g](const controller::Controller::RoleAllResult& r) {
          if (!r.all_granted()) {
            ZEN_LOG(Warn) << "cluster: delegate " << g
                          << " master claim incomplete";
          }
        });
    delegate(g).request_role_many(others, ControllerRole::Slave,
                                  election_epoch_);
  }
}

void ClusterManager::cluster_tick() {
  for (std::size_t i = 0; i < controllers_.size(); ++i) {
    if (controllers_[i]->halted() || isolated_[i]) continue;
    failover_->beat(i);
    if (i > 0) sync_intent_states(i);
  }
  const std::uint64_t misses = failover_->misses();
  if (misses > last_misses_) {
    ClusterMetrics::get().heartbeat_misses.inc(misses - last_misses_);
    last_misses_ = misses;
  }
  ClusterMetrics::get().live_controllers.set(
      static_cast<double>(failover_->live_count()));
  events().schedule_in(options_.heartbeat_interval_s,
                       [this] { cluster_tick(); });
}

void ClusterManager::sync_intent_states(std::size_t owner_idx) {
  intent::IntentManager* mgr = intents_[owner_idx];
  if (!mgr) return;
  for (RegisteredIntent& entry : registry_) {
    if (entry.owner != owner_idx) continue;
    entry.last_state = mgr->state(entry.local_id);
  }
}

std::size_t ClusterManager::group_of(Dpid dpid) const {
  const auto it = part_.group_of.find(dpid);
  return it == part_.group_of.end() ? 0 : it->second;
}

bool ClusterManager::is_border_port(Dpid dpid, std::uint32_t port) const {
  for (const topo::BorderLink& link : borders_) {
    if ((link.a == dpid && link.a_port == port) ||
        (link.b == dpid && link.b_port == port)) {
      return true;
    }
  }
  return false;
}

void ClusterManager::kill_controller(std::size_t idx) {
  if (idx >= controllers_.size()) return;
  controllers_[idx]->halt();
}

void ClusterManager::isolate_controller(std::size_t idx) {
  if (idx >= controllers_.size()) return;
  isolated_[idx] = true;
  ZEN_LOG(Warn) << "cluster: controller " << idx
                << " partitioned from the cluster (still running)";
}

std::size_t ClusterManager::elect_coordinator() const {
  if (failover_->live(0)) return 0;
  for (std::size_t i = 1; i < controllers_.size(); ++i) {
    if (failover_->live(i)) return i;
  }
  return 0;  // everyone dead; nothing left to coordinate
}

std::size_t ClusterManager::pick_adopter(std::size_t dead_idx) const {
  for (std::size_t i = 1; i < controllers_.size(); ++i) {
    if (i != dead_idx && failover_->live(i)) return i;
  }
  return 0;
}

void ClusterManager::on_controller_down(std::size_t idx) {
  ClusterMetrics::get().controller_down.inc();
  obs::FlightRecorder::global().record(obs::FlightEventKind::kControllerDown,
                                       idx, idx, "heartbeat");
  ZEN_LOG(Warn) << "cluster: controller " << idx
                << (idx == 0 ? " (root)" : " (delegate)") << " is down";

  if (idx == coordinator_) {
    coordinator_ = elect_coordinator();
    ZEN_LOG(Info) << "cluster: coordinator moved to controller "
                  << coordinator_;
  }
  if (idx == 0) return;  // root owned no switches; election was the takeover

  const std::size_t adopter = pick_adopter(idx);
  if (adopter == 0) {
    ZEN_LOG(Error) << "cluster: no live delegate left to adopt groups of "
                   << idx;
    return;
  }
  for (std::size_t g = 0; g < owner_.size(); ++g) {
    if (owner_[g] == idx) adopt_group(g, adopter);
  }
}

void ClusterManager::adopt_group(std::size_t group, std::size_t adopter_idx) {
  TakeoverRecord rec;
  rec.group = group;
  rec.adopter = adopter_idx;
  rec.started_s = now();
  rec.switches = part_.groups[group].size();
  takeovers_.push_back(rec);
  const std::size_t takeover_idx = takeovers_.size() - 1;
  obs::FlightRecorder::global().record(obs::FlightEventKind::kTakeover, group,
                                       adopter_idx, "begin");
  owner_[group] = adopter_idx;

  controller::Controller& ctrl = *controllers_[adopter_idx];
  const std::uint64_t epoch = ++election_epoch_;
  const std::vector<Dpid> dpids(part_.groups[group].begin(),
                                part_.groups[group].end());

  // 1. Grow the scoped view, seed it with the group's static wiring (the
  //    partition is cluster config; links between adopted switches are
  //    known without waiting a discovery round).
  for (const Dpid dpid : dpids) ctrl.view().add_to_scope(dpid);
  for (const topo::Link* link : net_.topology().links()) {
    const auto a = part_.group_of.find(link->a);
    const auto b = part_.group_of.find(link->b);
    if (a == part_.group_of.end() || b == part_.group_of.end()) continue;
    if (a->second != group || b->second != group) continue;
    ctrl.view().learn_link(link->a, link->a_port, link->b, link->b_port, now());
  }

  // 2. Refresh features: the replies admit the switches into the grown
  //    view and fire on_switch_up into the adopter's apps (L3Routing
  //    starts recomputing, the monitor schedules a re-check).
  for (const Dpid dpid : dpids) ctrl.refresh_features(dpid);

  // 3. Import the group's hosts from the coordinator directory (one RPC
  //    of latency; lost if the coordinator just died too — discovery
  //    re-learns organically in that case).
  events().schedule_in(options_.rpc_latency_s,
                       [this, adopter_idx, group] {
                         controller::Controller& c = *controllers_[adopter_idx];
                         if (c.halted()) return;
                         for (const auto& [ip, entry] : directory_) {
                           if (entry.group == group) c.notify_host(entry.info);
                         }
                       });

  // 4. Claim Master with a bumped election epoch — from here the dead
  //    master's generation id is stale and every late write it issues is
  //    fenced at the switch.
  ctrl.request_role_many(
      dpids, ControllerRole::Master, epoch,
      [this, takeover_idx, adopter_idx, group,
       dpids](const controller::Controller::RoleAllResult& result) {
        takeovers_[takeover_idx].roles_granted = result.all_granted();
        obs::FlightRecorder::global().record(obs::FlightEventKind::kTakeover,
                                             group, adopter_idx, "roles");
        // 5. Re-home the registry's intents for this group. Deferred a
        //    hair so the refresh-triggered on_switch_up storm has passed:
        //    a Degraded prior must land parked, not get recompiled by the
        //    very events that adopted it.
        events().schedule_in(0.02, [this, takeover_idx, adopter_idx, group] {
          adopt_intents(group, adopter_idx, takeover_idx);
        });
        // 6. Re-audit every adopted switch: reconcile the dead master's
        //    leftovers against the adopter's intended state.
        auto remaining = std::make_shared<std::size_t>(result.granted.size());
        auto converged = std::make_shared<bool>(true);
        if (result.granted.empty()) {
          finish_takeover(takeover_idx, false);
          return;
        }
        for (const Dpid dpid : result.granted) {
          controllers_[adopter_idx]->rule_store().audit(
              dpid, [this, takeover_idx, remaining,
                     converged](const controller::AuditReport& report) {
                if (!report.converged) *converged = false;
                if (--*remaining == 0) {
                  finish_takeover(takeover_idx, *converged);
                }
              });
        }
      });
}

void ClusterManager::adopt_intents(std::size_t group, std::size_t adopter_idx,
                                   std::size_t takeover_idx) {
  intent::IntentManager* mgr = intents_[adopter_idx];
  if (!mgr) return;
  for (RegisteredIntent& entry : registry_) {
    if (entry.group != group) continue;
    if (entry.owner == adopter_idx) continue;
    if (!controllers_[entry.owner]->halted() && !isolated_[entry.owner]) {
      continue;  // owner still fine
    }
    entry.local_id = mgr->adopt(entry.spec, entry.last_state);
    entry.owner = adopter_idx;
    ++takeovers_[takeover_idx].intents_adopted;
    ClusterMetrics::get().intents_adopted.inc();
  }
}

void ClusterManager::finish_takeover(std::size_t takeover_idx,
                                     bool audits_converged) {
  TakeoverRecord& rec = takeovers_[takeover_idx];
  rec.finished_s = now();
  rec.audits_converged = audits_converged;
  ClusterMetrics::get().takeovers.inc();
  obs::FlightRecorder::global().record(obs::FlightEventKind::kTakeover,
                                       rec.group, rec.adopter,
                                       rec.complete() ? "done" : "incomplete");
  obs::SloMonitor::global()
      .objective({.name = "cluster_takeover",
                  .target = 0.99,
                  .latency_threshold_s = options_.takeover_slo_threshold_s})
      .record_latency(rec.duration_s());
  ZEN_LOG(Info) << "cluster: group " << rec.group << " adopted by controller "
                << rec.adopter << " in " << rec.duration_s() << "s"
                << (rec.complete() ? "" : " (INCOMPLETE)");
  // Close the loop: the adopter's invariant monitor re-traces every
  // intent through the now-merged dataplane.
  if (diag::InvariantMonitor* monitor = monitors_[rec.adopter]) {
    events().schedule_in(0.06, [monitor] { monitor->maybe_check(); });
  }
}

void ClusterManager::report_host(std::size_t group,
                                 const controller::HostInfo& info) {
  // The directory is IP-keyed; a host sighted before it spoke IP (or ARP)
  // has nothing to file under yet.
  if (info.ip == net::Ipv4Address{}) return;
  auto [it, inserted] =
      directory_.try_emplace(info.ip.value(), DirectoryEntry{info, group});
  if (inserted) return;
  // First writer wins across groups (border sightings must not relocate
  // a host); same-group refreshes keep the record current.
  if (it->second.group == group) it->second.info = info;
}

const ClusterManager::DirectoryEntry* ClusterManager::directory_lookup(
    net::Ipv4Address ip) const {
  const auto it = directory_.find(ip.value());
  return it == directory_.end() ? nullptr : &it->second;
}

void ClusterManager::request_route(std::size_t src_group, net::Ipv4Address dst,
                                   RouteFn done) {
  ClusterMetrics::get().route_requests.inc();
  events().schedule_in(options_.rpc_latency_s, [this, src_group, dst,
                                                done = std::move(done)] {
    // The RPC lands on the coordinator; a dead or partitioned coordinator
    // silently loses it (callers retry — that gap IS the failover story).
    if (controllers_[coordinator_]->halted() || isolated_[coordinator_]) {
      return;
    }
    const auto it = directory_.find(dst.value());
    if (it == directory_.end() || it->second.group == src_group) return;
    const std::vector<std::size_t> path =
        group_route(src_group, it->second.group);
    if (path.size() < 2) return;

    // Transit groups along the way get their own install instruction
    // (one more RPC hop of latency each).
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      const topo::BorderLink* border = border_between(path[i], path[i + 1]);
      if (!border) continue;
      const bool a_side = border->a_group == path[i];
      const Dpid egress_dpid = a_side ? border->a : border->b;
      const std::uint32_t egress_port = a_side ? border->a_port : border->b_port;
      const std::size_t owner_idx = owner_[path[i]];
      events().schedule_in(
          options_.rpc_latency_s,
          [this, owner_idx, dst, egress_dpid, egress_port] {
            GroupAgent* agent = agents_[owner_idx];
            if (!agent || controllers_[owner_idx]->halted()) return;
            agent->install_route_toward(dst, egress_dpid, egress_port);
          });
    }

    const topo::BorderLink* first = border_between(path[0], path[1]);
    if (!first) return;
    const bool a_side = first->a_group == path[0];
    RouteGrant grant;
    grant.dst = dst;
    grant.dst_mac = it->second.info.mac;
    grant.dst_group = it->second.group;
    grant.egress_dpid = a_side ? first->a : first->b;
    grant.egress_port = a_side ? first->a_port : first->b_port;
    ClusterMetrics::get().route_grants.inc();
    events().schedule_in(options_.rpc_latency_s,
                         [done, grant] { done(grant); });
  });
}

std::vector<std::size_t> ClusterManager::group_route(std::size_t from,
                                                     std::size_t to) const {
  if (from >= group_adj_.size() || to >= group_adj_.size()) return {};
  if (from == to) return {from};
  std::vector<std::size_t> parent(group_adj_.size(), SIZE_MAX);
  std::vector<std::size_t> queue{from};
  parent[from] = from;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::size_t g = queue[head];
    for (const std::size_t next : group_adj_[g]) {
      if (parent[next] != SIZE_MAX) continue;
      parent[next] = g;
      if (next == to) {
        std::vector<std::size_t> path{to};
        for (std::size_t cur = to; cur != from; cur = parent[cur]) {
          path.push_back(parent[cur]);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(next);
    }
  }
  return {};
}

const topo::BorderLink* ClusterManager::border_between(std::size_t a,
                                                       std::size_t b) const {
  // borders_ is sorted by link id; the first match is the deterministic
  // choice every controller would make.
  for (const topo::BorderLink& border : borders_) {
    if ((border.a_group == a && border.b_group == b) ||
        (border.a_group == b && border.b_group == a)) {
      return &border;
    }
  }
  return nullptr;
}

std::uint64_t ClusterManager::submit_intent(std::size_t group,
                                            intent::IntentSpec spec) {
  const std::size_t owner_idx = owner_[group];
  intent::IntentManager* mgr = intents_[owner_idx];
  RegisteredIntent entry;
  entry.cluster_id = next_cluster_intent_++;
  entry.group = group;
  entry.owner = owner_idx;
  entry.spec = spec;
  entry.local_id = mgr->submit(std::move(spec));
  entry.last_state = mgr->state(entry.local_id);
  registry_.push_back(std::move(entry));
  return registry_.back().cluster_id;
}

intent::IntentState ClusterManager::intent_state(
    std::uint64_t cluster_id) const {
  for (const RegisteredIntent& entry : registry_) {
    if (entry.cluster_id != cluster_id) continue;
    if (!controllers_[entry.owner]->halted() && !isolated_[entry.owner] &&
        intents_[entry.owner]) {
      return intents_[entry.owner]->state(entry.local_id);
    }
    return entry.last_state;
  }
  return intent::IntentState::Withdrawn;
}

}  // namespace zen::cluster
