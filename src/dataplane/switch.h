// Switch: the software forwarding plane (Open vSwitch analog).
//
// A Switch owns a multi-table pipeline, a group table, a meter table, a
// megaflow cache and a set of ports. It exposes a *typed* control surface
// (flow_mod, group_mod, stats, ...) — the wire-protocol agent that speaks
// the southbound channel lives in the controller module and translates
// messages to these calls. This keeps dataplane semantics testable without
// any protocol plumbing.
//
// Time is explicit: every packet- or rule-touching call takes `now`
// (seconds on the caller's clock — virtual under simulation).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dataplane/explain.h"
#include "dataplane/flow_table.h"
#include "dataplane/group_table.h"
#include "dataplane/megaflow_cache.h"
#include "dataplane/meter_table.h"
#include "dataplane/packet_rewrite.h"
#include "obs/shard_stats.h"
#include "openflow/codec.h"
#include "openflow/table_status.h"
#include "util/token_bucket.h"

namespace zen::telemetry {
class SwitchTelemetry;
}

namespace zen::obs {
class Gauge;
}

namespace zen::dataplane {

enum class MissBehavior : std::uint8_t { Drop, PacketIn };

// What the switch does about forwarding when its controller session dies
// (OVS fail-mode analog). The dataplane only carries the knob; the
// switch-side agent (controller::SwitchAgent) detects the silence and
// installs/removes the standalone fallback rule.
enum class FailMode : std::uint8_t {
  Secure,      // freeze: keep the installed tables, punt nothing new
  Standalone,  // install a low-priority NORMAL-forwarding fallback rule
               // until the controller returns
};

struct SwitchConfig {
  std::uint8_t n_tables = 4;
  LookupMode lookup_mode = LookupMode::TupleSpace;
  std::size_t cache_capacity = 65536;
  bool cache_enabled = true;
  // What a table-0 miss does when no table-miss entry is installed.
  MissBehavior default_miss = MissBehavior::PacketIn;
  std::size_t packet_buffer_slots = 256;
  // miss_send_len: how many bytes of the frame ride inside a PacketIn.
  std::uint16_t packet_in_bytes = 128;
  // Controller-protection: max PacketIns per second the switch will emit
  // (0 = unlimited). Excess punts are dropped and counted.
  double packet_in_rate_pps = 0;
  // Per-table rule capacity (0 = unlimited). FlowMod Adds beyond it fail
  // with TableFull — the hardware-table constraint SWAN-class systems
  // engineer around.
  std::size_t table_capacity = 0;
  // What a full table does with an incoming Add (meaningless when
  // table_capacity == 0). Victims leave as FlowRemoved/Eviction.
  EvictionPolicy eviction = EvictionPolicy::Off;
  // OVS-style vacancy events: a TableStatus fires when a table's free
  // space falls to <= vacancy_down_pct percent of capacity, and again when
  // it recovers to >= vacancy_up_pct. Both 0 = disabled; keep
  // down < up for hysteresis.
  std::uint8_t vacancy_down_pct = 0;
  std::uint8_t vacancy_up_pct = 0;
  // Controller-loss behavior, acted on by the switch-side agent after
  // fail_timeout_s of controller silence (0 disables detection entirely).
  FailMode fail_mode = FailMode::Secure;
  double fail_timeout_s = 0;
  // Lock-free lookup structures: sharded megaflow ways (epoch-reclaimed on
  // version bumps) and flow-table read snapshots. Lets lookups race rule
  // churn safely when the sharded packet engine drives switches from
  // worker threads. Off by default: the classic structures are faster
  // single-threaded and their eviction behavior is the documented one.
  bool concurrent_lookup = false;
  std::size_t cache_ways = 4;
};

struct Egress {
  std::uint32_t port = 0;
  // Queue the frame was directed to by a preceding SetQueue action.
  // Convention: 0 = best-effort (default), >= 1 = priority class.
  std::uint32_t queue_id = 0;
  net::Bytes frame;
};

struct ForwardResult {
  std::vector<Egress> outputs;
  std::optional<openflow::PacketIn> packet_in;
  // True if the packet was dropped (no match with Drop behavior, meter
  // exceeded, TTL expired, or malformed).
  bool dropped = false;
  // Port the packet arrived on (0 for controller-originated PacketOuts);
  // the sim threads this into per-hop telemetry records.
  std::uint32_t in_port = 0;
};

struct ModStatus {
  bool ok = true;
  openflow::ErrorType error_type = openflow::ErrorType::BadRequest;
  std::uint16_t error_code = 0;
};

class Switch {
 public:
  Switch(std::uint64_t datapath_id, SwitchConfig config = {});

  std::uint64_t datapath_id() const noexcept { return dpid_; }

  // ---- ports ----
  void add_port(const openflow::PortDesc& desc);
  // Returns the new PortStatus event if the port exists and state changed.
  std::optional<openflow::PortStatus> set_port_link(std::uint32_t port_no,
                                                    bool up);
  const openflow::PortDesc* port(std::uint32_t port_no) const noexcept;
  std::vector<openflow::PortDesc> ports() const;

  // ---- dataplane ----
  ForwardResult ingress(double now, std::uint32_t in_port,
                        std::span<const std::uint8_t> frame);

  // Dry-run pipeline walk (ofproto/trace analog): returns the exact
  // ForwardResult ingress() would produce for this frame right now, with
  // zero observable side effects — no rule/port/cache counters, no meter
  // tokens consumed, no megaflow insert, no PacketIn buffered or rate-
  // limited, no NORMAL-mode learning. When `trace` is non-null (and
  // observability is compiled in) every decision is appended to it as an
  // ExplainStep. The megaflow cache is probed read-only for the trace, but
  // the verdict always comes from a full pipeline walk so the explanation
  // covers the classifier even for cached flows.
  ForwardResult explain(double now, std::uint32_t in_port,
                        std::span<const std::uint8_t> frame,
                        ExplainTrace* trace = nullptr);

  // Executes a PacketOut's action list on its payload (or buffered packet).
  ForwardResult packet_out(double now, const openflow::PacketOut& msg);

  // Attaches per-switch telemetry (sampling + flow export). Not owned;
  // nullptr (the default) disables the hook entirely. The sim wires this
  // when SimOptions.telemetry.enabled is set.
  void set_telemetry(telemetry::SwitchTelemetry* telemetry) noexcept {
    telemetry_ = telemetry;
  }
  telemetry::SwitchTelemetry* telemetry() const noexcept { return telemetry_; }

  // ---- control surface ----
  ModStatus flow_mod(const openflow::FlowMod& mod, double now,
                     std::vector<openflow::FlowRemoved>* removed = nullptr);
  ModStatus group_mod(const openflow::GroupMod& mod);
  ModStatus meter_mod(const openflow::MeterMod& mod);

  // Applies a bundle's members (FlowMod / GroupMod / MeterMod) in order,
  // all-or-nothing: when any member fails, every earlier member's effect
  // is rolled back and the failing member's own status is returned, so
  // the caller sees exactly the error a lone mod would have produced.
  // FlowRemoved events (evictions, deletes) reach `removed` only when the
  // whole bundle commits.
  ModStatus commit_bundle(std::span<const openflow::Message> members,
                          double now,
                          std::vector<openflow::FlowRemoved>* removed = nullptr);

  openflow::FeaturesReply features() const;
  openflow::FlowStatsReply flow_stats(const openflow::FlowStatsRequest& req,
                                      double now) const;
  openflow::PortStatsReply port_stats(const openflow::PortStatsRequest& req) const;
  openflow::TableStatsReply table_stats() const;

  // Removes timed-out entries across all tables; returns FlowRemoved events
  // for entries flagged kFlagSendFlowRemoved.
  std::vector<openflow::FlowRemoved> expire_flows(double now);

  // Drains vacancy events accumulated since the last call (fired when a
  // mod/expiry/eviction moved a table's occupancy across a configured
  // threshold). The sim wraps them into Experimenter messages northbound.
  std::vector<openflow::TableStatus> take_table_status();

  // Crash/reboot semantics: wipes all forwarding state (flow/group/meter
  // tables, megaflow cache, packet buffers) and forgets controller roles and
  // the master-election epoch, as a power-cycled switch would. Ports and
  // their cumulative stats survive (they model physical hardware).
  void reset();

  // ---- controller roles (multi-controller redundancy) ----
  // Applies a role request from connection `conn_id`. Master requests carry
  // a generation id; a stale generation (less than the largest seen) is
  // refused (returns nullopt). Granting Master demotes the previous master
  // to Slave (OF 1.3 semantics). Returns the granted role.
  std::optional<openflow::ControllerRole> set_controller_role(
      std::uint64_t conn_id, openflow::ControllerRole role,
      std::uint64_t generation_id);
  // Role of a connection (Equal when never set).
  openflow::ControllerRole controller_role(std::uint64_t conn_id) const;

  // ---- introspection ----
  FlowTable& table(std::uint8_t id) { return tables_[id]; }
  const FlowTable& table(std::uint8_t id) const { return tables_[id]; }
  std::uint8_t table_count() const noexcept {
    return static_cast<std::uint8_t>(tables_.size());
  }
  // Monotonic power-cycle counter: starts at 1, bumped by every reset().
  // Carried in FeaturesReply/EchoReply so the controller can spot a
  // crash/reboot cycle even when it fit inside the heartbeat window.
  std::uint64_t boot_count() const noexcept { return boot_count_; }
  const MegaflowCache& cache() const noexcept { return cache_; }
  const SwitchConfig& config() const noexcept { return config_; }
  std::uint64_t packet_in_suppressed() const noexcept {
    return packet_in_suppressed_;
  }
  std::uint64_t flow_evictions() const noexcept { return flow_evictions_; }
  // Frames dropped by the NORMAL-action flood deduper (loop suppression).
  std::uint64_t storm_suppressed() const noexcept { return storm_suppressed_; }
  MegaflowCache& cache() noexcept { return cache_; }
  GroupTable& groups() noexcept { return groups_; }
  std::uint64_t rule_version() const noexcept { return version_; }

 private:
  struct PortState {
    openflow::PortDesc desc;
    openflow::PortStatsEntry stats;
  };

  struct PipelineContext {
    double now = 0;
    std::uint32_t in_port = 0;
    std::uint32_t queue_id = 0;  // set by SetQueue, applies to later outputs
    MutablePacket* pkt = nullptr;
    ForwardResult* result = nullptr;
    CachedVerdict verdict;  // built as we go; inserted on cacheable misses
    bool dropped = false;
    // Dry-run mode (Switch::explain): forward decisions are computed but
    // nothing observable changes — stats, meters, caches, buffers and
    // learned state are all left untouched.
    bool dry_run = false;
    // Step recorder; empty no-op type under ZEN_OBS_DISABLED.
    ExplainProbe probe;
  };

  void run_pipeline(PipelineContext& ctx);
  void execute_normal(PipelineContext& ctx);
  // Re-evaluates one table's vacancy state after an occupancy change and
  // queues a TableStatus when a threshold was crossed.
  void check_vacancy(std::uint8_t table_id);
  void update_occupancy_gauge();
  void execute_action_list(PipelineContext& ctx,
                           const openflow::ActionList& actions, int depth);
  void execute_output(PipelineContext& ctx, std::uint32_t port,
                      std::uint16_t max_len, std::uint8_t table_id,
                      std::uint64_t cookie, bool is_miss);
  void emit_to_port(PipelineContext& ctx, std::uint32_t port_no);
  void make_packet_in(PipelineContext& ctx, openflow::PacketInReason reason,
                      std::uint8_t table_id, std::uint64_t cookie,
                      std::uint16_t max_len);
  std::uint32_t buffer_packet(const net::Bytes& frame);

  std::uint64_t dpid_;
  SwitchConfig config_;
  // Per-switch hot-path counters (packets, megaflow hit/miss/evict): the
  // ingress path bumps private cacheline-aligned slots; the registry
  // drains them into the shared global counters at snapshot time. Behind a
  // unique_ptr so its address — which the megaflow cache holds — survives
  // Switch moves.
  std::unique_ptr<obs::ShardStats> shard_;
  std::vector<FlowTable> tables_;
  GroupTable groups_;
  MeterTable meters_;
  MegaflowCache cache_;
  std::map<std::uint32_t, PortState> ports_;
  // Bumped on every rule-affecting change; versions the megaflow cache.
  std::uint64_t version_ = 1;
  std::uint64_t boot_count_ = 1;

  // PacketIn buffer ring.
  std::vector<net::Bytes> buffered_;
  std::uint32_t next_buffer_id_ = 0;

  // PacketIn rate limiting (controller protection).
  std::optional<util::TokenBucket> packet_in_bucket_;
  std::uint64_t packet_in_suppressed_ = 0;
  std::uint64_t flow_evictions_ = 0;

  // Vacancy-event state: true while a table sits below its down threshold
  // (the event fired and no VacancyUp has cleared it yet).
  std::vector<bool> vacancy_down_;
  std::vector<openflow::TableStatus> pending_table_status_;
  // Per-dpid occupancy gauge (table 0; null until first registered).
  obs::Gauge* occupancy_gauge_ = nullptr;

  // NORMAL-action state: a self-learned L2 FIB (src MAC -> ingress port)
  // plus a window of recently flooded frame hashes so a fabric of
  // standalone switches with physical loops cannot broadcast-storm.
  std::unordered_map<std::uint64_t, std::uint32_t> normal_fib_;
  std::unordered_map<std::uint64_t, double> flood_recent_;
  std::uint64_t storm_suppressed_ = 0;

  // Telemetry hook (not owned; may be null).
  telemetry::SwitchTelemetry* telemetry_ = nullptr;

  // Controller-connection roles.
  std::map<std::uint64_t, openflow::ControllerRole> roles_;
  std::uint64_t last_generation_ = 0;
  bool generation_seen_ = false;
};

}  // namespace zen::dataplane
