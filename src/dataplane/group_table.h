// Group table: indirection for multicast (All), ECMP-style selection
// (Select, weighted hash over the flow key), and single-bucket Indirect.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/flow_key.h"
#include "openflow/messages.h"

namespace zen::dataplane {

struct Group {
  openflow::GroupType type = openflow::GroupType::All;
  std::vector<openflow::Bucket> buckets;
  std::uint64_t packet_count = 0;
};

class GroupTable {
 public:
  // Applies a GroupMod. Returns false (with no change) on: Add of an
  // existing id, Modify/Delete of a missing id, or a Select group whose
  // total weight is zero.
  bool apply(const openflow::GroupMod& mod);

  const Group* find(std::uint32_t group_id) const noexcept;
  Group* find(std::uint32_t group_id) noexcept;

  // Port-liveness oracle for FastFailover evaluation.
  using PortLiveFn = std::function<bool(std::uint32_t port)>;

  // How one bucket selection was made, for the explain engine: the chosen
  // bucket's index, and (Select groups) where the flow hash landed in the
  // cumulative weight space.
  struct SelectExplain {
    int bucket_index = -1;  // -1 = no bucket qualified (drop)
    std::uint64_t hash_point = 0;
    std::uint64_t total_weight = 0;
    // FastFailover: watched buckets skipped because their port was dead.
    int dead_skipped = 0;
  };

  // Picks the bucket for `key`: weighted hash for Select (deterministic in
  // (group, key) so a flow always takes one path), the first live bucket
  // for FastFailover (first bucket overall if `port_live` is null), the
  // single bucket otherwise. Returns nullptr if no bucket qualifies.
  // `ex`, when non-null, receives the selection record.
  const openflow::Bucket* select_bucket(
      const Group& group, const net::FlowKey& key,
      const PortLiveFn& port_live = nullptr,
      SelectExplain* ex = nullptr) const noexcept;

  std::size_t size() const noexcept { return groups_.size(); }

  // Drops every group (switch reboot).
  void clear() noexcept { groups_.clear(); }

 private:
  std::unordered_map<std::uint32_t, Group> groups_;
};

}  // namespace zen::dataplane
