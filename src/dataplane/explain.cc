#include "dataplane/explain.h"

#include "util/strings.h"

namespace zen::dataplane {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += util::format("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

std::string mask_summary(const ExplainStep& step) {
  std::string out;
  int probed = 0, pruned = 0;
  for (const auto& m : step.masks) {
    if (m.pruned) ++pruned;
    else ++probed;
  }
  out = util::format("probed %d/%zu masks", probed, step.masks.size());
  if (pruned > 0) out += util::format(" (%d pruned by priority)", pruned);
  return out;
}

}  // namespace

const char* to_string(ExplainStepKind kind) noexcept {
  switch (kind) {
    case ExplainStepKind::kMegaflow: return "megaflow";
    case ExplainStepKind::kTableMatch: return "table_match";
    case ExplainStepKind::kTableMiss: return "table_miss";
    case ExplainStepKind::kMeter: return "meter";
    case ExplainStepKind::kGroup: return "group";
    case ExplainStepKind::kRewrite: return "rewrite";
    case ExplainStepKind::kOutput: return "output";
    case ExplainStepKind::kPacketIn: return "packet_in";
    case ExplainStepKind::kDrop: return "drop";
  }
  return "?";
}

std::string ExplainTrace::to_text() const {
  std::string out = util::format("switch %llu (in_port=%u)\n",
                                 static_cast<unsigned long long>(dpid),
                                 in_port);
  for (const auto& s : steps) {
    std::string line;
    switch (s.kind) {
      case ExplainStepKind::kMegaflow:
        line = util::format("megaflow: %s", s.cache_hit ? "hit" : "miss");
        break;
      case ExplainStepKind::kTableMatch:
        line = util::format(
            "table %u: %s -> match priority=%u cookie=0x%llx importance=%u",
            s.table_id, mask_summary(s).c_str(), s.priority,
            static_cast<unsigned long long>(s.cookie), s.importance);
        break;
      case ExplainStepKind::kTableMiss:
        line = util::format("table %u: %s -> no match", s.table_id,
                            mask_summary(s).c_str());
        break;
      case ExplainStepKind::kMeter:
        line = util::format("meter %u: %s", s.meter_id,
                            s.allowed ? "pass" : "drop (rate exceeded)");
        break;
      case ExplainStepKind::kGroup:
        if (s.bucket >= 0)
          line = util::format("group %u: bucket %d (hash point %llu of %llu)",
                              s.group_id, s.bucket,
                              static_cast<unsigned long long>(s.hash_point),
                              static_cast<unsigned long long>(s.total_weight));
        else
          line = util::format("group %u", s.group_id);
        break;
      case ExplainStepKind::kRewrite:
        line = "rewrite:";
        break;
      case ExplainStepKind::kOutput:
        line = util::format("output: port %u queue %u", s.port, s.queue_id);
        break;
      case ExplainStepKind::kPacketIn:
        line = util::format("packet_in: table %u", s.table_id);
        break;
      case ExplainStepKind::kDrop:
        line = "drop:";
        break;
    }
    if (!s.detail.empty()) line += " " + s.detail;
    out += "  " + line + "\n";
  }
  return out;
}

std::string ExplainTrace::to_json() const {
  std::string out = util::format("{\"dpid\":%llu,\"in_port\":%u,\"steps\":[",
                                 static_cast<unsigned long long>(dpid),
                                 in_port);
  bool first_step = true;
  for (const auto& s : steps) {
    if (!first_step) out += ',';
    first_step = false;
    out += util::format("{\"kind\":\"%s\",\"table\":%u",
                        to_string(s.kind), s.table_id);
    if (!s.masks.empty()) {
      out += ",\"masks\":[";
      bool first_mask = true;
      for (const auto& m : s.masks) {
        if (!first_mask) out += ',';
        first_mask = false;
        out += util::format(
            "{\"fields\":%d,\"max_priority\":%u,\"hit\":%s,\"pruned\":%s}",
            m.fields, m.max_priority, m.hit ? "true" : "false",
            m.pruned ? "true" : "false");
      }
      out += ']';
    }
    switch (s.kind) {
      case ExplainStepKind::kMegaflow:
        out += util::format(",\"hit\":%s", s.cache_hit ? "true" : "false");
        break;
      case ExplainStepKind::kTableMatch:
        out += util::format(",\"priority\":%u,\"cookie\":%llu,\"importance\":%u",
                            s.priority,
                            static_cast<unsigned long long>(s.cookie),
                            s.importance);
        break;
      case ExplainStepKind::kMeter:
        out += util::format(",\"meter\":%u,\"allowed\":%s", s.meter_id,
                            s.allowed ? "true" : "false");
        break;
      case ExplainStepKind::kGroup:
        out += util::format(
            ",\"group\":%u,\"bucket\":%d,\"hash_point\":%llu,"
            "\"total_weight\":%llu",
            s.group_id, s.bucket,
            static_cast<unsigned long long>(s.hash_point),
            static_cast<unsigned long long>(s.total_weight));
        break;
      case ExplainStepKind::kOutput:
      case ExplainStepKind::kPacketIn:
        out += util::format(",\"port\":%u,\"queue\":%u", s.port, s.queue_id);
        break;
      default:
        break;
    }
    if (!s.detail.empty())
      out += ",\"detail\":\"" + json_escape(s.detail) + "\"";
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace zen::dataplane
