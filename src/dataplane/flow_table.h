// A single flow table with priority-ordered masked matching.
//
// Lookup strategy is tuple-space search (the Open vSwitch classifier
// approach): entries are grouped by their FlowMask; each group holds a hash
// map from masked key to the entries sharing that masked value. A lookup
// probes one hash table per distinct mask and keeps the highest-priority
// hit. A linear-scan mode exists purely as the ablation baseline for
// experiment E3.
//
// Concurrent reads (opt-in, set_concurrent_reads(true)): every mutation
// republishes an immutable ReadView snapshot (groups pre-sorted in probe
// order) through one atomic pointer; lookup_concurrent() walks the view
// lock-free under the caller's epoch guard while mutators keep working on
// the private structure. Superseded views are retired through
// util::EpochReclaimer, and in-place instruction updates switch to
// clone-and-swap so a reader never observes a half-written entry. The
// classic single-threaded paths are untouched.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/flow_key.h"
#include "openflow/actions.h"
#include "openflow/constants.h"
#include "openflow/match.h"
#include "util/epoch.h"

namespace zen::dataplane {

struct FlowEntry {
  openflow::Match match;
  std::uint16_t priority = 0;
  openflow::InstructionList instructions;
  std::uint64_t cookie = 0;
  std::uint16_t idle_timeout = 0;  // seconds, 0 = none
  std::uint16_t hard_timeout = 0;
  std::uint16_t flags = 0;
  // Eviction precedence: lowest goes first when the table must make room.
  std::uint16_t importance = 0;

  // Runtime state.
  double created_at = 0;
  double last_used_at = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
};

using FlowEntryPtr = std::shared_ptr<FlowEntry>;

enum class LookupMode { TupleSpace, LinearScan };

// What a bounded table does when an Add arrives and it is full.
enum class EvictionPolicy : std::uint8_t {
  Off,         // reject the Add (TableFull)
  Importance,  // evict the lowest-importance entry (LRU breaks ties); an
               // Add can never displace an entry more important than itself
  Lru,         // evict the least-recently-used entry regardless of importance
};

class FlowTable {
 public:
  explicit FlowTable(LookupMode mode = LookupMode::TupleSpace) : mode_(mode) {}
  // Rule of five: the published ReadView pointer is atomic (not copyable)
  // and owned (retired/freed on teardown), so all four are hand-rolled.
  // Copies and moved-from tables start with no published view; the copy
  // republishes lazily if concurrent reads are on.
  FlowTable(const FlowTable& other);
  FlowTable& operator=(const FlowTable& other);
  FlowTable(FlowTable&& other) noexcept;
  FlowTable& operator=(FlowTable&& other) noexcept;
  ~FlowTable();

  // Bounds the table to `max_entries` rules under `policy` (0 = unbounded).
  // Enforcement happens in the caller (Switch::flow_mod) via full()/evict()
  // so the caller controls FlowRemoved emission for the victims.
  void set_capacity(std::size_t max_entries,
                    EvictionPolicy policy = EvictionPolicy::Off) noexcept {
    max_entries_ = max_entries;
    eviction_ = policy;
  }
  std::size_t max_entries() const noexcept { return max_entries_; }
  EvictionPolicy eviction_policy() const noexcept { return eviction_; }
  // True when a *new* entry cannot be inserted without eviction.
  bool full() const noexcept {
    return max_entries_ > 0 && count_ >= max_entries_;
  }

  // True iff an entry with this exact (match, priority) key exists — an Add
  // carrying it replaces in place and needs no free slot.
  bool contains(const openflow::Match& match,
                std::uint16_t priority) const noexcept;

  // Selects and removes the eviction victim for an incoming entry of
  // `incoming_importance`, honoring the configured policy. Returns nullptr
  // when the policy is Off, the table is empty, or (Importance policy)
  // every entry outranks the incoming one — the "cannot free space" case
  // the caller must turn into a TableFull error.
  FlowEntryPtr evict(std::uint16_t incoming_importance);

  // Inserts an entry; an existing entry with identical match and priority is
  // replaced (counters reset), matching FlowMod/Add semantics.
  FlowEntryPtr add(FlowEntry entry, double now);

  // Updates instructions of entries whose match equals (strict) or is
  // subsumed by (non-strict) `match`. Returns number updated.
  std::size_t modify(const openflow::Match& match, std::uint16_t priority,
                     const openflow::InstructionList& instructions, bool strict);

  // Removes matching entries (same strictness rules). `out_port` filters to
  // entries whose instructions output to that port (kAny = no filter).
  // Returns the removed entries so the caller can emit FlowRemoved.
  std::vector<FlowEntryPtr> remove(const openflow::Match& match,
                                   std::uint16_t priority, bool strict,
                                   std::uint32_t out_port = openflow::Ports::kAny);

  // Per-mask probe record for one lookup, filled by find_best when the
  // explain engine asks. One entry per tuple-space hash table, in probe
  // order: `pruned` = skipped because its max priority could not beat the
  // best hit so far, `hit` = the masked key found a candidate bucket.
  struct LookupExplain {
    struct MaskProbe {
      int fields = 0;  // mask specificity (non-wildcard field count)
      std::uint16_t max_priority = 0;
      bool hit = false;
      bool pruned = false;
    };
    std::vector<MaskProbe> masks;
  };

  // Highest-priority matching entry, or nullptr. Does not update counters
  // (the pipeline credits entries explicitly so cached hits count too).
  FlowEntryPtr lookup(const net::FlowKey& key) noexcept;

  // ---- concurrent reads ----
  // Publishes (and keeps republishing after every mutation) the immutable
  // read snapshot that lookup_concurrent() walks.
  void set_concurrent_reads(bool on);
  bool concurrent_reads() const noexcept { return concurrent_; }

  // Lock-free highest-priority match against the published snapshot.
  // Requires a live epoch guard (pins the view against retirement); the
  // returned entry is a shared_ptr and outlives the guard. Does not bump
  // the lookup/match counters — concurrent readers must not write shared
  // cachelines. Semantically identical to find_best() as of the last
  // completed mutation.
  FlowEntryPtr lookup_concurrent(const net::FlowKey& key,
                                 util::EpochReclaimer::Guard& guard) const;

  // The same search without touching the lookup/match counters — the
  // explain engine's dry-run entry point (also the equivalence oracle any
  // classifier refactor must preserve). `ex`, when non-null, receives the
  // per-mask probe record.
  FlowEntryPtr find_best(const net::FlowKey& key,
                         LookupExplain* ex = nullptr) const;

  // Removes entries past their idle/hard timeout; returns them.
  std::vector<FlowEntryPtr> expire(double now);

  // Drops every entry (switch reboot). Lookup/match counters survive — they
  // are cumulative observability, not rule state.
  void clear() noexcept {
    groups_.clear();
    probe_order_.clear();
    order_dirty_ = false;
    count_ = 0;
    republish_view();
  }

  std::size_t size() const noexcept { return count_; }
  std::size_t mask_group_count() const noexcept { return groups_.size(); }
  std::uint64_t lookup_count() const noexcept { return lookups_; }
  std::uint64_t matched_count() const noexcept { return matches_; }

  // All entries, unordered. Used by stats requests.
  std::vector<FlowEntryPtr> entries() const;

  // Deep copy: every entry is cloned, not shared, so mutations through
  // either table stay invisible to the other. Bundle commit snapshots
  // tables through this for all-or-nothing rollback.
  FlowTable clone() const;

 private:
  struct MaskGroup {
    net::FlowMask mask;
    std::uint16_t max_priority = 0;
    // masked key -> entries with that masked value, sorted by priority desc.
    std::unordered_map<net::FlowKey, std::vector<FlowEntryPtr>> by_key;
  };

  // Immutable published snapshot for lock-free readers: the mask groups,
  // deep-copied (cheap — buckets share the FlowEntryPtrs) and pre-sorted
  // in probe order. Never edited after publication; superseded views are
  // retired to the epoch reclaimer.
  struct ReadView {
    std::vector<MaskGroup> groups;  // sorted by max_priority desc
  };

  void rebuild_group_priority(MaskGroup& group) noexcept;

  // Builds + publishes a fresh ReadView and retires the old one. No-op
  // unless concurrent reads are enabled. Called after every mutation.
  void republish_view() noexcept;
  // Unpublishes and frees the current view immediately (teardown / copy
  // targets; callers guarantee no concurrent readers).
  void drop_view() noexcept;
  void copy_from(const FlowTable& other);
  void move_from(FlowTable&& other) noexcept;

  // Rebuilds probe_order_ (groups sorted by max_priority desc) if a
  // mutation invalidated it. Sorted probing lets find_best stop at the
  // first group that cannot outrank the best hit so far — for the common
  // exact-match-wins tables that means one probe instead of one per mask.
  void refresh_probe_order() const;

  template <typename Pred>
  std::vector<FlowEntryPtr> remove_if(Pred&& pred);

  LookupMode mode_;
  std::size_t max_entries_ = 0;  // 0 = unbounded
  EvictionPolicy eviction_ = EvictionPolicy::Off;
  std::unordered_map<net::FlowMask, MaskGroup> groups_;
  // Lookup probe order; lazily rebuilt (pointers stay valid across
  // unordered_map inserts — only erase invalidates, which marks it dirty).
  mutable std::vector<const MaskGroup*> probe_order_;
  mutable bool order_dirty_ = false;
  std::size_t count_ = 0;
  std::uint64_t lookups_ = 0;
  std::uint64_t matches_ = 0;
  // Concurrent-read state. view_ is only non-null while concurrent_ is on.
  bool concurrent_ = false;
  std::atomic<ReadView*> view_{nullptr};
};

// True if `entry`'s instructions contain an output to `port`.
bool outputs_to_port(const FlowEntry& entry, std::uint32_t port) noexcept;

}  // namespace zen::dataplane
