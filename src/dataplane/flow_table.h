// A single flow table with priority-ordered masked matching.
//
// Lookup strategy is tuple-space search (the Open vSwitch classifier
// approach): entries are grouped by their FlowMask; each group holds a hash
// map from masked key to the entries sharing that masked value. A lookup
// probes one hash table per distinct mask and keeps the highest-priority
// hit. A linear-scan mode exists purely as the ablation baseline for
// experiment E3.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/flow_key.h"
#include "openflow/actions.h"
#include "openflow/constants.h"
#include "openflow/match.h"

namespace zen::dataplane {

struct FlowEntry {
  openflow::Match match;
  std::uint16_t priority = 0;
  openflow::InstructionList instructions;
  std::uint64_t cookie = 0;
  std::uint16_t idle_timeout = 0;  // seconds, 0 = none
  std::uint16_t hard_timeout = 0;
  std::uint16_t flags = 0;

  // Runtime state.
  double created_at = 0;
  double last_used_at = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
};

using FlowEntryPtr = std::shared_ptr<FlowEntry>;

enum class LookupMode { TupleSpace, LinearScan };

class FlowTable {
 public:
  explicit FlowTable(LookupMode mode = LookupMode::TupleSpace) : mode_(mode) {}

  // Inserts an entry; an existing entry with identical match and priority is
  // replaced (counters reset), matching FlowMod/Add semantics.
  FlowEntryPtr add(FlowEntry entry, double now);

  // Updates instructions of entries whose match equals (strict) or is
  // subsumed by (non-strict) `match`. Returns number updated.
  std::size_t modify(const openflow::Match& match, std::uint16_t priority,
                     const openflow::InstructionList& instructions, bool strict);

  // Removes matching entries (same strictness rules). `out_port` filters to
  // entries whose instructions output to that port (kAny = no filter).
  // Returns the removed entries so the caller can emit FlowRemoved.
  std::vector<FlowEntryPtr> remove(const openflow::Match& match,
                                   std::uint16_t priority, bool strict,
                                   std::uint32_t out_port = openflow::Ports::kAny);

  // Highest-priority matching entry, or nullptr. Does not update counters
  // (the pipeline credits entries explicitly so cached hits count too).
  FlowEntryPtr lookup(const net::FlowKey& key) noexcept;

  // Removes entries past their idle/hard timeout; returns them.
  std::vector<FlowEntryPtr> expire(double now);

  // Drops every entry (switch reboot). Lookup/match counters survive — they
  // are cumulative observability, not rule state.
  void clear() noexcept {
    groups_.clear();
    count_ = 0;
  }

  std::size_t size() const noexcept { return count_; }
  std::size_t mask_group_count() const noexcept { return groups_.size(); }
  std::uint64_t lookup_count() const noexcept { return lookups_; }
  std::uint64_t matched_count() const noexcept { return matches_; }

  // All entries, unordered. Used by stats requests.
  std::vector<FlowEntryPtr> entries() const;

 private:
  struct MaskGroup {
    net::FlowMask mask;
    std::uint16_t max_priority = 0;
    // masked key -> entries with that masked value, sorted by priority desc.
    std::unordered_map<net::FlowKey, std::vector<FlowEntryPtr>> by_key;
  };

  void rebuild_group_priority(MaskGroup& group) noexcept;

  template <typename Pred>
  std::vector<FlowEntryPtr> remove_if(Pred&& pred);

  LookupMode mode_;
  std::unordered_map<net::FlowMask, MaskGroup> groups_;
  std::size_t count_ = 0;
  std::uint64_t lookups_ = 0;
  std::uint64_t matches_ = 0;
};

// True if `entry`'s instructions contain an output to `port`.
bool outputs_to_port(const FlowEntry& entry, std::uint32_t port) noexcept;

}  // namespace zen::dataplane
