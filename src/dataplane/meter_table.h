// Meter table: per-meter token-bucket rate limiting under virtual time.
//
// A meter instruction checks the packet against the meter's bucket; packets
// exceeding the configured rate are dropped (the only band type supported).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "openflow/messages.h"
#include "util/token_bucket.h"

namespace zen::dataplane {

class MeterTable {
 public:
  // Applies a MeterMod; same add/modify/delete validity rules as groups.
  bool apply(const openflow::MeterMod& mod);

  // Charges `bytes` against the meter at virtual time `now`.
  // Returns true if the packet passes, false if it must be dropped.
  // A missing meter id passes (matching a permissive-datapath stance).
  bool allow(std::uint32_t meter_id, std::size_t bytes, double now);

  // The verdict allow() would return, without consuming tokens or bumping
  // drop counters — the explain engine's dry-run check.
  bool would_allow(std::uint32_t meter_id, std::size_t bytes,
                   double now) const noexcept;

  // Configured rate in bytes/s (0 if the meter does not exist).
  double rate_bytes_per_s(std::uint32_t meter_id) const noexcept;

  std::uint64_t dropped(std::uint32_t meter_id) const noexcept;
  std::size_t size() const noexcept { return meters_.size(); }

  // Drops every meter (switch reboot).
  void clear() noexcept { meters_.clear(); }

 private:
  struct Meter {
    util::TokenBucket bucket;
    std::uint64_t drop_count = 0;
  };
  std::unordered_map<std::uint32_t, Meter> meters_;
};

}  // namespace zen::dataplane
