// Megaflow-style exact-match flow cache.
//
// Sits in front of the multi-table pipeline: the first packet of a flow
// runs the full pipeline and the resulting verdict (output set / packet-in /
// drop, plus the entries to credit and meters to charge) is cached keyed by
// the exact FlowKey. Subsequent packets of the flow skip the classifier.
//
// Invalidation is coarse, as in early Open vSwitch: any flow/group table
// change bumps a global version; the first probe under a new version drops
// the whole (now entirely stale) table at once. Capacity eviction is
// random-replacement (cheap, and what a kernel flow cache approximates
// under churn).
//
// Concurrent mode (opt-in, enable_concurrent()): lookups become lock-free
// and safe against racing inserts and version-bump clears. The cache is
// split into W ways, each an atomically published open-addressing table of
// CAS-published entry pointers. A version bump swaps the stale way table
// for a fresh one and retires the old table — entries and all — through
// epoch-based reclamation (util::EpochReclaimer), so a reader that already
// loaded an entry pointer under its epoch guard keeps dereferencing it
// safely while concurrent writers move the cache forward. A stale-version
// table is never probed for hits: the version check happens on the
// published table itself, before any entry is touched, which is what keeps
// stale verdicts from escaping. Classic (single-threaded) mode is
// completely untouched by any of this.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dataplane/flow_table.h"
#include "net/flow_key.h"
#include "obs/shard_stats.h"
#include "openflow/actions.h"
#include "util/epoch.h"

namespace zen::dataplane {

// The cached outcome of one pipeline traversal.
struct CachedVerdict {
  struct PortQueue {
    std::uint32_t port = 0;
    std::uint32_t queue_id = 0;
  };
  // Concrete egress ports (reserved ports already resolved except kController).
  std::vector<PortQueue> out_ports;
  bool to_controller = false;
  std::uint8_t controller_table = 0;
  std::uint64_t controller_cookie = 0;
  bool miss = false;  // table-miss (controller punt uses reason NoMatch)
  // Entries to credit stats on each cached hit.
  std::vector<FlowEntryPtr> credited;
  // Meters to charge, in pipeline order; any failure drops the packet.
  std::vector<std::uint32_t> meters;
  // Packet rewrites are NOT cacheable in this design (see switch.cc); a
  // verdict with rewrites sets this flag and is never inserted.
  bool cacheable = true;
};

class MegaflowCache {
 public:
  explicit MegaflowCache(std::size_t capacity = 65536, bool enabled = true)
      : capacity_(capacity), enabled_(enabled) {}
  ~MegaflowCache();
  // Movable (atomics transferred with plain loads/stores — moving a cache
  // with live concurrent readers is a caller error); not copyable.
  MegaflowCache(MegaflowCache&& other) noexcept;
  MegaflowCache& operator=(MegaflowCache&& other) noexcept;
  MegaflowCache(const MegaflowCache&) = delete;
  MegaflowCache& operator=(const MegaflowCache&) = delete;

  // Returns the verdict if present and current. The first call under a new
  // version drops all (stale) entries. Classic mode only (single caller).
  const CachedVerdict* find(const net::FlowKey& key, std::uint64_t version);

  // ---- concurrent mode ----
  // Switches the cache to the lock-free sharded-ways layout. Must be
  // called before any traffic (entries do not migrate). `ways` is rounded
  // to at least 1; each way holds ~capacity/ways entries.
  void enable_concurrent(std::size_t ways = 4);
  bool concurrent() const noexcept { return n_ways_ != 0; }

  // Lock-free lookup for concurrent mode. The returned pointer stays valid
  // for the lifetime of `guard` (the caller's epoch pin), even if a racing
  // version bump or eviction retires the entry's table meanwhile. Stale
  // versions never hit: a table published under a different version is
  // swapped out (newer version wins) and reported as a miss.
  const CachedVerdict* find(const net::FlowKey& key, std::uint64_t version,
                            util::EpochReclaimer::Guard& guard);

  // Read-only probe for the explain engine: no counter bumps, no stale-entry
  // erasure, no shard traffic. Stale entries report as absent, exactly as
  // find() would treat them.
  const CachedVerdict* peek(const net::FlowKey& key,
                            std::uint64_t version) const noexcept;

  // Insert works in both modes (concurrent mode takes its own epoch pin
  // internally; the entry is CAS-published so racing readers see either
  // the old or the new verdict, never a torn one).
  void insert(const net::FlowKey& key, CachedVerdict verdict,
              std::uint64_t version);

  void clear() noexcept;

  bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept {
    enabled_ = on;
    if (!on) clear();
  }

  std::size_t size() const noexcept;
  std::uint64_t hits() const noexcept {
    return hits_ + conc_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const noexcept {
    return misses_ + conc_misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const noexcept {
    return evictions_ + conc_evictions_.load(std::memory_order_relaxed);
  }

  // Routes the per-packet hit/miss/eviction counts through the owner's
  // ShardStats slots (plain stores on a private cacheline) instead of the
  // shared global counters. Standalone caches (no shard bound) keep the
  // direct global-counter path.
  void bind_shard(obs::ShardStats* shard, std::size_t hit_slot,
                  std::size_t miss_slot, std::size_t evict_slot) noexcept {
    shard_ = shard;
    hit_slot_ = hit_slot;
    miss_slot_ = miss_slot;
    evict_slot_ = evict_slot;
  }

 private:
  struct Slot {
    CachedVerdict verdict;
    std::uint64_t version = 0;
  };

  // ---- concurrent-mode internals ----
  struct ConcEntry {
    net::FlowKey key;
    std::uint64_t version = 0;
    CachedVerdict verdict;
  };
  // One published generation of a way: fixed-capacity open addressing over
  // CAS-published entry pointers. Immutably versioned — a bump never edits
  // a table, it replaces it. The destructor (run by the epoch reclaimer,
  // once no reader can hold entry pointers into it) frees the entries the
  // table still owns; entries replaced in place were retired individually.
  struct ConcTable {
    ConcTable(std::size_t n_slots, std::uint64_t ver);
    ~ConcTable();
    std::uint64_t version;
    std::size_t mask;                   // n_slots - 1 (power of two)
    std::atomic<std::size_t> size{0};
    std::vector<std::atomic<ConcEntry*>> slots;
  };
  struct alignas(64) Way {
    std::atomic<ConcTable*> table{nullptr};
  };

  // Drops every entry when the pipeline version moved past last_version_.
  void sync_version(std::uint64_t version);
  void insert_classic(const net::FlowKey& key, CachedVerdict verdict,
                      std::uint64_t version);
  void insert_concurrent(const net::FlowKey& key, CachedVerdict verdict,
                         std::uint64_t version);
  // Publishes a fresh table for `way` at `version` (CAS; loser frees its
  // attempt) and retires the old one. Returns the current table.
  ConcTable* swap_way(Way& way, ConcTable* expected, std::uint64_t version,
                      bool count_evictions);
  void note_miss();

  std::size_t capacity_;
  bool enabled_;
  obs::ShardStats* shard_ = nullptr;
  std::size_t hit_slot_ = 0;
  std::size_t miss_slot_ = 0;
  std::size_t evict_slot_ = 0;
  std::unordered_map<net::FlowKey, Slot> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t last_version_ = 0;
  std::uint64_t evict_seed_ = 0x9e3779b97f4a7c15ULL;

  // Concurrent mode (empty/zero when classic).
  std::size_t n_ways_ = 0;
  std::size_t way_slots_ = 0;  // slots per way (power of two)
  std::size_t way_limit_ = 0;  // max entries per way (3/4 load factor)
  std::unique_ptr<Way[]> ways_;
  std::atomic<std::uint64_t> conc_hits_{0};
  std::atomic<std::uint64_t> conc_misses_{0};
  std::atomic<std::uint64_t> conc_evictions_{0};
};

}  // namespace zen::dataplane
