// Megaflow-style exact-match flow cache.
//
// Sits in front of the multi-table pipeline: the first packet of a flow
// runs the full pipeline and the resulting verdict (output set / packet-in /
// drop, plus the entries to credit and meters to charge) is cached keyed by
// the exact FlowKey. Subsequent packets of the flow skip the classifier.
//
// Invalidation is coarse, as in early Open vSwitch: any flow/group table
// change bumps a global version; the first probe under a new version drops
// the whole (now entirely stale) table at once. Capacity eviction is
// random-replacement (cheap, and what a kernel flow cache approximates
// under churn).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dataplane/flow_table.h"
#include "net/flow_key.h"
#include "obs/shard_stats.h"
#include "openflow/actions.h"

namespace zen::dataplane {

// The cached outcome of one pipeline traversal.
struct CachedVerdict {
  struct PortQueue {
    std::uint32_t port = 0;
    std::uint32_t queue_id = 0;
  };
  // Concrete egress ports (reserved ports already resolved except kController).
  std::vector<PortQueue> out_ports;
  bool to_controller = false;
  std::uint8_t controller_table = 0;
  std::uint64_t controller_cookie = 0;
  bool miss = false;  // table-miss (controller punt uses reason NoMatch)
  // Entries to credit stats on each cached hit.
  std::vector<FlowEntryPtr> credited;
  // Meters to charge, in pipeline order; any failure drops the packet.
  std::vector<std::uint32_t> meters;
  // Packet rewrites are NOT cacheable in this design (see switch.cc); a
  // verdict with rewrites sets this flag and is never inserted.
  bool cacheable = true;
};

class MegaflowCache {
 public:
  explicit MegaflowCache(std::size_t capacity = 65536, bool enabled = true)
      : capacity_(capacity), enabled_(enabled) {}

  // Returns the verdict if present and current. The first call under a new
  // version drops all (stale) entries.
  const CachedVerdict* find(const net::FlowKey& key, std::uint64_t version);

  // Read-only probe for the explain engine: no counter bumps, no stale-entry
  // erasure, no shard traffic. Stale entries report as absent, exactly as
  // find() would treat them.
  const CachedVerdict* peek(const net::FlowKey& key,
                            std::uint64_t version) const noexcept;

  void insert(const net::FlowKey& key, CachedVerdict verdict,
              std::uint64_t version);

  void clear() noexcept { map_.clear(); }

  bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept {
    enabled_ = on;
    if (!on) clear();
  }

  std::size_t size() const noexcept { return map_.size(); }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t evictions() const noexcept { return evictions_; }

  // Routes the per-packet hit/miss/eviction counts through the owner's
  // ShardStats slots (plain stores on a private cacheline) instead of the
  // shared global counters. Standalone caches (no shard bound) keep the
  // direct global-counter path.
  void bind_shard(obs::ShardStats* shard, std::size_t hit_slot,
                  std::size_t miss_slot, std::size_t evict_slot) noexcept {
    shard_ = shard;
    hit_slot_ = hit_slot;
    miss_slot_ = miss_slot;
    evict_slot_ = evict_slot;
  }

 private:
  struct Slot {
    CachedVerdict verdict;
    std::uint64_t version = 0;
  };

  // Drops every entry when the pipeline version moved past last_version_.
  void sync_version(std::uint64_t version);

  std::size_t capacity_;
  bool enabled_;
  obs::ShardStats* shard_ = nullptr;
  std::size_t hit_slot_ = 0;
  std::size_t miss_slot_ = 0;
  std::size_t evict_slot_ = 0;
  std::unordered_map<net::FlowKey, Slot> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t last_version_ = 0;
  std::uint64_t evict_seed_ = 0x9e3779b97f4a7c15ULL;
};

}  // namespace zen::dataplane
