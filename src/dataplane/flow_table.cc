#include "dataplane/flow_table.h"

#include <algorithm>

namespace zen::dataplane {

bool outputs_to_port(const FlowEntry& entry, std::uint32_t port) noexcept {
  if (port == openflow::Ports::kAny) return true;
  for (const auto& ins : entry.instructions) {
    const openflow::ActionList* actions = nullptr;
    if (const auto* apply = std::get_if<openflow::ApplyActions>(&ins))
      actions = &apply->actions;
    else if (const auto* write = std::get_if<openflow::WriteActions>(&ins))
      actions = &write->actions;
    if (!actions) continue;
    for (const auto& a : *actions) {
      if (const auto* out = std::get_if<openflow::OutputAction>(&a);
          out && out->port == port)
        return true;
    }
  }
  return false;
}

FlowTable::~FlowTable() { drop_view(); }

FlowTable::FlowTable(const FlowTable& other) { copy_from(other); }

FlowTable& FlowTable::operator=(const FlowTable& other) {
  if (this != &other) {
    drop_view();
    copy_from(other);
  }
  return *this;
}

FlowTable::FlowTable(FlowTable&& other) noexcept {
  move_from(std::move(other));
}

FlowTable& FlowTable::operator=(FlowTable&& other) noexcept {
  if (this != &other) {
    drop_view();
    move_from(std::move(other));
  }
  return *this;
}

void FlowTable::copy_from(const FlowTable& other) {
  mode_ = other.mode_;
  max_entries_ = other.max_entries_;
  eviction_ = other.eviction_;
  groups_ = other.groups_;
  probe_order_.clear();  // other's order points into other's groups
  order_dirty_ = true;
  count_ = other.count_;
  lookups_ = other.lookups_;
  matches_ = other.matches_;
  concurrent_ = other.concurrent_;
  view_.store(nullptr, std::memory_order_relaxed);
  republish_view();
}

void FlowTable::move_from(FlowTable&& other) noexcept {
  mode_ = other.mode_;
  max_entries_ = other.max_entries_;
  eviction_ = other.eviction_;
  groups_ = std::move(other.groups_);
  probe_order_ = std::move(other.probe_order_);
  order_dirty_ = other.order_dirty_;
  count_ = other.count_;
  lookups_ = other.lookups_;
  matches_ = other.matches_;
  concurrent_ = other.concurrent_;
  // Steal the published view: readers resolved it through the old object's
  // atomic before the move; moving a table with live concurrent readers is
  // a caller error (same contract as moving any container).
  view_.store(other.view_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  other.view_.store(nullptr, std::memory_order_relaxed);
  other.concurrent_ = false;
  other.groups_.clear();
  other.probe_order_.clear();
  other.count_ = 0;
}

void FlowTable::set_concurrent_reads(bool on) {
  if (concurrent_ == on) return;
  concurrent_ = on;
  if (on) republish_view();
  else drop_view();
}

void FlowTable::republish_view() noexcept {
  if (!concurrent_) return;
  auto* fresh = new ReadView;
  fresh->groups.reserve(groups_.size());
  for (const auto& [mask, group] : groups_) fresh->groups.push_back(group);
  std::stable_sort(fresh->groups.begin(), fresh->groups.end(),
                   [](const MaskGroup& a, const MaskGroup& b) {
                     return a.max_priority > b.max_priority;
                   });
  ReadView* old = view_.exchange(fresh, std::memory_order_acq_rel);
  // Readers pinned before the exchange may still be probing `old`.
  if (old) util::EpochReclaimer::global().retire(old);
}

void FlowTable::drop_view() noexcept {
  // Teardown path: no concurrent readers by contract, free immediately.
  delete view_.exchange(nullptr, std::memory_order_acq_rel);
}

FlowEntryPtr FlowTable::lookup_concurrent(
    const net::FlowKey& key, util::EpochReclaimer::Guard&) const {
  const ReadView* view = view_.load(std::memory_order_acquire);
  if (view == nullptr) return find_best(key);  // not enabled: single caller
  // Mirrors find_best's tuple-space walk over the pre-sorted snapshot:
  // probe groups in max_priority order, stop once no group can outrank the
  // best hit, first better-than-best entry in a bucket wins.
  FlowEntryPtr best;
  for (const MaskGroup& group : view->groups) {
    if (best && group.max_priority <= best->priority) break;
    const auto it = group.by_key.find(group.mask.apply(key));
    if (it == group.by_key.end()) continue;
    for (const auto& entry : it->second) {
      if (best && entry->priority <= best->priority) break;
      best = entry;
      break;
    }
  }
  return best;
}

bool FlowTable::contains(const openflow::Match& match,
                         std::uint16_t priority) const noexcept {
  const auto group_it = groups_.find(match.mask());
  if (group_it == groups_.end()) return false;
  const auto bucket_it = group_it->second.by_key.find(match.value());
  if (bucket_it == group_it->second.by_key.end()) return false;
  return std::any_of(bucket_it->second.begin(), bucket_it->second.end(),
                     [&](const FlowEntryPtr& e) {
                       return e->priority == priority && e->match == match;
                     });
}

FlowEntryPtr FlowTable::evict(std::uint16_t incoming_importance) {
  if (eviction_ == EvictionPolicy::Off || count_ == 0) return nullptr;

  // Victim order: Importance = (importance asc, last_used_at asc);
  // Lru = last_used_at asc alone. Scanning every entry keeps the policy
  // exact; eviction only runs when a bounded table is already full, so the
  // scan is bounded by max_entries.
  const FlowEntry* victim = nullptr;
  for (const auto& [mask, group] : groups_) {
    for (const auto& [key, bucket] : group.by_key) {
      for (const auto& entry : bucket) {
        if (!victim) {
          victim = entry.get();
          continue;
        }
        bool better;
        if (eviction_ == EvictionPolicy::Importance) {
          better = entry->importance < victim->importance ||
                   (entry->importance == victim->importance &&
                    entry->last_used_at < victim->last_used_at);
        } else {
          better = entry->last_used_at < victim->last_used_at;
        }
        if (better) victim = entry.get();
      }
    }
  }
  if (eviction_ == EvictionPolicy::Importance &&
      victim->importance > incoming_importance) {
    return nullptr;  // nothing expendable: the Add must fail, not displace
  }
  auto removed = remove_if([&](const FlowEntry& e) { return &e == victim; });
  return removed.empty() ? nullptr : std::move(removed.front());
}

FlowEntryPtr FlowTable::add(FlowEntry entry, double now) {
  entry.created_at = now;
  entry.last_used_at = now;
  auto ptr = std::make_shared<FlowEntry>(std::move(entry));

  const std::size_t n_groups = groups_.size();
  auto& group = groups_[ptr->match.mask()];
  group.mask = ptr->match.mask();
  // New group, or a priority that raises the group's ceiling: either can
  // change the probe order. Same-priority inserts (the steady state) leave
  // it untouched so lookups skip the re-sort.
  if (groups_.size() != n_groups || ptr->priority > group.max_priority)
    order_dirty_ = true;
  auto& bucket = group.by_key[ptr->match.value()];

  // Replace an identical (match, priority) entry if present.
  const auto existing = std::find_if(
      bucket.begin(), bucket.end(), [&](const FlowEntryPtr& e) {
        return e->priority == ptr->priority && e->match == ptr->match;
      });
  if (existing != bucket.end()) {
    *existing = ptr;
  } else {
    bucket.push_back(ptr);
    // Buckets are almost always singletons (one priority per masked key);
    // only re-sort when a second entry actually lands in one.
    if (bucket.size() > 1) {
      std::sort(bucket.begin(), bucket.end(),
                [](const FlowEntryPtr& a, const FlowEntryPtr& b) {
                  return a->priority > b->priority;
                });
    }
    ++count_;
  }
  group.max_priority = std::max(group.max_priority, ptr->priority);
  republish_view();
  return ptr;
}

std::size_t FlowTable::modify(const openflow::Match& match,
                              std::uint16_t priority,
                              const openflow::InstructionList& instructions,
                              bool strict) {
  std::size_t updated = 0;
  for (auto& [mask, group] : groups_) {
    for (auto& [key, bucket] : group.by_key) {
      for (auto& entry : bucket) {
        const bool hit = strict
                             ? entry->priority == priority && entry->match == match
                             : entry->match.subsumed_by(match);
        if (hit) {
          if (concurrent_) {
            // Clone-and-swap: the published view (and any reader already
            // holding this entry) keeps the old instruction list intact;
            // the replacement becomes visible at the next republish.
            entry = std::make_shared<FlowEntry>(*entry);
          }
          entry->instructions = instructions;
          ++updated;
        }
      }
    }
  }
  if (updated > 0) republish_view();
  return updated;
}

template <typename Pred>
std::vector<FlowEntryPtr> FlowTable::remove_if(Pred&& pred) {
  std::vector<FlowEntryPtr> removed;
  for (auto group_it = groups_.begin(); group_it != groups_.end();) {
    auto& group = group_it->second;
    for (auto key_it = group.by_key.begin(); key_it != group.by_key.end();) {
      auto& bucket = key_it->second;
      const auto mid = std::stable_partition(
          bucket.begin(), bucket.end(),
          [&](const FlowEntryPtr& e) { return !pred(*e); });
      removed.insert(removed.end(), mid, bucket.end());
      bucket.erase(mid, bucket.end());
      key_it = bucket.empty() ? group.by_key.erase(key_it) : std::next(key_it);
    }
    if (group.by_key.empty()) {
      group_it = groups_.erase(group_it);
    } else {
      rebuild_group_priority(group);
      ++group_it;
    }
  }
  count_ -= removed.size();
  // Erased groups invalidate probe_order_ pointers; rebuilt priorities can
  // reorder it. Removals are rare next to lookups, so just re-sort lazily.
  if (!removed.empty()) {
    order_dirty_ = true;
    republish_view();
  }
  return removed;
}

std::vector<FlowEntryPtr> FlowTable::remove(const openflow::Match& match,
                                            std::uint16_t priority, bool strict,
                                            std::uint32_t out_port) {
  return remove_if([&](const FlowEntry& e) {
    if (!outputs_to_port(e, out_port)) return false;
    return strict ? e.priority == priority && e.match == match
                  : e.match.subsumed_by(match);
  });
}

void FlowTable::rebuild_group_priority(MaskGroup& group) noexcept {
  group.max_priority = 0;
  for (const auto& [key, bucket] : group.by_key) {
    if (!bucket.empty())
      group.max_priority = std::max(group.max_priority, bucket.front()->priority);
  }
}

void FlowTable::refresh_probe_order() const {
  if (!order_dirty_ && probe_order_.size() == groups_.size()) return;
  probe_order_.clear();
  probe_order_.reserve(groups_.size());
  for (const auto& [mask, group] : groups_) probe_order_.push_back(&group);
  std::stable_sort(probe_order_.begin(), probe_order_.end(),
                   [](const MaskGroup* a, const MaskGroup* b) {
                     return a->max_priority > b->max_priority;
                   });
  order_dirty_ = false;
}

namespace {

// Mask specificity for the explain record: how many fields are constrained.
int mask_field_count(const net::FlowMask& m) noexcept {
  int n = 0;
  n += m.in_port != 0;
  n += m.eth_src != 0;
  n += m.eth_dst != 0;
  n += m.eth_type != 0;
  n += m.vlan_vid != 0;
  n += m.vlan_pcp != 0;
  n += m.ipv4_src != 0;
  n += m.ipv4_dst != 0;
  n += (m.ipv6_src_hi | m.ipv6_src_lo) != 0;
  n += (m.ipv6_dst_hi | m.ipv6_dst_lo) != 0;
  n += m.ip_proto != 0;
  n += m.ip_dscp != 0;
  n += m.l4_src != 0;
  n += m.l4_dst != 0;
  n += m.arp_op != 0;
  return n;
}

}  // namespace

FlowEntryPtr FlowTable::lookup(const net::FlowKey& key) noexcept {
  ++lookups_;
  FlowEntryPtr best = find_best(key);
  if (best) ++matches_;
  return best;
}

FlowEntryPtr FlowTable::find_best(const net::FlowKey& key,
                                  LookupExplain* ex) const {
  FlowEntryPtr best;

  if (mode_ == LookupMode::LinearScan) {
    for (const auto& [mask, group] : groups_) {
      bool hit = false;
      for (const auto& [mkey, bucket] : group.by_key) {
        for (const auto& entry : bucket) {
          if (!entry->match.matches(key)) continue;
          hit = true;
          if (!best || entry->priority > best->priority) best = entry;
        }
      }
      if (ex)
        ex->masks.push_back({mask_field_count(mask), group.max_priority, hit,
                             /*pruned=*/false});
    }
  } else {
    refresh_probe_order();
    for (std::size_t i = 0; i < probe_order_.size(); ++i) {
      const MaskGroup& group = *probe_order_[i];
      if (best && group.max_priority <= best->priority) {
        // Probe order is sorted by max_priority desc, so no later group
        // can beat the best hit either: record the tail as pruned (the
        // explain contract covers every mask) and stop probing.
        if (ex) {
          for (std::size_t j = i; j < probe_order_.size(); ++j)
            ex->masks.push_back({mask_field_count(probe_order_[j]->mask),
                                 probe_order_[j]->max_priority,
                                 /*hit=*/false, /*pruned=*/true});
        }
        break;
      }
      const net::FlowKey masked = group.mask.apply(key);
      const auto it = group.by_key.find(masked);
      const bool hit = it != group.by_key.end();
      if (ex)
        ex->masks.push_back({mask_field_count(group.mask), group.max_priority,
                             hit, /*pruned=*/false});
      if (!hit) continue;
      // Buckets are priority-sorted; first better-than-best wins.
      for (const auto& entry : it->second) {
        if (best && entry->priority <= best->priority) break;
        best = entry;
        break;
      }
    }
  }

  return best;
}

std::vector<FlowEntryPtr> FlowTable::expire(double now) {
  return remove_if([&](const FlowEntry& e) {
    if (e.hard_timeout > 0 && now - e.created_at >= e.hard_timeout) return true;
    if (e.idle_timeout > 0 && now - e.last_used_at >= e.idle_timeout) return true;
    return false;
  });
}

std::vector<FlowEntryPtr> FlowTable::entries() const {
  std::vector<FlowEntryPtr> out;
  out.reserve(count_);
  for (const auto& [mask, group] : groups_)
    for (const auto& [key, bucket] : group.by_key)
      out.insert(out.end(), bucket.begin(), bucket.end());
  return out;
}

FlowTable FlowTable::clone() const {
  FlowTable copy = *this;  // structure + counters; entries still shared
  // The copied probe order still points into *this* table's groups.
  copy.probe_order_.clear();
  copy.order_dirty_ = true;
  for (auto& [mask, group] : copy.groups_)
    for (auto& [key, bucket] : group.by_key)
      for (FlowEntryPtr& entry : bucket)
        entry = std::make_shared<FlowEntry>(*entry);
  copy.republish_view();  // the copy-published view shared the old entries
  return copy;
}

}  // namespace zen::dataplane
