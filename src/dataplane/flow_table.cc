#include "dataplane/flow_table.h"

#include <algorithm>

namespace zen::dataplane {

bool outputs_to_port(const FlowEntry& entry, std::uint32_t port) noexcept {
  if (port == openflow::Ports::kAny) return true;
  for (const auto& ins : entry.instructions) {
    const openflow::ActionList* actions = nullptr;
    if (const auto* apply = std::get_if<openflow::ApplyActions>(&ins))
      actions = &apply->actions;
    else if (const auto* write = std::get_if<openflow::WriteActions>(&ins))
      actions = &write->actions;
    if (!actions) continue;
    for (const auto& a : *actions) {
      if (const auto* out = std::get_if<openflow::OutputAction>(&a);
          out && out->port == port)
        return true;
    }
  }
  return false;
}

bool FlowTable::contains(const openflow::Match& match,
                         std::uint16_t priority) const noexcept {
  const auto group_it = groups_.find(match.mask());
  if (group_it == groups_.end()) return false;
  const auto bucket_it = group_it->second.by_key.find(match.value());
  if (bucket_it == group_it->second.by_key.end()) return false;
  return std::any_of(bucket_it->second.begin(), bucket_it->second.end(),
                     [&](const FlowEntryPtr& e) {
                       return e->priority == priority && e->match == match;
                     });
}

FlowEntryPtr FlowTable::evict(std::uint16_t incoming_importance) {
  if (eviction_ == EvictionPolicy::Off || count_ == 0) return nullptr;

  // Victim order: Importance = (importance asc, last_used_at asc);
  // Lru = last_used_at asc alone. Scanning every entry keeps the policy
  // exact; eviction only runs when a bounded table is already full, so the
  // scan is bounded by max_entries.
  const FlowEntry* victim = nullptr;
  for (const auto& [mask, group] : groups_) {
    for (const auto& [key, bucket] : group.by_key) {
      for (const auto& entry : bucket) {
        if (!victim) {
          victim = entry.get();
          continue;
        }
        bool better;
        if (eviction_ == EvictionPolicy::Importance) {
          better = entry->importance < victim->importance ||
                   (entry->importance == victim->importance &&
                    entry->last_used_at < victim->last_used_at);
        } else {
          better = entry->last_used_at < victim->last_used_at;
        }
        if (better) victim = entry.get();
      }
    }
  }
  if (eviction_ == EvictionPolicy::Importance &&
      victim->importance > incoming_importance) {
    return nullptr;  // nothing expendable: the Add must fail, not displace
  }
  auto removed = remove_if([&](const FlowEntry& e) { return &e == victim; });
  return removed.empty() ? nullptr : std::move(removed.front());
}

FlowEntryPtr FlowTable::add(FlowEntry entry, double now) {
  entry.created_at = now;
  entry.last_used_at = now;
  auto ptr = std::make_shared<FlowEntry>(std::move(entry));

  const std::size_t n_groups = groups_.size();
  auto& group = groups_[ptr->match.mask()];
  group.mask = ptr->match.mask();
  // New group, or a priority that raises the group's ceiling: either can
  // change the probe order. Same-priority inserts (the steady state) leave
  // it untouched so lookups skip the re-sort.
  if (groups_.size() != n_groups || ptr->priority > group.max_priority)
    order_dirty_ = true;
  auto& bucket = group.by_key[ptr->match.value()];

  // Replace an identical (match, priority) entry if present.
  const auto existing = std::find_if(
      bucket.begin(), bucket.end(), [&](const FlowEntryPtr& e) {
        return e->priority == ptr->priority && e->match == ptr->match;
      });
  if (existing != bucket.end()) {
    *existing = ptr;
  } else {
    bucket.push_back(ptr);
    // Buckets are almost always singletons (one priority per masked key);
    // only re-sort when a second entry actually lands in one.
    if (bucket.size() > 1) {
      std::sort(bucket.begin(), bucket.end(),
                [](const FlowEntryPtr& a, const FlowEntryPtr& b) {
                  return a->priority > b->priority;
                });
    }
    ++count_;
  }
  group.max_priority = std::max(group.max_priority, ptr->priority);
  return ptr;
}

std::size_t FlowTable::modify(const openflow::Match& match,
                              std::uint16_t priority,
                              const openflow::InstructionList& instructions,
                              bool strict) {
  std::size_t updated = 0;
  for (auto& [mask, group] : groups_) {
    for (auto& [key, bucket] : group.by_key) {
      for (auto& entry : bucket) {
        const bool hit = strict
                             ? entry->priority == priority && entry->match == match
                             : entry->match.subsumed_by(match);
        if (hit) {
          entry->instructions = instructions;
          ++updated;
        }
      }
    }
  }
  return updated;
}

template <typename Pred>
std::vector<FlowEntryPtr> FlowTable::remove_if(Pred&& pred) {
  std::vector<FlowEntryPtr> removed;
  for (auto group_it = groups_.begin(); group_it != groups_.end();) {
    auto& group = group_it->second;
    for (auto key_it = group.by_key.begin(); key_it != group.by_key.end();) {
      auto& bucket = key_it->second;
      const auto mid = std::stable_partition(
          bucket.begin(), bucket.end(),
          [&](const FlowEntryPtr& e) { return !pred(*e); });
      removed.insert(removed.end(), mid, bucket.end());
      bucket.erase(mid, bucket.end());
      key_it = bucket.empty() ? group.by_key.erase(key_it) : std::next(key_it);
    }
    if (group.by_key.empty()) {
      group_it = groups_.erase(group_it);
    } else {
      rebuild_group_priority(group);
      ++group_it;
    }
  }
  count_ -= removed.size();
  // Erased groups invalidate probe_order_ pointers; rebuilt priorities can
  // reorder it. Removals are rare next to lookups, so just re-sort lazily.
  if (!removed.empty()) order_dirty_ = true;
  return removed;
}

std::vector<FlowEntryPtr> FlowTable::remove(const openflow::Match& match,
                                            std::uint16_t priority, bool strict,
                                            std::uint32_t out_port) {
  return remove_if([&](const FlowEntry& e) {
    if (!outputs_to_port(e, out_port)) return false;
    return strict ? e.priority == priority && e.match == match
                  : e.match.subsumed_by(match);
  });
}

void FlowTable::rebuild_group_priority(MaskGroup& group) noexcept {
  group.max_priority = 0;
  for (const auto& [key, bucket] : group.by_key) {
    if (!bucket.empty())
      group.max_priority = std::max(group.max_priority, bucket.front()->priority);
  }
}

void FlowTable::refresh_probe_order() const {
  if (!order_dirty_ && probe_order_.size() == groups_.size()) return;
  probe_order_.clear();
  probe_order_.reserve(groups_.size());
  for (const auto& [mask, group] : groups_) probe_order_.push_back(&group);
  std::stable_sort(probe_order_.begin(), probe_order_.end(),
                   [](const MaskGroup* a, const MaskGroup* b) {
                     return a->max_priority > b->max_priority;
                   });
  order_dirty_ = false;
}

namespace {

// Mask specificity for the explain record: how many fields are constrained.
int mask_field_count(const net::FlowMask& m) noexcept {
  int n = 0;
  n += m.in_port != 0;
  n += m.eth_src != 0;
  n += m.eth_dst != 0;
  n += m.eth_type != 0;
  n += m.vlan_vid != 0;
  n += m.vlan_pcp != 0;
  n += m.ipv4_src != 0;
  n += m.ipv4_dst != 0;
  n += (m.ipv6_src_hi | m.ipv6_src_lo) != 0;
  n += (m.ipv6_dst_hi | m.ipv6_dst_lo) != 0;
  n += m.ip_proto != 0;
  n += m.ip_dscp != 0;
  n += m.l4_src != 0;
  n += m.l4_dst != 0;
  n += m.arp_op != 0;
  return n;
}

}  // namespace

FlowEntryPtr FlowTable::lookup(const net::FlowKey& key) noexcept {
  ++lookups_;
  FlowEntryPtr best = find_best(key);
  if (best) ++matches_;
  return best;
}

FlowEntryPtr FlowTable::find_best(const net::FlowKey& key,
                                  LookupExplain* ex) const {
  FlowEntryPtr best;

  if (mode_ == LookupMode::LinearScan) {
    for (const auto& [mask, group] : groups_) {
      bool hit = false;
      for (const auto& [mkey, bucket] : group.by_key) {
        for (const auto& entry : bucket) {
          if (!entry->match.matches(key)) continue;
          hit = true;
          if (!best || entry->priority > best->priority) best = entry;
        }
      }
      if (ex)
        ex->masks.push_back({mask_field_count(mask), group.max_priority, hit,
                             /*pruned=*/false});
    }
  } else {
    refresh_probe_order();
    for (std::size_t i = 0; i < probe_order_.size(); ++i) {
      const MaskGroup& group = *probe_order_[i];
      if (best && group.max_priority <= best->priority) {
        // Probe order is sorted by max_priority desc, so no later group
        // can beat the best hit either: record the tail as pruned (the
        // explain contract covers every mask) and stop probing.
        if (ex) {
          for (std::size_t j = i; j < probe_order_.size(); ++j)
            ex->masks.push_back({mask_field_count(probe_order_[j]->mask),
                                 probe_order_[j]->max_priority,
                                 /*hit=*/false, /*pruned=*/true});
        }
        break;
      }
      const net::FlowKey masked = group.mask.apply(key);
      const auto it = group.by_key.find(masked);
      const bool hit = it != group.by_key.end();
      if (ex)
        ex->masks.push_back({mask_field_count(group.mask), group.max_priority,
                             hit, /*pruned=*/false});
      if (!hit) continue;
      // Buckets are priority-sorted; first better-than-best wins.
      for (const auto& entry : it->second) {
        if (best && entry->priority <= best->priority) break;
        best = entry;
        break;
      }
    }
  }

  return best;
}

std::vector<FlowEntryPtr> FlowTable::expire(double now) {
  return remove_if([&](const FlowEntry& e) {
    if (e.hard_timeout > 0 && now - e.created_at >= e.hard_timeout) return true;
    if (e.idle_timeout > 0 && now - e.last_used_at >= e.idle_timeout) return true;
    return false;
  });
}

std::vector<FlowEntryPtr> FlowTable::entries() const {
  std::vector<FlowEntryPtr> out;
  out.reserve(count_);
  for (const auto& [mask, group] : groups_)
    for (const auto& [key, bucket] : group.by_key)
      out.insert(out.end(), bucket.begin(), bucket.end());
  return out;
}

FlowTable FlowTable::clone() const {
  FlowTable copy = *this;  // structure + counters; entries still shared
  // The copied probe order still points into *this* table's groups.
  copy.probe_order_.clear();
  copy.order_dirty_ = true;
  for (auto& [mask, group] : copy.groups_)
    for (auto& [key, bucket] : group.by_key)
      for (FlowEntryPtr& entry : bucket)
        entry = std::make_shared<FlowEntry>(*entry);
  return copy;
}

}  // namespace zen::dataplane
