#include "dataplane/packet_rewrite.h"

#include "net/checksum.h"
#include "util/buffer.h"

namespace zen::dataplane {

MutablePacket::MutablePacket(std::span<const std::uint8_t> frame)
    : original_(frame.begin(), frame.end()) {
  auto parsed = net::parse_packet(frame);
  if (!parsed.ok()) return;
  parsed_ = std::move(parsed).value();
  payload_.assign(frame.begin() + static_cast<std::ptrdiff_t>(parsed_.payload_offset),
                  frame.end());
  ok_ = true;
}

bool MutablePacket::apply(const openflow::Action& action) {
  using namespace openflow;
  return std::visit(
      [&](const auto& a) -> bool {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, SetEthSrcAction>) {
          parsed_.eth.src = a.mac;
          modified_ = true;
          return true;
        } else if constexpr (std::is_same_v<T, SetEthDstAction>) {
          parsed_.eth.dst = a.mac;
          modified_ = true;
          return true;
        } else if constexpr (std::is_same_v<T, SetIpv4SrcAction>) {
          if (!parsed_.ipv4) return false;
          parsed_.ipv4->src = a.addr;
          modified_ = true;
          return true;
        } else if constexpr (std::is_same_v<T, SetIpv4DstAction>) {
          if (!parsed_.ipv4) return false;
          parsed_.ipv4->dst = a.addr;
          modified_ = true;
          return true;
        } else if constexpr (std::is_same_v<T, SetL4SrcAction>) {
          if (parsed_.tcp) parsed_.tcp->src_port = a.port;
          else if (parsed_.udp) parsed_.udp->src_port = a.port;
          else return false;
          modified_ = true;
          return true;
        } else if constexpr (std::is_same_v<T, SetL4DstAction>) {
          if (parsed_.tcp) parsed_.tcp->dst_port = a.port;
          else if (parsed_.udp) parsed_.udp->dst_port = a.port;
          else return false;
          modified_ = true;
          return true;
        } else if constexpr (std::is_same_v<T, SetIpDscpAction>) {
          if (parsed_.ipv4) parsed_.ipv4->dscp = a.dscp;
          else if (parsed_.ipv6)
            parsed_.ipv6->traffic_class =
                static_cast<std::uint8_t>((a.dscp << 2) |
                                          (parsed_.ipv6->traffic_class & 0x3));
          else return false;
          modified_ = true;
          return true;
        } else if constexpr (std::is_same_v<T, PushVlanAction>) {
          if (parsed_.vlan) return false;  // single tag only
          net::VlanTag tag;
          tag.vid = a.vid;
          tag.pcp = a.pcp;
          tag.ether_type = parsed_.eth.ether_type;
          parsed_.vlan = tag;
          parsed_.eth.ether_type = net::EtherType::kVlan;
          modified_ = true;
          return true;
        } else if constexpr (std::is_same_v<T, PopVlanAction>) {
          if (!parsed_.vlan) return false;
          parsed_.eth.ether_type = parsed_.vlan->ether_type;
          parsed_.vlan.reset();
          modified_ = true;
          return true;
        } else if constexpr (std::is_same_v<T, DecTtlAction>) {
          if (parsed_.ipv4) {
            if (parsed_.ipv4->ttl <= 1) return false;
            --parsed_.ipv4->ttl;
          } else if (parsed_.ipv6) {
            if (parsed_.ipv6->hop_limit <= 1) return false;
            --parsed_.ipv6->hop_limit;
          } else {
            return false;
          }
          modified_ = true;
          return true;
        } else {
          // Output / Group / SetQueue: handled by the pipeline, not here.
          return true;
        }
      },
      action);
}

std::size_t MutablePacket::wire_size() const noexcept {
  if (!modified_) return original_.size();
  std::size_t n = net::EthernetHeader::kSize;
  if (parsed_.vlan) n += net::VlanTag::kSize;
  if (parsed_.arp) n += net::ArpMessage::kSize;
  if (parsed_.ipv4) n += net::Ipv4Header::kMinSize;
  if (parsed_.ipv6) n += net::Ipv6Header::kSize;
  if (parsed_.tcp) n += net::TcpHeader::kMinSize;
  if (parsed_.udp) n += net::UdpHeader::kSize;
  if (parsed_.icmp) n += net::IcmpHeader::kSize;
  return n + payload_.size();
}

net::Bytes MutablePacket::serialize() const {
  if (!modified_) return original_;

  net::Bytes out;
  out.reserve(wire_size());
  util::ByteWriter w(out);
  parsed_.eth.serialize(w);
  if (parsed_.vlan) parsed_.vlan->serialize(w);
  if (parsed_.arp) {
    parsed_.arp->serialize(w);
    w.bytes(payload_);
    return out;
  }
  if (parsed_.ipv4) {
    // Recompute total_length from current L4 + payload.
    net::Ipv4Header ip = *parsed_.ipv4;
    std::size_t l4 = 0;
    if (parsed_.tcp) l4 = net::TcpHeader::kMinSize;
    else if (parsed_.udp) l4 = net::UdpHeader::kSize;
    else if (parsed_.icmp) l4 = net::IcmpHeader::kSize;
    ip.total_length = static_cast<std::uint16_t>(net::Ipv4Header::kMinSize + l4 +
                                                 payload_.size());
    ip.serialize(w);  // serializes with fresh header checksum

    // L4 segment with pseudo-header checksum.
    net::Bytes segment;
    util::ByteWriter sw(segment);
    std::size_t checksum_offset = SIZE_MAX;
    if (parsed_.tcp) {
      net::TcpHeader t = *parsed_.tcp;
      t.checksum = 0;
      t.serialize(sw);
      checksum_offset = 16;
    } else if (parsed_.udp) {
      net::UdpHeader u = *parsed_.udp;
      u.checksum = 0;
      u.length = static_cast<std::uint16_t>(net::UdpHeader::kSize + payload_.size());
      u.serialize(sw);
      checksum_offset = 6;
    } else if (parsed_.icmp) {
      net::IcmpHeader ic = *parsed_.icmp;
      ic.checksum = 0;
      ic.serialize(sw);
      checksum_offset = 2;
    }
    sw.bytes(payload_);
    if (checksum_offset != SIZE_MAX) {
      const std::uint16_t sum =
          parsed_.icmp
              ? net::internet_checksum(segment)
              : net::l4_checksum_ipv4(ip.src, ip.dst, ip.protocol, segment);
      sw.patch_u16(checksum_offset, sum);
    }
    w.bytes(segment);
    return out;
  }
  if (parsed_.ipv6) {
    net::Ipv6Header ip6 = *parsed_.ipv6;
    std::size_t l4 = 0;
    if (parsed_.tcp) l4 = net::TcpHeader::kMinSize;
    else if (parsed_.udp) l4 = net::UdpHeader::kSize;
    ip6.payload_length = static_cast<std::uint16_t>(l4 + payload_.size());
    ip6.serialize(w);
    if (parsed_.tcp) parsed_.tcp->serialize(w);
    else if (parsed_.udp) parsed_.udp->serialize(w);
    w.bytes(payload_);
    return out;
  }
  w.bytes(payload_);
  return out;
}

}  // namespace zen::dataplane
