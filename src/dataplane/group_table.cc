#include "dataplane/group_table.h"

#include <numeric>

namespace zen::dataplane {

bool GroupTable::apply(const openflow::GroupMod& mod) {
  const auto it = groups_.find(mod.group_id);
  switch (mod.command) {
    case openflow::GroupModCommand::Add: {
      if (it != groups_.end()) return false;
      if (mod.type == openflow::GroupType::Select) {
        std::uint32_t total = 0;
        for (const auto& b : mod.buckets) total += b.weight;
        if (total == 0) return false;
      }
      if (mod.type == openflow::GroupType::Indirect && mod.buckets.size() != 1)
        return false;
      groups_.emplace(mod.group_id, Group{mod.type, mod.buckets, 0});
      return true;
    }
    case openflow::GroupModCommand::Modify: {
      if (it == groups_.end()) return false;
      if (mod.type == openflow::GroupType::Select) {
        std::uint32_t total = 0;
        for (const auto& b : mod.buckets) total += b.weight;
        if (total == 0) return false;
      }
      it->second.type = mod.type;
      it->second.buckets = mod.buckets;
      return true;
    }
    case openflow::GroupModCommand::Delete: {
      if (it == groups_.end()) return false;
      groups_.erase(it);
      return true;
    }
  }
  return false;
}

const Group* GroupTable::find(std::uint32_t group_id) const noexcept {
  const auto it = groups_.find(group_id);
  return it == groups_.end() ? nullptr : &it->second;
}

Group* GroupTable::find(std::uint32_t group_id) noexcept {
  const auto it = groups_.find(group_id);
  return it == groups_.end() ? nullptr : &it->second;
}

const openflow::Bucket* GroupTable::select_bucket(
    const Group& group, const net::FlowKey& key, const PortLiveFn& port_live,
    SelectExplain* ex) const noexcept {
  const auto chosen = [&](const openflow::Bucket* bucket) {
    if (ex && bucket)
      ex->bucket_index = static_cast<int>(bucket - group.buckets.data());
    return bucket;
  };
  if (group.buckets.empty()) return nullptr;
  if (group.type == openflow::GroupType::FastFailover) {
    for (const auto& bucket : group.buckets) {
      if (bucket.watch_port == openflow::Ports::kAny || !port_live ||
          port_live(bucket.watch_port))
        return chosen(&bucket);
      if (ex) ++ex->dead_skipped;
    }
    return nullptr;  // all watched ports down: drop
  }
  if (group.type != openflow::GroupType::Select)
    return chosen(&group.buckets.front());

  const std::uint64_t total = std::accumulate(
      group.buckets.begin(), group.buckets.end(), std::uint64_t{0},
      [](std::uint64_t acc, const openflow::Bucket& b) { return acc + b.weight; });
  if (total == 0) return nullptr;

  std::uint64_t point = key.hash() % total;
  if (ex) {
    ex->hash_point = point;
    ex->total_weight = total;
  }
  for (const auto& bucket : group.buckets) {
    if (point < bucket.weight) return chosen(&bucket);
    point -= bucket.weight;
  }
  return chosen(&group.buckets.back());
}

}  // namespace zen::dataplane
