#include "dataplane/megaflow_cache.h"

#include "obs/metrics.h"

namespace zen::dataplane {

namespace {

struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  static CacheMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static CacheMetrics m{
        reg.counter("zen_dataplane_megaflow_hits_total", "",
                    "Megaflow cache hits (fast-path forwards)"),
        reg.counter("zen_dataplane_megaflow_misses_total", "",
                    "Megaflow cache misses (full pipeline traversals)"),
        reg.counter("zen_dataplane_megaflow_evictions_total", "",
                    "Megaflow entries evicted at capacity")};
    return m;
  }
};

}  // namespace

void MegaflowCache::sync_version(std::uint64_t version) {
  // Coarse invalidation: any rule-affecting change bumps the version and
  // strands every cached entry at once. Dropping them eagerly on the first
  // probe under a new version keeps the table from filling with dead
  // entries that every later find would walk (and, at capacity, evict one
  // by one). The clear's cost is bounded by the inserts since the last
  // bump, so it amortizes to O(1) per insert.
  if (version != last_version_) {
    map_.clear();
    last_version_ = version;
  }
}

const CachedVerdict* MegaflowCache::find(const net::FlowKey& key,
                                         std::uint64_t version) {
  if (!enabled_) return nullptr;
  sync_version(version);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    if (shard_) shard_->bump(miss_slot_);
    else CacheMetrics::get().misses.inc();
    return nullptr;
  }
  ++hits_;
  if (shard_) shard_->bump(hit_slot_);
  else CacheMetrics::get().hits.inc();
  return &it->second.verdict;
}

const CachedVerdict* MegaflowCache::peek(const net::FlowKey& key,
                                         std::uint64_t version) const noexcept {
  if (!enabled_) return nullptr;
  const auto it = map_.find(key);
  if (it == map_.end() || it->second.version != version) return nullptr;
  return &it->second.verdict;
}

void MegaflowCache::insert(const net::FlowKey& key, CachedVerdict verdict,
                           std::uint64_t version) {
  if (!enabled_ || !verdict.cacheable) return;
  sync_version(version);
  // Land the slot first, then evict if that pushed the table past capacity.
  // Steady-state size is capacity_ exactly as with evict-then-insert, but
  // the insert hashes the key once instead of three times
  // (contains + erase + operator[]).
  const auto [it, inserted] = map_.try_emplace(key);
  it->second.verdict = std::move(verdict);
  it->second.version = version;
  if (!inserted || map_.size() <= capacity_ || map_.size() < 2) return;
  // Random replacement in O(1) expected: probe pseudo-random hash buckets
  // and evict the first occupant found (a kernel flow cache under churn
  // behaves the same way) — skipping the entry that just landed.
  const std::size_t buckets = map_.bucket_count();
  for (;;) {
    evict_seed_ =
        evict_seed_ * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::size_t b = (evict_seed_ >> 33) % buckets;
    for (auto vit = map_.begin(b); vit != map_.end(b); ++vit) {
      if (vit->first == key) continue;
      map_.erase(vit->first);
      ++evictions_;
      if (shard_) shard_->bump(evict_slot_);
      else CacheMetrics::get().evictions.inc();
      return;
    }
  }
}

}  // namespace zen::dataplane
