#include "dataplane/megaflow_cache.h"

#include <algorithm>

#include "obs/metrics.h"

namespace zen::dataplane {

namespace {

struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  static CacheMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static CacheMetrics m{
        reg.counter("zen_dataplane_megaflow_hits_total", "",
                    "Megaflow cache hits (fast-path forwards)"),
        reg.counter("zen_dataplane_megaflow_misses_total", "",
                    "Megaflow cache misses (full pipeline traversals)"),
        reg.counter("zen_dataplane_megaflow_evictions_total", "",
                    "Megaflow entries evicted at capacity")};
    return m;
  }
};

// Finalizer-mixed key hash: the raw std::hash of a FlowKey picks both the
// way and the probe start, so its low bits must be well distributed.
std::uint64_t mix_key(const net::FlowKey& key) {
  std::uint64_t h = std::hash<net::FlowKey>{}(key);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

MegaflowCache::ConcTable::ConcTable(std::size_t n_slots, std::uint64_t ver)
    : version(ver), mask(n_slots - 1), slots(n_slots) {}

MegaflowCache::ConcTable::~ConcTable() {
  // Runs under the epoch reclaimer once no reader can reach this
  // generation; whatever is still linked belongs to the table.
  for (auto& slot : slots) delete slot.load(std::memory_order_relaxed);
}

MegaflowCache::MegaflowCache(MegaflowCache&& other) noexcept
    : capacity_(other.capacity_),
      enabled_(other.enabled_),
      shard_(other.shard_),
      hit_slot_(other.hit_slot_),
      miss_slot_(other.miss_slot_),
      evict_slot_(other.evict_slot_),
      map_(std::move(other.map_)),
      hits_(other.hits_),
      misses_(other.misses_),
      evictions_(other.evictions_),
      last_version_(other.last_version_),
      evict_seed_(other.evict_seed_),
      n_ways_(other.n_ways_),
      way_slots_(other.way_slots_),
      way_limit_(other.way_limit_),
      ways_(std::move(other.ways_)),
      conc_hits_(other.conc_hits_.load(std::memory_order_relaxed)),
      conc_misses_(other.conc_misses_.load(std::memory_order_relaxed)),
      conc_evictions_(other.conc_evictions_.load(std::memory_order_relaxed)) {
  other.n_ways_ = 0;
  other.map_.clear();
}

MegaflowCache& MegaflowCache::operator=(MegaflowCache&& other) noexcept {
  if (this == &other) return *this;
  this->~MegaflowCache();
  new (this) MegaflowCache(std::move(other));
  return *this;
}

MegaflowCache::~MegaflowCache() {
  // Destruction contract: no concurrent readers. Currently published
  // tables are ours to free; previously swapped-out generations are in the
  // (process-lifetime) epoch reclaimer already.
  if (!ways_) return;
  for (std::size_t w = 0; w < n_ways_; ++w)
    delete ways_[w].table.load(std::memory_order_relaxed);
}

void MegaflowCache::enable_concurrent(std::size_t ways) {
  if (concurrent()) return;
  map_.clear();
  n_ways_ = ways == 0 ? 1 : ways;
  way_slots_ = round_up_pow2(
      std::max<std::size_t>(16, (capacity_ + n_ways_ - 1) / n_ways_));
  way_limit_ = way_slots_ - way_slots_ / 4;
  ways_ = std::make_unique<Way[]>(n_ways_);
  for (std::size_t w = 0; w < n_ways_; ++w)
    ways_[w].table.store(new ConcTable(way_slots_, last_version_),
                         std::memory_order_release);
}

void MegaflowCache::clear() noexcept {
  if (!concurrent()) {
    map_.clear();
    return;
  }
  auto& ebr = util::EpochReclaimer::global();
  for (std::size_t w = 0; w < n_ways_; ++w) {
    ConcTable* t = ways_[w].table.load(std::memory_order_acquire);
    ways_[w].table.store(new ConcTable(way_slots_, t->version),
                         std::memory_order_release);
    ebr.retire(t);
  }
}

std::size_t MegaflowCache::size() const noexcept {
  if (!concurrent()) return map_.size();
  std::size_t n = 0;
  for (std::size_t w = 0; w < n_ways_; ++w)
    n += ways_[w].table.load(std::memory_order_acquire)
             ->size.load(std::memory_order_relaxed);
  return n;
}

void MegaflowCache::sync_version(std::uint64_t version) {
  // Coarse invalidation: any rule-affecting change bumps the version and
  // strands every cached entry at once. Dropping them eagerly on the first
  // probe under a new version keeps the table from filling with dead
  // entries that every later find would walk (and, at capacity, evict one
  // by one). The clear's cost is bounded by the inserts since the last
  // bump, so it amortizes to O(1) per insert.
  if (version != last_version_) {
    map_.clear();
    last_version_ = version;
  }
}

void MegaflowCache::note_miss() {
  if (shard_) shard_->bump(miss_slot_);
  else CacheMetrics::get().misses.inc();
}

const CachedVerdict* MegaflowCache::find(const net::FlowKey& key,
                                         std::uint64_t version) {
  if (!enabled_) return nullptr;
  sync_version(version);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    note_miss();
    return nullptr;
  }
  ++hits_;
  if (shard_) shard_->bump(hit_slot_);
  else CacheMetrics::get().hits.inc();
  return &it->second.verdict;
}

MegaflowCache::ConcTable* MegaflowCache::swap_way(Way& way,
                                                  ConcTable* expected,
                                                  std::uint64_t version,
                                                  bool count_evictions) {
  auto* fresh = new ConcTable(way_slots_, version);
  if (way.table.compare_exchange_strong(expected, fresh,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
    if (count_evictions) {
      const auto n = expected->size.load(std::memory_order_relaxed);
      conc_evictions_.fetch_add(n, std::memory_order_relaxed);
      if (shard_) shard_->bump(evict_slot_, n);
      else CacheMetrics::get().evictions.inc(n);
    }
    // Readers pinned before the swap may still probe `expected`: retire,
    // don't delete. The table destructor frees its entries with it.
    util::EpochReclaimer::global().retire(expected);
    return fresh;
  }
  // Lost the race; nobody ever saw `fresh`.
  delete fresh;
  return expected;  // CAS loaded the current table into expected
}

const CachedVerdict* MegaflowCache::find(const net::FlowKey& key,
                                         std::uint64_t version,
                                         util::EpochReclaimer::Guard&) {
  if (!enabled_) return nullptr;
  const std::uint64_t h = mix_key(key);
  Way& way = ways_[h % n_ways_];
  ConcTable* t = way.table.load(std::memory_order_acquire);
  if (t->version != version) {
    // Version moved: swap the stale generation out (first prober wins, as
    // in the classic mode's sync_version) — but only forward. A reader
    // still carrying an older version than the published table must not
    // roll the cache back; it just misses.
    if (t->version < version) swap_way(way, t, version, false);
    conc_misses_.fetch_add(1, std::memory_order_relaxed);
    note_miss();
    return nullptr;
  }
  std::size_t idx = (h >> 16) & t->mask;
  for (std::size_t probes = 0; probes <= t->mask; ++probes) {
    ConcEntry* e = t->slots[idx].load(std::memory_order_acquire);
    if (e == nullptr) break;
    if (e->key == key) {
      // Entries never outlive their table's version, but the stress
      // harness leans on this invariant, so keep the belt with the
      // suspenders: a mismatched entry is a miss, never a stale hit.
      if (e->version != version) break;
      conc_hits_.fetch_add(1, std::memory_order_relaxed);
      if (shard_) shard_->bump(hit_slot_);
      else CacheMetrics::get().hits.inc();
      return &e->verdict;
    }
    idx = (idx + 1) & t->mask;
  }
  conc_misses_.fetch_add(1, std::memory_order_relaxed);
  note_miss();
  return nullptr;
}

const CachedVerdict* MegaflowCache::peek(const net::FlowKey& key,
                                         std::uint64_t version) const noexcept {
  if (!enabled_) return nullptr;
  if (concurrent()) {
    const std::uint64_t h = mix_key(key);
    const ConcTable* t =
        ways_[h % n_ways_].table.load(std::memory_order_acquire);
    if (t->version != version) return nullptr;
    std::size_t idx = (h >> 16) & t->mask;
    for (std::size_t probes = 0; probes <= t->mask; ++probes) {
      const ConcEntry* e = t->slots[idx].load(std::memory_order_acquire);
      if (e == nullptr) return nullptr;
      if (e->key == key)
        return e->version == version ? &e->verdict : nullptr;
      idx = (idx + 1) & t->mask;
    }
    return nullptr;
  }
  const auto it = map_.find(key);
  if (it == map_.end() || it->second.version != version) return nullptr;
  return &it->second.verdict;
}

void MegaflowCache::insert(const net::FlowKey& key, CachedVerdict verdict,
                           std::uint64_t version) {
  if (!enabled_ || !verdict.cacheable) return;
  if (concurrent()) insert_concurrent(key, std::move(verdict), version);
  else insert_classic(key, std::move(verdict), version);
}

void MegaflowCache::insert_classic(const net::FlowKey& key,
                                   CachedVerdict verdict,
                                   std::uint64_t version) {
  sync_version(version);
  // Land the slot first, then evict if that pushed the table past capacity.
  // Steady-state size is capacity_ exactly as with evict-then-insert, but
  // the insert hashes the key once instead of three times
  // (contains + erase + operator[]).
  const auto [it, inserted] = map_.try_emplace(key);
  it->second.verdict = std::move(verdict);
  it->second.version = version;
  if (!inserted || map_.size() <= capacity_ || map_.size() < 2) return;
  // Random replacement in O(1) expected: probe pseudo-random hash buckets
  // and evict the first occupant found (a kernel flow cache under churn
  // behaves the same way) — skipping the entry that just landed.
  const std::size_t buckets = map_.bucket_count();
  for (;;) {
    evict_seed_ =
        evict_seed_ * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::size_t b = (evict_seed_ >> 33) % buckets;
    for (auto vit = map_.begin(b); vit != map_.end(b); ++vit) {
      if (vit->first == key) continue;
      map_.erase(vit->first);
      ++evictions_;
      if (shard_) shard_->bump(evict_slot_);
      else CacheMetrics::get().evictions.inc();
      return;
    }
  }
}

void MegaflowCache::insert_concurrent(const net::FlowKey& key,
                                      CachedVerdict verdict,
                                      std::uint64_t version) {
  // Pin: we dereference the published table, and a racing version bump may
  // retire it under us.
  util::EpochReclaimer::Guard guard(util::EpochReclaimer::global());
  const std::uint64_t h = mix_key(key);
  Way& way = ways_[h % n_ways_];
  auto* entry = new ConcEntry{key, version, std::move(verdict)};

  for (int attempt = 0; attempt < 2; ++attempt) {
    ConcTable* t = way.table.load(std::memory_order_acquire);
    if (t->version != version) {
      if (t->version > version) {
        // A newer generation is live; this verdict is already stale.
        delete entry;
        return;
      }
      t = swap_way(way, t, version, false);
      if (t->version != version) {
        delete entry;  // raced with an even newer bump
        return;
      }
    }
    if (t->size.load(std::memory_order_relaxed) >= way_limit_) {
      // Way full: wholesale generation flush (the concurrent analog of
      // random replacement — O(1), race-free, and what a kernel cache's
      // bounded flush does under churn). Count the displaced entries.
      swap_way(way, t, version, true);
      continue;  // retry lands in the fresh table
    }
    std::size_t idx = (h >> 16) & t->mask;
    for (std::size_t probes = 0; probes <= t->mask; ++probes) {
      ConcEntry* cur = t->slots[idx].load(std::memory_order_acquire);
      if (cur == nullptr) {
        if (t->slots[idx].compare_exchange_strong(cur, entry,
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire)) {
          t->size.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        // Someone landed in this slot first; fall through to inspect it.
      }
      if (cur->key == key) {
        // Replace in place; the displaced entry may still be referenced by
        // pinned readers — retire it.
        if (t->slots[idx].compare_exchange_strong(cur, entry,
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire)) {
          util::EpochReclaimer::global().retire(cur);
        } else {
          delete entry;  // a racing writer already refreshed this key
        }
        return;
      }
      idx = (idx + 1) & t->mask;
    }
    // Probed the whole table without a vacancy (size raced past limit):
    // flush and take the second attempt.
    swap_way(way, t, version, true);
  }
  delete entry;  // pathological race churn; drop the insert (it's a cache)
}

}  // namespace zen::dataplane
