#include "dataplane/megaflow_cache.h"

namespace zen::dataplane {

const CachedVerdict* MegaflowCache::find(const net::FlowKey& key,
                                         std::uint64_t version) {
  if (!enabled_) return nullptr;
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  if (it->second.version != version) {
    map_.erase(it);
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second.verdict;
}

void MegaflowCache::insert(const net::FlowKey& key, CachedVerdict verdict,
                           std::uint64_t version) {
  if (!enabled_ || !verdict.cacheable) return;
  if (map_.size() >= capacity_ && !map_.contains(key)) {
    // Random replacement in O(1) expected: probe pseudo-random hash buckets
    // and evict the first occupant found (a kernel flow cache under churn
    // behaves the same way).
    const std::size_t buckets = map_.bucket_count();
    for (;;) {
      evict_seed_ =
          evict_seed_ * 6364136223846793005ULL + 1442695040888963407ULL;
      const std::size_t b = (evict_seed_ >> 33) % buckets;
      const auto it = map_.begin(b);
      if (it != map_.end(b)) {
        map_.erase(it->first);
        break;
      }
    }
  }
  map_[key] = Slot{std::move(verdict), version};
}

}  // namespace zen::dataplane
