#include "dataplane/megaflow_cache.h"

#include "obs/metrics.h"

namespace zen::dataplane {

namespace {

struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  static CacheMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static CacheMetrics m{
        reg.counter("zen_dataplane_megaflow_hits_total", "",
                    "Megaflow cache hits (fast-path forwards)"),
        reg.counter("zen_dataplane_megaflow_misses_total", "",
                    "Megaflow cache misses (full pipeline traversals)"),
        reg.counter("zen_dataplane_megaflow_evictions_total", "",
                    "Megaflow entries evicted at capacity")};
    return m;
  }
};

}  // namespace

const CachedVerdict* MegaflowCache::find(const net::FlowKey& key,
                                         std::uint64_t version) {
  if (!enabled_) return nullptr;
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    if (shard_) shard_->bump(miss_slot_);
    else CacheMetrics::get().misses.inc();
    return nullptr;
  }
  if (it->second.version != version) {
    map_.erase(it);
    ++misses_;
    if (shard_) shard_->bump(miss_slot_);
    else CacheMetrics::get().misses.inc();
    return nullptr;
  }
  ++hits_;
  if (shard_) shard_->bump(hit_slot_);
  else CacheMetrics::get().hits.inc();
  return &it->second.verdict;
}

const CachedVerdict* MegaflowCache::peek(const net::FlowKey& key,
                                         std::uint64_t version) const noexcept {
  if (!enabled_) return nullptr;
  const auto it = map_.find(key);
  if (it == map_.end() || it->second.version != version) return nullptr;
  return &it->second.verdict;
}

void MegaflowCache::insert(const net::FlowKey& key, CachedVerdict verdict,
                           std::uint64_t version) {
  if (!enabled_ || !verdict.cacheable) return;
  if (map_.size() >= capacity_ && !map_.contains(key)) {
    // Random replacement in O(1) expected: probe pseudo-random hash buckets
    // and evict the first occupant found (a kernel flow cache under churn
    // behaves the same way).
    const std::size_t buckets = map_.bucket_count();
    for (;;) {
      evict_seed_ =
          evict_seed_ * 6364136223846793005ULL + 1442695040888963407ULL;
      const std::size_t b = (evict_seed_ >> 33) % buckets;
      const auto it = map_.begin(b);
      if (it != map_.end(b)) {
        map_.erase(it->first);
        ++evictions_;
        if (shard_) shard_->bump(evict_slot_);
        else CacheMetrics::get().evictions.inc();
        break;
      }
    }
  }
  map_[key] = Slot{std::move(verdict), version};
}

}  // namespace zen::dataplane
