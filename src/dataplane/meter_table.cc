#include "dataplane/meter_table.h"

#include "obs/metrics.h"

namespace zen::dataplane {

namespace {

util::TokenBucket make_bucket(const openflow::MeterMod& mod) {
  // rate_kbps is kilobits/s; the bucket works in bytes.
  const double bytes_per_sec = static_cast<double>(mod.rate_kbps) * 1000.0 / 8.0;
  double burst_bytes = static_cast<double>(mod.burst_kbits) * 1000.0 / 8.0;
  if (burst_bytes <= 0) burst_bytes = bytes_per_sec / 10;  // 100 ms default burst
  return util::TokenBucket(bytes_per_sec, burst_bytes);
}

}  // namespace

bool MeterTable::apply(const openflow::MeterMod& mod) {
  const auto it = meters_.find(mod.meter_id);
  switch (mod.command) {
    case openflow::MeterModCommand::Add:
      if (it != meters_.end() || mod.rate_kbps == 0) return false;
      meters_.emplace(mod.meter_id, Meter{make_bucket(mod), 0});
      return true;
    case openflow::MeterModCommand::Modify:
      if (it == meters_.end() || mod.rate_kbps == 0) return false;
      it->second.bucket = make_bucket(mod);
      return true;
    case openflow::MeterModCommand::Delete:
      if (it == meters_.end()) return false;
      meters_.erase(it);
      return true;
  }
  return false;
}

bool MeterTable::allow(std::uint32_t meter_id, std::size_t bytes, double now) {
  const auto it = meters_.find(meter_id);
  if (it == meters_.end()) return true;
  if (it->second.bucket.try_consume(static_cast<double>(bytes), now)) return true;
  ++it->second.drop_count;
  static obs::Counter& drops = obs::MetricsRegistry::global().counter(
      "zen_dataplane_meter_drops_total", "",
      "Packets dropped by meter rate limits");
  drops.inc();
  return false;
}

bool MeterTable::would_allow(std::uint32_t meter_id, std::size_t bytes,
                             double now) const noexcept {
  const auto it = meters_.find(meter_id);
  if (it == meters_.end()) return true;
  return it->second.bucket.peek_available(now) + 1e-12 >=
         static_cast<double>(bytes);
}

double MeterTable::rate_bytes_per_s(std::uint32_t meter_id) const noexcept {
  const auto it = meters_.find(meter_id);
  return it == meters_.end() ? 0.0 : it->second.bucket.rate();
}

std::uint64_t MeterTable::dropped(std::uint32_t meter_id) const noexcept {
  const auto it = meters_.find(meter_id);
  return it == meters_.end() ? 0 : it->second.drop_count;
}

}  // namespace zen::dataplane
