// MutablePacket: a decoded frame the action executor can rewrite.
//
// The pipeline parses a frame once into (headers, payload); set-field
// actions mutate the header structs, and serialize() materializes wire
// bytes with recomputed IPv4 and L4 checksums. This gives correct
// semantics for action lists that interleave rewrites and outputs (each
// output sees the packet as rewritten so far).
#pragma once

#include <optional>

#include "net/packet.h"
#include "openflow/actions.h"

namespace zen::dataplane {

class MutablePacket {
 public:
  // Parses `frame`; check ok() before use.
  explicit MutablePacket(std::span<const std::uint8_t> frame);

  bool ok() const noexcept { return ok_; }

  // Applies one field-modifying action. Output/Group/SetQueue are ignored
  // (the pipeline handles them). Returns false if the action cannot apply
  // (e.g. set_ipv4_src on an ARP packet, dec_ttl hitting zero, pop_vlan on
  // an untagged frame) — the packet is then dropped by the caller.
  bool apply(const openflow::Action& action);

  // Current flow key (reflects rewrites).
  net::FlowKey flow_key(std::uint32_t in_port) const noexcept {
    return parsed_.flow_key(in_port);
  }

  // True once any field rewrite has been applied.
  bool modified() const noexcept { return modified_; }

  const net::ParsedPacket& parsed() const noexcept { return parsed_; }

  // Wire bytes for the current state. If nothing was modified, returns the
  // original frame verbatim.
  net::Bytes serialize() const;

  std::size_t wire_size() const noexcept;

 private:
  net::ParsedPacket parsed_;
  net::Bytes original_;
  net::Bytes payload_;
  bool ok_ = false;
  bool modified_ = false;
};

}  // namespace zen::dataplane
