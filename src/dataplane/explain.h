// Explain engine data model: the structured record of one pipeline walk.
//
// Switch::explain() runs a synthetic packet through the full pipeline in
// dry-run mode (no counters credited, no meter tokens consumed, no cache
// insert, no learning) and records every decision as an ExplainStep — the
// ofproto/trace analog. The diag module chains per-switch traces along sim
// links into end-to-end explanations and renders them as text and JSON.
//
// ExplainProbe is the hook the pipeline carries: a single pointer when
// observability is on, an empty no-op type under ZEN_OBS_DISABLED (the
// dry-run mechanics stay available either way — the invariant monitor
// needs only the ForwardResult, not the narration).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace zen::dataplane {

enum class ExplainStepKind : std::uint8_t {
  kMegaflow = 0,  // cache probe: hit/miss (+ whether the verdict was cacheable)
  kTableMatch,    // a flow table produced a winner
  kTableMiss,     // a flow table had no matching rule
  kMeter,         // a meter instruction charged (or would drop) the packet
  kGroup,         // group indirection: bucket selection
  kRewrite,       // a set-field / push / pop / dec-ttl action (field diff)
  kOutput,        // the packet left (or failed to leave) a port
  kPacketIn,      // the packet would be punted to the controller
  kDrop,          // the pipeline dropped the packet (reason in detail)
};

const char* to_string(ExplainStepKind kind) noexcept;

struct ExplainStep {
  ExplainStepKind kind = ExplainStepKind::kDrop;
  std::uint8_t table_id = 0;

  // kTableMatch / kTableMiss: one entry per tuple-space hash table probed,
  // in probe order. `pruned` = skipped because its max priority could not
  // beat the best hit so far; `hit` = the masked key found a candidate.
  struct MaskProbe {
    int fields = 0;  // mask specificity (number of non-wildcard fields)
    std::uint16_t max_priority = 0;
    bool hit = false;
    bool pruned = false;
  };
  std::vector<MaskProbe> masks;

  // kTableMatch: the winning rule.
  std::uint16_t priority = 0;
  std::uint64_t cookie = 0;
  std::uint16_t importance = 0;

  // kMegaflow.
  bool cache_hit = false;

  // kGroup.
  std::uint32_t group_id = 0;
  int bucket = -1;  // chosen bucket index (-1 = none / all)
  std::uint64_t hash_point = 0;
  std::uint64_t total_weight = 0;

  // kMeter.
  std::uint32_t meter_id = 0;
  bool allowed = true;

  // kOutput / kPacketIn.
  std::uint32_t port = 0;
  std::uint32_t queue_id = 0;

  // Human-readable specifics: the matched rule's match text and actions,
  // the rewrite field diff, the drop reason, ...
  std::string detail;
};

// Every decision one switch made about one packet.
struct ExplainTrace {
  std::uint64_t dpid = 0;
  std::uint32_t in_port = 0;
  std::vector<ExplainStep> steps;

  // Indented multi-line rendering (one line per step).
  std::string to_text() const;
  // JSON object: {"dpid":..,"in_port":..,"steps":[{...},...]}.
  std::string to_json() const;
};

#ifndef ZEN_OBS_DISABLED

// Carried by the pipeline context; records into the attached trace.
struct ExplainProbe {
  ExplainTrace* trace = nullptr;

  void attach(ExplainTrace* t) noexcept { trace = t; }
  bool active() const noexcept { return trace != nullptr; }
  void add(ExplainStep step) {
    if (trace) trace->steps.push_back(std::move(step));
  }
};

#else

// Compiled-out probe: empty, and active() is constexpr-false so every
// `if (probe.active())` block is dead code the optimizer removes.
struct ExplainProbe {
  void attach(ExplainTrace*) noexcept {}
  constexpr bool active() const noexcept { return false; }
  void add(ExplainStep) const noexcept {}
};

#endif

}  // namespace zen::dataplane
