#include "dataplane/switch.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "net/telemetry.h"
#include "obs/obs.h"
#include "telemetry/switch_telemetry.h"
#include "util/logging.h"
#include "util/strings.h"

namespace zen::dataplane {

namespace {
constexpr int kMaxActionDepth = 4;  // bounds group recursion

struct SwitchMetrics {
  obs::Counter& packets;
  obs::Counter& packet_ins;
  obs::Counter& packet_ins_suppressed;
  obs::Counter& flow_evictions;
  obs::Counter& table_status_events;
  obs::Histo& lookup_ns;
  static SwitchMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static SwitchMetrics m{
        reg.counter("zen_dataplane_packets_total", "",
                    "Frames entering switch ingress pipelines"),
        reg.counter("zen_dataplane_packet_ins_total", "",
                    "PacketIn punts emitted to the controller"),
        reg.counter("zen_dataplane_packet_ins_suppressed_total", "",
                    "PacketIns dropped by the switch rate limiter"),
        reg.counter("zen_dataplane_flow_evictions_total", "",
                    "Flow entries evicted from bounded tables to make room"),
        reg.counter("zen_dataplane_table_status_events_total", "",
                    "Vacancy threshold crossings announced via TableStatus"),
        reg.histo("zen_dataplane_lookup_latency_ns", "",
                  "Wall-clock cost of a slow-path pipeline traversal")};
    return m;
  }
};

// FNV-1a over a frame, used to recognize recently flooded frames.
std::uint64_t frame_hash(std::span<const std::uint8_t> frame) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : frame) h = (h ^ b) * 0x100000001b3ULL;
  return h;
}

// NORMAL-action flood dedup: a frame this switch flooded within the window
// is a loop echo, not a retransmission (fabric round trips are sub-ms;
// host-level retries are far apart).
constexpr double kFloodDedupWindowS = 0.05;
constexpr std::size_t kFloodTableMax = 4096;

// Field-level diff between two flow keys, for rewrite explain steps.
std::string flow_key_diff(const net::FlowKey& a, const net::FlowKey& b) {
  std::string out;
  const auto add = [&](const std::string& piece) {
    if (!out.empty()) out += ", ";
    out += piece;
  };
  if (a.eth_src != b.eth_src)
    add(util::format("eth_src %012llx->%012llx",
                     static_cast<unsigned long long>(a.eth_src),
                     static_cast<unsigned long long>(b.eth_src)));
  if (a.eth_dst != b.eth_dst)
    add(util::format("eth_dst %012llx->%012llx",
                     static_cast<unsigned long long>(a.eth_dst),
                     static_cast<unsigned long long>(b.eth_dst)));
  if (a.vlan_vid != b.vlan_vid)
    add(util::format("vlan %u->%u", a.vlan_vid, b.vlan_vid));
  if (a.ipv4_src != b.ipv4_src)
    add(util::format("ipv4_src %s->%s",
                     net::Ipv4Address{a.ipv4_src}.to_string().c_str(),
                     net::Ipv4Address{b.ipv4_src}.to_string().c_str()));
  if (a.ipv4_dst != b.ipv4_dst)
    add(util::format("ipv4_dst %s->%s",
                     net::Ipv4Address{a.ipv4_dst}.to_string().c_str(),
                     net::Ipv4Address{b.ipv4_dst}.to_string().c_str()));
  if (a.ip_dscp != b.ip_dscp)
    add(util::format("dscp %u->%u", a.ip_dscp, b.ip_dscp));
  if (a.l4_src != b.l4_src)
    add(util::format("l4_src %u->%u", a.l4_src, b.l4_src));
  if (a.l4_dst != b.l4_dst)
    add(util::format("l4_dst %u->%u", a.l4_dst, b.l4_dst));
  return out;
}

// ShardStats slot layout for a Switch's per-instance hot-path counters.
constexpr std::size_t kSlotPackets = 0;
constexpr std::size_t kSlotCacheHits = 1;
constexpr std::size_t kSlotCacheMisses = 2;
constexpr std::size_t kSlotCacheEvictions = 3;
}

Switch::Switch(std::uint64_t datapath_id, SwitchConfig config)
    : dpid_(datapath_id),
      config_(config),
      cache_(config.cache_capacity, config.cache_enabled),
      buffered_(config.packet_buffer_slots) {
  if (config_.n_tables == 0) config_.n_tables = 1;
  if (config_.packet_in_rate_pps > 0) {
    // Burst of ~100 ms worth of punts, at least 1.
    packet_in_bucket_.emplace(config_.packet_in_rate_pps,
                              std::max(1.0, config_.packet_in_rate_pps / 10));
  }
  tables_.reserve(config_.n_tables);
  for (std::uint8_t i = 0; i < config_.n_tables; ++i) {
    tables_.emplace_back(config_.lookup_mode);
    tables_.back().set_capacity(config_.table_capacity, config_.eviction);
    if (config_.concurrent_lookup) tables_.back().set_concurrent_reads(true);
  }
  if (config_.concurrent_lookup)
    cache_.enable_concurrent(config_.cache_ways);
  vacancy_down_.assign(config_.n_tables, false);
  shard_ = std::make_unique<obs::ShardStats>();
  shard_->bind(kSlotPackets, SwitchMetrics::get().packets);
  {
    auto& reg = obs::MetricsRegistry::global();
    shard_->bind(kSlotCacheHits,
                 reg.counter("zen_dataplane_megaflow_hits_total", "",
                             "Megaflow cache hits (fast-path forwards)"));
    shard_->bind(kSlotCacheMisses,
                 reg.counter("zen_dataplane_megaflow_misses_total", "",
                             "Megaflow cache misses (full pipeline traversals)"));
    shard_->bind(kSlotCacheEvictions,
                 reg.counter("zen_dataplane_megaflow_evictions_total", "",
                             "Megaflow entries evicted at capacity"));
  }
  cache_.bind_shard(shard_.get(), kSlotCacheHits, kSlotCacheMisses,
                    kSlotCacheEvictions);
  occupancy_gauge_ = &obs::MetricsRegistry::global().gauge(
      "zen_dataplane_table_occupancy",
      "dpid=\"" + std::to_string(dpid_) + "\"",
      "Flow entries installed in table 0, per switch");
}

void Switch::update_occupancy_gauge() {
  occupancy_gauge_->set(static_cast<double>(tables_[0].size()));
}

void Switch::check_vacancy(std::uint8_t table_id) {
  const std::size_t capacity = config_.table_capacity;
  if (capacity == 0 ||
      (config_.vacancy_down_pct == 0 && config_.vacancy_up_pct == 0))
    return;
  const std::size_t used = tables_[table_id].size();
  const std::size_t free = capacity > used ? capacity - used : 0;
  const double free_pct = 100.0 * static_cast<double>(free) /
                          static_cast<double>(capacity);

  const bool was_down = vacancy_down_[table_id];
  std::optional<openflow::VacancyReason> fired;
  if (!was_down && free_pct <= config_.vacancy_down_pct) {
    vacancy_down_[table_id] = true;
    fired = openflow::VacancyReason::VacancyDown;
  } else if (was_down && free_pct >= config_.vacancy_up_pct) {
    vacancy_down_[table_id] = false;
    fired = openflow::VacancyReason::VacancyUp;
  }
  if (!fired) return;

  openflow::TableStatus status;
  status.table_id = table_id;
  status.reason = *fired;
  status.active_count = static_cast<std::uint32_t>(used);
  status.max_entries = static_cast<std::uint32_t>(capacity);
  status.vacancy_down_pct = config_.vacancy_down_pct;
  status.vacancy_up_pct = config_.vacancy_up_pct;
  pending_table_status_.push_back(status);
  SwitchMetrics::get().table_status_events.inc();
  obs::FlightRecorder::global().record(
      obs::FlightEventKind::kVacancyChange, dpid_,
      *fired == openflow::VacancyReason::VacancyDown ? 1 : 0);
  ZEN_LOG(Info) << "switch " << dpid_ << ": table " << int(table_id) << " "
                << openflow::to_string(*fired) << " (" << used << "/"
                << capacity << ")";
}

std::vector<openflow::TableStatus> Switch::take_table_status() {
  return std::exchange(pending_table_status_, {});
}

void Switch::add_port(const openflow::PortDesc& desc) {
  PortState state;
  state.desc = desc;
  state.stats.port_no = desc.port_no;
  ports_[desc.port_no] = std::move(state);
}

std::optional<openflow::PortStatus> Switch::set_port_link(std::uint32_t port_no,
                                                          bool up) {
  const auto it = ports_.find(port_no);
  if (it == ports_.end() || it->second.desc.link_up == up) return std::nullopt;
  it->second.desc.link_up = up;
  // Port state changes do not alter rules, but flood sets change; a version
  // bump keeps cached flood verdicts from using a dead port.
  ++version_;
  openflow::PortStatus status;
  status.reason = openflow::PortReason::Modify;
  status.desc = it->second.desc;
  return status;
}

const openflow::PortDesc* Switch::port(std::uint32_t port_no) const noexcept {
  const auto it = ports_.find(port_no);
  return it == ports_.end() ? nullptr : &it->second.desc;
}

std::vector<openflow::PortDesc> Switch::ports() const {
  std::vector<openflow::PortDesc> out;
  out.reserve(ports_.size());
  for (const auto& [no, state] : ports_) out.push_back(state.desc);
  return out;
}

std::uint32_t Switch::buffer_packet(const net::Bytes& frame) {
  if (buffered_.empty()) return openflow::kNoBuffer;
  const std::uint32_t id = next_buffer_id_;
  buffered_[id % buffered_.size()] = frame;
  next_buffer_id_ = (next_buffer_id_ + 1) % 0x7fffffff;
  return id;
}

void Switch::make_packet_in(PipelineContext& ctx,
                            openflow::PacketInReason reason,
                            std::uint8_t table_id, std::uint64_t cookie,
                            std::uint16_t max_len) {
  if (ctx.result->packet_in) return;  // one PacketIn per packet
  if (ctx.dry_run) {
    // Report the punt without buffering the frame, consuming rate-limit
    // tokens, or touching the punt counters.
    const net::Bytes frame = ctx.pkt->serialize();
    openflow::PacketIn pin;
    pin.reason = reason;
    pin.table_id = table_id;
    pin.cookie = cookie;
    pin.in_port = ctx.in_port;
    pin.total_len = static_cast<std::uint16_t>(frame.size());
    pin.buffer_id = openflow::kNoBuffer;
    const std::size_t n = std::min<std::size_t>(max_len, frame.size());
    pin.data.assign(frame.begin(),
                    frame.begin() + static_cast<std::ptrdiff_t>(n));
    ctx.result->packet_in = std::move(pin);
    if (ctx.probe.active()) {
      ExplainStep s;
      s.kind = ExplainStepKind::kPacketIn;
      s.table_id = table_id;
      s.detail = reason == openflow::PacketInReason::NoMatch
                     ? "reason=no_match"
                     : "reason=action";
      if (packet_in_bucket_ &&
          packet_in_bucket_->peek_available(ctx.now) < 1.0)
        s.detail += " (would be rate-limited right now)";
      ctx.probe.add(std::move(s));
    }
    return;
  }
  if (packet_in_bucket_ && !packet_in_bucket_->try_consume(1.0, ctx.now)) {
    ++packet_in_suppressed_;
    SwitchMetrics::get().packet_ins_suppressed.inc();
    ctx.verdict.cacheable = false;  // suppression is time-dependent
    return;
  }
  const net::Bytes frame = ctx.pkt->serialize();
  openflow::PacketIn pin;
  pin.reason = reason;
  pin.table_id = table_id;
  pin.cookie = cookie;
  pin.in_port = ctx.in_port;
  pin.total_len = static_cast<std::uint16_t>(frame.size());
  pin.buffer_id = buffer_packet(frame);
  const std::size_t n = std::min<std::size_t>(max_len, frame.size());
  pin.data.assign(frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(n));
  ctx.result->packet_in = std::move(pin);
  SwitchMetrics::get().packet_ins.inc();
  ZEN_TRACE_INSTANT("packet_in", "dataplane");
}

void Switch::emit_to_port(PipelineContext& ctx, std::uint32_t port_no) {
  const auto it = ports_.find(port_no);
  if (it == ports_.end()) {
    if (ctx.probe.active()) {
      ExplainStep s;
      s.kind = ExplainStepKind::kOutput;
      s.port = port_no;
      s.queue_id = ctx.queue_id;
      s.detail = "no such port (frame discarded)";
      ctx.probe.add(std::move(s));
    }
    return;
  }
  auto& state = it->second;
  if (!state.desc.link_up) {
    if (!ctx.dry_run) ++state.stats.tx_dropped;
    if (ctx.probe.active()) {
      ExplainStep s;
      s.kind = ExplainStepKind::kOutput;
      s.port = port_no;
      s.queue_id = ctx.queue_id;
      s.detail = "link down (tx_dropped)";
      ctx.probe.add(std::move(s));
    }
    return;
  }
  net::Bytes frame = ctx.pkt->serialize();
  if (!ctx.dry_run) {
    ++state.stats.tx_packets;
    state.stats.tx_bytes += frame.size();
  }
  if (ctx.probe.active()) {
    ExplainStep s;
    s.kind = ExplainStepKind::kOutput;
    s.port = port_no;
    s.queue_id = ctx.queue_id;
    ctx.probe.add(std::move(s));
  }
  ctx.result->outputs.push_back(Egress{port_no, ctx.queue_id, std::move(frame)});
  if (!ctx.pkt->modified())
    ctx.verdict.out_ports.push_back({port_no, ctx.queue_id});
  else
    ctx.verdict.cacheable = false;
}

void Switch::execute_normal(PipelineContext& ctx) {
  // NORMAL: behave as a self-learning L2 switch — the standalone fail-mode
  // data path. Learned state lives outside the flow tables, and the
  // verdict is time-dependent (learning, dedup), so never cache it.
  ctx.verdict.cacheable = false;
  const net::FlowKey key = ctx.pkt->flow_key(ctx.in_port);
  if (!ctx.dry_run) normal_fib_[key.eth_src] = ctx.in_port;

  if (const auto it = normal_fib_.find(key.eth_dst);
      it != normal_fib_.end() && it->second != ctx.in_port) {
    emit_to_port(ctx, it->second);
    return;
  }

  // Dry-run: report the flood set without learning or dedup-window writes
  // (the dedup verdict is time-dependent, so the trace shows the
  // steady-state flood behavior instead).
  if (ctx.dry_run) {
    for (const auto& [no, state] : ports_) {
      if (no != ctx.in_port && state.desc.link_up) emit_to_port(ctx, no);
    }
    return;
  }

  // Unknown/broadcast destination: flood — but drop frames this switch
  // already flooded inside the dedup window. A looped fabric of standalone
  // switches would otherwise amplify every broadcast forever.
  const std::uint64_t h = frame_hash(ctx.pkt->serialize());
  const auto [it, inserted] = flood_recent_.try_emplace(h, ctx.now);
  if (!inserted) {
    if (ctx.now - it->second < kFloodDedupWindowS) {
      ++storm_suppressed_;
      return;
    }
    it->second = ctx.now;
  }
  if (flood_recent_.size() > kFloodTableMax) {
    std::erase_if(flood_recent_, [&](const auto& kv) {
      return ctx.now - kv.second >= kFloodDedupWindowS;
    });
  }
  for (const auto& [no, state] : ports_) {
    if (no != ctx.in_port && state.desc.link_up) emit_to_port(ctx, no);
  }
}

void Switch::execute_output(PipelineContext& ctx, std::uint32_t port,
                            std::uint16_t max_len, std::uint8_t table_id,
                            std::uint64_t cookie, bool is_miss) {
  using openflow::Ports;
  switch (port) {
    case Ports::kController: {
      make_packet_in(ctx,
                     is_miss ? openflow::PacketInReason::NoMatch
                             : openflow::PacketInReason::Action,
                     table_id, cookie, max_len);
      ctx.verdict.to_controller = true;
      ctx.verdict.controller_table = table_id;
      ctx.verdict.controller_cookie = cookie;
      ctx.verdict.miss = is_miss;
      if (ctx.pkt->modified()) ctx.verdict.cacheable = false;
      break;
    }
    case Ports::kFlood:
      for (const auto& [no, state] : ports_) {
        if (no != ctx.in_port && state.desc.link_up) emit_to_port(ctx, no);
      }
      break;
    case Ports::kAll:
      for (const auto& [no, state] : ports_) {
        if (state.desc.link_up) emit_to_port(ctx, no);
      }
      break;
    case Ports::kInPort:
      emit_to_port(ctx, ctx.in_port);
      break;
    case Ports::kNormal:
      execute_normal(ctx);
      break;
    case Ports::kTable:
      // Only meaningful from PacketOut; handled there. Ignore here.
      break;
    default:
      emit_to_port(ctx, port);
      break;
  }
}

void Switch::execute_action_list(PipelineContext& ctx,
                                 const openflow::ActionList& actions,
                                 int depth) {
  if (depth > kMaxActionDepth) return;
  for (const auto& action : actions) {
    if (ctx.dropped) return;
    if (const auto* out = std::get_if<openflow::OutputAction>(&action)) {
      execute_output(ctx, out->port, out->max_len, 0, 0, false);
    } else if (const auto* grp = std::get_if<openflow::GroupAction>(&action)) {
      const Group* group = groups_.find(grp->group_id);
      if (!group) {
        if (ctx.probe.active()) {
          ExplainStep s;
          s.kind = ExplainStepKind::kGroup;
          s.group_id = grp->group_id;
          s.detail = "group not found (action ignored)";
          ctx.probe.add(std::move(s));
        }
        continue;
      }
      if (!ctx.dry_run) const_cast<Group*>(group)->packet_count++;
      if (group->type == openflow::GroupType::All) {
        if (ctx.probe.active()) {
          ExplainStep s;
          s.kind = ExplainStepKind::kGroup;
          s.group_id = grp->group_id;
          s.detail = util::format("type=all (%zu buckets replicated)",
                                  group->buckets.size());
          ctx.probe.add(std::move(s));
        }
        for (const auto& bucket : group->buckets)
          execute_action_list(ctx, bucket.actions, depth + 1);
      } else {
        const auto key = ctx.pkt->flow_key(ctx.in_port);
        const GroupTable::PortLiveFn port_live = [this](std::uint32_t port) {
          const auto it = ports_.find(port);
          return it != ports_.end() && it->second.desc.link_up;
        };
        GroupTable::SelectExplain sel;
        const auto* bucket =
            groups_.select_bucket(*group, key, port_live,
                                  ctx.probe.active() ? &sel : nullptr);
        if (ctx.probe.active()) {
          ExplainStep s;
          s.kind = ExplainStepKind::kGroup;
          s.group_id = grp->group_id;
          s.bucket = sel.bucket_index;
          s.hash_point = sel.hash_point;
          s.total_weight = sel.total_weight;
          switch (group->type) {
            case openflow::GroupType::Select:
              s.detail = "type=select (hash inputs: flow key)";
              break;
            case openflow::GroupType::FastFailover:
              s.detail = util::format("type=fast_failover (%d dead skipped)",
                                      sel.dead_skipped);
              break;
            default:
              s.detail = "type=indirect";
              break;
          }
          if (!bucket) s.detail += "; no live bucket (drop)";
          ctx.probe.add(std::move(s));
        }
        if (bucket) execute_action_list(ctx, bucket->actions, depth + 1);
        // FastFailover verdicts depend on port liveness; the version bump
        // in set_port_link already invalidates cached verdicts on change.
      }
      // Select-group choice is key-deterministic, so still cacheable unless
      // the bucket rewrote the packet (tracked via pkt->modified()).
      if (ctx.pkt->modified()) ctx.verdict.cacheable = false;
    } else if (const auto* sq = std::get_if<openflow::SetQueueAction>(&action)) {
      // Applies to every subsequent output of this packet; the simulator's
      // link model maps queue >= 1 to the strict-priority class.
      ctx.queue_id = sq->queue_id;
      if (ctx.probe.active()) {
        ExplainStep s;
        s.kind = ExplainStepKind::kRewrite;
        s.detail = util::format("set_queue %u (applies to later outputs)",
                                sq->queue_id);
        ctx.probe.add(std::move(s));
      }
    } else {
      const net::FlowKey before =
          ctx.probe.active() ? ctx.pkt->flow_key(ctx.in_port) : net::FlowKey{};
      if (!ctx.pkt->apply(action)) {
        ctx.dropped = true;
        ctx.result->dropped = true;
        ctx.verdict.cacheable = false;
        if (ctx.probe.active()) {
          ExplainStep s;
          s.kind = ExplainStepKind::kDrop;
          s.detail = "action " + openflow::to_string(action) +
                     " cannot apply to this packet";
          ctx.probe.add(std::move(s));
        }
        return;
      }
      if (ctx.probe.active()) {
        ExplainStep s;
        s.kind = ExplainStepKind::kRewrite;
        s.detail = openflow::to_string(action);
        const std::string diff =
            flow_key_diff(before, ctx.pkt->flow_key(ctx.in_port));
        if (!diff.empty()) s.detail += " [" + diff + "]";
        ctx.probe.add(std::move(s));
      }
    }
  }
}

void Switch::run_pipeline(PipelineContext& ctx) {
  openflow::ActionList action_set;  // write-actions accumulate here

  std::uint8_t table_id = 0;
  for (;;) {
    if (table_id >= tables_.size()) break;
    FlowTable& table = tables_[table_id];
    const net::FlowKey key = ctx.pkt->flow_key(ctx.in_port);
    // Dry-run probes the same search core without perturbing the
    // per-table lookup/match counters.
    FlowTable::LookupExplain lookup_explain;
    FlowEntryPtr entry =
        ctx.dry_run ? table.find_best(key, ctx.probe.active()
                                               ? &lookup_explain
                                               : nullptr)
                    : table.lookup(key);
    if (ctx.probe.active()) {
      ExplainStep s;
      s.kind = entry ? ExplainStepKind::kTableMatch
                     : ExplainStepKind::kTableMiss;
      s.table_id = table_id;
      for (const auto& m : lookup_explain.masks)
        s.masks.push_back({m.fields, m.max_priority, m.hit, m.pruned});
      if (entry) {
        s.priority = entry->priority;
        s.cookie = entry->cookie;
        s.importance = entry->importance;
        s.detail = "match={" + entry->match.to_string() + "} instructions=" +
                   openflow::to_string(entry->instructions);
      }
      ctx.probe.add(std::move(s));
    }

    if (!entry) {
      if (table_id == 0 && config_.default_miss == MissBehavior::PacketIn) {
        make_packet_in(ctx, openflow::PacketInReason::NoMatch, table_id, 0,
                       config_.packet_in_bytes);
        ctx.verdict.to_controller = true;
        ctx.verdict.controller_table = table_id;
        ctx.verdict.miss = true;
      } else {
        ctx.result->dropped = ctx.result->outputs.empty() && !ctx.result->packet_in;
      }
      break;
    }

    // Credit the entry (cached hits credit via verdict.credited).
    if (!ctx.dry_run) {
      entry->packet_count++;
      entry->byte_count += ctx.pkt->wire_size();
      entry->last_used_at = ctx.now;
      ctx.verdict.credited.push_back(entry);
    }

    const bool is_miss_entry =
        entry->priority == 0 && entry->match.field_count() == 0;

    std::optional<std::uint8_t> goto_table;
    for (const auto& ins : entry->instructions) {
      if (ctx.dropped) break;
      if (const auto* meter = std::get_if<openflow::MeterInstruction>(&ins)) {
        ctx.verdict.meters.push_back(meter->meter_id);
        const bool allowed =
            ctx.dry_run
                ? meters_.would_allow(meter->meter_id, ctx.pkt->wire_size(),
                                      ctx.now)
                : meters_.allow(meter->meter_id, ctx.pkt->wire_size(), ctx.now);
        if (ctx.probe.active()) {
          ExplainStep s;
          s.kind = ExplainStepKind::kMeter;
          s.table_id = table_id;
          s.meter_id = meter->meter_id;
          s.allowed = allowed;
          const double rate = meters_.rate_bytes_per_s(meter->meter_id);
          if (rate > 0)
            s.detail = util::format("band rate %.0f bytes/s", rate);
          else
            s.detail = "no such meter (pass)";
          ctx.probe.add(std::move(s));
        }
        if (!allowed) {
          ctx.dropped = true;
          ctx.result->dropped = true;
          return;
        }
      } else if (const auto* apply = std::get_if<openflow::ApplyActions>(&ins)) {
        // Table-miss entries that punt to the controller use reason NoMatch.
        if (is_miss_entry && apply->actions.size() == 1) {
          if (const auto* out =
                  std::get_if<openflow::OutputAction>(&apply->actions[0]);
              out && out->port == openflow::Ports::kController) {
            execute_output(ctx, out->port, out->max_len, table_id,
                           entry->cookie, /*is_miss=*/true);
            continue;
          }
        }
        execute_action_list(ctx, apply->actions, 0);
      } else if (const auto* write = std::get_if<openflow::WriteActions>(&ins)) {
        // Merge: later writes of the same action type replace earlier ones.
        for (const auto& a : write->actions) {
          const auto same_kind = [&](const openflow::Action& b) {
            return a.index() == b.index();
          };
          const auto it =
              std::find_if(action_set.begin(), action_set.end(), same_kind);
          if (it != action_set.end()) *it = a;
          else action_set.push_back(a);
        }
      } else if (std::get_if<openflow::ClearActions>(&ins)) {
        action_set.clear();
      } else if (const auto* go = std::get_if<openflow::GotoTable>(&ins)) {
        goto_table = go->table_id;
      }
    }

    if (ctx.dropped) return;
    if (!goto_table || *goto_table <= table_id) break;  // goto must increase
    table_id = *goto_table;
  }

  // Pipeline end: execute the accumulated action set (outputs last).
  if (!ctx.dropped && !action_set.empty()) {
    // Order: rewrites first, then group, then outputs (OF 1.3 ordering).
    openflow::ActionList ordered;
    for (const auto& a : action_set)
      if (!std::get_if<openflow::OutputAction>(&a) &&
          !std::get_if<openflow::GroupAction>(&a))
        ordered.push_back(a);
    for (const auto& a : action_set)
      if (std::get_if<openflow::GroupAction>(&a)) ordered.push_back(a);
    for (const auto& a : action_set)
      if (std::get_if<openflow::OutputAction>(&a)) ordered.push_back(a);
    execute_action_list(ctx, ordered, 0);
  }

  if (ctx.result->outputs.empty() && !ctx.result->packet_in)
    ctx.result->dropped = true;
}

ForwardResult Switch::ingress(double now, std::uint32_t in_port,
                              std::span<const std::uint8_t> frame) {
  ForwardResult result;
  result.in_port = in_port;
  shard_->bump(kSlotPackets);

  const auto port_it = ports_.find(in_port);
  if (port_it == ports_.end() || !port_it->second.desc.link_up) {
    result.dropped = true;
    return result;
  }
  ++port_it->second.stats.rx_packets;
  port_it->second.stats.rx_bytes += frame.size();

  MutablePacket pkt(frame);
  if (!pkt.ok()) {
    ++port_it->second.stats.rx_dropped;
    result.dropped = true;
    return result;
  }

  const net::FlowKey key = pkt.flow_key(in_port);

  // Telemetry sampling decision — taken here, after the key is computed and
  // before the cache branch, so it covers fast and slow paths alike. When
  // the flow is sampled, every forwarded copy gets a telemetry trailer for
  // the sim fabric to stamp hop records into.
  const bool telemetry_stamp =
      telemetry_ != nullptr &&
      telemetry_->on_packet(static_cast<std::uint64_t>(now * 1e9), in_port,
                            key, frame.size());

  // Fast path: megaflow cache. Concurrent mode pins an epoch guard so the
  // verdict pointer stays valid even if a racing version bump retires the
  // table it lives in; classic mode takes the plain map probe.
  std::optional<util::EpochReclaimer::Guard> epoch_guard;
  const CachedVerdict* cached = nullptr;
  if (cache_.concurrent()) {
    epoch_guard.emplace(util::EpochReclaimer::global());
    cached = cache_.find(key, version_, *epoch_guard);
  } else {
    cached = cache_.find(key, version_);
  }
  if (const CachedVerdict* verdict = cached) {
    bool metered_out = false;
    for (const std::uint32_t meter_id : verdict->meters) {
      if (!meters_.allow(meter_id, frame.size(), now)) {
        metered_out = true;
        break;
      }
    }
    if (metered_out) {
      result.dropped = true;
      return result;
    }
    for (const auto& entry : verdict->credited) {
      entry->packet_count++;
      entry->byte_count += frame.size();
      entry->last_used_at = now;
    }
    for (const auto& [out_port, queue_id] : verdict->out_ports) {
      const auto it = ports_.find(out_port);
      if (it == ports_.end() || !it->second.desc.link_up) continue;
      ++it->second.stats.tx_packets;
      it->second.stats.tx_bytes += frame.size();
      result.outputs.push_back(
          Egress{out_port, queue_id, net::Bytes(frame.begin(), frame.end())});
    }
    if (verdict->to_controller && packet_in_bucket_ &&
        !packet_in_bucket_->try_consume(1.0, now)) {
      ++packet_in_suppressed_;
    } else if (verdict->to_controller) {
      openflow::PacketIn pin;
      pin.reason = verdict->miss ? openflow::PacketInReason::NoMatch
                                 : openflow::PacketInReason::Action;
      pin.table_id = verdict->controller_table;
      pin.cookie = verdict->controller_cookie;
      pin.in_port = in_port;
      pin.total_len = static_cast<std::uint16_t>(frame.size());
      pin.buffer_id = buffer_packet(net::Bytes(frame.begin(), frame.end()));
      const std::size_t n =
          std::min<std::size_t>(config_.packet_in_bytes, frame.size());
      pin.data.assign(frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(n));
      result.packet_in = std::move(pin);
    }
    if (result.outputs.empty() && !result.packet_in) result.dropped = true;
    if (telemetry_stamp)
      for (Egress& egress : result.outputs)
        net::append_telemetry_trailer(egress.frame);
    return result;
  }

  // Slow path: full pipeline.
  PipelineContext ctx;
  ctx.now = now;
  ctx.in_port = in_port;
  ctx.pkt = &pkt;
  ctx.result = &result;
  {
    obs::ScopedTimerNs timer(SwitchMetrics::get().lookup_ns);
    ZEN_TRACE_SCOPE("pipeline", "dataplane");
    run_pipeline(ctx);
  }

  if (result.dropped && result.outputs.empty() && !result.packet_in)
    ++port_it->second.stats.rx_dropped;

  if (!ctx.dropped) cache_.insert(key, std::move(ctx.verdict), version_);
  if (telemetry_stamp)
    for (Egress& egress : result.outputs)
      net::append_telemetry_trailer(egress.frame);
  return result;
}

ForwardResult Switch::explain(double now, std::uint32_t in_port,
                              std::span<const std::uint8_t> frame,
                              ExplainTrace* trace) {
  ForwardResult result;
  result.in_port = in_port;
  if (trace) {
    trace->dpid = dpid_;
    trace->in_port = in_port;
  }

  PipelineContext ctx;
  ctx.now = now;
  ctx.in_port = in_port;
  ctx.result = &result;
  ctx.dry_run = true;
  ctx.probe.attach(trace);

  const auto port_it = ports_.find(in_port);
  if (port_it == ports_.end() || !port_it->second.desc.link_up) {
    result.dropped = true;
    if (ctx.probe.active()) {
      ExplainStep s;
      s.kind = ExplainStepKind::kDrop;
      s.detail = port_it == ports_.end() ? "ingress port does not exist"
                                         : "ingress port link down";
      ctx.probe.add(std::move(s));
    }
    return result;
  }

  MutablePacket pkt(frame);
  if (!pkt.ok()) {
    result.dropped = true;
    if (ctx.probe.active()) {
      ExplainStep s;
      s.kind = ExplainStepKind::kDrop;
      s.detail = "unparseable frame";
      ctx.probe.add(std::move(s));
    }
    return result;
  }
  ctx.pkt = &pkt;

  // Read-only cache probe for the narrative; the verdict below always
  // comes from a full (dry-run) pipeline walk so the trace explains the
  // classifier decisions even for flows the fast path would shortcut.
  const net::FlowKey key = pkt.flow_key(in_port);
  const std::size_t megaflow_step = trace ? trace->steps.size() : 0;
  if (ctx.probe.active()) {
    ExplainStep s;
    s.kind = ExplainStepKind::kMegaflow;
    s.cache_hit = cache_.peek(key, version_) != nullptr;
    s.detail = !cache_.enabled()
                   ? "cache disabled"
                   : (s.cache_hit ? "fast path would forward from cache"
                                  : "slow path runs the full pipeline");
    ctx.probe.add(std::move(s));
  }

  run_pipeline(ctx);

  if (trace && megaflow_step < trace->steps.size() &&
      trace->steps[megaflow_step].kind == ExplainStepKind::kMegaflow &&
      !trace->steps[megaflow_step].cache_hit && cache_.enabled()) {
    // The cache is exact-match: the "megaflow mask" a miss would install is
    // the full flow key, and only cacheable verdicts are inserted.
    trace->steps[megaflow_step].detail +=
        ctx.verdict.cacheable && !ctx.dropped
            ? "; miss would install an exact-match (full flow key) verdict"
            : "; verdict not cacheable (no megaflow would be installed)";
  }

  if (result.dropped && result.outputs.empty() && !result.packet_in &&
      ctx.probe.active()) {
    if (trace->steps.empty() ||
        trace->steps.back().kind != ExplainStepKind::kDrop) {
      ExplainStep s;
      s.kind = ExplainStepKind::kDrop;
      s.detail = "pipeline produced no output";
      ctx.probe.add(std::move(s));
    }
  }
  return result;
}

ForwardResult Switch::packet_out(double now, const openflow::PacketOut& msg) {
  ForwardResult result;

  net::Bytes frame;
  if (msg.buffer_id != openflow::kNoBuffer && !buffered_.empty()) {
    frame = buffered_[msg.buffer_id % buffered_.size()];
  } else {
    frame = msg.data;
  }
  if (frame.empty()) {
    result.dropped = true;
    return result;
  }

  MutablePacket pkt(frame);
  if (!pkt.ok()) {
    result.dropped = true;
    return result;
  }

  PipelineContext ctx;
  ctx.now = now;
  ctx.in_port = msg.in_port;
  ctx.pkt = &pkt;
  ctx.result = &result;
  ctx.verdict.cacheable = false;  // packet-outs are one-shot

  for (const auto& action : msg.actions) {
    if (const auto* out = std::get_if<openflow::OutputAction>(&action);
        out && out->port == openflow::Ports::kTable) {
      run_pipeline(ctx);
    } else {
      execute_action_list(ctx, {action}, 0);
    }
    if (ctx.dropped) break;
  }
  if (result.outputs.empty() && !result.packet_in) result.dropped = true;
  return result;
}

ModStatus Switch::flow_mod(const openflow::FlowMod& mod, double now,
                           std::vector<openflow::FlowRemoved>* removed) {
  using openflow::FlowModCommand;

  if (mod.table_id >= tables_.size() &&
      !(mod.table_id == openflow::kTableAll &&
        (mod.command == FlowModCommand::Delete ||
         mod.command == FlowModCommand::DeleteStrict))) {
    return {false, openflow::ErrorType::FlowModFailed,
            openflow::flow_mod_failed_code::kBadTableId};
  }
  ++version_;

  switch (mod.command) {
    case FlowModCommand::Add: {
      FlowTable& table = tables_[mod.table_id];
      // Capacity gates true inserts only: an Add that replaces an existing
      // (match, priority) entry swaps in place and needs no free slot.
      if (table.full() && !table.contains(mod.match, mod.priority)) {
        FlowEntryPtr victim = table.evict(mod.importance);
        if (!victim) {
          return {false, openflow::ErrorType::FlowModFailed,
                  openflow::flow_mod_failed_code::kTableFull};
        }
        ++flow_evictions_;
        SwitchMetrics::get().flow_evictions.inc();
        ZEN_TRACE_INSTANT("flow_evicted", "dataplane");
        obs::FlightRecorder::global().record(obs::FlightEventKind::kFlowEvicted,
                                             dpid_, mod.table_id);
        if (removed && (victim->flags & openflow::kFlagSendFlowRemoved)) {
          openflow::FlowRemoved fr;
          fr.cookie = victim->cookie;
          fr.priority = victim->priority;
          fr.reason = openflow::FlowRemovedReason::Eviction;
          fr.table_id = mod.table_id;
          fr.packet_count = victim->packet_count;
          fr.byte_count = victim->byte_count;
          fr.match = victim->match;
          removed->push_back(std::move(fr));
        }
      }
      FlowEntry entry;
      entry.match = mod.match;
      entry.priority = mod.priority;
      entry.instructions = mod.instructions;
      entry.cookie = mod.cookie;
      entry.idle_timeout = mod.idle_timeout;
      entry.hard_timeout = mod.hard_timeout;
      entry.flags = mod.flags;
      entry.importance = mod.importance;
      table.add(std::move(entry), now);
      check_vacancy(mod.table_id);
      update_occupancy_gauge();
      return {};
    }
    case FlowModCommand::Modify:
    case FlowModCommand::ModifyStrict: {
      tables_[mod.table_id].modify(mod.match, mod.priority, mod.instructions,
                                   mod.command == FlowModCommand::ModifyStrict);
      return {};
    }
    case FlowModCommand::Delete:
    case FlowModCommand::DeleteStrict: {
      const bool strict = mod.command == FlowModCommand::DeleteStrict;
      std::vector<FlowEntryPtr> victims;
      if (mod.table_id == openflow::kTableAll) {
        for (auto& table : tables_) {
          auto v = table.remove(mod.match, mod.priority, strict, mod.out_port);
          victims.insert(victims.end(), v.begin(), v.end());
        }
      } else {
        victims = tables_[mod.table_id].remove(mod.match, mod.priority, strict,
                                               mod.out_port);
      }
      if (removed) {
        for (const auto& v : victims) {
          if ((v->flags & openflow::kFlagSendFlowRemoved) == 0) continue;
          openflow::FlowRemoved fr;
          fr.cookie = v->cookie;
          fr.priority = v->priority;
          fr.reason = openflow::FlowRemovedReason::Delete;
          fr.packet_count = v->packet_count;
          fr.byte_count = v->byte_count;
          fr.match = v->match;
          removed->push_back(std::move(fr));
        }
      }
      if (mod.table_id == openflow::kTableAll) {
        for (std::uint8_t i = 0; i < tables_.size(); ++i) check_vacancy(i);
      } else {
        check_vacancy(mod.table_id);
      }
      update_occupancy_gauge();
      return {};
    }
  }
  return {false, openflow::ErrorType::FlowModFailed, 0};
}

ModStatus Switch::group_mod(const openflow::GroupMod& mod) {
  ++version_;
  if (!groups_.apply(mod))
    return {false, openflow::ErrorType::GroupModFailed, 0};
  return {};
}

ModStatus Switch::meter_mod(const openflow::MeterMod& mod) {
  ++version_;
  if (!meters_.apply(mod))
    return {false, openflow::ErrorType::MeterModFailed, 0};
  return {};
}

ModStatus Switch::commit_bundle(std::span<const openflow::Message> members,
                                double now,
                                std::vector<openflow::FlowRemoved>* removed) {
  // Snapshot every piece of state a member can touch. Flow tables need a
  // deep clone (the live tables mutate entries through shared_ptrs);
  // group/meter tables are plain value types. The commit runs
  // synchronously — no packet forwards mid-bundle — so an exact restore
  // is a correct rollback.
  std::vector<FlowTable> tables_snap;
  tables_snap.reserve(tables_.size());
  for (const FlowTable& table : tables_) tables_snap.push_back(table.clone());
  GroupTable groups_snap = groups_;
  MeterTable meters_snap = meters_;
  std::vector<bool> vacancy_snap = vacancy_down_;
  std::vector<openflow::TableStatus> pending_status_snap =
      pending_table_status_;
  const std::uint64_t version_snap = version_;
  const std::uint64_t evictions_snap = flow_evictions_;

  std::vector<openflow::FlowRemoved> staged;
  for (const openflow::Message& member : members) {
    ModStatus status;
    if (const auto* fm = std::get_if<openflow::FlowMod>(&member)) {
      status = flow_mod(*fm, now, &staged);
    } else if (const auto* gm = std::get_if<openflow::GroupMod>(&member)) {
      status = group_mod(*gm);
    } else if (const auto* mm = std::get_if<openflow::MeterMod>(&member)) {
      status = meter_mod(*mm);
    } else {
      status = {false, openflow::ErrorType::BundleFailed,
                openflow::bundle_failed_code::kBadMember};
    }
    if (status.ok) continue;

    // Roll back wholesale. Global eviction *metrics* bumped by rolled-back
    // members stay bumped (cumulative observability, not rule state); the
    // per-switch eviction counter is restored because audits read it as
    // state. The version lands on a value never exposed to the cache, so
    // megaflow entries can never alias across the rollback.
    tables_ = std::move(tables_snap);
    groups_ = std::move(groups_snap);
    meters_ = std::move(meters_snap);
    vacancy_down_ = std::move(vacancy_snap);
    pending_table_status_ = std::move(pending_status_snap);
    flow_evictions_ = evictions_snap;
    version_ = version_snap + 1;
    update_occupancy_gauge();
    obs::FlightRecorder::global().record(obs::FlightEventKind::kBundleRollback,
                                         dpid_, members.size());
    return status;
  }
  if (removed)
    removed->insert(removed->end(), std::make_move_iterator(staged.begin()),
                    std::make_move_iterator(staged.end()));
  return {};
}

std::optional<openflow::ControllerRole> Switch::set_controller_role(
    std::uint64_t conn_id, openflow::ControllerRole role,
    std::uint64_t generation_id) {
  using openflow::ControllerRole;
  if (role == ControllerRole::Master || role == ControllerRole::Slave) {
    // Generation check guards against stale masters re-asserting themselves.
    if (generation_seen_ && generation_id < last_generation_)
      return std::nullopt;
    generation_seen_ = true;
    last_generation_ = generation_id;
  }
  if (role == ControllerRole::Master) {
    for (auto& [other, other_role] : roles_) {
      if (other != conn_id && other_role == ControllerRole::Master)
        other_role = ControllerRole::Slave;
    }
  }
  const bool changed =
      !roles_.contains(conn_id) || roles_[conn_id] != role;
  roles_[conn_id] = role;
  if (changed) {
    char tag[16];
    std::snprintf(tag, sizeof(tag), "conn%llu",
                  static_cast<unsigned long long>(conn_id));
    obs::FlightRecorder::global().record(
        obs::FlightEventKind::kRoleChange, dpid_,
        static_cast<std::uint64_t>(role), tag);
  }
  return role;
}

openflow::ControllerRole Switch::controller_role(std::uint64_t conn_id) const {
  const auto it = roles_.find(conn_id);
  return it == roles_.end() ? openflow::ControllerRole::Equal : it->second;
}

openflow::FeaturesReply Switch::features() const {
  openflow::FeaturesReply reply;
  reply.datapath_id = dpid_;
  reply.n_buffers = static_cast<std::uint32_t>(buffered_.size());
  reply.n_tables = static_cast<std::uint8_t>(tables_.size());
  reply.boot_id = boot_count_;
  reply.ports = ports();
  return reply;
}

openflow::FlowStatsReply Switch::flow_stats(
    const openflow::FlowStatsRequest& req, double now) const {
  openflow::FlowStatsReply reply;
  const auto add_table = [&](std::uint8_t id) {
    for (const auto& entry : tables_[id].entries()) {
      if (!entry->match.subsumed_by(req.match)) continue;
      openflow::FlowStatsEntry e;
      e.table_id = id;
      e.priority = entry->priority;
      e.cookie = entry->cookie;
      e.packet_count = entry->packet_count;
      e.byte_count = entry->byte_count;
      e.duration_sec = static_cast<std::uint32_t>(
          std::max(0.0, now - entry->created_at));
      e.match = entry->match;
      e.instructions = entry->instructions;
      reply.entries.push_back(std::move(e));
    }
  };
  if (req.table_id == openflow::kTableAll) {
    for (std::uint8_t i = 0; i < tables_.size(); ++i) add_table(i);
  } else if (req.table_id < tables_.size()) {
    add_table(req.table_id);
  }
  return reply;
}

openflow::PortStatsReply Switch::port_stats(
    const openflow::PortStatsRequest& req) const {
  openflow::PortStatsReply reply;
  for (const auto& [no, state] : ports_) {
    if (req.port_no != openflow::Ports::kAny && req.port_no != no) continue;
    reply.entries.push_back(state.stats);
  }
  return reply;
}

openflow::TableStatsReply Switch::table_stats() const {
  openflow::TableStatsReply reply;
  for (std::uint8_t i = 0; i < tables_.size(); ++i) {
    openflow::TableStatsEntry e;
    e.table_id = i;
    e.active_count = static_cast<std::uint32_t>(tables_[i].size());
    e.lookup_count = tables_[i].lookup_count();
    e.matched_count = tables_[i].matched_count();
    reply.entries.push_back(e);
  }
  return reply;
}

void Switch::reset() {
  for (auto& table : tables_) table.clear();
  groups_.clear();
  meters_.clear();
  cache_.clear();
  for (auto& slot : buffered_) slot.clear();
  next_buffer_id_ = 0;
  vacancy_down_.assign(tables_.size(), false);
  pending_table_status_.clear();
  normal_fib_.clear();
  flood_recent_.clear();
  update_occupancy_gauge();
  roles_.clear();
  generation_seen_ = false;
  last_generation_ = 0;
  ++version_;
  ++boot_count_;
}

std::vector<openflow::FlowRemoved> Switch::expire_flows(double now) {
  std::vector<openflow::FlowRemoved> events;
  bool any = false;
  for (std::uint8_t i = 0; i < tables_.size(); ++i) {
    for (const auto& victim : tables_[i].expire(now)) {
      any = true;
      if ((victim->flags & openflow::kFlagSendFlowRemoved) == 0) continue;
      openflow::FlowRemoved fr;
      fr.cookie = victim->cookie;
      fr.priority = victim->priority;
      fr.table_id = i;
      fr.reason = (victim->hard_timeout > 0 &&
                   now - victim->created_at >= victim->hard_timeout)
                      ? openflow::FlowRemovedReason::HardTimeout
                      : openflow::FlowRemovedReason::IdleTimeout;
      fr.packet_count = victim->packet_count;
      fr.byte_count = victim->byte_count;
      fr.match = victim->match;
      events.push_back(std::move(fr));
    }
  }
  if (any) {
    ++version_;
    for (std::uint8_t i = 0; i < tables_.size(); ++i) check_vacancy(i);
    update_occupancy_gauge();
  }
  return events;
}

}  // namespace zen::dataplane
