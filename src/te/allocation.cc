#include "te/allocation.h"

#include <algorithm>

#include "obs/obs.h"

namespace zen::te {

const char* to_string(Strategy strategy) noexcept {
  switch (strategy) {
    case Strategy::ShortestPath: return "shortest_path";
    case Strategy::Ecmp: return "ecmp";
    case Strategy::Greedy: return "greedy";
    case Strategy::MaxMinFair: return "max_min_fair";
  }
  return "?";
}

double Allocation::allocated(const DemandKey& key) const {
  const auto it = shares.find(key);
  if (it == shares.end()) return 0;
  double sum = 0;
  for (const auto& share : it->second) sum += share.bps;
  return sum;
}

double Allocation::total_allocated() const {
  double sum = 0;
  for (const auto& [key, path_shares] : shares)
    for (const auto& share : path_shares) sum += share.bps;
  return sum;
}

double Allocation::satisfaction(const DemandMatrix& demands) const {
  const double requested = demands.total();
  return requested <= 0 ? 1.0 : std::min(1.0, total_allocated() / requested);
}

double Allocation::max_utilization(const topo::Topology& topo) const {
  double max_util = 0;
  for (const auto& [link_id, load] : link_load_bps) {
    const topo::Link* link = topo.link(link_id);
    if (link && link->capacity_bps > 0)
      max_util = std::max(max_util, load / link->capacity_bps);
  }
  return max_util;
}

double Allocation::mean_utilization(const topo::Topology& topo) const {
  double sum = 0;
  std::size_t n = 0;
  for (const topo::Link* link : topo.links()) {
    const auto it = link_load_bps.find(link->id);
    sum += (it == link_load_bps.end() ? 0 : it->second) / link->capacity_bps;
    ++n;
  }
  return n == 0 ? 0 : sum / static_cast<double>(n);
}

namespace {

// Residual capacity of `path` given current loads (capacity scaled by
// 1 - headroom).
double residual(const topo::Topology& topo, const topo::Path& path,
                const std::unordered_map<topo::LinkId, double>& load,
                double headroom) {
  double min_res = std::numeric_limits<double>::infinity();
  for (const topo::LinkId lid : path.links) {
    const topo::Link* link = topo.link(lid);
    const auto it = load.find(lid);
    const double used = it == load.end() ? 0 : it->second;
    min_res = std::min(min_res, link->capacity_bps * (1.0 - headroom) - used);
  }
  return path.links.empty() ? std::numeric_limits<double>::infinity()
                            : std::max(0.0, min_res);
}

void commit(Allocation& alloc, const DemandKey& key, const topo::Path& path,
            double bps) {
  if (bps <= 0) return;
  auto& path_shares = alloc.shares[key];
  const auto it = std::find_if(
      path_shares.begin(), path_shares.end(),
      [&](const PathShare& share) { return share.path.links == path.links; });
  if (it != path_shares.end()) it->bps += bps;
  else path_shares.push_back(PathShare{path, bps});
  for (const topo::LinkId lid : path.links) alloc.link_load_bps[lid] += bps;
}

Allocation allocate_single_path(topo::PathEngine& engine,
                                const DemandMatrix& demands, double headroom) {
  const topo::Topology& topo = engine.topology();
  Allocation alloc;
  for (const auto& [key, bps] : demands.entries()) {
    const topo::Path path = engine.shortest_path(key.src, key.dst);
    if (path.empty() && key.src != key.dst) continue;
    const double grant = std::min(bps, residual(topo, path, alloc.link_load_bps,
                                                headroom));
    commit(alloc, key, path, grant);
  }
  return alloc;
}

Allocation allocate_ecmp(topo::PathEngine& engine,
                         const DemandMatrix& demands,
                         const AllocatorOptions& options) {
  const topo::Topology& topo = engine.topology();
  Allocation alloc;
  for (const auto& [key, bps] : demands.entries()) {
    const auto paths =
        engine.equal_cost_paths(key.src, key.dst, options.k_paths);
    if (paths.empty()) continue;
    const double per_path = bps / static_cast<double>(paths.size());
    for (const auto& path : paths) {
      const double grant = std::min(
          per_path, residual(topo, path, alloc.link_load_bps, options.headroom));
      commit(alloc, key, path, grant);
    }
  }
  return alloc;
}

Allocation allocate_greedy(topo::PathEngine& engine,
                           const DemandMatrix& demands,
                           const AllocatorOptions& options) {
  const topo::Topology& topo = engine.topology();
  Allocation alloc;
  // Largest demands first.
  std::vector<std::pair<DemandKey, double>> ordered(demands.entries().begin(),
                                                    demands.entries().end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  for (const auto& [key, bps] : ordered) {
    auto paths = engine.k_shortest_paths(key.src, key.dst, options.k_paths);
    double remaining = bps;
    // Repeatedly place on the path with the most headroom.
    while (remaining > 1e-9 && !paths.empty()) {
      double best_res = 0;
      const topo::Path* best = nullptr;
      for (const auto& path : paths) {
        const double res = residual(topo, path, alloc.link_load_bps, options.headroom);
        if (res > best_res) {
          best_res = res;
          best = &path;
        }
      }
      if (!best || best_res <= 1e-9) break;
      const double grant = std::min(remaining, best_res);
      commit(alloc, key, *best, grant);
      remaining -= grant;
    }
  }
  return alloc;
}

Allocation allocate_max_min(topo::PathEngine& engine,
                            const DemandMatrix& demands,
                            const AllocatorOptions& options) {
  const topo::Topology& topo = engine.topology();
  Allocation alloc;

  struct Flow {
    DemandKey key;
    double remaining;
    std::vector<topo::Path> paths;
  };
  std::vector<Flow> flows;
  double max_demand = 0;
  for (const auto& [key, bps] : demands.entries()) {
    Flow flow;
    flow.key = key;
    flow.remaining = bps;
    flow.paths = engine.k_shortest_paths(key.src, key.dst, options.k_paths);
    max_demand = std::max(max_demand, bps);
    if (!flow.paths.empty()) flows.push_back(std::move(flow));
  }
  if (flows.empty()) return alloc;

  // Water-filling: in rounds, every unsaturated flow pushes epsilon along
  // its currently-best (most residual) path. A flow saturates when its
  // request is met or all its paths are full. Round-robin order makes the
  // split max-min fair up to epsilon granularity.
  const double epsilon = std::max(1.0, max_demand * options.epsilon_fraction);
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& flow : flows) {
      if (flow.remaining <= 1e-9) continue;
      double best_res = 0;
      const topo::Path* best = nullptr;
      for (const auto& path : flow.paths) {
        const double res =
            residual(topo, path, alloc.link_load_bps, options.headroom);
        if (res > best_res) {
          best_res = res;
          best = &path;
        }
      }
      if (!best || best_res <= 1e-9) {
        flow.remaining = 0;  // paths exhausted
        continue;
      }
      const double grant = std::min({flow.remaining, epsilon, best_res});
      commit(alloc, flow.key, *best, grant);
      flow.remaining -= grant;
      progress = true;
    }
  }
  return alloc;
}

}  // namespace

Allocation allocate(topo::PathEngine& engine, const DemandMatrix& demands,
                    Strategy strategy, const AllocatorOptions& options) {
  static obs::Counter& runs = obs::MetricsRegistry::global().counter(
      "zen_te_allocations_total", "", "TE allocation solves");
  static obs::Histo& solve_ns = obs::MetricsRegistry::global().histo(
      "zen_te_solve_ns", "", "Wall-clock cost of one TE allocation solve");
  runs.inc();
  obs::ScopedTimerNs timer(solve_ns);
  ZEN_TRACE_SCOPE("allocate", "te");
  switch (strategy) {
    case Strategy::ShortestPath:
      return allocate_single_path(engine, demands, options.headroom);
    case Strategy::Ecmp:
      return allocate_ecmp(engine, demands, options);
    case Strategy::Greedy:
      return allocate_greedy(engine, demands, options);
    case Strategy::MaxMinFair:
      return allocate_max_min(engine, demands, options);
  }
  return {};
}

Allocation allocate(const topo::Topology& topo, const DemandMatrix& demands,
                    Strategy strategy, const AllocatorOptions& options) {
  // Even one-shot, the engine pays off: one reverse SPF per distinct
  // destination replaces one Dijkstra per demand entry.
  topo::PathEngine engine;
  engine.sync(topo);
  return allocate(engine, demands, strategy, options);
}

}  // namespace zen::te
