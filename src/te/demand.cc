#include "te/demand.h"

#include <numeric>

namespace zen::te {

void DemandMatrix::set(topo::NodeId src, topo::NodeId dst, double bps) {
  if (src == dst) return;
  demands_[DemandKey{src, dst}] = bps;
}

void DemandMatrix::add(topo::NodeId src, topo::NodeId dst, double bps) {
  if (src == dst) return;
  demands_[DemandKey{src, dst}] += bps;
}

double DemandMatrix::get(topo::NodeId src, topo::NodeId dst) const {
  const auto it = demands_.find(DemandKey{src, dst});
  return it == demands_.end() ? 0 : it->second;
}

double DemandMatrix::total() const {
  double sum = 0;
  for (const auto& [key, bps] : demands_) sum += bps;
  return sum;
}

DemandMatrix DemandMatrix::scaled(double factor) const {
  DemandMatrix out;
  for (const auto& [key, bps] : demands_) out.set(key.src, key.dst, bps * factor);
  return out;
}

DemandMatrix uniform_demands(const std::vector<topo::NodeId>& sites,
                             double total_bps) {
  DemandMatrix m;
  const std::size_t pairs = sites.size() * (sites.size() - 1);
  if (pairs == 0) return m;
  const double per_pair = total_bps / static_cast<double>(pairs);
  for (const topo::NodeId s : sites)
    for (const topo::NodeId d : sites)
      if (s != d) m.set(s, d, per_pair);
  return m;
}

DemandMatrix gravity_demands(const std::vector<topo::NodeId>& sites,
                             double total_bps, util::Rng& rng) {
  DemandMatrix m;
  if (sites.size() < 2) return m;
  std::vector<double> weights(sites.size());
  for (auto& w : weights) w = 0.1 + rng.next_double();

  double norm = 0;
  for (std::size_t i = 0; i < sites.size(); ++i)
    for (std::size_t j = 0; j < sites.size(); ++j)
      if (i != j) norm += weights[i] * weights[j];

  for (std::size_t i = 0; i < sites.size(); ++i)
    for (std::size_t j = 0; j < sites.size(); ++j)
      if (i != j)
        m.set(sites[i], sites[j], total_bps * weights[i] * weights[j] / norm);
  return m;
}

DemandMatrix hotspot_demands(const std::vector<topo::NodeId>& sites,
                             topo::NodeId hot, double total_bps) {
  DemandMatrix m;
  std::size_t senders = 0;
  for (const topo::NodeId s : sites)
    if (s != hot) ++senders;
  if (senders == 0) return m;
  for (const topo::NodeId s : sites)
    if (s != hot) m.set(s, hot, total_bps / static_cast<double>(senders));
  return m;
}

DemandMatrix permutation_demands(const std::vector<topo::NodeId>& sites,
                                 double per_flow_bps, util::Rng& rng) {
  DemandMatrix m;
  if (sites.size() < 2) return m;
  std::vector<topo::NodeId> targets = sites;
  // Derangement by rejection: reshuffle until no fixed point (fast for
  // realistic sizes).
  for (int attempt = 0; attempt < 1000; ++attempt) {
    rng.shuffle(targets);
    bool ok = true;
    for (std::size_t i = 0; i < sites.size(); ++i)
      if (sites[i] == targets[i]) {
        ok = false;
        break;
      }
    if (ok) break;
  }
  for (std::size_t i = 0; i < sites.size(); ++i)
    if (sites[i] != targets[i]) m.set(sites[i], targets[i], per_flow_bps);
  return m;
}

}  // namespace zen::te
