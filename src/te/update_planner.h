// Congestion-free network update planning (the SWAN/zUpdate result).
//
// Problem: moving the network from allocation A to allocation B by updating
// switches that apply changes asynchronously. During the transition each
// flow is at either its old or its new rate, so a link can transiently
// carry up to sum(max(old, new)) — which can exceed capacity even when A
// and B are both feasible.
//
// SWAN's theorem: if every link keeps a scratch fraction s of its capacity
// free in A and B, then ceil(1/s) - 1 intermediate steps of linear
// interpolation make every adjacent pair congestion-free. The planner finds
// the smallest step count that passes the element-wise-max feasibility
// check, and reports the transient overload a one-shot update would cause.
#pragma once

#include <vector>

#include "te/allocation.h"

namespace zen::te {

struct UpdatePlan {
  // stages[0] == from, stages.back() == to; adjacent stages are pairwise
  // congestion-free under asynchronous application.
  std::vector<Allocation> stages;
  bool feasible = false;
  // Worst-case link utilization if the update were applied in one shot.
  double one_shot_peak_utilization = 0;

  std::size_t step_count() const noexcept {
    return stages.empty() ? 0 : stages.size() - 1;
  }
};

struct PlannerOptions {
  std::size_t max_steps = 16;
  // Congestion threshold: a transition is accepted if transient load stays
  // <= capacity * utilization_bound on every link.
  double utilization_bound = 1.0;
};

// Worst-case per-link utilization while moving between two allocations
// asynchronously (element-wise max of per-flow rates).
double transient_peak_utilization(const topo::Topology& topo,
                                  const Allocation& from, const Allocation& to);

UpdatePlan plan_update(const topo::Topology& topo, const Allocation& from,
                       const Allocation& to, const PlannerOptions& options = {});

}  // namespace zen::te
