// Traffic demand matrices and the synthetic workloads used by the TE
// experiments (E8/E9): uniform all-to-all, gravity-model, hotspot, and
// permutation matrices, all deterministic under a seed.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "topo/graph.h"
#include "util/rng.h"

namespace zen::te {

struct DemandKey {
  topo::NodeId src = 0;
  topo::NodeId dst = 0;
  friend auto operator<=>(const DemandKey&, const DemandKey&) = default;
};

class DemandMatrix {
 public:
  void set(topo::NodeId src, topo::NodeId dst, double bps);
  void add(topo::NodeId src, topo::NodeId dst, double bps);
  double get(topo::NodeId src, topo::NodeId dst) const;

  const std::map<DemandKey, double>& entries() const noexcept { return demands_; }
  double total() const;
  std::size_t size() const noexcept { return demands_.size(); }

  // Returns a copy with every demand multiplied by `factor`.
  DemandMatrix scaled(double factor) const;

 private:
  std::map<DemandKey, double> demands_;
};

// Equal demand between every ordered pair of `sites`, summing to `total_bps`.
DemandMatrix uniform_demands(const std::vector<topo::NodeId>& sites,
                             double total_bps);

// Gravity model: demand(i,j) proportional to w_i * w_j with random weights.
DemandMatrix gravity_demands(const std::vector<topo::NodeId>& sites,
                             double total_bps, util::Rng& rng);

// All sites send to one hot destination (incast), total `total_bps`.
DemandMatrix hotspot_demands(const std::vector<topo::NodeId>& sites,
                             topo::NodeId hot, double total_bps);

// Random permutation: each site sends `per_flow_bps` to exactly one other.
DemandMatrix permutation_demands(const std::vector<topo::NodeId>& sites,
                                 double per_flow_bps, util::Rng& rng);

}  // namespace zen::te
