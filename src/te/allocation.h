// TE allocators: map a demand matrix onto paths under link capacities.
//
// Three production-shaped strategies plus a naive baseline:
//  - ShortestPath: all of each demand on its single shortest path (OSPF-ish).
//  - Ecmp: demand split evenly over equal-cost shortest paths.
//  - Greedy: demands largest-first, each on the K-path with most headroom.
//  - MaxMinFair: iterative water-filling over K shortest paths per demand —
//    the SWAN/B4-class allocator. Approximate (epsilon-granular) but
//    deterministic and capacity-respecting by construction.
//
// All allocators respect capacity * (1 - headroom): a demand gets at most
// what its paths can carry; the unsatisfied remainder is reported, never
// oversubscribed.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "te/demand.h"
#include "topo/path_engine.h"
#include "topo/paths.h"

namespace zen::te {

struct PathShare {
  topo::Path path;
  double bps = 0;
};

struct Allocation {
  std::map<DemandKey, std::vector<PathShare>> shares;
  std::unordered_map<topo::LinkId, double> link_load_bps;

  double allocated(const DemandKey& key) const;
  double total_allocated() const;

  // Fraction of requested demand carried, in [0, 1].
  double satisfaction(const DemandMatrix& demands) const;

  // Max and mean utilization over links that carry load.
  double max_utilization(const topo::Topology& topo) const;
  double mean_utilization(const topo::Topology& topo) const;
};

enum class Strategy { ShortestPath, Ecmp, Greedy, MaxMinFair };

const char* to_string(Strategy strategy) noexcept;

struct AllocatorOptions {
  std::size_t k_paths = 4;       // path diversity for Greedy/MaxMinFair
  double headroom = 0.0;         // reserved fraction of every link
  double epsilon_fraction = 1e-3;  // water-filling increment (of max demand)
};

// Preferred entry point: paths resolve through the shared PathEngine, so
// per-destination SPF trees and Yen K-path sets are computed once per
// topology epoch and reused across demands, strategies and re-solves.
Allocation allocate(topo::PathEngine& engine, const DemandMatrix& demands,
                    Strategy strategy, const AllocatorOptions& options = {});

// Convenience for one-shot callers: syncs a private engine to the
// topology (keyed on its version counter) and solves through it.
Allocation allocate(const topo::Topology& topo, const DemandMatrix& demands,
                    Strategy strategy, const AllocatorOptions& options = {});

}  // namespace zen::te
