#include "te/update_planner.h"

#include <algorithm>
#include <map>

#include "obs/obs.h"

namespace zen::te {

namespace {

// Identity of one flow-on-path: (demand key, link sequence).
using FlowPathKey = std::pair<DemandKey, std::vector<topo::LinkId>>;

// All flow-paths present in either allocation, with (old, new) rates.
struct FlowPathRates {
  FlowPathKey id;
  topo::Path path;
  double from_bps = 0;
  double to_bps = 0;
};

std::vector<FlowPathRates> merge(const Allocation& from, const Allocation& to) {
  std::map<FlowPathKey, FlowPathRates> merged;
  auto ingest = [&](const Allocation& alloc, bool is_from) {
    for (const auto& [key, shares] : alloc.shares) {
      for (const auto& share : shares) {
        auto& entry = merged[{key, share.path.links}];
        entry.id = {key, share.path.links};
        entry.path = share.path;
        (is_from ? entry.from_bps : entry.to_bps) += share.bps;
      }
    }
  };
  ingest(from, true);
  ingest(to, false);
  std::vector<FlowPathRates> out;
  out.reserve(merged.size());
  for (auto& [id, rates] : merged) out.push_back(std::move(rates));
  return out;
}

Allocation interpolate(const std::vector<FlowPathRates>& flows, double lambda) {
  Allocation alloc;
  for (const auto& flow : flows) {
    const double bps = (1.0 - lambda) * flow.from_bps + lambda * flow.to_bps;
    if (bps <= 0) continue;
    alloc.shares[flow.id.first].push_back(PathShare{flow.path, bps});
    for (const topo::LinkId lid : flow.id.second)
      alloc.link_load_bps[lid] += bps;
  }
  return alloc;
}

double transient_peak(const topo::Topology& topo,
                      const std::vector<FlowPathRates>& flows, double lambda_a,
                      double lambda_b) {
  std::unordered_map<topo::LinkId, double> load;
  for (const auto& flow : flows) {
    const double a = (1.0 - lambda_a) * flow.from_bps + lambda_a * flow.to_bps;
    const double b = (1.0 - lambda_b) * flow.from_bps + lambda_b * flow.to_bps;
    const double worst = std::max(a, b);
    if (worst <= 0) continue;
    for (const topo::LinkId lid : flow.id.second) load[lid] += worst;
  }
  double peak = 0;
  for (const auto& [lid, bps] : load) {
    const topo::Link* link = topo.link(lid);
    if (link && link->capacity_bps > 0)
      peak = std::max(peak, bps / link->capacity_bps);
  }
  return peak;
}

}  // namespace

double transient_peak_utilization(const topo::Topology& topo,
                                  const Allocation& from,
                                  const Allocation& to) {
  const auto flows = merge(from, to);
  return transient_peak(topo, flows, 0.0, 1.0);
}

UpdatePlan plan_update(const topo::Topology& topo, const Allocation& from,
                       const Allocation& to, const PlannerOptions& options) {
  static obs::Counter& plans = obs::MetricsRegistry::global().counter(
      "zen_te_update_plans_total", "", "Congestion-free update plans computed");
  static obs::Histo& rounds = obs::MetricsRegistry::global().histo(
      "zen_te_update_plan_rounds", "",
      "Interpolation steps in accepted update plans");
  plans.inc();
  ZEN_TRACE_SCOPE("plan_update", "te");
  UpdatePlan plan;
  const auto flows = merge(from, to);
  plan.one_shot_peak_utilization = transient_peak(topo, flows, 0.0, 1.0);

  for (std::size_t steps = 1; steps <= options.max_steps; ++steps) {
    bool ok = true;
    for (std::size_t i = 0; i < steps && ok; ++i) {
      const double la = static_cast<double>(i) / static_cast<double>(steps);
      const double lb = static_cast<double>(i + 1) / static_cast<double>(steps);
      if (transient_peak(topo, flows, la, lb) >
          options.utilization_bound + 1e-9)
        ok = false;
    }
    if (!ok) continue;

    plan.feasible = true;
    plan.stages.reserve(steps + 1);
    for (std::size_t i = 0; i <= steps; ++i) {
      plan.stages.push_back(interpolate(
          flows, static_cast<double>(i) / static_cast<double>(steps)));
    }
    rounds.record(static_cast<double>(steps));
    return plan;
  }
  return plan;  // infeasible within max_steps
}

}  // namespace zen::te
