#include "openflow/table_status.h"

#include "util/buffer.h"

namespace zen::openflow {

namespace {
constexpr std::uint8_t kTableStatusVersion = 1;
}

const char* to_string(VacancyReason reason) noexcept {
  switch (reason) {
    case VacancyReason::VacancyDown: return "vacancy_down";
    case VacancyReason::VacancyUp: return "vacancy_up";
  }
  return "?";
}

Experimenter make_table_status_message(const TableStatus& status) {
  Experimenter msg;
  msg.experimenter_id = kVacancyExperimenterId;
  msg.exp_type = kExpTypeTableStatus;
  util::ByteWriter w(msg.payload);
  w.u8(kTableStatusVersion);
  w.u8(status.table_id);
  w.u8(static_cast<std::uint8_t>(status.reason));
  w.u32(status.active_count);
  w.u32(status.max_entries);
  w.u8(status.vacancy_down_pct);
  w.u8(status.vacancy_up_pct);
  return msg;
}

util::Result<TableStatus> parse_table_status_message(const Experimenter& msg) {
  if (msg.experimenter_id != kVacancyExperimenterId) {
    return util::make_error<TableStatus>(
        "table status: foreign experimenter id");
  }
  if (msg.exp_type != kExpTypeTableStatus) {
    return util::make_error<TableStatus>("table status: unknown exp_type");
  }
  util::ByteReader r(msg.payload);
  if (r.u8() != kTableStatusVersion) {
    return util::make_error<TableStatus>("table status: bad version");
  }
  TableStatus status;
  status.table_id = r.u8();
  const std::uint8_t reason = r.u8();
  if (reason > static_cast<std::uint8_t>(VacancyReason::VacancyUp)) {
    return util::make_error<TableStatus>("table status: bad reason");
  }
  status.reason = static_cast<VacancyReason>(reason);
  status.active_count = r.u32();
  status.max_entries = r.u32();
  status.vacancy_down_pct = r.u8();
  status.vacancy_up_pct = r.u8();
  if (!r.ok()) return util::make_error<TableStatus>("table status: truncated");
  if (r.remaining() != 0) {
    return util::make_error<TableStatus>("table status: trailing bytes");
  }
  return status;
}

}  // namespace zen::openflow
