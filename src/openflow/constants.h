// Protocol constants for the zen southbound protocol.
//
// The wire format is OpenFlow-1.3-shaped: an 8-byte header
// (version, type, length, xid) followed by a message body, with matches as
// TLV field lists. Values below mirror OpenFlow where a counterpart exists,
// so the encoding is familiar, but the protocol is self-contained.
#pragma once

#include <cstdint>

namespace zen::openflow {

inline constexpr std::uint8_t kProtocolVersion = 0x04;
inline constexpr std::size_t kHeaderSize = 10;
// Hard upper bound on a framed message; protects stream reassembly from
// corrupt length fields.
inline constexpr std::size_t kMaxMessageSize = 1 << 20;

enum class MsgType : std::uint8_t {
  Hello = 0,
  Error = 1,
  EchoRequest = 2,
  EchoReply = 3,
  Experimenter = 4,
  FeaturesRequest = 5,
  FeaturesReply = 6,
  PacketIn = 10,
  FlowRemoved = 11,
  PortStatus = 12,
  PacketOut = 13,
  FlowMod = 14,
  GroupMod = 15,
  PortMod = 16,
  MeterMod = 29,
  BarrierRequest = 20,
  BarrierReply = 21,
  FlowStatsRequest = 30,
  FlowStatsReply = 31,
  PortStatsRequest = 32,
  PortStatsReply = 33,
  TableStatsRequest = 34,
  TableStatsReply = 35,
  RoleRequest = 36,
  RoleReply = 37,
};

// Controller roles (multi-controller redundancy, OF 1.3 shape).
enum class ControllerRole : std::uint8_t {
  Equal = 0,   // full access, receives all async messages
  Master = 1,  // full access; demotes any previous master to slave
  Slave = 2,   // read-only: no mods, no PacketIns (port status still flows)
};

// Reserved port numbers (subset of OpenFlow's OFPP_*).
struct Ports {
  static constexpr std::uint32_t kMax = 0xffffff00;
  static constexpr std::uint32_t kInPort = 0xfffffff8;   // bounce back out ingress
  static constexpr std::uint32_t kTable = 0xfffffff9;    // resubmit to pipeline
  static constexpr std::uint32_t kNormal = 0xfffffffa;   // L2 learning + flood
  static constexpr std::uint32_t kFlood = 0xfffffffb;    // all ports except ingress
  static constexpr std::uint32_t kAll = 0xfffffffc;      // all ports including ingress
  static constexpr std::uint32_t kController = 0xfffffffd;
  static constexpr std::uint32_t kAny = 0xffffffff;      // wildcard in requests
};

enum class FlowModCommand : std::uint8_t {
  Add = 0,
  Modify = 1,
  ModifyStrict = 2,
  Delete = 3,
  DeleteStrict = 4,
};

enum class PacketInReason : std::uint8_t {
  NoMatch = 0,
  Action = 1,
  InvalidTtl = 2,
};

enum class FlowRemovedReason : std::uint8_t {
  IdleTimeout = 0,
  HardTimeout = 1,
  Delete = 2,
  // The table was full and the eviction policy sacrificed this entry to
  // make room (OFPRR_EVICTION). Controllers must treat it differently from
  // timeout expiry: blindly reinstalling recreates the pressure that
  // evicted it.
  Eviction = 3,
};

enum class PortReason : std::uint8_t { Add = 0, Delete = 1, Modify = 2 };

enum class GroupModCommand : std::uint8_t { Add = 0, Modify = 1, Delete = 2 };

enum class GroupType : std::uint8_t {
  All = 0,           // replicate to every bucket (multicast/flood)
  Select = 1,        // hash-pick one bucket (ECMP / load-balance)
  Indirect = 2,      // single bucket indirection
  FastFailover = 3,  // first bucket whose watch_port is live (local repair)
};

enum class MeterModCommand : std::uint8_t { Add = 0, Modify = 1, Delete = 2 };

enum class ErrorType : std::uint16_t {
  HelloFailed = 0,
  BadRequest = 1,
  BadAction = 2,
  BadInstruction = 3,
  BadMatch = 4,
  FlowModFailed = 5,
  GroupModFailed = 6,
  MeterModFailed = 12,
  BundleFailed = 13,
};

// ErrorType::FlowModFailed codes.
namespace flow_mod_failed_code {
inline constexpr std::uint16_t kBadTableId = 1;
// The table has no room and eviction is off or could not free space.
inline constexpr std::uint16_t kTableFull = 2;
}  // namespace flow_mod_failed_code

// ErrorType::BundleFailed codes. Only bundle-mechanism failures use these;
// a member mod that fails during commit surfaces its own error type/code
// (e.g. FlowModFailed/kTableFull) so existing repair ladders apply.
namespace bundle_failed_code {
inline constexpr std::uint16_t kUnknownBundle = 1;
// Commit's member count disagrees with what was staged (lost/reordered adds).
inline constexpr std::uint16_t kBundleIncomplete = 2;
// A staged member is not a mod message.
inline constexpr std::uint16_t kBadMember = 3;
inline constexpr std::uint16_t kTooManyMembers = 4;
}  // namespace bundle_failed_code

// FlowMod flags.
inline constexpr std::uint16_t kFlagSendFlowRemoved = 0x0001;

inline constexpr std::uint32_t kNoBuffer = 0xffffffff;
inline constexpr std::uint8_t kTableAll = 0xff;

}  // namespace zen::openflow
