#include "openflow/wire.h"

#include "openflow/constants.h"
#include "util/strings.h"

namespace zen::openflow {

FrameWriter::FrameWriter(WireArena& arena, MsgType type, Xid xid)
    : arena_(arena), start_(arena.buf_.size()), writer_(arena.buf_) {
  writer_.u8(kProtocolVersion);
  writer_.u8(static_cast<std::uint8_t>(type));
  writer_.u32(0);  // length, patched by finish()
  writer_.u32(xid);
}

std::span<const std::uint8_t> FrameWriter::finish() {
  if (!finished_) {
    finished_ = true;
    ++arena_.frames_;
    const auto length =
        static_cast<std::uint32_t>(arena_.buf_.size() - start_);
    writer_.patch_u32(start_ + 2, length);
  }
  return std::span<const std::uint8_t>(arena_.buf_).subspan(start_);
}

std::span<const std::uint8_t> WireArena::append(const Message& msg, Xid xid) {
  FrameWriter w(*this, type_of(msg), xid);
  encode_body(msg, w.body());
  return w.finish();
}

Bytes encode_frame(const Message& msg, Xid xid) {
  WireArena arena;
  arena.append(msg, xid);
  return arena.take();
}

util::Result<FrameView> parse_frame(std::span<const std::uint8_t> data) {
  if (data.size() < kHeaderSize)
    return util::make_error<FrameView>(util::format(
        "truncated frame header (%zu of %zu bytes)", data.size(),
        kHeaderSize));
  const std::uint8_t version = data[0];
  const auto type = static_cast<MsgType>(data[1]);
  const std::uint32_t length = (std::uint32_t{data[2]} << 24) |
                               (std::uint32_t{data[3]} << 16) |
                               (std::uint32_t{data[4]} << 8) | data[5];
  const Xid xid = (std::uint32_t{data[6]} << 24) |
                  (std::uint32_t{data[7]} << 16) |
                  (std::uint32_t{data[8]} << 8) | data[9];
  if (version != kProtocolVersion)
    return util::make_error<FrameView>(
        util::format("bad version 0x%02x", version));
  if (length < kHeaderSize || length > kMaxMessageSize)
    return util::make_error<FrameView>(util::format(
        "corrupt frame header (version=0x%02x length=%u)", version, length));
  if (data.size() < length)
    return util::make_error<FrameView>(util::format(
        "truncated frame: header says %u, %zu available", length,
        data.size()));
  FrameView view;
  view.type = type;
  view.xid = xid;
  view.frame = data.first(length);
  view.body = view.frame.subspan(kHeaderSize);
  return view;
}

util::Result<OwnedMessage> decode_frame(const FrameView& view) {
  util::ByteReader r(view.body);
  auto body = decode_body(view.type, r);
  if (!body.ok()) return util::make_error<OwnedMessage>(body.error());
  return OwnedMessage{view.xid, std::move(body).value()};
}

std::optional<util::Result<FrameView>> BatchReader::next() {
  if (dead_ || rest_.empty()) return std::nullopt;
  auto view = parse_frame(rest_);
  if (!view.ok()) {
    // Terminal for this batch: there is no trustworthy length to skip by.
    dead_ = true;
    return view;
  }
  rest_ = rest_.subspan(view.value().frame.size());
  ++frames_;
  return view;
}

}  // namespace zen::openflow
