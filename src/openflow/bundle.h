// Bundles: atomic multi-mod commit over the southbound channel.
//
// OpenFlow 1.4 bundles, carried as Experimenter messages so the Message
// variant stays closed (same pattern as table_status.h). Protocol:
//
//   controller                       switch
//   ----------                      ------
//   BundleOpen{id}        ->        create empty staging area for id
//   BundleAdd{id,0,mod}   ->        stage member 0
//   BundleAdd{id,1,mod}   ->        stage member 1
//   ...
//   BundleCommit{id,n}    ->        if exactly members 0..n-1 staged:
//                                     apply all-or-nothing, ack/error
//                                   else: discard, Error(BundleFailed)
//
// Robustness under a lossy channel:
//  * BundleAdd carries an explicit member_index, so a duplicated add
//    overwrites its own slot (idempotent) and a lost add leaves a gap the
//    commit detects (kBundleIncomplete) instead of silently committing a
//    partial bundle.
//  * BundleCommit carries the expected member count for the same reason.
//  * The switch remembers recently committed bundle ids so a retransmitted
//    commit acks idempotently instead of double-applying.
//
// A member mod that fails during commit rolls back every member and
// surfaces the member's own error (e.g. FlowModFailed/kTableFull), so the
// controller-side repair ladders that key on error type work unchanged.
#pragma once

#include <cstdint>
#include <variant>

#include "openflow/messages.h"
#include "openflow/wire.h"
#include "util/result.h"

namespace zen::openflow {

// "zenb" — identifies zen bundle experimenter messages.
inline constexpr std::uint32_t kBundleExperimenterId = 0x7a656e62;
inline constexpr std::uint32_t kExpTypeBundleOpen = 1;
inline constexpr std::uint32_t kExpTypeBundleAdd = 2;
inline constexpr std::uint32_t kExpTypeBundleCommit = 3;
inline constexpr std::uint32_t kExpTypeBundleDiscard = 4;

struct BundleOpen {
  std::uint32_t bundle_id = 0;
};

struct BundleAdd {
  std::uint32_t bundle_id = 0;
  // Position within the bundle; commit requires members 0..n-1 present.
  std::uint32_t member_index = 0;
  Message member;
};

struct BundleCommit {
  std::uint32_t bundle_id = 0;
  std::uint32_t n_members = 0;
};

struct BundleDiscard {
  std::uint32_t bundle_id = 0;
};

using BundleMessage =
    std::variant<BundleOpen, BundleAdd, BundleCommit, BundleDiscard>;

Experimenter make_bundle_open(std::uint32_t bundle_id);
Experimenter make_bundle_add(std::uint32_t bundle_id,
                             std::uint32_t member_index,
                             const Message& member);
Experimenter make_bundle_commit(std::uint32_t bundle_id,
                                std::uint32_t n_members);
Experimenter make_bundle_discard(std::uint32_t bundle_id);

// Unwraps a bundle experimenter message. Errors on foreign experimenter
// ids, unknown exp_types, and malformed payloads (including a corrupt
// embedded member frame).
util::Result<BundleMessage> parse_bundle_message(const Experimenter& msg);

}  // namespace zen::openflow
