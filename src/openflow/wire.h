// Southbound wire API v2: zero-copy arena framing.
//
// v1 (codec.h) produced one heap-allocated Bytes per encoded message and
// one owned byte vector per decoded one. v2 replaces both directions:
//
//  * Encode: a WireArena owns one contiguous buffer of length-prefixed
//    frames. FrameWriter appends a frame's header, exposes a ByteWriter
//    for the body, and back-patches the 32-bit length on finish().
//    WireArena::append() does all three for a typed Message. clear()
//    keeps the capacity, so a channel reuses its arena across flushes
//    and steady-state encoding allocates nothing.
//
//  * Decode: parse_frame() returns a FrameView — header fields plus
//    std::span views over the receive buffer, no copy. decode_frame()
//    is the ownership escape hatch: it materializes a typed Message,
//    copying only the variable-length fields the message actually owns
//    (packet payloads, ack lists). BatchReader walks the frames of one
//    flushed batch in order.
//
// Error isolation at batch boundaries: a malformed or truncated frame
// yields exactly one error from BatchReader::next() and ends iteration of
// *that batch only* — bytes cannot be resynchronized past a corrupt
// length, but the next delivered batch starts a fresh reader, so one bad
// frame never poisons the connection (unlike MessageStream, which models
// a byte-stream transport and must poison).
//
// Arena lifetime rules: FrameViews (and the spans inside decoded
// Experimenter payloads before materialization) borrow the receive
// buffer — they are valid only while that buffer is alive and unmodified.
// A WireArena must not be appended to while an unfinished FrameWriter is
// outstanding; take()/clear() invalidate every span previously returned.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "openflow/messages.h"
#include "util/buffer.h"
#include "util/result.h"

namespace zen::openflow {

// Transaction id: assigned per southbound send, echoed in replies/errors so
// callers can correlate outcomes (see Controller's completion callbacks).
using Xid = std::uint32_t;

// A decoded message with owned storage (the materialized form).
struct OwnedMessage {
  Xid xid = 0;
  Message msg;
};

// Zero-copy view of one frame inside a receive buffer.
struct FrameView {
  MsgType type = MsgType::Hello;
  Xid xid = 0;
  std::span<const std::uint8_t> body;   // past the header
  std::span<const std::uint8_t> frame;  // whole frame, header included
};

// Contiguous buffer of encoded frames (the per-channel staging arena).
class WireArena {
 public:
  // Encodes `msg` as one frame appended to the arena; returns a view of
  // the appended frame (valid until the next append/clear/take).
  std::span<const std::uint8_t> append(const Message& msg, Xid xid);

  std::span<const std::uint8_t> bytes() const noexcept {
    return {buf_.data(), buf_.size()};
  }
  std::size_t size() const noexcept { return buf_.size(); }
  bool empty() const noexcept { return buf_.empty(); }
  std::size_t frame_count() const noexcept { return frames_; }

  // Drops the content but keeps the capacity (steady-state reuse).
  void clear() noexcept {
    buf_.clear();
    frames_ = 0;
  }
  // Moves the buffer out (for handing a flushed batch to a transport),
  // leaving the arena empty.
  Bytes take() noexcept {
    Bytes out = std::move(buf_);
    buf_.clear();
    frames_ = 0;
    return out;
  }

 private:
  friend class FrameWriter;
  Bytes buf_;
  std::size_t frames_ = 0;
};

// Appends one frame to an arena: writes the header on construction, hands
// out a ByteWriter for the body, patches the length on finish(). Exactly
// one FrameWriter may be live per arena, and finish() must be called
// before the arena is used again.
class FrameWriter {
 public:
  FrameWriter(WireArena& arena, MsgType type, Xid xid);
  FrameWriter(const FrameWriter&) = delete;
  FrameWriter& operator=(const FrameWriter&) = delete;

  util::ByteWriter& body() noexcept { return writer_; }

  // Back-patches the frame length and returns a view of the whole frame.
  std::span<const std::uint8_t> finish();

 private:
  WireArena& arena_;
  std::size_t start_;
  util::ByteWriter writer_;
  bool finished_ = false;
};

// Parses the frame at the front of `data` without copying. Errors on a
// short buffer, a bad version, or a corrupt/oversized length.
util::Result<FrameView> parse_frame(std::span<const std::uint8_t> data);

// Materializes a typed message from a frame view (copies only the fields
// the Message owns). The view's buffer may be discarded afterwards.
util::Result<OwnedMessage> decode_frame(const FrameView& view);

// Convenience: encodes one message as a standalone frame in a fresh
// buffer. The arena API is the hot path; this is for tests, fuzzers and
// one-shot frames (e.g. a bundle member embedded in an Experimenter).
Bytes encode_frame(const Message& msg, Xid xid);

// Iterates the complete frames of one flushed batch, front to back. A bad
// frame yields one error result and ends iteration of this batch (no
// resync past a corrupt length); earlier frames were already yielded.
class BatchReader {
 public:
  explicit BatchReader(std::span<const std::uint8_t> batch) : rest_(batch) {}

  // Next frame view, an error for a malformed frame (terminal for this
  // batch), or nullopt once the batch is exhausted.
  std::optional<util::Result<FrameView>> next();

  std::size_t frames_yielded() const noexcept { return frames_; }
  std::size_t remaining_bytes() const noexcept { return rest_.size(); }

 private:
  std::span<const std::uint8_t> rest_;
  std::size_t frames_ = 0;
  bool dead_ = false;
};

}  // namespace zen::openflow
