// Southbound protocol messages.
//
// Each message is a value struct with encode_body/decode_body; the codec
// (codec.h) adds the common header and stream framing. Message is
// the closed variant the control plane and switch agent dispatch on.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "openflow/actions.h"
#include "openflow/constants.h"
#include "openflow/match.h"

namespace zen::openflow {

using Bytes = std::vector<std::uint8_t>;

struct Hello {
  std::uint8_t version = kProtocolVersion;
  friend bool operator==(const Hello&, const Hello&) = default;
};

struct ErrorMsg {
  ErrorType type = ErrorType::BadRequest;
  std::uint16_t code = 0;
  Bytes data;  // first bytes of the offending message
  friend bool operator==(const ErrorMsg&, const ErrorMsg&) = default;
};

// Canonical name used by the transactional southbound API (completion
// callbacks receive an Error on failure).
using Error = ErrorMsg;

// True for the typed failure a bounded flow table reports when it has no
// room and eviction could not free any (the signal the FlowRuleStore's
// table-full repair strategy keys on).
inline bool is_table_full(const Error& err) noexcept {
  return err.type == ErrorType::FlowModFailed &&
         err.code == flow_mod_failed_code::kTableFull;
}

struct EchoRequest {
  Bytes data;
  friend bool operator==(const EchoRequest&, const EchoRequest&) = default;
};

struct EchoReply {
  Bytes data;
  // Datapath boot epoch (dataplane::Switch::boot_count): bumped by every
  // power cycle, so the controller can detect a crash/reboot that was
  // shorter than the heartbeat-miss window and still re-audit.
  std::uint64_t boot_id = 0;
  friend bool operator==(const EchoReply&, const EchoReply&) = default;
};

// Vendor-extension escape hatch (OF 1.3 OFPT_EXPERIMENTER shape): an opaque
// payload scoped by (experimenter_id, exp_type). zen_telemetry uses it to
// carry flow/path export batches northbound without widening the protocol.
struct Experimenter {
  std::uint32_t experimenter_id = 0;
  std::uint32_t exp_type = 0;
  Bytes payload;
  friend bool operator==(const Experimenter&, const Experimenter&) = default;
};

struct FeaturesRequest {
  friend bool operator==(const FeaturesRequest&, const FeaturesRequest&) = default;
};

struct PortDesc {
  std::uint32_t port_no = 0;
  net::MacAddress hw_addr;
  std::string name;
  bool link_up = true;
  std::uint32_t curr_speed_mbps = 10000;
  friend bool operator==(const PortDesc&, const PortDesc&) = default;
};

struct FeaturesReply {
  std::uint64_t datapath_id = 0;
  std::uint32_t n_buffers = 256;
  std::uint8_t n_tables = 4;
  // Datapath boot epoch at handshake time (see EchoReply::boot_id).
  std::uint64_t boot_id = 0;
  std::vector<PortDesc> ports;
  friend bool operator==(const FeaturesReply&, const FeaturesReply&) = default;
};

struct FlowMod {
  std::uint64_t cookie = 0;
  std::uint8_t table_id = 0;
  FlowModCommand command = FlowModCommand::Add;
  std::uint16_t idle_timeout = 0;  // seconds; 0 = never
  std::uint16_t hard_timeout = 0;
  std::uint16_t priority = 0;
  std::uint32_t buffer_id = kNoBuffer;
  std::uint32_t out_port = Ports::kAny;  // filter for Delete
  std::uint16_t flags = 0;
  // Eviction precedence under EvictionPolicy::Importance (OVS shape):
  // when a bounded table must make room, the entry with the lowest
  // importance goes first, and an incoming Add can never displace an
  // entry more important than itself.
  std::uint16_t importance = 0;
  Match match;
  InstructionList instructions;
  friend bool operator==(const FlowMod&, const FlowMod&) = default;
};

struct PacketIn {
  std::uint32_t buffer_id = kNoBuffer;
  PacketInReason reason = PacketInReason::NoMatch;
  std::uint8_t table_id = 0;
  std::uint64_t cookie = 0;
  std::uint32_t in_port = 0;
  std::uint16_t total_len = 0;  // original frame length
  Bytes data;                   // (possibly truncated) frame
  friend bool operator==(const PacketIn&, const PacketIn&) = default;
};

struct PacketOut {
  std::uint32_t buffer_id = kNoBuffer;
  std::uint32_t in_port = Ports::kController;
  ActionList actions;
  Bytes data;  // ignored when buffer_id != kNoBuffer
  friend bool operator==(const PacketOut&, const PacketOut&) = default;
};

struct FlowRemoved {
  std::uint64_t cookie = 0;
  std::uint16_t priority = 0;
  FlowRemovedReason reason = FlowRemovedReason::IdleTimeout;
  std::uint8_t table_id = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  Match match;
  friend bool operator==(const FlowRemoved&, const FlowRemoved&) = default;
};

struct PortStatus {
  PortReason reason = PortReason::Modify;
  PortDesc desc;
  friend bool operator==(const PortStatus&, const PortStatus&) = default;
};

struct Bucket {
  std::uint16_t weight = 1;  // Select groups pick proportional to weight
  // FastFailover groups: the bucket is live iff this port is up
  // (Ports::kAny = unconditionally live).
  std::uint32_t watch_port = Ports::kAny;
  ActionList actions;
  friend bool operator==(const Bucket&, const Bucket&) = default;
};

struct GroupMod {
  GroupModCommand command = GroupModCommand::Add;
  GroupType type = GroupType::All;
  std::uint32_t group_id = 0;
  std::vector<Bucket> buckets;
  friend bool operator==(const GroupMod&, const GroupMod&) = default;
};

struct MeterMod {
  MeterModCommand command = MeterModCommand::Add;
  std::uint32_t meter_id = 0;
  std::uint64_t rate_kbps = 0;
  std::uint64_t burst_kbits = 0;
  friend bool operator==(const MeterMod&, const MeterMod&) = default;
};

struct BarrierRequest {
  friend bool operator==(const BarrierRequest&, const BarrierRequest&) = default;
};

struct BarrierReply {
  // Per-xid ack: the controller xids of state-modifying messages the
  // switch agent successfully processed, oldest first (a bounded recent
  // window, see SwitchAgent::kMaxAckedMods). On a lossy or reordering
  // channel this is what lets the controller distinguish "mod applied"
  // from "barrier overtook (or outlived) the mod" — and, unlike a
  // high-water mark, a delivered later mod can never vouch for an
  // earlier lost one.
  std::vector<std::uint32_t> acked;
  friend bool operator==(const BarrierReply&, const BarrierReply&) = default;
};

struct FlowStatsRequest {
  std::uint8_t table_id = kTableAll;
  Match match;  // only entries subsumed by this match are reported
  friend bool operator==(const FlowStatsRequest&, const FlowStatsRequest&) = default;
};

struct FlowStatsEntry {
  std::uint8_t table_id = 0;
  std::uint16_t priority = 0;
  std::uint64_t cookie = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  std::uint32_t duration_sec = 0;
  Match match;
  InstructionList instructions;
  friend bool operator==(const FlowStatsEntry&, const FlowStatsEntry&) = default;
};

struct FlowStatsReply {
  std::vector<FlowStatsEntry> entries;
  friend bool operator==(const FlowStatsReply&, const FlowStatsReply&) = default;
};

struct PortStatsRequest {
  std::uint32_t port_no = Ports::kAny;
  friend bool operator==(const PortStatsRequest&, const PortStatsRequest&) = default;
};

struct PortStatsEntry {
  std::uint32_t port_no = 0;
  std::uint64_t rx_packets = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_dropped = 0;
  std::uint64_t tx_dropped = 0;
  friend bool operator==(const PortStatsEntry&, const PortStatsEntry&) = default;
};

struct PortStatsReply {
  std::vector<PortStatsEntry> entries;
  friend bool operator==(const PortStatsReply&, const PortStatsReply&) = default;
};

struct TableStatsRequest {
  friend bool operator==(const TableStatsRequest&, const TableStatsRequest&) = default;
};

struct TableStatsEntry {
  std::uint8_t table_id = 0;
  std::uint32_t active_count = 0;
  std::uint64_t lookup_count = 0;
  std::uint64_t matched_count = 0;
  friend bool operator==(const TableStatsEntry&, const TableStatsEntry&) = default;
};

struct TableStatsReply {
  std::vector<TableStatsEntry> entries;
  friend bool operator==(const TableStatsReply&, const TableStatsReply&) = default;
};

struct RoleRequest {
  ControllerRole role = ControllerRole::Equal;
  // Monotonic master-election epoch: stale generations are refused.
  std::uint64_t generation_id = 0;
  friend bool operator==(const RoleRequest&, const RoleRequest&) = default;
};

struct RoleReply {
  ControllerRole role = ControllerRole::Equal;  // role actually granted
  std::uint64_t generation_id = 0;
  bool accepted = true;
  friend bool operator==(const RoleReply&, const RoleReply&) = default;
};

using Message =
    std::variant<Hello, ErrorMsg, EchoRequest, EchoReply, Experimenter,
                 FeaturesRequest, FeaturesReply, FlowMod, PacketIn, PacketOut,
                 FlowRemoved, PortStatus, GroupMod, MeterMod, BarrierRequest,
                 BarrierReply, FlowStatsRequest, FlowStatsReply,
                 PortStatsRequest, PortStatsReply, TableStatsRequest,
                 TableStatsReply, RoleRequest, RoleReply>;

MsgType type_of(const Message& msg) noexcept;
std::string type_name(MsgType type);

// Body (past the common header) serialization; used by the codec.
void encode_body(const Message& msg, util::ByteWriter& w);
util::Result<Message> decode_body(MsgType type, util::ByteReader& r);

}  // namespace zen::openflow
