// TableStatus: OVS-style vacancy events for bounded flow tables.
//
// A switch configured with vacancy thresholds announces when a table's
// free space crosses them: VacancyDown when free entries drop to or below
// vacancy_down_pct of capacity, VacancyUp when they recover to or above
// vacancy_up_pct. The gap between the two thresholds is the hysteresis
// band that keeps a table hovering at one boundary from storming events.
//
// The event rides the southbound channel as an openflow::Experimenter
// message (the OFPT_TABLE_STATUS analog without widening the Message
// variant), scoped by kVacancyExperimenterId / kExpTypeTableStatus.
#pragma once

#include <cstdint>

#include "openflow/messages.h"
#include "util/result.h"

namespace zen::openflow {

// "zenv" — identifies zen vacancy/table-status experimenter messages.
inline constexpr std::uint32_t kVacancyExperimenterId = 0x7a656e76;
inline constexpr std::uint32_t kExpTypeTableStatus = 1;

enum class VacancyReason : std::uint8_t {
  VacancyDown = 0,  // free space fell to/below the down threshold
  VacancyUp = 1,    // free space recovered to/above the up threshold
};

struct TableStatus {
  std::uint8_t table_id = 0;
  VacancyReason reason = VacancyReason::VacancyDown;
  std::uint32_t active_count = 0;  // entries at the crossing
  std::uint32_t max_entries = 0;   // the table's configured bound
  // The thresholds in effect, echoed so the controller can reason about
  // the hysteresis band without knowing the switch's config.
  std::uint8_t vacancy_down_pct = 0;
  std::uint8_t vacancy_up_pct = 0;

  friend bool operator==(const TableStatus&, const TableStatus&) = default;
};

const char* to_string(VacancyReason reason) noexcept;

// Wraps/unwraps a TableStatus in the Experimenter envelope. parse returns
// an error for foreign experimenter ids or malformed payloads.
Experimenter make_table_status_message(const TableStatus& status);
util::Result<TableStatus> parse_table_status_message(const Experimenter& msg);

}  // namespace zen::openflow
