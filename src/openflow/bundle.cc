#include "openflow/bundle.h"

#include "util/buffer.h"

namespace zen::openflow {

namespace {

Experimenter make_envelope(std::uint32_t exp_type) {
  Experimenter msg;
  msg.experimenter_id = kBundleExperimenterId;
  msg.exp_type = exp_type;
  return msg;
}

}  // namespace

Experimenter make_bundle_open(std::uint32_t bundle_id) {
  Experimenter msg = make_envelope(kExpTypeBundleOpen);
  util::ByteWriter(msg.payload).u32(bundle_id);
  return msg;
}

Experimenter make_bundle_add(std::uint32_t bundle_id,
                             std::uint32_t member_index,
                             const Message& member) {
  Experimenter msg = make_envelope(kExpTypeBundleAdd);
  util::ByteWriter w(msg.payload);
  w.u32(bundle_id);
  w.u32(member_index);
  // The member rides as a complete frame (xid 0 — a staged member has no
  // transaction of its own; the commit's xid covers the whole bundle).
  w.bytes(encode_frame(member, 0));
  return msg;
}

Experimenter make_bundle_commit(std::uint32_t bundle_id,
                                std::uint32_t n_members) {
  Experimenter msg = make_envelope(kExpTypeBundleCommit);
  util::ByteWriter w(msg.payload);
  w.u32(bundle_id);
  w.u32(n_members);
  return msg;
}

Experimenter make_bundle_discard(std::uint32_t bundle_id) {
  Experimenter msg = make_envelope(kExpTypeBundleDiscard);
  util::ByteWriter(msg.payload).u32(bundle_id);
  return msg;
}

util::Result<BundleMessage> parse_bundle_message(const Experimenter& msg) {
  if (msg.experimenter_id != kBundleExperimenterId) {
    return util::make_error<BundleMessage>("bundle: foreign experimenter id");
  }
  util::ByteReader r(msg.payload);
  switch (msg.exp_type) {
    case kExpTypeBundleOpen: {
      BundleOpen open;
      open.bundle_id = r.u32();
      if (!r.ok()) return util::make_error<BundleMessage>("bundle: truncated");
      return BundleMessage{open};
    }
    case kExpTypeBundleAdd: {
      BundleAdd add;
      add.bundle_id = r.u32();
      add.member_index = r.u32();
      if (!r.ok()) return util::make_error<BundleMessage>("bundle: truncated");
      auto view = parse_frame(r.rest());
      if (!view.ok()) {
        return util::make_error<BundleMessage>("bundle: bad member frame: " +
                                               view.error());
      }
      auto member = decode_frame(view.value());
      if (!member.ok()) {
        return util::make_error<BundleMessage>("bundle: bad member: " +
                                               member.error());
      }
      add.member = std::move(member).value().msg;
      return BundleMessage{std::move(add)};
    }
    case kExpTypeBundleCommit: {
      BundleCommit commit;
      commit.bundle_id = r.u32();
      commit.n_members = r.u32();
      if (!r.ok()) return util::make_error<BundleMessage>("bundle: truncated");
      return BundleMessage{commit};
    }
    case kExpTypeBundleDiscard: {
      BundleDiscard discard;
      discard.bundle_id = r.u32();
      if (!r.ok()) return util::make_error<BundleMessage>("bundle: truncated");
      return BundleMessage{discard};
    }
    default:
      return util::make_error<BundleMessage>("bundle: unknown exp_type");
  }
}

}  // namespace zen::openflow
