#include "openflow/messages.h"

#include "util/strings.h"

namespace zen::openflow {

namespace {

void encode_bytes_field(const Bytes& data, util::ByteWriter& w) {
  w.u32(static_cast<std::uint32_t>(data.size()));
  w.bytes(data);
}

Bytes decode_bytes_field(util::ByteReader& r) {
  const std::uint32_t n = r.u32();
  if (n > r.remaining()) {
    r.skip(SIZE_MAX / 2);  // poison
    return {};
  }
  Bytes out(n);
  r.bytes(out);
  return out;
}

void encode_port_desc(const PortDesc& p, util::ByteWriter& w) {
  w.u32(p.port_no);
  w.bytes(p.hw_addr.octets());
  w.fixed_string(p.name, 16);
  w.u8(p.link_up ? 1 : 0);
  w.u32(p.curr_speed_mbps);
}

PortDesc decode_port_desc(util::ByteReader& r) {
  PortDesc p;
  p.port_no = r.u32();
  std::array<std::uint8_t, 6> mac{};
  r.bytes(mac);
  p.hw_addr = net::MacAddress(mac);
  p.name = r.fixed_string(16);
  p.link_up = r.u8() != 0;
  p.curr_speed_mbps = r.u32();
  return p;
}

}  // namespace

MsgType type_of(const Message& msg) noexcept {
  return std::visit(
      [](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Hello>) return MsgType::Hello;
        else if constexpr (std::is_same_v<T, ErrorMsg>) return MsgType::Error;
        else if constexpr (std::is_same_v<T, EchoRequest>) return MsgType::EchoRequest;
        else if constexpr (std::is_same_v<T, EchoReply>) return MsgType::EchoReply;
        else if constexpr (std::is_same_v<T, Experimenter>) return MsgType::Experimenter;
        else if constexpr (std::is_same_v<T, FeaturesRequest>) return MsgType::FeaturesRequest;
        else if constexpr (std::is_same_v<T, FeaturesReply>) return MsgType::FeaturesReply;
        else if constexpr (std::is_same_v<T, FlowMod>) return MsgType::FlowMod;
        else if constexpr (std::is_same_v<T, PacketIn>) return MsgType::PacketIn;
        else if constexpr (std::is_same_v<T, PacketOut>) return MsgType::PacketOut;
        else if constexpr (std::is_same_v<T, FlowRemoved>) return MsgType::FlowRemoved;
        else if constexpr (std::is_same_v<T, PortStatus>) return MsgType::PortStatus;
        else if constexpr (std::is_same_v<T, GroupMod>) return MsgType::GroupMod;
        else if constexpr (std::is_same_v<T, MeterMod>) return MsgType::MeterMod;
        else if constexpr (std::is_same_v<T, BarrierRequest>) return MsgType::BarrierRequest;
        else if constexpr (std::is_same_v<T, BarrierReply>) return MsgType::BarrierReply;
        else if constexpr (std::is_same_v<T, FlowStatsRequest>) return MsgType::FlowStatsRequest;
        else if constexpr (std::is_same_v<T, FlowStatsReply>) return MsgType::FlowStatsReply;
        else if constexpr (std::is_same_v<T, PortStatsRequest>) return MsgType::PortStatsRequest;
        else if constexpr (std::is_same_v<T, PortStatsReply>) return MsgType::PortStatsReply;
        else if constexpr (std::is_same_v<T, TableStatsRequest>) return MsgType::TableStatsRequest;
        else if constexpr (std::is_same_v<T, TableStatsReply>) return MsgType::TableStatsReply;
        else if constexpr (std::is_same_v<T, RoleRequest>) return MsgType::RoleRequest;
        else return MsgType::RoleReply;
      },
      msg);
}

std::string type_name(MsgType type) {
  switch (type) {
    case MsgType::Hello: return "Hello";
    case MsgType::Error: return "Error";
    case MsgType::EchoRequest: return "EchoRequest";
    case MsgType::EchoReply: return "EchoReply";
    case MsgType::Experimenter: return "Experimenter";
    case MsgType::FeaturesRequest: return "FeaturesRequest";
    case MsgType::FeaturesReply: return "FeaturesReply";
    case MsgType::PacketIn: return "PacketIn";
    case MsgType::FlowRemoved: return "FlowRemoved";
    case MsgType::PortStatus: return "PortStatus";
    case MsgType::PacketOut: return "PacketOut";
    case MsgType::FlowMod: return "FlowMod";
    case MsgType::GroupMod: return "GroupMod";
    case MsgType::PortMod: return "PortMod";
    case MsgType::MeterMod: return "MeterMod";
    case MsgType::BarrierRequest: return "BarrierRequest";
    case MsgType::BarrierReply: return "BarrierReply";
    case MsgType::FlowStatsRequest: return "FlowStatsRequest";
    case MsgType::FlowStatsReply: return "FlowStatsReply";
    case MsgType::PortStatsRequest: return "PortStatsRequest";
    case MsgType::PortStatsReply: return "PortStatsReply";
    case MsgType::TableStatsRequest: return "TableStatsRequest";
    case MsgType::TableStatsReply: return "TableStatsReply";
    case MsgType::RoleRequest: return "RoleRequest";
    case MsgType::RoleReply: return "RoleReply";
  }
  return util::format("Unknown(%u)", static_cast<unsigned>(type));
}

void encode_body(const Message& msg, util::ByteWriter& w) {
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Hello>) {
          w.u8(m.version);
        } else if constexpr (std::is_same_v<T, ErrorMsg>) {
          w.u16(static_cast<std::uint16_t>(m.type));
          w.u16(m.code);
          encode_bytes_field(m.data, w);
        } else if constexpr (std::is_same_v<T, EchoRequest>) {
          encode_bytes_field(m.data, w);
        } else if constexpr (std::is_same_v<T, EchoReply>) {
          encode_bytes_field(m.data, w);
          w.u64(m.boot_id);
        } else if constexpr (std::is_same_v<T, Experimenter>) {
          w.u32(m.experimenter_id);
          w.u32(m.exp_type);
          encode_bytes_field(m.payload, w);
        } else if constexpr (std::is_same_v<T, FeaturesRequest> ||
                             std::is_same_v<T, BarrierRequest> ||
                             std::is_same_v<T, TableStatsRequest>) {
          // empty body
        } else if constexpr (std::is_same_v<T, BarrierReply>) {
          w.u16(static_cast<std::uint16_t>(m.acked.size()));
          for (const std::uint32_t xid : m.acked) w.u32(xid);
        } else if constexpr (std::is_same_v<T, FeaturesReply>) {
          w.u64(m.datapath_id);
          w.u32(m.n_buffers);
          w.u8(m.n_tables);
          w.u64(m.boot_id);
          w.u16(static_cast<std::uint16_t>(m.ports.size()));
          for (const auto& p : m.ports) encode_port_desc(p, w);
        } else if constexpr (std::is_same_v<T, FlowMod>) {
          w.u64(m.cookie);
          w.u8(m.table_id);
          w.u8(static_cast<std::uint8_t>(m.command));
          w.u16(m.idle_timeout);
          w.u16(m.hard_timeout);
          w.u16(m.priority);
          w.u32(m.buffer_id);
          w.u32(m.out_port);
          w.u16(m.flags);
          w.u16(m.importance);
          m.match.encode(w);
          encode_instructions(m.instructions, w);
        } else if constexpr (std::is_same_v<T, PacketIn>) {
          w.u32(m.buffer_id);
          w.u8(static_cast<std::uint8_t>(m.reason));
          w.u8(m.table_id);
          w.u64(m.cookie);
          w.u32(m.in_port);
          w.u16(m.total_len);
          encode_bytes_field(m.data, w);
        } else if constexpr (std::is_same_v<T, PacketOut>) {
          w.u32(m.buffer_id);
          w.u32(m.in_port);
          encode_actions(m.actions, w);
          encode_bytes_field(m.data, w);
        } else if constexpr (std::is_same_v<T, FlowRemoved>) {
          w.u64(m.cookie);
          w.u16(m.priority);
          w.u8(static_cast<std::uint8_t>(m.reason));
          w.u8(m.table_id);
          w.u64(m.packet_count);
          w.u64(m.byte_count);
          m.match.encode(w);
        } else if constexpr (std::is_same_v<T, PortStatus>) {
          w.u8(static_cast<std::uint8_t>(m.reason));
          encode_port_desc(m.desc, w);
        } else if constexpr (std::is_same_v<T, GroupMod>) {
          w.u8(static_cast<std::uint8_t>(m.command));
          w.u8(static_cast<std::uint8_t>(m.type));
          w.u32(m.group_id);
          w.u16(static_cast<std::uint16_t>(m.buckets.size()));
          for (const auto& b : m.buckets) {
            w.u16(b.weight);
            w.u32(b.watch_port);
            encode_actions(b.actions, w);
          }
        } else if constexpr (std::is_same_v<T, MeterMod>) {
          w.u8(static_cast<std::uint8_t>(m.command));
          w.u32(m.meter_id);
          w.u64(m.rate_kbps);
          w.u64(m.burst_kbits);
        } else if constexpr (std::is_same_v<T, FlowStatsRequest>) {
          w.u8(m.table_id);
          m.match.encode(w);
        } else if constexpr (std::is_same_v<T, FlowStatsReply>) {
          w.u16(static_cast<std::uint16_t>(m.entries.size()));
          for (const auto& e : m.entries) {
            w.u8(e.table_id);
            w.u16(e.priority);
            w.u64(e.cookie);
            w.u64(e.packet_count);
            w.u64(e.byte_count);
            w.u32(e.duration_sec);
            e.match.encode(w);
            encode_instructions(e.instructions, w);
          }
        } else if constexpr (std::is_same_v<T, PortStatsRequest>) {
          w.u32(m.port_no);
        } else if constexpr (std::is_same_v<T, PortStatsReply>) {
          w.u16(static_cast<std::uint16_t>(m.entries.size()));
          for (const auto& e : m.entries) {
            w.u32(e.port_no);
            w.u64(e.rx_packets);
            w.u64(e.tx_packets);
            w.u64(e.rx_bytes);
            w.u64(e.tx_bytes);
            w.u64(e.rx_dropped);
            w.u64(e.tx_dropped);
          }
        } else if constexpr (std::is_same_v<T, RoleRequest>) {
          w.u8(static_cast<std::uint8_t>(m.role));
          w.u64(m.generation_id);
        } else if constexpr (std::is_same_v<T, RoleReply>) {
          w.u8(static_cast<std::uint8_t>(m.role));
          w.u64(m.generation_id);
          w.u8(m.accepted ? 1 : 0);
        } else if constexpr (std::is_same_v<T, TableStatsReply>) {
          w.u16(static_cast<std::uint16_t>(m.entries.size()));
          for (const auto& e : m.entries) {
            w.u8(e.table_id);
            w.u32(e.active_count);
            w.u64(e.lookup_count);
            w.u64(e.matched_count);
          }
        }
      },
      msg);
}

util::Result<Message> decode_body(MsgType type, util::ByteReader& r) {
  auto fail = [&](const char* what) {
    return util::make_error<Message>(
        util::format("%s in %s", what, type_name(type).c_str()));
  };

  switch (type) {
    case MsgType::Hello: {
      Hello m;
      m.version = r.u8();
      if (!r.ok()) return fail("truncated");
      return Message{m};
    }
    case MsgType::Error: {
      ErrorMsg m;
      m.type = static_cast<ErrorType>(r.u16());
      m.code = r.u16();
      m.data = decode_bytes_field(r);
      if (!r.ok()) return fail("truncated");
      return Message{std::move(m)};
    }
    case MsgType::EchoRequest: {
      EchoRequest m;
      m.data = decode_bytes_field(r);
      if (!r.ok()) return fail("truncated");
      return Message{std::move(m)};
    }
    case MsgType::EchoReply: {
      EchoReply m;
      m.data = decode_bytes_field(r);
      m.boot_id = r.u64();
      if (!r.ok()) return fail("truncated");
      return Message{std::move(m)};
    }
    case MsgType::Experimenter: {
      Experimenter m;
      m.experimenter_id = r.u32();
      m.exp_type = r.u32();
      m.payload = decode_bytes_field(r);
      if (!r.ok()) return fail("truncated");
      return Message{std::move(m)};
    }
    case MsgType::FeaturesRequest:
      return Message{FeaturesRequest{}};
    case MsgType::FeaturesReply: {
      FeaturesReply m;
      m.datapath_id = r.u64();
      m.n_buffers = r.u32();
      m.n_tables = r.u8();
      m.boot_id = r.u64();
      const std::uint16_t n = r.u16();
      for (std::uint16_t i = 0; i < n && r.ok(); ++i)
        m.ports.push_back(decode_port_desc(r));
      if (!r.ok()) return fail("truncated");
      return Message{std::move(m)};
    }
    case MsgType::FlowMod: {
      FlowMod m;
      m.cookie = r.u64();
      m.table_id = r.u8();
      m.command = static_cast<FlowModCommand>(r.u8());
      m.idle_timeout = r.u16();
      m.hard_timeout = r.u16();
      m.priority = r.u16();
      m.buffer_id = r.u32();
      m.out_port = r.u32();
      m.flags = r.u16();
      m.importance = r.u16();
      auto match = Match::decode(r);
      if (!match.ok()) return util::make_error<Message>(match.error());
      m.match = std::move(match).value();
      auto ins = decode_instructions(r);
      if (!ins.ok()) return util::make_error<Message>(ins.error());
      m.instructions = std::move(ins).value();
      if (!r.ok()) return fail("truncated");
      return Message{std::move(m)};
    }
    case MsgType::PacketIn: {
      PacketIn m;
      m.buffer_id = r.u32();
      m.reason = static_cast<PacketInReason>(r.u8());
      m.table_id = r.u8();
      m.cookie = r.u64();
      m.in_port = r.u32();
      m.total_len = r.u16();
      m.data = decode_bytes_field(r);
      if (!r.ok()) return fail("truncated");
      return Message{std::move(m)};
    }
    case MsgType::PacketOut: {
      PacketOut m;
      m.buffer_id = r.u32();
      m.in_port = r.u32();
      auto actions = decode_actions(r);
      if (!actions.ok()) return util::make_error<Message>(actions.error());
      m.actions = std::move(actions).value();
      m.data = decode_bytes_field(r);
      if (!r.ok()) return fail("truncated");
      return Message{std::move(m)};
    }
    case MsgType::FlowRemoved: {
      FlowRemoved m;
      m.cookie = r.u64();
      m.priority = r.u16();
      m.reason = static_cast<FlowRemovedReason>(r.u8());
      m.table_id = r.u8();
      m.packet_count = r.u64();
      m.byte_count = r.u64();
      auto match = Match::decode(r);
      if (!match.ok()) return util::make_error<Message>(match.error());
      m.match = std::move(match).value();
      if (!r.ok()) return fail("truncated");
      return Message{std::move(m)};
    }
    case MsgType::PortStatus: {
      PortStatus m;
      m.reason = static_cast<PortReason>(r.u8());
      m.desc = decode_port_desc(r);
      if (!r.ok()) return fail("truncated");
      return Message{std::move(m)};
    }
    case MsgType::GroupMod: {
      GroupMod m;
      m.command = static_cast<GroupModCommand>(r.u8());
      m.type = static_cast<GroupType>(r.u8());
      m.group_id = r.u32();
      const std::uint16_t n = r.u16();
      for (std::uint16_t i = 0; i < n && r.ok(); ++i) {
        Bucket b;
        b.weight = r.u16();
        b.watch_port = r.u32();
        auto actions = decode_actions(r);
        if (!actions.ok()) return util::make_error<Message>(actions.error());
        b.actions = std::move(actions).value();
        m.buckets.push_back(std::move(b));
      }
      if (!r.ok()) return fail("truncated");
      return Message{std::move(m)};
    }
    case MsgType::MeterMod: {
      MeterMod m;
      m.command = static_cast<MeterModCommand>(r.u8());
      m.meter_id = r.u32();
      m.rate_kbps = r.u64();
      m.burst_kbits = r.u64();
      if (!r.ok()) return fail("truncated");
      return Message{m};
    }
    case MsgType::BarrierRequest:
      return Message{BarrierRequest{}};
    case MsgType::BarrierReply: {
      BarrierReply m;
      const std::uint16_t n = r.u16();
      for (std::uint16_t i = 0; i < n && r.ok(); ++i) m.acked.push_back(r.u32());
      if (!r.ok()) return fail("truncated");
      return Message{m};
    }
    case MsgType::FlowStatsRequest: {
      FlowStatsRequest m;
      m.table_id = r.u8();
      auto match = Match::decode(r);
      if (!match.ok()) return util::make_error<Message>(match.error());
      m.match = std::move(match).value();
      if (!r.ok()) return fail("truncated");
      return Message{std::move(m)};
    }
    case MsgType::FlowStatsReply: {
      FlowStatsReply m;
      const std::uint16_t n = r.u16();
      for (std::uint16_t i = 0; i < n && r.ok(); ++i) {
        FlowStatsEntry e;
        e.table_id = r.u8();
        e.priority = r.u16();
        e.cookie = r.u64();
        e.packet_count = r.u64();
        e.byte_count = r.u64();
        e.duration_sec = r.u32();
        auto match = Match::decode(r);
        if (!match.ok()) return util::make_error<Message>(match.error());
        e.match = std::move(match).value();
        auto ins = decode_instructions(r);
        if (!ins.ok()) return util::make_error<Message>(ins.error());
        e.instructions = std::move(ins).value();
        m.entries.push_back(std::move(e));
      }
      if (!r.ok()) return fail("truncated");
      return Message{std::move(m)};
    }
    case MsgType::PortStatsRequest: {
      PortStatsRequest m;
      m.port_no = r.u32();
      if (!r.ok()) return fail("truncated");
      return Message{m};
    }
    case MsgType::PortStatsReply: {
      PortStatsReply m;
      const std::uint16_t n = r.u16();
      for (std::uint16_t i = 0; i < n && r.ok(); ++i) {
        PortStatsEntry e;
        e.port_no = r.u32();
        e.rx_packets = r.u64();
        e.tx_packets = r.u64();
        e.rx_bytes = r.u64();
        e.tx_bytes = r.u64();
        e.rx_dropped = r.u64();
        e.tx_dropped = r.u64();
        m.entries.push_back(e);
      }
      if (!r.ok()) return fail("truncated");
      return Message{std::move(m)};
    }
    case MsgType::TableStatsRequest:
      return Message{TableStatsRequest{}};
    case MsgType::RoleRequest: {
      RoleRequest m;
      m.role = static_cast<ControllerRole>(r.u8());
      m.generation_id = r.u64();
      if (!r.ok()) return fail("truncated");
      return Message{m};
    }
    case MsgType::RoleReply: {
      RoleReply m;
      m.role = static_cast<ControllerRole>(r.u8());
      m.generation_id = r.u64();
      m.accepted = r.u8() != 0;
      if (!r.ok()) return fail("truncated");
      return Message{m};
    }
    case MsgType::TableStatsReply: {
      TableStatsReply m;
      const std::uint16_t n = r.u16();
      for (std::uint16_t i = 0; i < n && r.ok(); ++i) {
        TableStatsEntry e;
        e.table_id = r.u8();
        e.active_count = r.u32();
        e.lookup_count = r.u64();
        e.matched_count = r.u64();
        m.entries.push_back(e);
      }
      if (!r.ok()) return fail("truncated");
      return Message{std::move(m)};
    }
    default:
      return util::make_error<Message>(
          util::format("unsupported message type %u", static_cast<unsigned>(type)));
  }
}

}  // namespace zen::openflow
