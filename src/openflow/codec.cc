#include "openflow/codec.h"

#include "openflow/constants.h"
#include "util/strings.h"

namespace zen::openflow {

// Deprecated v1 shim, kept as the equivalence baseline: same bytes as the
// arena writer, one fresh allocation per message.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
Bytes encode(const Message& msg, Xid xid) { return encode_frame(msg, xid); }
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

util::Result<OwnedMessage> decode(std::span<const std::uint8_t> frame) {
  auto view = parse_frame(frame);
  if (!view.ok()) return util::make_error<OwnedMessage>(view.error());
  if (view.value().frame.size() != frame.size())
    return util::make_error<OwnedMessage>(util::format(
        "length mismatch: header says %zu, frame is %zu",
        view.value().frame.size(), frame.size()));
  return decode_frame(view.value());
}

void MessageStream::feed(std::span<const std::uint8_t> data) {
  // Compact lazily: drop consumed prefix once it dominates the buffer.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

std::optional<util::Result<OwnedMessage>> MessageStream::next() {
  if (poisoned_) return std::nullopt;
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < kHeaderSize) return std::nullopt;

  const std::uint8_t* p = buffer_.data() + consumed_;
  const std::uint8_t version = p[0];
  const std::uint32_t length = (std::uint32_t{p[2]} << 24) |
                               (std::uint32_t{p[3]} << 16) |
                               (std::uint32_t{p[4]} << 8) | p[5];
  if (version != kProtocolVersion || length < kHeaderSize ||
      length > kMaxMessageSize) {
    poisoned_ = true;
    return util::make_error<OwnedMessage>(
        util::format("corrupt frame header (version=0x%02x length=%u)",
                     version, length));
  }
  if (avail < length) return std::nullopt;

  auto result = decode({p, length});
  consumed_ += length;
  return result;
}

}  // namespace zen::openflow
