#include "openflow/codec.h"

#include <cstring>

#include "util/buffer.h"
#include "util/strings.h"

namespace zen::openflow {

Bytes encode(const Message& msg, Xid xid) {
  Bytes out;
  out.reserve(64);
  util::ByteWriter w(out);
  w.u8(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(type_of(msg)));
  const std::size_t len_offset = w.size();
  w.u32(0);  // length placeholder
  w.u32(xid);
  encode_body(msg, w);
  // Patch the 32-bit length (ByteWriter::patch_u16 patches 16 bits; message
  // sizes here always fit, but write both halves for correctness).
  const auto total = static_cast<std::uint32_t>(out.size());
  out[len_offset] = static_cast<std::uint8_t>(total >> 24);
  out[len_offset + 1] = static_cast<std::uint8_t>(total >> 16);
  out[len_offset + 2] = static_cast<std::uint8_t>(total >> 8);
  out[len_offset + 3] = static_cast<std::uint8_t>(total);
  return out;
}

util::Result<OwnedMessage> decode(std::span<const std::uint8_t> frame) {
  util::ByteReader r(frame);
  const std::uint8_t version = r.u8();
  const auto type = static_cast<MsgType>(r.u8());
  const std::uint32_t length = r.u32();
  const Xid xid = r.u32();
  if (!r.ok()) return util::make_error<OwnedMessage>("truncated header");
  if (version != kProtocolVersion)
    return util::make_error<OwnedMessage>(
        util::format("bad version 0x%02x", version));
  if (length != frame.size())
    return util::make_error<OwnedMessage>(util::format(
        "length mismatch: header says %u, frame is %zu", length, frame.size()));

  auto body = decode_body(type, r);
  if (!body.ok()) return util::make_error<OwnedMessage>(body.error());
  return OwnedMessage{xid, std::move(body).value()};
}

void MessageStream::feed(std::span<const std::uint8_t> data) {
  // Compact lazily: drop consumed prefix once it dominates the buffer.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

std::optional<util::Result<OwnedMessage>> MessageStream::next() {
  if (poisoned_) return std::nullopt;
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < kHeaderSize) return std::nullopt;

  const std::uint8_t* p = buffer_.data() + consumed_;
  const std::uint8_t version = p[0];
  const std::uint32_t length = (std::uint32_t{p[2]} << 24) |
                               (std::uint32_t{p[3]} << 16) |
                               (std::uint32_t{p[4]} << 8) | p[5];
  if (version != kProtocolVersion || length < kHeaderSize ||
      length > kMaxMessageSize) {
    poisoned_ = true;
    return util::make_error<OwnedMessage>(
        util::format("corrupt frame header (version=0x%02x length=%u)",
                     version, length));
  }
  if (avail < length) return std::nullopt;

  auto result = decode({p, length});
  consumed_ += length;
  return result;
}

}  // namespace zen::openflow
