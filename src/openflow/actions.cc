#include "openflow/actions.h"

#include "util/strings.h"

namespace zen::openflow {

namespace {

enum class ActionTag : std::uint8_t {
  Output = 0,
  Group = 1,
  SetQueue = 2,
  PushVlan = 3,
  PopVlan = 4,
  SetEthSrc = 5,
  SetEthDst = 6,
  SetIpv4Src = 7,
  SetIpv4Dst = 8,
  SetL4Src = 9,
  SetL4Dst = 10,
  SetIpDscp = 11,
  DecTtl = 12,
};

enum class InstrTag : std::uint8_t {
  Apply = 0,
  Write = 1,
  Clear = 2,
  Goto = 3,
  Meter = 4,
};

}  // namespace

std::string to_string(const Action& action) {
  return std::visit(
      [](const auto& a) -> std::string {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, OutputAction>)
          return util::format("output:%u", a.port);
        else if constexpr (std::is_same_v<T, GroupAction>)
          return util::format("group:%u", a.group_id);
        else if constexpr (std::is_same_v<T, SetQueueAction>)
          return util::format("set_queue:%u", a.queue_id);
        else if constexpr (std::is_same_v<T, PushVlanAction>)
          return util::format("push_vlan:%u", a.vid);
        else if constexpr (std::is_same_v<T, PopVlanAction>)
          return "pop_vlan";
        else if constexpr (std::is_same_v<T, SetEthSrcAction>)
          return "set_eth_src:" + a.mac.to_string();
        else if constexpr (std::is_same_v<T, SetEthDstAction>)
          return "set_eth_dst:" + a.mac.to_string();
        else if constexpr (std::is_same_v<T, SetIpv4SrcAction>)
          return "set_ipv4_src:" + a.addr.to_string();
        else if constexpr (std::is_same_v<T, SetIpv4DstAction>)
          return "set_ipv4_dst:" + a.addr.to_string();
        else if constexpr (std::is_same_v<T, SetL4SrcAction>)
          return util::format("set_l4_src:%u", a.port);
        else if constexpr (std::is_same_v<T, SetL4DstAction>)
          return util::format("set_l4_dst:%u", a.port);
        else if constexpr (std::is_same_v<T, SetIpDscpAction>)
          return util::format("set_dscp:%u", a.dscp);
        else
          return "dec_ttl";
      },
      action);
}

std::string to_string(const ActionList& actions) {
  std::string out = "[";
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (i) out += ", ";
    out += to_string(actions[i]);
  }
  return out + "]";
}

void encode_action(const Action& action, util::ByteWriter& w) {
  std::visit(
      [&](const auto& a) {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, OutputAction>) {
          w.u8(static_cast<std::uint8_t>(ActionTag::Output));
          w.u32(a.port);
          w.u16(a.max_len);
        } else if constexpr (std::is_same_v<T, GroupAction>) {
          w.u8(static_cast<std::uint8_t>(ActionTag::Group));
          w.u32(a.group_id);
        } else if constexpr (std::is_same_v<T, SetQueueAction>) {
          w.u8(static_cast<std::uint8_t>(ActionTag::SetQueue));
          w.u32(a.queue_id);
        } else if constexpr (std::is_same_v<T, PushVlanAction>) {
          w.u8(static_cast<std::uint8_t>(ActionTag::PushVlan));
          w.u16(a.vid);
          w.u8(a.pcp);
        } else if constexpr (std::is_same_v<T, PopVlanAction>) {
          w.u8(static_cast<std::uint8_t>(ActionTag::PopVlan));
        } else if constexpr (std::is_same_v<T, SetEthSrcAction>) {
          w.u8(static_cast<std::uint8_t>(ActionTag::SetEthSrc));
          w.bytes(a.mac.octets());
        } else if constexpr (std::is_same_v<T, SetEthDstAction>) {
          w.u8(static_cast<std::uint8_t>(ActionTag::SetEthDst));
          w.bytes(a.mac.octets());
        } else if constexpr (std::is_same_v<T, SetIpv4SrcAction>) {
          w.u8(static_cast<std::uint8_t>(ActionTag::SetIpv4Src));
          w.u32(a.addr.value());
        } else if constexpr (std::is_same_v<T, SetIpv4DstAction>) {
          w.u8(static_cast<std::uint8_t>(ActionTag::SetIpv4Dst));
          w.u32(a.addr.value());
        } else if constexpr (std::is_same_v<T, SetL4SrcAction>) {
          w.u8(static_cast<std::uint8_t>(ActionTag::SetL4Src));
          w.u16(a.port);
        } else if constexpr (std::is_same_v<T, SetL4DstAction>) {
          w.u8(static_cast<std::uint8_t>(ActionTag::SetL4Dst));
          w.u16(a.port);
        } else if constexpr (std::is_same_v<T, SetIpDscpAction>) {
          w.u8(static_cast<std::uint8_t>(ActionTag::SetIpDscp));
          w.u8(a.dscp);
        } else {
          w.u8(static_cast<std::uint8_t>(ActionTag::DecTtl));
        }
      },
      action);
}

util::Result<Action> decode_action(util::ByteReader& r) {
  const auto tag = static_cast<ActionTag>(r.u8());
  Action out = PopVlanAction{};
  switch (tag) {
    case ActionTag::Output: {
      OutputAction a;
      a.port = r.u32();
      a.max_len = r.u16();
      out = a;
      break;
    }
    case ActionTag::Group:
      out = GroupAction{r.u32()};
      break;
    case ActionTag::SetQueue:
      out = SetQueueAction{r.u32()};
      break;
    case ActionTag::PushVlan: {
      PushVlanAction a;
      a.vid = r.u16();
      a.pcp = r.u8();
      out = a;
      break;
    }
    case ActionTag::PopVlan:
      out = PopVlanAction{};
      break;
    case ActionTag::SetEthSrc:
    case ActionTag::SetEthDst: {
      std::array<std::uint8_t, 6> mac{};
      r.bytes(mac);
      if (tag == ActionTag::SetEthSrc)
        out = SetEthSrcAction{net::MacAddress(mac)};
      else
        out = SetEthDstAction{net::MacAddress(mac)};
      break;
    }
    case ActionTag::SetIpv4Src:
      out = SetIpv4SrcAction{net::Ipv4Address(r.u32())};
      break;
    case ActionTag::SetIpv4Dst:
      out = SetIpv4DstAction{net::Ipv4Address(r.u32())};
      break;
    case ActionTag::SetL4Src:
      out = SetL4SrcAction{r.u16()};
      break;
    case ActionTag::SetL4Dst:
      out = SetL4DstAction{r.u16()};
      break;
    case ActionTag::SetIpDscp:
      out = SetIpDscpAction{r.u8()};
      break;
    case ActionTag::DecTtl:
      out = DecTtlAction{};
      break;
    default:
      return util::make_error<Action>(
          util::format("unknown action tag %u", static_cast<unsigned>(tag)));
  }
  if (!r.ok()) return util::make_error<Action>("truncated action");
  return out;
}

void encode_actions(const ActionList& actions, util::ByteWriter& w) {
  w.u16(static_cast<std::uint16_t>(actions.size()));
  for (const auto& a : actions) encode_action(a, w);
}

util::Result<ActionList> decode_actions(util::ByteReader& r) {
  const std::uint16_t n = r.u16();
  ActionList out;
  out.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    auto a = decode_action(r);
    if (!a.ok()) return util::make_error<ActionList>(a.error());
    out.push_back(std::move(a).value());
  }
  return out;
}

std::string to_string(const InstructionList& instructions) {
  std::string out = "[";
  for (std::size_t i = 0; i < instructions.size(); ++i) {
    if (i) out += ", ";
    out += std::visit(
        [](const auto& ins) -> std::string {
          using T = std::decay_t<decltype(ins)>;
          if constexpr (std::is_same_v<T, ApplyActions>)
            return "apply" + to_string(ins.actions);
          else if constexpr (std::is_same_v<T, WriteActions>)
            return "write" + to_string(ins.actions);
          else if constexpr (std::is_same_v<T, ClearActions>)
            return "clear";
          else if constexpr (std::is_same_v<T, GotoTable>)
            return util::format("goto:%u", ins.table_id);
          else
            return util::format("meter:%u", ins.meter_id);
        },
        instructions[i]);
  }
  return out + "]";
}

void encode_instructions(const InstructionList& instructions,
                         util::ByteWriter& w) {
  w.u16(static_cast<std::uint16_t>(instructions.size()));
  for (const auto& ins : instructions) {
    std::visit(
        [&](const auto& i) {
          using T = std::decay_t<decltype(i)>;
          if constexpr (std::is_same_v<T, ApplyActions>) {
            w.u8(static_cast<std::uint8_t>(InstrTag::Apply));
            encode_actions(i.actions, w);
          } else if constexpr (std::is_same_v<T, WriteActions>) {
            w.u8(static_cast<std::uint8_t>(InstrTag::Write));
            encode_actions(i.actions, w);
          } else if constexpr (std::is_same_v<T, ClearActions>) {
            w.u8(static_cast<std::uint8_t>(InstrTag::Clear));
          } else if constexpr (std::is_same_v<T, GotoTable>) {
            w.u8(static_cast<std::uint8_t>(InstrTag::Goto));
            w.u8(i.table_id);
          } else {
            w.u8(static_cast<std::uint8_t>(InstrTag::Meter));
            w.u32(i.meter_id);
          }
        },
        ins);
  }
}

util::Result<InstructionList> decode_instructions(util::ByteReader& r) {
  const std::uint16_t n = r.u16();
  InstructionList out;
  out.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    const auto tag = static_cast<InstrTag>(r.u8());
    switch (tag) {
      case InstrTag::Apply: {
        auto actions = decode_actions(r);
        if (!actions.ok())
          return util::make_error<InstructionList>(actions.error());
        out.push_back(ApplyActions{std::move(actions).value()});
        break;
      }
      case InstrTag::Write: {
        auto actions = decode_actions(r);
        if (!actions.ok())
          return util::make_error<InstructionList>(actions.error());
        out.push_back(WriteActions{std::move(actions).value()});
        break;
      }
      case InstrTag::Clear:
        out.push_back(ClearActions{});
        break;
      case InstrTag::Goto:
        out.push_back(GotoTable{r.u8()});
        break;
      case InstrTag::Meter:
        out.push_back(MeterInstruction{r.u32()});
        break;
      default:
        return util::make_error<InstructionList>(util::format(
            "unknown instruction tag %u", static_cast<unsigned>(tag)));
    }
    if (!r.ok()) return util::make_error<InstructionList>("truncated instruction");
  }
  return out;
}

InstructionList output_to(std::uint32_t port) {
  return {ApplyActions{{OutputAction{port, 0xffff}}}};
}

}  // namespace zen::openflow
