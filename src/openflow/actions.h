// Actions and instructions: the verbs a flow entry can apply to a packet.
//
// Actions are a closed variant; the dataplane interprets them, the codec
// serializes them. Instructions wrap action lists with pipeline semantics
// (apply now vs. write to action-set vs. goto another table), mirroring the
// OpenFlow 1.3 split.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "net/addr.h"
#include "util/buffer.h"
#include "util/result.h"

namespace zen::openflow {

struct OutputAction {
  std::uint32_t port = 0;
  // Bytes of the packet to include in a resulting PacketIn (when port is
  // kController). 0xffff = whole packet.
  std::uint16_t max_len = 0xffff;
  friend bool operator==(const OutputAction&, const OutputAction&) = default;
};

struct GroupAction {
  std::uint32_t group_id = 0;
  friend bool operator==(const GroupAction&, const GroupAction&) = default;
};

struct SetQueueAction {
  std::uint32_t queue_id = 0;
  friend bool operator==(const SetQueueAction&, const SetQueueAction&) = default;
};

struct PushVlanAction {
  std::uint16_t vid = 0;
  std::uint8_t pcp = 0;
  friend bool operator==(const PushVlanAction&, const PushVlanAction&) = default;
};

struct PopVlanAction {
  friend bool operator==(const PopVlanAction&, const PopVlanAction&) = default;
};

struct SetEthSrcAction {
  net::MacAddress mac;
  friend bool operator==(const SetEthSrcAction&, const SetEthSrcAction&) = default;
};
struct SetEthDstAction {
  net::MacAddress mac;
  friend bool operator==(const SetEthDstAction&, const SetEthDstAction&) = default;
};
struct SetIpv4SrcAction {
  net::Ipv4Address addr;
  friend bool operator==(const SetIpv4SrcAction&, const SetIpv4SrcAction&) = default;
};
struct SetIpv4DstAction {
  net::Ipv4Address addr;
  friend bool operator==(const SetIpv4DstAction&, const SetIpv4DstAction&) = default;
};
struct SetL4SrcAction {
  std::uint16_t port = 0;
  friend bool operator==(const SetL4SrcAction&, const SetL4SrcAction&) = default;
};
struct SetL4DstAction {
  std::uint16_t port = 0;
  friend bool operator==(const SetL4DstAction&, const SetL4DstAction&) = default;
};
struct SetIpDscpAction {
  std::uint8_t dscp = 0;
  friend bool operator==(const SetIpDscpAction&, const SetIpDscpAction&) = default;
};
struct DecTtlAction {
  friend bool operator==(const DecTtlAction&, const DecTtlAction&) = default;
};

using Action =
    std::variant<OutputAction, GroupAction, SetQueueAction, PushVlanAction,
                 PopVlanAction, SetEthSrcAction, SetEthDstAction,
                 SetIpv4SrcAction, SetIpv4DstAction, SetL4SrcAction,
                 SetL4DstAction, SetIpDscpAction, DecTtlAction>;

using ActionList = std::vector<Action>;

std::string to_string(const Action& action);
std::string to_string(const ActionList& actions);

void encode_action(const Action& action, util::ByteWriter& w);
util::Result<Action> decode_action(util::ByteReader& r);

void encode_actions(const ActionList& actions, util::ByteWriter& w);
util::Result<ActionList> decode_actions(util::ByteReader& r);

// ---- instructions ----

struct ApplyActions {
  ActionList actions;
  friend bool operator==(const ApplyActions&, const ApplyActions&) = default;
};
struct WriteActions {
  ActionList actions;
  friend bool operator==(const WriteActions&, const WriteActions&) = default;
};
struct ClearActions {
  friend bool operator==(const ClearActions&, const ClearActions&) = default;
};
struct GotoTable {
  std::uint8_t table_id = 0;
  friend bool operator==(const GotoTable&, const GotoTable&) = default;
};
struct MeterInstruction {
  std::uint32_t meter_id = 0;
  friend bool operator==(const MeterInstruction&, const MeterInstruction&) = default;
};

using Instruction = std::variant<ApplyActions, WriteActions, ClearActions,
                                 GotoTable, MeterInstruction>;
using InstructionList = std::vector<Instruction>;

std::string to_string(const InstructionList& instructions);

void encode_instructions(const InstructionList& instructions,
                         util::ByteWriter& w);
util::Result<InstructionList> decode_instructions(util::ByteReader& r);

// Convenience: the ubiquitous "apply [output(port)]" instruction list.
InstructionList output_to(std::uint32_t port);

}  // namespace zen::openflow
