// Match: a (value, mask) pair over the canonical FlowKey, with a TLV wire
// encoding (OXM-style: field id, has-mask bit, value [, mask]).
//
// Matches are built through fluent setters:
//   Match m = Match().in_port(1).eth_type(EtherType::kIpv4)
//                    .ipv4_dst(addr, 24);
#pragma once

#include <cstdint>
#include <string>

#include "net/addr.h"
#include "net/flow_key.h"
#include "util/buffer.h"
#include "util/result.h"

namespace zen::openflow {

// Field ids used in the TLV encoding.
enum class Field : std::uint8_t {
  InPort = 0,
  EthSrc = 1,
  EthDst = 2,
  EthType = 3,
  VlanVid = 4,
  VlanPcp = 5,
  Ipv4Src = 6,
  Ipv4Dst = 7,
  IpProto = 8,
  IpDscp = 9,
  L4Src = 10,
  L4Dst = 11,
  ArpOp = 12,
  Ipv6Src = 13,
  Ipv6Dst = 14,
};

class Match {
 public:
  Match() = default;

  // ---- fluent setters ----
  Match& in_port(std::uint32_t port);
  Match& eth_src(net::MacAddress mac);
  Match& eth_dst(net::MacAddress mac);
  Match& eth_type(std::uint16_t type);
  Match& vlan_vid(std::uint16_t vid);
  Match& vlan_pcp(std::uint8_t pcp);
  Match& ipv4_src(net::Ipv4Address addr, int prefix_len = 32);
  Match& ipv4_dst(net::Ipv4Address addr, int prefix_len = 32);
  Match& ipv6_src(const net::Ipv6Address& addr, int prefix_len = 128);
  Match& ipv6_dst(const net::Ipv6Address& addr, int prefix_len = 128);
  Match& ip_proto(std::uint8_t proto);
  Match& ip_dscp(std::uint8_t dscp);
  Match& l4_src(std::uint16_t port);
  Match& l4_dst(std::uint16_t port);
  Match& arp_op(std::uint16_t op);

  // Copies every field `other` constrains into this match (AND-composition
  // of constraints; other's fields win on overlap).
  Match& merge(const Match& other);

  // True if `key` satisfies every masked field.
  bool matches(const net::FlowKey& key) const noexcept {
    return mask_.apply(key) == value_;
  }

  // True if this match is at least as specific as `other` on every field
  // `other` constrains (i.e. this ⊆ other as packet sets, field-wise).
  bool subsumed_by(const Match& other) const noexcept;

  const net::FlowKey& value() const noexcept { return value_; }
  const net::FlowMask& mask() const noexcept { return mask_; }

  // Number of constrained fields (used as a specificity heuristic).
  int field_count() const noexcept;

  void encode(util::ByteWriter& w) const;
  static util::Result<Match> decode(util::ByteReader& r);

  std::string to_string() const;

  friend bool operator==(const Match&, const Match&) = default;

 private:
  net::FlowKey value_;   // pre-masked values
  net::FlowMask mask_;   // all-zero fields are wildcards
};

}  // namespace zen::openflow
