// Framing codec: header handling and stream reassembly.
//
// Wire layout (all big-endian):
//   u8  version   (kProtocolVersion)
//   u8  type      (MsgType)
//   u32 length    (header + body, bytes)
//   u32 xid       (transaction id, echoed in replies)
//   ... body
//
// MessageStream accumulates bytes from a byte-stream transport and yields
// complete messages; partial messages stay buffered. This is the piece that
// makes the in-process channel behave like a real TCP southbound channel.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "openflow/messages.h"
#include "util/result.h"

namespace zen::openflow {

// Transaction id: assigned per southbound send, echoed in replies/errors so
// callers can correlate outcomes (see Controller's completion callbacks).
using Xid = std::uint32_t;

struct OwnedMessage {
  Xid xid = 0;
  Message msg;
};

// Serializes one message with its header.
Bytes encode(const Message& msg, Xid xid);

// Decodes exactly one message from `frame` (which must be a whole message).
util::Result<OwnedMessage> decode(std::span<const std::uint8_t> frame);

class MessageStream {
 public:
  // Appends raw transport bytes.
  void feed(std::span<const std::uint8_t> data);

  // Extracts the next complete message, if any. Returns nullopt when more
  // bytes are needed. A malformed header (bad version / absurd length)
  // poisons the stream: poisoned() goes true and no further messages are
  // produced — matching how a real peer would drop the connection.
  std::optional<util::Result<OwnedMessage>> next();

  bool poisoned() const noexcept { return poisoned_; }
  std::size_t buffered() const noexcept { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
  bool poisoned_ = false;
};

}  // namespace zen::openflow
