// Framing codec v1 surface: per-message encode shim and stream reassembly.
//
// Wire layout (all big-endian):
//   u8  version   (kProtocolVersion)
//   u8  type      (MsgType)
//   u32 length    (header + body, bytes)
//   u32 xid       (transaction id, echoed in replies)
//   ... body
//
// The arena-based v2 API lives in wire.h (WireArena / FrameWriter /
// FrameView / BatchReader); this header keeps the two pieces of the v1
// surface that still earn their place:
//
//  * encode(): a deprecated one-allocation-per-message shim, kept so the
//    v1-vs-v2 byte-equivalence suite has something to diff against.
//  * MessageStream: reassembly for a byte-stream transport (TCP-like
//    split/coalesced delivery). The in-process channel now delivers whole
//    flushed batches, which BatchReader walks without buffering, but the
//    stream model is still what a real socket southbound needs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "openflow/messages.h"
#include "openflow/wire.h"
#include "util/result.h"

namespace zen::openflow {

// Serializes one message with its header into a fresh buffer.
[[deprecated("use WireArena::append or encode_frame (openflow/wire.h)")]]
Bytes encode(const Message& msg, Xid xid);

// Decodes exactly one message from `frame` (which must be a whole message).
util::Result<OwnedMessage> decode(std::span<const std::uint8_t> frame);

class MessageStream {
 public:
  // Appends raw transport bytes.
  void feed(std::span<const std::uint8_t> data);

  // Extracts the next complete message, if any. Returns nullopt when more
  // bytes are needed. A malformed header (bad version / absurd length)
  // poisons the stream: poisoned() goes true and no further messages are
  // produced — matching how a real peer would drop the connection.
  std::optional<util::Result<OwnedMessage>> next();

  bool poisoned() const noexcept { return poisoned_; }
  std::size_t buffered() const noexcept { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
  bool poisoned_ = false;
};

}  // namespace zen::openflow
