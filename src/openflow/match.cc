#include "openflow/match.h"

#include <bit>

#include "util/strings.h"

namespace zen::openflow {

namespace {

constexpr std::uint32_t prefix_mask32(int prefix_len) noexcept {
  if (prefix_len <= 0) return 0;
  if (prefix_len >= 32) return ~std::uint32_t{0};
  return ~((std::uint32_t{1} << (32 - prefix_len)) - 1);
}

// (hi, lo) 64-bit mask halves for an IPv6 prefix length.
constexpr std::pair<std::uint64_t, std::uint64_t> prefix_mask128(
    int prefix_len) noexcept {
  auto mask64 = [](int bits) -> std::uint64_t {
    if (bits <= 0) return 0;
    if (bits >= 64) return ~std::uint64_t{0};
    return ~((std::uint64_t{1} << (64 - bits)) - 1);
  };
  return {mask64(prefix_len), mask64(prefix_len - 64)};
}

}  // namespace

Match& Match::in_port(std::uint32_t port) {
  value_.in_port = port;
  mask_.in_port = ~std::uint32_t{0};
  return *this;
}

Match& Match::eth_src(net::MacAddress mac) {
  value_.eth_src = mac.to_u64();
  mask_.eth_src = 0xffffffffffffULL;
  return *this;
}

Match& Match::eth_dst(net::MacAddress mac) {
  value_.eth_dst = mac.to_u64();
  mask_.eth_dst = 0xffffffffffffULL;
  return *this;
}

Match& Match::eth_type(std::uint16_t type) {
  value_.eth_type = type;
  mask_.eth_type = 0xffff;
  return *this;
}

Match& Match::vlan_vid(std::uint16_t vid) {
  value_.vlan_vid = vid;
  mask_.vlan_vid = 0xffff;
  return *this;
}

Match& Match::vlan_pcp(std::uint8_t pcp) {
  value_.vlan_pcp = pcp;
  mask_.vlan_pcp = 0xff;
  return *this;
}

Match& Match::ipv4_src(net::Ipv4Address addr, int prefix_len) {
  mask_.ipv4_src = prefix_mask32(prefix_len);
  value_.ipv4_src = addr.value() & mask_.ipv4_src;
  return *this;
}

Match& Match::ipv4_dst(net::Ipv4Address addr, int prefix_len) {
  mask_.ipv4_dst = prefix_mask32(prefix_len);
  value_.ipv4_dst = addr.value() & mask_.ipv4_dst;
  return *this;
}

Match& Match::ipv6_src(const net::Ipv6Address& addr, int prefix_len) {
  const auto [hi, lo] = net::FlowKey::split_ipv6(addr);
  const auto [mask_hi, mask_lo] = prefix_mask128(prefix_len);
  mask_.ipv6_src_hi = mask_hi;
  mask_.ipv6_src_lo = mask_lo;
  value_.ipv6_src_hi = hi & mask_hi;
  value_.ipv6_src_lo = lo & mask_lo;
  return *this;
}

Match& Match::ipv6_dst(const net::Ipv6Address& addr, int prefix_len) {
  const auto [hi, lo] = net::FlowKey::split_ipv6(addr);
  const auto [mask_hi, mask_lo] = prefix_mask128(prefix_len);
  mask_.ipv6_dst_hi = mask_hi;
  mask_.ipv6_dst_lo = mask_lo;
  value_.ipv6_dst_hi = hi & mask_hi;
  value_.ipv6_dst_lo = lo & mask_lo;
  return *this;
}

Match& Match::ip_proto(std::uint8_t proto) {
  value_.ip_proto = proto;
  mask_.ip_proto = 0xff;
  return *this;
}

Match& Match::ip_dscp(std::uint8_t dscp) {
  value_.ip_dscp = dscp;
  mask_.ip_dscp = 0xff;
  return *this;
}

Match& Match::l4_src(std::uint16_t port) {
  value_.l4_src = port;
  mask_.l4_src = 0xffff;
  return *this;
}

Match& Match::l4_dst(std::uint16_t port) {
  value_.l4_dst = port;
  mask_.l4_dst = 0xffff;
  return *this;
}

Match& Match::arp_op(std::uint16_t op) {
  value_.arp_op = op;
  mask_.arp_op = 0xffff;
  return *this;
}

Match& Match::merge(const Match& other) {
  auto merge_field = [](auto& my_val, auto& my_mask, auto their_val,
                        auto their_mask) {
    if (their_mask == 0) return;
    my_val = (my_val & ~their_mask) | (their_val & their_mask);
    my_mask |= their_mask;
  };
  merge_field(value_.in_port, mask_.in_port, other.value_.in_port,
              other.mask_.in_port);
  merge_field(value_.eth_src, mask_.eth_src, other.value_.eth_src,
              other.mask_.eth_src);
  merge_field(value_.eth_dst, mask_.eth_dst, other.value_.eth_dst,
              other.mask_.eth_dst);
  merge_field(value_.eth_type, mask_.eth_type, other.value_.eth_type,
              other.mask_.eth_type);
  merge_field(value_.vlan_vid, mask_.vlan_vid, other.value_.vlan_vid,
              other.mask_.vlan_vid);
  merge_field(value_.vlan_pcp, mask_.vlan_pcp, other.value_.vlan_pcp,
              other.mask_.vlan_pcp);
  merge_field(value_.ipv4_src, mask_.ipv4_src, other.value_.ipv4_src,
              other.mask_.ipv4_src);
  merge_field(value_.ipv4_dst, mask_.ipv4_dst, other.value_.ipv4_dst,
              other.mask_.ipv4_dst);
  merge_field(value_.ipv6_src_hi, mask_.ipv6_src_hi, other.value_.ipv6_src_hi,
              other.mask_.ipv6_src_hi);
  merge_field(value_.ipv6_src_lo, mask_.ipv6_src_lo, other.value_.ipv6_src_lo,
              other.mask_.ipv6_src_lo);
  merge_field(value_.ipv6_dst_hi, mask_.ipv6_dst_hi, other.value_.ipv6_dst_hi,
              other.mask_.ipv6_dst_hi);
  merge_field(value_.ipv6_dst_lo, mask_.ipv6_dst_lo, other.value_.ipv6_dst_lo,
              other.mask_.ipv6_dst_lo);
  merge_field(value_.ip_proto, mask_.ip_proto, other.value_.ip_proto,
              other.mask_.ip_proto);
  merge_field(value_.ip_dscp, mask_.ip_dscp, other.value_.ip_dscp,
              other.mask_.ip_dscp);
  merge_field(value_.l4_src, mask_.l4_src, other.value_.l4_src,
              other.mask_.l4_src);
  merge_field(value_.l4_dst, mask_.l4_dst, other.value_.l4_dst,
              other.mask_.l4_dst);
  merge_field(value_.arp_op, mask_.arp_op, other.value_.arp_op,
              other.mask_.arp_op);
  return *this;
}

bool Match::subsumed_by(const Match& other) const noexcept {
  // `this` is subsumed iff, for every field, other's mask bits are a subset
  // of ours and the values agree on other's mask.
  auto field_ok = [](auto my_val, auto my_mask, auto their_val,
                     auto their_mask) {
    return (their_mask & ~my_mask) == 0 &&
           (my_val & their_mask) == (their_val & their_mask);
  };
  return field_ok(value_.in_port, mask_.in_port, other.value_.in_port,
                  other.mask_.in_port) &&
         field_ok(value_.eth_src, mask_.eth_src, other.value_.eth_src,
                  other.mask_.eth_src) &&
         field_ok(value_.eth_dst, mask_.eth_dst, other.value_.eth_dst,
                  other.mask_.eth_dst) &&
         field_ok(value_.eth_type, mask_.eth_type, other.value_.eth_type,
                  other.mask_.eth_type) &&
         field_ok(value_.vlan_vid, mask_.vlan_vid, other.value_.vlan_vid,
                  other.mask_.vlan_vid) &&
         field_ok(value_.vlan_pcp, mask_.vlan_pcp, other.value_.vlan_pcp,
                  other.mask_.vlan_pcp) &&
         field_ok(value_.ipv4_src, mask_.ipv4_src, other.value_.ipv4_src,
                  other.mask_.ipv4_src) &&
         field_ok(value_.ipv4_dst, mask_.ipv4_dst, other.value_.ipv4_dst,
                  other.mask_.ipv4_dst) &&
         field_ok(value_.ipv6_src_hi, mask_.ipv6_src_hi,
                  other.value_.ipv6_src_hi, other.mask_.ipv6_src_hi) &&
         field_ok(value_.ipv6_src_lo, mask_.ipv6_src_lo,
                  other.value_.ipv6_src_lo, other.mask_.ipv6_src_lo) &&
         field_ok(value_.ipv6_dst_hi, mask_.ipv6_dst_hi,
                  other.value_.ipv6_dst_hi, other.mask_.ipv6_dst_hi) &&
         field_ok(value_.ipv6_dst_lo, mask_.ipv6_dst_lo,
                  other.value_.ipv6_dst_lo, other.mask_.ipv6_dst_lo) &&
         field_ok(value_.ip_proto, mask_.ip_proto, other.value_.ip_proto,
                  other.mask_.ip_proto) &&
         field_ok(value_.ip_dscp, mask_.ip_dscp, other.value_.ip_dscp,
                  other.mask_.ip_dscp) &&
         field_ok(value_.l4_src, mask_.l4_src, other.value_.l4_src,
                  other.mask_.l4_src) &&
         field_ok(value_.l4_dst, mask_.l4_dst, other.value_.l4_dst,
                  other.mask_.l4_dst) &&
         field_ok(value_.arp_op, mask_.arp_op, other.value_.arp_op,
                  other.mask_.arp_op);
}

int Match::field_count() const noexcept {
  int n = 0;
  n += mask_.in_port != 0;
  n += mask_.eth_src != 0;
  n += mask_.eth_dst != 0;
  n += mask_.eth_type != 0;
  n += mask_.vlan_vid != 0;
  n += mask_.vlan_pcp != 0;
  n += mask_.ipv4_src != 0;
  n += mask_.ipv4_dst != 0;
  n += (mask_.ipv6_src_hi | mask_.ipv6_src_lo) != 0;
  n += (mask_.ipv6_dst_hi | mask_.ipv6_dst_lo) != 0;
  n += mask_.ip_proto != 0;
  n += mask_.ip_dscp != 0;
  n += mask_.l4_src != 0;
  n += mask_.l4_dst != 0;
  n += mask_.arp_op != 0;
  return n;
}

void Match::encode(util::ByteWriter& w) const {
  // Layout: u16 field-count, then per field: u8 field-id, u8 has_mask,
  // fixed-width value [, mask]. Only constrained fields are emitted.
  const std::size_t count_offset = w.size();
  w.u16(0);
  std::uint16_t count = 0;

  auto emit32 = [&](Field f, std::uint32_t v, std::uint32_t m) {
    if (m == 0) return;
    const bool full = m == ~std::uint32_t{0};
    w.u8(static_cast<std::uint8_t>(f));
    w.u8(full ? 0 : 1);
    w.u32(v);
    if (!full) w.u32(m);
    ++count;
  };
  auto emit48 = [&](Field f, std::uint64_t v, std::uint64_t m) {
    if (m == 0) return;
    const bool full = m == 0xffffffffffffULL;
    w.u8(static_cast<std::uint8_t>(f));
    w.u8(full ? 0 : 1);
    w.u16(static_cast<std::uint16_t>(v >> 32));
    w.u32(static_cast<std::uint32_t>(v));
    if (!full) {
      w.u16(static_cast<std::uint16_t>(m >> 32));
      w.u32(static_cast<std::uint32_t>(m));
    }
    ++count;
  };
  auto emit16 = [&](Field f, std::uint16_t v, std::uint16_t m) {
    if (m == 0) return;
    const bool full = m == 0xffff;
    w.u8(static_cast<std::uint8_t>(f));
    w.u8(full ? 0 : 1);
    w.u16(v);
    if (!full) w.u16(m);
    ++count;
  };
  auto emit128 = [&](Field f, std::uint64_t v_hi, std::uint64_t v_lo,
                     std::uint64_t m_hi, std::uint64_t m_lo) {
    if ((m_hi | m_lo) == 0) return;
    const bool full = m_hi == ~std::uint64_t{0} && m_lo == ~std::uint64_t{0};
    w.u8(static_cast<std::uint8_t>(f));
    w.u8(full ? 0 : 1);
    w.u64(v_hi);
    w.u64(v_lo);
    if (!full) {
      w.u64(m_hi);
      w.u64(m_lo);
    }
    ++count;
  };
  auto emit8 = [&](Field f, std::uint8_t v, std::uint8_t m) {
    if (m == 0) return;
    const bool full = m == 0xff;
    w.u8(static_cast<std::uint8_t>(f));
    w.u8(full ? 0 : 1);
    w.u8(v);
    if (!full) w.u8(m);
    ++count;
  };

  emit32(Field::InPort, value_.in_port, mask_.in_port);
  emit48(Field::EthSrc, value_.eth_src, mask_.eth_src);
  emit48(Field::EthDst, value_.eth_dst, mask_.eth_dst);
  emit16(Field::EthType, value_.eth_type, mask_.eth_type);
  emit16(Field::VlanVid, value_.vlan_vid, mask_.vlan_vid);
  emit8(Field::VlanPcp, value_.vlan_pcp, mask_.vlan_pcp);
  emit32(Field::Ipv4Src, value_.ipv4_src, mask_.ipv4_src);
  emit32(Field::Ipv4Dst, value_.ipv4_dst, mask_.ipv4_dst);
  emit128(Field::Ipv6Src, value_.ipv6_src_hi, value_.ipv6_src_lo,
          mask_.ipv6_src_hi, mask_.ipv6_src_lo);
  emit128(Field::Ipv6Dst, value_.ipv6_dst_hi, value_.ipv6_dst_lo,
          mask_.ipv6_dst_hi, mask_.ipv6_dst_lo);
  emit8(Field::IpProto, value_.ip_proto, mask_.ip_proto);
  emit8(Field::IpDscp, value_.ip_dscp, mask_.ip_dscp);
  emit16(Field::L4Src, value_.l4_src, mask_.l4_src);
  emit16(Field::L4Dst, value_.l4_dst, mask_.l4_dst);
  emit16(Field::ArpOp, value_.arp_op, mask_.arp_op);

  w.patch_u16(count_offset, count);
}

util::Result<Match> Match::decode(util::ByteReader& r) {
  Match m;
  const std::uint16_t count = r.u16();
  for (std::uint16_t i = 0; i < count; ++i) {
    const auto field = static_cast<Field>(r.u8());
    const bool has_mask = r.u8() != 0;
    switch (field) {
      case Field::InPort: {
        m.value_.in_port = r.u32();
        m.mask_.in_port = has_mask ? r.u32() : ~std::uint32_t{0};
        break;
      }
      case Field::EthSrc:
      case Field::EthDst: {
        std::uint64_t v = (std::uint64_t{r.u16()} << 32) | r.u32();
        std::uint64_t mk =
            has_mask ? (std::uint64_t{r.u16()} << 32) | r.u32() : 0xffffffffffffULL;
        if (field == Field::EthSrc) {
          m.value_.eth_src = v;
          m.mask_.eth_src = mk;
        } else {
          m.value_.eth_dst = v;
          m.mask_.eth_dst = mk;
        }
        break;
      }
      case Field::EthType: {
        m.value_.eth_type = r.u16();
        m.mask_.eth_type = has_mask ? r.u16() : 0xffff;
        break;
      }
      case Field::VlanVid: {
        m.value_.vlan_vid = r.u16();
        m.mask_.vlan_vid = has_mask ? r.u16() : 0xffff;
        break;
      }
      case Field::VlanPcp: {
        m.value_.vlan_pcp = r.u8();
        m.mask_.vlan_pcp = has_mask ? r.u8() : 0xff;
        break;
      }
      case Field::Ipv4Src: {
        m.value_.ipv4_src = r.u32();
        m.mask_.ipv4_src = has_mask ? r.u32() : ~std::uint32_t{0};
        break;
      }
      case Field::Ipv4Dst: {
        m.value_.ipv4_dst = r.u32();
        m.mask_.ipv4_dst = has_mask ? r.u32() : ~std::uint32_t{0};
        break;
      }
      case Field::IpProto: {
        m.value_.ip_proto = r.u8();
        m.mask_.ip_proto = has_mask ? r.u8() : 0xff;
        break;
      }
      case Field::IpDscp: {
        m.value_.ip_dscp = r.u8();
        m.mask_.ip_dscp = has_mask ? r.u8() : 0xff;
        break;
      }
      case Field::L4Src: {
        m.value_.l4_src = r.u16();
        m.mask_.l4_src = has_mask ? r.u16() : 0xffff;
        break;
      }
      case Field::L4Dst: {
        m.value_.l4_dst = r.u16();
        m.mask_.l4_dst = has_mask ? r.u16() : 0xffff;
        break;
      }
      case Field::ArpOp: {
        m.value_.arp_op = r.u16();
        m.mask_.arp_op = has_mask ? r.u16() : 0xffff;
        break;
      }
      case Field::Ipv6Src:
      case Field::Ipv6Dst: {
        const std::uint64_t v_hi = r.u64();
        const std::uint64_t v_lo = r.u64();
        const std::uint64_t m_hi = has_mask ? r.u64() : ~std::uint64_t{0};
        const std::uint64_t m_lo = has_mask ? r.u64() : ~std::uint64_t{0};
        if (field == Field::Ipv6Src) {
          m.value_.ipv6_src_hi = v_hi;
          m.value_.ipv6_src_lo = v_lo;
          m.mask_.ipv6_src_hi = m_hi;
          m.mask_.ipv6_src_lo = m_lo;
        } else {
          m.value_.ipv6_dst_hi = v_hi;
          m.value_.ipv6_dst_lo = v_lo;
          m.mask_.ipv6_dst_hi = m_hi;
          m.mask_.ipv6_dst_lo = m_lo;
        }
        break;
      }
      default:
        return util::make_error<Match>(
            util::format("unknown match field %u", static_cast<unsigned>(field)));
    }
    if (!r.ok()) return util::make_error<Match>("truncated match");
  }
  // Normalize: values must not exceed their masks.
  m.value_ = m.mask_.apply(m.value_);
  return m;
}

std::string Match::to_string() const {
  std::string out = "{";
  auto add = [&](const std::string& s) {
    if (out.size() > 1) out += ", ";
    out += s;
  };
  if (mask_.in_port) add(util::format("in_port=%u", value_.in_port));
  if (mask_.eth_src)
    add("eth_src=" + net::MacAddress::from_u64(value_.eth_src).to_string());
  if (mask_.eth_dst)
    add("eth_dst=" + net::MacAddress::from_u64(value_.eth_dst).to_string());
  if (mask_.eth_type) add(util::format("eth_type=0x%04x", value_.eth_type));
  if (mask_.vlan_vid) add(util::format("vlan=%u", value_.vlan_vid));
  if (mask_.ipv4_src)
    add(util::format("ipv4_src=%s/%d",
                     net::Ipv4Address(value_.ipv4_src).to_string().c_str(),
                     std::popcount(mask_.ipv4_src)));
  if (mask_.ipv4_dst)
    add(util::format("ipv4_dst=%s/%d",
                     net::Ipv4Address(value_.ipv4_dst).to_string().c_str(),
                     std::popcount(mask_.ipv4_dst)));
  if (mask_.ipv6_src_hi | mask_.ipv6_src_lo)
    add(util::format("ipv6_src=%016llx%016llx",
                     static_cast<unsigned long long>(value_.ipv6_src_hi),
                     static_cast<unsigned long long>(value_.ipv6_src_lo)));
  if (mask_.ipv6_dst_hi | mask_.ipv6_dst_lo)
    add(util::format("ipv6_dst=%016llx%016llx",
                     static_cast<unsigned long long>(value_.ipv6_dst_hi),
                     static_cast<unsigned long long>(value_.ipv6_dst_lo)));
  if (mask_.ip_proto) add(util::format("proto=%u", value_.ip_proto));
  if (mask_.ip_dscp) add(util::format("dscp=%u", value_.ip_dscp));
  if (mask_.l4_src) add(util::format("l4_src=%u", value_.l4_src));
  if (mask_.l4_dst) add(util::format("l4_dst=%u", value_.l4_dst));
  if (mask_.arp_op) add(util::format("arp_op=%u", value_.arp_op));
  out += "}";
  return out;
}

}  // namespace zen::openflow
