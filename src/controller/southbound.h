// Southbound: the one typed send/receive facade over a Channel side.
//
// Every controller- and agent-side message now flows through here — no
// caller outside this directory touches raw bytes. Sends stage encoded
// frames into the channel's per-direction arena; the flush policy is:
//
//  * batch mode off: every send flushes immediately (v1-identical framing,
//    one frame per delivery — the golden determinism mode).
//  * batch mode on, sending from inside a receive callback: frames stage
//    until the callback returns, then flush as one batch (request/reply
//    coalescing with no extra scheduler event).
//  * batch mode on, sending from an ordinary event: a zero-delay flush
//    event is scheduled once; every send from the same simulation instant
//    joins the batch (the EventQueue fires equal-time events FIFO, so the
//    flush runs after the instant's remaining dispatches have staged).
//
// On receive, the delivered batch is decoded frame-by-frame and handed to
// the receiver as one vector per delivery. A malformed frame stops that
// batch only (see BatchReader) and is reported to the bad-frame handler;
// earlier frames in the batch are still delivered.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "controller/channel.h"
#include "openflow/wire.h"
#include "sim/event_queue.h"

namespace zen::controller {

class Southbound {
 public:
  // Decoded frames of one delivered batch, in wire order.
  using BatchFn = std::function<void(std::vector<openflow::OwnedMessage>)>;

  // `self` is the side this endpoint occupies; sends go to the other side.
  Southbound(sim::EventQueue& events, Channel& channel, Channel::Side self,
             bool batch);

  void set_receiver(BatchFn fn) { rx_ = std::move(fn); }
  // Evaluated once per delivered batch before decoding; returning false
  // drops the whole batch (e.g. the receiving switch has crashed).
  void set_batch_gate(std::function<bool()> gate) { gate_ = std::move(gate); }
  void set_bad_frame_handler(std::function<void(const std::string&)> fn) {
    bad_frame_ = std::move(fn);
  }

  // Stages one message toward the peer and arranges a flush per the
  // policy above.
  void send(const openflow::Message& msg, openflow::Xid xid);
  // Flushes any staged frames now.
  void flush();

  bool batching() const noexcept { return batch_; }

 private:
  void on_raw(std::vector<std::uint8_t> bytes);

  sim::EventQueue& events_;
  Channel& channel_;
  Channel::Side peer_;
  bool batch_;
  bool in_rx_ = false;           // inside on_raw: defer flush to its end
  bool flush_scheduled_ = false; // a zero-delay flush event is pending
  BatchFn rx_;
  std::function<bool()> gate_;
  std::function<void(const std::string&)> bad_frame_;
};

}  // namespace zen::controller
