#include "controller/flow_rule_store.h"

#include <algorithm>

#include "obs/obs.h"
#include "util/logging.h"

namespace zen::controller {

namespace {

struct StoreMetrics {
  obs::Counter& repairs;
  obs::Counter& orphans;
  obs::Counter& audits;
  obs::Counter& table_full;
  obs::Counter& degraded;
  obs::Histo& audit_duration;
  static StoreMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static StoreMetrics m{
        reg.counter("zen_rulestore_repairs_total", "",
                    "Missing/divergent intended rules reinstalled by audits"),
        reg.counter("zen_rulestore_orphans_deleted_total", "",
                    "Managed-cookie stray rules deleted by audits"),
        reg.counter("zen_rulestore_audits_total", "",
                    "Flow-state audits started"),
        reg.counter("zen_rulestore_table_full_total", "",
                    "TableFull errors received for store-managed installs"),
        reg.counter("zen_rulestore_rules_degraded_total", "",
                    "Intended rules parked as degraded (evicted or rejected)"),
        reg.histo("zen_rulestore_audit_duration_s", "",
                  "Virtual time from audit start to verdict")};
    return m;
  }
};

bool same_key(const openflow::FlowMod& mod, const openflow::FlowStatsEntry& e) {
  return e.table_id == mod.table_id && e.priority == mod.priority &&
         e.match == mod.match;
}

// Fraction of audits that find nothing to repair: a dirty audit means the
// switch and the store disagreed, i.e. reconciliation had real work to do.
obs::Slo& audit_slo() {
  static obs::Slo& slo = obs::SloMonitor::global().objective(
      obs::SloMonitor::Objective{.name = "audit_clean_rate",
                                 .target = 0.95,
                                 .short_window_s = 10.0,
                                 .long_window_s = 120.0});
  return slo;
}

}  // namespace

FlowRuleStore::FlowRuleStore(Controller& controller, Options options)
    : controller_(controller), options_(options) {}

FlowRuleStore::IntendedRule* FlowRuleStore::find_rule(
    Dpid dpid, const openflow::FlowMod& mod) {
  const auto sit = switches_.find(dpid);
  if (sit == switches_.end()) return nullptr;
  for (auto& r : sit->second.rules) {
    if (r.mod.table_id == mod.table_id && r.mod.priority == mod.priority &&
        r.mod.match == mod.match)
      return &r;
  }
  return nullptr;
}

bool FlowRuleStore::evict_lowest_importance(Dpid dpid,
                                            const openflow::FlowMod& incoming) {
  auto& rules = switches_[dpid].rules;
  IntendedRule* victim = nullptr;
  for (auto& r : rules) {
    if (r.degraded) continue;
    if (r.mod.table_id != incoming.table_id) continue;
    if (r.mod.importance >= incoming.importance) continue;
    if (r.mod.priority == incoming.priority && r.mod.match == incoming.match)
      continue;  // never sacrifice the rule being installed
    if (!victim || r.mod.importance < victim->mod.importance) victim = &r;
  }
  if (!victim) return false;
  victim->degraded = true;
  ++stats_.rules_degraded;
  StoreMetrics::get().degraded.inc();
  ZEN_LOG(Info) << "rule store: dpid " << dpid
                << " sacrificing importance-" << victim->mod.importance
                << " rule to admit importance-" << incoming.importance;
  openflow::FlowMod del;
  del.command = openflow::FlowModCommand::DeleteStrict;
  del.table_id = victim->mod.table_id;
  del.priority = victim->mod.priority;
  del.match = victim->mod.match;
  controller_.flow_mod(dpid, del, [](const std::optional<openflow::Error>&) {});
  return true;
}

void FlowRuleStore::handle_table_full(Dpid dpid, const openflow::FlowMod& mod,
                                      CompletionFn done,
                                      const openflow::Error& err) {
  ++stats_.table_full_rejections;
  StoreMetrics::get().table_full.inc();
  obs::FlightRecorder::global().record(obs::FlightEventKind::kTableFull, dpid,
                                       mod.table_id, "rulestore");
  IntendedRule* rule = find_rule(dpid, mod);
  if (rule && rule->table_full_retries < kMaxTableFullRetries &&
      evict_lowest_importance(dpid, mod)) {
    ++rule->table_full_retries;
    auto& tracer = obs::SpanTracer::global();
    tracer.annotate(tracer.current(), "table_full_retry");
    send_install(dpid, mod, std::move(done));
    return;
  }
  // No room and nothing expendable: park the intent as degraded so repeated
  // audits/recompiles don't hammer a full table, and surface the typed
  // failure to the caller.
  if (rule && !rule->degraded) {
    rule->degraded = true;
    ++stats_.rules_degraded;
    StoreMetrics::get().degraded.inc();
    ZEN_LOG(Warn) << "rule store: dpid " << dpid << " table "
                  << int(mod.table_id) << " full; rule degraded (priority "
                  << mod.priority << ")";
  }
  if (done) done(err);
}

openflow::Xid FlowRuleStore::send_install(Dpid dpid,
                                          const openflow::FlowMod& mod,
                                          CompletionFn done) {
  // Capture the causal span so a TableFull repair ladder re-enters the
  // original trace: the eviction and the retried install show up as
  // sibling spans of the rejected attempt.
  const obs::SpanContext span = obs::SpanTracer::global().current();
  return controller_.flow_mod(
      dpid, mod,
      [this, dpid, mod, span, done = std::move(done)](
          const std::optional<openflow::Error>& err) {
        if (err && openflow::is_table_full(*err)) {
          obs::SpanTracer::Scope scope(span);
          handle_table_full(dpid, mod, done, *err);
          return;
        }
        if (done) done(err);
      });
}

void FlowRuleStore::handle_bundle_table_full(
    Dpid dpid, std::shared_ptr<const std::vector<openflow::FlowMod>> mods,
    CompletionFn done, const openflow::Error& err) {
  ++stats_.table_full_rejections;
  StoreMetrics::get().table_full.inc();
  obs::FlightRecorder::global().record(obs::FlightEventKind::kTableFull, dpid,
                                       mods->front().table_id, "rulestore");
  // The retry budget is tracked on the first member: the bundle retries and
  // degrades as a unit, so one representative counter is enough.
  IntendedRule* rep = find_rule(dpid, mods->front());
  if (rep && rep->table_full_retries < kMaxTableFullRetries) {
    // The switch rejected the whole bundle for want of (at worst) one slot
    // per member: sacrifice up to that many lower-importance rules, then
    // re-commit the whole bundle.
    std::size_t freed = 0;
    for (std::size_t i = 0; i < mods->size(); ++i) {
      if (!evict_lowest_importance(dpid, mods->front())) break;
      ++freed;
    }
    if (freed > 0) {
      for (const auto& mod : *mods) {
        if (IntendedRule* rule = find_rule(dpid, mod))
          ++rule->table_full_retries;
      }
      auto& tracer = obs::SpanTracer::global();
      tracer.annotate(tracer.current(), "table_full_retry");
      send_install_bundle(dpid, std::move(mods), std::move(done));
      return;
    }
  }
  // No room and nothing expendable: the path is only useful whole, so park
  // every member as degraded together.
  for (const auto& mod : *mods) {
    IntendedRule* rule = find_rule(dpid, mod);
    if (rule && !rule->degraded) {
      rule->degraded = true;
      ++stats_.rules_degraded;
      StoreMetrics::get().degraded.inc();
    }
  }
  ZEN_LOG(Warn) << "rule store: dpid " << dpid << " table "
                << int(mods->front().table_id) << " full; bundle of "
                << mods->size() << " rules degraded";
  if (done) done(err);
}

void FlowRuleStore::send_install_bundle(
    Dpid dpid, std::shared_ptr<const std::vector<openflow::FlowMod>> mods,
    CompletionFn done) {
  const obs::SpanContext span = obs::SpanTracer::global().current();
  std::vector<openflow::Message> members(mods->begin(), mods->end());
  controller_.commit_bundle(
      dpid, std::move(members),
      [this, dpid, mods = std::move(mods), span, done = std::move(done)](
          const std::optional<openflow::Error>& err) {
        if (err && openflow::is_table_full(*err)) {
          obs::SpanTracer::Scope scope(span);
          handle_bundle_table_full(dpid, mods, done, *err);
          return;
        }
        if (done) done(err);
      });
}

void FlowRuleStore::install_bundle(Dpid dpid,
                                   std::vector<openflow::FlowMod> mods,
                                   CompletionFn done) {
  if (mods.empty()) {
    if (done)
      controller_.events().schedule_in(
          0, [done = std::move(done)] { done(std::nullopt); });
    return;
  }
  if (mods.size() == 1) {
    install(dpid, mods.front(), std::move(done));
    return;
  }
  stats_.installs += mods.size();
  for (auto& mod : mods) {
    if (mod.cookie != 0) managed_cookies_.insert(mod.cookie);
    mod.command = openflow::FlowModCommand::Add;
    mod.buffer_id = openflow::kNoBuffer;  // reinstalls can't cite buffers
    if (IntendedRule* existing = find_rule(dpid, mod)) {
      existing->mod = mod;
      existing->degraded = false;
      existing->table_full_retries = 0;
    } else {
      switches_[dpid].rules.push_back(IntendedRule{mod});
    }
  }
  send_install_bundle(
      dpid,
      std::make_shared<const std::vector<openflow::FlowMod>>(std::move(mods)),
      std::move(done));
}

openflow::Xid FlowRuleStore::install(Dpid dpid, const openflow::FlowMod& mod,
                                     CompletionFn done) {
  ++stats_.installs;
  if (mod.cookie != 0) managed_cookies_.insert(mod.cookie);

  openflow::FlowMod intended = mod;
  intended.command = openflow::FlowModCommand::Add;
  intended.buffer_id = openflow::kNoBuffer;  // reinstalls can't cite buffers
  if (IntendedRule* existing = find_rule(dpid, intended)) {
    // A fresh install statement resets any degraded parking: the caller
    // explicitly wants this rule again.
    existing->mod = std::move(intended);
    existing->degraded = false;
    existing->table_full_retries = 0;
  } else {
    switches_[dpid].rules.push_back(IntendedRule{std::move(intended)});
  }

  return send_install(dpid, mod, std::move(done));
}

openflow::Xid FlowRuleStore::remove(Dpid dpid, const openflow::FlowMod& del,
                                    CompletionFn done) {
  ++stats_.removes;
  const bool strict = del.command == openflow::FlowModCommand::DeleteStrict;
  auto& rules = switches_[dpid].rules;
  std::erase_if(rules, [&](const IntendedRule& r) {
    if (r.mod.table_id != del.table_id) return false;
    if (strict) return r.mod.priority == del.priority && r.mod.match == del.match;
    return r.mod.match.subsumed_by(del.match);
  });
  return controller_.flow_mod(dpid, del, std::move(done));
}

void FlowRuleStore::on_flow_removed(Dpid dpid,
                                    const openflow::FlowRemoved& msg) {
  if (msg.reason != openflow::FlowRemovedReason::Eviction) return;
  const auto sit = switches_.find(dpid);
  if (sit == switches_.end()) return;
  for (auto& r : sit->second.rules) {
    if (r.mod.table_id != msg.table_id || r.mod.priority != msg.priority ||
        !(r.mod.match == msg.match))
      continue;
    if (!r.degraded) {
      r.degraded = true;
      ++stats_.rules_degraded;
      StoreMetrics::get().degraded.inc();
      ZEN_LOG(Warn) << "rule store: dpid " << dpid
                    << " managed rule evicted by switch; parked as degraded";
    }
    return;
  }
}

std::size_t FlowRuleStore::clear_degraded(Dpid dpid) {
  const auto sit = switches_.find(dpid);
  if (sit == switches_.end()) return 0;
  std::size_t cleared = 0;
  for (auto& r : sit->second.rules) {
    if (!r.degraded) continue;
    r.degraded = false;
    r.table_full_retries = 0;
    ++cleared;
  }
  return cleared;
}

std::size_t FlowRuleStore::degraded_rules(Dpid dpid) const noexcept {
  const auto sit = switches_.find(dpid);
  if (sit == switches_.end()) return 0;
  std::size_t n = 0;
  for (const auto& r : sit->second.rules) n += r.degraded ? 1 : 0;
  return n;
}

openflow::Xid FlowRuleStore::add_group(Dpid dpid,
                                       const openflow::GroupMod& mod,
                                       CompletionFn done) {
  openflow::GroupMod intended = mod;
  intended.command = openflow::GroupModCommand::Add;
  auto& groups = switches_[dpid].groups;
  const auto it = std::find_if(
      groups.begin(), groups.end(),
      [&](const openflow::GroupMod& g) { return g.group_id == mod.group_id; });
  if (it == groups.end()) groups.push_back(std::move(intended));
  else *it = std::move(intended);
  return controller_.group_mod(dpid, mod, std::move(done));
}

openflow::Xid FlowRuleStore::remove_group(Dpid dpid, std::uint32_t group_id,
                                          CompletionFn done) {
  auto& groups = switches_[dpid].groups;
  std::erase_if(groups, [&](const openflow::GroupMod& g) {
    return g.group_id == group_id;
  });
  openflow::GroupMod del;
  del.command = openflow::GroupModCommand::Delete;
  del.group_id = group_id;
  return controller_.group_mod(dpid, del, std::move(done));
}

void FlowRuleStore::forget(Dpid dpid) { switches_.erase(dpid); }

std::size_t FlowRuleStore::intended_rules(Dpid dpid) const noexcept {
  const auto it = switches_.find(dpid);
  return it == switches_.end() ? 0 : it->second.rules.size();
}

std::size_t FlowRuleStore::intended_groups(Dpid dpid) const noexcept {
  const auto it = switches_.find(dpid);
  return it == switches_.end() ? 0 : it->second.groups.size();
}

void FlowRuleStore::audit(Dpid dpid, AuditFn done) {
  auto [it, inserted] = audits_.try_emplace(dpid);
  if (done) it->second.done.push_back(std::move(done));
  if (!inserted) return;  // already running; callback piggybacks
  ++stats_.audits;
  StoreMetrics::get().audits.inc();
  it->second.report.dpid = dpid;
  it->second.started_s = controller_.now();
  run_round(dpid);
}

void FlowRuleStore::audit_all(
    std::function<void(std::vector<AuditReport>)> done) {
  std::vector<Dpid> dpids;
  for (const auto& [dpid, state] : switches_) dpids.push_back(dpid);
  std::sort(dpids.begin(), dpids.end());
  if (dpids.empty()) {
    if (done) done({});
    return;
  }
  auto reports = std::make_shared<std::vector<AuditReport>>();
  auto remaining = std::make_shared<std::size_t>(dpids.size());
  auto cb = std::make_shared<std::function<void(std::vector<AuditReport>)>>(
      std::move(done));
  for (const Dpid dpid : dpids) {
    audit(dpid, [reports, remaining, cb](const AuditReport& report) {
      reports->push_back(report);
      if (--*remaining == 0 && *cb) (*cb)(std::move(*reports));
    });
  }
}

void FlowRuleStore::run_round(Dpid dpid) {
  const auto it = audits_.find(dpid);
  if (it == audits_.end()) return;
  Audit& a = it->second;
  if (!controller_.switch_alive(dpid) ||
      a.report.rounds >= options_.max_rounds) {
    finish(dpid, false);
    return;
  }
  ++a.report.rounds;
  const int serial = ++a.round_serial;

  // Re-assert intended groups up front: flow repairs may reference them,
  // and a crash wiped them along with the rules. Re-adding a group that
  // still exists errors harmlessly.
  for (const auto& gm : switches_[dpid].groups) controller_.group_mod(dpid, gm);

  // Default request: every table, wildcard match — the full actual state.
  controller_.request_flow_stats(
      dpid, openflow::FlowStatsRequest{},
      [this, dpid, serial](const openflow::FlowStatsReply* reply) {
        // A null reply means the switch died mid-request; the next
        // round's alive check (after the round timeout) settles the audit.
        if (!reply) return;
        const auto it = audits_.find(dpid);
        if (it == audits_.end() || it->second.round_serial != serial) return;
        reconcile(dpid, *reply);
      });
  // The stats exchange itself can be lost on a faulty channel: retry the
  // round if no reply claimed this serial in time.
  controller_.events().schedule_in(options_.round_timeout_s,
                                   [this, dpid, serial] {
                                     const auto it = audits_.find(dpid);
                                     if (it == audits_.end() ||
                                         it->second.round_serial != serial)
                                       return;
                                     run_round(dpid);
                                   });
}

void FlowRuleStore::reconcile(Dpid dpid,
                              const openflow::FlowStatsReply& reply) {
  Audit& a = audits_.at(dpid);
  ++a.round_serial;  // cancel this round's retry timer
  const auto& intended = switches_[dpid].rules;

  // Missing or divergent: an intended rule with no actual twin (same key,
  // same cookie, same instructions). Reinstall — Add overwrites in place.
  // Degraded rules are skipped: reinstalling what the switch just evicted
  // (or rejected TableFull) would recreate the very pressure that parked
  // them; clear_degraded() is the explicit path back.
  std::size_t missing = 0;
  for (const auto& rule : intended) {
    if (rule.degraded) continue;
    const auto& mod = rule.mod;
    const bool present = std::any_of(
        reply.entries.begin(), reply.entries.end(),
        [&](const openflow::FlowStatsEntry& e) {
          return same_key(mod, e) && e.cookie == mod.cookie &&
                 e.instructions == mod.instructions;
        });
    if (present) continue;
    ++missing;
    ++stats_.repairs_installed;
    StoreMetrics::get().repairs.inc();
    send_install(dpid, mod, [](const std::optional<openflow::Error>&) {});
  }

  // Orphans: actual rules carrying a cookie this store manages but whose
  // key is no longer intended here. Cookie-0 rules belong to apps outside
  // the store and are never touched. A degraded rule still counts as
  // wanted — if the switch somehow holds it, deleting it would only flap.
  std::size_t orphans = 0;
  for (const auto& e : reply.entries) {
    if (e.cookie == 0 || !managed_cookies_.contains(e.cookie)) continue;
    const bool wanted = std::any_of(
        intended.begin(), intended.end(),
        [&](const IntendedRule& rule) { return same_key(rule.mod, e); });
    if (wanted) continue;
    ++orphans;
    ++stats_.orphans_deleted;
    StoreMetrics::get().orphans.inc();
    openflow::FlowMod del;
    del.command = openflow::FlowModCommand::DeleteStrict;
    del.table_id = e.table_id;
    del.priority = e.priority;
    del.match = e.match;
    controller_.flow_mod(dpid, del,
                         [](const std::optional<openflow::Error>&) {});
  }

  a.report.repaired += missing;
  a.report.orphans += orphans;
  if (missing == 0 && orphans == 0) {
    finish(dpid, true);
    return;
  }
  ZEN_LOG(Info) << "rule store: dpid " << dpid << " round "
                << a.report.rounds << ": reinstalled " << missing
                << ", deleted " << orphans << " orphans";
  // Let the (tracked, retried) repairs land, then re-read.
  controller_.events().schedule_in(
      options_.settle_s, [this, dpid, serial = a.round_serial] {
        const auto it = audits_.find(dpid);
        if (it == audits_.end() || it->second.round_serial != serial) return;
        run_round(dpid);
      });
}

void FlowRuleStore::finish(Dpid dpid, bool converged) {
  auto node = audits_.extract(dpid);
  if (node.empty()) return;
  Audit& a = node.mapped();
  a.report.degraded = degraded_rules(dpid);
  a.report.converged = converged;
  a.report.duration_s = controller_.now() - a.started_s;
  if (converged) ++stats_.audits_converged;
  StoreMetrics::get().audit_duration.record(a.report.duration_s);
  const bool clean =
      converged && a.report.repaired == 0 && a.report.orphans == 0;
  audit_slo().record(clean);
  if (!clean) {
    obs::FlightRecorder::global().record(
        obs::FlightEventKind::kAuditMismatch, dpid,
        (std::uint64_t(std::min<std::size_t>(a.report.repaired, 0xffff))
         << 16) |
            std::min<std::size_t>(a.report.orphans, 0xffff),
        converged ? "converged" : "gave_up");
  }
  ZEN_LOG(Info) << "rule store: dpid " << dpid << " audit "
                << (converged ? "converged" : "gave up") << " after "
                << a.report.rounds << " round(s), repaired "
                << a.report.repaired << ", orphans " << a.report.orphans;
  for (auto& fn : a.done)
    if (fn) fn(a.report);
}

}  // namespace zen::controller
