#include "controller/flow_rule_store.h"

#include <algorithm>

#include "obs/obs.h"
#include "util/logging.h"

namespace zen::controller {

namespace {

struct StoreMetrics {
  obs::Counter& repairs;
  obs::Counter& orphans;
  obs::Counter& audits;
  obs::Histo& audit_duration;
  static StoreMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static StoreMetrics m{
        reg.counter("zen_rulestore_repairs_total", "",
                    "Missing/divergent intended rules reinstalled by audits"),
        reg.counter("zen_rulestore_orphans_deleted_total", "",
                    "Managed-cookie stray rules deleted by audits"),
        reg.counter("zen_rulestore_audits_total", "",
                    "Flow-state audits started"),
        reg.histo("zen_rulestore_audit_duration_s", "",
                  "Virtual time from audit start to verdict")};
    return m;
  }
};

bool same_key(const openflow::FlowMod& mod, const openflow::FlowStatsEntry& e) {
  return e.table_id == mod.table_id && e.priority == mod.priority &&
         e.match == mod.match;
}

}  // namespace

FlowRuleStore::FlowRuleStore(Controller& controller, Options options)
    : controller_(controller), options_(options) {}

openflow::Xid FlowRuleStore::install(Dpid dpid, const openflow::FlowMod& mod,
                                     CompletionFn done) {
  ++stats_.installs;
  if (mod.cookie != 0) managed_cookies_.insert(mod.cookie);

  openflow::FlowMod intended = mod;
  intended.command = openflow::FlowModCommand::Add;
  intended.buffer_id = openflow::kNoBuffer;  // reinstalls can't cite buffers
  auto& rules = switches_[dpid].rules;
  const auto it = std::find_if(
      rules.begin(), rules.end(), [&](const openflow::FlowMod& r) {
        return r.table_id == intended.table_id &&
               r.priority == intended.priority && r.match == intended.match;
      });
  if (it == rules.end()) rules.push_back(std::move(intended));
  else *it = std::move(intended);

  return controller_.flow_mod(dpid, mod, std::move(done));
}

openflow::Xid FlowRuleStore::remove(Dpid dpid, const openflow::FlowMod& del,
                                    CompletionFn done) {
  ++stats_.removes;
  const bool strict = del.command == openflow::FlowModCommand::DeleteStrict;
  auto& rules = switches_[dpid].rules;
  std::erase_if(rules, [&](const openflow::FlowMod& r) {
    if (r.table_id != del.table_id) return false;
    if (strict) return r.priority == del.priority && r.match == del.match;
    return r.match.subsumed_by(del.match);
  });
  return controller_.flow_mod(dpid, del, std::move(done));
}

openflow::Xid FlowRuleStore::add_group(Dpid dpid,
                                       const openflow::GroupMod& mod,
                                       CompletionFn done) {
  openflow::GroupMod intended = mod;
  intended.command = openflow::GroupModCommand::Add;
  auto& groups = switches_[dpid].groups;
  const auto it = std::find_if(
      groups.begin(), groups.end(),
      [&](const openflow::GroupMod& g) { return g.group_id == mod.group_id; });
  if (it == groups.end()) groups.push_back(std::move(intended));
  else *it = std::move(intended);
  return controller_.group_mod(dpid, mod, std::move(done));
}

openflow::Xid FlowRuleStore::remove_group(Dpid dpid, std::uint32_t group_id,
                                          CompletionFn done) {
  auto& groups = switches_[dpid].groups;
  std::erase_if(groups, [&](const openflow::GroupMod& g) {
    return g.group_id == group_id;
  });
  openflow::GroupMod del;
  del.command = openflow::GroupModCommand::Delete;
  del.group_id = group_id;
  return controller_.group_mod(dpid, del, std::move(done));
}

void FlowRuleStore::forget(Dpid dpid) { switches_.erase(dpid); }

std::size_t FlowRuleStore::intended_rules(Dpid dpid) const noexcept {
  const auto it = switches_.find(dpid);
  return it == switches_.end() ? 0 : it->second.rules.size();
}

std::size_t FlowRuleStore::intended_groups(Dpid dpid) const noexcept {
  const auto it = switches_.find(dpid);
  return it == switches_.end() ? 0 : it->second.groups.size();
}

void FlowRuleStore::audit(Dpid dpid, AuditFn done) {
  auto [it, inserted] = audits_.try_emplace(dpid);
  if (done) it->second.done.push_back(std::move(done));
  if (!inserted) return;  // already running; callback piggybacks
  ++stats_.audits;
  StoreMetrics::get().audits.inc();
  it->second.report.dpid = dpid;
  it->second.started_s = controller_.now();
  run_round(dpid);
}

void FlowRuleStore::audit_all(
    std::function<void(std::vector<AuditReport>)> done) {
  std::vector<Dpid> dpids;
  for (const auto& [dpid, state] : switches_) dpids.push_back(dpid);
  std::sort(dpids.begin(), dpids.end());
  if (dpids.empty()) {
    if (done) done({});
    return;
  }
  auto reports = std::make_shared<std::vector<AuditReport>>();
  auto remaining = std::make_shared<std::size_t>(dpids.size());
  auto cb = std::make_shared<std::function<void(std::vector<AuditReport>)>>(
      std::move(done));
  for (const Dpid dpid : dpids) {
    audit(dpid, [reports, remaining, cb](const AuditReport& report) {
      reports->push_back(report);
      if (--*remaining == 0 && *cb) (*cb)(std::move(*reports));
    });
  }
}

void FlowRuleStore::run_round(Dpid dpid) {
  const auto it = audits_.find(dpid);
  if (it == audits_.end()) return;
  Audit& a = it->second;
  if (!controller_.switch_alive(dpid) ||
      a.report.rounds >= options_.max_rounds) {
    finish(dpid, false);
    return;
  }
  ++a.report.rounds;
  const int serial = ++a.round_serial;

  // Re-assert intended groups up front: flow repairs may reference them,
  // and a crash wiped them along with the rules. Re-adding a group that
  // still exists errors harmlessly.
  for (const auto& gm : switches_[dpid].groups) controller_.group_mod(dpid, gm);

  // Default request: every table, wildcard match — the full actual state.
  controller_.request_flow_stats(
      dpid, openflow::FlowStatsRequest{},
      [this, dpid, serial](const openflow::FlowStatsReply* reply) {
        // A null reply means the switch died mid-request; the next
        // round's alive check (after the round timeout) settles the audit.
        if (!reply) return;
        const auto it = audits_.find(dpid);
        if (it == audits_.end() || it->second.round_serial != serial) return;
        reconcile(dpid, *reply);
      });
  // The stats exchange itself can be lost on a faulty channel: retry the
  // round if no reply claimed this serial in time.
  controller_.events().schedule_in(options_.round_timeout_s,
                                   [this, dpid, serial] {
                                     const auto it = audits_.find(dpid);
                                     if (it == audits_.end() ||
                                         it->second.round_serial != serial)
                                       return;
                                     run_round(dpid);
                                   });
}

void FlowRuleStore::reconcile(Dpid dpid,
                              const openflow::FlowStatsReply& reply) {
  Audit& a = audits_.at(dpid);
  ++a.round_serial;  // cancel this round's retry timer
  const auto& intended = switches_[dpid].rules;

  // Missing or divergent: an intended rule with no actual twin (same key,
  // same cookie, same instructions). Reinstall — Add overwrites in place.
  std::size_t missing = 0;
  for (const auto& mod : intended) {
    const bool present = std::any_of(
        reply.entries.begin(), reply.entries.end(),
        [&](const openflow::FlowStatsEntry& e) {
          return same_key(mod, e) && e.cookie == mod.cookie &&
                 e.instructions == mod.instructions;
        });
    if (present) continue;
    ++missing;
    ++stats_.repairs_installed;
    StoreMetrics::get().repairs.inc();
    controller_.flow_mod(dpid, mod,
                         [](const std::optional<openflow::Error>&) {});
  }

  // Orphans: actual rules carrying a cookie this store manages but whose
  // key is no longer intended here. Cookie-0 rules belong to apps outside
  // the store and are never touched.
  std::size_t orphans = 0;
  for (const auto& e : reply.entries) {
    if (e.cookie == 0 || !managed_cookies_.contains(e.cookie)) continue;
    const bool wanted =
        std::any_of(intended.begin(), intended.end(),
                    [&](const openflow::FlowMod& mod) { return same_key(mod, e); });
    if (wanted) continue;
    ++orphans;
    ++stats_.orphans_deleted;
    StoreMetrics::get().orphans.inc();
    openflow::FlowMod del;
    del.command = openflow::FlowModCommand::DeleteStrict;
    del.table_id = e.table_id;
    del.priority = e.priority;
    del.match = e.match;
    controller_.flow_mod(dpid, del,
                         [](const std::optional<openflow::Error>&) {});
  }

  a.report.repaired += missing;
  a.report.orphans += orphans;
  if (missing == 0 && orphans == 0) {
    finish(dpid, true);
    return;
  }
  ZEN_LOG(Info) << "rule store: dpid " << dpid << " round "
                << a.report.rounds << ": reinstalled " << missing
                << ", deleted " << orphans << " orphans";
  // Let the (tracked, retried) repairs land, then re-read.
  controller_.events().schedule_in(
      options_.settle_s, [this, dpid, serial = a.round_serial] {
        const auto it = audits_.find(dpid);
        if (it == audits_.end() || it->second.round_serial != serial) return;
        run_round(dpid);
      });
}

void FlowRuleStore::finish(Dpid dpid, bool converged) {
  auto node = audits_.extract(dpid);
  if (node.empty()) return;
  Audit& a = node.mapped();
  a.report.converged = converged;
  a.report.duration_s = controller_.now() - a.started_s;
  if (converged) ++stats_.audits_converged;
  StoreMetrics::get().audit_duration.record(a.report.duration_s);
  ZEN_LOG(Info) << "rule store: dpid " << dpid << " audit "
                << (converged ? "converged" : "gave up") << " after "
                << a.report.rounds << " round(s), repaired "
                << a.report.repaired << ", orphans " << a.report.orphans;
  for (auto& fn : a.done)
    if (fn) fn(a.report);
}

}  // namespace zen::controller
