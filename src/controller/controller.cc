#include "controller/controller.h"

#include <algorithm>
#include <cstdio>

#include "controller/flow_rule_store.h"
#include "obs/obs.h"
#include "openflow/bundle.h"
#include "util/logging.h"

namespace zen::controller {

namespace {

struct CtrlMetrics {
  obs::Counter& packet_ins;
  obs::Counter& flow_mods;
  obs::Counter& packet_outs;
  obs::Counter& errors;
  obs::Counter& retransmits;
  obs::Counter& switch_downs;
  static CtrlMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static CtrlMetrics m{
        reg.counter("zen_controller_packet_ins_total", "",
                    "PacketIns dispatched to the app chain"),
        reg.counter("zen_controller_flow_mods_total", "",
                    "FlowMods sent southbound"),
        reg.counter("zen_controller_packet_outs_total", "",
                    "PacketOuts sent southbound"),
        reg.counter("zen_controller_errors_total", "",
                    "Error messages received from switches"),
        reg.counter("zen_controller_retransmits_total", "",
                    "Tracked southbound sends re-sent after a timeout"),
        reg.counter("zen_controller_switch_down_total", "",
                    "Switches declared down by heartbeat liveness")};
    return m;
  }
};

openflow::Error synthetic_error(std::uint16_t code) {
  openflow::Error err;
  err.type = openflow::ErrorType::BadRequest;
  err.code = code;
  return err;
}

using SpanKey = obs::SpanTracer::Key;

// Child span for a southbound send, parented on the dispatch-scoped
// current span (invalid — and free — outside a traced dispatch).
obs::SpanContext begin_southbound_span(const char* name) {
  auto& tracer = obs::SpanTracer::global();
  return tracer.start_span(name, "trace", tracer.current());
}
// Process-wide connection-id source: every Controller instance gets a
// distinct id so switches can arbitrate roles between them.
std::uint64_t next_conn_id() {
  static std::uint64_t next = 1;
  return next++;
}
}  // namespace

Controller::Controller(sim::SimNetwork& net, Options options)
    : net_(net),
      options_(options),
      conn_id_(next_conn_id()),
      rule_store_(std::make_unique<FlowRuleStore>(*this)) {
  net_.add_datapath_event_handler(
      [this](topo::NodeId sw, openflow::Message msg) {
        const auto it = sessions_.find(sw);
        if (it == sessions_.end()) return;
        it->second.agent->on_datapath_event(std::move(msg));
      });
}

Controller::~Controller() = default;

void Controller::connect_all() {
  std::vector<Dpid> dpids;
  dpids.reserve(net_.switches().size());
  for (const auto& [dpid, sw] : net_.switches()) dpids.push_back(dpid);
  std::sort(dpids.begin(), dpids.end());
  connect(dpids);
}

void Controller::connect(const std::vector<Dpid>& dpids) {
  if (halted_) return;
  for (const Dpid dpid : dpids) {
    if (sessions_.contains(dpid)) continue;
    if (!net_.switches().contains(dpid)) continue;
    Session session;
    session.channel =
        std::make_unique<Channel>(net_.events(), options_.channel_latency_s);
    session.southbound = std::make_unique<Southbound>(
        net_.events(), *session.channel, Channel::Side::A,
        options_.batch_southbound);
    session.agent = std::make_unique<SwitchAgent>(
        net_, dpid, *session.channel, conn_id_, options_.batch_southbound);
    session.backoff_s = options_.reconnect_backoff_initial_s;
    const Dpid id = dpid;
    session.southbound->set_receiver(
        [this, id](std::vector<openflow::OwnedMessage> batch) {
          on_batch(id, std::move(batch));
        });
    session.southbound->set_bad_frame_handler([id](const std::string& err) {
      ZEN_LOG(Warn) << "controller: bad frame from dpid " << id << ": "
                    << err;
    });
    sessions_.emplace(dpid, std::move(session));
    start_handshake(dpid);
  }
}

void Controller::halt() {
  if (halted_) return;
  halted_ = true;
  for (auto& [dpid, session] : sessions_) {
    // Retire every timer from this life (echo, completion, reconnect).
    // The channel is deliberately left connected: in-flight frames — e.g.
    // jitter-delayed writes from this now-dead controller — must still
    // reach the agents so generation-id fencing can reject them.
    ++session.epoch;
  }
  ZEN_LOG(Warn) << "controller " << conn_id_ << ": halted";
}

void Controller::start_handshake(Dpid dpid) {
  if (halted_) return;
  auto& session = sessions_.at(dpid);
  if (session.alive) return;
  // Hello then FeaturesRequest; the reply timer below makes the exchange
  // survive a lost FeaturesReply (or a switch that is still rebooting).
  send(dpid, openflow::Message{openflow::Hello{}}, next_xid(dpid));
  send(dpid, openflow::Message{openflow::FeaturesRequest{}}, next_xid(dpid));
  const std::uint64_t epoch = session.epoch;
  events().schedule_in(options_.handshake_timeout_s, [this, dpid, epoch] {
    const auto it = sessions_.find(dpid);
    if (it == sessions_.end()) return;
    auto& s = it->second;
    if (s.epoch != epoch || s.alive) return;
    s.backoff_s =
        std::min(s.backoff_s * 2, options_.reconnect_backoff_max_s);
    events().schedule_in(s.backoff_s, [this, dpid, epoch] {
      const auto it = sessions_.find(dpid);
      if (it == sessions_.end()) return;
      if (it->second.epoch != epoch || it->second.alive) return;
      start_handshake(dpid);
    });
  });
}

void Controller::schedule_echo(Dpid dpid, std::uint64_t epoch) {
  if (options_.echo_interval_s <= 0) return;
  events().schedule_in(options_.echo_interval_s, [this, dpid, epoch] {
    const auto it = sessions_.find(dpid);
    if (it == sessions_.end()) return;
    auto& s = it->second;
    if (s.epoch != epoch || !s.alive) return;
    if (s.echo_outstanding &&
        ++s.echo_misses >= options_.echo_miss_limit) {
      declare_switch_down(dpid);
      return;
    }
    // (Re-)probe every interval — a single lost echo must not count
    // toward the miss limit forever; any reply clears the slate.
    s.echo_outstanding = true;
    send(dpid, openflow::Message{openflow::EchoRequest{}}, next_xid(dpid));
    schedule_echo(dpid, epoch);
  });
}

void Controller::declare_switch_down(Dpid dpid) {
  auto& session = sessions_.at(dpid);
  if (!session.alive) return;
  session.alive = false;
  session.features_known = false;
  ++session.epoch;  // kill echo + completion timers from the old life
  session.echo_misses = 0;
  session.echo_outstanding = false;
  ++stats_.switch_down_events;
  CtrlMetrics::get().switch_downs.inc();
  ZEN_LOG(Warn) << "controller: switch " << dpid
                << " declared down (heartbeat)";
  ZEN_TRACE_INSTANT("switch_down", "controller");

  // Fail every in-flight transaction and request: each callback fires
  // exactly once, with the down-error / null-reply path, in xid order.
  const auto fail_all = [](auto& pending_map, auto&& fail) {
    auto pending = std::move(pending_map);
    pending_map.clear();
    std::vector<openflow::Xid> xids;
    for (const auto& [xid, fn] : pending) xids.push_back(xid);
    std::sort(xids.begin(), xids.end());
    for (const openflow::Xid xid : xids) fail(xid, pending.at(xid));
  };
  std::uint64_t completions_lost = 0;
  fail_all(session.pending_completions,
           [&](openflow::Xid xid, PendingCompletion& pc) {
             ++stats_.completions_failed;
             ++completions_lost;
             if (pc.done)
               pc.done(synthetic_error(completion_code::kSwitchDown));
             close_completion_span(dpid, xid, pc.span, "switch_down");
           });
  fail_all(session.pending_barriers, [](openflow::Xid, BarrierFn& fn) {
    if (fn) fn(false);
  });
  fail_all(session.pending_flow_stats, [](openflow::Xid, FlowStatsFn& fn) {
    if (fn) fn(nullptr);
  });
  fail_all(session.pending_port_stats, [](openflow::Xid, PortStatsFn& fn) {
    if (fn) fn(nullptr);
  });
  fail_all(session.pending_roles, [](openflow::Xid, RoleFn& fn) {
    if (fn) fn(nullptr);
  });
  obs::FlightRecorder::global().record(obs::FlightEventKind::kSwitchDown,
                                       dpid, completions_lost);

  const bool was_in_view = view_.has_switch(dpid);
  view_.remove_switch(dpid);
  if (was_in_view)
    for (const auto& app : apps_) app->on_switch_down(dpid);

  // Reconnect loop: bounded exponential backoff between handshakes.
  session.backoff_s = options_.reconnect_backoff_initial_s;
  const std::uint64_t epoch = session.epoch;
  events().schedule_in(session.backoff_s, [this, dpid, epoch] {
    const auto it = sessions_.find(dpid);
    if (it == sessions_.end()) return;
    if (it->second.epoch != epoch || it->second.alive) return;
    start_handshake(dpid);
  });
}

bool Controller::switch_alive(Dpid dpid) const noexcept {
  const auto it = sessions_.find(dpid);
  return it != sessions_.end() && it->second.alive;
}

const SwitchAgent* Controller::agent(Dpid dpid) const noexcept {
  const auto it = sessions_.find(dpid);
  return it == sessions_.end() ? nullptr : it->second.agent.get();
}

void Controller::set_channel_faults(const ChannelFaults& faults) {
  for (auto& [dpid, session] : sessions_) {
    ChannelFaults mine = faults;
    mine.seed = faults.seed + dpid;  // decorrelate per-channel streams
    session.channel->set_faults(mine);
  }
}

void Controller::clear_channel_faults() {
  for (auto& [dpid, session] : sessions_) session.channel->clear_faults();
}

openflow::Xid Controller::next_xid(Dpid dpid) {
  auto& session = sessions_.at(dpid);
  // 32-bit xids don't wrap in any realistic run, but guard reuse anyway:
  // a collision with a still-pending callback key would silently orphan
  // that callback. The pending maps are minuscule next to the xid space,
  // so this loop all but never iterates twice.
  openflow::Xid xid;
  do {
    if (session.next_xid == 0) session.next_xid = 1;
    xid = session.next_xid++;
  } while (session.pending_completions.contains(xid) ||
           session.pending_barriers.contains(xid) ||
           session.pending_flow_stats.contains(xid) ||
           session.pending_port_stats.contains(xid) ||
           session.pending_roles.contains(xid));
  return xid;
}

void Controller::send(Dpid dpid, const openflow::Message& msg,
                      openflow::Xid xid) {
  if (halted_) return;
  sessions_.at(dpid).southbound->send(msg, xid);
}

void Controller::request_chasing_barrier(Dpid dpid) {
  auto& session = sessions_.at(dpid);
  if (!options_.batch_southbound) {
    send(dpid, openflow::Message{openflow::BarrierRequest{}}, next_xid(dpid));
    return;
  }
  if (session.barrier_scheduled) return;
  session.barrier_scheduled = true;
  // Zero-delay event: fires after the instant's remaining synchronous
  // sends have staged, so one barrier trails every tracked send of the
  // instant — usually inside the same flushed batch.
  events().schedule_in(0, [this, dpid] {
    const auto it = sessions_.find(dpid);
    if (it == sessions_.end()) return;
    it->second.barrier_scheduled = false;
    send(dpid, openflow::Message{openflow::BarrierRequest{}}, next_xid(dpid));
  });
}

void Controller::register_app_metrics(const App& app) {
  app_pin_counters_.push_back(&obs::MetricsRegistry::global().counter(
      "zen_controller_app_packet_ins_total", "app=\"" + app.name() + "\"",
      "PacketIns seen by each app"));
}

openflow::Xid Controller::send_tracked(Dpid dpid, openflow::Message msg,
                                       CompletionFn done,
                                       obs::SpanContext span) {
  auto& session = sessions_.at(dpid);
  if (session.ever_up && !session.alive) {
    // Fail fast, but asynchronously: callers expect the callback strictly
    // after the send call returns.
    ++stats_.completions_failed;
    if (span.valid()) {
      auto& tracer = obs::SpanTracer::global();
      tracer.annotate(span, "switch_down");
      const obs::SpanContext parent = tracer.end_span(span);
      if (tracer.open_span_count(parent) == 1) tracer.end_trace(parent);
    }
    events().schedule_in(0, [done = std::move(done)] {
      if (done) done(synthetic_error(completion_code::kSwitchDown));
    });
    return 0;
  }
  const openflow::Xid xid = next_xid(dpid);
  if (span.valid()) {
    // The agent marks the apply boundary through this binding (ends the
    // mod span, opens barrier_ack).
    obs::SpanTracer::global().bind(
        obs::SpanTracer::key(SpanKey::kModTracked, conn_id_, dpid, xid),
        span);
  }
  session.pending_completions.emplace(
      xid, PendingCompletion{msg, std::move(done), 1, span});
  // Chase with a barrier; its per-xid ack set resolves this and any
  // earlier still-pending sends the agent actually processed. Batched
  // mode arranges the barrier first so its zero-delay event precedes the
  // flush event and the barrier rides the same batch as the mod.
  if (options_.batch_southbound) request_chasing_barrier(dpid);
  send(dpid, msg, xid);
  if (!options_.batch_southbound) request_chasing_barrier(dpid);
  arm_completion_timeout(dpid, xid, session.epoch);
  return xid;
}

void Controller::arm_completion_timeout(Dpid dpid, openflow::Xid xid,
                                        std::uint64_t epoch) {
  events().schedule_in(
      options_.completion_timeout_s, [this, dpid, xid, epoch] {
        const auto sit = sessions_.find(dpid);
        if (sit == sessions_.end()) return;
        auto& session = sit->second;
        if (session.epoch != epoch) return;  // failed when session died
        const auto it = session.pending_completions.find(xid);
        if (it == session.pending_completions.end()) return;  // resolved
        PendingCompletion pc = std::move(it->second);
        session.pending_completions.erase(it);
        if (pc.attempts >= options_.completion_max_attempts) {
          ++stats_.completions_failed;
          if (pc.done) pc.done(synthetic_error(completion_code::kTimedOut));
          close_completion_span(dpid, xid, pc.span, "timeout");
          return;
        }
        // Re-send under a fresh xid with a fresh chasing barrier.
        ++pc.attempts;
        ++stats_.retransmits;
        CtrlMetrics::get().retransmits.inc();
        obs::FlightRecorder::global().record(
            obs::FlightEventKind::kRetransmit, dpid,
            static_cast<std::uint64_t>(pc.attempts));
        const openflow::Xid new_xid = next_xid(dpid);
        // Re-bind the trace under the fresh xid: the mod span if the mod
        // never applied, else the barrier_ack span whose ack was lost.
        {
          auto& tracer = obs::SpanTracer::global();
          if (auto mod = tracer.take(obs::SpanTracer::key(
                  SpanKey::kModTracked, conn_id_, dpid, xid));
              mod.valid()) {
            tracer.annotate(mod, "retransmit");
            tracer.bind(obs::SpanTracer::key(SpanKey::kModTracked, conn_id_,
                                             dpid, new_xid),
                        mod);
          } else if (auto ack = tracer.take(obs::SpanTracer::key(
                         SpanKey::kAck, conn_id_, dpid, xid));
                     ack.valid()) {
            tracer.annotate(ack, "retransmit");
            tracer.bind(
                obs::SpanTracer::key(SpanKey::kAck, conn_id_, dpid, new_xid),
                ack);
          }
        }
        if (options_.batch_southbound) request_chasing_barrier(dpid);
        send(dpid, pc.msg, new_xid);
        if (!options_.batch_southbound) request_chasing_barrier(dpid);
        session.pending_completions.emplace(new_xid, std::move(pc));
        arm_completion_timeout(dpid, new_xid, epoch);
      });
}

void Controller::resolve_completion(Dpid dpid, openflow::Xid xid,
                                    std::optional<openflow::Error> error) {
  auto& session = sessions_.at(dpid);
  const auto it = session.pending_completions.find(xid);
  if (it == session.pending_completions.end()) return;
  PendingCompletion pc = std::move(it->second);
  session.pending_completions.erase(it);
  if (error) ++stats_.completions_failed;
  // The callback runs before the span closes: a repair ladder (TableFull
  // retry) re-entering the trace keeps it open past this resolution.
  if (pc.done) pc.done(error);
  close_completion_span(dpid, xid, pc.span, error ? "failed" : nullptr);
}

void Controller::close_completion_span(Dpid dpid, openflow::Xid xid,
                                       obs::SpanContext span,
                                       const char* note) {
  auto& tracer = obs::SpanTracer::global();
  // Whichever leg was still in flight: the mod span (never applied) or the
  // barrier_ack span (applied, ack window now resolved).
  if (auto mod = tracer.take(
          obs::SpanTracer::key(SpanKey::kModTracked, conn_id_, dpid, xid));
      mod.valid()) {
    if (note) tracer.annotate(mod, note);
    tracer.end_span(mod);
  }
  if (auto ack = tracer.take(
          obs::SpanTracer::key(SpanKey::kAck, conn_id_, dpid, xid));
      ack.valid()) {
    if (note) tracer.annotate(ack, note);
    tracer.end_span(ack);
  }
  if (!span.valid()) return;
  // Last southbound span closed -> the control loop round trip is over.
  if (tracer.open_span_count(span) == 1) tracer.end_trace(span);
}

void Controller::resolve_completions_acked_by(
    Dpid dpid, const std::vector<std::uint32_t>& acked) {
  // Resolve only exact xid matches: an ack names a mod the agent really
  // processed, so a lost mod can never be vouched for by a later one.
  auto& session = sessions_.at(dpid);
  std::vector<openflow::Xid> hits;
  for (const openflow::Xid xid : acked)
    if (session.pending_completions.contains(xid)) hits.push_back(xid);
  std::sort(hits.begin(), hits.end());  // deterministic callback order
  hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
  for (const openflow::Xid xid : hits)
    resolve_completion(dpid, xid, std::nullopt);
}

openflow::Xid Controller::flow_mod(Dpid dpid, const openflow::FlowMod& mod,
                                   CompletionFn done) {
  ++stats_.flow_mods_sent;
  CtrlMetrics::get().flow_mods.inc();
  if (southbound_tap_) southbound_tap_(dpid, openflow::Message{mod});
  const obs::SpanContext span = begin_southbound_span("flow_mod");
  if (done)
    return send_tracked(dpid, openflow::Message{mod}, std::move(done), span);
  const openflow::Xid xid = next_xid(dpid);
  if (span.valid())
    obs::SpanTracer::global().bind(
        obs::SpanTracer::key(SpanKey::kModUntracked, conn_id_, dpid, xid),
        span);
  send(dpid, openflow::Message{mod}, xid);
  return xid;
}

openflow::Xid Controller::group_mod(Dpid dpid, const openflow::GroupMod& mod,
                                    CompletionFn done) {
  ++stats_.group_mods_sent;
  if (southbound_tap_) southbound_tap_(dpid, openflow::Message{mod});
  const obs::SpanContext span = begin_southbound_span("group_mod");
  if (done)
    return send_tracked(dpid, openflow::Message{mod}, std::move(done), span);
  const openflow::Xid xid = next_xid(dpid);
  if (span.valid())
    obs::SpanTracer::global().bind(
        obs::SpanTracer::key(SpanKey::kModUntracked, conn_id_, dpid, xid),
        span);
  send(dpid, openflow::Message{mod}, xid);
  return xid;
}

openflow::Xid Controller::meter_mod(Dpid dpid, const openflow::MeterMod& mod,
                                    CompletionFn done) {
  ++stats_.meter_mods_sent;
  const obs::SpanContext span = begin_southbound_span("meter_mod");
  if (done)
    return send_tracked(dpid, openflow::Message{mod}, std::move(done), span);
  const openflow::Xid xid = next_xid(dpid);
  if (span.valid())
    obs::SpanTracer::global().bind(
        obs::SpanTracer::key(SpanKey::kModUntracked, conn_id_, dpid, xid),
        span);
  send(dpid, openflow::Message{mod}, xid);
  return xid;
}

openflow::Xid Controller::packet_out(Dpid dpid, const openflow::PacketOut& msg,
                                     CompletionFn done) {
  ++stats_.packet_outs_sent;
  CtrlMetrics::get().packet_outs.inc();
  const obs::SpanContext span = begin_southbound_span("packet_out");
  if (done)
    return send_tracked(dpid, openflow::Message{msg}, std::move(done), span);
  const openflow::Xid xid = next_xid(dpid);
  if (span.valid())
    obs::SpanTracer::global().bind(
        obs::SpanTracer::key(SpanKey::kModUntracked, conn_id_, dpid, xid),
        span);
  send(dpid, openflow::Message{msg}, xid);
  return xid;
}

openflow::Xid Controller::commit_bundle(Dpid dpid,
                                        std::vector<openflow::Message> members,
                                        CompletionFn done) {
  if (members.empty()) {
    // Trivially complete, but asynchronously: callers expect the callback
    // strictly after the call returns.
    events().schedule_in(0, [done = std::move(done)] {
      if (done) done(std::nullopt);
    });
    return 0;
  }
  // Members count toward the same stats/tap surface as lone sends, so
  // determinism fingerprints and dashboards see one install stream.
  for (const auto& member : members) {
    if (std::holds_alternative<openflow::FlowMod>(member)) {
      ++stats_.flow_mods_sent;
      CtrlMetrics::get().flow_mods.inc();
      if (southbound_tap_) southbound_tap_(dpid, member);
    } else if (std::holds_alternative<openflow::GroupMod>(member)) {
      ++stats_.group_mods_sent;
      if (southbound_tap_) southbound_tap_(dpid, member);
    } else if (std::holds_alternative<openflow::MeterMod>(member)) {
      ++stats_.meter_mods_sent;
    }
  }
  const obs::SpanContext span = begin_southbound_span("bundle_commit");
  return send_bundle_attempt(
      dpid,
      std::make_shared<const std::vector<openflow::Message>>(
          std::move(members)),
      1, std::move(done), span);
}

openflow::Xid Controller::send_bundle_attempt(
    Dpid dpid, std::shared_ptr<const std::vector<openflow::Message>> members,
    int attempt, CompletionFn done, obs::SpanContext span) {
  const std::uint32_t bundle_id = next_bundle_id_++;
  send(dpid, openflow::Message{openflow::make_bundle_open(bundle_id)},
       next_xid(dpid));
  for (std::size_t i = 0; i < members->size(); ++i) {
    send(dpid,
         openflow::Message{openflow::make_bundle_add(
             bundle_id, static_cast<std::uint32_t>(i), (*members)[i])},
         next_xid(dpid));
  }
  // Only the commit is tracked: its ack (or error) covers the bundle.
  auto retry_done = [this, dpid, members, attempt, span,
                     done = std::move(done)](
                        const std::optional<openflow::Error>& err) mutable {
    if (err && err->type == openflow::ErrorType::BundleFailed &&
        attempt < options_.completion_max_attempts) {
      // Bundle-mechanism failure (adds lost to channel faults, staging
      // evicted): re-send the whole bundle under a fresh id. Member
      // errors (e.g. TableFull) and synthetic timeouts pass through to
      // the caller, whose own ladders handle them. Runs inside
      // resolve_completion's done-before-span-close window, so the new
      // attempt's span keeps the trace open.
      obs::SpanTracer::Scope scope(span);
      const obs::SpanContext retry_span =
          begin_southbound_span("bundle_commit");
      send_bundle_attempt(dpid, std::move(members), attempt + 1,
                          std::move(done), retry_span);
      return;
    }
    if (done) done(err);
  };
  return send_tracked(
      dpid,
      openflow::Message{openflow::make_bundle_commit(
          bundle_id, static_cast<std::uint32_t>(members->size()))},
      std::move(retry_done), span);
}

void Controller::barrier(Dpid dpid, BarrierFn done) {
  const openflow::Xid xid = next_xid(dpid);
  sessions_.at(dpid).pending_barriers[xid] = std::move(done);
  send(dpid, openflow::Message{openflow::BarrierRequest{}}, xid);
}

void Controller::request_flow_stats(Dpid dpid,
                                    const openflow::FlowStatsRequest& req,
                                    FlowStatsFn done) {
  const openflow::Xid xid = next_xid(dpid);
  sessions_.at(dpid).pending_flow_stats[xid] = std::move(done);
  send(dpid, openflow::Message{req}, xid);
}

void Controller::request_port_stats(Dpid dpid,
                                    const openflow::PortStatsRequest& req,
                                    PortStatsFn done) {
  const openflow::Xid xid = next_xid(dpid);
  sessions_.at(dpid).pending_port_stats[xid] = std::move(done);
  send(dpid, openflow::Message{req}, xid);
}

void Controller::request_role(Dpid dpid, openflow::ControllerRole role,
                              std::uint64_t generation_id, RoleFn done) {
  auto& session = sessions_.at(dpid);
  if (session.ever_up && !session.alive) {
    // Known-down switch: answer with the null-reply path immediately (but
    // asynchronously) instead of letting the request rot until heartbeats
    // notice — callers aggregating an election need the verdict.
    events().schedule_in(0, [done = std::move(done)] {
      if (done) done(nullptr);
    });
    return;
  }
  const openflow::Xid xid = next_xid(dpid);
  if (done) session.pending_roles[xid] = std::move(done);
  openflow::RoleRequest req;
  req.role = role;
  req.generation_id = generation_id;
  send(dpid, openflow::Message{req}, xid);
}

void Controller::request_role_all(openflow::ControllerRole role,
                                  std::uint64_t generation_id,
                                  RoleAllFn done) {
  std::vector<Dpid> dpids;
  dpids.reserve(sessions_.size());
  for (const auto& [dpid, session] : sessions_) dpids.push_back(dpid);
  std::sort(dpids.begin(), dpids.end());
  request_role_many(dpids, role, generation_id, std::move(done));
}

void Controller::request_role_many(const std::vector<Dpid>& dpids,
                                   openflow::ControllerRole role,
                                   std::uint64_t generation_id,
                                   RoleAllFn done) {
  auto result = std::make_shared<RoleAllResult>();
  result->role = role;
  result->generation_id = generation_id;
  auto remaining = std::make_shared<std::size_t>(dpids.size());
  auto shared_done = std::make_shared<RoleAllFn>(std::move(done));
  const auto settle = [result, remaining, shared_done] {
    if (--*remaining > 0) return;
    std::sort(result->granted.begin(), result->granted.end());
    std::sort(result->refused.begin(), result->refused.end());
    std::sort(result->down.begin(), result->down.end());
    if (*shared_done) (*shared_done)(*result);
  };
  if (dpids.empty()) {
    // Fire asynchronously even when trivially complete.
    events().schedule_in(0, [result, shared_done] {
      if (*shared_done) (*shared_done)(*result);
    });
    return;
  }
  for (const Dpid dpid : dpids) {
    if (!sessions_.contains(dpid)) {
      result->down.push_back(dpid);
      events().schedule_in(0, [settle] { settle(); });
      continue;
    }
    request_role(dpid, role, generation_id,
                 [dpid, result, settle](const openflow::RoleReply* reply) {
                   if (!reply)
                     result->down.push_back(dpid);
                   else if (reply->accepted)
                     result->granted.push_back(dpid);
                   else
                     result->refused.push_back(dpid);
                   settle();
                 });
  }
}

openflow::ControllerRole Controller::role(Dpid dpid) const {
  const auto it = sessions_.find(dpid);
  return it == sessions_.end() ? openflow::ControllerRole::Equal
                               : it->second.granted_role;
}

void Controller::install_table_miss(Dpid dpid, std::uint8_t table_id) {
  openflow::FlowMod mod;
  mod.table_id = table_id;
  mod.priority = 0;  // table-miss: empty match at priority 0
  mod.instructions = {openflow::ApplyActions{
      {openflow::OutputAction{openflow::Ports::kController, 128}}}};
  flow_mod(dpid, mod);
}

void Controller::flood_packet(Dpid dpid, std::uint32_t in_port,
                              const openflow::Bytes& data,
                              std::uint32_t buffer_id) {
  openflow::PacketOut out;
  out.buffer_id = buffer_id;
  out.in_port = in_port;
  out.actions = {openflow::OutputAction{openflow::Ports::kFlood, 0xffff}};
  if (buffer_id == openflow::kNoBuffer) out.data = data;
  packet_out(dpid, out);
}

void Controller::on_batch(Dpid dpid,
                          std::vector<openflow::OwnedMessage> batch) {
  if (halted_) return;  // a dead controller processes nothing
  // Model controller-side processing latency before dispatch. One event
  // covers the whole delivered batch: each message still dispatches at the
  // same virtual time and in the same order as per-message events would.
  if (options_.processing_delay_s > 0) {
    events().schedule_in(options_.processing_delay_s,
                         [this, dpid, batch = std::move(batch)]() mutable {
                           if (halted_) return;
                           for (auto& owned : batch)
                             dispatch(dpid, std::move(owned));
                         });
  } else {
    for (auto& owned : batch) dispatch(dpid, std::move(owned));
  }
}

void Controller::learn_host_from(Dpid dpid, const openflow::PacketIn& pin,
                                 const net::ParsedPacket& parsed) {
  // Only learn on edge ports; packets arriving over inter-switch links
  // would otherwise relocate hosts spuriously.
  if (view_.is_infrastructure_port(dpid, pin.in_port)) return;
  if (parsed.eth.src.is_multicast()) return;

  net::Ipv4Address ip;
  if (parsed.arp) ip = parsed.arp->sender_ip;
  else if (parsed.ipv4) ip = parsed.ipv4->src;

  if (view_.learn_host(parsed.eth.src, ip, dpid, pin.in_port, now())) {
    const HostInfo* info = view_.host_by_mac(parsed.eth.src);
    for (const auto& app : apps_) app->on_host_discovered(*info);
  }
}

void Controller::handle_packet_in(Dpid dpid, const openflow::PacketIn& pin) {
  ++stats_.packet_ins;
  CtrlMetrics::get().packet_ins.inc();
  ZEN_TRACE_SCOPE("packet_in", "controller");

  // Pick up the causal trace the punting agent bound under this buffer_id:
  // the punt's channel span ends here and the dispatch span begins.
  auto& tracer = obs::SpanTracer::global();
  obs::SpanContext dispatch_span;
  if (pin.buffer_id != openflow::kNoBuffer) {
    const obs::SpanContext punt = tracer.take(obs::SpanTracer::key(
        SpanKey::kPacketIn, conn_id_, dpid, pin.buffer_id));
    if (punt.valid()) {
      const obs::SpanContext root = tracer.end_span(punt);
      dispatch_span = tracer.start_span("dispatch", "trace", root);
    }
  }

  PacketInEvent event;
  event.dpid = dpid;
  event.pin = &pin;

  net::ParsedPacket parsed;
  auto parse_result = net::parse_packet(pin.data);
  if (parse_result.ok()) {
    parsed = std::move(parse_result).value();
    event.parsed = &parsed;
    learn_host_from(dpid, pin, parsed);
  }

  {
    obs::SpanTracer::Scope dispatch_scope(dispatch_span);
    for (std::size_t i = 0; i < apps_.size(); ++i) {
      app_pin_counters_[i]->inc();
      obs::SpanContext app_span;
      if (dispatch_span.valid()) {
        app_span = tracer.start_span("app:" + apps_[i]->name(), "trace",
                                     dispatch_span);
      }
      obs::SpanTracer::Scope app_scope(app_span);
      const bool consumed = apps_[i]->on_packet_in(event);
      tracer.end_span(app_span);
      if (consumed) break;
    }
  }

  if (dispatch_span.valid()) {
    const obs::SpanContext root = tracer.end_span(dispatch_span);
    // No app opened a southbound span (flood / drop decision): the control
    // loop ends at the controller, close the trace here.
    if (tracer.open_span_count(root) == 1) {
      tracer.annotate(root, "no_install");
      tracer.end_trace(root);
    }
  }
}

void Controller::dispatch(Dpid dpid, openflow::OwnedMessage owned) {
  auto& session = sessions_.at(dpid);
  std::visit(
      [&](auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, openflow::Hello>) {
          // Peer hello; nothing further (we initiated).
        } else if constexpr (std::is_same_v<T, openflow::FeaturesReply>) {
          handle_features_reply(dpid, session, msg);
        } else if constexpr (std::is_same_v<T, openflow::PacketIn>) {
          handle_packet_in(dpid, msg);
        } else if constexpr (std::is_same_v<T, openflow::PortStatus>) {
          view_.set_port_state(dpid, msg.desc.port_no, msg.desc.link_up);
          if (!msg.desc.link_up) {
            for (const auto& link :
                 view_.mark_links_down(dpid, msg.desc.port_no)) {
              const LinkEvent ev{link, false};
              for (const auto& app : apps_) app->on_link_event(ev);
            }
          }
          // Scoped controllers keep app fan-out group-local; slave
          // sessions into other groups still deliver PortStatus, but
          // those switches are somebody else's problem.
          if (view_.in_scope(dpid))
            for (const auto& app : apps_) app->on_port_status(dpid, msg);
        } else if constexpr (std::is_same_v<T, openflow::FlowRemoved>) {
          // The rule store sees removals first so apps observing the event
          // already find evicted managed rules marked degraded.
          rule_store_->on_flow_removed(dpid, msg);
          for (const auto& app : apps_) app->on_flow_removed(dpid, msg);
        } else if constexpr (std::is_same_v<T, openflow::Experimenter>) {
          if (msg.experimenter_id == openflow::kVacancyExperimenterId) {
            auto status = openflow::parse_table_status_message(msg);
            if (status.ok()) {
              view_.record_table_status(dpid, status.value());
              for (const auto& app : apps_)
                app->on_table_status(dpid, status.value());
            } else {
              ZEN_LOG(Warn) << "controller: bad table-status from dpid "
                            << dpid << ": " << status.error();
            }
          } else {
            for (const auto& app : apps_) app->on_experimenter(dpid, msg);
          }
        } else if constexpr (std::is_same_v<T, openflow::BarrierReply>) {
          // The ack set resolves every tracked send the agent had
          // processed by this barrier — including ones whose own barrier
          // reply was lost.
          resolve_completions_acked_by(dpid, msg.acked);
          const auto it = session.pending_barriers.find(owned.xid);
          if (it != session.pending_barriers.end()) {
            auto fn = std::move(it->second);
            session.pending_barriers.erase(it);
            if (fn) fn(true);
          }
        } else if constexpr (std::is_same_v<T, openflow::FlowStatsReply>) {
          const auto it = session.pending_flow_stats.find(owned.xid);
          if (it != session.pending_flow_stats.end()) {
            auto fn = std::move(it->second);
            session.pending_flow_stats.erase(it);
            if (fn) fn(&msg);
          }
        } else if constexpr (std::is_same_v<T, openflow::PortStatsReply>) {
          const auto it = session.pending_port_stats.find(owned.xid);
          if (it != session.pending_port_stats.end()) {
            auto fn = std::move(it->second);
            session.pending_port_stats.erase(it);
            if (fn) fn(&msg);
          }
        } else if constexpr (std::is_same_v<T, openflow::RoleReply>) {
          if (msg.accepted && session.granted_role != msg.role) {
            const auto old_role = session.granted_role;
            session.granted_role = msg.role;
            // Controller-side role_change black-box event: b packs the
            // election generation with the old and new role so a takeover
            // is reconstructible from the ring alone (see DESIGN.md).
            char tag[16];
            std::snprintf(tag, sizeof(tag), "ctl%llu",
                          static_cast<unsigned long long>(conn_id_));
            obs::FlightRecorder::global().record(
                obs::FlightEventKind::kRoleChange, dpid,
                (msg.generation_id << 16) |
                    (static_cast<std::uint64_t>(old_role) << 8) |
                    static_cast<std::uint64_t>(msg.role),
                tag);
            // Gauge registered lazily on the first role grant: runs that
            // never negotiate roles keep their metric surface unchanged.
            obs::MetricsRegistry::global()
                .gauge("zen_controller_role",
                       "conn=\"" + std::to_string(conn_id_) + "\",dpid=\"" +
                           std::to_string(dpid) + "\"",
                       "Granted role per controller connection "
                       "(0 equal, 1 master, 2 slave)")
                .set(static_cast<double>(msg.role));
          } else if (msg.accepted) {
            session.granted_role = msg.role;
          }
          const auto it = session.pending_roles.find(owned.xid);
          if (it != session.pending_roles.end()) {
            auto fn = std::move(it->second);
            session.pending_roles.erase(it);
            if (fn) fn(&msg);
          }
        } else if constexpr (std::is_same_v<T, openflow::ErrorMsg>) {
          ++stats_.errors_received;
          CtrlMetrics::get().errors.inc();
          ZEN_LOG(Warn) << "controller: error from dpid " << dpid << " type "
                        << static_cast<unsigned>(msg.type) << " code "
                        << msg.code;
          resolve_completion(dpid, owned.xid, msg);
          for (const auto& app : apps_) app->on_error(dpid, msg);
        } else if constexpr (std::is_same_v<T, openflow::EchoRequest>) {
          send(dpid, openflow::Message{openflow::EchoReply{msg.data}}, owned.xid);
        } else if constexpr (std::is_same_v<T, openflow::EchoReply>) {
          session.echo_outstanding = false;
          session.echo_misses = 0;
          // A reboot shorter than the heartbeat-miss window never misses
          // an echo, but it does change the boot epoch: the tables are
          // empty while the controller still believes them full. Tear the
          // session down so the reconnect path re-handshakes and audits.
          if (session.alive && session.boot_id != 0 &&
              msg.boot_id != session.boot_id) {
            ZEN_LOG(Warn) << "controller: switch " << dpid
                          << " rebooted behind our back (boot "
                          << session.boot_id << " -> " << msg.boot_id << ")";
            declare_switch_down(dpid);
          }
        }
      },
      owned.msg);
}

void Controller::handle_features_reply(Dpid dpid, Session& session,
                                       const openflow::FeaturesReply& msg) {
  if (session.alive) {
    // Duplicate reply (a retried FeaturesRequest raced the original):
    // refresh the view, don't re-fire apps — unless the switch just
    // entered a grown scope (group adoption via refresh_features), in
    // which case this reply IS its first appearance to the apps.
    const bool was_known = view_.has_switch(dpid);
    view_.add_switch(dpid, msg);
    if (!was_known && view_.has_switch(dpid))
      for (const auto& app : apps_) app->on_switch_up(dpid, msg);
    return;
  }
  const bool reconnect = session.ever_up;
  session.alive = true;
  session.ever_up = true;
  session.features_known = true;
  session.echo_misses = 0;
  session.echo_outstanding = false;
  session.backoff_s = options_.reconnect_backoff_initial_s;
  session.boot_id = msg.boot_id;
  ++session.epoch;  // retire handshake-retry timers; start a fresh life
  // Tracked sends issued before the handshake finished armed their
  // timeouts under the old epoch, which the bump just disarmed; re-arm
  // them under the new one or a lost pre-handshake mod would neither
  // retry nor fail — its callback would simply never fire.
  {
    std::vector<openflow::Xid> surviving;
    for (const auto& [xid, pc] : session.pending_completions)
      surviving.push_back(xid);
    std::sort(surviving.begin(), surviving.end());
    for (const openflow::Xid xid : surviving)
      arm_completion_timeout(dpid, xid, session.epoch);
  }
  view_.add_switch(dpid, msg);
  if (reconnect) {
    ZEN_LOG(Info) << "controller: switch " << dpid << " reconnected";
    obs::FlightRecorder::global().record(obs::FlightEventKind::kReconnect,
                                         dpid, session.epoch);
  }
  schedule_echo(dpid, session.epoch);
  // A scoped view rejects out-of-group switches; apps only hear about the
  // ones it admitted (a delegated controller's apps see its group alone).
  if (view_.has_switch(dpid))
    for (const auto& app : apps_) app->on_switch_up(dpid, msg);
  // After a crash the switch came back empty: reconcile actual state with
  // everything apps intend for it (apps may also have just re-installed
  // state in on_switch_up; the audit mops up whatever the faulty channel
  // ate and deletes pre-crash strays the controller no longer wants).
  if (reconnect) rule_store_->audit(dpid, nullptr);
}

void Controller::notify_link_event(const LinkEvent& ev) {
  for (const auto& app : apps_) app->on_link_event(ev);
}

void Controller::refresh_features(Dpid dpid) {
  if (halted_ || !sessions_.contains(dpid)) return;
  send(dpid, openflow::Message{openflow::FeaturesRequest{}}, next_xid(dpid));
}

void Controller::notify_host(const HostInfo& host) {
  if (!view_.learn_host(host.mac, host.ip, host.dpid, host.port, now()))
    return;
  const HostInfo* info = view_.host_by_mac(host.mac);
  for (const auto& app : apps_) app->on_host_discovered(*info);
}

}  // namespace zen::controller
