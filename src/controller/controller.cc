#include "controller/controller.h"

#include "obs/obs.h"
#include "util/logging.h"

namespace zen::controller {

namespace {

struct CtrlMetrics {
  obs::Counter& packet_ins;
  obs::Counter& flow_mods;
  obs::Counter& packet_outs;
  obs::Counter& errors;
  static CtrlMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static CtrlMetrics m{
        reg.counter("zen_controller_packet_ins_total", "",
                    "PacketIns dispatched to the app chain"),
        reg.counter("zen_controller_flow_mods_total", "",
                    "FlowMods sent southbound"),
        reg.counter("zen_controller_packet_outs_total", "",
                    "PacketOuts sent southbound"),
        reg.counter("zen_controller_errors_total", "",
                    "Error messages received from switches")};
    return m;
  }
};
// Process-wide connection-id source: every Controller instance gets a
// distinct id so switches can arbitrate roles between them.
std::uint64_t next_conn_id() {
  static std::uint64_t next = 1;
  return next++;
}
}  // namespace

Controller::Controller(sim::SimNetwork& net, Options options)
    : net_(net), options_(options), conn_id_(next_conn_id()) {
  net_.add_datapath_event_handler(
      [this](topo::NodeId sw, openflow::Message msg) {
        const auto it = sessions_.find(sw);
        if (it == sessions_.end()) return;
        it->second.agent->on_datapath_event(std::move(msg));
      });
}

void Controller::connect_all() {
  for (const auto& [dpid, sw] : net_.switches()) {
    if (sessions_.contains(dpid)) continue;
    Session session;
    session.channel =
        std::make_unique<Channel>(net_.events(), options_.channel_latency_s);
    session.agent =
        std::make_unique<SwitchAgent>(net_, dpid, *session.channel, conn_id_);
    const Dpid id = dpid;
    session.channel->set_a_receiver(
        [this, id](std::vector<std::uint8_t> bytes) {
          on_wire(id, std::move(bytes));
        });
    sessions_.emplace(dpid, std::move(session));
    // Handshake: Hello then FeaturesRequest.
    send(dpid, openflow::Message{openflow::Hello{}}, next_xid(dpid));
    send(dpid, openflow::Message{openflow::FeaturesRequest{}}, next_xid(dpid));
  }
}

std::uint16_t Controller::next_xid(Dpid dpid) {
  auto& session = sessions_.at(dpid);
  if (session.next_xid == 0) session.next_xid = 1;
  return session.next_xid++;
}

void Controller::send(Dpid dpid, const openflow::Message& msg,
                      std::uint16_t xid) {
  sessions_.at(dpid).channel->send_to_b(openflow::encode(msg, xid));
}

void Controller::register_app_metrics(const App& app) {
  app_pin_counters_.push_back(&obs::MetricsRegistry::global().counter(
      "zen_controller_app_packet_ins_total", "app=\"" + app.name() + "\"",
      "PacketIns seen by each app"));
}

void Controller::flow_mod(Dpid dpid, const openflow::FlowMod& mod) {
  ++stats_.flow_mods_sent;
  CtrlMetrics::get().flow_mods.inc();
  send(dpid, openflow::Message{mod}, next_xid(dpid));
}

void Controller::group_mod(Dpid dpid, const openflow::GroupMod& mod) {
  ++stats_.group_mods_sent;
  send(dpid, openflow::Message{mod}, next_xid(dpid));
}

void Controller::meter_mod(Dpid dpid, const openflow::MeterMod& mod) {
  send(dpid, openflow::Message{mod}, next_xid(dpid));
}

void Controller::packet_out(Dpid dpid, const openflow::PacketOut& msg) {
  ++stats_.packet_outs_sent;
  CtrlMetrics::get().packet_outs.inc();
  send(dpid, openflow::Message{msg}, next_xid(dpid));
}

void Controller::barrier(Dpid dpid, BarrierFn done) {
  const std::uint16_t xid = next_xid(dpid);
  sessions_.at(dpid).pending_barriers[xid] = std::move(done);
  send(dpid, openflow::Message{openflow::BarrierRequest{}}, xid);
}

void Controller::request_flow_stats(Dpid dpid,
                                    const openflow::FlowStatsRequest& req,
                                    FlowStatsFn done) {
  const std::uint16_t xid = next_xid(dpid);
  sessions_.at(dpid).pending_flow_stats[xid] = std::move(done);
  send(dpid, openflow::Message{req}, xid);
}

void Controller::request_port_stats(Dpid dpid,
                                    const openflow::PortStatsRequest& req,
                                    PortStatsFn done) {
  const std::uint16_t xid = next_xid(dpid);
  sessions_.at(dpid).pending_port_stats[xid] = std::move(done);
  send(dpid, openflow::Message{req}, xid);
}

void Controller::request_role(Dpid dpid, openflow::ControllerRole role,
                              std::uint64_t generation_id, RoleFn done) {
  const std::uint16_t xid = next_xid(dpid);
  if (done) sessions_.at(dpid).pending_roles[xid] = std::move(done);
  openflow::RoleRequest req;
  req.role = role;
  req.generation_id = generation_id;
  send(dpid, openflow::Message{req}, xid);
}

void Controller::request_role_all(openflow::ControllerRole role,
                                  std::uint64_t generation_id) {
  for (const auto& [dpid, session] : sessions_)
    request_role(dpid, role, generation_id);
}

openflow::ControllerRole Controller::role(Dpid dpid) const {
  const auto it = sessions_.find(dpid);
  return it == sessions_.end() ? openflow::ControllerRole::Equal
                               : it->second.granted_role;
}

void Controller::install_table_miss(Dpid dpid, std::uint8_t table_id) {
  openflow::FlowMod mod;
  mod.table_id = table_id;
  mod.priority = 0;  // table-miss: empty match at priority 0
  mod.instructions = {openflow::ApplyActions{
      {openflow::OutputAction{openflow::Ports::kController, 128}}}};
  flow_mod(dpid, mod);
}

void Controller::flood_packet(Dpid dpid, std::uint32_t in_port,
                              const openflow::Bytes& data,
                              std::uint32_t buffer_id) {
  openflow::PacketOut out;
  out.buffer_id = buffer_id;
  out.in_port = in_port;
  out.actions = {openflow::OutputAction{openflow::Ports::kFlood, 0xffff}};
  if (buffer_id == openflow::kNoBuffer) out.data = data;
  packet_out(dpid, out);
}

void Controller::on_wire(Dpid dpid, std::vector<std::uint8_t> bytes) {
  auto& session = sessions_.at(dpid);
  session.stream.feed(bytes);
  while (auto result = session.stream.next()) {
    if (!result->ok()) {
      ZEN_LOG(Warn) << "controller: bad frame from dpid " << dpid << ": "
                    << result->error();
      continue;
    }
    // Model controller-side processing latency before dispatch.
    if (options_.processing_delay_s > 0) {
      events().schedule_in(
          options_.processing_delay_s,
          [this, dpid, owned = std::move(*result).value()]() mutable {
            dispatch(dpid, std::move(owned));
          });
    } else {
      dispatch(dpid, std::move(*result).value());
    }
  }
}

void Controller::learn_host_from(Dpid dpid, const openflow::PacketIn& pin,
                                 const net::ParsedPacket& parsed) {
  // Only learn on edge ports; packets arriving over inter-switch links
  // would otherwise relocate hosts spuriously.
  if (view_.is_infrastructure_port(dpid, pin.in_port)) return;
  if (parsed.eth.src.is_multicast()) return;

  net::Ipv4Address ip;
  if (parsed.arp) ip = parsed.arp->sender_ip;
  else if (parsed.ipv4) ip = parsed.ipv4->src;

  if (view_.learn_host(parsed.eth.src, ip, dpid, pin.in_port, now())) {
    const HostInfo* info = view_.host_by_mac(parsed.eth.src);
    for (const auto& app : apps_) app->on_host_discovered(*info);
  }
}

void Controller::handle_packet_in(Dpid dpid, const openflow::PacketIn& pin) {
  ++stats_.packet_ins;
  CtrlMetrics::get().packet_ins.inc();
  ZEN_TRACE_SCOPE("packet_in", "controller");

  PacketInEvent event;
  event.dpid = dpid;
  event.pin = &pin;

  net::ParsedPacket parsed;
  auto parse_result = net::parse_packet(pin.data);
  if (parse_result.ok()) {
    parsed = std::move(parse_result).value();
    event.parsed = &parsed;
    learn_host_from(dpid, pin, parsed);
  }

  for (std::size_t i = 0; i < apps_.size(); ++i) {
    app_pin_counters_[i]->inc();
    if (apps_[i]->on_packet_in(event)) break;
  }
}

void Controller::dispatch(Dpid dpid, openflow::OwnedMessage owned) {
  auto& session = sessions_.at(dpid);
  std::visit(
      [&](auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, openflow::Hello>) {
          // Peer hello; nothing further (we initiated).
        } else if constexpr (std::is_same_v<T, openflow::FeaturesReply>) {
          const bool first = !session.features_known;
          session.features_known = true;
          view_.add_switch(dpid, msg);
          if (first)
            for (const auto& app : apps_) app->on_switch_up(dpid, msg);
        } else if constexpr (std::is_same_v<T, openflow::PacketIn>) {
          handle_packet_in(dpid, msg);
        } else if constexpr (std::is_same_v<T, openflow::PortStatus>) {
          view_.set_port_state(dpid, msg.desc.port_no, msg.desc.link_up);
          if (!msg.desc.link_up) {
            for (const auto& link :
                 view_.mark_links_down(dpid, msg.desc.port_no)) {
              const LinkEvent ev{link, false};
              for (const auto& app : apps_) app->on_link_event(ev);
            }
          }
          for (const auto& app : apps_) app->on_port_status(dpid, msg);
        } else if constexpr (std::is_same_v<T, openflow::FlowRemoved>) {
          for (const auto& app : apps_) app->on_flow_removed(dpid, msg);
        } else if constexpr (std::is_same_v<T, openflow::Experimenter>) {
          for (const auto& app : apps_) app->on_experimenter(dpid, msg);
        } else if constexpr (std::is_same_v<T, openflow::BarrierReply>) {
          const auto it = session.pending_barriers.find(owned.xid);
          if (it != session.pending_barriers.end()) {
            auto fn = std::move(it->second);
            session.pending_barriers.erase(it);
            if (fn) fn();
          }
        } else if constexpr (std::is_same_v<T, openflow::FlowStatsReply>) {
          const auto it = session.pending_flow_stats.find(owned.xid);
          if (it != session.pending_flow_stats.end()) {
            auto fn = std::move(it->second);
            session.pending_flow_stats.erase(it);
            if (fn) fn(msg);
          }
        } else if constexpr (std::is_same_v<T, openflow::PortStatsReply>) {
          const auto it = session.pending_port_stats.find(owned.xid);
          if (it != session.pending_port_stats.end()) {
            auto fn = std::move(it->second);
            session.pending_port_stats.erase(it);
            if (fn) fn(msg);
          }
        } else if constexpr (std::is_same_v<T, openflow::RoleReply>) {
          if (msg.accepted) session.granted_role = msg.role;
          const auto it = session.pending_roles.find(owned.xid);
          if (it != session.pending_roles.end()) {
            auto fn = std::move(it->second);
            session.pending_roles.erase(it);
            if (fn) fn(msg);
          }
        } else if constexpr (std::is_same_v<T, openflow::ErrorMsg>) {
          ++stats_.errors_received;
          CtrlMetrics::get().errors.inc();
          ZEN_LOG(Warn) << "controller: error from dpid " << dpid << " type "
                        << static_cast<unsigned>(msg.type) << " code "
                        << msg.code;
        } else if constexpr (std::is_same_v<T, openflow::EchoRequest>) {
          send(dpid, openflow::Message{openflow::EchoReply{msg.data}}, owned.xid);
        }
      },
      owned.msg);
}

void Controller::notify_link_event(const LinkEvent& ev) {
  for (const auto& app : apps_) app->on_link_event(ev);
}

}  // namespace zen::controller
