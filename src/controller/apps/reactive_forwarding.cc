#include "controller/apps/reactive_forwarding.h"

#include "net/headers.h"
#include "topo/path_engine.h"

namespace zen::controller::apps {

void ReactiveForwarding::on_switch_up(Dpid dpid, const openflow::FeaturesReply&) {
  // ARP punts (controller answers from the host table or floods).
  openflow::FlowMod arp;
  arp.table_id = options_.table_id;
  arp.priority = 900;
  arp.match.eth_type(net::EtherType::kArp);
  arp.instructions = {openflow::ApplyActions{
      {openflow::OutputAction{openflow::Ports::kController, 0xffff}}}};
  controller_->flow_mod(dpid, arp);
  controller_->install_table_miss(dpid, options_.table_id);
}

void ReactiveForwarding::flood_to_edge_ports(const openflow::Bytes& data,
                                             Dpid except_dpid,
                                             std::uint32_t except_port) {
  const NetworkView& view = controller_->view();
  for (const Dpid dpid : view.switch_ids()) {
    const auto* features = view.switch_features(dpid);
    if (!features) continue;
    openflow::PacketOut out;
    out.in_port = openflow::Ports::kController;
    for (const auto& port : features->ports) {
      if (view.is_infrastructure_port(dpid, port.port_no)) continue;
      if (dpid == except_dpid && port.port_no == except_port) continue;
      out.actions.push_back(openflow::OutputAction{port.port_no, 0xffff});
    }
    if (out.actions.empty()) continue;
    out.data = data;
    controller_->packet_out(dpid, out);
  }
}

bool ReactiveForwarding::on_packet_in(const PacketInEvent& event) {
  if (!event.parsed) return false;
  const auto& parsed = *event.parsed;
  const auto& pin = *event.pin;
  const NetworkView& view = controller_->view();

  // ARP: proxy when possible, else edge-flood.
  if (parsed.arp) {
    if (parsed.arp->opcode == net::ArpMessage::kRequest) {
      if (const HostInfo* target = view.host_by_ip(parsed.arp->target_ip)) {
        openflow::PacketOut out;
        out.in_port = openflow::Ports::kController;
        out.actions = {openflow::OutputAction{pin.in_port, 0xffff}};
        out.data = net::build_arp_reply(target->mac, parsed.arp->target_ip,
                                        parsed.arp->sender_mac,
                                        parsed.arp->sender_ip);
        controller_->packet_out(event.dpid, out);
        return true;
      }
    }
    flood_to_edge_ports(pin.data, event.dpid, pin.in_port);
    return true;
  }

  if (!parsed.ipv4) return false;
  const HostInfo* src = view.host_by_ip(parsed.ipv4->src);
  const HostInfo* dst = view.host_by_ip(parsed.ipv4->dst);
  if (!dst) {
    flood_to_edge_ports(pin.data, event.dpid, pin.in_port);
    return true;
  }

  // Path from the punting switch to the destination's switch, resolved
  // through the shared PathEngine (cached per destination).
  topo::PathEngine& engine = view.path_engine();
  const topo::Topology& topo = engine.topology();
  std::vector<topo::NodeId> nodes;
  std::vector<topo::LinkId> links;
  if (event.dpid == dst->dpid) {
    nodes = {event.dpid};
  } else {
    const topo::Path path = engine.shortest_path(event.dpid, dst->dpid);
    if (path.empty()) return true;  // partitioned; drop
    nodes = path.nodes;
    links = path.links;
  }

  // Install along the whole path in one shot (ONOS fwd behavior), then
  // forward the packet.
  std::uint32_t first_out = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const std::uint32_t out_port =
        (i + 1 < nodes.size()) ? topo.link(links[i])->port_at(nodes[i])
                               : dst->port;
    if (i == 0) first_out = out_port;

    openflow::FlowMod mod;
    mod.table_id = options_.table_id;
    mod.priority = options_.rule_priority;
    mod.idle_timeout = options_.idle_timeout_s;
    mod.match.eth_type(net::EtherType::kIpv4).ipv4_dst(parsed.ipv4->dst, 32);
    if (src) mod.match.ipv4_src(parsed.ipv4->src, 32);
    if (options_.match_l4) {
      mod.match.ip_proto(parsed.ipv4->protocol);
      if (parsed.tcp)
        mod.match.l4_src(parsed.tcp->src_port).l4_dst(parsed.tcp->dst_port);
      if (parsed.udp)
        mod.match.l4_src(parsed.udp->src_port).l4_dst(parsed.udp->dst_port);
    }
    mod.instructions = openflow::output_to(out_port);
    controller_->flow_mod(nodes[i], mod);
  }
  ++paths_installed_;

  openflow::PacketOut out;
  out.buffer_id = pin.buffer_id;
  out.in_port = pin.in_port;
  out.actions = {openflow::OutputAction{first_out, 0xffff}};
  if (pin.buffer_id == openflow::kNoBuffer) out.data = pin.data;
  controller_->packet_out(event.dpid, out);
  return true;
}

}  // namespace zen::controller::apps
