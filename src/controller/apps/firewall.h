// Stateless ACL firewall.
//
// Rules (allow/deny over match fields) are installed on every switch at a
// priority band above routing. Deny compiles to an empty instruction list
// (OpenFlow drop); allow compiles to Goto the next table, or to a no-op
// band pass-through in single-table deployments (where it simply shadows
// lower-priority denies).
#pragma once

#include <vector>

#include "controller/controller.h"

namespace zen::controller::apps {

struct AclRule {
  openflow::Match match;
  bool allow = false;
  // Relative priority within the ACL band (higher wins).
  std::uint16_t priority = 0;
};

class Firewall : public App {
 public:
  struct Options {
    std::uint8_t acl_table = 0;
    // When nonzero, allow rules Goto this table (two-table pipeline).
    std::uint8_t next_table = 0;
    std::uint16_t band_base = 20000;  // ACL band sits above routing
  };

  Firewall() : Firewall(Options()) {}
  explicit Firewall(Options options) : options_(options) {}

  std::string name() const override { return "firewall"; }
  void on_switch_up(Dpid dpid, const openflow::FeaturesReply&) override;
  void on_switch_down(Dpid dpid) override;

  // Adds a rule; pushed to already-connected switches immediately.
  void add_rule(AclRule rule);
  void clear_rules();

  std::size_t rule_count() const noexcept { return rules_.size(); }
  // Installs whose completion resolved with an error (or timed out).
  std::size_t install_failures() const noexcept { return install_failures_; }

 private:
  void install(Dpid dpid, const AclRule& rule);

  Options options_;
  std::vector<AclRule> rules_;
  std::vector<Dpid> connected_;
  std::size_t install_failures_ = 0;
};

}  // namespace zen::controller::apps
