// Topology discovery (LLDP-style), as in ONOS/Ryu.
//
// On switch connect, installs a punt rule for discovery frames. Then on a
// fixed period it PacketOuts a discovery frame on every up switch port;
// receiving one back on another switch reveals a unidirectional link, which
// is recorded in the controller's NetworkView and announced to apps.
#pragma once

#include "controller/controller.h"

namespace zen::controller::apps {

class Discovery : public App {
 public:
  struct Options {
    double probe_interval_s = 1.0;
    std::uint16_t punt_priority = 1000;
    std::uint8_t table_id = 0;
    // Stop probing after this virtual time (0 = forever). Benchmarks use
    // this to bound event-queue growth.
    double stop_after_s = 0;
    // A link not re-confirmed by LLDP within this window is declared down
    // (catches silent failures that produce no PortStatus). 0 disables.
    double link_timeout_s = 0;
  };

  Discovery() : Discovery(Options()) {}
  explicit Discovery(Options options) : options_(options) {}

  std::string name() const override { return "discovery"; }
  void init(Controller& controller) override;
  void on_switch_up(Dpid dpid, const openflow::FeaturesReply& features) override;
  bool on_packet_in(const PacketInEvent& event) override;

  // Sends one probe per up port of every known switch, immediately.
  void probe_now();

  // Marks links whose last LLDP confirmation is older than
  // `link_timeout_s` as down and raises link events. Called by the probe
  // timer; public for tests.
  void age_links();

 private:
  void schedule_probe();

  Options options_;
  bool timer_running_ = false;
  bool initial_probe_pending_ = false;
};

}  // namespace zen::controller::apps
