// L4 load balancer (Ananta-flavored, controller-driven).
//
// Owns a VIP backed by N real servers. ARP for the VIP is answered with a
// virtual MAC. The first packet of each client flow to the VIP triggers a
// per-flow DNAT rule at the client's ingress switch (rewrite dst to the
// chosen backend, forward toward it) and the reverse SNAT rule at the
// backend's switch (rewrite src back to the VIP). Backend choice is a
// deterministic hash of the 5-tuple, so a flow always lands on one backend.
#pragma once

#include <vector>

#include "controller/controller.h"

namespace zen::controller::apps {

class LoadBalancer : public App {
 public:
  struct Backend {
    net::Ipv4Address ip;
  };

  LoadBalancer(net::Ipv4Address vip, std::vector<Backend> backends,
               std::uint8_t table_id = 0);

  std::string name() const override { return "load_balancer"; }
  bool on_packet_in(const PacketInEvent& event) override;

  net::MacAddress virtual_mac() const noexcept { return virtual_mac_; }
  std::uint64_t flows_assigned() const noexcept { return flows_assigned_; }
  const std::vector<std::uint64_t>& per_backend_flows() const noexcept {
    return per_backend_flows_;
  }

 private:
  std::size_t pick_backend(const net::ParsedPacket& parsed) const;

  net::Ipv4Address vip_;
  net::MacAddress virtual_mac_;
  std::vector<Backend> backends_;
  std::vector<std::uint64_t> per_backend_flows_;
  std::uint8_t table_id_;
  std::uint16_t rule_priority_ = 300;
  std::uint16_t idle_timeout_s_ = 30;
  std::uint64_t flows_assigned_ = 0;
};

}  // namespace zen::controller::apps
