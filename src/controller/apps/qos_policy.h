// QosPolicy: declarative traffic classes (the network-slice primitive).
//
// A class is a match plus a treatment: a strict-priority queue, an optional
// police rate (meter), or both. The app installs the classification rules
// on every switch at a priority band above routing, with GotoTable so the
// routing decision still comes from the table below — classification
// composes with forwarding instead of replacing it. For single-table
// deployments (next_table == 0) each class must carry explicit forwarding
// via its `instructions_override`.
#pragma once

#include <vector>

#include "controller/controller.h"

namespace zen::controller::apps {

struct TrafficClass {
  std::string name;
  openflow::Match match;
  // Strict-priority queue for matched traffic (0 = best effort).
  std::uint32_t queue_id = 0;
  // Police to this rate before forwarding (0 = no meter).
  std::uint64_t police_rate_kbps = 0;
  std::uint64_t police_burst_kbits = 0;
  // Relative priority within the QoS band (higher wins on overlap).
  std::uint16_t priority = 0;
};

class QosPolicy : public App {
 public:
  struct Options {
    std::uint8_t classify_table = 0;
    // Table holding the forwarding decision (must be > classify_table).
    std::uint8_t forward_table = 1;
    std::uint16_t band_base = 25000;
  };

  QosPolicy() : QosPolicy(Options()) {}
  explicit QosPolicy(Options options) : options_(options) {}

  std::string name() const override { return "qos_policy"; }
  void on_switch_up(Dpid dpid, const openflow::FeaturesReply&) override;
  void on_switch_down(Dpid dpid) override;
  void on_error(Dpid dpid, const openflow::Error& err) override;

  // Adds a class; pushed to connected switches immediately.
  void add_class(TrafficClass traffic_class);

  std::size_t class_count() const noexcept { return classes_.size(); }
  // Installs (flow or meter) whose completion resolved with an error,
  // plus southbound errors attributed to this app's switches.
  std::size_t install_failures() const noexcept { return install_failures_; }
  std::size_t errors_seen() const noexcept { return errors_seen_; }

 private:
  void install(Dpid dpid, std::size_t class_index);

  Options options_;
  std::vector<TrafficClass> classes_;
  std::vector<std::uint32_t> class_meter_ids_;  // 0 = no meter
  std::vector<Dpid> connected_;
  std::uint32_t next_meter_id_ = 0x0a000000;
  std::size_t install_failures_ = 0;
  std::size_t errors_seen_ = 0;
};

}  // namespace zen::controller::apps
