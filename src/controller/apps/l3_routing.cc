#include "controller/apps/l3_routing.h"

#include <algorithm>
#include <map>

#include "net/headers.h"
#include "topo/path_engine.h"
#include "util/logging.h"

namespace zen::controller::apps {

void L3Routing::on_switch_up(Dpid dpid, const openflow::FeaturesReply&) {
  // A (re)connected switch starts with empty tables: forget what we think
  // it has so the next recompute reinstalls from scratch.
  installed_.erase(dpid);

  // Punt ARP so the controller can proxy it.
  openflow::FlowMod arp;
  arp.table_id = options_.table_id;
  arp.priority = options_.arp_punt_priority;
  arp.match.eth_type(net::EtherType::kArp);
  arp.instructions = {openflow::ApplyActions{
      {openflow::OutputAction{openflow::Ports::kController, 0xffff}}}};
  controller_->flow_mod(dpid, arp);

  // Table miss punts (first packet of unknown destinations).
  controller_->install_table_miss(dpid, options_.table_id);
  schedule_recompute();
}

void L3Routing::on_link_event(const LinkEvent&) { schedule_recompute(); }

void L3Routing::on_host_discovered(const HostInfo&) { schedule_recompute(); }

void L3Routing::schedule_recompute() {
  if (recompute_pending_) return;
  recompute_pending_ = true;
  controller_->events().schedule_in(options_.recompute_delay_s, [this] {
    recompute_pending_ = false;
    recompute_now();
  });
}

void L3Routing::recompute_now() {
  ++recomputes_;
  const NetworkView& view = controller_->view();
  topo::PathEngine& engine = view.path_engine();

  // Hosts grouped by attachment switch: one cached reverse SPF per
  // distinct dst dpid serves every host behind it, and every non-edge
  // switch shares the same egress-port set for all of them. std::map keeps
  // the install order deterministic (golden-stream tests rely on it).
  std::map<Dpid, std::vector<const HostInfo*>> by_attachment;
  const std::vector<HostInfo> hosts = view.hosts();  // sorted by MAC
  for (const HostInfo& dst : hosts) {
    if (dst.ip == net::Ipv4Address{}) continue;
    if (!view.has_switch(dst.dpid)) continue;
    by_attachment[dst.dpid].push_back(&dst);
  }

  const std::vector<Dpid> switches = view.switch_ids();  // sorted
  std::vector<std::uint32_t> ports;
  for (const auto& [dst_sw, dsts] : by_attachment) {
    for (const Dpid sw : switches) {
      if (sw == dst_sw) {
        // Edge delivery: the only per-host difference is the access port.
        for (const HostInfo* dst : dsts)
          apply_route(sw, dst->ip, {dst->port});
        continue;
      }
      // Transit: equal-cost next hops straight off the SPF DAG, shared by
      // every destination host on dst_sw.
      ports.clear();
      for (const topo::PathEngine::NextHop& hop : engine.next_hops(sw, dst_sw)) {
        if (std::find(ports.begin(), ports.end(), hop.out_port) == ports.end())
          ports.push_back(hop.out_port);
        if (!options_.use_ecmp_groups || ports.size() >= options_.max_ecmp_width)
          break;
      }
      for (const HostInfo* dst : dsts) apply_route(sw, dst->ip, ports);
    }
  }
}

void L3Routing::apply_route(Dpid sw, net::Ipv4Address ip,
                            const std::vector<std::uint32_t>& ports) {
  auto& per_switch = installed_[sw];
  const std::uint32_t key = ip.value();
  const auto it = per_switch.find(key);

  if (ports.empty()) {
    // Destination lost all next-hops: withdraw the route and its group
    // rather than leaving a stale rule (or a leaked Select group) behind.
    if (it == per_switch.end()) return;
    withdraw_route(sw, ip, it->second);
    per_switch.erase(it);
    return;
  }

  std::uint64_t signature = 0xcbf29ce484222325ULL;
  for (const std::uint32_t p : ports)
    signature = (signature ^ p) * 0x100000001b3ULL;
  if (it != per_switch.end() && it->second.signature == signature) return;

  RouteEntry entry = it != per_switch.end() ? it->second : RouteEntry{};
  entry.signature = signature;

  openflow::FlowMod mod;
  mod.table_id = options_.table_id;
  mod.priority = options_.route_priority;
  mod.match.eth_type(net::EtherType::kIpv4).ipv4_dst(ip, 32);

  if (ports.size() == 1) {
    mod.instructions = openflow::output_to(ports.front());
    controller_->flow_mod(sw, mod);
    if (entry.group_id != 0) {
      // Narrowed to a single next hop: the rule no longer references the
      // group, so delete it (bounded group tables across link flaps).
      openflow::GroupMod del;
      del.command = openflow::GroupModCommand::Delete;
      del.group_id = entry.group_id;
      controller_->group_mod(sw, del);
      entry.group_id = 0;
    }
  } else {
    // ECMP: one Select group per (switch, destination), id = the /32
    // itself — stable across recomputes, reused via Modify.
    const std::uint32_t group_id = key;
    openflow::GroupMod gm;
    gm.command = entry.group_id != 0 ? openflow::GroupModCommand::Modify
                                     : openflow::GroupModCommand::Add;
    gm.type = openflow::GroupType::Select;
    gm.group_id = group_id;
    for (const std::uint32_t p : ports)
      gm.buckets.push_back(openflow::Bucket{
          1, openflow::Ports::kAny, {openflow::OutputAction{p, 0xffff}}});
    controller_->group_mod(sw, gm);
    // The flow rule only changes when it wasn't already pointing at this
    // group; membership-only changes stay a pure GroupMod.
    if (entry.group_id == 0) {
      mod.instructions = {
          openflow::ApplyActions{{openflow::GroupAction{group_id}}}};
      controller_->flow_mod(sw, mod);
    }
    entry.group_id = group_id;
  }
  per_switch[key] = entry;
}

void L3Routing::withdraw_route(Dpid sw, net::Ipv4Address ip,
                               const RouteEntry& entry) {
  openflow::FlowMod del;
  del.command = openflow::FlowModCommand::DeleteStrict;
  del.table_id = options_.table_id;
  del.priority = options_.route_priority;
  del.match.eth_type(net::EtherType::kIpv4).ipv4_dst(ip, 32);
  controller_->flow_mod(sw, del);
  if (entry.group_id != 0) {
    openflow::GroupMod gm;
    gm.command = openflow::GroupModCommand::Delete;
    gm.group_id = entry.group_id;
    controller_->group_mod(sw, gm);
  }
}

void L3Routing::flood_to_edge_ports(const openflow::Bytes& data,
                                    Dpid except_dpid,
                                    std::uint32_t except_port) {
  const NetworkView& view = controller_->view();
  for (const Dpid dpid : view.switch_ids()) {
    const auto* features = view.switch_features(dpid);
    if (!features) continue;
    openflow::PacketOut out;
    out.in_port = openflow::Ports::kController;
    for (const auto& port : features->ports) {
      if (view.is_infrastructure_port(dpid, port.port_no)) continue;
      if (dpid == except_dpid && port.port_no == except_port) continue;
      out.actions.push_back(openflow::OutputAction{port.port_no, 0xffff});
    }
    if (out.actions.empty()) continue;
    out.data = data;
    controller_->packet_out(dpid, out);
  }
}

void L3Routing::handle_arp(const PacketInEvent& event) {
  const net::ArpMessage& arp = *event.parsed->arp;
  if (arp.opcode == net::ArpMessage::kRequest) {
    if (const HostInfo* target = controller_->view().host_by_ip(arp.target_ip)) {
      // Proxy reply straight out of the requester's port.
      const net::Bytes reply = net::build_arp_reply(
          target->mac, arp.target_ip, arp.sender_mac, arp.sender_ip);
      openflow::PacketOut out;
      out.in_port = openflow::Ports::kController;
      out.actions = {openflow::OutputAction{event.pin->in_port, 0xffff}};
      out.data = reply;
      controller_->packet_out(event.dpid, out);
      return;
    }
  }
  // Unknown target (or a reply we can't shortcut): edge-flood, loop-free.
  flood_to_edge_ports(event.pin->data, event.dpid, event.pin->in_port);
}

bool L3Routing::on_packet_in(const PacketInEvent& event) {
  if (!event.parsed) return false;
  if (event.parsed->arp) {
    handle_arp(event);
    return true;
  }
  if (event.parsed->ipv4) {
    const NetworkView& view = controller_->view();
    const HostInfo* dst = view.host_by_ip(event.parsed->ipv4->dst);
    if (!dst) {
      // Unknown destination: edge-flood so it reveals itself.
      flood_to_edge_ports(event.pin->data, event.dpid, event.pin->in_port);
      return true;
    }
    // Known destination but no rule yet (installs in flight): forward the
    // triggering packet one hop toward it so first packets are not lost,
    // and make sure routes get (re)computed.
    std::uint32_t out_port = 0;
    if (event.dpid == dst->dpid) {
      out_port = dst->port;
    } else {
      const auto& hops =
          view.path_engine().next_hops(event.dpid, dst->dpid);
      if (!hops.empty()) out_port = hops.front().out_port;
    }
    if (out_port != 0) {
      openflow::PacketOut out;
      out.buffer_id = event.pin->buffer_id;
      out.in_port = event.pin->in_port;
      out.actions = {openflow::OutputAction{out_port, 0xffff}};
      if (event.pin->buffer_id == openflow::kNoBuffer) out.data = event.pin->data;
      controller_->packet_out(event.dpid, out);
    }
    schedule_recompute();
    return true;
  }
  return false;
}

}  // namespace zen::controller::apps
