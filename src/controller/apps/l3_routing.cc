#include "controller/apps/l3_routing.h"

#include "net/headers.h"
#include "topo/paths.h"
#include "util/logging.h"

namespace zen::controller::apps {

void L3Routing::on_switch_up(Dpid dpid, const openflow::FeaturesReply&) {
  // Punt ARP so the controller can proxy it.
  openflow::FlowMod arp;
  arp.table_id = options_.table_id;
  arp.priority = options_.arp_punt_priority;
  arp.match.eth_type(net::EtherType::kArp);
  arp.instructions = {openflow::ApplyActions{
      {openflow::OutputAction{openflow::Ports::kController, 0xffff}}}};
  controller_->flow_mod(dpid, arp);

  // Table miss punts (first packet of unknown destinations).
  controller_->install_table_miss(dpid, options_.table_id);
  schedule_recompute();
}

void L3Routing::on_link_event(const LinkEvent&) { schedule_recompute(); }

void L3Routing::on_host_discovered(const HostInfo&) { schedule_recompute(); }

void L3Routing::schedule_recompute() {
  if (recompute_pending_) return;
  recompute_pending_ = true;
  controller_->events().schedule_in(options_.recompute_delay_s, [this] {
    recompute_pending_ = false;
    recompute_now();
  });
}

void L3Routing::recompute_now() {
  ++recomputes_;
  const NetworkView& view = controller_->view();
  const topo::Topology topo = view.as_topology(/*include_hosts=*/false);

  for (const HostInfo& dst : view.hosts()) {
    if (dst.ip == net::Ipv4Address{}) continue;
    if (!view.has_switch(dst.dpid)) continue;

    // Shortest-path tree toward the destination's attachment switch.
    const topo::SpfResult spf = topo::dijkstra(topo, dst.dpid);

    for (const Dpid sw : view.switch_ids()) {
      std::vector<std::uint32_t> out_ports;

      if (sw == dst.dpid) {
        out_ports.push_back(dst.port);
      } else if (spf.reached(sw)) {
        if (options_.use_ecmp_groups) {
          for (const topo::Path& path : topo::equal_cost_paths(topo, sw, dst.dpid, 8)) {
            if (path.links.empty()) continue;
            const topo::Link* first = topo.link(path.links.front());
            const std::uint32_t port = first->port_at(sw);
            if (std::find(out_ports.begin(), out_ports.end(), port) ==
                out_ports.end())
              out_ports.push_back(port);
          }
        } else {
          const topo::Path path = topo::shortest_path(topo, sw, dst.dpid);
          if (!path.links.empty())
            out_ports.push_back(topo.link(path.links.front())->port_at(sw));
        }
      }
      if (out_ports.empty()) continue;

      // Skip if this switch already has the same next hops installed.
      std::uint64_t signature = 0xcbf29ce484222325ULL;
      for (const std::uint32_t p : out_ports)
        signature = (signature ^ p) * 0x100000001b3ULL;
      auto& per_switch = installed_[sw];
      const std::uint32_t ip_key = dst.ip.value();
      if (const auto it = per_switch.find(ip_key);
          it != per_switch.end() && it->second == signature)
        continue;
      per_switch[ip_key] = signature;

      openflow::FlowMod mod;
      mod.table_id = options_.table_id;
      mod.priority = options_.route_priority;
      mod.match.eth_type(net::EtherType::kIpv4).ipv4_dst(dst.ip, 32);

      if (out_ports.size() == 1) {
        mod.instructions = openflow::output_to(out_ports.front());
      } else {
        // ECMP: one Select group per (switch, destination).
        const std::uint32_t group_id = ++next_group_id_[sw];
        openflow::GroupMod gm;
        gm.command = openflow::GroupModCommand::Add;
        gm.type = openflow::GroupType::Select;
        gm.group_id = group_id;
        for (const std::uint32_t p : out_ports)
          gm.buckets.push_back(
              openflow::Bucket{1, openflow::Ports::kAny,
               {openflow::OutputAction{p, 0xffff}}});
        controller_->group_mod(sw, gm);
        mod.instructions = {
            openflow::ApplyActions{{openflow::GroupAction{group_id}}}};
      }
      controller_->flow_mod(sw, mod);
    }
  }
}

void L3Routing::flood_to_edge_ports(const openflow::Bytes& data,
                                    Dpid except_dpid,
                                    std::uint32_t except_port) {
  const NetworkView& view = controller_->view();
  for (const Dpid dpid : view.switch_ids()) {
    const auto* features = view.switch_features(dpid);
    if (!features) continue;
    openflow::PacketOut out;
    out.in_port = openflow::Ports::kController;
    for (const auto& port : features->ports) {
      if (view.is_infrastructure_port(dpid, port.port_no)) continue;
      if (dpid == except_dpid && port.port_no == except_port) continue;
      out.actions.push_back(openflow::OutputAction{port.port_no, 0xffff});
    }
    if (out.actions.empty()) continue;
    out.data = data;
    controller_->packet_out(dpid, out);
  }
}

void L3Routing::handle_arp(const PacketInEvent& event) {
  const net::ArpMessage& arp = *event.parsed->arp;
  if (arp.opcode == net::ArpMessage::kRequest) {
    if (const HostInfo* target = controller_->view().host_by_ip(arp.target_ip)) {
      // Proxy reply straight out of the requester's port.
      const net::Bytes reply = net::build_arp_reply(
          target->mac, arp.target_ip, arp.sender_mac, arp.sender_ip);
      openflow::PacketOut out;
      out.in_port = openflow::Ports::kController;
      out.actions = {openflow::OutputAction{event.pin->in_port, 0xffff}};
      out.data = reply;
      controller_->packet_out(event.dpid, out);
      return;
    }
  }
  // Unknown target (or a reply we can't shortcut): edge-flood, loop-free.
  flood_to_edge_ports(event.pin->data, event.dpid, event.pin->in_port);
}

bool L3Routing::on_packet_in(const PacketInEvent& event) {
  if (!event.parsed) return false;
  if (event.parsed->arp) {
    handle_arp(event);
    return true;
  }
  if (event.parsed->ipv4) {
    const NetworkView& view = controller_->view();
    const HostInfo* dst = view.host_by_ip(event.parsed->ipv4->dst);
    if (!dst) {
      // Unknown destination: edge-flood so it reveals itself.
      flood_to_edge_ports(event.pin->data, event.dpid, event.pin->in_port);
      return true;
    }
    // Known destination but no rule yet (installs in flight): forward the
    // triggering packet one hop toward it so first packets are not lost,
    // and make sure routes get (re)computed.
    std::uint32_t out_port = 0;
    if (event.dpid == dst->dpid) {
      out_port = dst->port;
    } else {
      const topo::Topology topo = view.as_topology(false);
      const topo::Path path = topo::shortest_path(topo, event.dpid, dst->dpid);
      if (!path.links.empty())
        out_port = topo.link(path.links.front())->port_at(event.dpid);
    }
    if (out_port != 0) {
      openflow::PacketOut out;
      out.buffer_id = event.pin->buffer_id;
      out.in_port = event.pin->in_port;
      out.actions = {openflow::OutputAction{out_port, 0xffff}};
      if (event.pin->buffer_id == openflow::kNoBuffer) out.data = event.pin->data;
      controller_->packet_out(event.dpid, out);
    }
    schedule_recompute();
    return true;
  }
  return false;
}

}  // namespace zen::controller::apps
