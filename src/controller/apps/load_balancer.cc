#include "controller/apps/load_balancer.h"

#include "net/headers.h"
#include "topo/path_engine.h"

namespace zen::controller::apps {

LoadBalancer::LoadBalancer(net::Ipv4Address vip, std::vector<Backend> backends,
                           std::uint8_t table_id)
    : vip_(vip),
      virtual_mac_(net::MacAddress({0x02, 0x1b, 0, 0, 0, 1})),
      backends_(std::move(backends)),
      per_backend_flows_(backends_.size(), 0),
      table_id_(table_id) {}

std::size_t LoadBalancer::pick_backend(const net::ParsedPacket& parsed) const {
  // Hash the 5-tuple (in_port excluded so retransmits land identically).
  net::FlowKey key = parsed.flow_key(0);
  key.eth_src = key.eth_dst = 0;  // L2 fields don't identify the flow
  return key.hash() % backends_.size();
}

bool LoadBalancer::on_packet_in(const PacketInEvent& event) {
  if (!event.parsed || backends_.empty()) return false;
  const auto& parsed = *event.parsed;
  const auto& pin = *event.pin;

  // Proxy-ARP for the VIP.
  if (parsed.arp && parsed.arp->opcode == net::ArpMessage::kRequest &&
      parsed.arp->target_ip == vip_) {
    openflow::PacketOut out;
    out.in_port = openflow::Ports::kController;
    out.actions = {openflow::OutputAction{pin.in_port, 0xffff}};
    out.data = net::build_arp_reply(virtual_mac_, vip_, parsed.arp->sender_mac,
                                    parsed.arp->sender_ip);
    controller_->packet_out(event.dpid, out);
    return true;
  }

  if (!parsed.ipv4 || parsed.ipv4->dst != vip_) return false;

  const std::size_t index = pick_backend(parsed);
  const Backend& backend = backends_[index];
  const NetworkView& view = controller_->view();
  const HostInfo* backend_host = view.host_by_ip(backend.ip);
  if (!backend_host) return true;  // backend not learned yet; drop politely

  topo::PathEngine& engine = view.path_engine();

  // Forward path: this switch toward the backend (cached reverse SPF).
  std::uint32_t out_port = 0;
  if (event.dpid == backend_host->dpid) {
    out_port = backend_host->port;
  } else {
    const auto& hops = engine.next_hops(event.dpid, backend_host->dpid);
    if (hops.empty()) return true;
    out_port = hops.front().out_port;
  }

  openflow::ActionList dnat = {
      openflow::SetEthDstAction{backend_host->mac},
      openflow::SetIpv4DstAction{backend.ip},
      openflow::OutputAction{out_port, 0xffff},
  };

  // Per-flow DNAT rule at the client-facing switch.
  openflow::FlowMod fwd;
  fwd.table_id = table_id_;
  fwd.priority = rule_priority_;
  fwd.idle_timeout = idle_timeout_s_;
  fwd.match.eth_type(net::EtherType::kIpv4)
      .ipv4_src(parsed.ipv4->src)
      .ipv4_dst(vip_)
      .ip_proto(parsed.ipv4->protocol);
  if (parsed.tcp) fwd.match.l4_src(parsed.tcp->src_port).l4_dst(parsed.tcp->dst_port);
  if (parsed.udp) fwd.match.l4_src(parsed.udp->src_port).l4_dst(parsed.udp->dst_port);
  fwd.instructions = {openflow::ApplyActions{dnat}};
  controller_->flow_mod(event.dpid, fwd);

  // Reverse SNAT rule at the backend's switch: backend -> client rewrites
  // the source back to the VIP. Forwarding toward the client rides the
  // routing app's rules after a Goto is not available cross-app, so the
  // reverse rule outputs toward the client explicitly.
  const HostInfo* client = view.host_by_ip(parsed.ipv4->src);
  if (client) {
    std::uint32_t rev_port = 0;
    if (backend_host->dpid == client->dpid) {
      rev_port = client->port;
    } else {
      const auto& rev = engine.next_hops(backend_host->dpid, client->dpid);
      if (!rev.empty()) rev_port = rev.front().out_port;
    }
    if (rev_port != 0) {
      openflow::FlowMod snat;
      snat.table_id = table_id_;
      snat.priority = rule_priority_;
      snat.idle_timeout = idle_timeout_s_;
      snat.match.eth_type(net::EtherType::kIpv4)
          .ipv4_src(backend.ip)
          .ipv4_dst(parsed.ipv4->src)
          .ip_proto(parsed.ipv4->protocol);
      if (parsed.tcp)
        snat.match.l4_src(parsed.tcp->dst_port).l4_dst(parsed.tcp->src_port);
      if (parsed.udp)
        snat.match.l4_src(parsed.udp->dst_port).l4_dst(parsed.udp->src_port);
      snat.instructions = {openflow::ApplyActions{
          {openflow::SetIpv4SrcAction{vip_},
           openflow::SetEthSrcAction{virtual_mac_},
           openflow::OutputAction{rev_port, 0xffff}}}};
      controller_->flow_mod(backend_host->dpid, snat);
    }
  }

  // Push the triggering packet through the DNAT path.
  openflow::PacketOut out;
  out.buffer_id = pin.buffer_id;
  out.in_port = pin.in_port;
  out.actions = dnat;
  if (pin.buffer_id == openflow::kNoBuffer) out.data = pin.data;
  controller_->packet_out(event.dpid, out);

  ++flows_assigned_;
  ++per_backend_flows_[index];
  return true;
}

}  // namespace zen::controller::apps
