// ReactiveForwarding: on-demand path installation (the ONOS "fwd" app).
//
// Unlike L3Routing (which proactively installs routes for every known host
// on every switch), this app reacts to each PacketIn: it computes the
// shortest path for that (src, dst) pair, installs idle-timing-out rules
// along it — on every switch of the path at once — and forwards the
// triggering packet. Rule state thus tracks the active traffic matrix
// rather than the host population: fewer rules, more controller load.
#pragma once

#include "controller/controller.h"

namespace zen::controller::apps {

class ReactiveForwarding : public App {
 public:
  struct Options {
    std::uint16_t rule_priority = 120;
    std::uint16_t idle_timeout_s = 10;
    std::uint8_t table_id = 0;
    bool match_l4 = false;  // true: per-5-tuple rules instead of per-pair
  };

  ReactiveForwarding() : ReactiveForwarding(Options()) {}
  explicit ReactiveForwarding(Options options) : options_(options) {}

  std::string name() const override { return "reactive_forwarding"; }
  void on_switch_up(Dpid dpid, const openflow::FeaturesReply&) override;
  bool on_packet_in(const PacketInEvent& event) override;

  std::uint64_t paths_installed() const noexcept { return paths_installed_; }

 private:
  void flood_to_edge_ports(const openflow::Bytes& data, Dpid except_dpid,
                           std::uint32_t except_port);

  Options options_;
  std::uint64_t paths_installed_ = 0;
};

}  // namespace zen::controller::apps
