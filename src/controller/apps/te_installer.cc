#include "controller/apps/te_installer.h"

#include <cmath>

#include "controller/flow_rule_store.h"
#include "net/headers.h"
#include "util/logging.h"

namespace zen::controller::apps {

namespace {

// Per (demand, switch): the weighted next-hop ports TE wants.
struct NextHops {
  std::map<std::uint32_t, double> port_bps;  // out port -> rate via it
};

}  // namespace

std::size_t TeInstaller::install(const topo::Topology& topo,
                                 const te::Allocation& alloc,
                                 const SiteAddresses& sites) {
  clear();

  for (const auto& [key, shares] : alloc.shares) {
    const auto src_it = sites.find(key.src);
    const auto dst_it = sites.find(key.dst);
    if (src_it == sites.end() || dst_it == sites.end()) continue;

    // Gather weighted next hops per switch along all of this demand's paths.
    std::map<topo::NodeId, NextHops> hops;
    for (const auto& share : shares) {
      if (share.bps <= 0) continue;
      for (std::size_t i = 0; i < share.path.links.size(); ++i) {
        const topo::NodeId sw = share.path.nodes[i];
        const topo::Link* link = topo.link(share.path.links[i]);
        if (!link) continue;
        hops[sw].port_bps[link->port_at(sw)] += share.bps;
      }
    }
    // Destination switch: hand off to the site host port, if attached.
    const topo::NodeId dst_sw = key.dst;
    for (const topo::Link* link : topo.links_of(dst_sw)) {
      if (topo::is_host_id(link->other(dst_sw))) {
        hops[dst_sw].port_bps.clear();
        hops[dst_sw].port_bps[link->port_at(dst_sw)] = 1.0;
        break;
      }
    }

    for (const auto& [sw, next] : hops) {
      if (next.port_bps.empty()) continue;

      openflow::FlowMod mod;
      mod.table_id = options_.table_id;
      mod.priority = options_.priority;
      mod.match.eth_type(net::EtherType::kIpv4)
          .ipv4_src(src_it->second, 32)
          .ipv4_dst(dst_it->second, 32);

      if (next.port_bps.size() == 1) {
        mod.instructions = openflow::output_to(next.port_bps.begin()->first);
      } else {
        // Weighted split: one Select group, bucket weights proportional to
        // the allocated rates (scaled to 1..1000).
        double total = 0;
        for (const auto& [port, bps] : next.port_bps) total += bps;
        openflow::GroupMod gm;
        gm.command = openflow::GroupModCommand::Add;
        gm.type = openflow::GroupType::Select;
        gm.group_id = options_.group_id_base + next_group_++;
        for (const auto& [port, bps] : next.port_bps) {
          const auto weight = static_cast<std::uint16_t>(
              std::max(1.0, std::round(bps / total * 1000.0)));
          gm.buckets.push_back(
              openflow::Bucket{weight, openflow::Ports::kAny,
               {openflow::OutputAction{port, 0xffff}}});
        }
        controller_->rule_store().add_group(sw, gm);
        groups_.push_back(GroupRef{sw, gm.group_id});
        mod.instructions = {
            openflow::ApplyActions{{openflow::GroupAction{gm.group_id}}}};
      }
      mod.cookie = options_.cookie;
      controller_->rule_store().install(
          sw, mod, [this](const std::optional<openflow::Error>& err) {
            if (err) ++install_failures_;
          });
      rules_.push_back(RuleRef{sw, std::move(mod)});
    }
  }
  return rules_.size();
}

void TeInstaller::install_plan(const topo::Topology& topo, te::UpdatePlan plan,
                               const SiteAddresses& sites, double dwell_s) {
  if (plan.stages.empty()) return;
  // Apply stage 0 immediately; schedule the rest.
  // Copy the pieces needed into the scheduled closures (the plan itself is
  // moved into a shared holder so stages survive this call).
  auto holder = std::make_shared<te::UpdatePlan>(std::move(plan));
  auto topo_copy = std::make_shared<topo::Topology>(topo);
  auto sites_copy = std::make_shared<SiteAddresses>(sites);

  install(*topo_copy, holder->stages.front(), *sites_copy);
  stages_applied_ = 1;

  for (std::size_t i = 1; i < holder->stages.size(); ++i) {
    controller_->events().schedule_in(
        dwell_s * static_cast<double>(i),
        [this, holder, topo_copy, sites_copy, i] {
          install(*topo_copy, holder->stages[i], *sites_copy);
          ++stages_applied_;
        });
  }
}

void TeInstaller::clear() {
  auto& store = controller_->rule_store();
  for (const auto& rule : rules_) {
    openflow::FlowMod del;
    del.table_id = rule.mod.table_id;
    del.command = openflow::FlowModCommand::DeleteStrict;
    del.priority = rule.mod.priority;
    del.match = rule.mod.match;
    store.remove(rule.dpid, del);
  }
  rules_.clear();
  for (const auto& group : groups_)
    store.remove_group(group.dpid, group.group_id);
  groups_.clear();
}

}  // namespace zen::controller::apps
