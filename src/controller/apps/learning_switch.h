// Reactive L2 learning switch (the canonical first SDN app).
//
// Learns MAC -> port per switch from PacketIns. Known destinations get a
// flow rule (eth_dst match, idle timeout) plus a PacketOut of the buffered
// frame; unknown destinations are flooded. Flooding uses kFlood, so this
// app is intended for loop-free topologies (trees/lines); multi-path
// fabrics should use L3Routing instead.
#pragma once

#include <unordered_map>

#include "controller/controller.h"

namespace zen::controller::apps {

class LearningSwitch : public App {
 public:
  struct Options {
    std::uint16_t rule_priority = 10;
    std::uint16_t idle_timeout_s = 60;
    std::uint8_t table_id = 0;
    // Send installs tracked (barrier-acked with retransmit) instead of
    // fire-and-forget. Off by default: the classic app is best-effort, and
    // the acked path changes message counts that goldens depend on. Turned
    // on by the observability example so flow_setup traces include the
    // full encode -> apply -> barrier-ack leg.
    bool transactional = false;
  };

  LearningSwitch() : LearningSwitch(Options()) {}
  explicit LearningSwitch(Options options) : options_(options) {}

  std::string name() const override { return "learning_switch"; }
  void on_switch_up(Dpid dpid, const openflow::FeaturesReply&) override;
  bool on_packet_in(const PacketInEvent& event) override;

  std::size_t table_size(Dpid dpid) const;

 private:
  Options options_;
  std::unordered_map<Dpid, std::unordered_map<net::MacAddress, std::uint32_t>>
      mac_tables_;
};

}  // namespace zen::controller::apps
