#include "controller/apps/telemetry_collector.h"

#include <algorithm>

#include "net/addr.h"
#include "obs/obs.h"
#include "util/strings.h"

namespace zen::controller::apps {

namespace {

std::string ip_label(std::uint32_t src, std::uint32_t dst) {
  return util::format("src=\"%s\",dst=\"%s\"",
                      net::Ipv4Address(src).to_string().c_str(),
                      net::Ipv4Address(dst).to_string().c_str());
}

}  // namespace

std::string TelemetryCollector::path_label(
    const std::vector<std::uint64_t>& switches) {
  std::string label;
  for (std::size_t i = 0; i < switches.size(); ++i) {
    if (i) label += '>';
    label += std::to_string(switches[i]);
  }
  return label;
}

void TelemetryCollector::on_experimenter(Dpid,
                                         const openflow::Experimenter& msg) {
  if (msg.experimenter_id != telemetry::kExperimenterId) return;
  auto batch = telemetry::parse_export_message(msg);
  if (!batch.ok()) {
    ++decode_errors_;
    return;
  }
  ++batches_;
  obs::MetricsRegistry::global()
      .counter("zen_telemetry_collector_batches_total", "",
               "Export batches decoded by the collector")
      .inc();
  ingest(batch.value());
}

void TelemetryCollector::ingest(const telemetry::ExportBatch& batch) {
  auto& reg = obs::MetricsRegistry::global();

  for (const telemetry::FlowRecord& f : batch.flows) {
    FlowTotals& totals = flows_[f.key];
    totals.key = f.key;
    totals.packets += f.packets;
    totals.bytes += f.bytes;
    if (f.key.ipv4_src != 0 || f.key.ipv4_dst != 0) {
      reg.counter("zen_telemetry_flow_bytes_total",
                  ip_label(f.key.ipv4_src, f.key.ipv4_dst),
                  "Bytes accounted to sampled flows, by endpoint pair")
          .inc(f.bytes);
    }
  }
  reg.gauge("zen_telemetry_sampled_flows", "",
            "Distinct sampled flows seen by the collector")
      .set(static_cast<double>(flows_.size()));

  for (const telemetry::PathRecord& p : batch.paths) {
    if (p.hops.empty()) continue;
    ++paths_received_;
    std::vector<std::uint64_t> switches;
    switches.reserve(p.hops.size());
    std::uint32_t max_queue = 0;
    for (const net::TelemetryHop& hop : p.hops) {
      switches.push_back(hop.switch_id);
      max_queue = std::max(max_queue, hop.queue_depth_bytes);
    }
    const std::uint64_t latency_ns =
        p.hops.back().timestamp_ns - p.hops.front().timestamp_ns;

    const std::string label = path_label(switches);
    PathStats& stats = paths_[label];
    stats.switches = switches;
    stats.latency_ns.record(static_cast<double>(latency_ns));
    stats.max_queue_bytes.record(static_cast<double>(max_queue));
    ++stats.packets;

    reg.histo("zen_telemetry_path_latency_ns",
              util::format("path=\"%s\"", label.c_str()),
              "First-hop to last-hop virtual latency of sampled packets")
        .record(static_cast<double>(latency_ns));
    reg.histo("zen_telemetry_path_max_queue_bytes",
              util::format("path=\"%s\"", label.c_str()),
              "Worst egress backlog a sampled packet saw along its path")
        .record(static_cast<double>(max_queue));
  }

  // Trace counter tracks: path/flow totals over virtual time.
  ZEN_TRACE_COUNTER("telemetry_paths", "telemetry",
                    static_cast<double>(paths_received_));
  ZEN_TRACE_COUNTER("telemetry_sampled_flows", "telemetry",
                    static_cast<double>(flows_.size()));
}

std::vector<TelemetryCollector::FlowTotals> TelemetryCollector::top_flows()
    const {
  std::vector<FlowTotals> all;
  all.reserve(flows_.size());
  for (const auto& [key, totals] : flows_) all.push_back(totals);
  std::sort(all.begin(), all.end(),
            [](const FlowTotals& a, const FlowTotals& b) {
              if (a.bytes != b.bytes) return a.bytes > b.bytes;
              return a.key.hash() < b.key.hash();  // deterministic tiebreak
            });
  if (all.size() > options_.top_k) all.resize(options_.top_k);
  return all;
}

std::string TelemetryCollector::report_json() const {
  std::string out = "{\n  \"sampled_flows\": ";
  out += std::to_string(flows_.size());
  out += ",\n  \"batches\": " + std::to_string(batches_);
  out += ",\n  \"paths\": [";
  bool first = true;
  for (const auto& [label, stats] : paths_) {
    if (!first) out += ',';
    first = false;
    out += util::format(
        "\n    {\"path\": \"%s\", \"packets\": %llu, "
        "\"latency_ns\": {\"p50\": %.0f, \"p99\": %.0f, \"max\": %.0f}, "
        "\"max_queue_bytes\": {\"p50\": %.0f, \"p99\": %.0f}}",
        label.c_str(), static_cast<unsigned long long>(stats.packets),
        stats.latency_ns.percentile(0.5), stats.latency_ns.percentile(0.99),
        stats.latency_ns.max(), stats.max_queue_bytes.percentile(0.5),
        stats.max_queue_bytes.percentile(0.99));
  }
  out += "\n  ],\n  \"top_flows\": [";
  first = true;
  for (const FlowTotals& f : top_flows()) {
    if (!first) out += ',';
    first = false;
    out += util::format(
        "\n    {\"src\": \"%s\", \"dst\": \"%s\", \"l4_dst\": %u, "
        "\"packets\": %llu, \"bytes\": %llu}",
        net::Ipv4Address(f.key.ipv4_src).to_string().c_str(),
        net::Ipv4Address(f.key.ipv4_dst).to_string().c_str(),
        static_cast<unsigned>(f.key.l4_dst),
        static_cast<unsigned long long>(f.packets),
        static_cast<unsigned long long>(f.bytes));
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace zen::controller::apps
