// TelemetryCollector: controller-side sink for zen_telemetry exports.
//
// Consumes Experimenter export batches from the fabric, reassembles INT hop
// records into per-path latency / queue-depth distributions, and keeps a
// per-flow byte ledger with a top-K heavy-hitter view. Everything it learns
// is also pushed into the zen_obs registry (zen_telemetry_path_latency_ns,
// zen_telemetry_flow_bytes{src,dst}, ...) and emitted as trace counter
// tracks, so a metrics scrape or a trace viewer sees the fabric's paths
// without touching the app directly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "controller/controller.h"
#include "telemetry/export.h"
#include "util/histogram.h"

namespace zen::controller::apps {

class TelemetryCollector : public App {
 public:
  struct Options {
    std::size_t top_k = 10;  // heavy-hitter table size
  };

  // One distinct switch-path through the fabric (e.g. "3>1>4" for
  // leaf 3 -> spine 1 -> leaf 4) and the distributions measured over it.
  struct PathStats {
    std::vector<std::uint64_t> switches;  // hop order as traversed
    util::Histogram latency_ns;           // last hop ts - first hop ts
    util::Histogram max_queue_bytes;      // worst backlog seen along the path
    std::uint64_t packets = 0;
  };

  struct FlowTotals {
    net::FlowKey key;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };

  TelemetryCollector() : TelemetryCollector(Options()) {}
  explicit TelemetryCollector(Options options) : options_(options) {}

  std::string name() const override { return "telemetry_collector"; }
  void on_experimenter(Dpid dpid, const openflow::Experimenter& msg) override;

  // ---- aggregated state ----
  std::uint64_t batches_received() const noexcept { return batches_; }
  std::uint64_t decode_errors() const noexcept { return decode_errors_; }
  std::uint64_t paths_received() const noexcept { return paths_received_; }
  // Distinct sampled flows seen across all exports.
  std::size_t sampled_flow_count() const noexcept { return flows_.size(); }

  // Keyed by the rendered path string ("3>1>4").
  const std::map<std::string, PathStats>& paths() const noexcept {
    return paths_;
  }

  // Heaviest flows by bytes, largest first, at most Options::top_k.
  std::vector<FlowTotals> top_flows() const;

  // JSON report (paths with p50/p99, heavy hitters) for CI artifacts.
  std::string report_json() const;

  static std::string path_label(const std::vector<std::uint64_t>& switches);

 private:
  void ingest(const telemetry::ExportBatch& batch);

  Options options_;
  std::uint64_t batches_ = 0;
  std::uint64_t decode_errors_ = 0;
  std::uint64_t paths_received_ = 0;
  std::map<std::string, PathStats> paths_;
  std::unordered_map<net::FlowKey, FlowTotals> flows_;
};

}  // namespace zen::controller::apps
