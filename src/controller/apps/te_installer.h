// TeInstaller: programs an offline TE allocation into the fabric
// (the B4/SWAN "TE server -> switches" step).
//
// An Allocation maps (src site, dst site) demands onto weighted path sets.
// For each demand this app walks every allocated path and installs, at each
// switch, a rule matching (site-src/32, site-dst/32). Where paths diverge,
// the out-ports become buckets of a Select group weighted by the path
// rates, so flow-level hashing realizes the intended split.
//
// install_plan() applies a congestion-free UpdatePlan stage by stage on the
// virtual clock, dwelling between stages — the zUpdate/SWAN execution loop.
#pragma once

#include <map>

#include "controller/controller.h"
#include "te/update_planner.h"

namespace zen::controller::apps {

class TeInstaller : public App {
 public:
  struct Options {
    std::uint16_t priority = 600;  // above plain routing
    std::uint8_t table_id = 0;
    std::uint32_t group_id_base = 0x7e000000;
    // Cookie stamped on every TE rule: routes installs through the
    // FlowRuleStore so crash audits repair (and orphan-collect) TE state.
    std::uint64_t cookie = 0x7e000000;
  };

  // Site traffic is identified by the site's representative host address
  // (one host per PoP in the WAN topologies).
  using SiteAddresses = std::map<topo::NodeId, net::Ipv4Address>;

  TeInstaller() : TeInstaller(Options()) {}
  explicit TeInstaller(Options options) : options_(options) {}

  std::string name() const override { return "te_installer"; }

  // Replaces any previously installed allocation. `topo` must be the
  // topology the allocation's link ids refer to (the physical one).
  // Returns the number of flow rules installed.
  std::size_t install(const topo::Topology& topo, const te::Allocation& alloc,
                      const SiteAddresses& sites);

  // Applies plan stages left to right, `dwell_s` apart, starting now.
  // The final stage remains installed.
  void install_plan(const topo::Topology& topo, te::UpdatePlan plan,
                    const SiteAddresses& sites, double dwell_s);

  // Removes all rules/groups this app installed.
  void clear();

  std::size_t installed_rule_count() const noexcept { return rules_.size(); }
  std::size_t stages_applied() const noexcept { return stages_applied_; }
  // Installs whose completion came back as an error (or timed out).
  std::size_t install_failures() const noexcept { return install_failures_; }

 private:
  struct RuleRef {
    Dpid dpid;
    openflow::FlowMod mod;
  };
  struct GroupRef {
    Dpid dpid;
    std::uint32_t group_id;
  };

  Options options_;
  std::vector<RuleRef> rules_;
  std::vector<GroupRef> groups_;
  std::uint32_t next_group_ = 0;
  std::size_t stages_applied_ = 0;
  std::size_t install_failures_ = 0;
};

}  // namespace zen::controller::apps
