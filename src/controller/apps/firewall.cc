#include "controller/apps/firewall.h"

#include <algorithm>

namespace zen::controller::apps {

void Firewall::on_switch_up(Dpid dpid, const openflow::FeaturesReply&) {
  // Reconnects re-fire on_switch_up: reinstall, but don't double-track.
  if (std::find(connected_.begin(), connected_.end(), dpid) ==
      connected_.end())
    connected_.push_back(dpid);
  for (const auto& rule : rules_) install(dpid, rule);
}

void Firewall::on_switch_down(Dpid dpid) { std::erase(connected_, dpid); }

void Firewall::add_rule(AclRule rule) {
  for (const Dpid dpid : connected_) install(dpid, rule);
  rules_.push_back(std::move(rule));
}

void Firewall::clear_rules() {
  for (const Dpid dpid : connected_) {
    for (const auto& rule : rules_) {
      openflow::FlowMod mod;
      mod.table_id = options_.acl_table;
      mod.command = openflow::FlowModCommand::DeleteStrict;
      mod.priority = static_cast<std::uint16_t>(options_.band_base + rule.priority);
      mod.match = rule.match;
      controller_->flow_mod(dpid, mod);
    }
  }
  rules_.clear();
}

void Firewall::install(Dpid dpid, const AclRule& rule) {
  openflow::FlowMod mod;
  mod.table_id = options_.acl_table;
  mod.priority = static_cast<std::uint16_t>(options_.band_base + rule.priority);
  mod.match = rule.match;
  if (rule.allow && options_.next_table > options_.acl_table) {
    mod.instructions = {openflow::GotoTable{options_.next_table}};
  } else if (!rule.allow) {
    mod.instructions = {};  // drop
  } else {
    // Single-table allow cannot "fall through" to routing under OpenFlow
    // semantics (a matched rule ends evaluation), so allow-overrides-deny
    // policies require the two-table pipeline (next_table > acl_table).
    // A plain allow with no shadowing deny needs no rule at all.
    return;
  }
  controller_->flow_mod(dpid, mod,
                        [this](const std::optional<openflow::Error>& err) {
                          if (err) ++install_failures_;
                        });
}

}  // namespace zen::controller::apps
