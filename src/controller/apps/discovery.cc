#include "controller/apps/discovery.h"

#include "net/headers.h"

namespace zen::controller::apps {

void Discovery::init(Controller& controller) {
  App::init(controller);
}

void Discovery::on_switch_up(Dpid dpid, const openflow::FeaturesReply&) {
  // Punt discovery frames to the controller at high priority.
  openflow::FlowMod mod;
  mod.table_id = options_.table_id;
  mod.priority = options_.punt_priority;
  mod.match.eth_type(net::EtherType::kLldp);
  mod.instructions = {openflow::ApplyActions{
      {openflow::OutputAction{openflow::Ports::kController, 0xffff}}}};
  controller_->flow_mod(dpid, mod);

  // Probe shortly after connect (debounced so a burst of switch-ups maps
  // to one probe round) — waiting a full interval would leave a window
  // where no links are known and edge-flooding apps can storm the fabric.
  if (!initial_probe_pending_) {
    initial_probe_pending_ = true;
    controller_->events().schedule_in(0.05, [this] {
      initial_probe_pending_ = false;
      probe_now();
    });
  }
  if (!timer_running_) {
    timer_running_ = true;
    schedule_probe();
  }
}

void Discovery::schedule_probe() {
  controller_->events().schedule_in(options_.probe_interval_s, [this] {
    if (options_.stop_after_s > 0 && controller_->now() > options_.stop_after_s) {
      timer_running_ = false;
      return;
    }
    probe_now();
    if (options_.link_timeout_s > 0) age_links();
    schedule_probe();
  });
}

void Discovery::age_links() {
  const double cutoff = controller_->now() - options_.link_timeout_s;
  // Collect first: notify_link_event may re-enter the view via apps.
  std::vector<DiscoveredLink> stale;
  for (const auto& link : controller_->view().links())
    if (link.up && link.last_seen < cutoff) stale.push_back(link);
  for (const auto& link : stale) {
    // mark_links_down by one endpoint covers the record.
    for (const auto& affected :
         controller_->view().mark_links_down(link.a, link.a_port)) {
      controller_->notify_link_event(LinkEvent{affected, false});
    }
  }
}

void Discovery::probe_now() {
  for (const Dpid dpid : controller_->view().switch_ids()) {
    const auto* features = controller_->view().switch_features(dpid);
    if (!features) continue;
    for (const auto& port : features->ports) {
      openflow::PacketOut out;
      out.in_port = openflow::Ports::kController;
      out.actions = {openflow::OutputAction{port.port_no, 0xffff}};
      out.data = net::build_discovery_frame(port.hw_addr, dpid, port.port_no);
      controller_->packet_out(dpid, out);
    }
  }
}

bool Discovery::on_packet_in(const PacketInEvent& event) {
  const auto info = net::parse_discovery_frame(event.pin->data);
  if (!info) return false;  // not ours

  const bool changed = controller_->view().learn_link(
      info->datapath_id, info->port_no, event.dpid, event.pin->in_port,
      controller_->now());
  if (changed) {
    // Find the canonical record to report.
    for (const auto& link : controller_->view().links()) {
      const bool match =
          (link.a == info->datapath_id && link.a_port == info->port_no &&
           link.b == event.dpid && link.b_port == event.pin->in_port) ||
          (link.b == info->datapath_id && link.b_port == info->port_no &&
           link.a == event.dpid && link.a_port == event.pin->in_port);
      if (match) {
        controller_->notify_link_event(LinkEvent{link, true});
        break;
      }
    }
  }
  return true;  // discovery frames never reach other apps
}

}  // namespace zen::controller::apps
