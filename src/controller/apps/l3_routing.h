// Proactive shortest-path L3 routing with proxy ARP (ONOS-style fwd).
//
// Maintains per-destination-host /32 routes on every switch, recomputed
// whenever the learned topology or host set changes. ARP requests are
// punted and answered by the controller from its host table (proxy ARP);
// unknown targets are flooded to edge ports only, so multi-path fabrics
// stay loop-free. With ECMP enabled, equal-cost next hops are programmed
// as a Select group per (switch, destination).
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "controller/controller.h"

namespace zen::controller::apps {

class L3Routing : public App {
 public:
  struct Options {
    std::uint16_t route_priority = 100;
    std::uint16_t arp_punt_priority = 900;
    std::uint8_t table_id = 0;
    bool use_ecmp_groups = false;
    // Debounce: recompute at most once per this interval.
    double recompute_delay_s = 0.01;
  };

  L3Routing() : L3Routing(Options()) {}
  explicit L3Routing(Options options) : options_(options) {}

  std::string name() const override { return "l3_routing"; }
  void on_switch_up(Dpid dpid, const openflow::FeaturesReply&) override;
  bool on_packet_in(const PacketInEvent& event) override;
  void on_link_event(const LinkEvent&) override;
  void on_host_discovered(const HostInfo&) override;

  // Forces an immediate recompute+install pass.
  void recompute_now();

  std::uint64_t recompute_count() const noexcept { return recomputes_; }

 private:
  void schedule_recompute();
  void flood_to_edge_ports(const openflow::Bytes& data, Dpid except_dpid,
                           std::uint32_t except_port);
  void handle_arp(const PacketInEvent& event);

  Options options_;
  bool recompute_pending_ = false;
  std::uint64_t recomputes_ = 0;
  // (dpid, dst-ip) -> installed next-hop signature, to skip no-op FlowMods.
  std::unordered_map<Dpid, std::unordered_map<std::uint32_t, std::uint64_t>>
      installed_;
  std::unordered_map<Dpid, std::uint32_t> next_group_id_;
};

}  // namespace zen::controller::apps
