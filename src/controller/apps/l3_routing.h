// Proactive shortest-path L3 routing with proxy ARP (ONOS-style fwd).
//
// Maintains per-destination-host /32 routes on every switch, recomputed
// whenever the learned topology or host set changes. Path resolution goes
// through the NetworkView's shared topo::PathEngine: one cached reverse
// SPF per distinct attachment switch serves the next-hop sets of every
// (switch, host) pair at once, and only deltas are pushed southbound.
// ARP requests are punted and answered by the controller from its host
// table (proxy ARP); unknown targets are flooded to edge ports only, so
// multi-path fabrics stay loop-free.
//
// With ECMP enabled, equal-cost next hops are programmed as one Select
// group per (switch, destination) whose id is the destination /32 itself —
// stable across recomputes, so membership changes are GroupMod Modify on
// the same id and a destination that loses all next-hops gets its group
// (and route) deleted instead of leaking a fresh id per change.
#pragma once

#include <unordered_map>
#include <vector>

#include "controller/controller.h"

namespace zen::controller::apps {

class L3Routing : public App {
 public:
  struct Options {
    std::uint16_t route_priority = 100;
    std::uint16_t arp_punt_priority = 900;
    std::uint8_t table_id = 0;
    bool use_ecmp_groups = false;
    // Maximum distinct egress ports per ECMP Select group.
    std::size_t max_ecmp_width = 8;
    // Debounce: recompute at most once per this interval.
    double recompute_delay_s = 0.01;
  };

  L3Routing() : L3Routing(Options()) {}
  explicit L3Routing(Options options) : options_(options) {}

  std::string name() const override { return "l3_routing"; }
  void on_switch_up(Dpid dpid, const openflow::FeaturesReply&) override;
  bool on_packet_in(const PacketInEvent& event) override;
  void on_link_event(const LinkEvent&) override;
  void on_host_discovered(const HostInfo&) override;

  // Forces an immediate recompute+install pass.
  void recompute_now();

  std::uint64_t recompute_count() const noexcept { return recomputes_; }

 private:
  // What this app believes a switch has installed for one destination.
  struct RouteEntry {
    std::uint64_t signature = 0;  // FNV over the egress port list
    std::uint32_t group_id = 0;   // 0: plain output rule, no group
  };

  void schedule_recompute();
  // Installs/updates/withdraws the route for `ip` on `sw` given the
  // desired egress ports (empty = unreachable). Emits only deltas.
  void apply_route(Dpid sw, net::Ipv4Address ip,
                   const std::vector<std::uint32_t>& ports);
  void withdraw_route(Dpid sw, net::Ipv4Address ip, const RouteEntry& entry);
  void flood_to_edge_ports(const openflow::Bytes& data, Dpid except_dpid,
                           std::uint32_t except_port);
  void handle_arp(const PacketInEvent& event);

  Options options_;
  bool recompute_pending_ = false;
  std::uint64_t recomputes_ = 0;
  // (dpid, dst-ip) -> installed route state, to emit deltas only.
  std::unordered_map<Dpid, std::unordered_map<std::uint32_t, RouteEntry>>
      installed_;
};

}  // namespace zen::controller::apps
