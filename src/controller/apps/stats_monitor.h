// StatsMonitor: periodic port-stats collection (the telemetry loop every
// production controller runs).
//
// Polls PortStats from every connected switch on a fixed period, derives
// per-port throughput from counter deltas, and keeps an EWMA so consumers
// (TE re-optimization, dashboards, tests) can ask "how loaded is port P of
// switch S right now" without touching the dataplane.
#pragma once

#include <map>

#include "controller/controller.h"

namespace zen::controller::apps {

class StatsMonitor : public App {
 public:
  struct Options {
    double poll_interval_s = 1.0;
    double ewma_alpha = 0.3;  // weight of the newest sample
    // Stop polling after this virtual time (0 = forever).
    double stop_after_s = 0;
  };

  struct PortRate {
    double tx_bps = 0;   // EWMA of transmit throughput
    double rx_bps = 0;
    std::uint64_t tx_dropped = 0;  // cumulative
    std::uint64_t rx_dropped = 0;
    double last_update = 0;
  };

  StatsMonitor() : StatsMonitor(Options()) {}
  explicit StatsMonitor(Options options) : options_(options) {}

  std::string name() const override { return "stats_monitor"; }
  void on_switch_up(Dpid dpid, const openflow::FeaturesReply&) override;

  // Current smoothed rate for (switch, port); zeros if never sampled.
  PortRate rate(Dpid dpid, std::uint32_t port) const;

  // Highest tx utilization across all sampled ports, given port speeds
  // from FeaturesReply (curr_speed_mbps).
  double max_tx_utilization() const;

  std::uint64_t polls_completed() const noexcept { return polls_; }

  // Issues one poll round immediately (also used by the timer).
  void poll_now();

 private:
  struct Sample {
    openflow::PortStatsEntry last;
    PortRate rate;
    bool have_last = false;
  };

  void schedule_poll();
  void ingest(Dpid dpid, const openflow::PortStatsReply& reply, double now);

  Options options_;
  bool timer_running_ = false;
  std::map<std::pair<Dpid, std::uint32_t>, Sample> samples_;
  std::uint64_t polls_ = 0;
};

}  // namespace zen::controller::apps
