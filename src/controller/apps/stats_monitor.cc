#include "controller/apps/stats_monitor.h"

namespace zen::controller::apps {

void StatsMonitor::on_switch_up(Dpid, const openflow::FeaturesReply&) {
  if (!timer_running_) {
    timer_running_ = true;
    schedule_poll();
  }
}

void StatsMonitor::schedule_poll() {
  controller_->events().schedule_in(options_.poll_interval_s, [this] {
    if (options_.stop_after_s > 0 &&
        controller_->now() > options_.stop_after_s) {
      timer_running_ = false;
      return;
    }
    poll_now();
    schedule_poll();
  });
}

void StatsMonitor::poll_now() {
  for (const Dpid dpid : controller_->view().switch_ids()) {
    controller_->request_port_stats(
        dpid, openflow::PortStatsRequest{},
        [this, dpid](const openflow::PortStatsReply* reply) {
          if (reply) ingest(dpid, *reply, controller_->now());
        });
  }
  ++polls_;
}

void StatsMonitor::ingest(Dpid dpid, const openflow::PortStatsReply& reply,
                          double now) {
  for (const auto& entry : reply.entries) {
    auto& sample = samples_[{dpid, entry.port_no}];
    if (sample.have_last && now > sample.rate.last_update) {
      const double dt = now - sample.rate.last_update;
      const double tx_bps =
          static_cast<double>(entry.tx_bytes - sample.last.tx_bytes) * 8 / dt;
      const double rx_bps =
          static_cast<double>(entry.rx_bytes - sample.last.rx_bytes) * 8 / dt;
      const double a = options_.ewma_alpha;
      sample.rate.tx_bps = a * tx_bps + (1 - a) * sample.rate.tx_bps;
      sample.rate.rx_bps = a * rx_bps + (1 - a) * sample.rate.rx_bps;
    }
    sample.last = entry;
    sample.have_last = true;
    sample.rate.tx_dropped = entry.tx_dropped;
    sample.rate.rx_dropped = entry.rx_dropped;
    sample.rate.last_update = now;
  }
}

StatsMonitor::PortRate StatsMonitor::rate(Dpid dpid, std::uint32_t port) const {
  const auto it = samples_.find({dpid, port});
  return it == samples_.end() ? PortRate{} : it->second.rate;
}

double StatsMonitor::max_tx_utilization() const {
  double max_util = 0;
  for (const auto& [key, sample] : samples_) {
    const auto* features = controller_->view().switch_features(key.first);
    if (!features) continue;
    for (const auto& port : features->ports) {
      if (port.port_no != key.second || port.curr_speed_mbps == 0) continue;
      max_util = std::max(
          max_util, sample.rate.tx_bps / (port.curr_speed_mbps * 1e6));
    }
  }
  return max_util;
}

}  // namespace zen::controller::apps
