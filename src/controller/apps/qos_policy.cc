#include "controller/apps/qos_policy.h"

#include <algorithm>

namespace zen::controller::apps {

void QosPolicy::on_switch_up(Dpid dpid, const openflow::FeaturesReply&) {
  // Reconnects re-fire on_switch_up: reinstall, but don't double-track.
  if (std::find(connected_.begin(), connected_.end(), dpid) ==
      connected_.end())
    connected_.push_back(dpid);
  // Default class: everything falls through to the forwarding table.
  openflow::FlowMod fallthrough;
  fallthrough.table_id = options_.classify_table;
  fallthrough.priority = static_cast<std::uint16_t>(options_.band_base);
  fallthrough.instructions = {openflow::GotoTable{options_.forward_table}};
  controller_->flow_mod(dpid, fallthrough);

  for (std::size_t i = 0; i < classes_.size(); ++i) install(dpid, i);
}

void QosPolicy::on_switch_down(Dpid dpid) {
  std::erase(connected_, dpid);
}

void QosPolicy::on_error(Dpid, const openflow::Error&) { ++errors_seen_; }

void QosPolicy::add_class(TrafficClass traffic_class) {
  class_meter_ids_.push_back(
      traffic_class.police_rate_kbps > 0 ? ++next_meter_id_ : 0);
  classes_.push_back(std::move(traffic_class));
  for (const Dpid dpid : connected_) install(dpid, classes_.size() - 1);
}

void QosPolicy::install(Dpid dpid, std::size_t class_index) {
  const TrafficClass& traffic_class = classes_[class_index];
  const std::uint32_t meter_id = class_meter_ids_[class_index];

  if (meter_id != 0) {
    openflow::MeterMod mm;
    mm.command = openflow::MeterModCommand::Add;
    mm.meter_id = meter_id;
    mm.rate_kbps = traffic_class.police_rate_kbps;
    mm.burst_kbits = traffic_class.police_burst_kbits;
    controller_->meter_mod(dpid, mm,
                           [this](const std::optional<openflow::Error>& err) {
                             if (err) ++install_failures_;
                           });
  }

  openflow::FlowMod mod;
  mod.table_id = options_.classify_table;
  mod.priority =
      static_cast<std::uint16_t>(options_.band_base + 1 + traffic_class.priority);
  mod.match = traffic_class.match;
  openflow::InstructionList instructions;
  if (meter_id != 0)
    instructions.emplace_back(openflow::MeterInstruction{meter_id});
  if (traffic_class.queue_id != 0) {
    // Applied immediately: the queue assignment sticks to the packet for
    // the rest of the pipeline, so whatever output the forwarding table
    // later executes uses this queue.
    openflow::ApplyActions set_queue;
    set_queue.actions.push_back(openflow::SetQueueAction{traffic_class.queue_id});
    instructions.emplace_back(std::move(set_queue));
  }
  instructions.emplace_back(openflow::GotoTable{options_.forward_table});
  mod.instructions = std::move(instructions);
  controller_->flow_mod(dpid, mod,
                        [this](const std::optional<openflow::Error>& err) {
                          if (err) ++install_failures_;
                        });
}

}  // namespace zen::controller::apps
