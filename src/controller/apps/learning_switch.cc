#include "controller/apps/learning_switch.h"

namespace zen::controller::apps {

void LearningSwitch::on_switch_up(Dpid dpid, const openflow::FeaturesReply&) {
  controller_->install_table_miss(dpid, options_.table_id);
}

bool LearningSwitch::on_packet_in(const PacketInEvent& event) {
  if (!event.parsed) return false;
  const auto& parsed = *event.parsed;
  const auto& pin = *event.pin;

  // Learn the source.
  auto& table = mac_tables_[event.dpid];
  if (!parsed.eth.src.is_multicast()) table[parsed.eth.src] = pin.in_port;

  // Known unicast destination: install a rule and forward the packet.
  const auto it = table.find(parsed.eth.dst);
  if (it != table.end() && !parsed.eth.dst.is_multicast()) {
    const std::uint32_t out_port = it->second;

    openflow::FlowMod mod;
    mod.table_id = options_.table_id;
    mod.priority = options_.rule_priority;
    mod.idle_timeout = options_.idle_timeout_s;
    mod.match.eth_dst(parsed.eth.dst);
    mod.instructions = openflow::output_to(out_port);
    mod.buffer_id = pin.buffer_id;  // switch forwards the buffered frame too
    if (options_.transactional) {
      controller_->flow_mod(event.dpid, mod,
                            [](const std::optional<openflow::Error>&) {});
    } else {
      controller_->flow_mod(event.dpid, mod);
    }

    // If the frame was not buffered, push it explicitly.
    if (pin.buffer_id == openflow::kNoBuffer) {
      openflow::PacketOut out;
      out.in_port = pin.in_port;
      out.actions = {openflow::OutputAction{out_port, 0xffff}};
      out.data = pin.data;
      controller_->packet_out(event.dpid, out);
    } else {
      openflow::PacketOut out;
      out.buffer_id = pin.buffer_id;
      out.in_port = pin.in_port;
      out.actions = {openflow::OutputAction{out_port, 0xffff}};
      controller_->packet_out(event.dpid, out);
    }
    return true;
  }

  // Unknown: flood.
  controller_->flood_packet(event.dpid, pin.in_port, pin.data, pin.buffer_id);
  return true;
}

std::size_t LearningSwitch::table_size(Dpid dpid) const {
  const auto it = mac_tables_.find(dpid);
  return it == mac_tables_.end() ? 0 : it->second.size();
}

}  // namespace zen::controller::apps
