// In-process southbound channel.
//
// Behaves like the TCP connection between a switch and its controller:
// bytes written on one side arrive on the other side's receive callback
// after a configurable one-way latency, in order. Every message really is
// serialized to bytes and re-parsed on the far side — the wire cost is
// paid, only the kernel is skipped.
//
// For chaos testing the channel carries optional fault hooks: a seeded
// per-message loss probability, a duplication probability, and a uniform
// extra-delay jitter (which can reorder messages relative to each other,
// since each send carries one whole encoded message). A disconnected
// channel (switch crashed / connection torn down) silently drops
// everything in both directions, like writes to a dead TCP peer.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "sim/event_queue.h"
#include "util/rng.h"

namespace zen::controller {

// Per-channel impairment knobs. All probabilities in [0, 1]; every random
// decision flows through one seeded Rng so a run is reproducible.
struct ChannelFaults {
  double loss_prob = 0;         // message silently dropped
  double duplicate_prob = 0;    // message delivered twice
  double extra_delay_max_s = 0; // uniform extra one-way delay in [0, max]
  std::uint64_t seed = 1;
};

class Channel {
 public:
  using ReceiveFn = std::function<void(std::vector<std::uint8_t>)>;

  Channel(sim::EventQueue& events, double one_way_latency_s)
      : events_(events), latency_(one_way_latency_s) {}

  // Side A = controller, side B = switch (naming only; symmetric).
  void set_a_receiver(ReceiveFn fn) { to_a_ = std::move(fn); }
  void set_b_receiver(ReceiveFn fn) { to_b_ = std::move(fn); }

  void send_to_b(std::vector<std::uint8_t> bytes);
  void send_to_a(std::vector<std::uint8_t> bytes);

  // ---- fault injection ----
  void set_faults(const ChannelFaults& faults);
  void clear_faults();
  bool faulty() const noexcept { return faulty_; }
  // A disconnected channel drops every message in both directions.
  void set_connected(bool connected) noexcept { connected_ = connected; }
  bool connected() const noexcept { return connected_; }

  std::uint64_t bytes_a_to_b() const noexcept { return bytes_ab_; }
  std::uint64_t bytes_b_to_a() const noexcept { return bytes_ba_; }
  std::uint64_t messages_a_to_b() const noexcept { return msgs_ab_; }
  std::uint64_t messages_b_to_a() const noexcept { return msgs_ba_; }
  std::uint64_t messages_lost() const noexcept { return lost_; }
  std::uint64_t messages_duplicated() const noexcept { return duplicated_; }

 private:
  enum class Side { A, B };
  void send(Side to, std::vector<std::uint8_t> bytes);
  void deliver_after(Side to, double delay, std::vector<std::uint8_t> bytes);

  sim::EventQueue& events_;
  double latency_;
  ReceiveFn to_a_;
  ReceiveFn to_b_;
  bool connected_ = true;
  bool faulty_ = false;
  ChannelFaults faults_;
  util::Rng fault_rng_;
  std::uint64_t bytes_ab_ = 0, bytes_ba_ = 0;
  std::uint64_t msgs_ab_ = 0, msgs_ba_ = 0;
  std::uint64_t lost_ = 0, duplicated_ = 0;
};

}  // namespace zen::controller
