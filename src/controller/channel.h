// In-process southbound channel.
//
// Behaves like the TCP connection between a switch and its controller:
// bytes written on one side arrive on the other side's receive callback
// after a configurable one-way latency, in order. Every message really is
// serialized to bytes and re-parsed on the far side — the wire cost is
// paid, only the kernel is skipped.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "sim/event_queue.h"

namespace zen::controller {

class Channel {
 public:
  using ReceiveFn = std::function<void(std::vector<std::uint8_t>)>;

  Channel(sim::EventQueue& events, double one_way_latency_s)
      : events_(events), latency_(one_way_latency_s) {}

  // Side A = controller, side B = switch (naming only; symmetric).
  void set_a_receiver(ReceiveFn fn) { to_a_ = std::move(fn); }
  void set_b_receiver(ReceiveFn fn) { to_b_ = std::move(fn); }

  void send_to_b(std::vector<std::uint8_t> bytes);
  void send_to_a(std::vector<std::uint8_t> bytes);

  std::uint64_t bytes_a_to_b() const noexcept { return bytes_ab_; }
  std::uint64_t bytes_b_to_a() const noexcept { return bytes_ba_; }
  std::uint64_t messages_a_to_b() const noexcept { return msgs_ab_; }
  std::uint64_t messages_b_to_a() const noexcept { return msgs_ba_; }

 private:
  sim::EventQueue& events_;
  double latency_;
  ReceiveFn to_a_;
  ReceiveFn to_b_;
  std::uint64_t bytes_ab_ = 0, bytes_ba_ = 0;
  std::uint64_t msgs_ab_ = 0, msgs_ba_ = 0;
};

}  // namespace zen::controller
