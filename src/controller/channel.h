// In-process southbound channel.
//
// Behaves like the TCP connection between a switch and its controller:
// bytes written on one side arrive on the other side's receive callback
// after a configurable one-way latency, in order. Every message really is
// serialized to bytes and re-parsed on the far side — the wire cost is
// paid, only the kernel is skipped.
//
// v2 adds batched staging: each side stages encoded frames into a
// per-direction WireArena via stage(to).append(...) and hands the whole
// batch to the transport with flush(to). An unimpaired flush moves the
// arena's buffer to the peer in one event — zero copies, one scheduler
// entry for the whole dispatch round. The legacy send(to, bytes) entry
// point remains for raw-byte transport tests.
//
// For chaos testing the channel carries optional fault hooks: a seeded
// per-frame loss probability, a duplication probability, and a uniform
// extra-delay jitter (which can reorder frames relative to each other —
// an impaired flush is delivered frame by frame, so the batch is exactly
// as vulnerable as v1's per-message sends). A disconnected channel
// (switch crashed / connection torn down) silently drops everything in
// both directions, like writes to a dead TCP peer.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "openflow/wire.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace zen::controller {

// Per-channel impairment knobs. All probabilities in [0, 1]; every random
// decision flows through one seeded Rng so a run is reproducible.
struct ChannelFaults {
  double loss_prob = 0;         // frame silently dropped
  double duplicate_prob = 0;    // frame delivered twice
  double extra_delay_max_s = 0; // uniform extra one-way delay in [0, max]
  std::uint64_t seed = 1;
};

class Channel {
 public:
  using ReceiveFn = std::function<void(std::vector<std::uint8_t>)>;

  // Side A = controller, side B = switch (naming only; symmetric).
  enum class Side : std::uint8_t { A, B };

  Channel(sim::EventQueue& events, double one_way_latency_s)
      : events_(events), latency_(one_way_latency_s) {}

  void set_receiver(Side side, ReceiveFn fn) {
    ((side == Side::A) ? to_a_ : to_b_) = std::move(fn);
  }

  // ---- batched v2 path ----
  // Staging arena for frames travelling toward `to`. Callers append
  // encoded frames, then flush(to) hands the batch to the transport.
  openflow::WireArena& stage(Side to) noexcept {
    return (to == Side::B) ? stage_b_ : stage_a_;
  }
  bool has_staged(Side to) const noexcept {
    return !((to == Side::B) ? stage_b_ : stage_a_).empty();
  }
  // Delivers the staged batch: one in-flight buffer when unimpaired,
  // per-frame fault draws (loss / extra delay / duplication, same RNG
  // draw order as v1 per-message sends) when faults are armed. A flush on
  // a disconnected channel discards the staged frames.
  void flush(Side to);

  // ---- legacy per-message path (raw-byte transport tests) ----
  void send(Side to, std::vector<std::uint8_t> bytes);

  // ---- fault injection ----
  void set_faults(const ChannelFaults& faults);
  void clear_faults();
  bool faulty() const noexcept { return faulty_; }
  // A disconnected channel drops every message in both directions.
  void set_connected(bool connected) noexcept { connected_ = connected; }
  bool connected() const noexcept { return connected_; }

  std::uint64_t bytes_a_to_b() const noexcept { return bytes_ab_; }
  std::uint64_t bytes_b_to_a() const noexcept { return bytes_ba_; }
  std::uint64_t messages_a_to_b() const noexcept { return msgs_ab_; }
  std::uint64_t messages_b_to_a() const noexcept { return msgs_ba_; }
  std::uint64_t messages_lost() const noexcept { return lost_; }
  std::uint64_t messages_duplicated() const noexcept { return duplicated_; }
  std::uint64_t flushes() const noexcept { return flushes_; }

 private:
  void deliver_after(Side to, double delay, std::vector<std::uint8_t> bytes);
  // Runs the v1 fault ladder (loss → extra delay → duplicate) for one
  // frame; appends survivors delivered at base latency to `batch`.
  void fault_one_frame(Side to, std::span<const std::uint8_t> frame,
                       std::vector<std::uint8_t>& batch);

  sim::EventQueue& events_;
  double latency_;
  ReceiveFn to_a_;
  ReceiveFn to_b_;
  openflow::WireArena stage_a_;  // frames headed to side A
  openflow::WireArena stage_b_;  // frames headed to side B
  bool connected_ = true;
  bool faulty_ = false;
  ChannelFaults faults_;
  util::Rng fault_rng_;
  std::uint64_t bytes_ab_ = 0, bytes_ba_ = 0;
  std::uint64_t msgs_ab_ = 0, msgs_ba_ = 0;
  std::uint64_t lost_ = 0, duplicated_ = 0;
  std::uint64_t flushes_ = 0;
};

}  // namespace zen::controller
