// NetworkView: the controller's learned model of the network.
//
// Populated from FeaturesReply (switches and their ports), the discovery
// app (switch-to-switch links), and PacketIn snooping (host locations).
// Consumers (routing, intents, TE) obtain a topo::Topology snapshot via
// as_topology() for path computation.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/addr.h"
#include "openflow/messages.h"
#include "openflow/table_status.h"
#include "topo/graph.h"
#include "topo/path_engine.h"

namespace zen::controller {

using Dpid = topo::NodeId;

struct DiscoveredLink {
  Dpid a = 0;
  std::uint32_t a_port = 0;
  Dpid b = 0;
  std::uint32_t b_port = 0;
  bool up = true;
  double last_seen = 0;

  friend bool operator==(const DiscoveredLink&, const DiscoveredLink&) = default;
};

struct HostInfo {
  net::MacAddress mac;
  net::Ipv4Address ip;
  Dpid dpid = 0;
  std::uint32_t port = 0;
  double last_seen = 0;
};

class NetworkView {
 public:
  // ---- scope ----
  // A scoped view models a delegated (per-group) controller: only switches
  // inside the scope are admitted by add_switch / learn_link / learn_host,
  // so the controller's apps compute over its group alone even though its
  // sessions may span the whole fabric. An unscoped view (the default)
  // admits everything. Scope only ever grows at runtime — failover expands
  // it when a controller adopts a dead peer's group.
  void restrict_scope(const std::vector<Dpid>& dpids);
  void add_to_scope(Dpid dpid);
  bool scoped() const noexcept { return scoped_; }
  bool in_scope(Dpid dpid) const noexcept {
    return !scoped_ || scope_.contains(dpid);
  }

  // ---- switches ----
  void add_switch(Dpid dpid, const openflow::FeaturesReply& features);
  void remove_switch(Dpid dpid);
  bool has_switch(Dpid dpid) const { return switches_.contains(dpid); }
  std::vector<Dpid> switch_ids() const;
  const openflow::FeaturesReply* switch_features(Dpid dpid) const;
  void set_port_state(Dpid dpid, std::uint32_t port, bool up);

  // ---- links ----
  // Records a unidirectional observation; the link becomes (or stays)
  // bidirectional-up. Returns true if this created a new link or revived a
  // down one.
  bool learn_link(Dpid a, std::uint32_t a_port, Dpid b, std::uint32_t b_port,
                  double now);
  // Marks links touching (dpid, port) down. Returns the affected links.
  std::vector<DiscoveredLink> mark_links_down(Dpid dpid, std::uint32_t port);
  const std::vector<DiscoveredLink>& links() const noexcept { return links_; }
  bool is_infrastructure_port(Dpid dpid, std::uint32_t port) const;

  // ---- weak ports ----
  // A weak port (a cluster border link's endpoint) never learns hosts:
  // frames leaking across a group border would otherwise masquerade remote
  // hosts as border-local ones — relocating the group's own hosts on
  // leak-backs, poisoning the cluster host directory, and short-circuiting
  // the coordinator route path with accidental cross-border routes. Remote
  // hosts enter a scoped view only by explicit import (notify_host with
  // their genuine attachment).
  void mark_weak_port(Dpid dpid, std::uint32_t port);
  bool is_weak_port(Dpid dpid, std::uint32_t port) const;

  // ---- hosts ----
  // Returns true if this is a new host or it moved.
  bool learn_host(net::MacAddress mac, net::Ipv4Address ip, Dpid dpid,
                  std::uint32_t port, double now);
  const HostInfo* host_by_mac(net::MacAddress mac) const;
  const HostInfo* host_by_ip(net::Ipv4Address ip) const;
  std::vector<HostInfo> hosts() const;

  // ---- table pressure ----
  // Records a vacancy event; apps use under_pressure() to shed load (defer
  // optional rule installs) while a switch's table sits below its down
  // threshold.
  void record_table_status(Dpid dpid, const openflow::TableStatus& status);
  // Last vacancy event seen from dpid (nullptr if none since connect).
  const openflow::TableStatus* table_status(Dpid dpid) const;
  bool under_pressure(Dpid dpid) const;

  // ---- snapshot ----
  // Topology of switches and up discovered links; hosts (node id = MAC as
  // integer) attached at their learned locations when include_hosts.
  topo::Topology as_topology(bool include_hosts = false) const;

  // ---- shared path computation ----
  // Counter bumped only on switch/link/port changes — the events that
  // alter the switch-level topology. Host (re)learning bumps version()
  // but not this, so path caches survive host churn.
  std::uint64_t topology_epoch() const noexcept { return topology_epoch_; }

  // The shared per-destination SPF cache over the current switch topology.
  // Lazily re-synced when topology_epoch() has moved; every consumer
  // (L3 routing, intents, reactive apps, TE installers) resolves paths
  // through this one engine so they share cache hits.
  topo::PathEngine& path_engine() const;

  std::uint64_t version() const noexcept { return version_; }

 private:
  struct SwitchEntry {
    openflow::FeaturesReply features;
    std::map<std::uint32_t, bool> port_up;
  };

  bool scoped_ = false;
  std::unordered_set<Dpid> scope_;
  std::unordered_map<Dpid, std::unordered_set<std::uint32_t>> weak_ports_;
  std::unordered_map<Dpid, SwitchEntry> switches_;
  std::unordered_map<Dpid, openflow::TableStatus> table_status_;
  std::vector<DiscoveredLink> links_;
  std::unordered_map<net::MacAddress, HostInfo> hosts_by_mac_;
  std::unordered_map<net::Ipv4Address, net::MacAddress> ip_to_mac_;
  std::uint64_t version_ = 1;
  std::uint64_t topology_epoch_ = 1;
  // Query-side cache; mutable so const views still share it.
  mutable topo::PathEngine path_engine_;
};

}  // namespace zen::controller
