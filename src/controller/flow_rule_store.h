// FlowRuleStore: cookie-keyed record of intended flow state per switch,
// and the reconciliation engine that makes switches match it.
//
// Apps that route their installs/removes through the store (IntentManager,
// TeInstaller) get two things on top of the transactional send:
//
//  1. A durable statement of intent, keyed by (table, priority, match)
//     with the owning cookie, that survives switch crashes.
//  2. audit(): read the switch's actual rules via flow-stats and drive
//     them to the intended set — missing or wrong-actioned rules are
//     reinstalled, rules carrying a managed cookie that are no longer
//     intended ("orphans") are strictly deleted — looping until intended
//     == actual or the round budget runs out. The controller triggers an
//     audit automatically when a switch reconnects after a crash.
//
// Rules with cookie 0 are invisible to the store: table-miss entries, ARP
// punts and other app plumbing are never treated as orphans.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "controller/controller.h"

namespace zen::controller {

struct AuditReport {
  Dpid dpid = 0;
  std::size_t repaired = 0;  // intended rules found missing and reinstalled
  std::size_t orphans = 0;   // managed-cookie strays found and deleted
  std::size_t degraded = 0;  // intended rules parked as degraded (not repaired)
  int rounds = 0;            // flow-stats rounds used
  bool converged = false;    // intended == actual when the audit finished
  double duration_s = 0;     // virtual time from audit start to verdict
};

class FlowRuleStore {
 public:
  struct Options {
    int max_rounds = 8;
    // A round's flow-stats exchange is retried after this long (the
    // request or reply can be lost on a faulty channel).
    double round_timeout_s = 0.25;
    // Settle time between sending repairs and re-reading the switch.
    double settle_s = 0.05;
  };

  struct Stats {
    std::uint64_t installs = 0;
    std::uint64_t removes = 0;
    std::uint64_t repairs_installed = 0;
    std::uint64_t orphans_deleted = 0;
    std::uint64_t audits = 0;
    std::uint64_t audits_converged = 0;
    std::uint64_t table_full_rejections = 0;  // TableFull errors seen
    std::uint64_t rules_degraded = 0;         // rules parked as degraded
  };

  // TableFull repair: how many times an install is retried after the store
  // sacrifices one of its own lower-importance rules to make room.
  static constexpr int kMaxTableFullRetries = 2;

  explicit FlowRuleStore(Controller& controller)
      : FlowRuleStore(controller, Options()) {}
  FlowRuleStore(Controller& controller, Options options);

  // Records the rule as intended on `dpid` and sends it transactionally.
  // Add and Modify upsert the intended entry keyed by (table, priority,
  // match); the mod's cookie becomes a managed cookie.
  openflow::Xid install(Dpid dpid, const openflow::FlowMod& mod,
                        CompletionFn done = nullptr);
  // Records every mod as intended and commits them through a southbound
  // bundle: the switch applies all of them or none. `done` fires once with
  // the bundle verdict. A TableFull rejection of any member runs the same
  // evict-retry-then-degrade ladder as install(), but the retry re-commits
  // the whole bundle and a final failure parks every member as degraded —
  // a multi-rule path is only intent-complete as a unit. A single-element
  // bundle degenerates to install().
  void install_bundle(Dpid dpid, std::vector<openflow::FlowMod> mods,
                      CompletionFn done = nullptr);
  // Drops matching intended entries and sends the delete. Strict deletes
  // drop the exact (table, priority, match) entry; plain Delete drops
  // every intended entry in the table subsumed by the mod's match.
  openflow::Xid remove(Dpid dpid, const openflow::FlowMod& del,
                       CompletionFn done = nullptr);
  // Intended groups are re-asserted blindly at the start of every audit
  // round (a re-add of a live group fails harmlessly).
  openflow::Xid add_group(Dpid dpid, const openflow::GroupMod& mod,
                          CompletionFn done = nullptr);
  openflow::Xid remove_group(Dpid dpid, std::uint32_t group_id,
                             CompletionFn done = nullptr);

  using AuditFn = std::function<void(const AuditReport&)>;
  // Reconciles one switch (no-op audit converges in one round). `done`
  // fires exactly once. Concurrent audits of the same switch coalesce:
  // the later call's callback piggybacks on the running audit.
  void audit(Dpid dpid, AuditFn done = nullptr);
  // Audits every switch the store holds intent for.
  void audit_all(std::function<void(std::vector<AuditReport>)> done = nullptr);

  // Drops all intended state for a switch (decommissioning). Does not
  // touch the switch.
  void forget(Dpid dpid);

  // Fired by the controller for every FlowRemoved, before app dispatch.
  // Eviction removals park the matching intended rule as degraded: audits
  // stop reinstalling it, so the controller cannot recreate the pressure
  // that evicted it (the recompile-storm failure mode).
  void on_flow_removed(Dpid dpid, const openflow::FlowRemoved& msg);

  // Un-parks every degraded rule on `dpid` (pressure relieved — typically
  // on VacancyUp); the next audit reinstalls them. Returns how many.
  std::size_t clear_degraded(Dpid dpid);
  std::size_t degraded_rules(Dpid dpid) const noexcept;

  std::size_t intended_rules(Dpid dpid) const noexcept;
  std::size_t intended_groups(Dpid dpid) const noexcept;
  const Stats& stats() const noexcept { return stats_; }

 private:
  struct IntendedRule {
    openflow::FlowMod mod;  // normalized to command=Add
    // Degraded: intent the switch cannot currently hold (evicted or
    // rejected TableFull after retries). Audits skip reinstalling it but
    // also never delete it as an orphan, so state neither flaps nor leaks.
    bool degraded = false;
    int table_full_retries = 0;
  };
  struct SwitchState {
    std::vector<IntendedRule> rules;
    std::vector<openflow::GroupMod> groups;  // normalized to command=Add
  };

  struct Audit {
    AuditReport report;
    std::vector<AuditFn> done;
    int round_serial = 0;  // guards against late stats replies / timeouts
    double started_s = 0;
  };

  void run_round(Dpid dpid);
  void reconcile(Dpid dpid, const openflow::FlowStatsReply& reply);
  void finish(Dpid dpid, bool converged);

  // Sends `mod` with a completion wrapper that turns TableFull errors into
  // the evict-retry-then-degrade sequence.
  openflow::Xid send_install(Dpid dpid, const openflow::FlowMod& mod,
                             CompletionFn done);
  void handle_table_full(Dpid dpid, const openflow::FlowMod& mod,
                         CompletionFn done, const openflow::Error& err);
  // Bundle flavors of the two above: the retry ladder re-commits the whole
  // member list, and degradation applies to every member at once.
  void send_install_bundle(
      Dpid dpid, std::shared_ptr<const std::vector<openflow::FlowMod>> mods,
      CompletionFn done);
  void handle_bundle_table_full(
      Dpid dpid, std::shared_ptr<const std::vector<openflow::FlowMod>> mods,
      CompletionFn done, const openflow::Error& err);
  // Sacrifices the lowest-importance non-degraded intended rule in the
  // incoming mod's table (importance strictly below the incoming one):
  // marks it degraded and deletes it from the switch. False if none.
  bool evict_lowest_importance(Dpid dpid, const openflow::FlowMod& incoming);
  IntendedRule* find_rule(Dpid dpid, const openflow::FlowMod& mod);

  Controller& controller_;
  Options options_;
  std::unordered_map<Dpid, SwitchState> switches_;
  std::unordered_map<Dpid, Audit> audits_;  // at most one per switch
  std::unordered_set<std::uint64_t> managed_cookies_;
  Stats stats_;
};

}  // namespace zen::controller
