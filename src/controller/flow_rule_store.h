// FlowRuleStore: cookie-keyed record of intended flow state per switch,
// and the reconciliation engine that makes switches match it.
//
// Apps that route their installs/removes through the store (IntentManager,
// TeInstaller) get two things on top of the transactional send:
//
//  1. A durable statement of intent, keyed by (table, priority, match)
//     with the owning cookie, that survives switch crashes.
//  2. audit(): read the switch's actual rules via flow-stats and drive
//     them to the intended set — missing or wrong-actioned rules are
//     reinstalled, rules carrying a managed cookie that are no longer
//     intended ("orphans") are strictly deleted — looping until intended
//     == actual or the round budget runs out. The controller triggers an
//     audit automatically when a switch reconnects after a crash.
//
// Rules with cookie 0 are invisible to the store: table-miss entries, ARP
// punts and other app plumbing are never treated as orphans.
#pragma once

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "controller/controller.h"

namespace zen::controller {

struct AuditReport {
  Dpid dpid = 0;
  std::size_t repaired = 0;  // intended rules found missing and reinstalled
  std::size_t orphans = 0;   // managed-cookie strays found and deleted
  int rounds = 0;            // flow-stats rounds used
  bool converged = false;    // intended == actual when the audit finished
  double duration_s = 0;     // virtual time from audit start to verdict
};

class FlowRuleStore {
 public:
  struct Options {
    int max_rounds = 8;
    // A round's flow-stats exchange is retried after this long (the
    // request or reply can be lost on a faulty channel).
    double round_timeout_s = 0.25;
    // Settle time between sending repairs and re-reading the switch.
    double settle_s = 0.05;
  };

  struct Stats {
    std::uint64_t installs = 0;
    std::uint64_t removes = 0;
    std::uint64_t repairs_installed = 0;
    std::uint64_t orphans_deleted = 0;
    std::uint64_t audits = 0;
    std::uint64_t audits_converged = 0;
  };

  explicit FlowRuleStore(Controller& controller)
      : FlowRuleStore(controller, Options()) {}
  FlowRuleStore(Controller& controller, Options options);

  // Records the rule as intended on `dpid` and sends it transactionally.
  // Add and Modify upsert the intended entry keyed by (table, priority,
  // match); the mod's cookie becomes a managed cookie.
  openflow::Xid install(Dpid dpid, const openflow::FlowMod& mod,
                        CompletionFn done = nullptr);
  // Drops matching intended entries and sends the delete. Strict deletes
  // drop the exact (table, priority, match) entry; plain Delete drops
  // every intended entry in the table subsumed by the mod's match.
  openflow::Xid remove(Dpid dpid, const openflow::FlowMod& del,
                       CompletionFn done = nullptr);
  // Intended groups are re-asserted blindly at the start of every audit
  // round (a re-add of a live group fails harmlessly).
  openflow::Xid add_group(Dpid dpid, const openflow::GroupMod& mod,
                          CompletionFn done = nullptr);
  openflow::Xid remove_group(Dpid dpid, std::uint32_t group_id,
                             CompletionFn done = nullptr);

  using AuditFn = std::function<void(const AuditReport&)>;
  // Reconciles one switch (no-op audit converges in one round). `done`
  // fires exactly once. Concurrent audits of the same switch coalesce:
  // the later call's callback piggybacks on the running audit.
  void audit(Dpid dpid, AuditFn done = nullptr);
  // Audits every switch the store holds intent for.
  void audit_all(std::function<void(std::vector<AuditReport>)> done = nullptr);

  // Drops all intended state for a switch (decommissioning). Does not
  // touch the switch.
  void forget(Dpid dpid);

  std::size_t intended_rules(Dpid dpid) const noexcept;
  std::size_t intended_groups(Dpid dpid) const noexcept;
  const Stats& stats() const noexcept { return stats_; }

 private:
  struct SwitchState {
    std::vector<openflow::FlowMod> rules;    // normalized to command=Add
    std::vector<openflow::GroupMod> groups;  // normalized to command=Add
  };

  struct Audit {
    AuditReport report;
    std::vector<AuditFn> done;
    int round_serial = 0;  // guards against late stats replies / timeouts
    double started_s = 0;
  };

  void run_round(Dpid dpid);
  void reconcile(Dpid dpid, const openflow::FlowStatsReply& reply);
  void finish(Dpid dpid, bool converged);

  Controller& controller_;
  Options options_;
  std::unordered_map<Dpid, SwitchState> switches_;
  std::unordered_map<Dpid, Audit> audits_;  // at most one per switch
  std::unordered_set<std::uint64_t> managed_cookies_;
  Stats stats_;
};

}  // namespace zen::controller
