#include "controller/switch_agent.h"

#include <algorithm>

#include "obs/obs.h"
#include "util/logging.h"

namespace zen::controller {

namespace {

obs::Histo& pin_to_flow_mod_histo() {
  static obs::Histo& h = obs::MetricsRegistry::global().histo(
      "zen_controller_packet_in_to_flow_mod_us", "",
      "Virtual time from PacketIn emission to the FlowMod that answers it");
  return h;
}

obs::Slo& flow_setup_slo() {
  static obs::Slo& s = obs::SloMonitor::global().objective({
      .name = "flow_setup_p99",
      .target = 0.99,
      .latency_threshold_s = 0.020,
      .short_window_s = 5,
      .long_window_s = 30,
  });
  return s;
}

using SpanKey = obs::SpanTracer::Key;

}  // namespace

SwitchAgent::SwitchAgent(sim::SimNetwork& net, topo::NodeId dpid,
                         Channel& channel, std::uint64_t conn_id, bool batch)
    : net_(net),
      dpid_(dpid),
      conn_id_(conn_id),
      southbound_(net.events(), channel, Channel::Side::B, batch) {
  southbound_.set_batch_gate([this] {
    if (net_.switch_up(dpid_)) return true;
    // A crashed switch neither processes nor buffers: the agent process
    // died with it, taking every in-flight punt trace along.
    auto& tracer = obs::SpanTracer::global();
    for (const PendingPin& pin : pending_pins_) {
      tracer.take(obs::SpanTracer::key(SpanKey::kPacketIn, conn_id_, dpid_,
                                       pin.buffer_id));
      tracer.abandon_trace(pin.trace_root);
    }
    pending_pins_.clear();
    return false;
  });
  southbound_.set_bad_frame_handler([this](const std::string& err) {
    ZEN_LOG(Warn) << "switch " << dpid_ << ": bad frame: " << err;
    send_error(0, openflow::ErrorType::BadRequest, 0);
  });
  southbound_.set_receiver([this](std::vector<openflow::OwnedMessage> batch) {
    for (auto& owned : batch) handle(std::move(owned));
  });
  last_ctrl_msg_s_ = net_.now();
  const auto& cfg = net_.switch_at(dpid_).config();
  if (cfg.fail_timeout_s > 0) {
    net_.events().schedule_in(cfg.fail_timeout_s / 2,
                              [this] { check_fail_mode(); });
  }
}

void SwitchAgent::install_fallback() {
  openflow::FlowMod mod;
  mod.table_id = 0;
  mod.priority = 1;  // above the table-miss entry, below any real rule
  mod.importance = 0xffff;  // survivability rule: evict junk before it
  mod.instructions.push_back(openflow::ApplyActions{
      {openflow::OutputAction{openflow::Ports::kNormal}}});
  if (net_.flow_mod(dpid_, mod).ok) {
    fallback_installed_ = true;
    fallback_boot_id_ = net_.switch_at(dpid_).boot_count();
    ZEN_LOG(Info) << "switch " << dpid_
                  << ": standalone fallback installed (controller lost)";
  }
}

void SwitchAgent::remove_fallback() {
  openflow::FlowMod mod;
  mod.command = openflow::FlowModCommand::DeleteStrict;
  mod.table_id = 0;
  mod.priority = 1;
  net_.flow_mod(dpid_, mod);
  fallback_installed_ = false;
  ZEN_LOG(Info) << "switch " << dpid_
                << ": standalone fallback removed (controller back)";
}

void SwitchAgent::check_fail_mode() {
  const auto& cfg = net_.switch_at(dpid_).config();
  net_.events().schedule_in(cfg.fail_timeout_s / 2,
                            [this] { check_fail_mode(); });
  if (!net_.switch_up(dpid_)) return;  // crashed: nothing to do until reboot
  // A power cycle wiped the fallback along with everything else.
  if (fallback_installed_ &&
      net_.switch_at(dpid_).boot_count() != fallback_boot_id_)
    fallback_installed_ = false;

  if (net_.now() - last_ctrl_msg_s_ < cfg.fail_timeout_s) return;
  if (!session_lost_) {
    session_lost_ = true;
    ZEN_LOG(Warn) << "switch " << dpid_ << ": controller session lost ("
                  << (cfg.fail_mode == dataplane::FailMode::Standalone
                          ? "standalone"
                          : "secure")
                  << " fail mode)";
  }
  // Secure: freeze — keep the tables as they are, install nothing.
  // Standalone: keep trying until the fallback sticks (a full table can
  // reject it until eviction frees a slot).
  if (cfg.fail_mode == dataplane::FailMode::Standalone && !fallback_installed_)
    install_fallback();
}

openflow::ControllerRole SwitchAgent::role() const {
  return net_.switch_at(dpid_).controller_role(conn_id_);
}

void SwitchAgent::reply(const openflow::Message& msg, openflow::Xid xid) {
  southbound_.send(msg, xid);
}

void SwitchAgent::send_error(openflow::Xid xid, openflow::ErrorType type,
                             std::uint16_t code) {
  openflow::ErrorMsg err;
  err.type = type;
  err.code = code;
  reply(openflow::Message{std::move(err)}, xid);
}

void SwitchAgent::on_datapath_event(openflow::Message msg) {
  // A crashed switch is silent.
  if (!net_.switch_up(dpid_)) return;
  // Slaves get port status only; PacketIns and FlowRemoved go to the
  // master/equal connections (OF 1.3 asynchronous-message filtering).
  if (role() == openflow::ControllerRole::Slave &&
      !std::holds_alternative<openflow::PortStatus>(msg))
    return;
  if (const auto* pin = std::get_if<openflow::PacketIn>(&msg);
      pin && pin->buffer_id != openflow::kNoBuffer) {
    auto& tracer = obs::SpanTracer::global();
    if (pending_pins_.size() >= kMaxPendingPins) {
      tracer.take(obs::SpanTracer::key(SpanKey::kPacketIn, conn_id_, dpid_,
                                       pending_pins_.front().buffer_id));
      tracer.abandon_trace(pending_pins_.front().trace_root);
      pending_pins_.pop_front();
    }
    // A flow_setup trace is born with the punt; the punt span rides the
    // buffer_id to the controller, which picks it up at dispatch.
    obs::SpanContext root;
    if (tracer.enabled()) {
      root = tracer.start_trace("flow_setup", "trace");
      const obs::SpanContext punt =
          tracer.start_span("packet_in.channel", "trace", root);
      tracer.bind(obs::SpanTracer::key(SpanKey::kPacketIn, conn_id_, dpid_,
                                       pin->buffer_id),
                  punt);
    }
    pending_pins_.push_back({pin->buffer_id, net_.now(), root});
  }
  reply(msg, next_xid_++);
}

bool SwitchAgent::already_committed(std::uint32_t bundle_id) const noexcept {
  return std::find(committed_bundles_.begin(), committed_bundles_.end(),
                   bundle_id) != committed_bundles_.end();
}

void SwitchAgent::handle_bundle(const openflow::Experimenter& exp,
                                openflow::Xid xid) {
  using namespace openflow;
  auto parsed = parse_bundle_message(exp);
  if (!parsed.ok()) {
    ZEN_LOG(Warn) << "switch " << dpid_ << ": bad bundle message: "
                  << parsed.error();
    send_error(xid, ErrorType::BadRequest, 0);
    return;
  }
  const auto ack_mod = [&] {
    if (acked_mods_.size() >= kMaxAckedMods) acked_mods_.pop_front();
    acked_mods_.push_back(xid);
  };
  const auto reject = [&](ErrorType type, std::uint16_t code) {
    obs::FlightRecorder::global().record(
        obs::FlightEventKind::kModRejected, dpid_,
        (static_cast<std::uint64_t>(type) << 16) | code);
    send_error(xid, type, code);
    close_southbound_span(xid, /*applied=*/false);
  };
  // Bundles modify state: slave connections may not touch them. Only the
  // commit is tracked, but rejecting open/add early keeps a slave from
  // even staging.
  if (role() == ControllerRole::Slave) {
    reject(ErrorType::BadRequest, /*kIsSlave*/ 9);
    return;
  }

  std::visit(
      [&](auto& bm) {
        using T = std::decay_t<decltype(bm)>;
        if constexpr (std::is_same_v<T, BundleOpen>) {
          if (open_bundles_.size() >= kMaxOpenBundles &&
              !open_bundles_.count(bm.bundle_id)) {
            // Evict the oldest staging area; its commit will see
            // kUnknownBundle and the controller retries whole.
            open_bundles_.erase(open_bundles_.begin());
          }
          // (Re)open resets staging — a retransmitted open is idempotent.
          open_bundles_[bm.bundle_id].clear();
        } else if constexpr (std::is_same_v<T, BundleAdd>) {
          auto it = open_bundles_.find(bm.bundle_id);
          if (it == open_bundles_.end()) {
            // A duplicated add arriving after its bundle committed is
            // stale channel noise, not an error.
            if (already_committed(bm.bundle_id)) return;
            send_error(xid, ErrorType::BundleFailed,
                       bundle_failed_code::kUnknownBundle);
            return;
          }
          if (it->second.size() >= kMaxBundleMembers &&
              !it->second.count(bm.member_index)) {
            open_bundles_.erase(it);
            send_error(xid, ErrorType::BundleFailed,
                       bundle_failed_code::kTooManyMembers);
            return;
          }
          // Keyed by member_index: a duplicated add overwrites its own
          // slot instead of growing the bundle.
          it->second.insert_or_assign(bm.member_index, std::move(bm.member));
        } else if constexpr (std::is_same_v<T, BundleCommit>) {
          if (already_committed(bm.bundle_id)) {
            // Retransmitted commit for an applied bundle: ack again, apply
            // nothing.
            ack_mod();
            close_southbound_span(xid, /*applied=*/true);
            return;
          }
          auto it = open_bundles_.find(bm.bundle_id);
          if (it == open_bundles_.end()) {
            reject(ErrorType::BundleFailed,
                   bundle_failed_code::kUnknownBundle);
            return;
          }
          // Complete iff members 0..n-1 are all staged (map is ordered).
          const bool complete =
              it->second.size() == bm.n_members &&
              (bm.n_members == 0 ||
               std::prev(it->second.end())->first == bm.n_members - 1);
          if (!complete) {
            open_bundles_.erase(it);
            reject(ErrorType::BundleFailed,
                   bundle_failed_code::kBundleIncomplete);
            return;
          }
          std::vector<Message> members;
          members.reserve(it->second.size());
          for (auto& [idx, member] : it->second)
            members.push_back(std::move(member));
          open_bundles_.erase(it);
          const auto status = net_.commit_bundle(dpid_, members);
          if (status.ok) {
            if (committed_bundles_.size() >= kMaxCommittedBundles)
              committed_bundles_.pop_front();
            committed_bundles_.push_back(bm.bundle_id);
            ack_mod();
            close_southbound_span(xid, /*applied=*/true);
          } else {
            // Surfaces the failing member's own error type/code, so the
            // controller's repair ladders (e.g. TableFull) see exactly
            // what a lone mod would have produced.
            reject(status.error_type, status.error_code);
          }
        } else if constexpr (std::is_same_v<T, BundleDiscard>) {
          open_bundles_.erase(bm.bundle_id);
        }
      },
      parsed.value());
}

void SwitchAgent::handle(openflow::OwnedMessage owned) {
  using namespace openflow;
  auto& sw = net_.switch_at(dpid_);
  const openflow::Xid xid = owned.xid;

  // Any decoded controller message proves the session is alive again.
  last_ctrl_msg_s_ = net_.now();
  if (session_lost_) {
    session_lost_ = false;
    ZEN_LOG(Info) << "switch " << dpid_ << ": controller session restored";
    if (fallback_installed_ && sw.boot_count() == fallback_boot_id_)
      remove_fallback();
    fallback_installed_ = false;
  }

  // A power cycle wiped every rule the recorded acks vouch for: a barrier
  // after reboot must not ack pre-crash mods, or the controller would
  // believe rules survive that the crash erased. Staged bundles died with
  // the agent process, and committed ids refer to wiped state.
  if (sw.boot_count() != last_boot_id_) {
    acked_mods_.clear();
    open_bundles_.clear();
    committed_bundles_.clear();
    last_boot_id_ = sw.boot_count();
  }

  // Ack only state that actually changed: rejected mods resolve through
  // their Error, never through a barrier ack (a lost Error then leads to
  // a retransmit, not a false success).
  const auto ack_mod = [&] {
    if (acked_mods_.size() >= kMaxAckedMods) acked_mods_.pop_front();
    acked_mods_.push_back(xid);
  };

  // Role enforcement: a slave connection may not modify state.
  const bool is_slave = role() == ControllerRole::Slave;

  // Mod rejection: wire error + flight-recorder entry + span closure.
  const auto reject_mod = [&](ErrorType type, std::uint16_t code) {
    obs::FlightRecorder::global().record(
        obs::FlightEventKind::kModRejected, dpid_,
        (static_cast<std::uint64_t>(type) << 16) | code);
    send_error(xid, type, code);
    close_southbound_span(xid, /*applied=*/false);
  };

  std::visit(
      [&](auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, FlowMod> || std::is_same_v<T, GroupMod> ||
                      std::is_same_v<T, MeterMod> || std::is_same_v<T, PacketOut>) {
          if (is_slave) {
            reject_mod(ErrorType::BadRequest, /*kIsSlave*/ 9);
            return;
          }
        }
        if constexpr (std::is_same_v<T, Hello>) {
          reply(Message{Hello{}}, xid);
        } else if constexpr (std::is_same_v<T, EchoRequest>) {
          reply(Message{EchoReply{std::move(msg.data), sw.boot_count()}}, xid);
        } else if constexpr (std::is_same_v<T, FeaturesRequest>) {
          reply(Message{sw.features()}, xid);
        } else if constexpr (std::is_same_v<T, FlowMod>) {
          // Service-latency sample: a FlowMod echoing a punt's buffer_id
          // answers that PacketIn (wire round trip + controller
          // processing). Proactive mods carry kNoBuffer and don't count.
          if (msg.buffer_id != openflow::kNoBuffer) {
            for (auto it = pending_pins_.begin(); it != pending_pins_.end();
                 ++it) {
              if (it->buffer_id != msg.buffer_id) continue;
              const double dt_s = net_.now() - it->sent_s;
              pin_to_flow_mod_histo().record(dt_s * 1e6);
              flow_setup_slo().record_latency(dt_s);
              ZEN_TRACE_INSTANT("flow_mod_applied", "controller");
              pending_pins_.erase(it);
              break;
            }
          }
          const auto status = net_.flow_mod(dpid_, msg);
          if (status.ok) {
            ack_mod();
            close_southbound_span(xid, /*applied=*/true);
          } else {
            reject_mod(status.error_type, status.error_code);
          }
        } else if constexpr (std::is_same_v<T, GroupMod>) {
          const auto status = net_.group_mod(dpid_, msg);
          if (status.ok) {
            ack_mod();
            close_southbound_span(xid, /*applied=*/true);
          } else {
            reject_mod(status.error_type, status.error_code);
          }
        } else if constexpr (std::is_same_v<T, MeterMod>) {
          const auto status = net_.meter_mod(dpid_, msg);
          if (status.ok) {
            ack_mod();
            close_southbound_span(xid, /*applied=*/true);
          } else {
            reject_mod(status.error_type, status.error_code);
          }
        } else if constexpr (std::is_same_v<T, PacketOut>) {
          // A PacketOut answering a buffered punt consumes the buffer: the
          // punt can no longer be answered by a FlowMod (flood decisions).
          for (auto it = pending_pins_.begin(); it != pending_pins_.end();
               ++it) {
            if (it->buffer_id != msg.buffer_id) continue;
            pending_pins_.erase(it);
            break;
          }
          net_.packet_out(dpid_, msg);
          ack_mod();
          close_southbound_span(xid, /*applied=*/true);
        } else if constexpr (std::is_same_v<T, BarrierRequest>) {
          reply(Message{BarrierReply{
                    {acked_mods_.begin(), acked_mods_.end()}}},
                xid);
        } else if constexpr (std::is_same_v<T, FlowStatsRequest>) {
          reply(Message{sw.flow_stats(msg, net_.now())}, xid);
        } else if constexpr (std::is_same_v<T, PortStatsRequest>) {
          reply(Message{sw.port_stats(msg)}, xid);
        } else if constexpr (std::is_same_v<T, TableStatsRequest>) {
          reply(Message{sw.table_stats()}, xid);
        } else if constexpr (std::is_same_v<T, RoleRequest>) {
          RoleReply role_reply;
          role_reply.generation_id = msg.generation_id;
          const auto granted =
              sw.set_controller_role(conn_id_, msg.role, msg.generation_id);
          if (granted) {
            role_reply.role = *granted;
            role_reply.accepted = true;
          } else {
            role_reply.role = sw.controller_role(conn_id_);
            role_reply.accepted = false;  // stale generation
          }
          reply(Message{role_reply}, xid);
        } else if constexpr (std::is_same_v<T, Experimenter>) {
          if (msg.experimenter_id == kBundleExperimenterId) {
            handle_bundle(msg, xid);
          } else {
            send_error(xid, ErrorType::BadRequest, 0);
          }
        } else if constexpr (std::is_same_v<T, EchoReply> ||
                             std::is_same_v<T, ErrorMsg>) {
          // fine, no action
        } else {
          send_error(xid, ErrorType::BadRequest, 0);
        }
      },
      owned.msg);
}

void SwitchAgent::close_southbound_span(openflow::Xid xid, bool applied) {
  auto& tracer = obs::SpanTracer::global();
  const std::uint64_t tracked =
      obs::SpanTracer::key(SpanKey::kModTracked, conn_id_, dpid_, xid);
  if (obs::SpanContext mod = tracer.take(tracked); mod.valid()) {
    if (!applied) {
      // The Error resolves the completion; the controller closes the trace.
      tracer.annotate(mod, "rejected");
      tracer.end_span(mod);
      return;
    }
    // Applied: the mod span (encode + channel + apply) ends here and the
    // barrier_ack span takes over until the controller's ack window
    // resolves the xid.
    const obs::SpanContext parent = tracer.end_span(mod);
    const obs::SpanContext ack =
        tracer.start_span("barrier_ack", "trace", parent);
    tracer.bind(obs::SpanTracer::key(SpanKey::kAck, conn_id_, dpid_, xid),
                ack);
    return;
  }
  const std::uint64_t untracked =
      obs::SpanTracer::key(SpanKey::kModUntracked, conn_id_, dpid_, xid);
  if (obs::SpanContext mod = tracer.take(untracked); mod.valid()) {
    if (!applied) tracer.annotate(mod, "rejected");
    const obs::SpanContext parent = tracer.end_span(mod);
    // Fire-and-forget: no ack will close this trace, so the last
    // southbound span to finish does.
    if (tracer.open_span_count(parent) == 1) tracer.end_trace(parent);
  }
}

}  // namespace zen::controller
