// Controller: the control plane runtime (ONOS/Ryu analog).
//
// One Controller manages every switch in a SimNetwork through per-switch
// wire channels (see channel.h): connect_all() performs the
// Hello/FeaturesRequest handshake, after which events flow northbound to
// registered Apps and apps program switches through the typed southbound
// API (flow_mod, packet_out, ...), each call crossing the wire as encoded
// bytes with channel latency applied.
//
// App dispatch: PacketIns run through the app chain in registration order
// until one returns true ("handled"). Other events are broadcast to all.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "controller/channel.h"
#include "controller/network_view.h"
#include "controller/switch_agent.h"
#include "net/packet.h"
#include "openflow/codec.h"
#include "sim/network.h"

namespace zen::obs {
class Counter;
}

namespace zen::controller {

class Controller;

struct PacketInEvent {
  Dpid dpid = 0;
  const openflow::PacketIn* pin = nullptr;
  const net::ParsedPacket* parsed = nullptr;  // null if the frame is opaque
};

struct LinkEvent {
  DiscoveredLink link;
  bool up = true;
};

// Base class for control applications.
class App {
 public:
  virtual ~App() = default;
  virtual std::string name() const = 0;

  // Called once when the app is registered; keep the reference.
  virtual void init(Controller& controller) { controller_ = &controller; }

  virtual void on_switch_up(Dpid, const openflow::FeaturesReply&) {}
  // Return true to stop the dispatch chain (packet consumed).
  virtual bool on_packet_in(const PacketInEvent&) { return false; }
  virtual void on_port_status(Dpid, const openflow::PortStatus&) {}
  virtual void on_flow_removed(Dpid, const openflow::FlowRemoved&) {}
  virtual void on_link_event(const LinkEvent&) {}
  virtual void on_host_discovered(const HostInfo&) {}
  // Vendor-extension messages (e.g. zen_telemetry export batches).
  virtual void on_experimenter(Dpid, const openflow::Experimenter&) {}

 protected:
  Controller* controller_ = nullptr;
};

struct ControllerStats {
  std::uint64_t packet_ins = 0;
  std::uint64_t flow_mods_sent = 0;
  std::uint64_t packet_outs_sent = 0;
  std::uint64_t group_mods_sent = 0;
  std::uint64_t errors_received = 0;
};

class Controller {
 public:
  struct Options {
    // One-way channel latency (switch <-> controller).
    double channel_latency_s = 100e-6;
    // Controller-side processing delay applied before dispatching an
    // incoming message to apps (models scheduling + deserialization).
    double processing_delay_s = 10e-6;
  };

  explicit Controller(sim::SimNetwork& net) : Controller(net, Options()) {}
  Controller(sim::SimNetwork& net, Options options);

  // Registers an app (dispatch order = registration order).
  template <typename T, typename... Args>
  T& add_app(Args&&... args) {
    auto app = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *app;
    apps_.push_back(std::move(app));
    apps_.back()->init(*this);
    register_app_metrics(*apps_.back());
    return ref;
  }

  // Creates channels + agents for every switch and runs the handshake.
  // (Events must then be pumped: net.events().run_until(...).)
  void connect_all();

  // ---- southbound API (all cross the wire) ----
  void flow_mod(Dpid dpid, const openflow::FlowMod& mod);
  void group_mod(Dpid dpid, const openflow::GroupMod& mod);
  void meter_mod(Dpid dpid, const openflow::MeterMod& mod);
  void packet_out(Dpid dpid, const openflow::PacketOut& msg);

  using BarrierFn = std::function<void()>;
  void barrier(Dpid dpid, BarrierFn done);

  using FlowStatsFn = std::function<void(const openflow::FlowStatsReply&)>;
  void request_flow_stats(Dpid dpid, const openflow::FlowStatsRequest& req,
                          FlowStatsFn done);
  using PortStatsFn = std::function<void(const openflow::PortStatsReply&)>;
  void request_port_stats(Dpid dpid, const openflow::PortStatsRequest& req,
                          PortStatsFn done);

  // ---- multi-controller roles ----
  // Requests a role on one switch. `done` receives the switch's reply
  // (granted role + accepted flag). Master requests use a generation id;
  // pass a value larger than any previous master's to win the election.
  using RoleFn = std::function<void(const openflow::RoleReply&)>;
  void request_role(Dpid dpid, openflow::ControllerRole role,
                    std::uint64_t generation_id, RoleFn done = nullptr);
  // Convenience: request a role on every connected switch.
  void request_role_all(openflow::ControllerRole role,
                        std::uint64_t generation_id);
  // Last role granted by the switch (Equal if never negotiated).
  openflow::ControllerRole role(Dpid dpid) const;

  // Convenience wrappers.
  void install_table_miss(Dpid dpid, std::uint8_t table_id = 0);
  void flood_packet(Dpid dpid, std::uint32_t in_port, const openflow::Bytes& data,
                    std::uint32_t buffer_id = openflow::kNoBuffer);

  // ---- state ----
  NetworkView& view() noexcept { return view_; }
  const NetworkView& view() const noexcept { return view_; }
  sim::SimNetwork& network() noexcept { return net_; }
  sim::EventQueue& events() noexcept { return net_.events(); }
  double now() const noexcept { return net_.now(); }
  const ControllerStats& stats() const noexcept { return stats_; }
  const Options& options() const noexcept { return options_; }

  // Notification hooks used by system apps (discovery).
  void notify_link_event(const LinkEvent& ev);

 private:
  struct Session {
    std::unique_ptr<Channel> channel;
    std::unique_ptr<SwitchAgent> agent;
    openflow::MessageStream stream;
    std::uint16_t next_xid = 1;
    bool features_known = false;
    std::unordered_map<std::uint16_t, BarrierFn> pending_barriers;
    std::unordered_map<std::uint16_t, FlowStatsFn> pending_flow_stats;
    std::unordered_map<std::uint16_t, PortStatsFn> pending_port_stats;
    std::unordered_map<std::uint16_t, RoleFn> pending_roles;
    openflow::ControllerRole granted_role = openflow::ControllerRole::Equal;
  };

  void send(Dpid dpid, const openflow::Message& msg, std::uint16_t xid);
  std::uint16_t next_xid(Dpid dpid);
  void register_app_metrics(const App& app);
  void on_wire(Dpid dpid, std::vector<std::uint8_t> bytes);
  void dispatch(Dpid dpid, openflow::OwnedMessage owned);
  void handle_packet_in(Dpid dpid, const openflow::PacketIn& pin);
  void learn_host_from(Dpid dpid, const openflow::PacketIn& pin,
                       const net::ParsedPacket& parsed);

  sim::SimNetwork& net_;
  Options options_;
  // Identifies this controller's connections for switch-side role state.
  std::uint64_t conn_id_;
  NetworkView view_;
  std::vector<std::unique_ptr<App>> apps_;
  // Parallel to apps_: per-app PacketIn counters
  // (zen_controller_app_packet_ins_total{app="<name>"}).
  std::vector<obs::Counter*> app_pin_counters_;
  std::unordered_map<Dpid, Session> sessions_;
  ControllerStats stats_;
};

}  // namespace zen::controller
