// Controller: the control plane runtime (ONOS/Ryu analog).
//
// One Controller manages every switch in a SimNetwork through per-switch
// wire channels (see channel.h): connect_all() performs the
// Hello/FeaturesRequest handshake, after which events flow northbound to
// registered Apps and apps program switches through the typed southbound
// API (flow_mod, packet_out, ...), each call crossing the wire as encoded
// bytes with channel latency applied.
//
// App dispatch: PacketIns run through the app chain in registration order
// until one returns true ("handled"). Other events are broadcast to all.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "controller/channel.h"
#include "controller/network_view.h"
#include "controller/southbound.h"
#include "controller/switch_agent.h"
#include "net/packet.h"
#include "openflow/codec.h"
#include "sim/network.h"

namespace zen::obs {
class Counter;
}

namespace zen::controller {

class Controller;
class FlowRuleStore;

// Completion callback for transactional southbound sends: invoked exactly
// once with nullopt on success (the switch processed the message, confirmed
// by barrier) or with the Error that killed it — a switch-reported error,
// or a synthetic one (timeout after retries, switch declared down).
using CompletionFn =
    std::function<void(const std::optional<openflow::Error>&)>;

// Codes used in synthetic completion errors (type == ErrorType::BadRequest).
namespace completion_code {
inline constexpr std::uint16_t kTimedOut = 0xfffe;
inline constexpr std::uint16_t kSwitchDown = 0xfffd;
}  // namespace completion_code

struct PacketInEvent {
  Dpid dpid = 0;
  const openflow::PacketIn* pin = nullptr;
  const net::ParsedPacket* parsed = nullptr;  // null if the frame is opaque
};

struct LinkEvent {
  DiscoveredLink link;
  bool up = true;
};

// Base class for control applications.
class App {
 public:
  virtual ~App() = default;
  virtual std::string name() const = 0;

  // Called once when the app is registered; keep the reference.
  virtual void init(Controller& controller) { controller_ = &controller; }

  virtual void on_switch_up(Dpid, const openflow::FeaturesReply&) {}
  // Fired when the controller declares a switch dead (heartbeat misses).
  // The NetworkView has already dropped the switch and its links.
  virtual void on_switch_down(Dpid) {}
  // Fired for every southbound Error, after any completion callback for
  // the offending xid has run.
  virtual void on_error(Dpid, const openflow::Error&) {}
  // Return true to stop the dispatch chain (packet consumed).
  virtual bool on_packet_in(const PacketInEvent&) { return false; }
  virtual void on_port_status(Dpid, const openflow::PortStatus&) {}
  virtual void on_flow_removed(Dpid, const openflow::FlowRemoved&) {}
  virtual void on_link_event(const LinkEvent&) {}
  virtual void on_host_discovered(const HostInfo&) {}
  // Vendor-extension messages (e.g. zen_telemetry export batches). Vacancy
  // TableStatus experimenter messages are decoded by the controller and
  // arrive via on_table_status instead.
  virtual void on_experimenter(Dpid, const openflow::Experimenter&) {}
  // Vacancy event: a switch table crossed its occupancy threshold. The
  // NetworkView has already recorded it (view().under_pressure(dpid)).
  virtual void on_table_status(Dpid, const openflow::TableStatus&) {}

 protected:
  Controller* controller_ = nullptr;
};

struct ControllerStats {
  std::uint64_t packet_ins = 0;
  std::uint64_t flow_mods_sent = 0;
  std::uint64_t packet_outs_sent = 0;
  std::uint64_t group_mods_sent = 0;
  std::uint64_t meter_mods_sent = 0;
  std::uint64_t errors_received = 0;
  std::uint64_t retransmits = 0;        // tracked sends re-sent after timeout
  std::uint64_t completions_failed = 0; // completions resolved with an error
  std::uint64_t switch_down_events = 0; // liveness declared a switch dead
};

class Controller {
 public:
  struct Options {
    // One-way channel latency (switch <-> controller).
    double channel_latency_s = 100e-6;
    // Controller-side processing delay applied before dispatching an
    // incoming message to apps (models scheduling + deserialization).
    double processing_delay_s = 10e-6;

    // Batched southbound flushes: sends issued at the same simulation
    // instant coalesce into one wire delivery, and one chasing barrier
    // covers every tracked send of the instant. false reproduces v1
    // one-frame-per-delivery framing byte for byte (golden determinism
    // mode).
    bool batch_southbound = true;

    // ---- transactional southbound ----
    // A tracked send (one with a completion callback) is followed by a
    // barrier; if neither a barrier ack of the send's xid nor an error
    // arrives within the timeout it is re-sent under a fresh xid, up to
    // max_attempts, then failed with a synthetic timeout error.
    double completion_timeout_s = 0.02;
    int completion_max_attempts = 4;

    // ---- southbound liveness ----
    // Echo-request heartbeat period per connected switch; after
    // echo_miss_limit consecutive unanswered echoes the switch is
    // declared down (0 disables heartbeats entirely).
    double echo_interval_s = 0.5;
    int echo_miss_limit = 3;
    // FeaturesRequest is re-sent if the reply doesn't arrive in time
    // (lost-reply recovery); between attempts the delay grows
    // exponentially from backoff_initial to backoff_max.
    double handshake_timeout_s = 0.25;
    double reconnect_backoff_initial_s = 0.2;
    double reconnect_backoff_max_s = 2.0;
  };

  explicit Controller(sim::SimNetwork& net) : Controller(net, Options()) {}
  Controller(sim::SimNetwork& net, Options options);
  ~Controller();  // out of line: FlowRuleStore is incomplete here

  // Registers an app (dispatch order = registration order).
  template <typename T, typename... Args>
  T& add_app(Args&&... args) {
    auto app = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *app;
    apps_.push_back(std::move(app));
    apps_.back()->init(*this);
    register_app_metrics(*apps_.back());
    return ref;
  }

  // Creates channels + agents for every switch and runs the handshake.
  // (Events must then be pumped: net.events().run_until(...).)
  void connect_all();
  // Same, for an explicit subset of switches (delegated controllers that
  // only ever talk to their own group). Unknown dpids are skipped.
  void connect(const std::vector<Dpid>& dpids);

  // Kills this controller instance: no further southbound sends, no
  // incoming dispatch, every timer epoch retired. Channels stay connected
  // on purpose — frames already in flight (including jitter-delayed
  // zombie writes from a controller that believed itself master) still
  // arrive at the agents, where role fencing must reject them. This is
  // the failure-injection entry point for whole-controller crash tests;
  // there is no un-halt.
  void halt();
  bool halted() const noexcept { return halted_; }

  // ---- southbound API (all cross the wire) ----
  // Each send is assigned an xid (returned). With a completion callback
  // the send becomes transactional: a barrier chases it and `done` fires
  // once with the outcome (see CompletionFn); lost messages are re-sent.
  // Without one the send is fire-and-forget, exactly as before.
  openflow::Xid flow_mod(Dpid dpid, const openflow::FlowMod& mod,
                         CompletionFn done = nullptr);
  openflow::Xid group_mod(Dpid dpid, const openflow::GroupMod& mod,
                          CompletionFn done = nullptr);
  openflow::Xid meter_mod(Dpid dpid, const openflow::MeterMod& mod,
                          CompletionFn done = nullptr);
  openflow::Xid packet_out(Dpid dpid, const openflow::PacketOut& msg,
                           CompletionFn done = nullptr);

  // Atomic multi-mod install: members (FlowMod / GroupMod / MeterMod)
  // apply all-or-nothing on the switch, with one ack for the whole
  // bundle. `done` fires once: nullopt when every member applied, or the
  // error that failed the bundle — for a failing member, that member's
  // own error (e.g. FlowModFailed/kTableFull); bundle-mechanism failures
  // (lost adds under channel faults) are retried internally before
  // surfacing. Returns the commit's xid (0 for an empty bundle, which
  // trivially succeeds).
  openflow::Xid commit_bundle(Dpid dpid,
                              std::vector<openflow::Message> members,
                              CompletionFn done = nullptr);

  // Barrier/stats/role callbacks have an error path: when the switch is
  // declared down before the reply arrives they fire with ok=false
  // (respectively a null reply) instead of silently never firing.
  using BarrierFn = std::function<void(bool ok)>;
  void barrier(Dpid dpid, BarrierFn done);

  // The reply pointer is null when the switch died before answering; it
  // is only valid for the duration of the callback.
  using FlowStatsFn = std::function<void(const openflow::FlowStatsReply*)>;
  void request_flow_stats(Dpid dpid, const openflow::FlowStatsRequest& req,
                          FlowStatsFn done);
  using PortStatsFn = std::function<void(const openflow::PortStatsReply*)>;
  void request_port_stats(Dpid dpid, const openflow::PortStatsRequest& req,
                          PortStatsFn done);

  // ---- multi-controller roles ----
  // Requests a role on one switch. `done` receives the switch's reply
  // (granted role + accepted flag), or null if the switch was declared
  // down before answering. Master requests use a generation id; pass a
  // value larger than any previous master's to win the election.
  using RoleFn = std::function<void(const openflow::RoleReply*)>;
  void request_role(Dpid dpid, openflow::ControllerRole role,
                    std::uint64_t generation_id, RoleFn done = nullptr);

  // Aggregate outcome of a multi-switch role request. Every targeted
  // switch lands in exactly one bucket (each sorted ascending): granted,
  // refused (the switch answered accepted=false — stale generation id), or
  // down (no session / declared down before answering).
  struct RoleAllResult {
    openflow::ControllerRole role = openflow::ControllerRole::Equal;
    std::uint64_t generation_id = 0;
    std::vector<Dpid> granted;
    std::vector<Dpid> refused;
    std::vector<Dpid> down;
    bool all_granted() const noexcept {
      return refused.empty() && down.empty();
    }
  };
  using RoleAllFn = std::function<void(const RoleAllResult&)>;
  // Requests a role on every connected switch. `done` (optional) fires
  // exactly once with the aggregate result — per-switch failures are
  // surfaced, never silently dropped.
  void request_role_all(openflow::ControllerRole role,
                        std::uint64_t generation_id, RoleAllFn done = nullptr);
  // Same, for an explicit switch subset (failover adopts one dead group's
  // switches without touching the requester's standing roles elsewhere).
  void request_role_many(const std::vector<Dpid>& dpids,
                         openflow::ControllerRole role,
                         std::uint64_t generation_id,
                         RoleAllFn done = nullptr);
  // Last role granted by the switch (Equal if never negotiated).
  openflow::ControllerRole role(Dpid dpid) const;

  // Convenience wrappers.
  void install_table_miss(Dpid dpid, std::uint8_t table_id = 0);
  void flood_packet(Dpid dpid, std::uint32_t in_port, const openflow::Bytes& data,
                    std::uint32_t buffer_id = openflow::kNoBuffer);

  // ---- fault tolerance ----
  // Liveness as the controller sees it: true once the handshake completed
  // and heartbeats haven't declared the switch dead since.
  bool switch_alive(Dpid dpid) const noexcept;
  // Cookie-keyed record of intended flow state per switch; installs routed
  // through it can be audited and repaired after crashes (see
  // flow_rule_store.h).
  FlowRuleStore& rule_store() noexcept { return *rule_store_; }
  // Applies / clears seeded loss, duplication and jitter on every
  // session's control channel (chaos experiments). Per-channel seeds are
  // derived from faults.seed + dpid so channels don't fail in lockstep.
  void set_channel_faults(const ChannelFaults& faults);
  void clear_channel_faults();

  // The switch-side agent of a connected switch (nullptr if never
  // connected). Exposes fail-mode state — controller_session_lost(),
  // standalone_active() — to experiments and tests.
  const SwitchAgent* agent(Dpid dpid) const noexcept;

  // ---- state ----
  NetworkView& view() noexcept { return view_; }
  const NetworkView& view() const noexcept { return view_; }
  sim::SimNetwork& network() noexcept { return net_; }
  sim::EventQueue& events() noexcept { return net_.events(); }
  double now() const noexcept { return net_.now(); }
  const ControllerStats& stats() const noexcept { return stats_; }
  const Options& options() const noexcept { return options_; }

  // Identifies this controller's switch connections (role arbitration).
  std::uint64_t conn_id() const noexcept { return conn_id_; }

  // Re-requests features from an already-connected switch. Used when a
  // scoped view grows (group adoption): the fresh FeaturesReply admits the
  // switch into the view and fires on_switch_up as if it had just joined.
  void refresh_features(Dpid dpid);

  // Notification hooks used by system apps (discovery).
  void notify_link_event(const LinkEvent& ev);
  // Externally supplied host knowledge (e.g. a cluster coordinator's host
  // directory during group adoption): learns the host into the view and,
  // if that changed anything, announces it to apps like a snooped one.
  void notify_host(const HostInfo& host);

  // Observation hook: invoked synchronously for every FlowMod and GroupMod
  // in send order, before encoding. Determinism tests fingerprint the
  // southbound stream with it; pass nullptr to clear.
  using SouthboundTap = std::function<void(Dpid, const openflow::Message&)>;
  void set_southbound_tap(SouthboundTap tap) {
    southbound_tap_ = std::move(tap);
  }

 private:
  struct PendingCompletion {
    openflow::Message msg;  // kept for re-send after a timeout
    CompletionFn done;
    int attempts = 1;
    // Causal span of the mod (see obs/span.h): resolution — ack, error,
    // timeout, switch down — closes it and, once no sibling southbound
    // span remains open, the whole trace.
    obs::SpanContext span;
  };

  struct Session {
    std::unique_ptr<Channel> channel;
    std::unique_ptr<Southbound> southbound;
    std::unique_ptr<SwitchAgent> agent;
    openflow::Xid next_xid = 1;
    // True while a coalesced chasing barrier is scheduled for the current
    // simulation instant (batched mode: one barrier acks every tracked
    // send of the instant).
    bool barrier_scheduled = false;
    bool features_known = false;
    // Liveness: alive flips true on FeaturesReply, false when heartbeats
    // declare the switch dead. ever_up distinguishes "still handshaking"
    // from "was up, now down". epoch invalidates timers from past lives.
    bool alive = false;
    bool ever_up = false;
    std::uint64_t epoch = 0;
    // Switch boot epoch from the last FeaturesReply; an EchoReply carrying
    // a different one means the switch crash/rebooted faster than the
    // heartbeat-miss window could notice — torn down and re-audited.
    std::uint64_t boot_id = 0;
    int echo_misses = 0;
    bool echo_outstanding = false;
    double backoff_s = 0;
    std::unordered_map<openflow::Xid, PendingCompletion> pending_completions;
    std::unordered_map<openflow::Xid, BarrierFn> pending_barriers;
    std::unordered_map<openflow::Xid, FlowStatsFn> pending_flow_stats;
    std::unordered_map<openflow::Xid, PortStatsFn> pending_port_stats;
    std::unordered_map<openflow::Xid, RoleFn> pending_roles;
    openflow::ControllerRole granted_role = openflow::ControllerRole::Equal;
  };

  void send(Dpid dpid, const openflow::Message& msg, openflow::Xid xid);
  openflow::Xid next_xid(Dpid dpid);
  void register_app_metrics(const App& app);
  void on_batch(Dpid dpid, std::vector<openflow::OwnedMessage> batch);
  void dispatch(Dpid dpid, openflow::OwnedMessage owned);
  // Arranges the barrier that chases tracked sends. Batched mode schedules
  // it once per instant (zero-delay event, staged into the same flush);
  // unbatched mode sends it immediately.
  void request_chasing_barrier(Dpid dpid);
  openflow::Xid send_bundle_attempt(
      Dpid dpid, std::shared_ptr<const std::vector<openflow::Message>> members,
      int attempt, CompletionFn done, obs::SpanContext span);
  void handle_packet_in(Dpid dpid, const openflow::PacketIn& pin);
  void learn_host_from(Dpid dpid, const openflow::PacketIn& pin,
                       const net::ParsedPacket& parsed);
  void handle_features_reply(Dpid dpid, Session& session,
                             const openflow::FeaturesReply& msg);
  // Transactional sends.
  openflow::Xid send_tracked(Dpid dpid, openflow::Message msg,
                             CompletionFn done,
                             obs::SpanContext span = {});
  // Ends the spans bound under (dpid, xid) and — when this was the last
  // open southbound span of its trace — the trace itself.
  void close_completion_span(Dpid dpid, openflow::Xid xid,
                             obs::SpanContext span, const char* note);
  void arm_completion_timeout(Dpid dpid, openflow::Xid xid,
                              std::uint64_t epoch);
  void resolve_completion(Dpid dpid, openflow::Xid xid,
                          std::optional<openflow::Error> error);
  void resolve_completions_acked_by(Dpid dpid,
                                    const std::vector<std::uint32_t>& acked);
  // Liveness.
  void start_handshake(Dpid dpid);
  void schedule_echo(Dpid dpid, std::uint64_t epoch);
  void declare_switch_down(Dpid dpid);

  sim::SimNetwork& net_;
  Options options_;
  // Identifies this controller's connections for switch-side role state.
  std::uint64_t conn_id_;
  NetworkView view_;
  std::vector<std::unique_ptr<App>> apps_;
  // Parallel to apps_: per-app PacketIn counters
  // (zen_controller_app_packet_ins_total{app="<name>"}).
  std::vector<obs::Counter*> app_pin_counters_;
  std::unordered_map<Dpid, Session> sessions_;
  ControllerStats stats_;
  std::uint32_t next_bundle_id_ = 1;
  bool halted_ = false;
  std::unique_ptr<FlowRuleStore> rule_store_;
  SouthboundTap southbound_tap_;
};

}  // namespace zen::controller
