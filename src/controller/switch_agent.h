// SwitchAgent: the protocol shim that lives "on" a switch.
//
// Translates wire messages from the controller into typed calls on the
// simulated datapath, and encodes datapath events (PacketIn, PortStatus,
// FlowRemoved) back onto the wire. One agent per switch.
#pragma once

#include <deque>

#include "controller/channel.h"
#include "openflow/codec.h"
#include "sim/network.h"

namespace zen::controller {

class SwitchAgent {
 public:
  // `conn_id` identifies this controller connection for role arbitration
  // (multi-controller redundancy).
  SwitchAgent(sim::SimNetwork& net, topo::NodeId dpid, Channel& channel,
              std::uint64_t conn_id = 0);

  // Called by the network seam when the datapath raises an event.
  // Role filtering: slaves receive PortStatus only.
  void on_datapath_event(openflow::Message msg);

  topo::NodeId dpid() const noexcept { return dpid_; }

  // Highest controller xid of a state-modifying message (FlowMod / GroupMod
  // / MeterMod / PacketOut) this agent has processed, in serial-number
  // arithmetic. Echoed in every BarrierReply as the cumulative ack: a
  // barrier that overtakes a lost mod carries a hwm below the mod's xid,
  // so the controller re-sends instead of false-acking.
  openflow::Xid xid_hwm() const noexcept { return xid_hwm_; }

 private:
  openflow::ControllerRole role() const;

  void on_wire(std::vector<std::uint8_t> bytes);
  void handle(openflow::OwnedMessage owned);
  void reply(const openflow::Message& msg, std::uint16_t xid);
  void send_error(std::uint16_t xid, openflow::ErrorType type,
                  std::uint16_t code);

  sim::SimNetwork& net_;
  topo::NodeId dpid_;
  Channel& channel_;
  std::uint64_t conn_id_;
  openflow::MessageStream stream_;
  std::uint16_t next_xid_ = 1;
  openflow::Xid xid_hwm_ = 0;

  // Virtual send times of buffered PacketIns awaiting a FlowMod answer,
  // correlated by buffer_id (reactive apps echo the punt's buffer_id in
  // the FlowMod they install); feeds the packet-in -> flow-mod
  // service-latency histogram. Bounded: punts the controller never
  // answers with a FlowMod age out at the front.
  struct PendingPin {
    std::uint32_t buffer_id;
    double sent_s;
  };
  std::deque<PendingPin> pending_pins_;
  static constexpr std::size_t kMaxPendingPins = 1024;
};

}  // namespace zen::controller
