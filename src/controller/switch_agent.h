// SwitchAgent: the protocol shim that lives "on" a switch.
//
// Translates wire messages from the controller into typed calls on the
// simulated datapath, and encodes datapath events (PacketIn, PortStatus,
// FlowRemoved) back onto the wire. One agent per switch.
#pragma once

#include "controller/channel.h"
#include "openflow/codec.h"
#include "sim/network.h"

namespace zen::controller {

class SwitchAgent {
 public:
  // `conn_id` identifies this controller connection for role arbitration
  // (multi-controller redundancy).
  SwitchAgent(sim::SimNetwork& net, topo::NodeId dpid, Channel& channel,
              std::uint64_t conn_id = 0);

  // Called by the network seam when the datapath raises an event.
  // Role filtering: slaves receive PortStatus only.
  void on_datapath_event(openflow::Message msg);

  topo::NodeId dpid() const noexcept { return dpid_; }

 private:
  openflow::ControllerRole role() const;

  void on_wire(std::vector<std::uint8_t> bytes);
  void handle(openflow::OwnedMessage owned);
  void reply(const openflow::Message& msg, std::uint16_t xid);
  void send_error(std::uint16_t xid, openflow::ErrorType type,
                  std::uint16_t code);

  sim::SimNetwork& net_;
  topo::NodeId dpid_;
  Channel& channel_;
  std::uint64_t conn_id_;
  openflow::MessageStream stream_;
  std::uint16_t next_xid_ = 1;
};

}  // namespace zen::controller
