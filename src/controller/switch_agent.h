// SwitchAgent: the protocol shim that lives "on" a switch.
//
// Translates wire messages from the controller into typed calls on the
// simulated datapath, and encodes datapath events (PacketIn, PortStatus,
// FlowRemoved) back onto the wire. One agent per switch. All wire traffic
// flows through a Southbound facade: requests arrive as decoded batches,
// and replies generated while a batch is processed coalesce into one
// response flush.
#pragma once

#include <cstdint>
#include <deque>
#include <map>

#include "controller/channel.h"
#include "controller/southbound.h"
#include "obs/span.h"
#include "openflow/bundle.h"
#include "openflow/codec.h"
#include "sim/network.h"

namespace zen::controller {

class SwitchAgent {
 public:
  // `conn_id` identifies this controller connection for role arbitration
  // (multi-controller redundancy). `batch` selects the southbound flush
  // policy (batch=false reproduces v1 one-frame-per-delivery framing).
  SwitchAgent(sim::SimNetwork& net, topo::NodeId dpid, Channel& channel,
              std::uint64_t conn_id = 0, bool batch = true);

  // Called by the network seam when the datapath raises an event.
  // Role filtering: slaves receive PortStatus only.
  void on_datapath_event(openflow::Message msg);

  topo::NodeId dpid() const noexcept { return dpid_; }

  // Controller xids of state-modifying messages (FlowMod / GroupMod /
  // MeterMod / PacketOut / bundle commits) this agent successfully
  // processed, oldest first. Echoed in every BarrierReply as an explicit
  // per-xid ack: a barrier that overtakes a lost mod replies without the
  // mod's xid, so the controller re-sends instead of false-acking — and a
  // delivered later mod can never vouch for an earlier lost one (which a
  // high-water mark would). Bounded at kMaxAckedMods: an entry aged out
  // while its completion was still pending is recovered by the
  // controller's retransmit (fresh xid). Rejected mods (slave connection,
  // dataplane error) are *not* acked; their Error is the resolution.
  const std::deque<openflow::Xid>& acked_mods() const noexcept {
    return acked_mods_;
  }

  static constexpr std::size_t kMaxAckedMods = 1024;
  // Bundle staging bounds: a controller bug or replayed traffic cannot
  // pin unbounded memory on the switch.
  static constexpr std::size_t kMaxOpenBundles = 16;
  static constexpr std::size_t kMaxBundleMembers = 256;
  static constexpr std::size_t kMaxCommittedBundles = 64;

  // Fail-mode state (meaningful when SwitchConfig.fail_timeout_s > 0):
  // true while the agent considers the controller session dead.
  bool controller_session_lost() const noexcept { return session_lost_; }
  // True while the Standalone fallback rule is installed in the datapath.
  bool standalone_active() const noexcept { return fallback_installed_; }

  std::size_t open_bundle_count() const noexcept {
    return open_bundles_.size();
  }

 private:
  openflow::ControllerRole role() const;

  // Periodic controller-liveness check (armed when fail_timeout_s > 0):
  // after fail_timeout_s of controller silence the session is declared
  // lost. Secure freezes the tables (does nothing); Standalone installs a
  // low-priority match-all NORMAL rule so new flows keep forwarding via
  // L2 learning. The first controller message after the outage removes it.
  void check_fail_mode();
  void install_fallback();
  void remove_fallback();

  void handle(openflow::OwnedMessage owned);
  // Bundle open/add/commit/discard, unwrapped from the Experimenter
  // envelope. Commit is the only tracked op: it acks (or errors) under
  // the commit's xid for the whole bundle.
  void handle_bundle(const openflow::Experimenter& exp, openflow::Xid xid);
  void reply(const openflow::Message& msg, openflow::Xid xid);
  void send_error(openflow::Xid xid, openflow::ErrorType type,
                  std::uint16_t code);
  // Ends the causal span the controller bound under this mod's xid. For an
  // applied tracked mod the agent opens the barrier_ack span in its place;
  // an applied untracked (fire-and-forget) mod closes its whole trace here,
  // since no ack will.
  void close_southbound_span(openflow::Xid xid, bool applied);

  bool already_committed(std::uint32_t bundle_id) const noexcept;

  sim::SimNetwork& net_;
  topo::NodeId dpid_;
  std::uint64_t conn_id_;
  Southbound southbound_;
  openflow::Xid next_xid_ = 1;
  std::deque<openflow::Xid> acked_mods_;
  // Switch boot count last observed; a change means the datapath power-
  // cycled, so every recorded ack refers to wiped state and must go.
  std::uint64_t last_boot_id_ = 0;

  // Bundle staging: id → (member_index → member). std::map keeps members
  // in index order, so commit applies them in controller order and the
  // completeness check is size + last key.
  std::map<std::uint32_t, std::map<std::uint32_t, openflow::Message>>
      open_bundles_;
  // Recently committed bundle ids: a retransmitted commit acks
  // idempotently instead of double-applying.
  std::deque<std::uint32_t> committed_bundles_;

  // Virtual send times of buffered PacketIns awaiting a FlowMod answer,
  // correlated by buffer_id (reactive apps echo the punt's buffer_id in
  // the FlowMod they install); feeds the packet-in -> flow-mod
  // service-latency histogram. Bounded: punts the controller never
  // answers with a FlowMod age out at the front.
  struct PendingPin {
    std::uint32_t buffer_id;
    double sent_s;
    // Root span of the flow_setup trace born with this punt; abandoned if
    // the pin ages out or the switch crashes before an answer arrives.
    obs::SpanContext trace_root;
  };
  std::deque<PendingPin> pending_pins_;
  static constexpr std::size_t kMaxPendingPins = 1024;

  // Fail-mode tracking.
  double last_ctrl_msg_s_ = 0;
  bool session_lost_ = false;
  bool fallback_installed_ = false;
  // Boot count when the fallback went in: a crash wipes the rule, so a
  // changed boot count must clear fallback_installed_ too.
  std::uint64_t fallback_boot_id_ = 0;
};

}  // namespace zen::controller
