#include "controller/channel.h"

#include "obs/metrics.h"

namespace zen::controller {

namespace {

struct ChannelMetrics {
  obs::Counter& messages;
  obs::Counter& bytes;
  obs::Gauge& in_flight;
  static ChannelMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static ChannelMetrics m{
        reg.counter("zen_controller_channel_messages_total", "",
                    "Southbound wire messages (both directions)"),
        reg.counter("zen_controller_channel_bytes_total", "",
                    "Southbound wire bytes (both directions)"),
        reg.gauge("zen_controller_channel_queue_depth", "",
                  "Wire messages currently in flight across all channels")};
    return m;
  }
};

}  // namespace

void Channel::send_to_b(std::vector<std::uint8_t> bytes) {
  bytes_ab_ += bytes.size();
  ++msgs_ab_;
  auto& metrics = ChannelMetrics::get();
  metrics.messages.inc();
  metrics.bytes.inc(bytes.size());
  metrics.in_flight.add(1);
  events_.schedule_in(latency_, [this, data = std::move(bytes)]() mutable {
    ChannelMetrics::get().in_flight.add(-1);
    if (to_b_) to_b_(std::move(data));
  });
}

void Channel::send_to_a(std::vector<std::uint8_t> bytes) {
  bytes_ba_ += bytes.size();
  ++msgs_ba_;
  auto& metrics = ChannelMetrics::get();
  metrics.messages.inc();
  metrics.bytes.inc(bytes.size());
  metrics.in_flight.add(1);
  events_.schedule_in(latency_, [this, data = std::move(bytes)]() mutable {
    ChannelMetrics::get().in_flight.add(-1);
    if (to_a_) to_a_(std::move(data));
  });
}

}  // namespace zen::controller
