#include "controller/channel.h"

#include "obs/metrics.h"

namespace zen::controller {

namespace {

struct ChannelMetrics {
  obs::Counter& messages;
  obs::Counter& bytes;
  obs::Gauge& in_flight;
  obs::Counter& lost;
  obs::Counter& duplicated;
  obs::Counter& flushes;
  obs::Histo& batch_frames;
  static ChannelMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static ChannelMetrics m{
        reg.counter("zen_controller_channel_messages_total", "",
                    "Southbound wire messages (both directions)"),
        reg.counter("zen_controller_channel_bytes_total", "",
                    "Southbound wire bytes (both directions)"),
        reg.gauge("zen_controller_channel_queue_depth", "",
                  "Wire messages currently in flight across all channels"),
        reg.counter("zen_controller_channel_lost_total", "",
                    "Southbound messages dropped by injected channel faults"),
        reg.counter("zen_controller_channel_duplicated_total", "",
                    "Southbound messages duplicated by injected channel faults"),
        reg.counter("zen_controller_channel_flushes_total", "",
                    "Batched flushes delivered on the southbound wire"),
        reg.histo("zen_controller_channel_batch_frames", "",
                  "Frames per flushed southbound batch")};
    return m;
  }
};

}  // namespace

void Channel::set_faults(const ChannelFaults& faults) {
  faults_ = faults;
  fault_rng_ = util::Rng(faults.seed);
  faulty_ = true;
}

void Channel::clear_faults() {
  faulty_ = false;
  faults_ = ChannelFaults{};
}

void Channel::deliver_after(Side to, double delay,
                            std::vector<std::uint8_t> bytes) {
  ChannelMetrics::get().in_flight.add(1);
  events_.schedule_in(delay, [this, to, data = std::move(bytes)]() mutable {
    ChannelMetrics::get().in_flight.add(-1);
    if (!connected_) return;  // peer died while the message was in flight
    auto& fn = (to == Side::A) ? to_a_ : to_b_;
    if (fn) fn(std::move(data));
  });
}

void Channel::fault_one_frame(Side to, std::span<const std::uint8_t> frame,
                              std::vector<std::uint8_t>& batch) {
  auto& metrics = ChannelMetrics::get();
  if (faults_.loss_prob > 0 && fault_rng_.next_bool(faults_.loss_prob)) {
    ++lost_;
    metrics.lost.inc();
    return;
  }
  double delay = latency_;
  if (faults_.extra_delay_max_s > 0)
    delay += fault_rng_.next_double() * faults_.extra_delay_max_s;
  if (faults_.duplicate_prob > 0 &&
      fault_rng_.next_bool(faults_.duplicate_prob)) {
    ++duplicated_;
    metrics.duplicated.inc();
    double dup_delay = latency_;
    if (faults_.extra_delay_max_s > 0)
      dup_delay += fault_rng_.next_double() * faults_.extra_delay_max_s;
    deliver_after(to, dup_delay,
                  std::vector<std::uint8_t>(frame.begin(), frame.end()));
  }
  if (delay == latency_) {
    // Survivor with no jitter: ride the main batch delivery.
    batch.insert(batch.end(), frame.begin(), frame.end());
  } else {
    deliver_after(to, delay,
                  std::vector<std::uint8_t>(frame.begin(), frame.end()));
  }
}

void Channel::flush(Side to) {
  auto& arena = stage(to);
  if (arena.empty()) return;
  if (!connected_) {
    arena.clear();
    return;
  }
  const std::size_t nframes = arena.frame_count();
  const std::size_t nbytes = arena.size();
  auto& bytes_ctr = (to == Side::B) ? bytes_ab_ : bytes_ba_;
  auto& msgs_ctr = (to == Side::B) ? msgs_ab_ : msgs_ba_;
  bytes_ctr += nbytes;
  msgs_ctr += nframes;
  ++flushes_;
  auto& metrics = ChannelMetrics::get();
  metrics.messages.inc(nframes);
  metrics.bytes.inc(nbytes);
  metrics.flushes.inc();
  metrics.batch_frames.record(static_cast<double>(nframes));

  if (!faulty_) {
    // Zero-copy fast path: the arena's buffer IS the in-flight batch.
    deliver_after(to, latency_, arena.take());
    return;
  }

  // Impaired path: each frame runs the v1 fault ladder independently, so a
  // batch is exactly as exposed to loss/dup/jitter as per-message sends
  // were. Unjittered survivors coalesce back into one delivery.
  std::vector<std::uint8_t> batch;
  batch.reserve(nbytes);
  openflow::BatchReader reader(arena.bytes());
  while (auto frame = reader.next()) {
    if (!frame->ok()) break;  // unreachable: we encoded these frames
    fault_one_frame(to, frame->value().frame, batch);
  }
  arena.clear();
  if (!batch.empty()) deliver_after(to, latency_, std::move(batch));
}

void Channel::send(Side to, std::vector<std::uint8_t> bytes) {
  if (!connected_) return;
  auto& bytes_ctr = (to == Side::B) ? bytes_ab_ : bytes_ba_;
  auto& msgs_ctr = (to == Side::B) ? msgs_ab_ : msgs_ba_;
  bytes_ctr += bytes.size();
  ++msgs_ctr;
  auto& metrics = ChannelMetrics::get();
  metrics.messages.inc();
  metrics.bytes.inc(bytes.size());

  double delay = latency_;
  if (faulty_) {
    if (faults_.loss_prob > 0 && fault_rng_.next_bool(faults_.loss_prob)) {
      ++lost_;
      metrics.lost.inc();
      return;
    }
    if (faults_.extra_delay_max_s > 0)
      delay += fault_rng_.next_double() * faults_.extra_delay_max_s;
    if (faults_.duplicate_prob > 0 &&
        fault_rng_.next_bool(faults_.duplicate_prob)) {
      ++duplicated_;
      metrics.duplicated.inc();
      double dup_delay = latency_;
      if (faults_.extra_delay_max_s > 0)
        dup_delay += fault_rng_.next_double() * faults_.extra_delay_max_s;
      deliver_after(to, dup_delay, bytes);
    }
  }
  deliver_after(to, delay, std::move(bytes));
}

}  // namespace zen::controller
