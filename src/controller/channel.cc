#include "controller/channel.h"

#include "obs/metrics.h"

namespace zen::controller {

namespace {

struct ChannelMetrics {
  obs::Counter& messages;
  obs::Counter& bytes;
  obs::Gauge& in_flight;
  obs::Counter& lost;
  obs::Counter& duplicated;
  static ChannelMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static ChannelMetrics m{
        reg.counter("zen_controller_channel_messages_total", "",
                    "Southbound wire messages (both directions)"),
        reg.counter("zen_controller_channel_bytes_total", "",
                    "Southbound wire bytes (both directions)"),
        reg.gauge("zen_controller_channel_queue_depth", "",
                  "Wire messages currently in flight across all channels"),
        reg.counter("zen_controller_channel_lost_total", "",
                    "Southbound messages dropped by injected channel faults"),
        reg.counter("zen_controller_channel_duplicated_total", "",
                    "Southbound messages duplicated by injected channel faults")};
    return m;
  }
};

}  // namespace

void Channel::set_faults(const ChannelFaults& faults) {
  faults_ = faults;
  fault_rng_ = util::Rng(faults.seed);
  faulty_ = true;
}

void Channel::clear_faults() {
  faulty_ = false;
  faults_ = ChannelFaults{};
}

void Channel::deliver_after(Side to, double delay,
                            std::vector<std::uint8_t> bytes) {
  ChannelMetrics::get().in_flight.add(1);
  events_.schedule_in(delay, [this, to, data = std::move(bytes)]() mutable {
    ChannelMetrics::get().in_flight.add(-1);
    if (!connected_) return;  // peer died while the message was in flight
    auto& fn = (to == Side::A) ? to_a_ : to_b_;
    if (fn) fn(std::move(data));
  });
}

void Channel::send(Side to, std::vector<std::uint8_t> bytes) {
  if (!connected_) return;
  auto& bytes_ctr = (to == Side::B) ? bytes_ab_ : bytes_ba_;
  auto& msgs_ctr = (to == Side::B) ? msgs_ab_ : msgs_ba_;
  bytes_ctr += bytes.size();
  ++msgs_ctr;
  auto& metrics = ChannelMetrics::get();
  metrics.messages.inc();
  metrics.bytes.inc(bytes.size());

  double delay = latency_;
  if (faulty_) {
    if (faults_.loss_prob > 0 && fault_rng_.next_bool(faults_.loss_prob)) {
      ++lost_;
      metrics.lost.inc();
      return;
    }
    if (faults_.extra_delay_max_s > 0)
      delay += fault_rng_.next_double() * faults_.extra_delay_max_s;
    if (faults_.duplicate_prob > 0 &&
        fault_rng_.next_bool(faults_.duplicate_prob)) {
      ++duplicated_;
      metrics.duplicated.inc();
      double dup_delay = latency_;
      if (faults_.extra_delay_max_s > 0)
        dup_delay += fault_rng_.next_double() * faults_.extra_delay_max_s;
      deliver_after(to, dup_delay, bytes);
    }
  }
  deliver_after(to, delay, std::move(bytes));
}

void Channel::send_to_b(std::vector<std::uint8_t> bytes) {
  send(Side::B, std::move(bytes));
}

void Channel::send_to_a(std::vector<std::uint8_t> bytes) {
  send(Side::A, std::move(bytes));
}

}  // namespace zen::controller
