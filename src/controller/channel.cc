#include "controller/channel.h"

namespace zen::controller {

void Channel::send_to_b(std::vector<std::uint8_t> bytes) {
  bytes_ab_ += bytes.size();
  ++msgs_ab_;
  events_.schedule_in(latency_, [this, data = std::move(bytes)]() mutable {
    if (to_b_) to_b_(std::move(data));
  });
}

void Channel::send_to_a(std::vector<std::uint8_t> bytes) {
  bytes_ba_ += bytes.size();
  ++msgs_ba_;
  events_.schedule_in(latency_, [this, data = std::move(bytes)]() mutable {
    if (to_a_) to_a_(std::move(data));
  });
}

}  // namespace zen::controller
