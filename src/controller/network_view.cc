#include "controller/network_view.h"

#include <algorithm>

namespace zen::controller {

void NetworkView::restrict_scope(const std::vector<Dpid>& dpids) {
  scoped_ = true;
  scope_.insert(dpids.begin(), dpids.end());
}

void NetworkView::add_to_scope(Dpid dpid) {
  if (scoped_) scope_.insert(dpid);
}

void NetworkView::add_switch(Dpid dpid, const openflow::FeaturesReply& features) {
  if (!in_scope(dpid)) return;
  SwitchEntry entry;
  entry.features = features;
  for (const auto& port : features.ports) entry.port_up[port.port_no] = port.link_up;
  switches_[dpid] = std::move(entry);
  ++version_;
  ++topology_epoch_;
}

void NetworkView::record_table_status(Dpid dpid,
                                      const openflow::TableStatus& status) {
  table_status_[dpid] = status;
}

const openflow::TableStatus* NetworkView::table_status(Dpid dpid) const {
  const auto it = table_status_.find(dpid);
  return it == table_status_.end() ? nullptr : &it->second;
}

bool NetworkView::under_pressure(Dpid dpid) const {
  const openflow::TableStatus* status = table_status(dpid);
  return status && status->reason == openflow::VacancyReason::VacancyDown;
}

void NetworkView::remove_switch(Dpid dpid) {
  if (switches_.erase(dpid) == 0) return;
  table_status_.erase(dpid);
  links_.erase(std::remove_if(links_.begin(), links_.end(),
                              [&](const DiscoveredLink& l) {
                                return l.a == dpid || l.b == dpid;
                              }),
               links_.end());
  ++version_;
  ++topology_epoch_;
}

std::vector<Dpid> NetworkView::switch_ids() const {
  std::vector<Dpid> out;
  out.reserve(switches_.size());
  for (const auto& [dpid, entry] : switches_) out.push_back(dpid);
  std::sort(out.begin(), out.end());
  return out;
}

const openflow::FeaturesReply* NetworkView::switch_features(Dpid dpid) const {
  const auto it = switches_.find(dpid);
  return it == switches_.end() ? nullptr : &it->second.features;
}

void NetworkView::set_port_state(Dpid dpid, std::uint32_t port, bool up) {
  const auto it = switches_.find(dpid);
  if (it == switches_.end()) return;
  it->second.port_up[port] = up;
  ++version_;
  ++topology_epoch_;
}

bool NetworkView::learn_link(Dpid a, std::uint32_t a_port, Dpid b,
                             std::uint32_t b_port, double now) {
  // A scoped view only models links internal to its group; border links
  // belong to the root controller's abstract inter-group topology.
  if (!in_scope(a) || !in_scope(b)) return false;
  for (auto& link : links_) {
    const bool same_fwd = link.a == a && link.a_port == a_port && link.b == b &&
                          link.b_port == b_port;
    const bool same_rev = link.a == b && link.a_port == b_port && link.b == a &&
                          link.b_port == a_port;
    if (same_fwd || same_rev) {
      link.last_seen = now;
      if (!link.up) {
        link.up = true;
        ++version_;
        ++topology_epoch_;
        return true;
      }
      return false;
    }
  }
  links_.push_back(DiscoveredLink{a, a_port, b, b_port, true, now});
  ++version_;
  ++topology_epoch_;
  return true;
}

std::vector<DiscoveredLink> NetworkView::mark_links_down(Dpid dpid,
                                                         std::uint32_t port) {
  std::vector<DiscoveredLink> affected;
  for (auto& link : links_) {
    const bool touches = (link.a == dpid && link.a_port == port) ||
                         (link.b == dpid && link.b_port == port);
    if (touches && link.up) {
      link.up = false;
      affected.push_back(link);
    }
  }
  if (!affected.empty()) {
    ++version_;
    ++topology_epoch_;
  }
  return affected;
}

bool NetworkView::is_infrastructure_port(Dpid dpid, std::uint32_t port) const {
  return std::any_of(links_.begin(), links_.end(),
                     [&](const DiscoveredLink& l) {
                       return (l.a == dpid && l.a_port == port) ||
                              (l.b == dpid && l.b_port == port);
                     });
}

void NetworkView::mark_weak_port(Dpid dpid, std::uint32_t port) {
  weak_ports_[dpid].insert(port);
}

bool NetworkView::is_weak_port(Dpid dpid, std::uint32_t port) const {
  const auto it = weak_ports_.find(dpid);
  return it != weak_ports_.end() && it->second.contains(port);
}

bool NetworkView::learn_host(net::MacAddress mac, net::Ipv4Address ip,
                             Dpid dpid, std::uint32_t port, double now) {
  if (!in_scope(dpid)) return false;
  if (is_weak_port(dpid, port)) return false;
  const auto [it, inserted] = hosts_by_mac_.try_emplace(mac);
  auto& info = it->second;
  const bool changed =
      inserted || info.dpid != dpid || info.port != port || info.ip != ip;
  info.mac = mac;
  info.ip = ip;
  info.dpid = dpid;
  info.port = port;
  info.last_seen = now;
  if (ip != net::Ipv4Address{}) ip_to_mac_[ip] = mac;
  if (changed) ++version_;
  return changed;
}

const HostInfo* NetworkView::host_by_mac(net::MacAddress mac) const {
  const auto it = hosts_by_mac_.find(mac);
  return it == hosts_by_mac_.end() ? nullptr : &it->second;
}

const HostInfo* NetworkView::host_by_ip(net::Ipv4Address ip) const {
  const auto it = ip_to_mac_.find(ip);
  return it == ip_to_mac_.end() ? nullptr : host_by_mac(it->second);
}

std::vector<HostInfo> NetworkView::hosts() const {
  std::vector<HostInfo> out;
  out.reserve(hosts_by_mac_.size());
  for (const auto& [mac, info] : hosts_by_mac_) out.push_back(info);
  std::sort(out.begin(), out.end(), [](const HostInfo& a, const HostInfo& b) {
    return a.mac.to_u64() < b.mac.to_u64();
  });
  return out;
}

topo::Topology NetworkView::as_topology(bool include_hosts) const {
  topo::Topology topo;
  for (const auto& [dpid, entry] : switches_)
    topo.add_node(dpid, topo::NodeKind::Switch);
  for (const auto& link : links_) {
    if (!link.up) continue;
    if (!topo.node(link.a) || !topo.node(link.b)) continue;
    topo.add_link(link.a, link.a_port, link.b, link.b_port);
  }
  if (include_hosts) {
    for (const auto& [mac, info] : hosts_by_mac_) {
      if (!topo.node(info.dpid)) continue;
      const topo::NodeId host_id = mac.to_u64();
      topo.add_node(host_id, topo::NodeKind::Host);
      topo.add_link(host_id, 1, info.dpid, info.port);
    }
  }
  return topo;
}

topo::PathEngine& NetworkView::path_engine() const {
  if (path_engine_.epoch() != topology_epoch_)
    path_engine_.sync(as_topology(/*include_hosts=*/false), topology_epoch_);
  return path_engine_;
}

}  // namespace zen::controller
