#include "controller/southbound.h"

namespace zen::controller {

Southbound::Southbound(sim::EventQueue& events, Channel& channel,
                       Channel::Side self, bool batch)
    : events_(events),
      channel_(channel),
      peer_(self == Channel::Side::A ? Channel::Side::B : Channel::Side::A),
      batch_(batch) {
  channel_.set_receiver(self, [this](std::vector<std::uint8_t> bytes) {
    on_raw(std::move(bytes));
  });
}

void Southbound::send(const openflow::Message& msg, openflow::Xid xid) {
  channel_.stage(peer_).append(msg, xid);
  if (!batch_) {
    channel_.flush(peer_);
    return;
  }
  if (in_rx_) return;  // flushed synchronously when on_raw returns
  if (!flush_scheduled_) {
    flush_scheduled_ = true;
    events_.schedule_in(0, [this] {
      flush_scheduled_ = false;
      channel_.flush(peer_);
    });
  }
}

void Southbound::flush() { channel_.flush(peer_); }

void Southbound::on_raw(std::vector<std::uint8_t> bytes) {
  if (gate_ && !gate_()) return;
  std::vector<openflow::OwnedMessage> batch;
  openflow::BatchReader reader({bytes.data(), bytes.size()});
  while (auto frame = reader.next()) {
    if (!frame->ok()) {
      if (bad_frame_) bad_frame_(frame->error());
      break;  // terminal for this batch; earlier frames still delivered
    }
    auto msg = openflow::decode_frame(frame->value());
    if (!msg.ok()) {
      if (bad_frame_) bad_frame_(msg.error());
      continue;  // framing is intact: later frames are still trustworthy
    }
    batch.push_back(std::move(msg).value());
  }
  if (batch.empty() || !rx_) return;
  // Replies sent while the receiver runs coalesce into one response batch,
  // flushed here without an extra scheduler event.
  in_rx_ = true;
  rx_(std::move(batch));
  in_rx_ = false;
  if (channel_.has_staged(peer_)) channel_.flush(peer_);
}

}  // namespace zen::controller
