#include "util/strings.h"

#include <cstdarg>
#include <cstdio>

namespace zen::util {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return std::nullopt;
    v = v * 10 + digit;
  }
  return v;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string format_bps(double bits_per_second) {
  const char* unit = "bit/s";
  double v = bits_per_second;
  if (v >= 1e9) {
    v /= 1e9;
    unit = "Gbit/s";
  } else if (v >= 1e6) {
    v /= 1e6;
    unit = "Mbit/s";
  } else if (v >= 1e3) {
    v /= 1e3;
    unit = "kbit/s";
  }
  return format("%.2f %s", v, unit);
}

}  // namespace zen::util
