#include "util/token_bucket.h"

#include <algorithm>

namespace zen::util {

TokenBucket::TokenBucket(double rate, double burst) noexcept
    : rate_(rate), burst_(burst), tokens_(burst) {}

void TokenBucket::refill(double now) noexcept {
  if (now <= last_refill_) return;
  tokens_ = std::min(burst_, tokens_ + (now - last_refill_) * rate_);
  last_refill_ = now;
}

bool TokenBucket::try_consume(double tokens, double now) noexcept {
  refill(now);
  if (tokens_ + 1e-12 < tokens) return false;
  tokens_ -= tokens;
  return true;
}

double TokenBucket::available(double now) noexcept {
  refill(now);
  return tokens_;
}

double TokenBucket::peek_available(double now) const noexcept {
  if (now <= last_refill_) return tokens_;
  return std::min(burst_, tokens_ + (now - last_refill_) * rate_);
}

}  // namespace zen::util
