// Minimal leveled logger.
//
// Usage:
//   ZEN_LOG(Info) << "switch " << id << " connected";
//
// The logger writes to stderr. The global level gates emission; messages
// below the level are formatted lazily (the stream object is only built
// when the message will actually be emitted).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace zen::util {

enum class LogLevel : std::uint8_t { Trace = 0, Debug, Info, Warn, Error, Off };

// Returns the mutable global log level. Defaults to Warn so tests and
// benchmarks stay quiet unless a caller opts in; the ZEN_LOG_LEVEL
// environment variable (trace|debug|info|warn|error|off), parsed once at
// first use, overrides the default.
LogLevel& global_log_level() noexcept;

std::string_view to_string(LogLevel level) noexcept;

// Parses a level name (case-insensitive); returns false on unknown input.
bool parse_log_level(std::string_view text, LogLevel& out) noexcept;

namespace detail {

// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace zen::util

#define ZEN_LOG_ENABLED(level_)                      \
  (::zen::util::LogLevel::level_ >= ::zen::util::global_log_level())

#define ZEN_LOG(level_)                              \
  if (!ZEN_LOG_ENABLED(level_)) {                    \
  } else                                             \
    ::zen::util::detail::LogMessage(::zen::util::LogLevel::level_, __FILE__, \
                                    __LINE__)
