#include "util/buffer.h"

#include <algorithm>

namespace zen::util {

void ByteWriter::fixed_string(std::string_view s, std::size_t width) {
  const std::size_t n = std::min(s.size(), width);
  out_.insert(out_.end(), s.begin(), s.begin() + static_cast<std::ptrdiff_t>(n));
  zeros(width - n);
}

std::string ByteReader::fixed_string(std::size_t width) {
  if (!ensure(width)) return {};
  const auto* begin = reinterpret_cast<const char*>(data_.data() + pos_);
  std::size_t len = 0;
  while (len < width && begin[len] != '\0') ++len;
  pos_ += width;
  return std::string(begin, len);
}

}  // namespace zen::util
