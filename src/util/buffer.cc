#include "util/buffer.h"

#include <algorithm>

namespace zen::util {

void ByteWriter::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 24));
  out_.push_back(static_cast<std::uint8_t>(v >> 16));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void ByteWriter::zeros(std::size_t n) { out_.insert(out_.end(), n, 0); }

void ByteWriter::fixed_string(std::string_view s, std::size_t width) {
  const std::size_t n = std::min(s.size(), width);
  out_.insert(out_.end(), s.begin(), s.begin() + static_cast<std::ptrdiff_t>(n));
  zeros(width - n);
}

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  out_[offset] = static_cast<std::uint8_t>(v >> 8);
  out_[offset + 1] = static_cast<std::uint8_t>(v);
}

bool ByteReader::ensure(std::size_t n) noexcept {
  if (failed_ || data_.size() - pos_ < n) {
    failed_ = true;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() {
  if (!ensure(1)) return 0;
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  if (!ensure(2)) return 0;
  const std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  if (!ensure(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  const std::uint64_t hi = u32();
  const std::uint64_t lo = u32();
  return (hi << 32) | lo;
}

void ByteReader::bytes(std::span<std::uint8_t> out) {
  if (!ensure(out.size())) return;
  std::memcpy(out.data(), data_.data() + pos_, out.size());
  pos_ += out.size();
}

void ByteReader::skip(std::size_t n) {
  if (!ensure(n)) return;
  pos_ += n;
}

std::string ByteReader::fixed_string(std::size_t width) {
  if (!ensure(width)) return {};
  const auto* begin = reinterpret_cast<const char*>(data_.data() + pos_);
  std::size_t len = 0;
  while (len < width && begin[len] != '\0') ++len;
  pos_ += width;
  return std::string(begin, len);
}

}  // namespace zen::util
