// Network-byte-order (big-endian) serialization primitives.
//
// ByteWriter appends to a caller-owned std::vector<uint8_t>; ByteReader
// consumes a std::span<const uint8_t>. Both are bounds-checked: the writer
// grows, the reader reports truncation through ok()/fail flags so message
// decoders can parse a whole struct and check validity once at the end.
//
// The integer accessors are header-inline on purpose: they run a couple
// hundred times per simulated packet (codec + header parse/serialize), so
// each one must compile down to a bounds check plus a byteswapped load or
// store, not an out-of-line call.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace zen::util {

namespace detail {

// std::byteswap is C++23 library; not all toolchains ship it yet. The
// builtins compile to single bswap instructions on x86/ARM.
inline std::uint16_t bswap(std::uint16_t v) noexcept {
  return __builtin_bswap16(v);
}
inline std::uint32_t bswap(std::uint32_t v) noexcept {
  return __builtin_bswap32(v);
}
inline std::uint64_t bswap(std::uint64_t v) noexcept {
  return __builtin_bswap64(v);
}

}  // namespace detail

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { put_be(v); }
  void u32(std::uint32_t v) { put_be(v); }
  void u64(std::uint64_t v) { put_be(v); }
  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }
  void zeros(std::size_t n) { out_.insert(out_.end(), n, 0); }

  // Writes a fixed-size field from a string, padding with NUL bytes and
  // truncating if longer than `width`.
  void fixed_string(std::string_view s, std::size_t width);

  std::size_t size() const noexcept { return out_.size(); }

  // Patches a big-endian u16/u32 previously written at `offset`. Used to
  // back-fill length fields after a message body is serialized.
  void patch_u16(std::size_t offset, std::uint16_t v) {
    patch_be(offset, v);
  }
  void patch_u32(std::size_t offset, std::uint32_t v) {
    patch_be(offset, v);
  }

 private:
  template <typename T>
  void put_be(T v) {
    if constexpr (std::endian::native == std::endian::little)
      v = detail::bswap(v);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    out_.insert(out_.end(), p, p + sizeof(T));
  }

  template <typename T>
  void patch_be(std::size_t offset, T v) {
    if constexpr (std::endian::native == std::endian::little)
      v = detail::bswap(v);
    std::memcpy(out_.data() + offset, &v, sizeof(T));
  }

  std::vector<std::uint8_t>& out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    if (!ensure(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t u16() { return get_be<std::uint16_t>(); }
  std::uint32_t u32() { return get_be<std::uint32_t>(); }
  std::uint64_t u64() { return get_be<std::uint64_t>(); }
  void bytes(std::span<std::uint8_t> out) {
    if (!ensure(out.size())) return;
    std::memcpy(out.data(), data_.data() + pos_, out.size());
    pos_ += out.size();
  }
  void skip(std::size_t n) {
    if (!ensure(n)) return;
    pos_ += n;
  }
  std::string fixed_string(std::size_t width);

  // Remaining unread bytes.
  std::span<const std::uint8_t> rest() const noexcept {
    return data_.subspan(pos_);
  }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  std::size_t position() const noexcept { return pos_; }

  // True unless any read ran past the end of the buffer.
  bool ok() const noexcept { return !failed_; }

 private:
  bool ensure(std::size_t n) noexcept {
    if (failed_ || data_.size() - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  template <typename T>
  T get_be() {
    if (!ensure(sizeof(T))) return 0;
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    if constexpr (std::endian::native == std::endian::little)
      v = detail::bswap(v);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace zen::util
