// Network-byte-order (big-endian) serialization primitives.
//
// ByteWriter appends to a caller-owned std::vector<uint8_t>; ByteReader
// consumes a std::span<const uint8_t>. Both are bounds-checked: the writer
// grows, the reader reports truncation through ok()/fail flags so message
// decoders can parse a whole struct and check validity once at the end.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace zen::util {

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(std::span<const std::uint8_t> data);
  void zeros(std::size_t n);

  // Writes a fixed-size field from a string, padding with NUL bytes and
  // truncating if longer than `width`.
  void fixed_string(std::string_view s, std::size_t width);

  std::size_t size() const noexcept { return out_.size(); }

  // Patches a big-endian u16 previously written at `offset`. Used to
  // back-fill length fields after a message body is serialized.
  void patch_u16(std::size_t offset, std::uint16_t v);

 private:
  std::vector<std::uint8_t>& out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  void bytes(std::span<std::uint8_t> out);
  void skip(std::size_t n);
  std::string fixed_string(std::size_t width);

  // Remaining unread bytes.
  std::span<const std::uint8_t> rest() const noexcept {
    return data_.subspan(pos_);
  }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  std::size_t position() const noexcept { return pos_; }

  // True unless any read ran past the end of the buffer.
  bool ok() const noexcept { return !failed_; }

 private:
  bool ensure(std::size_t n) noexcept;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace zen::util
