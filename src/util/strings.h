// Small string helpers shared across modules.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace zen::util {

// Splits on a single character; empty fields are preserved.
std::vector<std::string_view> split(std::string_view s, char sep);

// Parses an unsigned decimal integer; nullopt on any non-digit or overflow.
std::optional<std::uint64_t> parse_u64(std::string_view s);

// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// "1.50 Gbit/s"-style human formatting for rates in bits per second.
std::string format_bps(double bits_per_second);

}  // namespace zen::util
