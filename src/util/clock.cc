#include "util/clock.h"

#include <chrono>

namespace zen::util {

namespace {

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct TimeSourceState {
  TimeSourceFn fn;
  bool is_virtual = false;
  std::uint64_t generation = 0;
  std::uint64_t installs = 0;
  std::uint64_t epoch_ns = steady_now_ns();
};

TimeSourceState& state() {
  static TimeSourceState s;
  return s;
}

}  // namespace

double now_seconds() {
  auto& s = state();
  if (s.fn) return s.fn();
  return static_cast<double>(steady_now_ns() - s.epoch_ns) * 1e-9;
}

std::uint64_t set_time_source(TimeSourceFn fn, bool is_virtual) {
  auto& s = state();
  s.fn = std::move(fn);
  s.is_virtual = s.fn ? is_virtual : false;
  if (s.fn) ++s.installs;
  return ++s.generation;
}

void clear_time_source(std::uint64_t token) {
  auto& s = state();
  if (s.generation != token) return;
  s.fn = nullptr;
  s.is_virtual = false;
}

bool time_source_is_virtual() noexcept { return state().is_virtual; }

std::uint64_t time_source_install_count() noexcept { return state().installs; }

std::uint64_t wall_nanos() noexcept { return steady_now_ns(); }

}  // namespace zen::util
