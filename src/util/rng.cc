#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace zen::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// SplitMix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  // xoshiro256**
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
  assert(lo <= hi);
  return lo + next_below(hi - lo + 1);
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_exponential(double mean) noexcept {
  assert(mean > 0);
  double u = next_double();
  // Guard against log(0).
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

ZipfGenerator::ZipfGenerator(std::size_t n, double alpha) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

std::size_t ZipfGenerator::next(Rng& rng) const noexcept {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it == cdf_.end() ? cdf_.size() - 1
                                                   : it - cdf_.begin());
}

}  // namespace zen::util
