// Process-wide time source shared by logging and observability.
//
// Defaults to the wall clock (seconds since process start). A simulation
// installs its virtual clock once (set_time_source) and every timestamp in
// the process — log prefixes, trace events, metrics snapshots — then reads
// virtual seconds. This is the single seam that makes "virtual-time
// tracing" work: instrumented code never asks which clock it is on.
#pragma once

#include <cstdint>
#include <functional>

namespace zen::util {

using TimeSourceFn = std::function<double()>;

// Current time in seconds from the installed source (wall clock by default).
double now_seconds();

// Installs a replacement time source. `is_virtual` marks timestamps as
// simulator time so renderers can label them. Passing an empty function
// restores the wall clock. Returns a token for clear_time_source.
std::uint64_t set_time_source(TimeSourceFn fn, bool is_virtual);

// Restores the wall clock iff `token` identifies the currently installed
// source — lets an owner (a dying SimNetwork) uninstall itself without
// clobbering a newer installation.
void clear_time_source(std::uint64_t token);

// True while a virtual (simulator) time source is installed.
bool time_source_is_virtual() noexcept;

// How many times a (non-empty) time source has been installed over the
// process lifetime. Benches record this in their run metadata so a result
// file says whether numbers were measured under virtual or wall time.
std::uint64_t time_source_install_count() noexcept;

// Monotonic wall-clock nanoseconds, independent of the installed source.
// Instrumentation uses this for real execution cost (e.g. lookup latency)
// even when event timestamps are virtual.
std::uint64_t wall_nanos() noexcept;

}  // namespace zen::util
