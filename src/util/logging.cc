#include "util/logging.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "util/clock.h"

namespace zen::util {

bool parse_log_level(std::string_view text, LogLevel& out) noexcept {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text)
    lower.push_back(static_cast<char>(
        c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c));
  if (lower == "trace") out = LogLevel::Trace;
  else if (lower == "debug") out = LogLevel::Debug;
  else if (lower == "info") out = LogLevel::Info;
  else if (lower == "warn" || lower == "warning") out = LogLevel::Warn;
  else if (lower == "error") out = LogLevel::Error;
  else if (lower == "off" || lower == "none") out = LogLevel::Off;
  else return false;
  return true;
}

LogLevel& global_log_level() noexcept {
  static LogLevel level = [] {
    LogLevel parsed = LogLevel::Warn;
    if (const char* env = std::getenv("ZEN_LOG_LEVEL"))
      parse_log_level(env, parsed);
    return parsed;
  }();
  return level;
}

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info:  return "INFO";
    case LogLevel::Warn:  return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off:   return "OFF";
  }
  return "?";
}

namespace detail {

LogMessage::LogMessage(LogLevel level, std::string_view file, int line)
    : level_(level) {
  // Keep only the basename; full paths are noise in log lines.
  const auto slash = file.rfind('/');
  if (slash != std::string_view::npos) file = file.substr(slash + 1);
  // Timestamp from the shared time source — virtual seconds ('v' suffix)
  // when a simulation installed its clock, wall seconds otherwise. The
  // same source stamps TraceRecorder events, so log lines and trace spans
  // correlate directly.
  char ts[40];
  std::snprintf(ts, sizeof ts, "[%.6f%s] ", now_seconds(),
                time_source_is_virtual() ? "v" : "");
  stream_ << ts << '[' << to_string(level_) << "] " << file << ':' << line
          << ": ";
}

LogMessage::~LogMessage() {
  stream_ << '\n';
  std::cerr << stream_.str();
}

}  // namespace detail

}  // namespace zen::util
