#include "util/logging.h"

#include <iostream>

namespace zen::util {

LogLevel& global_log_level() noexcept {
  static LogLevel level = LogLevel::Warn;
  return level;
}

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info:  return "INFO";
    case LogLevel::Warn:  return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off:   return "OFF";
  }
  return "?";
}

namespace detail {

LogMessage::LogMessage(LogLevel level, std::string_view file, int line)
    : level_(level) {
  // Keep only the basename; full paths are noise in log lines.
  const auto slash = file.rfind('/');
  if (slash != std::string_view::npos) file = file.substr(slash + 1);
  stream_ << '[' << to_string(level_) << "] " << file << ':' << line << ": ";
}

LogMessage::~LogMessage() {
  stream_ << '\n';
  std::cerr << stream_.str();
}

}  // namespace detail

}  // namespace zen::util
