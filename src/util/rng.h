// Deterministic pseudo-random sources for workload generation.
//
// All simulation and benchmark randomness flows through Rng (xoshiro256**)
// so runs are reproducible from a single seed. ZipfGenerator produces the
// skewed popularity distributions used by the flow-table and cache
// experiments (E3/E4).
#pragma once

#include <cstdint>
#include <vector>

namespace zen::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept;

  std::uint64_t next_u64() noexcept;

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  // Uniform in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept;

  // Uniform in [0, 1).
  double next_double() noexcept;

  bool next_bool(double p_true) noexcept { return next_double() < p_true; }

  // Exponentially distributed with the given mean (> 0). Used for Poisson
  // inter-arrival times in traffic generators.
  double next_exponential(double mean) noexcept;

  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = next_below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

// Zipf(alpha) over ranks 1..n, returned 0-based. alpha == 0 degenerates to
// uniform. Uses the cumulative table method: O(n) setup, O(log n) sampling.
class ZipfGenerator {
 public:
  ZipfGenerator(std::size_t n, double alpha);

  std::size_t next(Rng& rng) const noexcept;

  std::size_t universe() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace zen::util
