// Epoch-based reclamation (EBR) for read-mostly shared structures.
//
// RCU-flavored deferred deletion: readers pin an epoch guard around each
// traversal (two atomic stores, no locks, no shared writes beyond the
// reader's own slot); writers unlink an object from the shared structure
// and retire() it instead of deleting. A retired object is freed only once
// every reader pinned at (or before) the retire epoch has unpinned, so a
// reader that already loaded a pointer can keep dereferencing it safely.
//
// Safety argument for collect(): an object retired at epoch R was unlinked
// before its retire stamp was taken, so a reader that pins afterward and
// observes epoch > R can no longer reach it; only readers whose slot epoch
// is <= R may still hold references. Garbage stamped R is therefore freed
// when the minimum epoch over currently-pinned slots exceeds R. The global
// epoch advances only when every pinned reader has caught up to it, which
// bounds how long garbage can survive to "the slowest current reader".
//
// Used by the dataplane's concurrent megaflow ways and the FlowTable
// read-snapshot path (version-bump clears retire whole tables). The
// single-threaded simulator never touches this; only concurrent modes do.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace zen::util {

class EpochReclaimer {
 public:
  // Process-wide instance shared by all concurrent dataplane structures.
  static EpochReclaimer& global();

  EpochReclaimer() = default;
  // Frees every remaining retired object. No reader may hold a live Guard.
  ~EpochReclaimer();
  EpochReclaimer(const EpochReclaimer&) = delete;
  EpochReclaimer& operator=(const EpochReclaimer&) = delete;

  // Reader-side critical section: objects reachable from the shared
  // structure while a Guard is alive stay allocated until it dies.
  class Guard {
   public:
    explicit Guard(EpochReclaimer& owner);
    ~Guard();
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EpochReclaimer* owner_;
    std::size_t slot_;
  };

  Guard pin() { return Guard(*this); }

  // Schedules `p` for deletion once no pinned reader can still reach it.
  // The caller must already have unlinked `p` from the shared structure.
  template <typename T>
  void retire(T* p) {
    retire_erased(p, [](void* q) { delete static_cast<T*>(q); });
  }
  void retire_erased(void* p, void (*deleter)(void*));

  // Tries to advance the epoch and frees all safe garbage. Called
  // automatically every kCollectStride retires; callable any time.
  // Returns the number of objects freed.
  std::size_t collect();

  // ---- introspection (tests / leak accounting) ----
  std::size_t pending() const;                 // retired, not yet freed
  std::uint64_t retired_total() const noexcept {
    return retired_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t freed_total() const noexcept {
    return freed_total_.load(std::memory_order_relaxed);
  }

 private:
  // Reader slots: fixed pool so pinning never allocates. 128 concurrent
  // guards is far beyond any engine configuration (workers <= cores).
  static constexpr std::size_t kSlots = 128;
  static constexpr std::size_t kCollectStride = 64;

  struct alignas(64) Slot {
    // 0 = free; 1 = claimed but not pinned; >= 2 = pinned at that epoch.
    std::atomic<std::uint64_t> epoch{0};
  };

  struct Garbage {
    void* ptr;
    void (*deleter)(void*);
    std::uint64_t epoch;
  };

  std::size_t acquire_slot();
  void release_slot(std::size_t slot);

  // Epochs start at 2 so slot states 0/1 are unambiguous.
  std::atomic<std::uint64_t> epoch_{2};
  Slot slots_[kSlots];
  std::atomic<std::uint64_t> retired_total_{0};
  std::atomic<std::uint64_t> freed_total_{0};
  mutable std::mutex garbage_mu_;
  std::vector<Garbage> garbage_;
  std::size_t retires_since_collect_ = 0;
};

}  // namespace zen::util
