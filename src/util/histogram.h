// Streaming histogram with percentile queries.
//
// Values are bucketed on a log2 scale with linear sub-buckets (HdrHistogram
// style), so memory is O(log(range)) and percentile error is bounded by the
// sub-bucket resolution (~1.5% with 64 sub-buckets). Used to report latency
// distributions in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace zen::util {

class Histogram {
 public:
  Histogram();

  void record(double value);
  void merge(const Histogram& other);

  std::uint64_t count() const noexcept { return count_; }
  double min() const noexcept { return count_ ? min_ : 0; }
  double max() const noexcept { return count_ ? max_ : 0; }
  double mean() const noexcept { return count_ ? sum_ / static_cast<double>(count_) : 0; }

  // q in [0, 1]; returns an approximation of the q-quantile.
  double percentile(double q) const noexcept;

  // One-line summary: "n=... mean=... p50=... p99=... max=...".
  std::string summary() const;

 private:
  static constexpr int kSubBits = 6;  // 64 linear sub-buckets per octave
  static std::size_t bucket_for(double value) noexcept;
  static double bucket_midpoint(std::size_t index) noexcept;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace zen::util
