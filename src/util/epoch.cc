#include "util/epoch.h"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <limits>
#include <thread>

namespace zen::util {

EpochReclaimer& EpochReclaimer::global() {
  static EpochReclaimer instance;
  return instance;
}

EpochReclaimer::~EpochReclaimer() {
  // Destruction contract: no live guards. Everything retired is now safe.
  std::lock_guard<std::mutex> lock(garbage_mu_);
  for (const Garbage& g : garbage_) g.deleter(g.ptr);
  freed_total_.fetch_add(garbage_.size(), std::memory_order_relaxed);
  garbage_.clear();
}

std::size_t EpochReclaimer::acquire_slot() {
  // Start the scan at a thread-dependent offset so concurrent pinners do
  // not all hammer slot 0's cacheline.
  const std::size_t start =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kSlots;
  for (std::size_t i = 0; i < kSlots; ++i) {
    const std::size_t s = (start + i) % kSlots;
    std::uint64_t expected = 0;
    if (slots_[s].epoch.compare_exchange_strong(expected, 1,
                                                std::memory_order_acq_rel))
      return s;
  }
  // Pool exhausted: more than kSlots simultaneous guards. Treat as a hard
  // configuration error rather than silently racing.
  std::abort();
}

void EpochReclaimer::release_slot(std::size_t slot) {
  slots_[slot].epoch.store(0, std::memory_order_release);
}

EpochReclaimer::Guard::Guard(EpochReclaimer& owner) : owner_(&owner) {
  slot_ = owner_->acquire_slot();
  // seq_cst: the epoch announcement must be globally visible before any
  // read of the protected structure, and must not be reordered after them.
  owner_->slots_[slot_].epoch.store(
      owner_->epoch_.load(std::memory_order_seq_cst),
      std::memory_order_seq_cst);
}

EpochReclaimer::Guard::~Guard() { owner_->release_slot(slot_); }

void EpochReclaimer::retire_erased(void* p, void (*deleter)(void*)) {
  retired_total_.fetch_add(1, std::memory_order_relaxed);
  bool do_collect = false;
  {
    std::lock_guard<std::mutex> lock(garbage_mu_);
    garbage_.push_back(
        Garbage{p, deleter, epoch_.load(std::memory_order_seq_cst)});
    do_collect = ++retires_since_collect_ >= kCollectStride;
    if (do_collect) retires_since_collect_ = 0;
  }
  if (do_collect) collect();
}

std::size_t EpochReclaimer::collect() {
  const std::uint64_t current = epoch_.load(std::memory_order_seq_cst);
  // Minimum epoch over pinned readers; readers mid-acquire hold the
  // sentinel 1 and conservatively block everything (they are about to pin
  // at >= the epoch they will read, but treat them as "unknown, old").
  std::uint64_t min_pinned = std::numeric_limits<std::uint64_t>::max();
  bool all_current = true;
  for (const Slot& slot : slots_) {
    const std::uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
    if (e == 0) continue;
    const std::uint64_t effective = (e == 1) ? 2 : e;  // mid-acquire
    min_pinned = std::min(min_pinned, effective);
    if (effective < current) all_current = false;
  }

  // Advance only when every pinned reader caught up, so min_pinned can
  // keep growing (a parked reader never blocks forever: it is unpinned).
  if (all_current) {
    std::uint64_t expected = current;
    epoch_.compare_exchange_strong(expected, current + 1,
                                   std::memory_order_seq_cst);
  }

  std::vector<Garbage> free_now;
  {
    std::lock_guard<std::mutex> lock(garbage_mu_);
    auto keep = garbage_.begin();
    for (auto it = garbage_.begin(); it != garbage_.end(); ++it) {
      if (it->epoch < min_pinned) {
        free_now.push_back(*it);
      } else {
        if (keep != it) *keep = *it;
        ++keep;
      }
    }
    garbage_.erase(keep, garbage_.end());
  }
  for (const Garbage& g : free_now) g.deleter(g.ptr);
  freed_total_.fetch_add(free_now.size(), std::memory_order_relaxed);
  return free_now.size();
}

std::size_t EpochReclaimer::pending() const {
  std::lock_guard<std::mutex> lock(garbage_mu_);
  return garbage_.size();
}

}  // namespace zen::util
