#include "util/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>

namespace zen::util {

namespace {
// Buckets cover values in [0, 2^40); anything larger clamps to the top.
constexpr int kOctaves = 40;
constexpr int kSubBuckets = 1 << 6;
constexpr std::size_t kTotalBuckets =
    static_cast<std::size_t>(kOctaves) * kSubBuckets + 1;
}  // namespace

Histogram::Histogram() : buckets_(kTotalBuckets, 0) {}

std::size_t Histogram::bucket_for(double value) noexcept {
  if (value < 1.0) {
    // Sub-unit values share octave 0's linear buckets.
    const auto idx = static_cast<std::size_t>(value * kSubBuckets);
    return std::min<std::size_t>(idx, kSubBuckets - 1);
  }
  // floor(log2(value)) and 2^octave straight from the exponent bits: record
  // runs on every latency sample, and the libm log2/exp2 pair dominates it.
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
  const int octave =
      std::min(static_cast<int>(bits >> 52) - 1023, kOctaves - 1);
  const double base =
      std::bit_cast<double>(static_cast<std::uint64_t>(1023 + octave) << 52);
  const auto sub = static_cast<std::size_t>((value - base) / base * kSubBuckets);
  return static_cast<std::size_t>(octave) * kSubBuckets +
         std::min<std::size_t>(sub, kSubBuckets - 1) + 1;
}

double Histogram::bucket_midpoint(std::size_t index) noexcept {
  if (index < kSubBuckets) {
    return (static_cast<double>(index) + 0.5) / kSubBuckets;
  }
  index -= 1;
  const std::size_t octave = index / kSubBuckets;
  const std::size_t sub = index % kSubBuckets;
  const double base = std::exp2(static_cast<double>(octave));
  return base + base * (static_cast<double>(sub) + 0.5) / kSubBuckets;
}

void Histogram::record(double value) {
  if (value < 0) value = 0;
  const std::size_t idx = std::min(bucket_for(value), buckets_.size() - 1);
  ++buckets_[idx];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
  }
}

double Histogram::percentile(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) {
      // Clamp the midpoint estimate into the observed range.
      return std::clamp(bucket_midpoint(i), min_, max_);
    }
  }
  return max_;
}

std::string Histogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "n=%llu mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f",
                static_cast<unsigned long long>(count_), mean(),
                percentile(0.50), percentile(0.90), percentile(0.99), max());
  return buf;
}

}  // namespace zen::util
