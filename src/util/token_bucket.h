// Token-bucket rate limiter over a virtual clock.
//
// The simulator and the dataplane meter both consume this: time is passed
// in explicitly (seconds on the simulated clock), so the bucket is usable
// under virtual time without any wall-clock dependency.
#pragma once

#include <cstdint>

namespace zen::util {

class TokenBucket {
 public:
  // rate: tokens per second added; burst: bucket capacity in tokens.
  TokenBucket(double rate, double burst) noexcept;

  // Attempts to consume `tokens` at time `now` (seconds, monotonic).
  // Returns true and deducts on success; false leaves the bucket unchanged.
  bool try_consume(double tokens, double now) noexcept;

  // Tokens currently available at time `now`.
  double available(double now) noexcept;

  // Same value without committing the refill — a read-only peek for
  // dry-run callers (the explain engine must not advance bucket state).
  double peek_available(double now) const noexcept;

  double rate() const noexcept { return rate_; }
  double burst() const noexcept { return burst_; }

 private:
  void refill(double now) noexcept;

  double rate_;
  double burst_;
  double tokens_;
  double last_refill_ = 0;
};

}  // namespace zen::util
