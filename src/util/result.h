// A small expected-like result type used at module boundaries where a
// failure is an ordinary outcome (e.g. parsing bytes off the wire) rather
// than a programming error.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace zen::util {

// Error payload: a human-readable message. Kept deliberately simple; callers
// that need structured errors define their own enum next to the API.
struct Error {
  std::string message;
};

template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  Result(Error error) : storage_(std::move(error)) {}       // NOLINT(google-explicit-constructor)

  bool ok() const noexcept { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const noexcept { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }

  const std::string& error() const {
    assert(!ok());
    return std::get<Error>(storage_).message;
  }

 private:
  std::variant<T, Error> storage_;
};

template <typename T>
Result<T> make_error(std::string message) {
  return Result<T>(Error{std::move(message)});
}

}  // namespace zen::util
