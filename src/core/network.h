// core::Network — the top of the stack.
//
// Composes a simulated fabric (zen_sim), a controller with apps
// (zen_controller) and optional intent management (zen_intent) behind one
// object, embodying the layering the library is organized around:
//
//   intents / apps        (policy: what the network should do)
//        |
//   controller + wire     (control: decide and program)
//        |
//   switches + links      (mechanism: forward packets)
//
// Typical use (see examples/quickstart.cpp):
//   auto net = core::Network::fat_tree(4);
//   net.add_app<controller::apps::Discovery>();
//   net.add_app<controller::apps::L3Routing>();
//   net.start();                       // connect + discovery warm-up
//   net.host(0).send_udp(net.host_ip(5), 5000, 5001, 256);
//   net.run_for(0.1);
#pragma once

#include <memory>

#include "controller/apps/discovery.h"
#include "controller/apps/l3_routing.h"
#include "controller/apps/learning_switch.h"
#include "controller/controller.h"
#include "intent/intent_manager.h"
#include "sim/network.h"
#include "topo/generators.h"

namespace zen::core {

class Network {
 public:
  struct Config {
    sim::SimOptions sim;
    controller::Controller::Options controller;
    // Virtual time start() runs to let handshakes and discovery settle.
    double warmup_s = 2.5;
  };

  Network(topo::GeneratedTopo generated, Config config);
  explicit Network(topo::GeneratedTopo generated)
      : Network(std::move(generated), Config()) {}
  // Unregisters the diagnostics providers start() added.
  ~Network();
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  // ---- canned topologies ----
  static Network fat_tree(std::size_t k);
  static Network linear(std::size_t n_switches, std::size_t hosts_per_switch);
  static Network leaf_spine(std::size_t n_spine, std::size_t n_leaf,
                            std::size_t hosts_per_leaf);
  static Network wan();

  // ---- composition (before start()) ----
  template <typename T, typename... Args>
  T& add_app(Args&&... args) {
    return ctrl_->add_app<T>(std::forward<Args>(args)...);
  }

  // Registers the intent framework as an app and returns it.
  intent::IntentManager& enable_intents();

  // ---- lifecycle ----
  // Connects every switch and runs `warmup_s` of virtual time so discovery
  // and proactive installs settle.
  void start();
  void run_for(double seconds) { sim_->run_until(now() + seconds); }
  void run_until(double t) { sim_->run_until(t); }
  double now() const { return sim_->now(); }

  // ---- access ----
  sim::SimNetwork& sim() { return *sim_; }
  controller::Controller& controller() { return *ctrl_; }
  topo::Topology& topology() { return sim_->topology(); }
  const topo::GeneratedTopo& generated() const { return sim_->generated(); }

  std::size_t host_count() const { return generated().hosts.size(); }
  sim::SimHost& host(std::size_t index);
  net::Ipv4Address host_ip(std::size_t index) const;

  // Aggregate delivery check: sum of UDP datagrams received by all hosts.
  std::uint64_t total_udp_received() const;

 private:
  // Registers "switches" / "rule_store" / "intents" / "path_engine"
  // sections with obs::Diagnostics. Providers capture the stable pointees
  // of sim_/ctrl_ (not `this`), so moving the Network is safe.
  void register_diagnostics();

  std::unique_ptr<sim::SimNetwork> sim_;
  std::unique_ptr<controller::Controller> ctrl_;
  intent::IntentManager* intents_ = nullptr;
  double warmup_s_ = 2.5;
  bool started_ = false;
  std::vector<std::uint64_t> diag_tokens_;
};

}  // namespace zen::core
