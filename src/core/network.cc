#include "core/network.h"

#include <cassert>

namespace zen::core {

Network::Network(topo::GeneratedTopo generated, Config config)
    : sim_(std::make_unique<sim::SimNetwork>(std::move(generated), config.sim)),
      ctrl_(std::make_unique<controller::Controller>(*sim_, config.controller)) {
  warmup_s_ = config.warmup_s;
}

Network Network::fat_tree(std::size_t k) {
  return Network(topo::make_fat_tree(k));
}

Network Network::linear(std::size_t n_switches, std::size_t hosts_per_switch) {
  return Network(topo::make_linear(n_switches, hosts_per_switch));
}

Network Network::leaf_spine(std::size_t n_spine, std::size_t n_leaf,
                            std::size_t hosts_per_leaf) {
  return Network(topo::make_leaf_spine(n_spine, n_leaf, hosts_per_leaf));
}

Network Network::wan() { return Network(topo::make_wan_abilene()); }

intent::IntentManager& Network::enable_intents() {
  if (!intents_) intents_ = &ctrl_->add_app<intent::IntentManager>();
  return *intents_;
}

void Network::start() {
  if (started_) return;
  started_ = true;
  ctrl_->connect_all();
  run_for(warmup_s_);
}

sim::SimHost& Network::host(std::size_t index) {
  const auto& hosts = generated().hosts;
  assert(index < hosts.size());
  return sim_->host_at(hosts[index]);
}

net::Ipv4Address Network::host_ip(std::size_t index) const {
  const auto& hosts = generated().hosts;
  assert(index < hosts.size());
  return sim::host_ip(hosts[index]);
}

std::uint64_t Network::total_udp_received() const {
  std::uint64_t total = 0;
  for (const auto& [id, host] : sim_->hosts()) total += host->stats().udp_received;
  return total;
}

}  // namespace zen::core
