#include "core/network.h"

#include <algorithm>
#include <cassert>

#include "obs/diagnostics.h"
#include "util/strings.h"

namespace zen::core {

Network::Network(topo::GeneratedTopo generated, Config config)
    : sim_(std::make_unique<sim::SimNetwork>(std::move(generated), config.sim)),
      ctrl_(std::make_unique<controller::Controller>(*sim_, config.controller)) {
  warmup_s_ = config.warmup_s;
}

Network Network::fat_tree(std::size_t k) {
  return Network(topo::make_fat_tree(k));
}

Network Network::linear(std::size_t n_switches, std::size_t hosts_per_switch) {
  return Network(topo::make_linear(n_switches, hosts_per_switch));
}

Network Network::leaf_spine(std::size_t n_spine, std::size_t n_leaf,
                            std::size_t hosts_per_leaf) {
  return Network(topo::make_leaf_spine(n_spine, n_leaf, hosts_per_leaf));
}

Network Network::wan() { return Network(topo::make_wan_abilene()); }

intent::IntentManager& Network::enable_intents() {
  if (!intents_) intents_ = &ctrl_->add_app<intent::IntentManager>();
  return *intents_;
}

Network::~Network() {
  for (const std::uint64_t token : diag_tokens_)
    obs::Diagnostics::global().remove_provider(token);
}

void Network::start() {
  if (started_) return;
  started_ = true;
  register_diagnostics();
  ctrl_->connect_all();
  run_for(warmup_s_);
}

void Network::register_diagnostics() {
  auto& diag = obs::Diagnostics::global();
  sim::SimNetwork* sim = sim_.get();
  controller::Controller* ctrl = ctrl_.get();
  intent::IntentManager* intents = intents_;

  diag_tokens_.push_back(diag.add_provider("switches", [sim] {
    std::vector<topo::NodeId> dpids;
    for (const auto& [id, sw] : sim->switches()) dpids.push_back(id);
    std::sort(dpids.begin(), dpids.end());
    std::string out = "[";
    for (const topo::NodeId id : dpids) {
      const dataplane::Switch& sw = sim->switch_at(id);
      if (out.size() > 1) out += ",";
      out += util::format("{\"dpid\":%llu,\"up\":%s,\"tables\":[",
                          static_cast<unsigned long long>(id),
                          sim->switch_up(id) ? "true" : "false");
      for (std::uint8_t t = 0; t < sw.table_count(); ++t) {
        if (t > 0) out += ",";
        out += util::format("%zu", sw.table(t).size());
      }
      out += util::format(
          "],\"cache\":{\"size\":%zu,\"hits\":%llu,\"misses\":%llu,"
          "\"evictions\":%llu},\"flow_evictions\":%llu}",
          sw.cache().size(),
          static_cast<unsigned long long>(sw.cache().hits()),
          static_cast<unsigned long long>(sw.cache().misses()),
          static_cast<unsigned long long>(sw.cache().evictions()),
          static_cast<unsigned long long>(sw.flow_evictions()));
    }
    return out + "]";
  }));

  diag_tokens_.push_back(diag.add_provider("rule_store", [sim, ctrl] {
    const auto& stats = ctrl->rule_store().stats();
    std::string out = util::format(
        "{\"installs\":%llu,\"removes\":%llu,\"repairs\":%llu,"
        "\"orphans_deleted\":%llu,\"audits\":%llu,\"audits_converged\":%llu,"
        "\"table_full_rejections\":%llu,\"rules_degraded\":%llu,"
        "\"degraded_by_switch\":{",
        static_cast<unsigned long long>(stats.installs),
        static_cast<unsigned long long>(stats.removes),
        static_cast<unsigned long long>(stats.repairs_installed),
        static_cast<unsigned long long>(stats.orphans_deleted),
        static_cast<unsigned long long>(stats.audits),
        static_cast<unsigned long long>(stats.audits_converged),
        static_cast<unsigned long long>(stats.table_full_rejections),
        static_cast<unsigned long long>(stats.rules_degraded));
    std::vector<topo::NodeId> dpids;
    for (const auto& [id, sw] : sim->switches()) dpids.push_back(id);
    std::sort(dpids.begin(), dpids.end());
    bool first = true;
    for (const topo::NodeId id : dpids) {
      const std::size_t degraded = ctrl->rule_store().degraded_rules(id);
      if (degraded == 0) continue;
      if (!first) out += ",";
      first = false;
      out += util::format("\"%llu\":%zu",
                          static_cast<unsigned long long>(id), degraded);
    }
    return out + "}}";
  }));

  diag_tokens_.push_back(diag.add_provider("intents", [intents] {
    if (!intents) return std::string("null");
    const auto& stats = intents->stats();
    return util::format(
        "{\"pending\":%zu,\"installed\":%zu,\"failed\":%zu,\"degraded\":%zu,"
        "\"submitted\":%llu,\"compiled\":%llu,\"recompiles\":%llu,"
        "\"failures\":%llu}",
        intents->count_in_state(intent::IntentState::Pending),
        intents->count_in_state(intent::IntentState::Installed),
        intents->count_in_state(intent::IntentState::Failed),
        intents->count_in_state(intent::IntentState::Degraded),
        static_cast<unsigned long long>(stats.submitted),
        static_cast<unsigned long long>(stats.compiled),
        static_cast<unsigned long long>(stats.recompiles),
        static_cast<unsigned long long>(stats.failures));
  }));

  diag_tokens_.push_back(diag.add_provider("path_engine", [ctrl] {
    const auto& stats = ctrl->view().path_engine().stats();
    return util::format(
        "{\"hits\":%llu,\"misses\":%llu,\"invalidations\":%llu,"
        "\"spf_runs\":%llu}",
        static_cast<unsigned long long>(stats.hits),
        static_cast<unsigned long long>(stats.misses),
        static_cast<unsigned long long>(stats.invalidations),
        static_cast<unsigned long long>(stats.spf_runs));
  }));
}

sim::SimHost& Network::host(std::size_t index) {
  const auto& hosts = generated().hosts;
  assert(index < hosts.size());
  return sim_->host_at(hosts[index]);
}

net::Ipv4Address Network::host_ip(std::size_t index) const {
  const auto& hosts = generated().hosts;
  assert(index < hosts.size());
  return sim::host_ip(hosts[index]);
}

std::uint64_t Network::total_udp_received() const {
  std::uint64_t total = 0;
  for (const auto& [id, host] : sim_->hosts()) total += host->stats().udp_received;
  return total;
}

}  // namespace zen::core
