// Umbrella header: the full zen public API in one include.
//
// Layer map (bottom to top):
//   util/        logging, clock, buffers, rng, histograms
//   obs/         metrics registry + virtual-time tracing (zen_obs)
//   net/         addresses, headers, packets, flow keys
//   openflow/    southbound wire protocol (match, actions, messages, codec)
//   dataplane/   software switch: flow/group/meter tables, megaflow cache
//   topo/        topology graph, path algorithms, generators
//   sim/         discrete-event network substrate
//   controller/  control plane runtime + apps
//   intent/      northbound intent framework
//   te/          traffic engineering: demands, allocators, update planner
//   cluster/     partitioned control plane: delegates, root, failover
//   core/        Network façade composing the stack
#pragma once

#include "cluster/cluster_manager.h"
#include "cluster/failover.h"
#include "cluster/group_agent.h"
#include "controller/apps/discovery.h"
#include "controller/apps/firewall.h"
#include "controller/apps/l3_routing.h"
#include "controller/apps/learning_switch.h"
#include "controller/apps/load_balancer.h"
#include "controller/apps/qos_policy.h"
#include "controller/apps/reactive_forwarding.h"
#include "controller/apps/stats_monitor.h"
#include "controller/apps/te_installer.h"
#include "controller/apps/telemetry_collector.h"
#include "controller/controller.h"
#include "controller/flow_rule_store.h"
#include "core/network.h"
#include "dataplane/switch.h"
#include "diag/invariant_monitor.h"
#include "diag/packet_tracer.h"
#include "intent/intent_manager.h"
#include "net/packet.h"
#include "obs/obs.h"
#include "openflow/codec.h"
#include "sim/engine.h"
#include "sim/fault_injector.h"
#include "sim/network.h"
#include "te/allocation.h"
#include "te/update_planner.h"
#include "telemetry/telemetry.h"
#include "topo/generators.h"
#include "topo/paths.h"
