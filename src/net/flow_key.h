// Canonical flow key: the tuple of header fields the dataplane matches on.
//
// The key is a fixed-size POD so hashing and masked comparison are branch-
// free loops over a handful of integers. Both the flow tables (tuple-space
// search masks project this struct) and the megaflow exact-match cache key
// on it. hash() and FlowMask::apply() are header-inline: a tuple-space
// lookup hashes one projected key per mask group, so they sit on the
// per-packet fast path.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "net/addr.h"

namespace zen::net {

namespace detail {

// 64-bit mix (xxhash-style avalanche).
constexpr std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

}  // namespace detail

struct FlowKey {
  std::uint32_t in_port = 0;
  std::uint64_t eth_src = 0;   // MAC as integer (48 bits used)
  std::uint64_t eth_dst = 0;
  std::uint16_t eth_type = 0;
  std::uint16_t vlan_vid = 0;  // 0 = untagged
  std::uint8_t vlan_pcp = 0;
  std::uint32_t ipv4_src = 0;
  std::uint32_t ipv4_dst = 0;
  // IPv6 addresses as (hi, lo) 64-bit halves, network order semantics
  // (hi = first 8 octets).
  std::uint64_t ipv6_src_hi = 0;
  std::uint64_t ipv6_src_lo = 0;
  std::uint64_t ipv6_dst_hi = 0;
  std::uint64_t ipv6_dst_lo = 0;
  std::uint8_t ip_proto = 0;
  std::uint8_t ip_dscp = 0;
  std::uint16_t l4_src = 0;
  std::uint16_t l4_dst = 0;
  std::uint16_t arp_op = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;

  std::size_t hash() const noexcept {
    std::uint64_t h = 0x243f6a8885a308d3ULL;
    h = detail::hash_mix(h, in_port);
    h = detail::hash_mix(h, eth_src);
    h = detail::hash_mix(h, eth_dst);
    h = detail::hash_mix(h, (std::uint64_t{eth_type} << 32) |
                                (std::uint64_t{vlan_vid} << 16) | vlan_pcp);
    h = detail::hash_mix(h, (std::uint64_t{ipv4_src} << 32) | ipv4_dst);
    if (ipv6_src_hi | ipv6_src_lo | ipv6_dst_hi | ipv6_dst_lo) {
      h = detail::hash_mix(h, ipv6_src_hi);
      h = detail::hash_mix(h, ipv6_src_lo);
      h = detail::hash_mix(h, ipv6_dst_hi);
      h = detail::hash_mix(h, ipv6_dst_lo);
    }
    h = detail::hash_mix(h, (std::uint64_t{ip_proto} << 40) |
                                (std::uint64_t{ip_dscp} << 32) |
                                (std::uint64_t{l4_src} << 16) | l4_dst);
    h = detail::hash_mix(h, arp_op);
    return static_cast<std::size_t>(h);
  }

  // Helpers for the (hi, lo) IPv6 representation.
  static std::pair<std::uint64_t, std::uint64_t> split_ipv6(
      const Ipv6Address& addr) noexcept;
};

// A bitmask over FlowKey: each field carries a mask of the same width.
// all-ones = exact match, all-zeros = wildcard. Masks are what make the
// tuple-space search work: rules with equal masks share one hash table.
struct FlowMask {
  std::uint32_t in_port = 0;
  std::uint64_t eth_src = 0;
  std::uint64_t eth_dst = 0;
  std::uint16_t eth_type = 0;
  std::uint16_t vlan_vid = 0;
  std::uint8_t vlan_pcp = 0;
  std::uint32_t ipv4_src = 0;
  std::uint32_t ipv4_dst = 0;
  std::uint64_t ipv6_src_hi = 0;
  std::uint64_t ipv6_src_lo = 0;
  std::uint64_t ipv6_dst_hi = 0;
  std::uint64_t ipv6_dst_lo = 0;
  std::uint8_t ip_proto = 0;
  std::uint8_t ip_dscp = 0;
  std::uint16_t l4_src = 0;
  std::uint16_t l4_dst = 0;
  std::uint16_t arp_op = 0;

  friend bool operator==(const FlowMask&, const FlowMask&) = default;

  // Projects `key` through this mask (field-wise AND).
  FlowKey apply(const FlowKey& key) const noexcept {
    FlowKey out;
    out.in_port = key.in_port & in_port;
    out.eth_src = key.eth_src & eth_src;
    out.eth_dst = key.eth_dst & eth_dst;
    out.eth_type = key.eth_type & eth_type;
    out.vlan_vid = key.vlan_vid & vlan_vid;
    out.vlan_pcp = key.vlan_pcp & vlan_pcp;
    out.ipv4_src = key.ipv4_src & ipv4_src;
    out.ipv4_dst = key.ipv4_dst & ipv4_dst;
    out.ipv6_src_hi = key.ipv6_src_hi & ipv6_src_hi;
    out.ipv6_src_lo = key.ipv6_src_lo & ipv6_src_lo;
    out.ipv6_dst_hi = key.ipv6_dst_hi & ipv6_dst_hi;
    out.ipv6_dst_lo = key.ipv6_dst_lo & ipv6_dst_lo;
    out.ip_proto = key.ip_proto & ip_proto;
    out.ip_dscp = key.ip_dscp & ip_dscp;
    out.l4_src = key.l4_src & l4_src;
    out.l4_dst = key.l4_dst & l4_dst;
    out.arp_op = key.arp_op & arp_op;
    return out;
  }

  std::size_t hash() const noexcept;

  static FlowMask exact() noexcept;
};

}  // namespace zen::net

template <>
struct std::hash<zen::net::FlowKey> {
  std::size_t operator()(const zen::net::FlowKey& k) const noexcept {
    return k.hash();
  }
};

template <>
struct std::hash<zen::net::FlowMask> {
  std::size_t operator()(const zen::net::FlowMask& m) const noexcept {
    return m.hash();
  }
};
