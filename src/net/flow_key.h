// Canonical flow key: the tuple of header fields the dataplane matches on.
//
// The key is a fixed-size POD so hashing and masked comparison are branch-
// free loops over a handful of integers. Both the flow tables (tuple-space
// search masks project this struct) and the megaflow exact-match cache key
// on it.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "net/addr.h"

namespace zen::net {

struct FlowKey {
  std::uint32_t in_port = 0;
  std::uint64_t eth_src = 0;   // MAC as integer (48 bits used)
  std::uint64_t eth_dst = 0;
  std::uint16_t eth_type = 0;
  std::uint16_t vlan_vid = 0;  // 0 = untagged
  std::uint8_t vlan_pcp = 0;
  std::uint32_t ipv4_src = 0;
  std::uint32_t ipv4_dst = 0;
  // IPv6 addresses as (hi, lo) 64-bit halves, network order semantics
  // (hi = first 8 octets).
  std::uint64_t ipv6_src_hi = 0;
  std::uint64_t ipv6_src_lo = 0;
  std::uint64_t ipv6_dst_hi = 0;
  std::uint64_t ipv6_dst_lo = 0;
  std::uint8_t ip_proto = 0;
  std::uint8_t ip_dscp = 0;
  std::uint16_t l4_src = 0;
  std::uint16_t l4_dst = 0;
  std::uint16_t arp_op = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;

  // Mixes all fields; see flow_key.cc for the avalanche step.
  std::size_t hash() const noexcept;

  // Helpers for the (hi, lo) IPv6 representation.
  static std::pair<std::uint64_t, std::uint64_t> split_ipv6(
      const Ipv6Address& addr) noexcept;
};

// A bitmask over FlowKey: each field carries a mask of the same width.
// all-ones = exact match, all-zeros = wildcard. Masks are what make the
// tuple-space search work: rules with equal masks share one hash table.
struct FlowMask {
  std::uint32_t in_port = 0;
  std::uint64_t eth_src = 0;
  std::uint64_t eth_dst = 0;
  std::uint16_t eth_type = 0;
  std::uint16_t vlan_vid = 0;
  std::uint8_t vlan_pcp = 0;
  std::uint32_t ipv4_src = 0;
  std::uint32_t ipv4_dst = 0;
  std::uint64_t ipv6_src_hi = 0;
  std::uint64_t ipv6_src_lo = 0;
  std::uint64_t ipv6_dst_hi = 0;
  std::uint64_t ipv6_dst_lo = 0;
  std::uint8_t ip_proto = 0;
  std::uint8_t ip_dscp = 0;
  std::uint16_t l4_src = 0;
  std::uint16_t l4_dst = 0;
  std::uint16_t arp_op = 0;

  friend bool operator==(const FlowMask&, const FlowMask&) = default;

  // Projects `key` through this mask (field-wise AND).
  FlowKey apply(const FlowKey& key) const noexcept;

  std::size_t hash() const noexcept;

  static FlowMask exact() noexcept;
};

}  // namespace zen::net

template <>
struct std::hash<zen::net::FlowKey> {
  std::size_t operator()(const zen::net::FlowKey& k) const noexcept {
    return k.hash();
  }
};

template <>
struct std::hash<zen::net::FlowMask> {
  std::size_t operator()(const zen::net::FlowMask& m) const noexcept {
    return m.hash();
  }
};
