#include "net/flow_key.h"

namespace zen::net {

std::pair<std::uint64_t, std::uint64_t> FlowKey::split_ipv6(
    const Ipv6Address& addr) noexcept {
  const auto& o = addr.octets();
  std::uint64_t hi = 0, lo = 0;
  for (int i = 0; i < 8; ++i) hi = (hi << 8) | o[static_cast<std::size_t>(i)];
  for (int i = 8; i < 16; ++i) lo = (lo << 8) | o[static_cast<std::size_t>(i)];
  return {hi, lo};
}

std::size_t FlowMask::hash() const noexcept {
  // Reuse FlowKey's mixer by treating the mask as a key. Mask hashing only
  // runs on table mutation (group lookup/insert), not per packet, so it
  // stays out of line.
  FlowKey k;
  k.in_port = in_port;
  k.eth_src = eth_src;
  k.eth_dst = eth_dst;
  k.eth_type = eth_type;
  k.vlan_vid = vlan_vid;
  k.vlan_pcp = vlan_pcp;
  k.ipv4_src = ipv4_src;
  k.ipv4_dst = ipv4_dst;
  k.ipv6_src_hi = ipv6_src_hi;
  k.ipv6_src_lo = ipv6_src_lo;
  k.ipv6_dst_hi = ipv6_dst_hi;
  k.ipv6_dst_lo = ipv6_dst_lo;
  k.ip_proto = ip_proto;
  k.ip_dscp = ip_dscp;
  k.l4_src = l4_src;
  k.l4_dst = l4_dst;
  k.arp_op = arp_op;
  return k.hash();
}

FlowMask FlowMask::exact() noexcept {
  FlowMask m;
  m.in_port = ~std::uint32_t{0};
  m.eth_src = 0xffffffffffffULL;
  m.eth_dst = 0xffffffffffffULL;
  m.eth_type = 0xffff;
  m.vlan_vid = 0xffff;
  m.vlan_pcp = 0xff;
  m.ipv4_src = ~std::uint32_t{0};
  m.ipv4_dst = ~std::uint32_t{0};
  m.ipv6_src_hi = ~std::uint64_t{0};
  m.ipv6_src_lo = ~std::uint64_t{0};
  m.ipv6_dst_hi = ~std::uint64_t{0};
  m.ipv6_dst_lo = ~std::uint64_t{0};
  m.ip_proto = 0xff;
  m.ip_dscp = 0xff;
  m.l4_src = 0xffff;
  m.l4_dst = 0xffff;
  m.arp_op = 0xffff;
  return m;
}

}  // namespace zen::net
