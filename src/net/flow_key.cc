#include "net/flow_key.h"

namespace zen::net {

namespace {

// 64-bit mix (xxhash-style avalanche).
constexpr std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

std::pair<std::uint64_t, std::uint64_t> FlowKey::split_ipv6(
    const Ipv6Address& addr) noexcept {
  const auto& o = addr.octets();
  std::uint64_t hi = 0, lo = 0;
  for (int i = 0; i < 8; ++i) hi = (hi << 8) | o[static_cast<std::size_t>(i)];
  for (int i = 8; i < 16; ++i) lo = (lo << 8) | o[static_cast<std::size_t>(i)];
  return {hi, lo};
}

std::size_t FlowKey::hash() const noexcept {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  h = mix(h, in_port);
  h = mix(h, eth_src);
  h = mix(h, eth_dst);
  h = mix(h, (std::uint64_t{eth_type} << 32) | (std::uint64_t{vlan_vid} << 16) |
                 vlan_pcp);
  h = mix(h, (std::uint64_t{ipv4_src} << 32) | ipv4_dst);
  if (ipv6_src_hi | ipv6_src_lo | ipv6_dst_hi | ipv6_dst_lo) {
    h = mix(h, ipv6_src_hi);
    h = mix(h, ipv6_src_lo);
    h = mix(h, ipv6_dst_hi);
    h = mix(h, ipv6_dst_lo);
  }
  h = mix(h, (std::uint64_t{ip_proto} << 40) | (std::uint64_t{ip_dscp} << 32) |
                 (std::uint64_t{l4_src} << 16) | l4_dst);
  h = mix(h, arp_op);
  return static_cast<std::size_t>(h);
}

FlowKey FlowMask::apply(const FlowKey& key) const noexcept {
  FlowKey out;
  out.in_port = key.in_port & in_port;
  out.eth_src = key.eth_src & eth_src;
  out.eth_dst = key.eth_dst & eth_dst;
  out.eth_type = key.eth_type & eth_type;
  out.vlan_vid = key.vlan_vid & vlan_vid;
  out.vlan_pcp = key.vlan_pcp & vlan_pcp;
  out.ipv4_src = key.ipv4_src & ipv4_src;
  out.ipv4_dst = key.ipv4_dst & ipv4_dst;
  out.ipv6_src_hi = key.ipv6_src_hi & ipv6_src_hi;
  out.ipv6_src_lo = key.ipv6_src_lo & ipv6_src_lo;
  out.ipv6_dst_hi = key.ipv6_dst_hi & ipv6_dst_hi;
  out.ipv6_dst_lo = key.ipv6_dst_lo & ipv6_dst_lo;
  out.ip_proto = key.ip_proto & ip_proto;
  out.ip_dscp = key.ip_dscp & ip_dscp;
  out.l4_src = key.l4_src & l4_src;
  out.l4_dst = key.l4_dst & l4_dst;
  out.arp_op = key.arp_op & arp_op;
  return out;
}

std::size_t FlowMask::hash() const noexcept {
  // Reuse FlowKey's mixer by treating the mask as a key.
  FlowKey k;
  k.in_port = in_port;
  k.eth_src = eth_src;
  k.eth_dst = eth_dst;
  k.eth_type = eth_type;
  k.vlan_vid = vlan_vid;
  k.vlan_pcp = vlan_pcp;
  k.ipv4_src = ipv4_src;
  k.ipv4_dst = ipv4_dst;
  k.ipv6_src_hi = ipv6_src_hi;
  k.ipv6_src_lo = ipv6_src_lo;
  k.ipv6_dst_hi = ipv6_dst_hi;
  k.ipv6_dst_lo = ipv6_dst_lo;
  k.ip_proto = ip_proto;
  k.ip_dscp = ip_dscp;
  k.l4_src = l4_src;
  k.l4_dst = l4_dst;
  k.arp_op = arp_op;
  return k.hash();
}

FlowMask FlowMask::exact() noexcept {
  FlowMask m;
  m.in_port = ~std::uint32_t{0};
  m.eth_src = 0xffffffffffffULL;
  m.eth_dst = 0xffffffffffffULL;
  m.eth_type = 0xffff;
  m.vlan_vid = 0xffff;
  m.vlan_pcp = 0xff;
  m.ipv4_src = ~std::uint32_t{0};
  m.ipv4_dst = ~std::uint32_t{0};
  m.ipv6_src_hi = ~std::uint64_t{0};
  m.ipv6_src_lo = ~std::uint64_t{0};
  m.ipv6_dst_hi = ~std::uint64_t{0};
  m.ipv6_dst_lo = ~std::uint64_t{0};
  m.ip_proto = 0xff;
  m.ip_dscp = 0xff;
  m.l4_src = 0xffff;
  m.l4_dst = 0xffff;
  m.arp_op = 0xffff;
  return m;
}

}  // namespace zen::net
