// INT-style telemetry trailer: per-hop records riding on sampled packets.
//
// A sampled packet carries a trailer *appended after* the original frame
// bytes, so every existing parser (headers, flow keys, payload offsets)
// sees the frame unchanged. Switches push one TelemetryHop per traversed
// hop; the simulator re-stamps the newest record at link dequeue so the
// timestamp and queue depth reflect what the packet actually experienced.
// The sink (last hop before the destination host) strips the trailer and
// turns it into a path record for export to the controller's collector.
//
// Wire layout (big-endian), from the end of the frame backwards:
//   hop records   hop_count * kHopRecordSize bytes (oldest first)
//   footer        u32 magic | u8 version | u8 hop_count | u16 record_bytes
//
// The footer is last so a receiver can detect/parse the trailer without
// knowing the original frame length. `record_bytes` double-checks
// hop_count against the frame size, making accidental magic collisions in
// ordinary payloads vanishingly unlikely.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace zen::net {

using Bytes = std::vector<std::uint8_t>;

// One per-hop measurement, stamped by the fabric at link dequeue.
struct TelemetryHop {
  std::uint64_t switch_id = 0;
  std::uint32_t ingress_port = 0;
  std::uint32_t egress_port = 0;
  std::uint64_t timestamp_ns = 0;        // virtual time at dequeue
  std::uint32_t queue_depth_bytes = 0;   // egress queue backlog at dequeue

  friend bool operator==(const TelemetryHop&, const TelemetryHop&) = default;
};

inline constexpr std::uint32_t kTelemetryMagic = 0x5a454e54;  // "ZENT"
inline constexpr std::uint8_t kTelemetryVersion = 1;
inline constexpr std::size_t kHopRecordSize = 28;
inline constexpr std::size_t kTelemetryFooterSize = 8;
// Hard cap on hops per trailer (a 32-hop path is far beyond any sim fabric).
inline constexpr std::size_t kMaxTelemetryHops = 32;

// True if `frame` ends in a well-formed telemetry trailer.
bool has_telemetry_trailer(std::span<const std::uint8_t> frame) noexcept;

// Appends an empty trailer (footer only, zero hops). The frame is then
// "marked" as sampled; switches along the path add hops to it.
void append_telemetry_trailer(Bytes& frame);

// Pushes one hop record onto the trailer. Returns false (frame unchanged)
// if there is no trailer or the trailer is full.
bool append_telemetry_hop(Bytes& frame, const TelemetryHop& hop);

// Rewrites the newest hop's timestamp and queue depth in place (dequeue
// re-stamp). Returns false if there is no trailer or it has no hops.
bool restamp_last_hop(Bytes& frame, std::uint64_t timestamp_ns,
                      std::uint32_t queue_depth_bytes);

// Parses the hop list without modifying the frame; nullopt if no trailer.
std::optional<std::vector<TelemetryHop>> peek_telemetry_hops(
    std::span<const std::uint8_t> frame);

// Parses and removes the trailer, restoring the original frame bytes;
// nullopt (frame unchanged) if there is no trailer.
std::optional<std::vector<TelemetryHop>> strip_telemetry_trailer(Bytes& frame);

}  // namespace zen::net
