#include "net/telemetry.h"

#include "util/buffer.h"

namespace zen::net {

namespace {

struct Footer {
  std::uint8_t hop_count = 0;
  std::size_t trailer_size = 0;  // records + footer, bytes
};

// Validates the footer at the end of `frame`; nullopt if absent/corrupt.
std::optional<Footer> parse_footer(std::span<const std::uint8_t> frame) {
  if (frame.size() < kTelemetryFooterSize) return std::nullopt;
  util::ByteReader r(frame.subspan(frame.size() - kTelemetryFooterSize));
  const std::uint32_t magic = r.u32();
  const std::uint8_t version = r.u8();
  const std::uint8_t hop_count = r.u8();
  const std::uint16_t record_bytes = r.u16();
  if (magic != kTelemetryMagic || version != kTelemetryVersion)
    return std::nullopt;
  if (record_bytes != hop_count * kHopRecordSize) return std::nullopt;
  const std::size_t trailer_size = kTelemetryFooterSize + record_bytes;
  if (frame.size() < trailer_size) return std::nullopt;
  return Footer{hop_count, trailer_size};
}

void write_footer(util::ByteWriter& w, std::uint8_t hop_count) {
  w.u32(kTelemetryMagic);
  w.u8(kTelemetryVersion);
  w.u8(hop_count);
  w.u16(static_cast<std::uint16_t>(hop_count * kHopRecordSize));
}

void write_hop(util::ByteWriter& w, const TelemetryHop& hop) {
  w.u64(hop.switch_id);
  w.u32(hop.ingress_port);
  w.u32(hop.egress_port);
  w.u64(hop.timestamp_ns);
  w.u32(hop.queue_depth_bytes);
}

TelemetryHop read_hop(util::ByteReader& r) {
  TelemetryHop hop;
  hop.switch_id = r.u64();
  hop.ingress_port = r.u32();
  hop.egress_port = r.u32();
  hop.timestamp_ns = r.u64();
  hop.queue_depth_bytes = r.u32();
  return hop;
}

}  // namespace

bool has_telemetry_trailer(std::span<const std::uint8_t> frame) noexcept {
  return parse_footer(frame).has_value();
}

void append_telemetry_trailer(Bytes& frame) {
  util::ByteWriter w(frame);
  write_footer(w, 0);
}

bool append_telemetry_hop(Bytes& frame, const TelemetryHop& hop) {
  const auto footer = parse_footer(frame);
  if (!footer || footer->hop_count >= kMaxTelemetryHops) return false;
  // Drop the old footer, append the new hop, rewrite the footer.
  frame.resize(frame.size() - kTelemetryFooterSize);
  util::ByteWriter w(frame);
  write_hop(w, hop);
  write_footer(w, static_cast<std::uint8_t>(footer->hop_count + 1));
  return true;
}

bool restamp_last_hop(Bytes& frame, std::uint64_t timestamp_ns,
                      std::uint32_t queue_depth_bytes) {
  const auto footer = parse_footer(frame);
  if (!footer || footer->hop_count == 0) return false;
  // The newest hop sits just before the footer; timestamp_ns is at offset
  // 16 within the record, queue_depth_bytes at 24.
  const std::size_t hop_start =
      frame.size() - kTelemetryFooterSize - kHopRecordSize;
  Bytes patch;
  util::ByteWriter w(patch);
  w.u64(timestamp_ns);
  w.u32(queue_depth_bytes);
  std::copy(patch.begin(), patch.end(), frame.begin() + hop_start + 16);
  return true;
}

std::optional<std::vector<TelemetryHop>> peek_telemetry_hops(
    std::span<const std::uint8_t> frame) {
  const auto footer = parse_footer(frame);
  if (!footer) return std::nullopt;
  std::vector<TelemetryHop> hops;
  hops.reserve(footer->hop_count);
  util::ByteReader r(frame.subspan(frame.size() - footer->trailer_size,
                                   footer->hop_count * kHopRecordSize));
  for (std::uint8_t i = 0; i < footer->hop_count; ++i)
    hops.push_back(read_hop(r));
  return hops;
}

std::optional<std::vector<TelemetryHop>> strip_telemetry_trailer(Bytes& frame) {
  const auto footer = parse_footer(frame);
  if (!footer) return std::nullopt;
  auto hops = peek_telemetry_hops(frame);
  frame.resize(frame.size() - footer->trailer_size);
  return hops;
}

}  // namespace zen::net
