#include "net/packet.h"

#include <tuple>

#include "net/checksum.h"
#include "util/buffer.h"

namespace zen::net {

FlowKey ParsedPacket::flow_key(std::uint32_t in_port) const noexcept {
  FlowKey k;
  k.in_port = in_port;
  k.eth_src = eth.src.to_u64();
  k.eth_dst = eth.dst.to_u64();
  k.eth_type = inner_ether_type();
  if (vlan) {
    k.vlan_vid = vlan->vid;
    k.vlan_pcp = vlan->pcp;
  }
  if (arp) {
    k.arp_op = arp->opcode;
    k.ipv4_src = arp->sender_ip.value();
    k.ipv4_dst = arp->target_ip.value();
  }
  if (ipv4) {
    k.ipv4_src = ipv4->src.value();
    k.ipv4_dst = ipv4->dst.value();
    k.ip_proto = ipv4->protocol;
    k.ip_dscp = ipv4->dscp;
  }
  if (ipv6) {
    std::tie(k.ipv6_src_hi, k.ipv6_src_lo) = FlowKey::split_ipv6(ipv6->src);
    std::tie(k.ipv6_dst_hi, k.ipv6_dst_lo) = FlowKey::split_ipv6(ipv6->dst);
    k.ip_proto = ipv6->next_header;
    k.ip_dscp = ipv6->traffic_class >> 2;
  }
  if (tcp) {
    k.l4_src = tcp->src_port;
    k.l4_dst = tcp->dst_port;
  } else if (udp) {
    k.l4_src = udp->src_port;
    k.l4_dst = udp->dst_port;
  } else if (icmp) {
    k.l4_src = icmp->type;
    k.l4_dst = icmp->code;
  }
  return k;
}

util::Result<ParsedPacket> parse_packet(std::span<const std::uint8_t> frame) {
  util::ByteReader r(frame);
  ParsedPacket p;
  p.eth = EthernetHeader::parse(r);
  if (!r.ok()) return util::make_error<ParsedPacket>("truncated ethernet header");

  std::uint16_t ether_type = p.eth.ether_type;
  if (ether_type == EtherType::kVlan) {
    p.vlan = VlanTag::parse(r);
    if (!r.ok()) return util::make_error<ParsedPacket>("truncated vlan tag");
    ether_type = p.vlan->ether_type;
  }

  switch (ether_type) {
    case EtherType::kArp: {
      p.arp = ArpMessage::parse(r);
      if (!r.ok()) return util::make_error<ParsedPacket>("truncated arp");
      break;
    }
    case EtherType::kIpv4: {
      p.ipv4 = Ipv4Header::parse(r);
      if (!r.ok()) return util::make_error<ParsedPacket>("bad ipv4 header");
      switch (p.ipv4->protocol) {
        case IpProto::kTcp:
          p.tcp = TcpHeader::parse(r);
          if (!r.ok()) return util::make_error<ParsedPacket>("bad tcp header");
          break;
        case IpProto::kUdp:
          p.udp = UdpHeader::parse(r);
          if (!r.ok()) return util::make_error<ParsedPacket>("bad udp header");
          break;
        case IpProto::kIcmp:
          p.icmp = IcmpHeader::parse(r);
          if (!r.ok()) return util::make_error<ParsedPacket>("bad icmp header");
          break;
        default:
          break;  // unknown L4: leave optionals empty
      }
      break;
    }
    case EtherType::kIpv6: {
      p.ipv6 = Ipv6Header::parse(r);
      if (!r.ok()) return util::make_error<ParsedPacket>("bad ipv6 header");
      switch (p.ipv6->next_header) {
        case IpProto::kTcp:
          p.tcp = TcpHeader::parse(r);
          if (!r.ok()) return util::make_error<ParsedPacket>("bad tcp header");
          break;
        case IpProto::kUdp:
          p.udp = UdpHeader::parse(r);
          if (!r.ok()) return util::make_error<ParsedPacket>("bad udp header");
          break;
        default:
          break;
      }
      break;
    }
    default:
      break;  // unknown L3
  }
  p.payload_offset = r.position();
  return p;
}

namespace {

Bytes build_arp(std::uint16_t opcode, MacAddress eth_dst, MacAddress sender_mac,
                Ipv4Address sender_ip, MacAddress target_mac,
                Ipv4Address target_ip) {
  Bytes out;
  out.reserve(EthernetHeader::kSize + ArpMessage::kSize);
  util::ByteWriter w(out);
  EthernetHeader eth{eth_dst, sender_mac, EtherType::kArp};
  eth.serialize(w);
  ArpMessage arp;
  arp.opcode = opcode;
  arp.sender_mac = sender_mac;
  arp.sender_ip = sender_ip;
  arp.target_mac = target_mac;
  arp.target_ip = target_ip;
  arp.serialize(w);
  return out;
}

}  // namespace

Bytes build_arp_request(MacAddress sender_mac, Ipv4Address sender_ip,
                        Ipv4Address target_ip) {
  return build_arp(ArpMessage::kRequest, MacAddress::broadcast(), sender_mac,
                   sender_ip, MacAddress{}, target_ip);
}

Bytes build_arp_reply(MacAddress sender_mac, Ipv4Address sender_ip,
                      MacAddress target_mac, Ipv4Address target_ip) {
  return build_arp(ArpMessage::kReply, target_mac, sender_mac, sender_ip,
                   target_mac, target_ip);
}

namespace {

// Common IPv4 frame scaffold: returns the byte vector with Ethernet+IPv4
// written and the L4 part appended by `l4_size`/`write_l4`.
template <typename WriteL4>
Bytes build_ipv4_frame(MacAddress eth_src, MacAddress eth_dst, Ipv4Address src,
                       Ipv4Address dst, std::uint8_t protocol,
                       std::uint8_t dscp, std::size_t l4_size,
                       std::span<const std::uint8_t> payload,
                       WriteL4&& write_l4) {
  Bytes out;
  out.reserve(EthernetHeader::kSize + Ipv4Header::kMinSize + l4_size +
              payload.size());
  util::ByteWriter w(out);
  EthernetHeader eth{eth_dst, eth_src, EtherType::kIpv4};
  eth.serialize(w);

  Ipv4Header ip;
  ip.dscp = dscp;
  ip.protocol = protocol;
  ip.src = src;
  ip.dst = dst;
  ip.total_length = static_cast<std::uint16_t>(Ipv4Header::kMinSize + l4_size +
                                               payload.size());
  ip.serialize(w);

  // Build the L4 segment separately so the pseudo-header checksum can be
  // computed over it, then patch it in.
  Bytes segment;
  segment.reserve(l4_size + payload.size());
  util::ByteWriter sw(segment);
  const std::size_t checksum_offset = write_l4(sw);
  sw.bytes(payload);
  const std::uint16_t sum = l4_checksum_ipv4(src, dst, protocol, segment);
  if (checksum_offset != SIZE_MAX) sw.patch_u16(checksum_offset, sum);
  w.bytes(segment);
  return out;
}

}  // namespace

Bytes build_ipv4_tcp(MacAddress eth_src, MacAddress eth_dst, Ipv4Address src,
                     Ipv4Address dst, const TcpSpec& tcp,
                     std::span<const std::uint8_t> payload, std::uint8_t dscp) {
  return build_ipv4_frame(
      eth_src, eth_dst, src, dst, IpProto::kTcp, dscp, TcpHeader::kMinSize,
      payload, [&](util::ByteWriter& sw) {
        TcpHeader h;
        h.src_port = tcp.src_port;
        h.dst_port = tcp.dst_port;
        h.seq = tcp.seq;
        h.ack = tcp.ack;
        h.flags = tcp.flags;
        h.serialize(sw);
        return std::size_t{16};  // checksum offset within TCP header
      });
}

Bytes build_ipv4_udp(MacAddress eth_src, MacAddress eth_dst, Ipv4Address src,
                     Ipv4Address dst, std::uint16_t src_port,
                     std::uint16_t dst_port,
                     std::span<const std::uint8_t> payload, std::uint8_t dscp) {
  return build_ipv4_frame(
      eth_src, eth_dst, src, dst, IpProto::kUdp, dscp, UdpHeader::kSize,
      payload, [&](util::ByteWriter& sw) {
        UdpHeader h;
        h.src_port = src_port;
        h.dst_port = dst_port;
        h.length = static_cast<std::uint16_t>(UdpHeader::kSize + payload.size());
        h.serialize(sw);
        return std::size_t{6};  // checksum offset within UDP header
      });
}

Bytes build_ipv4_icmp_echo(MacAddress eth_src, MacAddress eth_dst,
                           Ipv4Address src, Ipv4Address dst, bool request,
                           std::uint16_t identifier, std::uint16_t sequence) {
  return build_ipv4_frame(
      eth_src, eth_dst, src, dst, IpProto::kIcmp, 0, IcmpHeader::kSize, {},
      [&](util::ByteWriter& sw) {
        IcmpHeader h;
        h.type = request ? IcmpHeader::kEchoRequest : IcmpHeader::kEchoReply;
        h.identifier = identifier;
        h.sequence = sequence;
        h.serialize(sw);
        return std::size_t{2};  // ICMP checksum offset
      });
}

namespace {

template <typename WriteL4>
Bytes build_ipv6_frame(MacAddress eth_src, MacAddress eth_dst,
                       const Ipv6Address& src, const Ipv6Address& dst,
                       std::uint8_t next_header, std::size_t l4_size,
                       std::span<const std::uint8_t> payload,
                       WriteL4&& write_l4) {
  Bytes out;
  out.reserve(EthernetHeader::kSize + Ipv6Header::kSize + l4_size +
              payload.size());
  util::ByteWriter w(out);
  EthernetHeader eth{eth_dst, eth_src, EtherType::kIpv6};
  eth.serialize(w);

  Ipv6Header ip6;
  ip6.next_header = next_header;
  ip6.src = src;
  ip6.dst = dst;
  ip6.payload_length = static_cast<std::uint16_t>(l4_size + payload.size());
  ip6.serialize(w);

  // L4 checksum over the IPv6 pseudo-header (RFC 8200 §8.1).
  Bytes segment;
  util::ByteWriter sw(segment);
  const std::size_t checksum_offset = write_l4(sw);
  sw.bytes(payload);
  if (checksum_offset != SIZE_MAX) {
    std::uint32_t acc = 0;
    for (int i = 0; i < 16; i += 2)
      acc += (std::uint32_t{src.octets()[static_cast<std::size_t>(i)]} << 8) |
             src.octets()[static_cast<std::size_t>(i + 1)];
    for (int i = 0; i < 16; i += 2)
      acc += (std::uint32_t{dst.octets()[static_cast<std::size_t>(i)]} << 8) |
             dst.octets()[static_cast<std::size_t>(i + 1)];
    acc += static_cast<std::uint32_t>(segment.size());
    acc += next_header;
    std::size_t i = 0;
    for (; i + 1 < segment.size(); i += 2)
      acc += (std::uint32_t{segment[i]} << 8) | segment[i + 1];
    if (i < segment.size()) acc += std::uint32_t{segment[i]} << 8;
    while (acc >> 16) acc = (acc & 0xffff) + (acc >> 16);
    sw.patch_u16(checksum_offset, static_cast<std::uint16_t>(~acc & 0xffff));
  }
  w.bytes(segment);
  return out;
}

}  // namespace

Bytes build_ipv6_udp(MacAddress eth_src, MacAddress eth_dst,
                     const Ipv6Address& src, const Ipv6Address& dst,
                     std::uint16_t src_port, std::uint16_t dst_port,
                     std::span<const std::uint8_t> payload) {
  return build_ipv6_frame(
      eth_src, eth_dst, src, dst, IpProto::kUdp, UdpHeader::kSize, payload,
      [&](util::ByteWriter& sw) {
        UdpHeader h;
        h.src_port = src_port;
        h.dst_port = dst_port;
        h.length = static_cast<std::uint16_t>(UdpHeader::kSize + payload.size());
        h.serialize(sw);
        return std::size_t{6};
      });
}

Bytes build_ipv6_tcp(MacAddress eth_src, MacAddress eth_dst,
                     const Ipv6Address& src, const Ipv6Address& dst,
                     const TcpSpec& tcp, std::span<const std::uint8_t> payload) {
  return build_ipv6_frame(
      eth_src, eth_dst, src, dst, IpProto::kTcp, TcpHeader::kMinSize, payload,
      [&](util::ByteWriter& sw) {
        TcpHeader h;
        h.src_port = tcp.src_port;
        h.dst_port = tcp.dst_port;
        h.seq = tcp.seq;
        h.ack = tcp.ack;
        h.flags = tcp.flags;
        h.serialize(sw);
        return std::size_t{16};
      });
}

Bytes build_discovery_frame(MacAddress src, std::uint64_t datapath_id,
                            std::uint32_t port_no) {
  // LLDP-style TLVs: type (7 bits) | length (9 bits), then value.
  Bytes out;
  util::ByteWriter w(out);
  // 01:80:c2:00:00:0e is the LLDP nearest-bridge multicast address.
  EthernetHeader eth{MacAddress({0x01, 0x80, 0xc2, 0x00, 0x00, 0x0e}), src,
                     EtherType::kLldp};
  eth.serialize(w);
  auto tlv_header = [&](std::uint8_t type, std::uint16_t len) {
    w.u16(static_cast<std::uint16_t>((std::uint16_t{type} << 9) | (len & 0x1ff)));
  };
  // Chassis ID TLV (type 1), subtype 7 (locally assigned): 8-byte dpid.
  tlv_header(1, 9);
  w.u8(7);
  w.u64(datapath_id);
  // Port ID TLV (type 2), subtype 7: 4-byte port number.
  tlv_header(2, 5);
  w.u8(7);
  w.u32(port_no);
  // TTL TLV (type 3).
  tlv_header(3, 2);
  w.u16(120);
  // End of LLDPDU.
  tlv_header(0, 0);
  return out;
}

std::optional<DiscoveryInfo> parse_discovery_frame(
    std::span<const std::uint8_t> frame) {
  util::ByteReader r(frame);
  const EthernetHeader eth = EthernetHeader::parse(r);
  if (!r.ok() || eth.ether_type != EtherType::kLldp) return std::nullopt;

  DiscoveryInfo info;
  bool have_chassis = false;
  bool have_port = false;
  while (r.ok() && r.remaining() >= 2) {
    const std::uint16_t header = r.u16();
    const std::uint8_t type = static_cast<std::uint8_t>(header >> 9);
    const std::uint16_t len = header & 0x1ff;
    if (type == 0) break;
    if (type == 1 && len == 9) {
      if (r.u8() != 7) return std::nullopt;
      info.datapath_id = r.u64();
      have_chassis = true;
    } else if (type == 2 && len == 5) {
      if (r.u8() != 7) return std::nullopt;
      info.port_no = r.u32();
      have_port = true;
    } else {
      r.skip(len);
    }
  }
  if (!r.ok() || !have_chassis || !have_port) return std::nullopt;
  return info;
}

}  // namespace zen::net
