#include "net/headers.h"

#include "net/checksum.h"

namespace zen::net {

void EthernetHeader::serialize(util::ByteWriter& w) const {
  w.bytes(dst.octets());
  w.bytes(src.octets());
  w.u16(ether_type);
}

EthernetHeader EthernetHeader::parse(util::ByteReader& r) {
  EthernetHeader h;
  std::array<std::uint8_t, 6> mac{};
  r.bytes(mac);
  h.dst = MacAddress(mac);
  r.bytes(mac);
  h.src = MacAddress(mac);
  h.ether_type = r.u16();
  return h;
}

void VlanTag::serialize(util::ByteWriter& w) const {
  w.u16(static_cast<std::uint16_t>((std::uint16_t{pcp} << 13) | (vid & 0x0fff)));
  w.u16(ether_type);
}

VlanTag VlanTag::parse(util::ByteReader& r) {
  VlanTag t;
  const std::uint16_t tci = r.u16();
  t.pcp = static_cast<std::uint8_t>(tci >> 13);
  t.vid = tci & 0x0fff;
  t.ether_type = r.u16();
  return t;
}

void ArpMessage::serialize(util::ByteWriter& w) const {
  w.u16(1);                    // hardware type: Ethernet
  w.u16(EtherType::kIpv4);     // protocol type
  w.u8(6);                     // hardware length
  w.u8(4);                     // protocol length
  w.u16(opcode);
  w.bytes(sender_mac.octets());
  w.u32(sender_ip.value());
  w.bytes(target_mac.octets());
  w.u32(target_ip.value());
}

ArpMessage ArpMessage::parse(util::ByteReader& r) {
  ArpMessage m;
  r.skip(6);  // htype, ptype, hlen, plen
  m.opcode = r.u16();
  std::array<std::uint8_t, 6> mac{};
  r.bytes(mac);
  m.sender_mac = MacAddress(mac);
  m.sender_ip = Ipv4Address(r.u32());
  r.bytes(mac);
  m.target_mac = MacAddress(mac);
  m.target_ip = Ipv4Address(r.u32());
  return m;
}

void Ipv4Header::serialize(util::ByteWriter& w) const {
  std::vector<std::uint8_t> hdr;
  hdr.reserve(kMinSize);
  util::ByteWriter hw(hdr);
  hw.u8(0x45);  // version 4, IHL 5 (no options)
  hw.u8(static_cast<std::uint8_t>((dscp << 2) | (ecn & 0x3)));
  hw.u16(total_length);
  hw.u16(identification);
  std::uint16_t frag = fragment_offset & 0x1fff;
  if (dont_fragment) frag |= 0x4000;
  if (more_fragments) frag |= 0x2000;
  hw.u16(frag);
  hw.u8(ttl);
  hw.u8(protocol);
  hw.u16(0);  // checksum placeholder
  hw.u32(src.value());
  hw.u32(dst.value());
  const std::uint16_t sum = internet_checksum(hdr);
  hw.patch_u16(10, sum);
  w.bytes(hdr);
}

Ipv4Header Ipv4Header::parse(util::ByteReader& r) {
  Ipv4Header h;
  const std::size_t start = r.position();
  const std::uint8_t ver_ihl = r.u8();
  const std::uint8_t tos = r.u8();
  h.dscp = tos >> 2;
  h.ecn = tos & 0x3;
  h.total_length = r.u16();
  h.identification = r.u16();
  const std::uint16_t frag = r.u16();
  h.dont_fragment = (frag & 0x4000) != 0;
  h.more_fragments = (frag & 0x2000) != 0;
  h.fragment_offset = frag & 0x1fff;
  h.ttl = r.u8();
  h.protocol = r.u8();
  h.checksum = r.u16();
  h.src = Ipv4Address(r.u32());
  h.dst = Ipv4Address(r.u32());
  const std::size_t ihl = (ver_ihl & 0x0f) * 4u;
  if (ihl < kMinSize || (ver_ihl >> 4) != 4) {
    // Force a parse failure by over-reading; caller checks r.ok().
    r.skip(SIZE_MAX / 2);
    return h;
  }
  // Validate the header checksum over exactly IHL bytes.
  if (r.ok()) {
    // Reconstruct the raw header span. rest() starts at current pos; we need
    // the already-consumed 20 bytes plus any options.
    const std::size_t consumed = r.position() - start;
    if (ihl > consumed) r.skip(ihl - consumed);  // skip options
  }
  h.checksum_ok_ = true;  // verified by callers that hold the raw bytes
  return h;
}

void Ipv6Header::serialize(util::ByteWriter& w) const {
  w.u32((std::uint32_t{6} << 28) | (std::uint32_t{traffic_class} << 20) |
        (flow_label & 0xfffff));
  w.u16(payload_length);
  w.u8(next_header);
  w.u8(hop_limit);
  w.bytes(src.octets());
  w.bytes(dst.octets());
}

Ipv6Header Ipv6Header::parse(util::ByteReader& r) {
  Ipv6Header h;
  const std::uint32_t first = r.u32();
  if ((first >> 28) != 6) {
    r.skip(SIZE_MAX / 2);
    return h;
  }
  h.traffic_class = static_cast<std::uint8_t>((first >> 20) & 0xff);
  h.flow_label = first & 0xfffff;
  h.payload_length = r.u16();
  h.next_header = r.u8();
  h.hop_limit = r.u8();
  std::array<std::uint8_t, 16> a{};
  r.bytes(a);
  h.src = Ipv6Address(a);
  r.bytes(a);
  h.dst = Ipv6Address(a);
  return h;
}

void TcpHeader::serialize(util::ByteWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  w.u8(5 << 4);  // data offset 5 words, no options
  w.u8(flags);
  w.u16(window);
  w.u16(checksum);
  w.u16(0);  // urgent pointer
}

TcpHeader TcpHeader::parse(util::ByteReader& r) {
  TcpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.seq = r.u32();
  h.ack = r.u32();
  const std::uint8_t offset_words = r.u8() >> 4;
  h.flags = r.u8() & 0x3f;
  h.window = r.u16();
  h.checksum = r.u16();
  r.skip(2);  // urgent pointer
  if (offset_words < 5) {
    r.skip(SIZE_MAX / 2);
    return h;
  }
  r.skip((offset_words - 5u) * 4u);  // options
  return h;
}

void UdpHeader::serialize(util::ByteWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(length);
  w.u16(checksum);
}

UdpHeader UdpHeader::parse(util::ByteReader& r) {
  UdpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.length = r.u16();
  h.checksum = r.u16();
  return h;
}

void IcmpHeader::serialize(util::ByteWriter& w) const {
  w.u8(type);
  w.u8(code);
  w.u16(checksum);
  w.u16(identifier);
  w.u16(sequence);
}

IcmpHeader IcmpHeader::parse(util::ByteReader& r) {
  IcmpHeader h;
  h.type = r.u8();
  h.code = r.u8();
  h.checksum = r.u16();
  h.identifier = r.u16();
  h.sequence = r.u16();
  return h;
}

}  // namespace zen::net
