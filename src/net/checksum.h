// RFC 1071 Internet checksum, plus the TCP/UDP pseudo-header variants.
#pragma once

#include <cstdint>
#include <span>

#include "net/addr.h"

namespace zen::net {

// One's-complement sum over `data`, folded to 16 bits and inverted.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

// Checksum of an L4 segment including the IPv4 pseudo-header
// (src, dst, proto, length). `segment` must contain the L4 header with its
// checksum field zeroed, followed by the payload.
std::uint16_t l4_checksum_ipv4(Ipv4Address src, Ipv4Address dst,
                               std::uint8_t protocol,
                               std::span<const std::uint8_t> segment);

}  // namespace zen::net
