// Link- and network-layer address types.
//
// All three types are small value types with total ordering and std::hash
// support so they can key flat maps throughout the stack. String parsing
// accepts the conventional textual forms ("aa:bb:cc:dd:ee:ff", dotted quad,
// and RFC 4291 IPv6 including "::" compression).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace zen::net {

class MacAddress {
 public:
  constexpr MacAddress() = default;
  explicit constexpr MacAddress(std::array<std::uint8_t, 6> octets)
      : octets_(octets) {}

  // Builds from the low 48 bits of `value` (useful for generating per-host
  // MACs from integer ids).
  static constexpr MacAddress from_u64(std::uint64_t value) {
    return MacAddress({static_cast<std::uint8_t>(value >> 40),
                       static_cast<std::uint8_t>(value >> 32),
                       static_cast<std::uint8_t>(value >> 24),
                       static_cast<std::uint8_t>(value >> 16),
                       static_cast<std::uint8_t>(value >> 8),
                       static_cast<std::uint8_t>(value)});
  }

  static std::optional<MacAddress> parse(std::string_view text);

  static constexpr MacAddress broadcast() {
    return MacAddress({0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
  }

  constexpr std::uint64_t to_u64() const {
    std::uint64_t v = 0;
    for (auto o : octets_) v = (v << 8) | o;
    return v;
  }

  constexpr bool is_broadcast() const { return to_u64() == 0xffffffffffffULL; }
  constexpr bool is_multicast() const { return (octets_[0] & 0x01) != 0; }

  const std::array<std::uint8_t, 6>& octets() const { return octets_; }
  std::string to_string() const;

  friend auto operator<=>(const MacAddress&, const MacAddress&) = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  static std::optional<Ipv4Address> parse(std::string_view text);

  constexpr std::uint32_t value() const { return value_; }
  std::string to_string() const;

  // True if this address is inside `network`/`prefix_len`.
  constexpr bool in_subnet(Ipv4Address network, int prefix_len) const {
    if (prefix_len <= 0) return true;
    const std::uint32_t mask =
        prefix_len >= 32 ? 0xffffffffu : ~((1u << (32 - prefix_len)) - 1);
    return (value_ & mask) == (network.value_ & mask);
  }

  friend auto operator<=>(const Ipv4Address&, const Ipv4Address&) = default;

 private:
  std::uint32_t value_ = 0;
};

class Ipv6Address {
 public:
  constexpr Ipv6Address() = default;
  explicit constexpr Ipv6Address(std::array<std::uint8_t, 16> octets)
      : octets_(octets) {}

  static std::optional<Ipv6Address> parse(std::string_view text);

  const std::array<std::uint8_t, 16>& octets() const { return octets_; }
  std::string to_string() const;  // RFC 5952 canonical form

  friend auto operator<=>(const Ipv6Address&, const Ipv6Address&) = default;

 private:
  std::array<std::uint8_t, 16> octets_{};
};

}  // namespace zen::net

template <>
struct std::hash<zen::net::MacAddress> {
  std::size_t operator()(const zen::net::MacAddress& a) const noexcept {
    return std::hash<std::uint64_t>{}(a.to_u64());
  }
};

template <>
struct std::hash<zen::net::Ipv4Address> {
  std::size_t operator()(const zen::net::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<zen::net::Ipv6Address> {
  std::size_t operator()(const zen::net::Ipv6Address& a) const noexcept {
    std::size_t h = 1469598103934665603ULL;
    for (auto o : a.octets()) h = (h ^ o) * 1099511628211ULL;
    return h;
  }
};
