#include "net/addr.h"

#include <cstdio>

#include "util/strings.h"

namespace zen::net {

namespace {

std::optional<unsigned> parse_hex_byte(std::string_view s) {
  if (s.empty() || s.size() > 2) return std::nullopt;
  unsigned v = 0;
  for (char c : s) {
    unsigned digit;
    if (c >= '0' && c <= '9') digit = static_cast<unsigned>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<unsigned>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') digit = static_cast<unsigned>(c - 'A' + 10);
    else return std::nullopt;
    v = v * 16 + digit;
  }
  return v;
}

std::optional<unsigned> parse_hex16(std::string_view s) {
  if (s.empty() || s.size() > 4) return std::nullopt;
  unsigned v = 0;
  for (char c : s) {
    unsigned digit;
    if (c >= '0' && c <= '9') digit = static_cast<unsigned>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<unsigned>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') digit = static_cast<unsigned>(c - 'A' + 10);
    else return std::nullopt;
    v = v * 16 + digit;
  }
  return v;
}

}  // namespace

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  const auto parts = util::split(text, ':');
  if (parts.size() != 6) return std::nullopt;
  std::array<std::uint8_t, 6> octets{};
  for (std::size_t i = 0; i < 6; ++i) {
    const auto b = parse_hex_byte(parts[i]);
    if (!b) return std::nullopt;
    octets[i] = static_cast<std::uint8_t>(*b);
  }
  return MacAddress(octets);
}

std::string MacAddress::to_string() const {
  return util::format("%02x:%02x:%02x:%02x:%02x:%02x", octets_[0], octets_[1],
                      octets_[2], octets_[3], octets_[4], octets_[5]);
}

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t v = 0;
  for (const auto& p : parts) {
    const auto byte = util::parse_u64(p);
    if (!byte || *byte > 255) return std::nullopt;
    v = (v << 8) | static_cast<std::uint32_t>(*byte);
  }
  return Ipv4Address(v);
}

std::string Ipv4Address::to_string() const {
  return util::format("%u.%u.%u.%u", (value_ >> 24) & 0xff, (value_ >> 16) & 0xff,
                      (value_ >> 8) & 0xff, value_ & 0xff);
}

std::optional<Ipv6Address> Ipv6Address::parse(std::string_view text) {
  // Split on "::" first; each side is a list of 16-bit groups.
  std::string_view head = text;
  std::string_view tail;
  bool compressed = false;
  if (const auto pos = text.find("::"); pos != std::string_view::npos) {
    compressed = true;
    head = text.substr(0, pos);
    tail = text.substr(pos + 2);
    if (tail.find("::") != std::string_view::npos) return std::nullopt;
  }

  auto parse_groups = [](std::string_view s) -> std::optional<std::vector<unsigned>> {
    std::vector<unsigned> groups;
    if (s.empty()) return groups;
    for (const auto part : util::split(s, ':')) {
      const auto g = parse_hex16(part);
      if (!g) return std::nullopt;
      groups.push_back(*g);
    }
    return groups;
  };

  const auto head_groups = parse_groups(head);
  const auto tail_groups = parse_groups(tail);
  if (!head_groups || !tail_groups) return std::nullopt;

  const std::size_t total = head_groups->size() + tail_groups->size();
  if (compressed ? total >= 8 : total != 8) {
    // "::" must compress at least one zero group.
    if (!(compressed && total == 8 && head.empty() && tail.empty()))
      if (compressed ? total > 8 : true) return std::nullopt;
  }

  std::array<std::uint8_t, 16> octets{};
  std::size_t i = 0;
  for (unsigned g : *head_groups) {
    octets[i++] = static_cast<std::uint8_t>(g >> 8);
    octets[i++] = static_cast<std::uint8_t>(g & 0xff);
  }
  i = 16 - tail_groups->size() * 2;
  for (unsigned g : *tail_groups) {
    octets[i++] = static_cast<std::uint8_t>(g >> 8);
    octets[i++] = static_cast<std::uint8_t>(g & 0xff);
  }
  return Ipv6Address(octets);
}

std::string Ipv6Address::to_string() const {
  unsigned groups[8];
  for (int i = 0; i < 8; ++i) {
    groups[i] = (static_cast<unsigned>(octets_[static_cast<std::size_t>(2 * i)]) << 8) |
                octets_[static_cast<std::size_t>(2 * i + 1)];
  }
  // Find the longest run of zero groups (length >= 2) for "::" compression.
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[i] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[j] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      // The previous group deliberately omitted its trailing ':' (see
      // below), so the compressed run always contributes both colons.
      out += "::";
      i += best_len;
      if (i >= 8) break;
      continue;
    }
    out += util::format("%x", groups[i]);
    if (++i < 8 && i != best_start) out += ':';
  }
  if (out.empty()) out = "::";
  return out;
}

}  // namespace zen::net
