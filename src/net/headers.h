// Protocol header definitions with wire serialization.
//
// Each header is a plain value struct with `serialize(ByteWriter&)` and a
// static `parse(ByteReader&)`. Parsing never throws: on truncation the
// reader's ok() flag goes false and the caller rejects the packet.
#pragma once

#include <cstdint>
#include <optional>

#include "net/addr.h"
#include "util/buffer.h"

namespace zen::net {

// EtherType values (host order).
struct EtherType {
  static constexpr std::uint16_t kIpv4 = 0x0800;
  static constexpr std::uint16_t kArp = 0x0806;
  static constexpr std::uint16_t kVlan = 0x8100;
  static constexpr std::uint16_t kIpv6 = 0x86dd;
  static constexpr std::uint16_t kLldp = 0x88cc;
};

// IP protocol numbers.
struct IpProto {
  static constexpr std::uint8_t kIcmp = 1;
  static constexpr std::uint8_t kTcp = 6;
  static constexpr std::uint8_t kUdp = 17;
};

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;

  MacAddress dst;
  MacAddress src;
  std::uint16_t ether_type = 0;

  void serialize(util::ByteWriter& w) const;
  static EthernetHeader parse(util::ByteReader& r);

  friend bool operator==(const EthernetHeader&, const EthernetHeader&) = default;
};

// 802.1Q tag (follows the Ethernet src/dst when ether_type == kVlan).
struct VlanTag {
  static constexpr std::size_t kSize = 4;

  std::uint8_t pcp = 0;        // priority code point (3 bits)
  std::uint16_t vid = 0;       // VLAN id (12 bits)
  std::uint16_t ether_type = 0;  // encapsulated ethertype

  void serialize(util::ByteWriter& w) const;
  static VlanTag parse(util::ByteReader& r);

  friend bool operator==(const VlanTag&, const VlanTag&) = default;
};

struct ArpMessage {
  static constexpr std::size_t kSize = 28;
  static constexpr std::uint16_t kRequest = 1;
  static constexpr std::uint16_t kReply = 2;

  std::uint16_t opcode = kRequest;
  MacAddress sender_mac;
  Ipv4Address sender_ip;
  MacAddress target_mac;
  Ipv4Address target_ip;

  void serialize(util::ByteWriter& w) const;
  static ArpMessage parse(util::ByteReader& r);

  friend bool operator==(const ArpMessage&, const ArpMessage&) = default;
};

struct Ipv4Header {
  static constexpr std::size_t kMinSize = 20;

  std::uint8_t dscp = 0;
  std::uint8_t ecn = 0;
  std::uint16_t total_length = 0;  // header + payload, bytes
  std::uint16_t identification = 0;
  bool dont_fragment = false;
  bool more_fragments = false;
  std::uint16_t fragment_offset = 0;  // in 8-byte units
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t checksum = 0;  // filled by serialize()
  Ipv4Address src;
  Ipv4Address dst;

  // Serializes with a freshly computed header checksum.
  void serialize(util::ByteWriter& w) const;
  static Ipv4Header parse(util::ByteReader& r);

  // Validates the checksum as parsed from the wire (before any mutation).
  bool checksum_valid() const noexcept { return checksum_ok_; }

  friend bool operator==(const Ipv4Header& a, const Ipv4Header& b) {
    return a.dscp == b.dscp && a.ecn == b.ecn &&
           a.total_length == b.total_length &&
           a.identification == b.identification &&
           a.dont_fragment == b.dont_fragment &&
           a.more_fragments == b.more_fragments &&
           a.fragment_offset == b.fragment_offset && a.ttl == b.ttl &&
           a.protocol == b.protocol && a.src == b.src && a.dst == b.dst;
  }

 private:
  bool checksum_ok_ = true;
};

struct Ipv6Header {
  static constexpr std::size_t kSize = 40;

  std::uint8_t traffic_class = 0;
  std::uint32_t flow_label = 0;  // 20 bits
  std::uint16_t payload_length = 0;
  std::uint8_t next_header = 0;
  std::uint8_t hop_limit = 64;
  Ipv6Address src;
  Ipv6Address dst;

  void serialize(util::ByteWriter& w) const;
  static Ipv6Header parse(util::ByteReader& r);

  friend bool operator==(const Ipv6Header&, const Ipv6Header&) = default;
};

struct TcpHeader {
  static constexpr std::size_t kMinSize = 20;

  // Flag bits.
  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  std::uint16_t checksum = 0;

  void serialize(util::ByteWriter& w) const;
  static TcpHeader parse(util::ByteReader& r);

  friend bool operator==(const TcpHeader&, const TcpHeader&) = default;
};

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // header + payload
  std::uint16_t checksum = 0;

  void serialize(util::ByteWriter& w) const;
  static UdpHeader parse(util::ByteReader& r);

  friend bool operator==(const UdpHeader&, const UdpHeader&) = default;
};

struct IcmpHeader {
  static constexpr std::size_t kSize = 8;
  static constexpr std::uint8_t kEchoReply = 0;
  static constexpr std::uint8_t kEchoRequest = 8;

  std::uint8_t type = kEchoRequest;
  std::uint8_t code = 0;
  std::uint16_t checksum = 0;
  std::uint16_t identifier = 0;
  std::uint16_t sequence = 0;

  void serialize(util::ByteWriter& w) const;
  static IcmpHeader parse(util::ByteReader& r);

  friend bool operator==(const IcmpHeader&, const IcmpHeader&) = default;
};

}  // namespace zen::net
