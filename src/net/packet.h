// Packet: owned wire bytes plus a decoded header stack.
//
// A Packet owns its bytes (std::vector). ParsedPacket is the decoded view:
// which headers are present, their values, and the payload offset. Builders
// construct well-formed frames for the common cases the stack needs
// (ARP, IPv4/TCP/UDP/ICMP, LLDP-style discovery frames).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/addr.h"
#include "net/flow_key.h"
#include "net/headers.h"
#include "util/result.h"

namespace zen::net {

using Bytes = std::vector<std::uint8_t>;

struct ParsedPacket {
  EthernetHeader eth;
  std::optional<VlanTag> vlan;
  std::optional<ArpMessage> arp;
  std::optional<Ipv4Header> ipv4;
  std::optional<Ipv6Header> ipv6;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  std::optional<IcmpHeader> icmp;
  std::size_t payload_offset = 0;  // offset of L4 payload (or L3 for non-IP)

  // The effective (innermost) ethertype after any VLAN tag.
  std::uint16_t inner_ether_type() const noexcept {
    return vlan ? vlan->ether_type : eth.ether_type;
  }

  // Builds the dataplane flow key; `in_port` comes from packet metadata.
  FlowKey flow_key(std::uint32_t in_port) const noexcept;
};

// Parses an Ethernet frame. Unknown L3/L4 protocols parse successfully with
// the corresponding optionals empty; truncated headers produce an error.
util::Result<ParsedPacket> parse_packet(std::span<const std::uint8_t> frame);

// ---- Builders -------------------------------------------------------------

struct TcpSpec {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = TcpHeader::kAck;
};

Bytes build_arp_request(MacAddress sender_mac, Ipv4Address sender_ip,
                        Ipv4Address target_ip);
Bytes build_arp_reply(MacAddress sender_mac, Ipv4Address sender_ip,
                      MacAddress target_mac, Ipv4Address target_ip);

Bytes build_ipv4_tcp(MacAddress eth_src, MacAddress eth_dst, Ipv4Address src,
                     Ipv4Address dst, const TcpSpec& tcp,
                     std::span<const std::uint8_t> payload, std::uint8_t dscp = 0);

Bytes build_ipv4_udp(MacAddress eth_src, MacAddress eth_dst, Ipv4Address src,
                     Ipv4Address dst, std::uint16_t src_port,
                     std::uint16_t dst_port,
                     std::span<const std::uint8_t> payload, std::uint8_t dscp = 0);

Bytes build_ipv4_icmp_echo(MacAddress eth_src, MacAddress eth_dst,
                           Ipv4Address src, Ipv4Address dst, bool request,
                           std::uint16_t identifier, std::uint16_t sequence);

Bytes build_ipv6_udp(MacAddress eth_src, MacAddress eth_dst,
                     const Ipv6Address& src, const Ipv6Address& dst,
                     std::uint16_t src_port, std::uint16_t dst_port,
                     std::span<const std::uint8_t> payload);

Bytes build_ipv6_tcp(MacAddress eth_src, MacAddress eth_dst,
                     const Ipv6Address& src, const Ipv6Address& dst,
                     const TcpSpec& tcp, std::span<const std::uint8_t> payload);

// Discovery frame (LLDP-style, ethertype 0x88cc): carries the sending
// switch's datapath id and port number as TLVs. Used by the controller's
// topology discovery app.
Bytes build_discovery_frame(MacAddress src, std::uint64_t datapath_id,
                            std::uint32_t port_no);

struct DiscoveryInfo {
  std::uint64_t datapath_id = 0;
  std::uint32_t port_no = 0;
};

// Returns nullopt if the frame is not a discovery frame.
std::optional<DiscoveryInfo> parse_discovery_frame(
    std::span<const std::uint8_t> frame);

}  // namespace zen::net
