// Per-switch flow export cache.
//
// Accumulates FlowRecords for sampled flows and PathRecords handed back by
// the sim when a telemetry-stamped packet reaches its destination host.
// Records drain in batches: either on the periodic flush sweep, or
// immediately when the flow table hits capacity — arrival of a new flow at
// a full cache spills every resident record to the pending-export list and
// raises flush_pending(), mirroring how an IPFIX exporter reacts to cache
// eviction pressure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/flow_key.h"
#include "telemetry/export.h"

namespace zen::telemetry {

class FlowExportCache {
 public:
  explicit FlowExportCache(std::size_t capacity) : capacity_(capacity) {}

  // Accounts one packet of `bytes` length for `key` at virtual time `now_ns`.
  void record_packet(const net::FlowKey& key, std::uint64_t bytes,
                     std::uint64_t now_ns);

  // Queues a reassembled path for the next export batch.
  void record_path(PathRecord path);

  // True when an eviction spill or queued path wants an immediate export.
  bool flush_pending() const noexcept { return flush_pending_; }

  // Drains everything (active flows, spilled records, queued paths) into a
  // batch and clears flush_pending(). Returns an empty batch if idle.
  ExportBatch flush(std::uint64_t switch_id, std::uint64_t now_ns);

  std::size_t active_flows() const noexcept { return flows_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  std::unordered_map<net::FlowKey, FlowRecord> flows_;
  std::vector<FlowRecord> evicted_;
  std::vector<PathRecord> paths_;
  bool flush_pending_ = false;
};

}  // namespace zen::telemetry
