#include "telemetry/export_cache.h"

#include <utility>

namespace zen::telemetry {

void FlowExportCache::record_packet(const net::FlowKey& key,
                                    std::uint64_t bytes,
                                    std::uint64_t now_ns) {
  auto it = flows_.find(key);
  if (it == flows_.end()) {
    if (flows_.size() >= capacity_ && capacity_ > 0) {
      // Cache full: spill every resident flow to the export queue and ask
      // for an immediate flush rather than silently dropping the new flow.
      evicted_.reserve(evicted_.size() + flows_.size());
      for (auto& [k, rec] : flows_) evicted_.push_back(std::move(rec));
      flows_.clear();
      flush_pending_ = true;
    }
    FlowRecord rec;
    rec.key = key;
    rec.first_seen_ns = now_ns;
    it = flows_.emplace(key, std::move(rec)).first;
  }
  it->second.packets += 1;
  it->second.bytes += bytes;
  it->second.last_seen_ns = now_ns;
}

void FlowExportCache::record_path(PathRecord path) {
  paths_.push_back(std::move(path));
  flush_pending_ = true;
}

ExportBatch FlowExportCache::flush(std::uint64_t switch_id,
                                   std::uint64_t now_ns) {
  ExportBatch batch;
  batch.switch_id = switch_id;
  batch.exported_at_ns = now_ns;
  batch.flows = std::move(evicted_);
  evicted_.clear();
  batch.flows.reserve(batch.flows.size() + flows_.size());
  for (auto& [k, rec] : flows_) batch.flows.push_back(std::move(rec));
  flows_.clear();
  batch.paths = std::move(paths_);
  paths_.clear();
  flush_pending_ = false;
  return batch;
}

}  // namespace zen::telemetry
