// Per-switch telemetry facade: sampling decision + export cache, behind a
// single object the dataplane and the simulator poke from their hot paths.
//
// The sim owns one SwitchTelemetry per switch and hands the dataplane a raw
// pointer (dataplane::Switch::set_telemetry). Switch::ingress consults
// on_packet() once per packet — after the flow key is computed, before the
// megaflow cache is checked, so both fast and slow paths are covered — and
// appends the telemetry trailer to its outputs when it returns true. The
// sim calls on_path_complete() at the sink and drains batches via flush().
//
// Under ZEN_OBS_DISABLED the whole class collapses to a stateless no-op
// (sizeof == 1, every method inline and empty), so telemetry-aware call
// sites compile to nothing — the same contract zen_obs gives its metrics.
#pragma once

#include <cstdint>

#include "net/flow_key.h"
#include "telemetry/export.h"

#ifndef ZEN_OBS_DISABLED
#include <unordered_set>

#include "telemetry/export_cache.h"
#include "telemetry/sampler.h"
#endif

namespace zen::telemetry {

struct Options {
  bool enabled = false;            // default off: zero behavior change
  std::uint32_t sample_one_in_n = 16;
  std::size_t flow_capacity = 4096;
  double flush_interval_s = 0.5;   // periodic export sweep period
  std::uint64_t seed = 1;          // sampler key; same seed => same set
};

#ifndef ZEN_OBS_DISABLED

class SwitchTelemetry {
 public:
  SwitchTelemetry(std::uint64_t switch_id, const Options& options);

  // Ports that face hosts; flow accounting and trailer insertion happen
  // only for packets entering the fabric on an edge port.
  void mark_edge_port(std::uint32_t port);

  // Accounts the packet if its flow is sampled. Returns true iff the
  // caller should append a telemetry trailer (enabled, edge ingress,
  // flow in the sampled set).
  bool on_packet(std::uint64_t now_ns, std::uint32_t in_port,
                 const net::FlowKey& key, std::uint64_t frame_bytes);

  // Sink-side: a stamped packet reached its destination host attached to
  // this switch; queue the reassembled path for export.
  void on_path_complete(PathRecord path);

  bool enabled() const noexcept { return options_.enabled; }
  double flush_interval_s() const noexcept { return options_.flush_interval_s; }
  std::uint64_t switch_id() const noexcept { return switch_id_; }

  // True when an eviction spill or completed path wants an export now,
  // ahead of the periodic sweep.
  bool flush_pending() const noexcept { return cache_.flush_pending(); }

  // Drains the cache into a batch (possibly empty — callers skip those).
  ExportBatch flush(std::uint64_t now_ns);

  const Sampler& sampler() const noexcept { return sampler_; }

 private:
  std::uint64_t switch_id_;
  Options options_;
  Sampler sampler_;
  FlowExportCache cache_;
  std::unordered_set<std::uint32_t> edge_ports_;
};

#else  // ZEN_OBS_DISABLED

// Stateless stand-in: every call inlines away, so instrumented call sites
// cost nothing in obs-disabled builds. Kept API-identical to the real one.
class SwitchTelemetry {
 public:
  SwitchTelemetry(std::uint64_t, const Options&) {}

  void mark_edge_port(std::uint32_t) {}
  bool on_packet(std::uint64_t, std::uint32_t, const net::FlowKey&,
                 std::uint64_t) {
    return false;
  }
  void on_path_complete(PathRecord) {}

  bool enabled() const noexcept { return false; }
  double flush_interval_s() const noexcept { return 0; }
  std::uint64_t switch_id() const noexcept { return 0; }
  bool flush_pending() const noexcept { return false; }
  ExportBatch flush(std::uint64_t) { return {}; }
};

static_assert(sizeof(SwitchTelemetry) == 1,
              "disabled SwitchTelemetry must carry no state");

#endif  // ZEN_OBS_DISABLED

}  // namespace zen::telemetry
