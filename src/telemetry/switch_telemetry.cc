#include "telemetry/switch_telemetry.h"

#ifndef ZEN_OBS_DISABLED

#include <utility>

#include "obs/metrics.h"

namespace zen::telemetry {

namespace {

struct TelemetryMetrics {
  obs::Counter& sampled_packets;
  obs::Counter& exported_flows;
  obs::Counter& exported_paths;
  obs::Counter& export_batches;

  static TelemetryMetrics& get() {
    static TelemetryMetrics m{
        obs::MetricsRegistry::global().counter(
            "zen_telemetry_sampled_packets_total", "",
            "Packets whose flow fell in the sampled set at an edge switch"),
        obs::MetricsRegistry::global().counter(
            "zen_telemetry_exported_flows_total", "",
            "Flow records drained into export batches"),
        obs::MetricsRegistry::global().counter(
            "zen_telemetry_exported_paths_total", "",
            "Path records drained into export batches"),
        obs::MetricsRegistry::global().counter(
            "zen_telemetry_export_batches_total", "",
            "Non-empty export batches sent toward the controller"),
    };
    return m;
  }
};

}  // namespace

SwitchTelemetry::SwitchTelemetry(std::uint64_t switch_id,
                                 const Options& options)
    : switch_id_(switch_id),
      options_(options),
      sampler_(options.seed, options.enabled ? options.sample_one_in_n : 0),
      cache_(options.flow_capacity) {}

void SwitchTelemetry::mark_edge_port(std::uint32_t port) {
  edge_ports_.insert(port);
}

bool SwitchTelemetry::on_packet(std::uint64_t now_ns, std::uint32_t in_port,
                                const net::FlowKey& key,
                                std::uint64_t frame_bytes) {
  if (!options_.enabled) return false;
  if (!edge_ports_.contains(in_port)) return false;
  if (!sampler_.sampled(key)) return false;
  cache_.record_packet(key, frame_bytes, now_ns);
  TelemetryMetrics::get().sampled_packets.inc();
  return true;
}

void SwitchTelemetry::on_path_complete(PathRecord path) {
  if (!options_.enabled) return;
  cache_.record_path(std::move(path));
}

ExportBatch SwitchTelemetry::flush(std::uint64_t now_ns) {
  ExportBatch batch = cache_.flush(switch_id_, now_ns);
  if (!batch.empty()) {
    auto& m = TelemetryMetrics::get();
    m.exported_flows.inc(batch.flows.size());
    m.exported_paths.inc(batch.paths.size());
    m.export_batches.inc();
  }
  return batch;
}

}  // namespace zen::telemetry

#endif  // ZEN_OBS_DISABLED
