#include "telemetry/export.h"

#include "util/buffer.h"

namespace zen::telemetry {

namespace {

constexpr std::uint8_t kBatchVersion = 1;

void encode_flow_key(const net::FlowKey& k, util::ByteWriter& w) {
  w.u32(k.in_port);
  w.u64(k.eth_src);
  w.u64(k.eth_dst);
  w.u16(k.eth_type);
  w.u16(k.vlan_vid);
  w.u8(k.vlan_pcp);
  w.u32(k.ipv4_src);
  w.u32(k.ipv4_dst);
  w.u64(k.ipv6_src_hi);
  w.u64(k.ipv6_src_lo);
  w.u64(k.ipv6_dst_hi);
  w.u64(k.ipv6_dst_lo);
  w.u8(k.ip_proto);
  w.u8(k.ip_dscp);
  w.u16(k.l4_src);
  w.u16(k.l4_dst);
  w.u16(k.arp_op);
}

net::FlowKey decode_flow_key(util::ByteReader& r) {
  net::FlowKey k;
  k.in_port = r.u32();
  k.eth_src = r.u64();
  k.eth_dst = r.u64();
  k.eth_type = r.u16();
  k.vlan_vid = r.u16();
  k.vlan_pcp = r.u8();
  k.ipv4_src = r.u32();
  k.ipv4_dst = r.u32();
  k.ipv6_src_hi = r.u64();
  k.ipv6_src_lo = r.u64();
  k.ipv6_dst_hi = r.u64();
  k.ipv6_dst_lo = r.u64();
  k.ip_proto = r.u8();
  k.ip_dscp = r.u8();
  k.l4_src = r.u16();
  k.l4_dst = r.u16();
  k.arp_op = r.u16();
  return k;
}

void encode_hop(const net::TelemetryHop& h, util::ByteWriter& w) {
  w.u64(h.switch_id);
  w.u32(h.ingress_port);
  w.u32(h.egress_port);
  w.u64(h.timestamp_ns);
  w.u32(h.queue_depth_bytes);
}

net::TelemetryHop decode_hop(util::ByteReader& r) {
  net::TelemetryHop h;
  h.switch_id = r.u64();
  h.ingress_port = r.u32();
  h.egress_port = r.u32();
  h.timestamp_ns = r.u64();
  h.queue_depth_bytes = r.u32();
  return h;
}

}  // namespace

net::Bytes encode_batch(const ExportBatch& batch) {
  net::Bytes out;
  util::ByteWriter w(out);
  w.u8(kBatchVersion);
  w.u64(batch.switch_id);
  w.u64(batch.exported_at_ns);
  w.u32(static_cast<std::uint32_t>(batch.flows.size()));
  w.u32(static_cast<std::uint32_t>(batch.paths.size()));
  for (const FlowRecord& f : batch.flows) {
    encode_flow_key(f.key, w);
    w.u64(f.packets);
    w.u64(f.bytes);
    w.u64(f.first_seen_ns);
    w.u64(f.last_seen_ns);
  }
  for (const PathRecord& p : batch.paths) {
    w.u32(p.ipv4_src);
    w.u32(p.ipv4_dst);
    w.u8(p.ip_proto);
    w.u16(p.l4_src);
    w.u16(p.l4_dst);
    w.u16(static_cast<std::uint16_t>(p.hops.size()));
    for (const net::TelemetryHop& h : p.hops) encode_hop(h, w);
  }
  return out;
}

util::Result<ExportBatch> decode_batch(std::span<const std::uint8_t> payload) {
  util::ByteReader r(payload);
  if (r.u8() != kBatchVersion) {
    return util::make_error<ExportBatch>("export batch: bad version");
  }
  ExportBatch batch;
  batch.switch_id = r.u64();
  batch.exported_at_ns = r.u64();
  const std::uint32_t n_flows = r.u32();
  const std::uint32_t n_paths = r.u32();
  if (!r.ok()) {
    return util::make_error<ExportBatch>("export batch: truncated header");
  }
  for (std::uint32_t i = 0; i < n_flows && r.ok(); ++i) {
    FlowRecord f;
    f.key = decode_flow_key(r);
    f.packets = r.u64();
    f.bytes = r.u64();
    f.first_seen_ns = r.u64();
    f.last_seen_ns = r.u64();
    batch.flows.push_back(f);
  }
  for (std::uint32_t i = 0; i < n_paths && r.ok(); ++i) {
    PathRecord p;
    p.ipv4_src = r.u32();
    p.ipv4_dst = r.u32();
    p.ip_proto = r.u8();
    p.l4_src = r.u16();
    p.l4_dst = r.u16();
    const std::uint16_t n_hops = r.u16();
    for (std::uint16_t h = 0; h < n_hops && r.ok(); ++h) {
      p.hops.push_back(decode_hop(r));
    }
    batch.paths.push_back(std::move(p));
  }
  if (!r.ok()) {
    return util::make_error<ExportBatch>("export batch: truncated records");
  }
  if (r.remaining() != 0) {
    return util::make_error<ExportBatch>("export batch: trailing bytes");
  }
  return batch;
}

openflow::Experimenter make_export_message(const ExportBatch& batch) {
  openflow::Experimenter msg;
  msg.experimenter_id = kExperimenterId;
  msg.exp_type = kExpTypeExportBatch;
  msg.payload = encode_batch(batch);
  return msg;
}

util::Result<ExportBatch> parse_export_message(
    const openflow::Experimenter& msg) {
  if (msg.experimenter_id != kExperimenterId) {
    return util::make_error<ExportBatch>(
        "export batch: foreign experimenter id");
  }
  if (msg.exp_type != kExpTypeExportBatch) {
    return util::make_error<ExportBatch>("export batch: unknown exp_type");
  }
  return decode_batch(msg.payload);
}

}  // namespace zen::telemetry
