// Deterministic 1-in-N flow sampler.
//
// The sampling decision is a pure function of (seed, flow key): the seed
// feeds util::Rng to derive mixing constants, and a flow is in the sampled
// set iff the mixed key hash lands in residue class 0 mod N. Every packet
// of a sampled flow is sampled and the set is identical across runs and
// arrival orders for the same seed — the property the telemetry tests and
// the collector's heavy-hitter math rely on.
#pragma once

#include <cstdint>

#include "net/flow_key.h"

namespace zen::telemetry {

class Sampler {
 public:
  // one_in_n == 0 disables sampling entirely; 1 samples every flow.
  Sampler() noexcept : Sampler(0, 0) {}
  Sampler(std::uint64_t seed, std::uint32_t one_in_n) noexcept;

  bool enabled() const noexcept { return one_in_n_ > 0; }
  std::uint32_t one_in_n() const noexcept { return one_in_n_; }

  bool sampled(const net::FlowKey& key) const noexcept;

 private:
  std::uint64_t mix0_ = 0;
  std::uint64_t mix1_ = 0;
  std::uint32_t one_in_n_ = 0;
};

}  // namespace zen::telemetry
