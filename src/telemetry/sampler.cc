#include "telemetry/sampler.h"

#include "util/rng.h"

namespace zen::telemetry {

Sampler::Sampler(std::uint64_t seed, std::uint32_t one_in_n) noexcept
    : one_in_n_(one_in_n) {
  util::Rng rng(seed);
  mix0_ = rng.next_u64();
  mix1_ = rng.next_u64() | 1;  // odd, so the multiply below is a bijection
}

bool Sampler::sampled(const net::FlowKey& key) const noexcept {
  if (one_in_n_ == 0) return false;
  if (one_in_n_ == 1) return true;
  // splitmix64-style finalizer over the key hash, keyed by the seed-derived
  // constants; order-independent and stable for the process lifetime.
  std::uint64_t h = key.hash() ^ mix0_;
  h *= mix1_;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h % one_in_n_ == 0;
}

}  // namespace zen::telemetry
