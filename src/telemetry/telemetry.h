// Umbrella header for zen_telemetry: INT-style per-hop telemetry and
// sampled flow export. See DESIGN.md for how the pieces fit together.
#pragma once

#include "net/telemetry.h"
#include "telemetry/export.h"
#include "telemetry/export_cache.h"
#include "telemetry/sampler.h"
#include "telemetry/switch_telemetry.h"
