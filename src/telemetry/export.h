// Telemetry export records and their wire encoding.
//
// IPFIX-shaped: the dataplane accumulates per-flow-key FlowRecords and
// INT-derived PathRecords, and exports them in ExportBatches that cross
// the southbound channel as an openflow::Experimenter message (scoped by
// kExperimenterId / kExpTypeExportBatch). Timestamps are virtual-time
// nanoseconds so batches are exact and platform-independent on the wire.
#pragma once

#include <cstdint>
#include <vector>

#include "net/flow_key.h"
#include "net/telemetry.h"
#include "openflow/messages.h"
#include "util/result.h"

namespace zen::telemetry {

// "zent" — identifies zen_telemetry experimenter messages.
inline constexpr std::uint32_t kExperimenterId = 0x7a656e74;
inline constexpr std::uint32_t kExpTypeExportBatch = 1;

// Per-flow usage accumulated since the flow entered the export cache.
struct FlowRecord {
  net::FlowKey key;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t first_seen_ns = 0;
  std::uint64_t last_seen_ns = 0;

  friend bool operator==(const FlowRecord&, const FlowRecord&) = default;
};

// The reassembled journey of one sampled packet: flow identity plus the
// hop records its telemetry trailer collected across the fabric.
struct PathRecord {
  std::uint32_t ipv4_src = 0;
  std::uint32_t ipv4_dst = 0;
  std::uint8_t ip_proto = 0;
  std::uint16_t l4_src = 0;
  std::uint16_t l4_dst = 0;
  std::vector<net::TelemetryHop> hops;

  friend bool operator==(const PathRecord&, const PathRecord&) = default;
};

struct ExportBatch {
  std::uint64_t switch_id = 0;
  std::uint64_t exported_at_ns = 0;
  std::vector<FlowRecord> flows;
  std::vector<PathRecord> paths;

  bool empty() const noexcept { return flows.empty() && paths.empty(); }

  friend bool operator==(const ExportBatch&, const ExportBatch&) = default;
};

net::Bytes encode_batch(const ExportBatch& batch);
util::Result<ExportBatch> decode_batch(std::span<const std::uint8_t> payload);

// Wraps/unwraps a batch in the Experimenter envelope. parse returns an
// error for foreign experimenter ids or malformed payloads.
openflow::Experimenter make_export_message(const ExportBatch& batch);
util::Result<ExportBatch> parse_export_message(
    const openflow::Experimenter& msg);

}  // namespace zen::telemetry
