#include "topo/path_engine.h"

#include <algorithm>

#include "obs/obs.h"

namespace zen::topo {

namespace {

#ifndef ZEN_OBS_DISABLED
struct EngineMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& invalidations;
  obs::Counter& spf_runs;

  static EngineMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static EngineMetrics m{
        reg.counter("zen_topo_path_engine_hits_total", "",
                    "PathEngine queries served from the SPF cache"),
        reg.counter("zen_topo_path_engine_misses_total", "",
                    "PathEngine queries that computed a fresh SPF tree"),
        reg.counter("zen_topo_path_engine_invalidations_total", "",
                    "PathEngine cache drops caused by topology-epoch moves"),
        reg.counter("zen_topo_path_engine_spf_runs_total", "",
                    "Dijkstra executions inside the PathEngine"),
    };
    return m;
  }
};
#define ZEN_PE_METRIC(field) EngineMetrics::get().field.inc()
#else
#define ZEN_PE_METRIC(field) (void)0
#endif

const std::vector<PathEngine::NextHop> kNoHops;

}  // namespace

void PathEngine::sync(const Topology& topo, std::uint64_t epoch) {
  if (bound_ && epoch == epoch_) return;
  sync(Topology(topo), epoch);
}

void PathEngine::sync(Topology&& topo, std::uint64_t epoch) {
  if (bound_ && epoch == epoch_) return;
  if (bound_) {
    ++stats_.invalidations;
    ZEN_PE_METRIC(invalidations);
  }
  topo_ = std::move(topo);
  epoch_ = epoch;
  bound_ = true;
  dest_cache_.clear();
  yen_cache_.clear();
}

const PathEngine::DestTree& PathEngine::tree_for(NodeId dst) {
  const auto it = dest_cache_.find(dst);
  if (it != dest_cache_.end()) {
    ++stats_.hits;
    ZEN_PE_METRIC(hits);
    return it->second;
  }
  ++stats_.misses;
  ++stats_.spf_runs;
  ZEN_PE_METRIC(misses);
  ZEN_PE_METRIC(spf_runs);

  DestTree tree;
  tree.dst = dst;
  SpfResult spf = dijkstra(topo_, dst);
  tree.distance = std::move(spf.distance);

  // Extract the full SPF DAG in one sweep: link (u, v) starts a shortest
  // path from u toward dst iff it closes the distance gap exactly.
  tree.dag.reserve(tree.distance.size());
  for (const auto& [u, du] : tree.distance) {
    if (u == dst) continue;
    std::vector<NextHop>& hops = tree.dag[u];
    for (const Link* link : topo_.links_of(u)) {
      const NodeId v = link->other(u);
      const auto dv = tree.distance.find(v);
      if (dv == tree.distance.end()) continue;
      if (dv->second + link->cost == du)
        hops.push_back(NextHop{link->id, v, link->port_at(u)});
    }
    std::sort(hops.begin(), hops.end(),
              [](const NextHop& a, const NextHop& b) { return a.link < b.link; });
  }
  return dest_cache_.emplace(dst, std::move(tree)).first->second;
}

const PathEngine::DestTree& PathEngine::towards(NodeId dst) {
  return tree_for(dst);
}

const std::vector<PathEngine::NextHop>& PathEngine::next_hops(NodeId from,
                                                              NodeId dst) {
  if (from == dst) return kNoHops;
  const DestTree& tree = tree_for(dst);
  const auto it = tree.dag.find(from);
  return it == tree.dag.end() ? kNoHops : it->second;
}

double PathEngine::distance(NodeId from, NodeId dst) {
  if (from == dst) return 0;
  const DestTree& tree = tree_for(dst);
  const auto it = tree.distance.find(from);
  return it == tree.distance.end()
             ? std::numeric_limits<double>::infinity()
             : it->second;
}

bool PathEngine::reachable(NodeId from, NodeId dst) {
  return from == dst || tree_for(dst).distance.contains(from);
}

Path PathEngine::shortest_path(NodeId src, NodeId dst) {
  Path path;
  if (src == dst) {
    if (topo_.node(src)) path.nodes = {src};
    return path;
  }
  const DestTree& tree = tree_for(dst);
  const auto d = tree.distance.find(src);
  if (d == tree.distance.end()) return path;
  path.cost = d->second;
  NodeId cur = src;
  path.nodes.push_back(cur);
  while (cur != dst) {
    // Positive link costs make the descent strictly decreasing, so this
    // terminates; front() is the lowest link id (deterministic tie-break).
    const std::vector<NextHop>& hops = tree.dag.at(cur);
    const NextHop& hop = hops.front();
    path.links.push_back(hop.link);
    path.nodes.push_back(hop.via);
    cur = hop.via;
  }
  return path;
}

std::vector<Path> PathEngine::equal_cost_paths(NodeId src, NodeId dst,
                                               std::size_t limit) {
  std::vector<Path> out;
  if (limit == 0) return out;
  if (src == dst) {
    if (topo_.node(src)) {
      Path p;
      p.nodes = {src};
      out.push_back(std::move(p));
    }
    return out;
  }
  const DestTree& tree = tree_for(dst);
  const auto d = tree.distance.find(src);
  if (d == tree.distance.end()) return out;
  const double best = d->second;

  // DFS over the cached DAG, lowest link ids first — the same enumeration
  // order topo::equal_cost_paths produces from its two fresh SPFs.
  struct Frame {
    NodeId node;
    std::size_t next = 0;
  };
  Path current;
  current.nodes.push_back(src);
  std::vector<Frame> frames{{src, 0}};

  while (!frames.empty() && out.size() < limit) {
    Frame& frame = frames.back();
    if (frame.node == dst) {
      Path p = current;
      p.cost = best;
      out.push_back(std::move(p));
      frames.pop_back();
      if (!current.links.empty()) {
        current.links.pop_back();
        current.nodes.pop_back();
      }
      continue;
    }
    const std::vector<NextHop>& hops = tree.dag.at(frame.node);
    if (frame.next >= hops.size()) {
      frames.pop_back();
      if (!current.links.empty()) {
        current.links.pop_back();
        current.nodes.pop_back();
      }
      continue;
    }
    const NextHop& hop = hops[frame.next++];
    current.links.push_back(hop.link);
    current.nodes.push_back(hop.via);
    frames.push_back({hop.via, 0});
  }
  return out;
}

const std::vector<Path>& PathEngine::k_shortest_paths(NodeId src, NodeId dst,
                                                      std::size_t k) {
  const auto key = std::make_tuple(src, dst, k);
  const auto it = yen_cache_.find(key);
  if (it != yen_cache_.end()) {
    ++stats_.hits;
    ZEN_PE_METRIC(hits);
    return it->second;
  }
  ++stats_.misses;
  ZEN_PE_METRIC(misses);
  return yen_cache_.emplace(key, topo::k_shortest_paths(topo_, src, dst, k))
      .first->second;
}

Path PathEngine::shortest_path_avoiding(
    NodeId src, NodeId dst, const std::unordered_set<LinkId>& banned_links) {
  if (src == dst) {
    Path p;
    if (topo_.node(src)) p.nodes = {src};
    return p;
  }
  ++stats_.spf_runs;
  ZEN_PE_METRIC(spf_runs);
  const SpfResult spf = dijkstra_avoiding(topo_, src, nullptr, &banned_links);
  return reconstruct_path(topo_, spf, src, dst);
}

}  // namespace zen::topo
