#include "topo/paths.h"

#include <algorithm>
#include <queue>
#include <set>

namespace zen::topo {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct QueueItem {
  double dist;
  NodeId node;
  bool operator>(const QueueItem& o) const noexcept {
    if (dist != o.dist) return dist > o.dist;
    return node > o.node;  // deterministic tie-break
  }
};

}  // namespace

SpfResult dijkstra_avoiding(const Topology& topo, NodeId src,
                            const std::unordered_set<NodeId>* banned_nodes,
                            const std::unordered_set<LinkId>* banned_links) {
  SpfResult result;
  const Node* source = topo.node(src);
  if (!source || !source->up) return result;

  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
  result.distance[src] = 0;
  pq.push({0, src});

  while (!pq.empty()) {
    const auto [dist, u] = pq.top();
    pq.pop();
    const auto du = result.distance.find(u);
    if (du == result.distance.end() || dist > du->second) continue;

    for (const Link* link : topo.links_of(u)) {
      if (banned_links && banned_links->contains(link->id)) continue;
      const NodeId v = link->other(u);
      if (banned_nodes && banned_nodes->contains(v)) continue;
      const double alt = dist + link->cost;
      const auto dv = result.distance.find(v);
      if (dv == result.distance.end() || alt < dv->second) {
        result.distance[v] = alt;
        result.parent_link[v] = link->id;
        pq.push({alt, v});
      }
    }
  }
  return result;
}

Path reconstruct_path(const Topology& topo, const SpfResult& spf, NodeId src,
                      NodeId dst) {
  Path path;
  if (!spf.reached(dst)) return path;
  path.cost = spf.distance.at(dst);
  NodeId cur = dst;
  while (cur != src) {
    const auto it = spf.parent_link.find(cur);
    if (it == spf.parent_link.end()) return {};  // disconnected tree
    const Link* link = topo.link(it->second);
    path.nodes.push_back(cur);
    path.links.push_back(link->id);
    cur = link->other(cur);
  }
  path.nodes.push_back(src);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.links.begin(), path.links.end());
  return path;
}

SpfResult dijkstra(const Topology& topo, NodeId src) {
  return dijkstra_avoiding(topo, src, nullptr, nullptr);
}

Path shortest_path(const Topology& topo, NodeId src, NodeId dst) {
  if (src == dst) {
    Path p;
    p.nodes = {src};
    return p;
  }
  return reconstruct_path(topo, dijkstra(topo, src), src, dst);
}

std::vector<Path> equal_cost_paths(const Topology& topo, NodeId src, NodeId dst,
                                   std::size_t limit) {
  std::vector<Path> out;
  if (limit == 0) return out;
  const SpfResult from_src = dijkstra(topo, src);
  if (!from_src.reached(dst)) return out;
  const SpfResult from_dst = dijkstra(topo, dst);
  const double best = from_src.distance.at(dst);

  // DFS over the shortest-path DAG: edge (u,v) is on some shortest path iff
  // dist_src(u) + cost + dist_dst(v) == best.
  Path current;
  current.nodes.push_back(src);

  std::vector<std::pair<NodeId, std::size_t>> stack;  // (node, next link idx)
  // Recursive lambda via explicit stack of frames.
  struct Frame {
    NodeId node;
    std::vector<const Link*> candidates;
    std::size_t next = 0;
  };
  auto candidates_of = [&](NodeId u) {
    std::vector<const Link*> cands;
    const double du = from_src.distance.at(u);
    for (const Link* link : topo.links_of(u)) {
      const NodeId v = link->other(u);
      const auto dv = from_dst.distance.find(v);
      if (dv == from_dst.distance.end()) continue;
      if (du + link->cost + dv->second == best) cands.push_back(link);
    }
    // Deterministic order.
    std::sort(cands.begin(), cands.end(),
              [](const Link* a, const Link* b) { return a->id < b->id; });
    return cands;
  };

  std::vector<Frame> frames;
  frames.push_back({src, candidates_of(src), 0});

  while (!frames.empty() && out.size() < limit) {
    Frame& frame = frames.back();
    if (frame.node == dst) {
      Path p = current;
      p.cost = best;
      out.push_back(std::move(p));
      frames.pop_back();
      if (!current.links.empty()) {
        current.links.pop_back();
        current.nodes.pop_back();
      }
      continue;
    }
    if (frame.next >= frame.candidates.size()) {
      frames.pop_back();
      if (!current.links.empty()) {
        current.links.pop_back();
        current.nodes.pop_back();
      }
      continue;
    }
    const Link* link = frame.candidates[frame.next++];
    const NodeId v = link->other(frame.node);
    current.links.push_back(link->id);
    current.nodes.push_back(v);
    frames.push_back({v, v == dst ? std::vector<const Link*>{} : candidates_of(v), 0});
  }
  return out;
}

std::vector<Path> k_shortest_paths(const Topology& topo, NodeId src, NodeId dst,
                                   std::size_t k) {
  std::vector<Path> result;
  if (k == 0) return result;
  Path first = shortest_path(topo, src, dst);
  if (first.empty()) return result;
  result.push_back(std::move(first));

  // Candidate set ordered by cost (then by node sequence for determinism).
  auto cmp = [](const Path& a, const Path& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.nodes < b.nodes;
  };
  std::set<Path, decltype(cmp)> candidates(cmp);

  while (result.size() < k) {
    const Path& prev = result.back();
    // Spur from each node of the previous path (except the last).
    for (std::size_t i = 0; i + 1 < prev.nodes.size(); ++i) {
      const NodeId spur_node = prev.nodes[i];

      std::unordered_set<LinkId> banned_links;
      std::unordered_set<NodeId> banned_nodes;

      // Ban links that would recreate an already-found path sharing the
      // same root (prefix).
      for (const Path& found : result) {
        if (found.nodes.size() > i &&
            std::equal(found.nodes.begin(),
                       found.nodes.begin() + static_cast<std::ptrdiff_t>(i + 1),
                       prev.nodes.begin())) {
          if (i < found.links.size()) banned_links.insert(found.links[i]);
        }
      }
      // Ban root-path nodes (loopless requirement).
      for (std::size_t j = 0; j < i; ++j) banned_nodes.insert(prev.nodes[j]);

      const SpfResult spf =
          dijkstra_avoiding(topo, spur_node, &banned_nodes, &banned_links);
      Path spur = reconstruct_path(topo, spf, spur_node, dst);
      if (spur.empty() && spur_node != dst) continue;

      // Total = root prefix + spur.
      Path total;
      total.nodes.assign(prev.nodes.begin(),
                         prev.nodes.begin() + static_cast<std::ptrdiff_t>(i));
      total.links.assign(prev.links.begin(),
                         prev.links.begin() + static_cast<std::ptrdiff_t>(i));
      total.nodes.insert(total.nodes.end(), spur.nodes.begin(), spur.nodes.end());
      total.links.insert(total.links.end(), spur.links.begin(), spur.links.end());
      total.cost = 0;
      for (const LinkId lid : total.links) total.cost += topo.link(lid)->cost;
      candidates.insert(std::move(total));
    }

    // Pop the best candidate not already in the result.
    bool advanced = false;
    while (!candidates.empty()) {
      Path best = *candidates.begin();
      candidates.erase(candidates.begin());
      if (std::find(result.begin(), result.end(), best) == result.end()) {
        result.push_back(std::move(best));
        advanced = true;
        break;
      }
    }
    if (!advanced) break;  // exhausted
  }
  return result;
}

std::unordered_set<LinkId> spanning_tree(const Topology& topo, NodeId root) {
  std::unordered_set<LinkId> tree;
  std::unordered_set<NodeId> visited;
  std::queue<NodeId> frontier;
  const Node* r = topo.node(root);
  if (!r || !r->up) return tree;
  visited.insert(root);
  frontier.push(root);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    // Deterministic: iterate links sorted by id.
    auto links = topo.links_of(u);
    std::sort(links.begin(), links.end(),
              [](const Link* a, const Link* b) { return a->id < b->id; });
    for (const Link* link : links) {
      const NodeId v = link->other(u);
      if (visited.insert(v).second) {
        tree.insert(link->id);
        frontier.push(v);
      }
    }
  }
  return tree;
}

bool is_connected(const Topology& topo) {
  std::vector<NodeId> up_nodes;
  for (const Node* n : topo.nodes())
    if (n->up) up_nodes.push_back(n->id);
  if (up_nodes.size() <= 1) return true;
  const SpfResult spf = dijkstra(topo, up_nodes.front());
  return std::all_of(up_nodes.begin(), up_nodes.end(),
                     [&](NodeId id) { return spf.reached(id); });
}

double path_latency(const Topology& topo, const Path& path) {
  double total = 0;
  for (const LinkId lid : path.links) {
    if (const Link* link = topo.link(lid)) total += link->latency_s;
  }
  return total;
}

double path_bottleneck(const Topology& topo, const Path& path,
                       const std::unordered_map<LinkId, double>& used_bps) {
  double min_residual = kInf;
  for (const LinkId lid : path.links) {
    const Link* link = topo.link(lid);
    if (!link) return 0;
    const auto it = used_bps.find(lid);
    const double used = it == used_bps.end() ? 0 : it->second;
    min_residual = std::min(min_residual, link->capacity_bps - used);
  }
  return min_residual == kInf ? 0 : std::max(0.0, min_residual);
}

}  // namespace zen::topo
