#include "topo/partition.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <unordered_set>

#include "util/rng.h"

namespace zen::topo {

namespace {

// Neighbors of `node` restricted to the partitioned switch set, ascending —
// every traversal below walks them in id order so the result depends only
// on (topology, switches, options).
std::vector<NodeId> sorted_member_neighbors(
    const Topology& topo, NodeId node,
    const std::unordered_set<NodeId>& members) {
  std::vector<NodeId> out;
  for (const NodeId nb : topo.neighbors(node))
    if (members.contains(nb)) out.push_back(nb);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// BFS hop distances from `src` within the member set.
std::unordered_map<NodeId, std::size_t> bfs_distances(
    const Topology& topo, NodeId src,
    const std::unordered_set<NodeId>& members) {
  std::unordered_map<NodeId, std::size_t> dist;
  dist[src] = 0;
  std::deque<NodeId> queue{src};
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    for (const NodeId nb : sorted_member_neighbors(topo, cur, members)) {
      if (dist.contains(nb)) continue;
      dist[nb] = dist.at(cur) + 1;
      queue.push_back(nb);
    }
  }
  return dist;
}

// Would `group` stay connected if `node` left it?
bool connected_without(const Topology& topo, const std::vector<NodeId>& group,
                       NodeId node) {
  std::unordered_set<NodeId> rest(group.begin(), group.end());
  rest.erase(node);
  if (rest.empty()) return false;  // never empty a group
  const NodeId start = *std::min_element(rest.begin(), rest.end());
  std::unordered_set<NodeId> seen{start};
  std::deque<NodeId> queue{start};
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    for (const NodeId nb : sorted_member_neighbors(topo, cur, rest))
      if (seen.insert(nb).second) queue.push_back(nb);
  }
  return seen.size() == rest.size();
}

}  // namespace

double Partition::imbalance() const noexcept {
  if (groups.empty() || group_of.empty()) return 1.0;
  std::size_t largest = 0;
  for (const auto& group : groups) largest = std::max(largest, group.size());
  const double mean =
      static_cast<double>(group_of.size()) / static_cast<double>(groups.size());
  return mean > 0 ? static_cast<double>(largest) / mean : 1.0;
}

Partition partition_switches(const Topology& topo,
                             const std::vector<NodeId>& switches,
                             const PartitionOptions& opts) {
  Partition part;
  std::vector<NodeId> nodes = switches;
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  const std::size_t k =
      std::max<std::size_t>(1, std::min(opts.n_groups, nodes.size()));
  part.groups.resize(k);
  if (nodes.empty()) return part;
  const std::unordered_set<NodeId> members(nodes.begin(), nodes.end());

  // ---- seed selection: seeded start, then farthest-point spreading ----
  // The first seed is a seeded uniform pick; each subsequent seed is the
  // node maximizing hop distance to its nearest existing seed, which
  // spreads the regions across the graph instead of clustering them.
  util::Rng rng(opts.seed);
  std::vector<NodeId> seeds{nodes[rng.next_below(nodes.size())]};
  std::unordered_map<NodeId, std::size_t> nearest =
      bfs_distances(topo, seeds[0], members);
  while (seeds.size() < k) {
    NodeId best = 0;
    std::size_t best_dist = 0;
    bool found = false;
    for (const NodeId node : nodes) {
      if (std::find(seeds.begin(), seeds.end(), node) != seeds.end()) continue;
      const auto it = nearest.find(node);
      // Unreachable nodes are maximally far: they start their own region.
      const std::size_t d = it == nearest.end()
                                ? std::numeric_limits<std::size_t>::max()
                                : it->second;
      if (!found || d > best_dist) {
        best = node;
        best_dist = d;
        found = true;
      }
    }
    if (!found) break;
    seeds.push_back(best);
    for (const auto& [node, d] : bfs_distances(topo, best, members)) {
      const auto it = nearest.find(node);
      if (it == nearest.end() || d < it->second) nearest[node] = d;
    }
  }

  // ---- BFS region growing, smallest group first ----
  // Each group holds a frontier; every step extends the currently smallest
  // growable group by one node, so sizes stay within one node of each
  // other wherever the graph allows it.
  std::vector<std::deque<NodeId>> frontier(k);
  for (std::size_t g = 0; g < seeds.size(); ++g) {
    part.groups[g].push_back(seeds[g]);
    part.group_of[seeds[g]] = g;
    frontier[g].push_back(seeds[g]);
  }
  std::size_t assigned = part.group_of.size();
  while (assigned < nodes.size()) {
    std::size_t pick = k;
    for (std::size_t g = 0; g < k; ++g) {
      if (frontier[g].empty()) continue;
      if (pick == k || part.groups[g].size() < part.groups[pick].size())
        pick = g;
    }
    if (pick == k) {
      // Every frontier is exhausted but nodes remain (disconnected member
      // set): attach each leftover to the group of a neighbor when one is
      // assigned, else to the smallest group.
      for (const NodeId node : nodes) {
        if (part.group_of.contains(node)) continue;
        std::size_t g = 0;
        bool via_neighbor = false;
        for (const NodeId nb : sorted_member_neighbors(topo, node, members)) {
          const auto it = part.group_of.find(nb);
          if (it != part.group_of.end()) {
            g = it->second;
            via_neighbor = true;
            break;
          }
        }
        if (!via_neighbor) {
          for (std::size_t cand = 0; cand < k; ++cand)
            if (part.groups[cand].size() < part.groups[g].size()) g = cand;
        }
        part.groups[g].push_back(node);
        part.group_of[node] = g;
        ++assigned;
      }
      break;
    }
    const NodeId cur = frontier[pick].front();
    bool grew = false;
    for (const NodeId nb : sorted_member_neighbors(topo, cur, members)) {
      if (part.group_of.contains(nb)) continue;
      part.groups[pick].push_back(nb);
      part.group_of[nb] = pick;
      frontier[pick].push_back(nb);
      ++assigned;
      grew = true;
      break;  // one node per step keeps the smallest-first invariant
    }
    if (!grew) frontier[pick].pop_front();
  }

  // ---- boundary refinement (KL-style, connectivity-preserving) ----
  // Move a border node to a neighboring group when that strictly reduces
  // its external degree, the donor stays connected, and the recipient
  // stays under the balance cap. Nodes are visited in ascending id order;
  // the loop ends after a full pass with no moves.
  const double cap = std::max(1.0, opts.balance_cap) *
                     (static_cast<double>(nodes.size()) / static_cast<double>(k));
  for (int iter = 0; iter < opts.refine_iters; ++iter) {
    bool moved = false;
    for (const NodeId node : nodes) {
      const std::size_t from = part.group_of.at(node);
      if (part.groups[from].size() <= 1) continue;
      // Count neighbors per group.
      std::unordered_map<std::size_t, std::size_t> degree;
      for (const NodeId nb : sorted_member_neighbors(topo, node, members))
        ++degree[part.group_of.at(nb)];
      std::size_t best = from;
      std::size_t best_degree = degree[from];
      for (std::size_t g = 0; g < k; ++g) {
        if (g == from) continue;
        const auto it = degree.find(g);
        if (it == degree.end()) continue;
        if (static_cast<double>(part.groups[g].size()) + 1 > cap) continue;
        // Strict improvement only — lateral moves would oscillate.
        if (it->second > best_degree) {
          best = g;
          best_degree = it->second;
        }
      }
      if (best == from) continue;
      if (!connected_without(topo, part.groups[from], node)) continue;
      auto& donor = part.groups[from];
      donor.erase(std::remove(donor.begin(), donor.end(), node), donor.end());
      part.groups[best].push_back(node);
      part.group_of[node] = best;
      moved = true;
    }
    if (!moved) break;
  }

  for (auto& group : part.groups) std::sort(group.begin(), group.end());
  return part;
}

std::vector<BorderLink> border_links(const Topology& topo,
                                     const Partition& partition) {
  std::vector<BorderLink> out;
  for (const Link* link : topo.links()) {
    const auto a = partition.group_of.find(link->a);
    const auto b = partition.group_of.find(link->b);
    if (a == partition.group_of.end() || b == partition.group_of.end())
      continue;
    if (a->second == b->second) continue;
    out.push_back(BorderLink{link->id, link->a, link->a_port, a->second,
                             link->b, link->b_port, b->second});
  }
  std::sort(out.begin(), out.end(),
            [](const BorderLink& x, const BorderLink& y) { return x.id < y.id; });
  return out;
}

std::size_t edge_cut(const Topology& topo, const Partition& partition) {
  return border_links(topo, partition).size();
}

}  // namespace zen::topo
