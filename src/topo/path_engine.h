// PathEngine: the shared path-computation mechanism layer.
//
// A topology-epoch-keyed cache of per-destination reverse SPF results.
// One Dijkstra rooted at a destination yields, for *every* source switch
// at once, the full ECMP next-hop set: a link (u, v) is on a shortest
// path from u toward dst iff distance(v) + cost(u,v) == distance(u), so
// the equal-cost successor links of the SPF DAG fall out in O(degree)
// per node with no extra search (no Yen's, no per-pair Dijkstra).
//
// Consumers (L3 routing, intents, reactive apps, TE) share one engine and
// therefore one cache: the first query toward a destination pays the SPF,
// every later query — from any consumer, for any source — is a hash
// lookup. The cache is invalidated wholesale when the owner re-syncs the
// engine with a new epoch (NetworkView::topology_epoch(), or
// Topology::version() for standalone use).
//
// Link costs must be positive: equal-cost DAG edges then strictly
// decrease distance-to-destination, which is what makes every greedy
// descent (and hence every ECMP spread) provably loop-free.
//
// Not thread-safe; the control plane is single-threaded per engine.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "topo/graph.h"
#include "topo/paths.h"

namespace zen::topo {

struct PathEngineStats {
  std::uint64_t hits = 0;           // queries served from cache
  std::uint64_t misses = 0;         // queries that had to compute
  std::uint64_t invalidations = 0;  // epoch moves that dropped the cache
  std::uint64_t spf_runs = 0;       // Dijkstra executions (incl. filtered)
};

class PathEngine {
 public:
  struct NextHop {
    LinkId link = 0;
    NodeId via = 0;             // neighbor reached over `link`
    std::uint32_t out_port = 0; // egress port at the querying node
    friend bool operator==(const NextHop&, const NextHop&) = default;
  };

  // Reverse shortest-path DAG rooted at one destination. `distance[v]` is
  // the cost from v to the destination; `dag[v]` lists every incident link
  // that starts an equal-cost shortest path toward it, sorted by link id
  // (deterministic install order for free).
  struct DestTree {
    NodeId dst = 0;
    std::unordered_map<NodeId, double> distance;
    std::unordered_map<NodeId, std::vector<NextHop>> dag;
  };

  PathEngine() = default;

  // Rebinds the engine to a topology snapshot tagged with `epoch`. A
  // matching epoch keeps the cache (and skips the copy); a new one drops
  // every cached tree. The rvalue overload steals the snapshot.
  void sync(const Topology& topo, std::uint64_t epoch);
  void sync(Topology&& topo, std::uint64_t epoch);
  // Standalone use: key the cache on the topology's own version counter.
  void sync(const Topology& topo) { sync(topo, topo.version()); }

  std::uint64_t epoch() const noexcept { return epoch_; }
  const Topology& topology() const noexcept { return topo_; }

  // The reverse SPF tree toward `dst` (computed on first use, cached).
  const DestTree& towards(NodeId dst);

  // ECMP next-hops of `from` toward `dst`, sorted by link id. Empty when
  // from == dst or dst is unreachable.
  const std::vector<NextHop>& next_hops(NodeId from, NodeId dst);

  // Cost from `from` to `dst` (0 if equal, +inf if unreachable).
  double distance(NodeId from, NodeId dst);
  bool reachable(NodeId from, NodeId dst);

  // Lowest-link-id shortest path, reconstructed by DAG descent — answers
  // match topo::shortest_path() costs without any per-pair Dijkstra.
  Path shortest_path(NodeId src, NodeId dst);

  // All distinct minimum-cost paths up to `limit`, enumerated by DFS over
  // the cached DAG (same order as topo::equal_cost_paths).
  std::vector<Path> equal_cost_paths(NodeId src, NodeId dst,
                                     std::size_t limit = 16);

  // Yen's K loopless shortest paths, cached per (src, dst, k) under the
  // same epoch (TE solvers re-ask for identical tuples every solve).
  const std::vector<Path>& k_shortest_paths(NodeId src, NodeId dst,
                                            std::size_t k);

  // Shortest path that avoids `banned_links` (disjoint-backup queries).
  // Runs a filtered Dijkstra on the cached snapshot — no topology copy —
  // and is deliberately uncached (the banned set is query-specific).
  Path shortest_path_avoiding(NodeId src, NodeId dst,
                              const std::unordered_set<LinkId>& banned_links);

  const PathEngineStats& stats() const noexcept { return stats_; }

 private:
  const DestTree& tree_for(NodeId dst);

  Topology topo_;
  std::uint64_t epoch_ = 0;
  bool bound_ = false;
  std::unordered_map<NodeId, DestTree> dest_cache_;
  std::map<std::tuple<NodeId, NodeId, std::size_t>, std::vector<Path>>
      yen_cache_;
  PathEngineStats stats_;
};

}  // namespace zen::topo
