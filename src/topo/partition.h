// Deterministic seeded graph partitioner for clustered control planes.
//
// Splits a set of switches into k connected groups of comparable size so
// each group can be owned by one delegated controller (the LazyCtrl-style
// CCM/DCM split): seeded farthest-point seed selection, BFS region growing
// that always extends the currently smallest group, and a bounded
// KL-style boundary refinement that moves border nodes to reduce the edge
// cut without disconnecting the donor group or violating the balance cap.
// The same (topology, switches, options) always yields the same groups —
// two controllers computing the partition independently agree on it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "topo/graph.h"

namespace zen::topo {

struct PartitionOptions {
  std::size_t n_groups = 2;
  std::uint64_t seed = 1;
  // Boundary-refinement passes (0 disables refinement).
  int refine_iters = 4;
  // No group may exceed this multiple of the mean group size.
  double balance_cap = 2.0;
};

struct Partition {
  // groups[g] lists that group's switches in ascending id order.
  std::vector<std::vector<NodeId>> groups;
  std::unordered_map<NodeId, std::size_t> group_of;

  std::size_t size() const noexcept { return groups.size(); }
  // Largest group size divided by the mean (1.0 = perfectly balanced).
  double imbalance() const noexcept;
};

// Partitions `switches` (which must be nodes of `topo`) into
// opts.n_groups connected groups. Nodes unreachable from any seed land in
// the group of their nearest already-assigned neighbor (or group 0 when
// fully isolated), so every switch is always assigned.
Partition partition_switches(const Topology& topo,
                             const std::vector<NodeId>& switches,
                             const PartitionOptions& opts);

// A physical link whose endpoints landed in different groups: the only
// infrastructure the root controller needs to model — each group collapses
// to one abstract node whose "ports" are its border-link endpoints.
struct BorderLink {
  LinkId id = 0;
  NodeId a = 0;
  std::uint32_t a_port = 0;
  std::size_t a_group = 0;
  NodeId b = 0;
  std::uint32_t b_port = 0;
  std::size_t b_group = 0;
};

// Border links of `partition` in ascending link-id order (deterministic).
std::vector<BorderLink> border_links(const Topology& topo,
                                     const Partition& partition);

// Number of links crossing group boundaries (the partition cut).
std::size_t edge_cut(const Topology& topo, const Partition& partition);

}  // namespace zen::topo
