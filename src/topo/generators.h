// Canonical topology generators used by tests, examples and benchmarks:
// linear / ring chains, 3-tier fat-trees, leaf-spine fabrics, random
// connected graphs, and an Abilene-like WAN preset for TE experiments.
//
// Conventions: switch ids count up from 1; host ids start at kHostIdBase.
// Each generator returns the Topology plus the host attachment points so
// the simulator can wire hosts without re-deriving structure.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/graph.h"
#include "util/rng.h"

namespace zen::topo {

inline constexpr NodeId kHostIdBase = 0x100000;

inline constexpr bool is_host_id(NodeId id) { return id >= kHostIdBase; }

struct HostAttachment {
  NodeId host = 0;
  NodeId sw = 0;
  std::uint32_t sw_port = 0;
  std::uint32_t host_port = 1;
};

struct GeneratedTopo {
  Topology topo;
  std::vector<NodeId> switches;
  std::vector<NodeId> hosts;
  std::vector<HostAttachment> attachments;
};

// A chain of `n_switches` with `hosts_per_switch` hosts on each.
GeneratedTopo make_linear(std::size_t n_switches, std::size_t hosts_per_switch,
                          double link_bps = 10e9, double latency_s = 10e-6);

// A ring of `n_switches` (adds the wrap link to the chain).
GeneratedTopo make_ring(std::size_t n_switches, std::size_t hosts_per_switch,
                        double link_bps = 10e9, double latency_s = 10e-6);

// Classic 3-tier fat-tree of parameter k (k even): (k/2)^2 core switches,
// k pods of k/2 aggregation + k/2 edge switches, (k^3)/4 hosts.
GeneratedTopo make_fat_tree(std::size_t k, double link_bps = 10e9,
                            double latency_s = 5e-6);

// Two-tier leaf-spine: every leaf connects to every spine.
GeneratedTopo make_leaf_spine(std::size_t n_spine, std::size_t n_leaf,
                              std::size_t hosts_per_leaf,
                              double link_bps = 40e9, double latency_s = 5e-6);

// Jellyfish topology (random regular graph, SIGCOMM'12 adjacent): every
// switch has exactly `degree` switch-facing ports, wired uniformly at
// random with edge swaps to repair dead ends; high path diversity at low
// diameter. `hosts_per_switch` hosts attach to every switch.
GeneratedTopo make_jellyfish(std::size_t n_switches, std::size_t degree,
                             std::size_t hosts_per_switch, util::Rng& rng,
                             double link_bps = 10e9, double latency_s = 10e-6);

// Connected random graph: a random spanning tree plus extra edges to reach
// roughly `avg_degree`. One host per switch.
GeneratedTopo make_random_connected(std::size_t n_switches, double avg_degree,
                                    util::Rng& rng, double link_bps = 10e9,
                                    double latency_s = 10e-6);

// Abilene-like research WAN: 11 PoPs, 14 links, with realistic relative
// latencies. One host ("site") per PoP. Used by the TE experiments (E8/E9).
GeneratedTopo make_wan_abilene(double link_bps = 10e9);

}  // namespace zen::topo
