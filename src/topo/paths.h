// Path computation over Topology: Dijkstra, equal-cost path enumeration
// (for ECMP), Yen's K-shortest paths, and a BFS spanning tree (for safe
// flooding).
#pragma once

#include <limits>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "topo/graph.h"

namespace zen::topo {

struct Path {
  std::vector<NodeId> nodes;   // src .. dst
  std::vector<LinkId> links;   // nodes.size() - 1 entries
  double cost = 0;

  bool empty() const noexcept { return nodes.empty(); }
  std::size_t hop_count() const noexcept { return links.size(); }

  friend bool operator==(const Path&, const Path&) = default;
};

// Single-source shortest-path tree (by link cost).
struct SpfResult {
  std::unordered_map<NodeId, double> distance;
  // For path reconstruction: the link used to reach each node.
  std::unordered_map<NodeId, LinkId> parent_link;

  bool reached(NodeId id) const { return distance.contains(id); }
};

SpfResult dijkstra(const Topology& topo, NodeId src);

// Dijkstra that refuses to traverse the given nodes/links (either set may
// be null). Used for Yen's spur paths and disjoint-backup queries.
SpfResult dijkstra_avoiding(const Topology& topo, NodeId src,
                            const std::unordered_set<NodeId>* banned_nodes,
                            const std::unordered_set<LinkId>* banned_links);

// Walks parent links of `spf` (rooted at `src`) back from `dst`; empty
// path if unreachable.
Path reconstruct_path(const Topology& topo, const SpfResult& spf, NodeId src,
                      NodeId dst);

// Lowest-cost path, or an empty path if unreachable.
Path shortest_path(const Topology& topo, NodeId src, NodeId dst);

// All distinct minimum-cost paths, up to `limit` (ECMP set).
std::vector<Path> equal_cost_paths(const Topology& topo, NodeId src, NodeId dst,
                                   std::size_t limit = 16);

// Yen's algorithm: K loopless shortest paths in nondecreasing cost order.
std::vector<Path> k_shortest_paths(const Topology& topo, NodeId src, NodeId dst,
                                   std::size_t k);

// BFS spanning tree rooted at `root`: the set of links on the tree.
// Flooding restricted to these links is loop-free.
std::unordered_set<LinkId> spanning_tree(const Topology& topo, NodeId root);

// True if every up node is reachable from every other up node.
bool is_connected(const Topology& topo);

// Total propagation latency along a path.
double path_latency(const Topology& topo, const Path& path);

// Minimum residual capacity along a path given per-link usage.
double path_bottleneck(const Topology& topo, const Path& path,
                       const std::unordered_map<LinkId, double>& used_bps);

}  // namespace zen::topo
