#include "topo/generators.h"

#include <cassert>
#include <map>
#include <string>

namespace zen::topo {

namespace {

// Tracks the next free port number on each node.
class PortAllocator {
 public:
  std::uint32_t next(NodeId node) { return ++ports_[node]; }

 private:
  std::map<NodeId, std::uint32_t> ports_;
};

void attach_host(GeneratedTopo& g, PortAllocator& ports, NodeId host_id,
                 NodeId sw, double link_bps, double latency_s) {
  g.topo.add_node(host_id, NodeKind::Host, "h" + std::to_string(host_id - kHostIdBase));
  const std::uint32_t sw_port = ports.next(sw);
  const std::uint32_t host_port = 1;
  g.topo.add_link(host_id, host_port, sw, sw_port, link_bps, latency_s);
  g.hosts.push_back(host_id);
  g.attachments.push_back(HostAttachment{host_id, sw, sw_port, host_port});
}

GeneratedTopo make_chain(std::size_t n_switches, std::size_t hosts_per_switch,
                         double link_bps, double latency_s, bool ring) {
  GeneratedTopo g;
  PortAllocator ports;
  for (std::size_t i = 0; i < n_switches; ++i) {
    const NodeId id = i + 1;
    g.topo.add_node(id, NodeKind::Switch, "s" + std::to_string(id));
    g.switches.push_back(id);
  }
  for (std::size_t i = 0; i + 1 < n_switches; ++i) {
    const NodeId a = i + 1, b = i + 2;
    g.topo.add_link(a, ports.next(a), b, ports.next(b), link_bps, latency_s);
  }
  if (ring && n_switches > 2) {
    const NodeId a = n_switches, b = 1;
    g.topo.add_link(a, ports.next(a), b, ports.next(b), link_bps, latency_s);
  }
  NodeId next_host = kHostIdBase;
  for (std::size_t i = 0; i < n_switches; ++i) {
    for (std::size_t h = 0; h < hosts_per_switch; ++h)
      attach_host(g, ports, next_host++, i + 1, link_bps, latency_s);
  }
  return g;
}

}  // namespace

GeneratedTopo make_linear(std::size_t n_switches, std::size_t hosts_per_switch,
                          double link_bps, double latency_s) {
  return make_chain(n_switches, hosts_per_switch, link_bps, latency_s, false);
}

GeneratedTopo make_ring(std::size_t n_switches, std::size_t hosts_per_switch,
                        double link_bps, double latency_s) {
  return make_chain(n_switches, hosts_per_switch, link_bps, latency_s, true);
}

GeneratedTopo make_fat_tree(std::size_t k, double link_bps, double latency_s) {
  assert(k >= 2 && k % 2 == 0);
  GeneratedTopo g;
  PortAllocator ports;
  const std::size_t half = k / 2;
  const std::size_t n_core = half * half;

  // Id layout: cores 1..n_core, then per pod: aggs, then edges.
  std::vector<NodeId> cores;
  NodeId next_id = 1;
  for (std::size_t c = 0; c < n_core; ++c) {
    g.topo.add_node(next_id, NodeKind::Switch, "core" + std::to_string(c));
    cores.push_back(next_id);
    g.switches.push_back(next_id++);
  }

  NodeId next_host = kHostIdBase;
  for (std::size_t pod = 0; pod < k; ++pod) {
    std::vector<NodeId> aggs, edges;
    for (std::size_t a = 0; a < half; ++a) {
      g.topo.add_node(next_id, NodeKind::Switch,
                      "agg" + std::to_string(pod) + "_" + std::to_string(a));
      aggs.push_back(next_id);
      g.switches.push_back(next_id++);
    }
    for (std::size_t e = 0; e < half; ++e) {
      g.topo.add_node(next_id, NodeKind::Switch,
                      "edge" + std::to_string(pod) + "_" + std::to_string(e));
      edges.push_back(next_id);
      g.switches.push_back(next_id++);
    }
    // Aggregation <-> core: agg a connects to cores [a*half, (a+1)*half).
    for (std::size_t a = 0; a < half; ++a) {
      for (std::size_t c = 0; c < half; ++c) {
        const NodeId core = cores[a * half + c];
        g.topo.add_link(aggs[a], ports.next(aggs[a]), core, ports.next(core),
                        link_bps, latency_s);
      }
    }
    // Edge <-> aggregation: full bipartite within the pod.
    for (std::size_t e = 0; e < half; ++e) {
      for (std::size_t a = 0; a < half; ++a) {
        g.topo.add_link(edges[e], ports.next(edges[e]), aggs[a],
                        ports.next(aggs[a]), link_bps, latency_s);
      }
    }
    // Hosts on edge switches.
    for (std::size_t e = 0; e < half; ++e) {
      for (std::size_t h = 0; h < half; ++h)
        attach_host(g, ports, next_host++, edges[e], link_bps, latency_s);
    }
  }
  return g;
}

GeneratedTopo make_leaf_spine(std::size_t n_spine, std::size_t n_leaf,
                              std::size_t hosts_per_leaf, double link_bps,
                              double latency_s) {
  GeneratedTopo g;
  PortAllocator ports;
  std::vector<NodeId> spines, leaves;
  NodeId next_id = 1;
  for (std::size_t s = 0; s < n_spine; ++s) {
    g.topo.add_node(next_id, NodeKind::Switch, "spine" + std::to_string(s));
    spines.push_back(next_id);
    g.switches.push_back(next_id++);
  }
  for (std::size_t l = 0; l < n_leaf; ++l) {
    g.topo.add_node(next_id, NodeKind::Switch, "leaf" + std::to_string(l));
    leaves.push_back(next_id);
    g.switches.push_back(next_id++);
  }
  for (const NodeId leaf : leaves)
    for (const NodeId spine : spines)
      g.topo.add_link(leaf, ports.next(leaf), spine, ports.next(spine),
                      link_bps, latency_s);
  NodeId next_host = kHostIdBase;
  for (const NodeId leaf : leaves)
    for (std::size_t h = 0; h < hosts_per_leaf; ++h)
      attach_host(g, ports, next_host++, leaf, link_bps, latency_s);
  return g;
}

GeneratedTopo make_jellyfish(std::size_t n_switches, std::size_t degree,
                             std::size_t hosts_per_switch, util::Rng& rng,
                             double link_bps, double latency_s) {
  assert(degree < n_switches);
  GeneratedTopo g;
  PortAllocator ports;
  for (std::size_t i = 0; i < n_switches; ++i) {
    const NodeId id = i + 1;
    g.topo.add_node(id, NodeKind::Switch, "j" + std::to_string(id));
    g.switches.push_back(id);
  }

  auto free_ports = std::vector<std::size_t>(n_switches + 1, degree);
  auto connect = [&](NodeId a, NodeId b) {
    g.topo.add_link(a, ports.next(a), b, ports.next(b), link_bps, latency_s);
    --free_ports[a];
    --free_ports[b];
  };

  // Jellyfish construction: repeatedly join two random switches with free
  // ports that are not yet adjacent. When stuck (remaining free ports all
  // cluster on adjacent/same switches), break a random existing link and
  // rewire through a stuck switch.
  std::size_t stuck_iterations = 0;
  for (;;) {
    std::vector<NodeId> candidates;
    for (NodeId id = 1; id <= n_switches; ++id)
      if (free_ports[id] > 0) candidates.push_back(id);
    if (candidates.empty()) break;
    if (candidates.size() == 1 || stuck_iterations > n_switches * degree * 4) {
      const auto links = g.topo.links();
      if (links.empty()) break;
      if (candidates.size() == 1 && free_ports[candidates[0]] >= 2) {
        // One switch with >= 2 free ports: splice it into a random link.
        const NodeId stuck = candidates.front();
        const Link victim = *links[rng.next_below(links.size())];
        if (victim.a == stuck || victim.b == stuck) {
          ++stuck_iterations;
          continue;
        }
        g.topo.remove_link(victim.id);
        ++free_ports[victim.a];
        ++free_ports[victim.b];
        connect(victim.a, stuck);
        connect(victim.b, stuck);
        stuck_iterations = 0;
        continue;
      }
      if (candidates.size() >= 2) {
        // Two stuck switches (typically mutually adjacent): edge-swap with
        // a random existing link (c, d): replace it by a-c and b-d.
        const NodeId a = candidates[0];
        const NodeId b = candidates[1];
        const Link victim = *links[rng.next_below(links.size())];
        const NodeId c = victim.a, d = victim.b;
        if (c == a || c == b || d == a || d == b ||
            g.topo.link_between(a, c) || g.topo.link_between(b, d)) {
          ++stuck_iterations;
          // Avoid livelock: give up after many failed swap attempts.
          if (stuck_iterations > n_switches * degree * 8) break;
          continue;
        }
        g.topo.remove_link(victim.id);
        ++free_ports[c];
        ++free_ports[d];
        connect(a, c);
        connect(b, d);
        stuck_iterations = 0;
        continue;
      }
      break;  // single switch with one free port: leave it unwired
    }
    const NodeId a = candidates[rng.next_below(candidates.size())];
    const NodeId b = candidates[rng.next_below(candidates.size())];
    if (a == b || g.topo.link_between(a, b)) {
      ++stuck_iterations;
      continue;
    }
    connect(a, b);
    stuck_iterations = 0;
  }

  NodeId next_host = kHostIdBase;
  for (std::size_t i = 0; i < n_switches; ++i)
    for (std::size_t h = 0; h < hosts_per_switch; ++h)
      attach_host(g, ports, next_host++, i + 1, link_bps, latency_s);
  return g;
}

GeneratedTopo make_random_connected(std::size_t n_switches, double avg_degree,
                                    util::Rng& rng, double link_bps,
                                    double latency_s) {
  GeneratedTopo g;
  PortAllocator ports;
  for (std::size_t i = 0; i < n_switches; ++i) {
    const NodeId id = i + 1;
    g.topo.add_node(id, NodeKind::Switch, "s" + std::to_string(id));
    g.switches.push_back(id);
  }
  // Random spanning tree: attach node i to a random earlier node.
  for (std::size_t i = 1; i < n_switches; ++i) {
    const NodeId a = i + 1;
    const NodeId b = rng.next_below(i) + 1;
    g.topo.add_link(a, ports.next(a), b, ports.next(b), link_bps, latency_s);
  }
  // Extra edges to reach the target average degree.
  const std::size_t target_links =
      static_cast<std::size_t>(avg_degree * static_cast<double>(n_switches) / 2.0);
  std::size_t attempts = 0;
  while (g.topo.link_count() < target_links && attempts < target_links * 20) {
    ++attempts;
    const NodeId a = rng.next_below(n_switches) + 1;
    const NodeId b = rng.next_below(n_switches) + 1;
    if (a == b || g.topo.link_between(a, b)) continue;
    g.topo.add_link(a, ports.next(a), b, ports.next(b), link_bps, latency_s);
  }
  NodeId next_host = kHostIdBase;
  for (std::size_t i = 0; i < n_switches; ++i)
    attach_host(g, ports, next_host++, i + 1, link_bps, latency_s);
  return g;
}

GeneratedTopo make_wan_abilene(double link_bps) {
  GeneratedTopo g;
  PortAllocator ports;
  // PoPs: 1 Seattle, 2 Sunnyvale, 3 Los Angeles, 4 Denver, 5 Kansas City,
  // 6 Houston, 7 Chicago, 8 Indianapolis, 9 Atlanta, 10 Washington DC,
  // 11 New York.
  const char* names[] = {"SEA", "SNV", "LAX", "DEN", "KCY", "HOU",
                         "CHI", "IND", "ATL", "WDC", "NYC"};
  for (NodeId id = 1; id <= 11; ++id) {
    g.topo.add_node(id, NodeKind::Switch, names[id - 1]);
    g.switches.push_back(id);
  }
  struct WanLink {
    NodeId a, b;
    double ms;  // one-way propagation
  };
  const WanLink wan_links[] = {
      {1, 2, 13}, {1, 4, 16}, {2, 3, 6},  {2, 4, 15}, {3, 6, 22},
      {4, 5, 9},  {5, 6, 12}, {5, 8, 7},  {6, 9, 14}, {7, 8, 3},
      {7, 11, 13}, {8, 9, 8},  {9, 10, 9}, {10, 11, 4},
  };
  for (const auto& wl : wan_links) {
    g.topo.add_link(wl.a, ports.next(wl.a), wl.b, ports.next(wl.b), link_bps,
                    wl.ms / 1000.0);
  }
  // One site (host) per PoP.
  NodeId next_host = kHostIdBase;
  for (NodeId sw = 1; sw <= 11; ++sw)
    attach_host(g, ports, next_host++, sw, link_bps, 1e-5);
  return g;
}

}  // namespace zen::topo
