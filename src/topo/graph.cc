#include "topo/graph.h"

#include <algorithm>

namespace zen::topo {

bool Topology::add_node(NodeId id, NodeKind kind, std::string name) {
  if (nodes_.contains(id)) return false;
  Node n;
  n.id = id;
  n.kind = kind;
  n.name = name.empty() ? ("n" + std::to_string(id)) : std::move(name);
  nodes_.emplace(id, std::move(n));
  adjacency_.try_emplace(id);
  ++version_;
  return true;
}

bool Topology::remove_node(NodeId id) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) return false;
  // Remove incident links first.
  const auto adj_it = adjacency_.find(id);
  if (adj_it != adjacency_.end()) {
    for (const LinkId lid : std::vector<LinkId>(adj_it->second)) remove_link(lid);
  }
  adjacency_.erase(id);
  nodes_.erase(it);
  ++version_;
  return true;
}

std::optional<LinkId> Topology::add_link(NodeId a, std::uint32_t a_port,
                                         NodeId b, std::uint32_t b_port,
                                         double capacity_bps, double latency_s,
                                         double cost) {
  if (!nodes_.contains(a) || !nodes_.contains(b) || a == b) return std::nullopt;
  if (link_at(a, a_port) || link_at(b, b_port)) return std::nullopt;
  const LinkId id = next_link_id_++;
  Link link;
  link.id = id;
  link.a = a;
  link.a_port = a_port;
  link.b = b;
  link.b_port = b_port;
  link.capacity_bps = capacity_bps;
  link.latency_s = latency_s;
  link.cost = cost;
  links_.emplace(id, link);
  adjacency_[a].push_back(id);
  adjacency_[b].push_back(id);
  ++version_;
  return id;
}

bool Topology::remove_link(LinkId id) {
  const auto it = links_.find(id);
  if (it == links_.end()) return false;
  for (const NodeId endpoint : {it->second.a, it->second.b}) {
    auto& adj = adjacency_[endpoint];
    adj.erase(std::remove(adj.begin(), adj.end(), id), adj.end());
  }
  links_.erase(it);
  ++version_;
  return true;
}

bool Topology::set_link_up(LinkId id, bool up) {
  const auto it = links_.find(id);
  if (it == links_.end() || it->second.up == up) return false;
  it->second.up = up;
  ++version_;
  return true;
}

bool Topology::set_node_up(NodeId id, bool up) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end() || it->second.up == up) return false;
  it->second.up = up;
  ++version_;
  return true;
}

const Node* Topology::node(NodeId id) const noexcept {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

const Link* Topology::link(LinkId id) const noexcept {
  const auto it = links_.find(id);
  return it == links_.end() ? nullptr : &it->second;
}

Link* Topology::mutable_link(LinkId id) noexcept {
  const auto it = links_.find(id);
  return it == links_.end() ? nullptr : &it->second;
}

const Link* Topology::link_at(NodeId node, std::uint32_t port) const noexcept {
  const auto it = adjacency_.find(node);
  if (it == adjacency_.end()) return nullptr;
  for (const LinkId lid : it->second) {
    const Link& l = links_.at(lid);
    if ((l.a == node && l.a_port == port) || (l.b == node && l.b_port == port))
      return &l;
  }
  return nullptr;
}

const Link* Topology::link_between(NodeId a, NodeId b) const noexcept {
  const auto it = adjacency_.find(a);
  if (it == adjacency_.end()) return nullptr;
  for (const LinkId lid : it->second) {
    const Link& l = links_.at(lid);
    if (l.up && l.other(a) == b) return &l;
  }
  return nullptr;
}

std::vector<const Link*> Topology::links_of(NodeId id) const {
  std::vector<const Link*> out;
  const Node* n = node(id);
  if (!n || !n->up) return out;
  const auto it = adjacency_.find(id);
  if (it == adjacency_.end()) return out;
  for (const LinkId lid : it->second) {
    const Link& l = links_.at(lid);
    const Node* peer = node(l.other(id));
    if (l.up && peer && peer->up) out.push_back(&l);
  }
  return out;
}

std::vector<NodeId> Topology::neighbors(NodeId id) const {
  std::vector<NodeId> out;
  for (const Link* l : links_of(id)) out.push_back(l->other(id));
  return out;
}

std::vector<const Node*> Topology::nodes() const {
  std::vector<const Node*> out;
  out.reserve(nodes_.size());
  for (const auto& [id, n] : nodes_) out.push_back(&n);
  std::sort(out.begin(), out.end(),
            [](const Node* a, const Node* b) { return a->id < b->id; });
  return out;
}

std::vector<const Link*> Topology::links() const {
  std::vector<const Link*> out;
  out.reserve(links_.size());
  for (const auto& [id, l] : links_) out.push_back(&l);
  std::sort(out.begin(), out.end(),
            [](const Link* a, const Link* b) { return a->id < b->id; });
  return out;
}

std::vector<NodeId> Topology::nodes_of_kind(NodeKind kind) const {
  std::vector<NodeId> out;
  for (const auto& [id, n] : nodes_)
    if (n.kind == kind) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace zen::topo
