// Topology graph shared by the controller, intent compiler and TE engine.
//
// Nodes are switches or hosts identified by a NodeId. Links are undirected
// with per-direction port numbers, a capacity, a propagation latency, and a
// routing cost. Links can be administratively up or down; path algorithms
// only traverse up links between up nodes.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace zen::topo {

using NodeId = std::uint64_t;

enum class NodeKind : std::uint8_t { Switch, Host };

struct Node {
  NodeId id = 0;
  NodeKind kind = NodeKind::Switch;
  std::string name;
  bool up = true;
};

using LinkId = std::uint32_t;

struct Link {
  LinkId id = 0;
  NodeId a = 0;
  std::uint32_t a_port = 0;
  NodeId b = 0;
  std::uint32_t b_port = 0;
  double capacity_bps = 10e9;
  double latency_s = 10e-6;
  double cost = 1.0;
  bool up = true;

  NodeId other(NodeId node) const noexcept { return node == a ? b : a; }
  std::uint32_t port_at(NodeId node) const noexcept {
    return node == a ? a_port : b_port;
  }
};

class Topology {
 public:
  // Returns false if the id already exists.
  bool add_node(NodeId id, NodeKind kind, std::string name = {});
  bool remove_node(NodeId id);  // also removes incident links

  // Adds an undirected link; returns its id, or nullopt if either endpoint
  // is missing or either (node, port) pair is already in use.
  std::optional<LinkId> add_link(NodeId a, std::uint32_t a_port, NodeId b,
                                 std::uint32_t b_port,
                                 double capacity_bps = 10e9,
                                 double latency_s = 10e-6, double cost = 1.0);
  bool remove_link(LinkId id);

  bool set_link_up(LinkId id, bool up);
  bool set_node_up(NodeId id, bool up);

  const Node* node(NodeId id) const noexcept;
  const Link* link(LinkId id) const noexcept;
  Link* mutable_link(LinkId id) noexcept;

  // The link attached to (node, port), if any.
  const Link* link_at(NodeId node, std::uint32_t port) const noexcept;

  // The (first) up link between two nodes, if any.
  const Link* link_between(NodeId a, NodeId b) const noexcept;

  // Up links incident to an up node.
  std::vector<const Link*> links_of(NodeId id) const;

  // Up neighbor nodes of an up node.
  std::vector<NodeId> neighbors(NodeId id) const;

  std::vector<const Node*> nodes() const;
  std::vector<const Link*> links() const;
  std::vector<NodeId> nodes_of_kind(NodeKind kind) const;

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t link_count() const noexcept { return links_.size(); }

  // Monotonic counter bumped on every topology change; consumers cache
  // derived structures (paths, spanning trees) keyed on this.
  std::uint64_t version() const noexcept { return version_; }

 private:
  std::unordered_map<NodeId, Node> nodes_;
  std::unordered_map<LinkId, Link> links_;
  // node -> incident link ids
  std::unordered_map<NodeId, std::vector<LinkId>> adjacency_;
  LinkId next_link_id_ = 1;
  std::uint64_t version_ = 1;
};

}  // namespace zen::topo
