#include "diag/packet_tracer.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "util/strings.h"

namespace zen::diag {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::format("\\u%04x", (unsigned)(unsigned char)c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string node_name(topo::NodeId id) {
  return topo::is_host_id(id) ? util::format("host 0x%llx",
                                             (unsigned long long)id)
                              : util::format("switch %llu",
                                             (unsigned long long)id);
}

std::string id_list_json(const std::vector<topo::NodeId>& ids) {
  std::string out = "[";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i) out += ",";
    out += util::format("%llu", (unsigned long long)ids[i]);
  }
  out += "]";
  return out;
}

struct TracerMetrics {
  obs::Counter& traces;
  obs::Counter& steps;

  static TracerMetrics& get() {
    static TracerMetrics m{
        obs::MetricsRegistry::global().counter(
            "zen_explain_traces_total", "",
            "End-to-end packet traces run by the explain engine"),
        obs::MetricsRegistry::global().counter(
            "zen_explain_steps_total", "",
            "Pipeline decision steps recorded across all explain traces"),
    };
    return m;
  }
};

}  // namespace

const char* to_string(PathVerdict verdict) noexcept {
  switch (verdict) {
    case PathVerdict::kDelivered: return "delivered";
    case PathVerdict::kDropped: return "dropped";
    case PathVerdict::kPacketIn: return "packet_in";
    case PathVerdict::kLoop: return "loop";
    case PathVerdict::kMaxHops: return "max_hops";
    case PathVerdict::kNoIngress: return "no_ingress";
  }
  return "unknown";
}

bool PathTrace::delivered_to(topo::NodeId host) const {
  return std::find(delivered_hosts.begin(), delivered_hosts.end(), host) !=
         delivered_hosts.end();
}

std::string PathTrace::to_text() const {
  std::string out = util::format("verdict: %s", to_string(verdict));
  if (verdict == PathVerdict::kLoop) {
    out += util::format(" (revisits switch %llu)",
                        (unsigned long long)loop_dpid);
  }
  out += util::format(" | %zu hop%s | path [", hops.size(),
                      hops.size() == 1 ? "" : "s");
  for (std::size_t i = 0; i < switch_path.size(); ++i) {
    if (i) out += " ";
    out += util::format("%llu", (unsigned long long)switch_path[i]);
  }
  out += "]\n";
  for (std::size_t i = 0; i < hops.size(); ++i) {
    const PathHop& hop = hops[i];
    out += util::format("[hop %zu] ", i + 1);
    out += hop.explain.to_text();
    for (const PathHop::Output& o : hop.outputs) {
      out += util::format("  => port %u", o.port);
      if (o.queue_id != 0) out += util::format(" queue %u", o.queue_id);
      out += " " + o.note + "\n";
    }
  }
  for (topo::NodeId host : delivered_hosts) {
    out += util::format("delivered to host 0x%llx\n", (unsigned long long)host);
  }
  return out;
}

std::string PathTrace::to_json() const {
  std::string out = util::format("{\"verdict\":\"%s\"", to_string(verdict));
  out += ",\"switch_path\":" + id_list_json(switch_path);
  out += ",\"delivered_hosts\":" + id_list_json(delivered_hosts);
  if (loop_dpid != 0) {
    out += util::format(",\"loop_dpid\":%llu", (unsigned long long)loop_dpid);
  }
  out += ",\"hops\":[";
  for (std::size_t i = 0; i < hops.size(); ++i) {
    const PathHop& hop = hops[i];
    if (i) out += ",";
    out += util::format("{\"dropped\":%s,\"packet_in\":%s,\"outputs\":[",
                        hop.dropped ? "true" : "false",
                        hop.packet_in ? "true" : "false");
    for (std::size_t j = 0; j < hop.outputs.size(); ++j) {
      const PathHop::Output& o = hop.outputs[j];
      if (j) out += ",";
      out += util::format(
          "{\"port\":%u,\"queue\":%u,\"peer\":%llu,\"peer_port\":%u,"
          "\"to_host\":%s,\"note\":\"%s\"}",
          o.port, o.queue_id, (unsigned long long)o.peer, o.peer_port,
          o.to_host ? "true" : "false", json_escape(o.note).c_str());
    }
    out += "],\"explain\":" + hop.explain.to_json() + "}";
  }
  out += "]}";
  return out;
}

PacketTracer::PacketTracer(sim::SimNetwork& net) : net_(net) {
  TracerMetrics::get();  // register the zen_explain_* series eagerly
}

dataplane::ExplainTrace PacketTracer::trace_switch(
    topo::NodeId sw, std::uint32_t in_port,
    std::span<const std::uint8_t> frame) {
  dataplane::ExplainTrace trace;
  trace.dpid = sw;
  trace.in_port = in_port;
  if (!net_.switches().contains(sw)) return trace;
  ++stats_.switch_visits;
  if (!net_.switch_up(sw)) {
    dataplane::ExplainStep step;
    step.kind = dataplane::ExplainStepKind::kDrop;
    step.detail = "switch is down (crashed)";
    trace.steps.push_back(std::move(step));
    return trace;
  }
  net_.switch_at(sw).explain(net_.now(), in_port, frame, &trace);
  stats_.steps += trace.steps.size();
  TracerMetrics::get().steps.inc(trace.steps.size());
  return trace;
}

void PacketTracer::walk(PathTrace& out, std::vector<topo::NodeId>& chain,
                        topo::NodeId sw, std::uint32_t in_port,
                        std::span<const std::uint8_t> frame, int hops_left,
                        WalkFlags& flags) {
  if (hops_left <= 0) {
    flags.max_hops = true;
    return;
  }
  if (std::find(chain.begin(), chain.end(), sw) != chain.end()) {
    flags.loop = true;
    if (out.loop_dpid == 0) out.loop_dpid = sw;
    return;
  }
  if (std::find(out.switch_path.begin(), out.switch_path.end(), sw) ==
      out.switch_path.end()) {
    out.switch_path.push_back(sw);
  }
  chain.push_back(sw);

  PathHop hop;
  hop.dpid = sw;
  hop.in_port = in_port;
  hop.explain.dpid = sw;
  hop.explain.in_port = in_port;

  dataplane::ForwardResult result;
  if (net_.switch_up(sw)) {
    ++stats_.switch_visits;
    result = net_.switch_at(sw).explain(net_.now(), in_port, frame,
                                        &hop.explain);
    stats_.steps += hop.explain.steps.size();
    TracerMetrics::get().steps.inc(hop.explain.steps.size());
  } else {
    dataplane::ExplainStep step;
    step.kind = dataplane::ExplainStepKind::kDrop;
    step.detail = "switch is down (crashed)";
    hop.explain.steps.push_back(std::move(step));
    result.dropped = true;
  }
  hop.dropped = result.dropped;
  hop.packet_in = result.packet_in.has_value();
  if (hop.packet_in) flags.packet_in = true;

  // Resolve each egress against the topology before recursing, so the hop
  // record is complete even if a recursion path terminates early.
  struct Pending {
    topo::NodeId peer = 0;
    std::uint32_t peer_port = 0;
    const net::Bytes* frame = nullptr;
  };
  std::vector<Pending> pending;
  for (const dataplane::Egress& egress : result.outputs) {
    PathHop::Output o;
    o.port = egress.port;
    o.queue_id = egress.queue_id;
    const topo::Link* link = net_.topology().link_at(sw, egress.port);
    if (link == nullptr) {
      o.note = "no link on this port (frame lost)";
    } else if (!link->up) {
      o.note = "link down (frame lost)";
    } else {
      o.peer = link->other(sw);
      o.peer_port = link->port_at(o.peer);
      o.to_host = topo::is_host_id(o.peer);
      o.note = "-> " + node_name(o.peer) + util::format(" port %u", o.peer_port);
      if (o.to_host) {
        o.note += " (delivered)";
        if (!out.delivered_to(o.peer)) out.delivered_hosts.push_back(o.peer);
      } else {
        pending.push_back({o.peer, o.peer_port, &egress.frame});
      }
    }
    hop.outputs.push_back(std::move(o));
  }
  out.hops.push_back(std::move(hop));

  for (const Pending& next : pending) {
    walk(out, chain, next.peer, next.peer_port,
         std::span<const std::uint8_t>(next.frame->data(), next.frame->size()),
         hops_left - 1, flags);
  }
  chain.pop_back();
}

PathTrace PacketTracer::trace(topo::NodeId sw, std::uint32_t in_port,
                              std::span<const std::uint8_t> frame,
                              int max_hops) {
  PathTrace out;
  ++stats_.traces;
  TracerMetrics::get().traces.inc();
  if (!net_.switches().contains(sw)) {
    out.verdict = PathVerdict::kNoIngress;
    return out;
  }
  std::vector<topo::NodeId> chain;
  WalkFlags flags;
  walk(out, chain, sw, in_port, frame, max_hops, flags);

  if (flags.loop) {
    out.verdict = PathVerdict::kLoop;
  } else if (flags.max_hops) {
    out.verdict = PathVerdict::kMaxHops;
  } else if (!out.delivered_hosts.empty()) {
    out.verdict = PathVerdict::kDelivered;
  } else if (flags.packet_in) {
    out.verdict = PathVerdict::kPacketIn;
  } else {
    out.verdict = PathVerdict::kDropped;
  }
  switch (out.verdict) {
    case PathVerdict::kDelivered: ++stats_.delivered; break;
    case PathVerdict::kLoop:
    case PathVerdict::kMaxHops: ++stats_.loops; break;
    default: ++stats_.dropped; break;
  }
  return out;
}

PathTrace PacketTracer::trace_from_host(topo::NodeId host,
                                        std::span<const std::uint8_t> frame,
                                        int max_hops) {
  for (const topo::HostAttachment& att : net_.generated().attachments) {
    if (att.host == host) {
      return trace(att.sw, att.sw_port, frame, max_hops);
    }
  }
  PathTrace out;
  out.verdict = PathVerdict::kNoIngress;
  ++stats_.traces;
  ++stats_.dropped;
  TracerMetrics::get().traces.inc();
  return out;
}

std::string PacketTracer::stats_json() const {
  return util::format(
      "{\"traces\":%llu,\"switch_visits\":%llu,\"steps\":%llu,"
      "\"delivered\":%llu,\"dropped\":%llu,\"loops\":%llu}",
      (unsigned long long)stats_.traces,
      (unsigned long long)stats_.switch_visits,
      (unsigned long long)stats_.steps, (unsigned long long)stats_.delivered,
      (unsigned long long)stats_.dropped, (unsigned long long)stats_.loops);
}

}  // namespace zen::diag
