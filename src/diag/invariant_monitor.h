// InvariantMonitor: live verification that the dataplane still implements
// the declared intents (the VeriFlow idea, applied continuously).
//
// On every observable delta — topology-epoch move or any switch's
// rule-store version move — the monitor re-traces one representative
// packet per installed intent through the real switch pipelines (dry-run,
// zero side effects, via PacketTracer) and checks three invariants:
//
//   blackhole   connectivity intents must deliver to the destination host
//   loop        no trace may revisit a switch on its own forwarding chain
//               (hop-budget exhaustion counts as a loop)
//   divergence  the traced switch sequence must equal the intent's
//               installed path (backup path accepted while a Protected
//               intent is failed over); Ban intents must NOT deliver
//
// Violations surface everywhere an operator might look: zen_invariant_*
// metrics, an "invariant_clean" SLO objective, kInvariantViolation /
// kInvariantClear flight-recorder events, and a Diagnostics section with
// the full report (including the offending traces' text).
//
// As a controller::App it re-checks automatically a settle-delay after
// link/switch/flow events (letting the intent framework converge first);
// maybe_check() additionally catches out-of-band rule changes (e.g. a test
// or operator poking flow_mod directly) by comparing the delta signature.
// The monitor is pull-based over public state, so unlike the explain
// narration it stays fully functional under ZEN_OBS_DISABLED.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "controller/controller.h"
#include "diag/packet_tracer.h"
#include "intent/intent_manager.h"
#include "sim/network.h"

namespace zen::obs {
class Slo;
}

namespace zen::diag {

class InvariantMonitor : public controller::App {
 public:
  struct Options {
    // Hop budget per trace; exhausting it is reported as a loop.
    int max_hops = 64;
    // Delay between a controller event and the re-check, so the intent
    // framework's own recompile + flow mods land first.
    double settle_delay_s = 0.05;
    // > 0 also sweeps periodically (catches silent divergence with no
    // controller event at all, e.g. dataplane-side rule expiry).
    double periodic_s = 0;
  };

  enum class ViolationKind : std::uint8_t {
    kBlackhole = 0,
    kLoop,
    kDivergence,
  };
  static const char* kind_name(ViolationKind kind) noexcept;

  struct Violation {
    ViolationKind kind = ViolationKind::kBlackhole;
    intent::IntentId intent = 0;
    net::Ipv4Address src;
    net::Ipv4Address dst;
    std::uint64_t dpid = 0;  // loop switch, or last switch before the hole
    std::string note;
    PathTrace trace;  // the full evidence
  };

  struct Report {
    double t_s = 0;
    std::uint64_t epoch = 0;            // NetworkView topology epoch
    std::uint64_t rules_signature = 0;  // sum of switch rule versions
    std::size_t intents_checked = 0;
    std::size_t traces = 0;
    std::vector<Violation> violations;
    bool clean() const noexcept { return violations.empty(); }
  };

  struct Stats {
    std::uint64_t checks = 0;
    std::uint64_t traces = 0;
    std::uint64_t violations_seen = 0;  // cumulative across checks
    std::uint64_t clears = 0;           // violated -> clean transitions
  };

  InvariantMonitor(sim::SimNetwork& net, intent::IntentManager& intents)
      : InvariantMonitor(net, intents, Options()) {}
  InvariantMonitor(sim::SimNetwork& net, intent::IntentManager& intents,
                   Options options);
  ~InvariantMonitor() override;

  std::string name() const override { return "invariant_monitor"; }
  void init(controller::Controller& controller) override;

  // Re-trace every installed intent now and publish the report.
  const Report& check();
  // check() only if the topology epoch or any rule version moved since the
  // last check. Returns true if a check ran.
  bool maybe_check();

  const Report& last_report() const noexcept { return report_; }
  const Stats& stats() const noexcept { return stats_; }
  PacketTracer& tracer() noexcept { return tracer_; }
  std::string report_json() const;

  // ---- App events: schedule a settle-delayed re-check ----
  void on_switch_up(controller::Dpid,
                    const openflow::FeaturesReply&) override {
    schedule_check();
  }
  void on_switch_down(controller::Dpid) override { schedule_check(); }
  void on_link_event(const controller::LinkEvent&) override {
    schedule_check();
  }
  void on_flow_removed(controller::Dpid,
                       const openflow::FlowRemoved&) override {
    schedule_check();
  }
  void on_table_status(controller::Dpid,
                       const openflow::TableStatus&) override {
    schedule_check();
  }

 private:
  void schedule_check();
  void periodic_tick();
  std::uint64_t rules_signature() const;
  void verify_connectivity(Report& report, intent::IntentId id,
                           const intent::IntentSpec& spec,
                           net::Ipv4Address src, net::Ipv4Address dst,
                           bool check_path);
  void verify_ban(Report& report, intent::IntentId id,
                  const intent::IntentSpec& spec);
  // Builds the representative probe frame, honoring the spec's l4/dscp
  // constraints. Returns false if the intent can't be probed with UDP.
  bool build_probe(const intent::IntentSpec& spec, net::Ipv4Address src,
                   net::Ipv4Address dst, topo::NodeId src_host,
                   topo::NodeId dst_host, net::Bytes& frame) const;
  topo::NodeId host_for_ip(net::Ipv4Address ip) const;
  void publish(Report& report);

  sim::SimNetwork& net_;
  intent::IntentManager& intents_;
  Options options_;
  PacketTracer tracer_;
  Report report_;
  Stats stats_;
  obs::Slo* slo_ = nullptr;
  std::uint64_t last_epoch_ = 0;
  std::uint64_t last_rules_ = 0;
  bool checked_once_ = false;
  bool pending_ = false;
  std::uint64_t diag_token_invariants_ = 0;
  std::uint64_t diag_token_explain_ = 0;
};

}  // namespace zen::diag
