// PacketTracer: network-wide explain engine (the ofproto/trace analog,
// lifted from one switch to the whole fabric).
//
// trace() injects a synthetic frame at a (switch, port) and follows every
// copy hop by hop: each switch runs Switch::explain() (a dry-run pipeline
// walk with zero side effects), and each emitted frame is carried across
// the sim topology link to the peer — recursing into peer switches,
// recording deliveries at hosts. The result is a PathTrace: the ordered
// per-switch ExplainTraces, where every copy ended up, and a single
// verdict (delivered / dropped / punted / loop / hop-limit), renderable
// as text or JSON.
//
// Loop detection is causal: a copy revisiting a switch already on its own
// forwarding chain is a loop; two copies of a flooded frame meeting at the
// same switch via different paths is not.
//
// The tracer never mutates the network — no counters move, no caches
// fill, no FIBs learn — so it is safe to run mid-simulation as often as
// the invariant monitor wants.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dataplane/explain.h"
#include "sim/network.h"
#include "topo/graph.h"

namespace zen::diag {

enum class PathVerdict : std::uint8_t {
  kDelivered = 0,  // at least one copy reached a host
  kDropped,        // every copy died in a pipeline or on a dead link
  kPacketIn,       // the packet would be punted to the controller
  kLoop,           // a copy revisited a switch on its own chain
  kMaxHops,        // the hop budget ran out (treated as a loop by monitors)
  kNoIngress,      // the starting switch/port doesn't exist
};

const char* to_string(PathVerdict verdict) noexcept;

// One switch visit within an end-to-end trace.
struct PathHop {
  std::uint64_t dpid = 0;
  std::uint32_t in_port = 0;
  // The pipeline narration for this visit (empty steps under
  // ZEN_OBS_DISABLED; the hop chain itself still works).
  dataplane::ExplainTrace explain;

  struct Output {
    std::uint32_t port = 0;
    std::uint32_t queue_id = 0;
    topo::NodeId peer = 0;        // switch or host on the other end (0 = none)
    std::uint32_t peer_port = 0;  // ingress port at the peer
    bool to_host = false;
    std::string note;  // "-> switch 5 in_port 2", "no link", "link down", ...
  };
  std::vector<Output> outputs;

  bool dropped = false;
  bool packet_in = false;
};

// Everything that happened to one injected packet, network-wide.
struct PathTrace {
  PathVerdict verdict = PathVerdict::kDropped;
  std::vector<PathHop> hops;                 // in visit order
  std::vector<topo::NodeId> switch_path;     // dpids, first-visit order
  std::vector<topo::NodeId> delivered_hosts; // hosts that received a copy
  std::uint64_t loop_dpid = 0;               // the revisited switch (kLoop)

  bool delivered_to(topo::NodeId host) const;
  std::string to_text() const;
  std::string to_json() const;
};

class PacketTracer {
 public:
  struct Stats {
    std::uint64_t traces = 0;         // end-to-end traces run
    std::uint64_t switch_visits = 0;  // per-switch explain() walks
    std::uint64_t steps = 0;          // explain steps recorded
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t loops = 0;  // kLoop + kMaxHops verdicts
  };

  explicit PacketTracer(sim::SimNetwork& net);

  // One switch, no chaining: the raw per-switch explanation.
  dataplane::ExplainTrace trace_switch(topo::NodeId sw, std::uint32_t in_port,
                                       std::span<const std::uint8_t> frame);

  // Inject at (sw, in_port) and chain across the topology.
  PathTrace trace(topo::NodeId sw, std::uint32_t in_port,
                  std::span<const std::uint8_t> frame, int max_hops = 64);

  // Inject as if `host` transmitted the frame: starts at its attachment
  // switch/port. Returns kNoIngress if the host isn't attached.
  PathTrace trace_from_host(topo::NodeId host,
                            std::span<const std::uint8_t> frame,
                            int max_hops = 64);

  const Stats& stats() const noexcept { return stats_; }
  std::string stats_json() const;

 private:
  struct WalkFlags {
    bool loop = false;
    bool max_hops = false;
    bool packet_in = false;
  };

  void walk(PathTrace& out, std::vector<topo::NodeId>& chain, topo::NodeId sw,
            std::uint32_t in_port, std::span<const std::uint8_t> frame,
            int hops_left, WalkFlags& flags);

  sim::SimNetwork& net_;
  Stats stats_;
};

}  // namespace zen::diag
