#include "diag/invariant_monitor.h"

#include <algorithm>
#include <utility>

#include "net/headers.h"
#include "net/packet.h"
#include "obs/diagnostics.h"
#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "util/strings.h"

namespace zen::diag {

namespace {

// All series are registered in the constructor (not lazily on first
// violation) so the exported name set is deterministic: a healthy network
// still shows zen_invariant_violations_total{kind="loop"} 0.
struct MonitorMetrics {
  obs::Counter& checks;
  obs::Counter& traces;
  obs::Counter& blackholes;
  obs::Counter& loops;
  obs::Counter& divergences;
  obs::Gauge& active;

  static MonitorMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static MonitorMetrics m{
        reg.counter("zen_invariant_checks_total", "",
                    "Invariant-monitor sweeps over the installed intents"),
        reg.counter("zen_invariant_traces_total", "",
                    "Representative packets traced by the invariant monitor"),
        reg.counter("zen_invariant_violations_total", "kind=\"blackhole\"",
                    "Invariant violations observed, by kind"),
        reg.counter("zen_invariant_violations_total", "kind=\"loop\""),
        reg.counter("zen_invariant_violations_total", "kind=\"divergence\""),
        reg.gauge("zen_invariant_active_violations", "",
                  "Violations present in the latest invariant report"),
    };
    return m;
  }

  obs::Counter& by_kind(InvariantMonitor::ViolationKind kind) {
    switch (kind) {
      case InvariantMonitor::ViolationKind::kBlackhole: return blackholes;
      case InvariantMonitor::ViolationKind::kLoop: return loops;
      case InvariantMonitor::ViolationKind::kDivergence: return divergences;
    }
    return blackholes;
  }
};

std::string path_text(const std::vector<topo::NodeId>& path) {
  std::string out = "[";
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i) out += " ";
    out += util::format("%llu", (unsigned long long)path[i]);
  }
  out += "]";
  return out;
}

}  // namespace

const char* InvariantMonitor::kind_name(ViolationKind kind) noexcept {
  switch (kind) {
    case ViolationKind::kBlackhole: return "blackhole";
    case ViolationKind::kLoop: return "loop";
    case ViolationKind::kDivergence: return "divergence";
  }
  return "unknown";
}

InvariantMonitor::InvariantMonitor(sim::SimNetwork& net,
                                   intent::IntentManager& intents,
                                   Options options)
    : net_(net), intents_(intents), options_(options), tracer_(net) {
  MonitorMetrics::get();
  obs::SloMonitor::Objective objective;
  objective.name = "invariant_clean";
  objective.target = 0.999;
  slo_ = &obs::SloMonitor::global().objective(objective);
}

InvariantMonitor::~InvariantMonitor() {
  if (diag_token_invariants_ != 0) {
    obs::Diagnostics::global().remove_provider(diag_token_invariants_);
  }
  if (diag_token_explain_ != 0) {
    obs::Diagnostics::global().remove_provider(diag_token_explain_);
  }
}

void InvariantMonitor::init(controller::Controller& controller) {
  controller::App::init(controller);
  diag_token_invariants_ = obs::Diagnostics::global().add_provider(
      "invariants", [this] { return report_json(); });
  diag_token_explain_ = obs::Diagnostics::global().add_provider(
      "explain", [this] { return tracer_.stats_json(); });
  if (options_.periodic_s > 0) {
    // Self-rescheduling sweep: catches deltas that never produce a
    // controller event (e.g. dataplane-local rule expiry).
    net_.events().schedule_in(options_.periodic_s, [this] { periodic_tick(); });
  }
}

void InvariantMonitor::schedule_check() {
  if (pending_) return;
  pending_ = true;
  net_.events().schedule_in(options_.settle_delay_s, [this] {
    pending_ = false;
    maybe_check();
  });
}

std::uint64_t InvariantMonitor::rules_signature() const {
  // Order-independent (iteration order of the switch map is arbitrary) but
  // thoroughly mixed, so concurrent version bumps on different switches
  // can't cancel each other out.
  const auto mix = [](std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  };
  std::uint64_t sig = 0;
  for (const auto& [id, sw] : net_.switches()) {
    sig += mix(id * 0x9e3779b97f4a7c15ULL + sw->rule_version());
  }
  return sig;
}

bool InvariantMonitor::maybe_check() {
  const std::uint64_t epoch =
      controller_ != nullptr ? controller_->view().topology_epoch() : 0;
  const std::uint64_t rules = rules_signature();
  if (checked_once_ && epoch == last_epoch_ && rules == last_rules_)
    return false;
  check();
  return true;
}

topo::NodeId InvariantMonitor::host_for_ip(net::Ipv4Address ip) const {
  for (const topo::HostAttachment& att : net_.generated().attachments) {
    if (sim::host_ip(att.host) == ip) return att.host;
  }
  return 0;
}

bool InvariantMonitor::build_probe(const intent::IntentSpec& spec,
                                   net::Ipv4Address src, net::Ipv4Address dst,
                                   topo::NodeId src_host,
                                   topo::NodeId dst_host,
                                   net::Bytes& frame) const {
  const net::FlowMask& mask = spec.extra_match.mask();
  const net::FlowKey& want = spec.extra_match.value();
  if (mask.ip_proto != 0 && want.ip_proto != net::IpProto::kUdp)
    return false;  // can't synthesize a representative packet
  const std::uint16_t sport = mask.l4_src != 0 ? want.l4_src : 4321;
  const std::uint16_t dport = mask.l4_dst != 0 ? want.l4_dst : 4321;
  const std::uint8_t dscp = mask.ip_dscp != 0 ? want.ip_dscp : 0;
  static constexpr std::uint8_t kPayload[8] = {'z', 'e', 'n', '-', 'i', 'n',
                                               'v', '!'};
  frame = net::build_ipv4_udp(sim::host_mac(src_host), sim::host_mac(dst_host),
                              src, dst, sport, dport, kPayload, dscp);
  return true;
}

void InvariantMonitor::verify_connectivity(Report& report, intent::IntentId id,
                                           const intent::IntentSpec& spec,
                                           net::Ipv4Address src,
                                           net::Ipv4Address dst,
                                           bool check_path) {
  const topo::NodeId src_host = host_for_ip(src);
  const topo::NodeId dst_host = host_for_ip(dst);
  if (src_host == 0 || dst_host == 0) return;  // hosts unknown: nothing to say
  net::Bytes frame;
  if (!build_probe(spec, src, dst, src_host, dst_host, frame)) return;

  PathTrace trace = tracer_.trace_from_host(
      src_host, std::span<const std::uint8_t>(frame.data(), frame.size()),
      options_.max_hops);
  ++report.traces;

  if (trace.verdict == PathVerdict::kLoop ||
      trace.verdict == PathVerdict::kMaxHops) {
    Violation v;
    v.kind = ViolationKind::kLoop;
    v.intent = id;
    v.src = src;
    v.dst = dst;
    v.dpid = trace.loop_dpid != 0
                 ? trace.loop_dpid
                 : (trace.hops.empty() ? 0 : trace.hops.back().dpid);
    v.note = util::format("forwarding loop, path %s",
                          path_text(trace.switch_path).c_str());
    v.trace = std::move(trace);
    report.violations.push_back(std::move(v));
    return;
  }
  if (!trace.delivered_to(dst_host)) {
    Violation v;
    v.kind = ViolationKind::kBlackhole;
    v.intent = id;
    v.src = src;
    v.dst = dst;
    v.dpid = trace.hops.empty() ? 0 : trace.hops.back().dpid;
    v.note = util::format("packet %s after %zu hop(s), path %s",
                          to_string(trace.verdict), trace.hops.size(),
                          path_text(trace.switch_path).c_str());
    v.trace = std::move(trace);
    report.violations.push_back(std::move(v));
    return;
  }
  if (check_path) {
    const std::vector<topo::NodeId> expected = intents_.installed_path(id);
    const std::vector<topo::NodeId> backup = intents_.backup_path(id);
    const bool matches_primary =
        expected.empty() || trace.switch_path == expected;
    const bool matches_backup = !backup.empty() && trace.switch_path == backup;
    if (!matches_primary && !matches_backup) {
      Violation v;
      v.kind = ViolationKind::kDivergence;
      v.intent = id;
      v.src = src;
      v.dst = dst;
      v.note = util::format("took %s, intent installed %s",
                            path_text(trace.switch_path).c_str(),
                            path_text(expected).c_str());
      v.trace = std::move(trace);
      report.violations.push_back(std::move(v));
    }
  }
}

void InvariantMonitor::verify_ban(Report& report, intent::IntentId id,
                                  const intent::IntentSpec& spec) {
  const topo::NodeId src_host = host_for_ip(spec.src);
  const topo::NodeId dst_host = host_for_ip(spec.dst);
  if (src_host == 0 || dst_host == 0) return;
  net::Bytes frame;
  if (!build_probe(spec, spec.src, spec.dst, src_host, dst_host, frame))
    return;
  PathTrace trace = tracer_.trace_from_host(
      src_host, std::span<const std::uint8_t>(frame.data(), frame.size()),
      options_.max_hops);
  ++report.traces;
  if (trace.delivered_to(dst_host)) {
    Violation v;
    v.kind = ViolationKind::kDivergence;
    v.intent = id;
    v.src = spec.src;
    v.dst = spec.dst;
    v.note = util::format("banned traffic delivered via %s",
                          path_text(trace.switch_path).c_str());
    v.trace = std::move(trace);
    report.violations.push_back(std::move(v));
  }
  // A drop is the intended outcome; a loop on banned traffic still burns
  // bandwidth, so report it.
  if (trace.verdict == PathVerdict::kLoop ||
      trace.verdict == PathVerdict::kMaxHops) {
    Violation v;
    v.kind = ViolationKind::kLoop;
    v.intent = id;
    v.src = spec.src;
    v.dst = spec.dst;
    v.dpid = trace.loop_dpid;
    v.note = "banned traffic loops instead of dropping";
    report.violations.push_back(std::move(v));
  }
}

const InvariantMonitor::Report& InvariantMonitor::check() {
  Report report;
  report.t_s = net_.now();
  report.epoch =
      controller_ != nullptr ? controller_->view().topology_epoch() : 0;
  report.rules_signature = rules_signature();

  for (const intent::IntentId id : intents_.intent_ids()) {
    if (intents_.state(id) != intent::IntentState::Installed) continue;
    const intent::IntentSpec* spec = intents_.spec(id);
    if (spec == nullptr) continue;
    ++report.intents_checked;
    switch (spec->kind) {
      case intent::IntentKind::Ban:
        verify_ban(report, id, *spec);
        break;
      case intent::IntentKind::HostToHost:
        verify_connectivity(report, id, *spec, spec->src, spec->dst, true);
        verify_connectivity(report, id, *spec, spec->dst, spec->src, false);
        break;
      default:
        verify_connectivity(report, id, *spec, spec->src, spec->dst, true);
        break;
    }
  }
  publish(report);
  last_epoch_ = report.epoch;
  last_rules_ = report.rules_signature;
  checked_once_ = true;
  report_ = std::move(report);
  return report_;
}

void InvariantMonitor::publish(Report& report) {
  MonitorMetrics& metrics = MonitorMetrics::get();
  ++stats_.checks;
  stats_.traces += report.traces;
  stats_.violations_seen += report.violations.size();
  metrics.checks.inc();
  metrics.traces.inc(report.traces);
  metrics.active.set(static_cast<double>(report.violations.size()));
  for (const Violation& v : report.violations) {
    metrics.by_kind(v.kind).inc();
    obs::FlightRecorder::global().record(
        obs::FlightEventKind::kInvariantViolation, v.dpid, v.intent,
        kind_name(v.kind));
  }
  if (slo_ != nullptr && report.traces > 0) {
    const std::size_t bad =
        std::min(report.violations.size(), report.traces);
    for (std::size_t i = 0; i < report.traces; ++i)
      slo_->record(i >= bad);
  }
  if (report.violations.empty() && !report_.violations.empty()) {
    ++stats_.clears;
    obs::FlightRecorder::global().record(obs::FlightEventKind::kInvariantClear,
                                         report_.violations.size(),
                                         report.epoch);
  }
}

void InvariantMonitor::periodic_tick() {
  maybe_check();
  if (options_.periodic_s > 0) {
    net_.events().schedule_in(options_.periodic_s, [this] { periodic_tick(); });
  }
}

std::string InvariantMonitor::report_json() const {
  std::string out = util::format(
      "{\"t\":%.6f,\"epoch\":%llu,\"rules_signature\":%llu,"
      "\"intents_checked\":%zu,\"traces\":%zu,\"checks\":%llu,"
      "\"clean\":%s,\"violations\":[",
      report_.t_s, (unsigned long long)report_.epoch,
      (unsigned long long)report_.rules_signature, report_.intents_checked,
      report_.traces, (unsigned long long)stats_.checks,
      report_.clean() ? "true" : "false");
  for (std::size_t i = 0; i < report_.violations.size(); ++i) {
    const Violation& v = report_.violations[i];
    if (i) out += ",";
    out += util::format(
        "{\"kind\":\"%s\",\"intent\":%llu,\"src\":\"%s\",\"dst\":\"%s\","
        "\"dpid\":%llu,\"note\":\"%s\",\"trace\":%s}",
        kind_name(v.kind), (unsigned long long)v.intent,
        v.src.to_string().c_str(), v.dst.to_string().c_str(),
        (unsigned long long)v.dpid, v.note.c_str(),
        v.trace.to_json().c_str());
  }
  out += "]}";
  return out;
}

}  // namespace zen::diag
