#include "obs/diagnostics.h"

#include <cstdio>

#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "util/clock.h"

namespace zen::obs {

Diagnostics& Diagnostics::global() {
  static Diagnostics diagnostics;
  return diagnostics;
}

std::uint64_t Diagnostics::add_provider(std::string section, ProviderFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t token = next_token_++;
  providers_.push_back(Provider{token, std::move(section), std::move(fn)});
  return token;
}

void Diagnostics::remove_provider(std::uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(providers_,
                [token](const Provider& p) { return p.token == token; });
}

std::size_t Diagnostics::provider_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return providers_.size();
}

std::string Diagnostics::dump() const {
  // Copy the provider list so a provider calling back into the registry
  // (or a dump during teardown) cannot deadlock.
  std::vector<Provider> providers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    providers = providers_;
  }

  char buf[128];
  std::snprintf(buf, sizeof buf,
                "{\"time\":{\"now_s\":%.6f,\"virtual\":%s}",
                util::now_seconds(),
                util::time_source_is_virtual() ? "true" : "false");
  std::string out = buf;
  out += ",\"slo\":" + SloMonitor::global().render_json();
  out += ",\"flightrec\":" + FlightRecorder::global().render_json();
  for (const Provider& p : providers) {
    out += ",\"" + p.section + "\":";
    const std::string fragment = p.fn ? p.fn() : "null";
    out += fragment.empty() ? "null" : fragment;
  }
  std::string metrics = MetricsRegistry::global().render_json();
  while (!metrics.empty() &&
         (metrics.back() == '\n' || metrics.back() == ' ')) {
    metrics.pop_back();
  }
  out += ",\"metrics\":" + metrics;
  out += "}";
  return out;
}

bool Diagnostics::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string json = dump();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

}  // namespace zen::obs
