#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "util/clock.h"

namespace zen::obs {

namespace {

// Burn rate over the trailing `window_s` seconds of buckets: observed bad
// fraction divided by the error budget. 0 when the window saw no events.
double burn_over(const std::vector<Slo::Bucket>& buckets,
                 std::int64_t cur_second, double window_s, double budget,
                 std::uint64_t* good_out = nullptr,
                 std::uint64_t* bad_out = nullptr) {
  const auto n = static_cast<std::int64_t>(buckets.size());
  const auto span = std::min<std::int64_t>(
      n, std::max<std::int64_t>(1, static_cast<std::int64_t>(window_s)));
  std::uint64_t good = 0, bad = 0;
  for (std::int64_t i = 0; i < span; ++i) {
    const std::int64_t sec = cur_second - i;
    if (sec < 0) break;
    const auto& b = buckets[static_cast<std::size_t>(sec % n)];
    good += b.good;
    bad += b.bad;
  }
  if (good_out) *good_out = good;
  if (bad_out) *bad_out = bad;
  const std::uint64_t total = good + bad;
  if (total == 0 || budget <= 0) return 0;
  return (static_cast<double>(bad) / static_cast<double>(total)) / budget;
}

}  // namespace

void Slo::record_impl(bool good) noexcept {
  if (monitor_ == nullptr) return;
  bool rolled = false;
  double now_s = 0;
  {
    std::lock_guard<std::mutex> lock(monitor_->mu_);
    now_s = util::now_seconds();
    rolled = roll_to_now_locked(now_s);
    auto& bucket = buckets_[static_cast<std::size_t>(
        cur_second_ % static_cast<std::int64_t>(buckets_.size()))];
    if (good) {
      ++bucket.good;
      ++total_good_;
    } else {
      ++bucket.bad;
      ++total_bad_;
    }
    if (rolled) monitor_->evaluate_locked(*this, now_s);
  }
}

bool Slo::roll_to_now_locked(double now_s) noexcept {
  const auto sec = static_cast<std::int64_t>(std::floor(now_s));
  const auto n = static_cast<std::int64_t>(buckets_.size());
  if (cur_second_ < 0 || sec < cur_second_) {
    // First event, or the virtual clock restarted (a new sim run in the
    // same process): start fresh.
    for (auto& b : buckets_) b = Bucket{};
    cur_second_ = sec;
    return false;
  }
  if (sec == cur_second_) return false;
  const std::int64_t steps = std::min(sec - cur_second_, n);
  for (std::int64_t i = 1; i <= steps; ++i) {
    buckets_[static_cast<std::size_t>((cur_second_ + i) % n)] = Bucket{};
  }
  cur_second_ = sec;
  return true;
}

SloMonitor& SloMonitor::global() {
  static SloMonitor monitor;
  return monitor;
}

Slo& SloMonitor::objective(const Objective& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& slo : objectives_) {
    if (slo->name_ == spec.name) return *slo;
  }
  auto slo = std::make_unique<Slo>();
  slo->monitor_ = this;
  slo->name_ = spec.name;
  slo->target_ = spec.target;
  slo->latency_threshold_ = spec.latency_threshold_s;
  slo->short_window_s_ = std::max(1.0, spec.short_window_s);
  slo->long_window_s_ = std::max(slo->short_window_s_, spec.long_window_s);
  slo->fast_burn_ = spec.fast_burn;
  slo->slow_burn_ = spec.slow_burn;
  slo->buckets_.resize(static_cast<std::size_t>(
      std::min(300.0, std::max(2.0, slo->long_window_s_))));
  objectives_.push_back(std::move(slo));
  return *objectives_.back();
}

void SloMonitor::evaluate_locked(Slo& slo, double now_s) {
  slo.roll_to_now_locked(now_s);
  const double budget = 1.0 - slo.target_;
  const double short_burn = burn_over(slo.buckets_, slo.cur_second_,
                                      slo.short_window_s_, budget);
  const double long_burn = burn_over(slo.buckets_, slo.cur_second_,
                                     slo.long_window_s_, budget);
  // Multi-window: page only when both the short window (still burning now)
  // and the long window (burned enough to matter) agree.
  const double agreed = std::min(short_burn, long_burn);
  State next = State::kOk;
  if (agreed >= slo.fast_burn_) {
    next = State::kFastBurn;
  } else if (agreed >= slo.slow_burn_) {
    next = State::kSlowBurn;
  }

#ifndef ZEN_OBS_DISABLED
  auto& reg = MetricsRegistry::global();
  const std::string label = "slo=\"" + slo.name_ + "\"";
  reg.gauge("zen_slo_burn_rate", label + ",window=\"short\"",
            "SLO burn rate (error fraction / budget) per window")
      .set(short_burn);
  reg.gauge("zen_slo_burn_rate", label + ",window=\"long\"").set(long_burn);
  reg.gauge("zen_slo_state", label,
            "SLO health: 0 ok, 1 slow burn, 2 fast burn")
      .set(static_cast<double>(next));
#endif

  const auto prev = static_cast<State>(slo.state_);
  if (next != prev) {
    slo.state_ = static_cast<std::uint8_t>(next);
    if (next == State::kOk) {
      FlightRecorder::global().record(FlightEventKind::kSloClear, 0, 0,
                                      slo.name_.c_str());
    } else {
      FlightRecorder::global().record(FlightEventKind::kSloBurn,
                                      static_cast<std::uint64_t>(next), 0,
                                      slo.name_.c_str());
    }
  }
}

std::vector<SloMonitor::Status> SloMonitor::evaluate() {
  std::lock_guard<std::mutex> lock(mu_);
  const double now_s = util::now_seconds();
  std::vector<Status> out;
  out.reserve(objectives_.size());
  for (auto& slo : objectives_) {
    if (slo->cur_second_ >= 0) evaluate_locked(*slo, now_s);
    const double budget = 1.0 - slo->target_;
    Status st;
    st.name = slo->name_;
    st.state = static_cast<State>(slo->state_);
    st.short_burn = burn_over(slo->buckets_, slo->cur_second_,
                              slo->short_window_s_, budget);
    st.long_burn = burn_over(slo->buckets_, slo->cur_second_,
                             slo->long_window_s_, budget);
    st.good = slo->total_good_;
    st.bad = slo->total_bad_;
    out.push_back(std::move(st));
  }
  std::sort(out.begin(), out.end(),
            [](const Status& a, const Status& b) { return a.name < b.name; });
  return out;
}

const char* SloMonitor::state_name(State s) noexcept {
  switch (s) {
    case State::kOk: return "ok";
    case State::kSlowBurn: return "slow_burn";
    case State::kFastBurn: return "fast_burn";
  }
  return "unknown";
}

std::string SloMonitor::render_json() {
  const std::vector<Status> statuses = evaluate();
  std::string out = "[";
  char buf[256];
  bool first = true;
  for (const Status& st : statuses) {
    std::snprintf(buf, sizeof buf,
                  "%s{\"name\":\"%s\",\"state\":\"%s\",\"short_burn\":%.3f,"
                  "\"long_burn\":%.3f,\"good\":%llu,\"bad\":%llu}",
                  first ? "" : ",", st.name.c_str(), state_name(st.state),
                  st.short_burn, st.long_burn,
                  static_cast<unsigned long long>(st.good),
                  static_cast<unsigned long long>(st.bad));
    out += buf;
    first = false;
  }
  out += "]";
  return out;
}

void SloMonitor::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& slo : objectives_) {
    for (auto& b : slo->buckets_) b = Slo::Bucket{};
    slo->cur_second_ = -1;
    slo->total_good_ = 0;
    slo->total_bad_ = 0;
    slo->state_ = 0;
  }
}

}  // namespace zen::obs
