#include "obs/shard_stats.h"

#include "obs/metrics.h"

#ifndef ZEN_OBS_DISABLED

namespace zen::obs {

ShardStats::ShardStats() { MetricsRegistry::global().register_shard(this); }

ShardStats::~ShardStats() {
  flush();
  MetricsRegistry::global().unregister_shard(this);
}

void ShardStats::bind(std::size_t slot, Counter& target) noexcept {
  if (slot >= kSlots) return;
  slots_[slot].target = &target;
}

void ShardStats::flush() noexcept {
  for (Slot& slot : slots_) {
    const std::uint64_t delta =
        slot.pending.exchange(0, std::memory_order_relaxed);
    if (delta != 0 && slot.target != nullptr) slot.target->inc(delta);
  }
}

}  // namespace zen::obs

#endif  // ZEN_OBS_DISABLED
