// Flight recorder: a fixed-size ring of recent structured events.
//
// Every subsystem appends notable-but-rare events (mod rejected, flow
// evicted, role change, reconnect, audit mismatch, fault injected, SLO
// burn, ...) at near-zero cost: one bounded-index store into a
// preallocated ring guarded by a relaxed enable gate. When something goes
// wrong the ring is the postmortem: it dumps to flightrec.json on demand,
// on process abort (arm_crash_dump installs SIGABRT/SIGSEGV/terminate
// hooks), and whenever a chaos/overload example fails — so every red CI
// run ships its own black box.
//
// Records are fixed-size PODs: a virtual-time stamp, a kind, two integer
// args whose meaning is per-kind (documented in DESIGN.md), and a short
// inline tag for names that don't fit an integer (SLO names, fault kinds).
//
// Under ZEN_OBS_DISABLED the event type is empty and record() is an inline
// no-op; dumps still work and render an empty ring.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#ifndef ZEN_OBS_DISABLED
#include <atomic>
#include <mutex>
#endif

namespace zen::obs {

enum class FlightEventKind : std::uint8_t {
  kModRejected = 0,   // a: dpid, b: error (type<<16|code)
  kFlowEvicted,       // a: dpid, b: table
  kRoleChange,        // a: dpid, b: role (controller id in tag)
  kReconnect,         // a: dpid, b: epoch
  kSwitchDown,        // a: dpid, b: pending mods failed
  kAuditMismatch,     // a: dpid, b: repaired<<16|orphans
  kTableFull,         // a: dpid, b: table
  kFaultInjected,     // a: target, tag: fault kind
  kRetransmit,        // a: dpid, b: attempt
  kSloBurn,           // a: state (1 slow, 2 fast), tag: objective
  kSloClear,          // tag: objective
  kVacancyChange,     // a: dpid, b: 1 down (pressure) / 0 up (relief)
  kInvariantViolation,  // a: dpid (0 = path-level), b: intent id,
                        // tag: blackhole / loop / diverge
  kInvariantClear,      // a: violations resolved, b: epoch
  kBundleRollback,      // a: dpid, b: member count
  kControllerDown,      // a: controller index, b: group+1 (0 = root)
  kTakeover,            // a: adopted group, b: adopter index, tag: phase
};

const char* to_string(FlightEventKind kind) noexcept;

#ifndef ZEN_OBS_DISABLED
struct FlightEvent {
  double t_s = 0;
  FlightEventKind kind = FlightEventKind::kModRejected;
  char tag[15] = {};  // short name, NUL-terminated
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};
#else
struct FlightEvent {};
#endif

class FlightRecorder {
 public:
  static FlightRecorder& global();

#ifndef ZEN_OBS_DISABLED
  // On by default — the whole point is having the black box when nobody
  // expected to need it. Cost when idle: nothing (record is event-driven).
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  void record(FlightEventKind kind, std::uint64_t a = 0, std::uint64_t b = 0,
              const char* tag = nullptr) noexcept;

  // Events in chronological order (oldest surviving first).
  std::vector<FlightEvent> events() const;
  std::uint64_t total_recorded() const noexcept {
    return seq_.load(std::memory_order_relaxed);
  }
  void clear();

  // {"events":[...],"recorded":N,"capacity":M}
  std::string render_json() const;
  bool write_json(const std::string& path) const;

  // Installs best-effort abort hooks (SIGABRT/SIGSEGV + std::terminate)
  // that dump the ring to `path` before the process dies. Not
  // async-signal-safe in the strict sense — acceptable for a simulator
  // whose alternative is losing the black box entirely.
  void arm_crash_dump(const std::string& path);

 private:
  static constexpr std::size_t kCapacity = 8192;

  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> seq_{0};
  mutable std::mutex mu_;
  std::vector<FlightEvent> ring_ = std::vector<FlightEvent>(kCapacity);
#else
  void set_enabled(bool) noexcept {}
  bool enabled() const noexcept { return false; }
  void record(FlightEventKind, std::uint64_t = 0, std::uint64_t = 0,
              const char* = nullptr) noexcept {}
  std::vector<FlightEvent> events() const { return {}; }
  std::uint64_t total_recorded() const noexcept { return 0; }
  void clear() {}
  std::string render_json() const {
    return "{\"events\":[],\"recorded\":0,\"capacity\":0}";
  }
  bool write_json(const std::string& path) const;
  void arm_crash_dump(const std::string&) {}
#endif
};

}  // namespace zen::obs
