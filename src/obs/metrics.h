// zen_obs metrics: a process-wide registry of named instruments.
//
// Modules acquire handles lazily (first use registers) and update them on
// hot paths; the registry can be snapshotted at any time and rendered as
// Prometheus text exposition or JSON. Handles are stable for the process
// lifetime, so call sites cache a reference in a function-local static and
// pay only the static-guard branch afterwards.
//
// Naming scheme: zen_<module>_<name>[_total|_ns|_us] — e.g.
// zen_dataplane_megaflow_hits_total, zen_controller_packet_in_to_flow_mod_us.
// Labels are passed pre-rendered ('app="learning_switch"'); one (name,
// labels) pair is one series.
//
// Compiling with ZEN_OBS_DISABLED turns every mutation (inc/set/record)
// into an inline no-op so instrumented hot loops carry no measurement cost;
// registration and rendering still work (series just stay at zero).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/histogram.h"

namespace zen::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
#ifndef ZEN_OBS_DISABLED
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept {
#ifndef ZEN_OBS_DISABLED
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void add(double d) noexcept {
#ifndef ZEN_OBS_DISABLED
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
#else
    (void)d;
#endif
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

// Mutex-guarded wrapper over util::Histogram (Histogram itself is not
// thread-safe; the sim is single-threaded but benches and tests are not).
class Histo {
 public:
  void record(double v) noexcept {
#ifndef ZEN_OBS_DISABLED
    std::lock_guard<std::mutex> lock(mu_);
    hist_.record(v);
#else
    (void)v;
#endif
  }
  util::Histogram snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hist_;
  }
  std::uint64_t count() const noexcept {
    std::lock_guard<std::mutex> lock(mu_);
    return hist_.count();
  }
  void reset() noexcept {
    std::lock_guard<std::mutex> lock(mu_);
    hist_ = util::Histogram();
  }

 private:
  mutable std::mutex mu_;
  util::Histogram hist_;
};

// Records wall-clock nanoseconds elapsed over its lifetime into a Histo.
// Used for real execution cost (lookup latency, solver time) as opposed to
// virtual-time intervals, which callers compute from the sim clock.
#ifndef ZEN_OBS_DISABLED
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(Histo& histo) noexcept;
  ~ScopedTimerNs();
  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  Histo& histo_;
  std::uint64_t start_ns_;
};
#else
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(Histo&) noexcept {}
};
#endif

class ShardStats;

class MetricsRegistry {
 public:
  // The process-wide registry almost all instrumentation uses.
  static MetricsRegistry& global();

  // Shard flush list: registered ShardStats blocks are drained into their
  // bound counters before any snapshot/render, so per-shard batching is
  // invisible to readers. (See shard_stats.h.)
  void register_shard(ShardStats* shard);
  void unregister_shard(ShardStats* shard);

  // Lazily registers and returns a handle. `labels` is a pre-rendered
  // Prometheus label body without braces (e.g. 'app="discovery"'); the
  // same (name, labels) pair always returns the same handle. `help` is
  // kept from the first registration of a name.
  Counter& counter(std::string_view name, std::string_view labels = "",
                   std::string_view help = "");
  Gauge& gauge(std::string_view name, std::string_view labels = "",
               std::string_view help = "");
  Histo& histo(std::string_view name, std::string_view labels = "",
               std::string_view help = "");

  struct Series {
    std::string name;
    std::string labels;  // without braces; may be empty
    double value = 0;    // counters/gauges
    util::Histogram hist;  // histos only
    enum class Kind { Counter, Gauge, Histo } kind = Kind::Counter;
  };
  struct Snapshot {
    std::vector<Series> series;  // sorted by (name, labels)
    const Series* find(std::string_view name,
                       std::string_view labels = "") const noexcept;
  };

  Snapshot snapshot() const;

  // Prometheus text exposition format (one # HELP/# TYPE per family;
  // histograms render as summaries with p50/p90/p99 quantile series).
  std::string render_prometheus() const;
  // One JSON object: {"series": [{"name": ..., "labels": ..., ...}]}.
  std::string render_json() const;

  // Zeroes every registered value in place; handles stay valid. Tests use
  // this to isolate scenarios sharing the global registry.
  void reset_values();

  std::size_t series_count() const;

 private:
  struct Entry {
    Series::Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histo> histo;
  };

  Entry& find_or_create(Series::Kind kind, std::string_view name,
                        std::string_view labels, std::string_view help);
  void flush_shards() const;

  mutable std::mutex mu_;
  // Key: name + '\0' + labels — deterministic render order for free.
  std::map<std::string, Entry> entries_;
  // Guarded separately: flushing a shard increments counters, which must
  // not require mu_.
  mutable std::mutex shards_mu_;
  std::vector<ShardStats*> shards_;
};

}  // namespace zen::obs
