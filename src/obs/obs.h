// zen_obs umbrella: metrics registry + virtual-time tracing.
//
// Instrumentation pattern for hot paths — cache the handle once, then
// mutate (a relaxed atomic op, or a no-op under ZEN_OBS_DISABLED):
//
//   static obs::Counter& hits = obs::MetricsRegistry::global().counter(
//       "zen_dataplane_megaflow_hits_total", "", "Megaflow cache hits");
//   hits.inc();
//
//   { ZEN_TRACE_SCOPE("allocate", "te"); ... }   // virtual-time span
#pragma once

#include "obs/diagnostics.h"
#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "obs/shard_stats.h"
#include "obs/slo.h"
#include "obs/span.h"
#include "obs/trace.h"
