// Diagnostics: one-call JSON snapshot of the whole control loop.
//
// Subsystems that own interesting state register a provider — a named
// function returning a JSON fragment — and dump() stitches every
// provider's section plus the built-ins (virtual time, metrics, SLO
// status, flight-recorder tail) into a single document. core::Network
// registers providers for flow tables, FlowRuleStore degraded rules,
// intent states, and path-engine stats on start(), so "what does the
// network look like right now?" is one call from any example or test.
//
// Providers deregister by token (the registering object outlives its
// entry), mirroring util::clock's token pattern. The registry is cold
// path; no part of it touches packet processing.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace zen::obs {

class Diagnostics {
 public:
  // Returns a JSON value (object/array/number) for one named section.
  using ProviderFn = std::function<std::string()>;

  static Diagnostics& global();

  std::uint64_t add_provider(std::string section, ProviderFn fn);
  void remove_provider(std::uint64_t token);

  // {"time":{...},"slo":[...],"flightrec":{...},"metrics":{...},
  //  "<section>":<provider JSON>, ...}
  std::string dump() const;
  bool write(const std::string& path) const;

  std::size_t provider_count() const;

 private:
  struct Provider {
    std::uint64_t token = 0;
    std::string section;
    ProviderFn fn;
  };

  mutable std::mutex mu_;
  std::uint64_t next_token_ = 1;
  std::vector<Provider> providers_;
};

}  // namespace zen::obs
