// Causal span tracing: one trace per control-loop round trip.
//
// A SpanContext is born at packet-in (SwitchAgent starts a "flow_setup"
// trace when it punts a buffered packet), flows through controller dispatch
// as parent/child spans (punt channel -> dispatch -> app -> flow_mod ->
// barrier_ack), and is closed by the per-xid ack window: one trace stitches
// the whole packet-in -> app decision -> encode -> channel -> switch apply
// -> barrier ack path, retransmits and TableFull repair-ladder retries
// included.
//
// Cross-layer propagation never touches the wire: producers bind() a span
// under a correlation key derived from what the protocol already carries
// (buffer_id for punts, xid for mods/acks, scoped by conn and dpid), and
// the consumer on the far side of the channel take()s it. In-process
// propagation through app dispatch uses a thread-local current-span Scope,
// so apps and the FlowRuleStore pick up their parent without signature
// changes.
//
// Spans are emitted as Chrome nestable async events ('b'/'e') on the global
// TraceRecorder keyed by trace_id, so Perfetto renders each trace as one
// nested lane stamped with virtual time. The tracer additionally keeps
// bounded per-trace bookkeeping (spans started/ended) so tests and examples
// can assert that no propagation edge lost a span.
//
// Under ZEN_OBS_DISABLED the context is an empty type and every method is
// an inline no-op, so instrumented call sites compile away.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#ifndef ZEN_OBS_DISABLED
#include <atomic>
#include <mutex>
#include <unordered_map>
#endif

namespace zen::obs {

#ifndef ZEN_OBS_DISABLED
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool valid() const noexcept { return span_id != 0; }
};
#else
struct SpanContext {
  bool valid() const noexcept { return false; }
};
#endif

class SpanTracer {
 public:
  // Correlation-key namespaces. kModTracked marks a mod whose sender waits
  // for a barrier ack (the agent opens a barrier_ack span at apply);
  // kModUntracked marks fire-and-forget mods (the trace closes at apply).
  enum class Key : std::uint8_t {
    kPacketIn = 1,     // keyed by buffer_id
    kModTracked = 2,   // keyed by xid
    kModUntracked = 3, // keyed by xid
    kAck = 4,          // keyed by xid
  };

  struct TraceSummary {
    std::uint64_t trace_id = 0;
    std::string name;
    double start_s = 0;
    double end_s = 0;
    int spans_started = 0;
    int spans_ended = 0;
    bool complete = false;  // every started span was ended
  };

  static SpanTracer& global();

  // Composes a correlation key. Collisions only misattribute a span, so a
  // mixed hash is fine; conn scopes multi-controller setups apart.
  static std::uint64_t key(Key kind, std::uint64_t conn, std::uint64_t dpid,
                           std::uint64_t id) noexcept;

#ifndef ZEN_OBS_DISABLED
  // Tracing follows the TraceRecorder's on/off switch: no recorder, no
  // spans, and instrumented paths pay one relaxed load.
  bool enabled() const noexcept;

  // Opens a new trace and returns its root span. Invalid context (and a
  // bump of dropped_traces) once kMaxActiveTraces are open.
  SpanContext start_trace(std::string_view name, std::string_view cat);
  // Opens a child span; no-op (invalid) when the parent is invalid.
  SpanContext start_span(std::string_view name, std::string_view cat,
                         SpanContext parent);
  // Closes `ctx` and returns its parent's context (invalid for a root or
  // an unknown span). Safe to call with an already-closed span.
  SpanContext end_span(SpanContext ctx);
  // Closes `ctx` (if still open), then the trace's root span, and finalizes
  // the trace into the finished list.
  void end_trace(SpanContext ctx);
  // Drops the trace without counting it complete (e.g. a punt the
  // controller never answered). Open spans are closed silently.
  void abandon_trace(SpanContext ctx);
  // Attaches a label to the span as an async-instant event (retransmit,
  // rejected, table_full_retry, ...).
  void annotate(SpanContext ctx, std::string_view label);
  // Open spans (root included) in ctx's trace; 0 for unknown traces. The
  // controller uses this to close floods/no-op dispatches whose trace will
  // never see a southbound ack.
  int open_span_count(SpanContext ctx) const;

  void bind(std::uint64_t key, SpanContext ctx);
  SpanContext take(std::uint64_t key);

  SpanContext current() const noexcept;

  // Finished traces (bounded; oldest dropped first), and counters for
  // traces that never finished cleanly.
  std::vector<TraceSummary> finished() const;
  std::size_t open_traces() const;
  std::uint64_t dropped_traces() const noexcept;
  std::uint64_t abandoned_traces() const noexcept;
  void clear();
#else
  bool enabled() const noexcept { return false; }
  SpanContext start_trace(std::string_view, std::string_view) { return {}; }
  SpanContext start_span(std::string_view, std::string_view, SpanContext) {
    return {};
  }
  SpanContext end_span(SpanContext) { return {}; }
  void end_trace(SpanContext) {}
  void abandon_trace(SpanContext) {}
  void annotate(SpanContext, std::string_view) {}
  int open_span_count(SpanContext) const { return 0; }
  void bind(std::uint64_t, SpanContext) {}
  SpanContext take(std::uint64_t) { return {}; }
  SpanContext current() const noexcept { return {}; }
  std::vector<TraceSummary> finished() const { return {}; }
  std::size_t open_traces() const { return 0; }
  std::uint64_t dropped_traces() const noexcept { return 0; }
  std::uint64_t abandoned_traces() const noexcept { return 0; }
  void clear() {}
#endif

  // Establishes `ctx` as the dispatch-scoped current span (thread-local);
  // restores the previous one on destruction. An invalid ctx is a cheap
  // no-op scope.
  class Scope {
   public:
#ifndef ZEN_OBS_DISABLED
    explicit Scope(SpanContext ctx) noexcept;
    ~Scope();
#else
    explicit Scope(SpanContext) noexcept {}
#endif
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

#ifndef ZEN_OBS_DISABLED
   private:
    SpanContext prev_;
#endif
  };

#ifndef ZEN_OBS_DISABLED
 private:
  struct ActiveSpan {
    std::uint64_t trace_id = 0;
    std::uint64_t parent = 0;
    std::string name;
    std::string cat;
  };
  struct ActiveTrace {
    std::string name;
    std::string cat;
    double start_s = 0;
    std::uint64_t root = 0;
    int started = 0;
    int ended = 0;
  };

  static constexpr std::size_t kMaxActiveTraces = 4096;
  static constexpr std::size_t kMaxFinished = 8192;
  static constexpr std::size_t kMaxBindings = 65536;

  void finalize_trace_locked(std::uint64_t trace_id, bool abandoned);

  mutable std::mutex mu_;
  std::uint64_t next_trace_id_ = 1;
  std::uint64_t next_span_id_ = 1;
  std::unordered_map<std::uint64_t, ActiveSpan> spans_;
  std::unordered_map<std::uint64_t, ActiveTrace> traces_;
  std::unordered_map<std::uint64_t, SpanContext> bindings_;
  // Mirror of bindings_.size(), readable without mu_: take() probes on
  // every packet-in/ack even when tracing is off, and with nothing bound
  // the lock + map lookup are pure overhead.
  std::atomic<std::size_t> binding_count_{0};
  std::vector<TraceSummary> finished_;
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> abandoned_{0};
#endif
};

}  // namespace zen::obs
