#include "obs/flightrec.h"

#include <cstdio>

#include "util/clock.h"

#ifndef ZEN_OBS_DISABLED
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <exception>
#endif

namespace zen::obs {

const char* to_string(FlightEventKind kind) noexcept {
  switch (kind) {
    case FlightEventKind::kModRejected: return "mod_rejected";
    case FlightEventKind::kFlowEvicted: return "flow_evicted";
    case FlightEventKind::kRoleChange: return "role_change";
    case FlightEventKind::kReconnect: return "reconnect";
    case FlightEventKind::kSwitchDown: return "switch_down";
    case FlightEventKind::kAuditMismatch: return "audit_mismatch";
    case FlightEventKind::kTableFull: return "table_full";
    case FlightEventKind::kFaultInjected: return "fault_injected";
    case FlightEventKind::kRetransmit: return "retransmit";
    case FlightEventKind::kSloBurn: return "slo_burn";
    case FlightEventKind::kSloClear: return "slo_clear";
    case FlightEventKind::kVacancyChange: return "vacancy_change";
    case FlightEventKind::kInvariantViolation: return "invariant_violation";
    case FlightEventKind::kInvariantClear: return "invariant_clear";
    case FlightEventKind::kBundleRollback: return "bundle_rollback";
    case FlightEventKind::kControllerDown: return "controller_down";
    case FlightEventKind::kTakeover: return "takeover";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

#ifndef ZEN_OBS_DISABLED

void FlightRecorder::record(FlightEventKind kind, std::uint64_t a,
                            std::uint64_t b, const char* tag) noexcept {
  if (!enabled()) return;
  FlightEvent ev;
  ev.t_s = util::now_seconds();
  ev.kind = kind;
  ev.a = a;
  ev.b = b;
  if (tag) {
    std::strncpy(ev.tag, tag, sizeof ev.tag - 1);
    ev.tag[sizeof ev.tag - 1] = '\0';
  }
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  ring_[seq % kCapacity] = ev;
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t total = seq_.load(std::memory_order_relaxed);
  std::vector<FlightEvent> out;
  const std::uint64_t n = total < kCapacity ? total : kCapacity;
  out.reserve(n);
  for (std::uint64_t i = total - n; i < total; ++i) {
    out.push_back(ring_[i % kCapacity]);
  }
  return out;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  seq_.store(0, std::memory_order_relaxed);
  for (auto& ev : ring_) ev = FlightEvent{};
}

std::string FlightRecorder::render_json() const {
  const std::vector<FlightEvent> evs = events();
  std::string out = "{\"events\":[";
  char buf[256];
  bool first = true;
  for (const FlightEvent& ev : evs) {
    std::snprintf(buf, sizeof buf,
                  "%s{\"t\":%.6f,\"kind\":\"%s\",\"a\":%llu,\"b\":%llu",
                  first ? "" : ",", ev.t_s, to_string(ev.kind),
                  static_cast<unsigned long long>(ev.a),
                  static_cast<unsigned long long>(ev.b));
    out += buf;
    if (ev.tag[0] != '\0') {
      out += ",\"tag\":\"";
      out += ev.tag;
      out += "\"";
    }
    out += "}";
    first = false;
  }
  std::snprintf(buf, sizeof buf, "],\"recorded\":%llu,\"capacity\":%zu}",
                static_cast<unsigned long long>(
                    seq_.load(std::memory_order_relaxed)),
                kCapacity);
  out += buf;
  return out;
}

bool FlightRecorder::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string json = render_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

namespace {

char g_crash_dump_path[512] = {};
std::terminate_handler g_prev_terminate = nullptr;

void dump_on_crash() {
  if (g_crash_dump_path[0] != '\0') {
    FlightRecorder::global().write_json(g_crash_dump_path);
  }
}

extern "C" void flightrec_signal_handler(int sig) {
  dump_on_crash();
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

[[noreturn]] void flightrec_terminate() {
  dump_on_crash();
  if (g_prev_terminate) g_prev_terminate();
  std::abort();
}

}  // namespace

void FlightRecorder::arm_crash_dump(const std::string& path) {
  // ZEN_FLIGHTREC_PATH overrides the caller-supplied path, so operators
  // can redirect every black box (CI artifact dirs, tmpfs, ...) without
  // touching the binary.
  const char* env = std::getenv("ZEN_FLIGHTREC_PATH");
  const std::string& effective = (env && *env) ? env : path;
  std::strncpy(g_crash_dump_path, effective.c_str(),
               sizeof g_crash_dump_path - 1);
  g_crash_dump_path[sizeof g_crash_dump_path - 1] = '\0';
  std::signal(SIGABRT, flightrec_signal_handler);
  std::signal(SIGSEGV, flightrec_signal_handler);
  g_prev_terminate = std::set_terminate(flightrec_terminate);
}

#else  // ZEN_OBS_DISABLED

bool FlightRecorder::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string json = render_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

#endif  // ZEN_OBS_DISABLED

}  // namespace zen::obs
