// SLO monitor: declarative objectives with multi-window burn-rate state.
//
// An Objective declares a target good-fraction (e.g. 99% of flow setups
// under 20ms, 99.9% of packets delivered) and the monitor tracks it SRE
// style: good/bad events land in one-second buckets on the virtual clock,
// and burn rate — observed error fraction divided by the error budget — is
// evaluated over a short and a long window. Burning faster than
// `fast_burn` in both windows is a page-level breach (kFastBurn); faster
// than `slow_burn` is a ticket-level warning (kSlowBurn).
//
// State transitions are exposed three ways: as gauges
// (zen_slo_burn_rate{slo=,window=}, zen_slo_state{slo=}), as flight-
// recorder events (slo_burn / slo_clear), and via evaluate() for examples
// that print a health table. Evaluation also happens implicitly whenever a
// record() rolls into a new one-second bucket, so long simulations keep
// their SLO state fresh without a poller.
//
// Handles are stable for the process lifetime (cache a Slo& in a static);
// reset() zeroes buckets in place so tests can share the global monitor.
// Under ZEN_OBS_DISABLED record paths are inline no-ops.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace zen::obs {

class SloMonitor;

class Slo {
 public:
  // Records one unit of the SLI: did the event meet the objective?
  void record(bool good) noexcept {
#ifndef ZEN_OBS_DISABLED
    record_impl(good);
#else
    (void)good;
#endif
  }
  // Latency objectives: good iff the sample is within the threshold.
  void record_latency(double seconds) noexcept {
#ifndef ZEN_OBS_DISABLED
    record_impl(seconds <= latency_threshold_);
#else
    (void)seconds;
#endif
  }

  struct Bucket {
    std::uint64_t good = 0;
    std::uint64_t bad = 0;
  };

 private:
  friend class SloMonitor;

  void record_impl(bool good) noexcept;
  // Advances the bucket ring to virtual-now; zeroes skipped buckets.
  // Returns true when the current bucket rolled (caller re-evaluates).
  bool roll_to_now_locked(double now_s) noexcept;

  SloMonitor* monitor_ = nullptr;
  std::string name_;
  double target_ = 0.999;
  double latency_threshold_ = 0;
  double short_window_s_ = 5;
  double long_window_s_ = 60;
  double fast_burn_ = 14.4;
  double slow_burn_ = 1.0;
  std::vector<Bucket> buckets_;
  std::int64_t cur_second_ = -1;
  std::uint64_t total_good_ = 0;
  std::uint64_t total_bad_ = 0;
  std::uint8_t state_ = 0;  // SloMonitor::State
};

class SloMonitor {
 public:
  struct Objective {
    std::string name;
    // Target good fraction; error budget is 1 - target.
    double target = 0.999;
    // > 0 turns the objective into a latency SLI for record_latency().
    double latency_threshold_s = 0;
    double short_window_s = 5;
    double long_window_s = 60;
    double fast_burn = 14.4;
    double slow_burn = 1.0;
  };

  enum class State : std::uint8_t { kOk = 0, kSlowBurn = 1, kFastBurn = 2 };

  struct Status {
    std::string name;
    State state = State::kOk;
    double short_burn = 0;
    double long_burn = 0;
    std::uint64_t good = 0;  // lifetime totals
    std::uint64_t bad = 0;
  };

  static SloMonitor& global();

  // Finds or creates the objective by name; the returned handle is valid
  // for the process lifetime (reset() keeps handles, zeroes data).
  Slo& objective(const Objective& spec);

  // Re-evaluates every objective at virtual-now and returns the statuses
  // (sorted by name). Also driven implicitly by bucket rolls.
  std::vector<Status> evaluate();

  std::string render_json();

  // Zeroes buckets/totals/states in place; handles stay valid.
  void reset();

 private:
  friend class Slo;

  void evaluate_locked(Slo& slo, double now_s);
  static const char* state_name(State s) noexcept;

  std::mutex mu_;
  std::vector<std::unique_ptr<Slo>> objectives_;
};

}  // namespace zen::obs
