// zen_obs tracing: begin/end spans and instant events on the shared clock.
//
// Timestamps come from util::now_seconds(), so under a simulation (which
// installs its EventQueue as the process time source) every span is stamped
// with *virtual* time — the trace shows what the network did, not how long
// the host CPU took — while standalone tools get wall clock. A recorder-
// local clock can be injected for tests.
//
// Disabled by default: begin()/end()/instant() are a relaxed atomic load
// and return when no one turned recording on, so instrumented hot paths in
// tests and benches stay cheap. Renders Chrome trace_event JSON loadable by
// chrome://tracing / Perfetto.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace zen::obs {

class TraceRecorder {
 public:
  static TraceRecorder& global();

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Overrides the clock for this recorder (seconds). Empty restores the
  // shared util::now_seconds() source.
  void set_clock(std::function<double()> clock);

  // Span/event emission. `cat` groups events into one trace lane.
  void begin(std::string_view name, std::string_view cat);
  void end(std::string_view name, std::string_view cat);
  void instant(std::string_view name, std::string_view cat);
  // Chrome counter track: graphs `value` over time.
  void counter_sample(std::string_view name, std::string_view cat,
                      double value);

  // Nestable async events ('b'/'n'/'e'): all events sharing (cat, id) form
  // one async track, and Perfetto nests begin/end pairs within it by
  // timestamp. SpanTracer uses the trace_id as `id`, so one causal trace
  // renders as one nested lane even though its spans cross the controller,
  // the channel, and the switch agent.
  void async_begin(std::string_view name, std::string_view cat,
                   std::uint64_t id);
  void async_end(std::string_view name, std::string_view cat,
                 std::uint64_t id);
  void async_instant(std::string_view name, std::string_view cat,
                     std::uint64_t id);

  std::size_t size() const;
  std::size_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  void clear();

  // Chrome trace_event JSON (object format with a traceEvents array).
  std::string render_chrome_json() const;
  bool write_chrome_json(const std::string& path) const;

 private:
  struct Event {
    char phase;        // 'B', 'E', 'i', 'C', 'b', 'e', 'n'
    double ts_s;       // seconds on the recorder's clock
    double value;      // counter samples only
    std::uint64_t id;  // async events only (trace id)
    std::string name;
    std::string cat;
  };

  double now() const;
  void push(Event ev);

  // Bounds memory on runaway scenarios; overflow counts as dropped.
  static constexpr std::size_t kMaxEvents = 1 << 20;

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> dropped_{0};
  mutable std::mutex mu_;
  std::function<double()> clock_;
  std::vector<Event> events_;
};

// RAII span against the global recorder: begin at construction, end at
// destruction. Use via ZEN_TRACE_SCOPE so it compiles out cleanly.
class Scope {
 public:
  Scope(const char* name, const char* cat) noexcept
      : name_(name), cat_(cat), active_(TraceRecorder::global().enabled()) {
    if (active_) TraceRecorder::global().begin(name_, cat_);
  }
  ~Scope() {
    if (active_) TraceRecorder::global().end(name_, cat_);
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  const char* name_;
  const char* cat_;
  bool active_;
};

}  // namespace zen::obs

// Call-site macros: no-ops (token-free) under ZEN_OBS_DISABLED.
#ifndef ZEN_OBS_DISABLED
#define ZEN_OBS_CONCAT_(a, b) a##b
#define ZEN_OBS_CONCAT(a, b) ZEN_OBS_CONCAT_(a, b)
#define ZEN_TRACE_SCOPE(name, cat) \
  ::zen::obs::Scope ZEN_OBS_CONCAT(zen_trace_scope_, __LINE__) { name, cat }
#define ZEN_TRACE_INSTANT(name, cat)                                     \
  do {                                                                   \
    if (::zen::obs::TraceRecorder::global().enabled())                   \
      ::zen::obs::TraceRecorder::global().instant((name), (cat));        \
  } while (0)
#define ZEN_TRACE_COUNTER(name, cat, value)                              \
  do {                                                                   \
    if (::zen::obs::TraceRecorder::global().enabled())                   \
      ::zen::obs::TraceRecorder::global().counter_sample((name), (cat),  \
                                                         (value));       \
  } while (0)
#else
#define ZEN_TRACE_SCOPE(name, cat) ((void)0)
#define ZEN_TRACE_INSTANT(name, cat) ((void)0)
#define ZEN_TRACE_COUNTER(name, cat, value) ((void)0)
#endif
