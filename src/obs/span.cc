#include "obs/span.h"

#include "obs/trace.h"
#include "util/clock.h"

namespace zen::obs {

SpanTracer& SpanTracer::global() {
  static SpanTracer tracer;
  return tracer;
}

std::uint64_t SpanTracer::key(Key kind, std::uint64_t conn, std::uint64_t dpid,
                              std::uint64_t id) noexcept {
  // Word-wise multiply-xorshift over the four components; collisions only
  // misattribute a span, and keys are computed on every packet-in and ack,
  // so four mixes beat a byte-wise FNV loop.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
  };
  mix(static_cast<std::uint64_t>(kind));
  mix(conn);
  mix(dpid);
  mix(id);
  return h;
}

#ifndef ZEN_OBS_DISABLED

namespace {
thread_local SpanContext tls_current;
}  // namespace

bool SpanTracer::enabled() const noexcept {
  return TraceRecorder::global().enabled();
}

SpanContext SpanTracer::start_trace(std::string_view name,
                                    std::string_view cat) {
  if (!enabled()) return {};
  std::lock_guard<std::mutex> lock(mu_);
  if (traces_.size() >= kMaxActiveTraces) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return {};
  }
  const std::uint64_t trace_id = next_trace_id_++;
  const std::uint64_t span_id = next_span_id_++;
  traces_.emplace(trace_id, ActiveTrace{std::string(name), std::string(cat),
                                        util::now_seconds(), span_id, 1, 0});
  spans_.emplace(span_id,
                 ActiveSpan{trace_id, 0, std::string(name), std::string(cat)});
  TraceRecorder::global().async_begin(name, cat, trace_id);
  return SpanContext{trace_id, span_id};
}

SpanContext SpanTracer::start_span(std::string_view name, std::string_view cat,
                                   SpanContext parent) {
  if (!parent.valid()) return {};
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = traces_.find(parent.trace_id);
  if (it == traces_.end()) return {};
  const std::uint64_t span_id = next_span_id_++;
  spans_.emplace(span_id, ActiveSpan{parent.trace_id, parent.span_id,
                                     std::string(name), std::string(cat)});
  ++it->second.started;
  TraceRecorder::global().async_begin(name, cat, parent.trace_id);
  return SpanContext{parent.trace_id, span_id};
}

SpanContext SpanTracer::end_span(SpanContext ctx) {
  if (!ctx.valid()) return {};
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = spans_.find(ctx.span_id);
  if (it == spans_.end()) return {};
  const ActiveSpan span = it->second;
  spans_.erase(it);
  const auto tit = traces_.find(span.trace_id);
  if (tit != traces_.end()) ++tit->second.ended;
  TraceRecorder::global().async_end(span.name, span.cat, span.trace_id);
  return SpanContext{span.trace_id, span.parent};
}

void SpanTracer::end_trace(SpanContext ctx) {
  if (!ctx.valid()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto tit = traces_.find(ctx.trace_id);
  if (tit == traces_.end()) return;
  ActiveTrace& trace = tit->second;
  // Close ctx's span if still open (it may already have been ended by the
  // far side of a retransmit race), then the root.
  for (const std::uint64_t sid : {ctx.span_id, trace.root}) {
    const auto sit = spans_.find(sid);
    if (sit == spans_.end()) continue;
    TraceRecorder::global().async_end(sit->second.name, sit->second.cat,
                                      ctx.trace_id);
    ++trace.ended;
    spans_.erase(sit);
  }
  finalize_trace_locked(ctx.trace_id, /*abandoned=*/false);
}

void SpanTracer::abandon_trace(SpanContext ctx) {
  if (!ctx.valid()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!traces_.contains(ctx.trace_id)) return;
  abandoned_.fetch_add(1, std::memory_order_relaxed);
  finalize_trace_locked(ctx.trace_id, /*abandoned=*/true);
}

void SpanTracer::finalize_trace_locked(std::uint64_t trace_id,
                                       bool abandoned) {
  const auto tit = traces_.find(trace_id);
  if (tit == traces_.end()) return;
  const ActiveTrace& trace = tit->second;
  // Sweep any spans the trace still owns (lost acks, abandoned punts).
  for (auto it = spans_.begin(); it != spans_.end();) {
    it = it->second.trace_id == trace_id ? spans_.erase(it) : std::next(it);
  }
  if (finished_.size() >= kMaxFinished) {
    finished_.erase(finished_.begin(), finished_.begin() + kMaxFinished / 4);
  }
  finished_.push_back(TraceSummary{
      trace_id, trace.name, trace.start_s, util::now_seconds(), trace.started,
      trace.ended, !abandoned && trace.started == trace.ended});
  traces_.erase(tit);
}

void SpanTracer::annotate(SpanContext ctx, std::string_view label) {
  if (!ctx.valid()) return;
  TraceRecorder::global().async_instant(label, "trace", ctx.trace_id);
}

int SpanTracer::open_span_count(SpanContext ctx) const {
  if (!ctx.valid()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = traces_.find(ctx.trace_id);
  if (it == traces_.end()) return 0;
  return it->second.started - it->second.ended;
}

void SpanTracer::bind(std::uint64_t key, SpanContext ctx) {
  if (!ctx.valid()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (bindings_.size() >= kMaxBindings) return;
  bindings_[key] = ctx;
  binding_count_.store(bindings_.size(), std::memory_order_release);
}

SpanContext SpanTracer::take(std::uint64_t key) {
  // With tracing off nothing is ever bound, yet the control path probes
  // for in-flight spans on every packet-in and ack: skip the lock when the
  // table is known empty.
  if (binding_count_.load(std::memory_order_acquire) == 0) return {};
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = bindings_.find(key);
  if (it == bindings_.end()) return {};
  const SpanContext ctx = it->second;
  bindings_.erase(it);
  binding_count_.store(bindings_.size(), std::memory_order_release);
  return ctx;
}

SpanContext SpanTracer::current() const noexcept { return tls_current; }

std::vector<SpanTracer::TraceSummary> SpanTracer::finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_;
}

std::size_t SpanTracer::open_traces() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_.size();
}

std::uint64_t SpanTracer::dropped_traces() const noexcept {
  return dropped_.load(std::memory_order_relaxed);
}

std::uint64_t SpanTracer::abandoned_traces() const noexcept {
  return abandoned_.load(std::memory_order_relaxed);
}

void SpanTracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  traces_.clear();
  bindings_.clear();
  binding_count_.store(0, std::memory_order_release);
  finished_.clear();
  dropped_.store(0, std::memory_order_relaxed);
  abandoned_.store(0, std::memory_order_relaxed);
}

SpanTracer::Scope::Scope(SpanContext ctx) noexcept : prev_(tls_current) {
  if (ctx.valid()) tls_current = ctx;
}

SpanTracer::Scope::~Scope() { tls_current = prev_; }

#endif  // ZEN_OBS_DISABLED

}  // namespace zen::obs
