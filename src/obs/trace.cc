#include "obs/trace.h"

#include <cstdio>
#include <map>

#include "util/clock.h"

namespace zen::obs {

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::set_clock(std::function<double()> clock) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = std::move(clock);
}

double TraceRecorder::now() const {
  return clock_ ? clock_() : util::now_seconds();
}

void TraceRecorder::push(Event ev) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ev.ts_s = now();
  events_.push_back(std::move(ev));
}

void TraceRecorder::begin(std::string_view name, std::string_view cat) {
  if (!enabled()) return;
  push(Event{'B', 0, 0, 0, std::string(name), std::string(cat)});
}

void TraceRecorder::end(std::string_view name, std::string_view cat) {
  if (!enabled()) return;
  push(Event{'E', 0, 0, 0, std::string(name), std::string(cat)});
}

void TraceRecorder::instant(std::string_view name, std::string_view cat) {
  if (!enabled()) return;
  push(Event{'i', 0, 0, 0, std::string(name), std::string(cat)});
}

void TraceRecorder::counter_sample(std::string_view name, std::string_view cat,
                                   double value) {
  if (!enabled()) return;
  push(Event{'C', 0, value, 0, std::string(name), std::string(cat)});
}

void TraceRecorder::async_begin(std::string_view name, std::string_view cat,
                                std::uint64_t id) {
  if (!enabled()) return;
  push(Event{'b', 0, 0, id, std::string(name), std::string(cat)});
}

void TraceRecorder::async_end(std::string_view name, std::string_view cat,
                              std::uint64_t id) {
  if (!enabled()) return;
  push(Event{'e', 0, 0, id, std::string(name), std::string(cat)});
}

void TraceRecorder::async_instant(std::string_view name, std::string_view cat,
                                  std::uint64_t id) {
  if (!enabled()) return;
  push(Event{'n', 0, 0, id, std::string(name), std::string(cat)});
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

std::string TraceRecorder::render_chrome_json() const {
  std::lock_guard<std::mutex> lock(mu_);

  // One trace "thread" per category keeps lanes tidy in the viewer.
  std::map<std::string, int> tids;
  for (const Event& ev : events_) tids.try_emplace(ev.cat, 0);
  int next_tid = 1;
  for (auto& [cat, tid] : tids) tid = next_tid++;

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[256];
  for (const auto& [cat, tid] : tids) {
    std::snprintf(buf, sizeof buf,
                  "%s{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":"
                  "\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                  first ? "" : ",", tid, cat.c_str());
    out += buf;
    first = false;
  }
  for (const Event& ev : events_) {
    // Chrome wants ts in microseconds.
    const double ts_us = ev.ts_s * 1e6;
    if (ev.phase == 'C') {
      std::snprintf(buf, sizeof buf,
                    "%s{\"ph\":\"C\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,"
                    "\"name\":\"%s\",\"cat\":\"%s\",\"args\":{\"value\":%g}}",
                    first ? "" : ",", tids[ev.cat], ts_us, ev.name.c_str(),
                    ev.cat.c_str(), ev.value);
    } else if (ev.phase == 'b' || ev.phase == 'e' || ev.phase == 'n') {
      std::snprintf(buf, sizeof buf,
                    "%s{\"ph\":\"%c\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,"
                    "\"name\":\"%s\",\"cat\":\"%s\",\"id\":\"0x%llx\"}",
                    first ? "" : ",", ev.phase, tids[ev.cat], ts_us,
                    ev.name.c_str(), ev.cat.c_str(),
                    static_cast<unsigned long long>(ev.id));
    } else if (ev.phase == 'i') {
      std::snprintf(buf, sizeof buf,
                    "%s{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,"
                    "\"name\":\"%s\",\"cat\":\"%s\",\"s\":\"t\"}",
                    first ? "" : ",", tids[ev.cat], ts_us, ev.name.c_str(),
                    ev.cat.c_str());
    } else {
      std::snprintf(buf, sizeof buf,
                    "%s{\"ph\":\"%c\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,"
                    "\"name\":\"%s\",\"cat\":\"%s\"}",
                    first ? "" : ",", ev.phase, tids[ev.cat], ts_us,
                    ev.name.c_str(), ev.cat.c_str());
    }
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

bool TraceRecorder::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string json = render_chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

}  // namespace zen::obs
