// ShardStats: cacheline-aligned, batch-flushed hot-path counters.
//
// Global Counter handles are shared atomics: every inc is a lock-prefixed
// RMW on a cacheline contended by whoever else holds the handle. A
// ShardStats block gives one owner (today: one dataplane switch; tomorrow:
// one per-core packet engine, ROADMAP item 1) a private set of
// cacheline-aligned slots it bumps with plain load/store — no RMW, no
// sharing — and binds each slot to a registry Counter. Deltas drain
// lazily: MetricsRegistry flushes every registered shard before taking a
// snapshot or rendering, so readers always see up-to-date totals while the
// hot path never touches the shared cacheline.
//
// flush() uses exchange(), so a concurrent flusher cannot double count;
// bump() stays single-writer (the shard's owner).
//
// Threading protocol under the sharded packet engine (sim::ParallelEngine):
// each switch's ShardStats — and each engine worker's own block — has
// exactly one logical writer at any instant, because a switch is owned by
// one worker for the duration of a slice and run_batch() is a quiescence
// barrier. Registry drains (snapshot/render) happen on the coordinator
// *between* batches, when every worker is parked, so the plain-store bump
// never races the exchange in flush(). Code that snapshots metrics from a
// non-coordinator thread while a slice is in flight is outside the
// contract (and is what the TSan CI job exists to catch).
//
// Under ZEN_OBS_DISABLED the type is empty and every method is an inline
// no-op.
#pragma once

#include <cstdint>

#ifndef ZEN_OBS_DISABLED
#include <atomic>
#endif

namespace zen::obs {

class Counter;

class ShardStats {
 public:
  static constexpr std::size_t kSlots = 8;

#ifndef ZEN_OBS_DISABLED
  ShardStats();   // registers with MetricsRegistry's flush list
  ~ShardStats();  // flushes residue, then unregisters
  ShardStats(const ShardStats&) = delete;
  ShardStats& operator=(const ShardStats&) = delete;

  // Binds `slot` to a registry counter; unbound slots accumulate silently.
  void bind(std::size_t slot, Counter& target) noexcept;

  // Single-writer increment: plain load+store, no atomic RMW.
  void bump(std::size_t slot, std::uint64_t n = 1) noexcept {
    auto& pending = slots_[slot].pending;
    pending.store(pending.load(std::memory_order_relaxed) + n,
                  std::memory_order_relaxed);
  }

  // Drains pending deltas into the bound counters.
  void flush() noexcept;

  // Undrained count in one slot (tests: verify lazy aggregation — the sum
  // of per-core pendings plus the bound counters' values must equal the
  // single-threaded totals at any quiesced point).
  std::uint64_t pending(std::size_t slot) const noexcept {
    return slots_[slot].pending.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> pending{0};
    Counter* target = nullptr;
  };
  Slot slots_[kSlots];
#else
  void bind(std::size_t, Counter&) noexcept {}
  void bump(std::size_t, std::uint64_t = 1) noexcept {}
  void flush() noexcept {}
  std::uint64_t pending(std::size_t) const noexcept { return 0; }
#endif
};

}  // namespace zen::obs
