#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/shard_stats.h"
#include "util/clock.h"

namespace zen::obs {

#ifndef ZEN_OBS_DISABLED
ScopedTimerNs::ScopedTimerNs(Histo& histo) noexcept
    : histo_(histo), start_ns_(util::wall_nanos()) {}

ScopedTimerNs::~ScopedTimerNs() {
  histo_.record(static_cast<double>(util::wall_nanos() - start_ns_));
}
#endif

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

namespace {

std::string series_key(std::string_view name, std::string_view labels) {
  std::string key(name);
  key.push_back('\0');
  key.append(labels);
  return key;
}

// Formats a double the way Prometheus expects: integral values without a
// fraction, everything else with enough digits to round-trip.
std::string format_value(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out.append(buf);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    Series::Kind kind, std::string_view name, std::string_view labels,
    std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(series_key(name, labels));
  Entry& entry = it->second;
  if (inserted) {
    entry.kind = kind;
    entry.help = help;
    switch (kind) {
      case Series::Kind::Counter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Series::Kind::Gauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Series::Kind::Histo:
        entry.histo = std::make_unique<Histo>();
        break;
    }
  }
  return entry;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view labels,
                                  std::string_view help) {
  return *find_or_create(Series::Kind::Counter, name, labels, help).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view labels,
                              std::string_view help) {
  return *find_or_create(Series::Kind::Gauge, name, labels, help).gauge;
}

Histo& MetricsRegistry::histo(std::string_view name, std::string_view labels,
                              std::string_view help) {
  return *find_or_create(Series::Kind::Histo, name, labels, help).histo;
}

void MetricsRegistry::register_shard(ShardStats* shard) {
  std::lock_guard<std::mutex> lock(shards_mu_);
  shards_.push_back(shard);
}

void MetricsRegistry::unregister_shard(ShardStats* shard) {
  std::lock_guard<std::mutex> lock(shards_mu_);
  std::erase(shards_, shard);
}

void MetricsRegistry::flush_shards() const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  for (ShardStats* shard : shards_) shard->flush();
}

const MetricsRegistry::Series* MetricsRegistry::Snapshot::find(
    std::string_view name, std::string_view labels) const noexcept {
  for (const Series& s : series) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  flush_shards();
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.series.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    Series s;
    const auto sep = key.find('\0');
    s.name = key.substr(0, sep);
    s.labels = key.substr(sep + 1);
    s.kind = entry.kind;
    switch (entry.kind) {
      case Series::Kind::Counter:
        s.value = static_cast<double>(entry.counter->value());
        break;
      case Series::Kind::Gauge:
        s.value = entry.gauge->value();
        break;
      case Series::Kind::Histo:
        s.hist = entry.histo->snapshot();
        break;
    }
    snap.series.push_back(std::move(s));
  }
  return snap;
}

std::string MetricsRegistry::render_prometheus() const {
  flush_shards();
  std::string out;
  std::lock_guard<std::mutex> lock(mu_);
  std::string last_family;
  for (const auto& [key, entry] : entries_) {
    const auto sep = key.find('\0');
    const std::string name = key.substr(0, sep);
    const std::string labels = key.substr(sep + 1);
    const std::string braced = labels.empty() ? "" : "{" + labels + "}";
    if (name != last_family) {
      last_family = name;
      if (!entry.help.empty())
        out += "# HELP " + name + " " + entry.help + "\n";
      const char* type = entry.kind == Series::Kind::Counter ? "counter"
                         : entry.kind == Series::Kind::Gauge ? "gauge"
                                                             : "summary";
      out += "# TYPE " + name + " " + type + "\n";
    }
    switch (entry.kind) {
      case Series::Kind::Counter:
        out += name + braced + " " +
               format_value(static_cast<double>(entry.counter->value())) + "\n";
        break;
      case Series::Kind::Gauge:
        out += name + braced + " " + format_value(entry.gauge->value()) + "\n";
        break;
      case Series::Kind::Histo: {
        const util::Histogram h = entry.histo->snapshot();
        const std::string comma = labels.empty() ? "" : ",";
        for (const auto& [q, label] :
             {std::pair{0.5, "0.5"}, {0.9, "0.9"}, {0.99, "0.99"}}) {
          out += name + "{" + labels + comma + "quantile=\"" + label + "\"} " +
                 format_value(h.percentile(q)) + "\n";
        }
        out += name + "_sum" + braced + " " +
               format_value(h.mean() * static_cast<double>(h.count())) + "\n";
        out += name + "_count" + braced + " " +
               format_value(static_cast<double>(h.count())) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::render_json() const {
  const Snapshot snap = snapshot();
  std::string out = "{\"series\":[";
  bool first = true;
  for (const Series& s : snap.series) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"" + json_escape(s.name) + "\"";
    if (!s.labels.empty())
      out += ",\"labels\":\"" + json_escape(s.labels) + "\"";
    switch (s.kind) {
      case Series::Kind::Counter:
        out += ",\"type\":\"counter\",\"value\":" + format_value(s.value);
        break;
      case Series::Kind::Gauge:
        out += ",\"type\":\"gauge\",\"value\":" + format_value(s.value);
        break;
      case Series::Kind::Histo:
        out += ",\"type\":\"histogram\",\"count\":" +
               format_value(static_cast<double>(s.hist.count())) +
               ",\"mean\":" + format_value(s.hist.mean()) +
               ",\"p50\":" + format_value(s.hist.percentile(0.5)) +
               ",\"p90\":" + format_value(s.hist.percentile(0.9)) +
               ",\"p99\":" + format_value(s.hist.percentile(0.99)) +
               ",\"max\":" + format_value(s.hist.max());
        break;
    }
    out.push_back('}');
  }
  out += "]}\n";
  return out;
}

void MetricsRegistry::reset_values() {
  flush_shards();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : entries_) {
    switch (entry.kind) {
      case Series::Kind::Counter: entry.counter->reset(); break;
      case Series::Kind::Gauge: entry.gauge->reset(); break;
      case Series::Kind::Histo: entry.histo->reset(); break;
    }
  }
}

std::size_t MetricsRegistry::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace zen::obs
