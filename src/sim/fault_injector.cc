#include "sim/fault_injector.h"

#include <algorithm>

#include "net/headers.h"
#include "obs/obs.h"
#include "util/logging.h"
#include "util/rng.h"

namespace zen::sim {

namespace {

obs::Counter& faults_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "zen_chaos_faults_injected_total", "",
      "Fault events (link flaps + switch crashes) injected by FaultInjector");
  return c;
}

}  // namespace

const char* to_string(FaultInjector::Event::Kind kind) noexcept {
  using Kind = FaultInjector::Event::Kind;
  switch (kind) {
    case Kind::LinkDown: return "link_down";
    case Kind::LinkUp: return "link_up";
    case Kind::SwitchCrash: return "switch_crash";
    case Kind::SwitchReboot: return "switch_reboot";
    case Kind::TablePressure: return "table_pressure";
  }
  return "?";
}

void FaultInjector::inject_table_pressure(topo::NodeId sw,
                                          std::uint64_t burst_no) {
  // Lifetimes are drawn from a burst-local rng so the rule mix depends only
  // on (seed, burst number), not on execution order against other events.
  util::Rng rng(options_.seed ^ (0x7072657373ULL + burst_no));
  const auto lifetime_span = static_cast<std::uint32_t>(
      std::max<int>(0, options_.pressure_lifetime_max_s -
                           options_.pressure_lifetime_min_s));
  for (int i = 0; i < options_.pressure_rules_per_burst; ++i) {
    const std::uint64_t seq = pressure_seq_++;
    openflow::FlowMod mod;
    // TEST-NET-3 (203.0.113.0/24, then neighboring blocks for large storms):
    // destinations no simulated host owns, so junk rules never attract real
    // traffic — they only consume table slots.
    mod.match.eth_type(net::EtherType::kIpv4)
        .ipv4_dst(net::Ipv4Address(0xcb007100u + static_cast<std::uint32_t>(seq)),
                  32);
    mod.priority = 2;
    mod.importance = 0;  // first to go under importance eviction
    mod.cookie = 0;      // invisible to the rule store / intent layer
    mod.hard_timeout = static_cast<std::uint16_t>(
        options_.pressure_lifetime_min_s +
        (lifetime_span ? rng.next_below(lifetime_span + 1) : 0));
    // No instructions: matching packets (there are none) would just drop.
    if (net_.flow_mod(sw, mod).ok) ++pressure_installed_;
  }
}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  util::Rng rng(options_.seed);

  // Candidate sets, sorted by id so the schedule depends only on the seed
  // and the topology, never on hash-map iteration order.
  std::vector<topo::LinkId> links;
  for (const topo::Link* link : net_.topology().links()) {
    if (options_.core_links_only &&
        (topo::is_host_id(link->a) || topo::is_host_id(link->b)))
      continue;
    links.push_back(link->id);
  }
  std::sort(links.begin(), links.end());

  std::vector<topo::NodeId> switches;
  std::vector<topo::NodeId> edge_switches;
  for (const topo::NodeId sw : net_.generated().switches) {
    bool has_host = false;
    for (const topo::Link* link : net_.topology().links_of(sw))
      has_host |= topo::is_host_id(link->other(sw));
    if (has_host) edge_switches.push_back(sw);
    if (options_.avoid_edge_switches && has_host) continue;
    switches.push_back(sw);
  }
  std::sort(switches.begin(), switches.end());
  std::sort(edge_switches.begin(), edge_switches.end());

  const auto draw_in = [&](double lo, double hi) {
    return lo + rng.next_double() * std::max(0.0, hi - lo);
  };

  for (int i = 0; i < options_.link_flaps && !links.empty(); ++i) {
    const topo::LinkId id = links[rng.next_below(links.size())];
    const double down_at = options_.start_s + rng.next_double() * options_.duration_s;
    const double up_at = down_at + draw_in(options_.flap_downtime_min_s,
                                           options_.flap_downtime_max_s);
    schedule_.push_back({Event::Kind::LinkDown, down_at, id});
    schedule_.push_back({Event::Kind::LinkUp, up_at, id});
    ++link_flaps_;
  }

  // Crash at most one cycle per switch at a time: draw distinct switches
  // until the pool runs dry, then reuse (cycles on the same switch are
  // spaced by the storm draw, collisions are tolerated by crash/reboot
  // being idempotent while down/up).
  for (int i = 0; i < options_.switch_reboots && !switches.empty(); ++i) {
    const topo::NodeId sw = switches[rng.next_below(switches.size())];
    const double crash_at =
        options_.start_s + rng.next_double() * options_.duration_s;
    const double reboot_at = crash_at + draw_in(options_.reboot_downtime_min_s,
                                                options_.reboot_downtime_max_s);
    schedule_.push_back({Event::Kind::SwitchCrash, crash_at, sw});
    schedule_.push_back({Event::Kind::SwitchReboot, reboot_at, sw});
    ++reboots_;
  }

  // Table-pressure bursts land on edge switches: those are the ones whose
  // bounded tables carry the rules real traffic depends on.
  for (int i = 0; i < options_.table_pressure_bursts && !edge_switches.empty();
       ++i) {
    const topo::NodeId sw = edge_switches[rng.next_below(edge_switches.size())];
    const double at =
        options_.start_s + rng.next_double() * options_.duration_s;
    schedule_.push_back({Event::Kind::TablePressure, at, sw});
    ++bursts_;
  }

  std::sort(schedule_.begin(), schedule_.end(),
            [](const Event& a, const Event& b) { return a.at < b.at; });
  std::uint64_t burst_no = 0;
  for (const Event& ev : schedule_) {
    storm_end_s_ = std::max(storm_end_s_, ev.at);
    const std::uint64_t this_burst =
        ev.kind == Event::Kind::TablePressure ? burst_no++ : 0;
    net_.events().schedule_at(ev.at, [this, ev, this_burst] {
      faults_counter().inc();
      obs::FlightRecorder::global().record(
          obs::FlightEventKind::kFaultInjected, ev.target, 0,
          to_string(ev.kind));
      ZEN_LOG(Info) << "chaos: " << to_string(ev.kind) << " target "
                    << ev.target;
      switch (ev.kind) {
        case Event::Kind::LinkDown:
          net_.set_link_admin_up(static_cast<topo::LinkId>(ev.target), false);
          break;
        case Event::Kind::LinkUp:
          net_.set_link_admin_up(static_cast<topo::LinkId>(ev.target), true);
          break;
        case Event::Kind::SwitchCrash:
          net_.crash_switch(static_cast<topo::NodeId>(ev.target));
          break;
        case Event::Kind::SwitchReboot:
          net_.reboot_switch(static_cast<topo::NodeId>(ev.target));
          break;
        case Event::Kind::TablePressure:
          inject_table_pressure(static_cast<topo::NodeId>(ev.target),
                                this_burst);
          break;
      }
    });
  }
}

}  // namespace zen::sim
