#include "sim/engine.h"

#include <algorithm>

#include "obs/metrics.h"

namespace zen::sim {

namespace {

// Per-core ShardStats slot layout.
constexpr std::size_t kSlotTasks = 0;
constexpr std::size_t kSlotBatches = 1;

struct EngineMetrics {
  obs::Counter& tasks;
  obs::Counter& batches;
  obs::Gauge& workers;
  static EngineMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static EngineMetrics m{
        reg.counter("zen_engine_tasks_total", "",
                    "Sharded compute tasks executed by engine workers"),
        reg.counter("zen_engine_worker_batches_total", "",
                    "Per-worker backlog drains (one per worker per slice)"),
        reg.gauge("zen_engine_workers", "",
                  "Worker threads in the most recently built engine")};
    return m;
  }
};

}  // namespace

ParallelEngine::ParallelEngine(Options opts)
    : n_workers_(opts.workers < 2 ? 2 : opts.workers) {
  // Spinning only helps when the workers and the coordinator genuinely
  // run concurrently; oversubscribed, it steals the coordinator's quantum.
  const unsigned hw = std::thread::hardware_concurrency();
  spin_ = opts.spin >= 0 ? opts.spin : (hw > n_workers_ ? 4096 : 0);

  EngineMetrics::get();  // register series before workers can bump slots
  EngineMetrics::get().workers.set(static_cast<double>(n_workers_));
  staging_.resize(n_workers_);
  workers_.reserve(n_workers_);
  for (unsigned i = 0; i < n_workers_; ++i) {
    auto w = std::make_unique<Worker>();
    w->stats.bind(kSlotTasks, EngineMetrics::get().tasks);
    w->stats.bind(kSlotBatches, EngineMetrics::get().batches);
    workers_.push_back(std::move(w));
  }
  for (auto& w : workers_)
    w->thread = std::thread([this, raw = w.get()] { worker_loop(*raw); });
}

ParallelEngine::~ParallelEngine() {
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->stop = true;
    }
    w->cv.notify_one();
  }
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
}

std::uint64_t ParallelEngine::worker_tasks(unsigned worker) const {
  // Valid between batches (quiescence barrier) or after destruction.
  return workers_.at(worker)->tasks_run;
}

void ParallelEngine::worker_loop(Worker& w) {
  std::vector<Task> local;
  for (;;) {
    // Bounded lock-free spin on the atomic flags, then park. The flags are
    // only written under w.mu, so the cv.wait predicate cannot miss a wakeup.
    for (int i = 0; i < spin_; ++i) {
      if (w.has_work.load(std::memory_order_acquire) ||
          w.stop.load(std::memory_order_acquire))
        break;
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    }
    {
      std::unique_lock<std::mutex> lock(w.mu);
      w.cv.wait(lock, [&] {
        return w.has_work.load(std::memory_order_acquire) ||
               w.stop.load(std::memory_order_acquire);
      });
      if (w.stop.load(std::memory_order_relaxed) &&
          !w.has_work.load(std::memory_order_relaxed))
        return;
      local.swap(w.backlog);
      w.has_work.store(false, std::memory_order_relaxed);
    }

    for (const Task& task : local) task.fn(task.ctx);
    w.tasks_run += local.size();
    w.stats.bump(kSlotTasks, local.size());
    w.stats.bump(kSlotBatches);
    local.clear();

    // Last worker out closes the barrier.
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_cv_.notify_one();
    }
  }
}

void ParallelEngine::run_batch(std::span<const Task> tasks) {
  if (tasks.empty()) return;
  ++batches_;
  tasks_ += tasks.size();
  max_batch_ = std::max(max_batch_, tasks.size());

  // Partition by shard, preserving submission order within each shard.
  for (const Task& task : tasks) staging_[shard_of(task.key)].push_back(task);

  int involved = 0;
  for (unsigned i = 0; i < n_workers_; ++i)
    if (!staging_[i].empty()) ++involved;
  outstanding_.store(involved, std::memory_order_release);

  for (unsigned i = 0; i < n_workers_; ++i) {
    if (staging_[i].empty()) continue;
    Worker& w = *workers_[i];
    {
      std::lock_guard<std::mutex> lock(w.mu);
      w.backlog.swap(staging_[i]);
      w.has_work = true;
    }
    w.cv.notify_one();
    staging_[i].clear();  // old backlog buffer, reused next batch
  }

  // Wait for quiescence: brief spin (slices are microseconds apart when
  // the fabric is busy), then park.
  for (int i = 0; i < spin_; ++i) {
    if (outstanding_.load(std::memory_order_acquire) == 0) break;
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }
  if (outstanding_.load(std::memory_order_acquire) != 0) {
    std::unique_lock<std::mutex> lock(done_mu_);
    done_cv_.wait(lock, [&] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
  }
}

}  // namespace zen::sim
