// AimdFlow: a minimal window-based AIMD transport (TCP-Reno-flavored)
// between two simulated hosts.
//
// Mechanics implemented: slow start + congestion avoidance, cumulative
// ACKs with receiver-side out-of-order buffering (so a single loss costs a
// single retransmission, as with SACK), triple-duplicate-ACK fast
// retransmit with multiplicative decrease, and a coarse retransmission
// timeout that resets to slow start. It is deliberately not a full TCP
// (no handshake/teardown, fixed MSS) — just enough dynamics to study
// congestion behavior on the link model (sawtooth, fairness, bufferbloat).
//
// Usage:
//   sim::AimdFlow flow(net, src_host_id, dst_host_id,
//                      {.src_port = 40000, .dst_port = 9000,
//                       .total_bytes = 10 << 20});
//   flow.start();
//   net.run_until(...);
//   flow.throughput_bps(...);
#pragma once

#include <cstdint>
#include <set>

#include "sim/network.h"

namespace zen::sim {

class AimdFlow {
 public:
  struct Options {
    std::uint16_t src_port = 40000;
    std::uint16_t dst_port = 9000;
    std::size_t segment_bytes = 1200;  // MSS
    std::uint64_t total_bytes = 1 << 20;
    double initial_cwnd = 2.0;       // segments
    double initial_ssthresh = 64.0;  // segments
    double rto_s = 0.05;
    double min_rto_s = 0.01;
  };

  struct Stats {
    std::uint64_t bytes_acked = 0;
    std::uint64_t segments_sent = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t fast_retransmits = 0;
    std::uint64_t timeouts = 0;
    double completed_at = 0;  // 0 = not yet complete
    double cwnd = 0;          // current, segments
    double max_cwnd = 0;
  };

  AimdFlow(SimNetwork& net, topo::NodeId src_host, topo::NodeId dst_host)
      : AimdFlow(net, src_host, dst_host, Options()) {}
  AimdFlow(SimNetwork& net, topo::NodeId src_host, topo::NodeId dst_host,
           Options options);
  ~AimdFlow();

  AimdFlow(const AimdFlow&) = delete;
  AimdFlow& operator=(const AimdFlow&) = delete;

  // Installs the receiver's ACK responder and starts transmitting.
  void start();

  bool complete() const noexcept { return stats_.completed_at > 0; }
  const Stats& stats() const noexcept { return stats_; }

  // Average goodput over the flow's active lifetime (bits/second).
  double throughput_bps() const noexcept;

 private:
  void pump();                         // send while window allows
  void send_segment(std::uint64_t seq, bool retransmission);
  void on_ack(std::uint64_t ack);      // cumulative
  void arm_timer();
  void on_timeout();

  SimNetwork& net_;
  SimHost& sender_;
  SimHost& receiver_;
  Options options_;
  Stats stats_;

  double cwnd_;      // segments (fractional during congestion avoidance)
  double ssthresh_;  // segments
  std::uint64_t next_seq_ = 0;     // next byte to send fresh
  std::uint64_t acked_ = 0;        // highest cumulative ack
  std::uint64_t receiver_next_ = 0;        // receiver's expected byte
  std::set<std::uint64_t> receiver_ooo_;   // buffered out-of-order segments
  int dup_acks_ = 0;
  double started_at_ = 0;
  std::uint64_t timer_epoch_ = 0;  // invalidates stale timeout events
  bool running_ = false;
};

}  // namespace zen::sim
