// ParallelEngine: the per-core packet-engine pool (LANA xt_engine analog).
//
// N worker threads, each owning a cacheline-aligned backlog queue and a
// per-core obs::ShardStats block. The coordinator (the simulation thread)
// hands a whole batch of tasks to the pool per call: tasks are partitioned
// by a stable key -> shard mapping, each shard's share is moved into its
// worker's backlog under one lock acquisition (batching amortizes the
// queue synchronization over every packet in the slice), and run_batch()
// blocks until every worker has drained.
//
// Ordering contract — the basis of the determinism guarantee one layer up:
//   * tasks sharing a key always run on the same worker, in submission
//     order (per-shard FIFO);
//   * run_batch() is a full quiescence barrier: when it returns, no worker
//     is touching any task state, so the coordinator may freely mutate
//     shared structures (flow_mods, metric drains, crashes) between
//     batches.
//
// Workers spin briefly before parking (condvar) so back-to-back slices on
// a multi-core box pay nanoseconds, not a futex round trip; on machines
// with fewer cores than workers the spin is disabled to avoid burning the
// coordinator's quantum.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "obs/shard_stats.h"

namespace zen::sim {

class ParallelEngine {
 public:
  struct Options {
    // Worker threads. 0 and 1 both mean "no pool": callers should not
    // construct an engine at all and run tasks inline instead.
    unsigned workers = 2;
    // Spin iterations before a worker parks on its condvar. -1 picks a
    // default: ~4k when the host has spare cores, 0 when oversubscribed.
    int spin = -1;
  };

  // One unit of work: `fn(ctx)` runs on the worker owning `key`.
  struct Task {
    std::uint64_t key = 0;
    void* ctx = nullptr;
    void (*fn)(void*) = nullptr;
  };

  explicit ParallelEngine(Options opts);
  ~ParallelEngine();
  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  unsigned workers() const noexcept { return n_workers_; }

  // Stable shard owner for a key (mixed, then reduced mod workers).
  unsigned shard_of(std::uint64_t key) const noexcept {
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdULL;
    key ^= key >> 33;
    return static_cast<unsigned>(key % n_workers_);
  }

  // Runs every task on its owner shard; returns when all are done. Tasks
  // must not schedule events, touch coordinator-owned state, or block.
  // Only the coordinator thread may call this, and never reentrantly.
  void run_batch(std::span<const Task> tasks);

  // ---- introspection ----
  std::uint64_t batches() const noexcept { return batches_; }
  std::uint64_t tasks_run() const noexcept { return tasks_; }
  std::size_t max_batch() const noexcept { return max_batch_; }
  // Tasks executed by one worker over the engine's lifetime (tests use
  // this to check per-core aggregation against the global counters).
  std::uint64_t worker_tasks(unsigned worker) const;

 private:
  struct alignas(64) Worker {
    std::mutex mu;                   // guards backlog; pairs with cv
    std::condition_variable cv;
    std::vector<Task> backlog;       // coordinator fills, worker drains
    // Flags are atomic so the spin path can poll them lock-free; they are
    // always *written* with mu held, which closes the lost-wakeup window.
    std::atomic<bool> has_work{false};
    std::atomic<bool> stop{false};
    std::uint64_t tasks_run = 0;     // worker-private; read after join/barrier
    obs::ShardStats stats;           // per-core slots, lazily drained
    std::thread thread;
  };

  void worker_loop(Worker& w);

  unsigned n_workers_;
  int spin_;
  std::vector<std::unique_ptr<Worker>> workers_;
  // Batch completion barrier.
  std::atomic<int> outstanding_{0};
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  // Coordinator-side scratch: per-shard task staging, reused across
  // batches so steady state allocates nothing.
  std::vector<std::vector<Task>> staging_;
  std::uint64_t batches_ = 0;
  std::uint64_t tasks_ = 0;
  std::size_t max_batch_ = 0;
};

}  // namespace zen::sim
