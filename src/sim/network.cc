#include "sim/network.h"

#include "net/packet.h"
#include "net/telemetry.h"
#include "obs/obs.h"
#include "sim/engine.h"
#include "telemetry/export.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/strings.h"

namespace zen::sim {

namespace {

obs::Counter& link_drops_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "zen_sim_link_drops_total", "",
      "Frames lost on links (queue overflow or link down)");
  return c;
}

// Packet-delivery SLI: good on every frame handed to a host, bad on every
// link-level loss. A multi-hop frame contributes one good but each of its
// losses separately, so this is a proxy for loss pressure rather than an
// exact per-packet ratio — which is what a burn-rate alert wants anyway.
obs::Slo& delivery_slo() {
  static obs::Slo& slo = obs::SloMonitor::global().objective(
      obs::SloMonitor::Objective{.name = "packet_delivery",
                                 .target = 0.999,
                                 .short_window_s = 5.0,
                                 .long_window_s = 60.0});
  return slo;
}

void note_link_drop() {
  link_drops_counter().inc();
  delivery_slo().record(false);
}

}  // namespace

net::MacAddress host_mac(topo::NodeId host_id) {
  // Locally administered unicast prefix 0x02.
  return net::MacAddress::from_u64((std::uint64_t{0x02} << 40) |
                                   (host_id & 0xffffffffffULL));
}

net::Ipv4Address host_ip(topo::NodeId host_id) {
  const auto n = static_cast<std::uint32_t>(host_id - topo::kHostIdBase);
  // 10.x.y.z with z in 1..254 (avoids network/broadcast look-alikes);
  // unique for up to 254*256*256 hosts.
  const std::uint32_t z = n % 254u + 1u;
  const std::uint32_t y = (n / 254u) % 256u;
  const std::uint32_t x = (n / (254u * 256u)) % 256u;
  return net::Ipv4Address((10u << 24) | (x << 16) | (y << 8) | z);
}

SimNetwork::SimNetwork(topo::GeneratedTopo generated, SimOptions options)
    : gen_(std::move(generated)), options_(options) {
  // Switches with their ports.
  for (const topo::NodeId sw_id : gen_.switches) {
    auto sw = std::make_unique<dataplane::Switch>(sw_id, options_.switch_config);
    for (const topo::Link* link : gen_.topo.links_of(sw_id)) {
      openflow::PortDesc desc;
      desc.port_no = link->port_at(sw_id);
      desc.hw_addr = net::MacAddress::from_u64((sw_id << 8) | desc.port_no);
      desc.name = util::format("s%llu-p%u",
                               static_cast<unsigned long long>(sw_id),
                               desc.port_no);
      desc.curr_speed_mbps =
          static_cast<std::uint32_t>(link->capacity_bps / 1e6);
      sw->add_port(desc);
    }
    switches_.emplace(sw_id, std::move(sw));
  }

  // Hosts bound to their access links.
  for (const auto& att : gen_.attachments) {
    auto host = std::make_unique<SimHost>(att.host, host_mac(att.host),
                                          host_ip(att.host));
    SimHost* raw = host.get();
    const topo::NodeId host_id = att.host;
    const std::uint32_t host_port = att.host_port;
    raw->bind(
        [this, host_id, host_port](net::Bytes frame) {
          transmit(host_id, host_port, std::move(frame));
        },
        [this] { return now(); });
    ip_to_host_.emplace(raw->ip(), host_id);
    hosts_.emplace(host_id, std::move(host));
  }

  for (const topo::Link* link : gen_.topo.links())
    link_runtime_.try_emplace(link->id);

  if (options_.expiry_interval_s > 0) schedule_expiry_sweep();
  if (options_.telemetry.enabled) configure_telemetry(options_.telemetry);

  // Sharded packet engine: N > 1 fans same-instant deliveries out across
  // per-core workers. Inline otherwise — no pool, no threads.
  if (options_.engine_workers > 1) {
    engine_ = std::make_unique<ParallelEngine>(ParallelEngine::Options{
        .workers = options_.engine_workers, .spin = options_.engine_spin});
    events_.set_engine(engine_.get());
  }

  // Make this simulation's virtual clock the process time source so log
  // prefixes and trace spans carry virtual seconds. Most recent network
  // wins when several coexist; the destructor restores the wall clock.
  clock_token_ =
      util::set_time_source([this] { return events_.now(); }, /*virtual=*/true);
}

SimNetwork::~SimNetwork() { util::clear_time_source(clock_token_); }

void SimNetwork::schedule_expiry_sweep() {
  events_.schedule_in(options_.expiry_interval_s, [this] {
    for (auto& [id, sw] : switches_) {
      if (!switch_up(id)) continue;
      for (auto& removed : sw->expire_flows(now())) {
        for (const auto& handler : event_handlers_)
          handler(id, openflow::Message{removed});
      }
      flush_table_status(id);
    }
    schedule_expiry_sweep();
  });
}

void SimNetwork::flush_table_status(topo::NodeId sw) {
  for (const auto& status : switches_.at(sw)->take_table_status()) {
    for (const auto& handler : event_handlers_)
      handler(sw,
              openflow::Message{openflow::make_table_status_message(status)});
  }
}

void SimNetwork::configure_telemetry(const telemetry::Options& opts) {
  for (auto& [id, sw] : switches_) sw->set_telemetry(nullptr);
  telemetry_.clear();
  host_edge_switch_.clear();
  telemetry_on_ = opts.enabled;
  if (!opts.enabled) return;

  for (auto& [id, sw] : switches_) {
    auto t = std::make_unique<telemetry::SwitchTelemetry>(id, opts);
    sw->set_telemetry(t.get());
    telemetry_.emplace(id, std::move(t));
  }
  for (const auto& att : gen_.attachments) {
    if (const auto it = telemetry_.find(att.sw); it != telemetry_.end())
      it->second->mark_edge_port(att.sw_port);
    host_edge_switch_.emplace(att.host, att.sw);
  }
  if (opts.flush_interval_s > 0) schedule_telemetry_sweep();
}

void SimNetwork::schedule_telemetry_sweep() {
  events_.schedule_in(options_.telemetry.flush_interval_s, [this] {
    if (!telemetry_on_) return;  // reconfigured off: let the sweep die
    for (auto& [id, t] : telemetry_) {
      if (!switch_up(id)) continue;
      telemetry::ExportBatch batch = t->flush(now_ns());
      if (batch.empty()) continue;
      for (const auto& handler : event_handlers_)
        handler(id, openflow::Message{telemetry::make_export_message(batch)});
    }
    schedule_telemetry_sweep();
  });
}

void SimNetwork::maybe_flush_telemetry(topo::NodeId sw) {
  const auto it = telemetry_.find(sw);
  if (it == telemetry_.end() || !it->second->flush_pending()) return;
  telemetry::ExportBatch batch = it->second->flush(now_ns());
  if (batch.empty()) return;
  for (const auto& handler : event_handlers_)
    handler(sw, openflow::Message{telemetry::make_export_message(batch)});
}

SimHost* SimNetwork::host_by_ip(net::Ipv4Address ip) noexcept {
  const auto it = ip_to_host_.find(ip);
  return it == ip_to_host_.end() ? nullptr : hosts_.at(it->second).get();
}

void SimNetwork::transmit(topo::NodeId from, std::uint32_t port,
                          net::Bytes frame, std::uint32_t queue_id,
                          std::uint32_t in_port) {
  const topo::Link* link = gen_.topo.link_at(from, port);
  if (!link) return;
  auto& dir_state =
      link_runtime_.at(link->id).dirs[(from == link->a) ? 0 : 1];
  auto& stats = dir_state.stats;

  if (!link->up) {
    ++stats.dropped_down;
    note_link_drop();
    return;
  }

  // INT-style stamping: every switch a sampled packet leaves appends one
  // hop record. Timestamp/queue depth here are enqueue-time values; they
  // are re-stamped at dequeue (start_transmission) so they reflect the
  // wait the packet actually experienced.
  if (telemetry_on_ && telemetry_.contains(from) &&
      net::has_telemetry_trailer(frame)) {
    net::append_telemetry_hop(
        frame, net::TelemetryHop{
                   .switch_id = from,
                   .ingress_port = in_port,
                   .egress_port = port,
                   .timestamp_ns = now_ns(),
                   .queue_depth_bytes =
                       static_cast<std::uint32_t>(dir_state.queued_bytes)});
  }

  ++stats.delivered;
  stats.bytes += frame.size();
  if (queue_id >= 1) ++stats.priority_delivered;

  if (!dir_state.busy) {
    dir_state.busy = true;
    start_transmission(link->id, (from == link->a) ? 0 : 1, std::move(frame));
    return;
  }

  // Transmitter busy: enqueue under the shared DropTail budget. Strict
  // priority: class >= 1 frames are always accepted ahead of best-effort
  // backlog; if even dropping BE tail can't make room, the frame is lost.
  if (dir_state.queued_bytes + static_cast<double>(frame.size()) >
      options_.queue_bytes) {
    if (queue_id >= 1 && !dir_state.queue_best_effort.empty()) {
      // Push out best-effort tail to admit the priority frame.
      while (!dir_state.queue_best_effort.empty() &&
             dir_state.queued_bytes + static_cast<double>(frame.size()) >
                 options_.queue_bytes) {
        dir_state.queued_bytes -=
            static_cast<double>(dir_state.queue_best_effort.back().size());
        dir_state.queue_best_effort.pop_back();
        ++stats.dropped_queue;
        note_link_drop();
        --stats.delivered;  // it was counted on admission
      }
      if (dir_state.queued_bytes + static_cast<double>(frame.size()) >
          options_.queue_bytes) {
        ++stats.dropped_queue;
        note_link_drop();
        --stats.delivered;
        if (queue_id >= 1) --stats.priority_delivered;
        return;
      }
    } else {
      ++stats.dropped_queue;
      note_link_drop();
      --stats.delivered;
      if (queue_id >= 1) --stats.priority_delivered;
      return;
    }
  }
  dir_state.queued_bytes += static_cast<double>(frame.size());
  (queue_id >= 1 ? dir_state.queue_priority : dir_state.queue_best_effort)
      .push_back(std::move(frame));
}

void SimNetwork::start_transmission(topo::LinkId link_id, int dir,
                                    net::Bytes frame) {
  if (telemetry_on_) {
    // Dequeue re-stamp: the newest hop record gets the actual serialization
    // start time and the backlog left behind in this link direction.
    const auto& dir_state = link_runtime_.at(link_id).dirs[dir];
    net::restamp_last_hop(
        frame, now_ns(),
        static_cast<std::uint32_t>(dir_state.queued_bytes));
  }
  const topo::Link* link = gen_.topo.link(link_id);
  const double tx_time =
      static_cast<double>(frame.size()) / (link->capacity_bps / 8.0);
  const topo::NodeId to = (dir == 0) ? link->b : link->a;
  const std::uint32_t to_port = link->port_at(to);
  const double done_at = now() + tx_time;
  // Frame reaches the far end one propagation delay after serialization.
  schedule_delivery(done_at + link->latency_s, to, to_port, std::move(frame));
  events_.schedule_at(done_at,
                      [this, link_id, dir] { on_transmit_complete(link_id, dir); });
}

void SimNetwork::on_transmit_complete(topo::LinkId link_id, int dir) {
  auto& dir_state = link_runtime_.at(link_id).dirs[dir];
  auto& next_queue = !dir_state.queue_priority.empty()
                         ? dir_state.queue_priority
                         : dir_state.queue_best_effort;
  if (next_queue.empty()) {
    dir_state.busy = false;
    return;
  }
  net::Bytes frame = std::move(next_queue.front());
  next_queue.pop_front();
  dir_state.queued_bytes -= static_cast<double>(frame.size());
  const topo::Link* link = gen_.topo.link(link_id);
  if (!link || !link->up) {
    // Link died while the frame was queued.
    ++dir_state.stats.dropped_down;
    note_link_drop();
    on_transmit_complete(link_id, dir);
    return;
  }
  start_transmission(link_id, dir, std::move(frame));
}

void SimNetwork::deliver(topo::NodeId node, std::uint32_t port,
                         net::Bytes frame) {
  if (const auto host_it = hosts_.find(node); host_it != hosts_.end()) {
    // Sink-side: strip the telemetry trailer so the host sees the original
    // frame, and turn the collected hops into a path record exported by
    // the host's edge switch.
    if (telemetry_on_) {
      if (auto hops = net::strip_telemetry_trailer(frame);
          hops && !hops->empty()) {
        const auto edge_it = host_edge_switch_.find(node);
        if (edge_it != host_edge_switch_.end()) {
          if (const auto tel_it = telemetry_.find(edge_it->second);
              tel_it != telemetry_.end()) {
            telemetry::PathRecord path;
            if (const auto parsed = net::parse_packet(frame); parsed.ok()) {
              if (parsed.value().ipv4) {
                path.ipv4_src = parsed.value().ipv4->src.value();
                path.ipv4_dst = parsed.value().ipv4->dst.value();
                path.ip_proto = parsed.value().ipv4->protocol;
              }
              const net::FlowKey key = parsed.value().flow_key(port);
              path.l4_src = key.l4_src;
              path.l4_dst = key.l4_dst;
            }
            path.hops = std::move(*hops);
            tel_it->second->on_path_complete(std::move(path));
            maybe_flush_telemetry(edge_it->second);
          }
        }
      }
    }
    delivery_slo().record(true);
    host_it->second->deliver(frame);
    return;
  }
  const auto sw_it = switches_.find(node);
  if (sw_it == switches_.end() || !switch_up(node)) return;
  handle_forward_result(node, sw_it->second->ingress(now(), port, frame));
}

void SimNetwork::schedule_delivery(double at, topo::NodeId node,
                                   std::uint32_t port, net::Bytes frame) {
  // Two-phase arrival, sharded by destination node. The compute half runs
  // the switch's match/lookup pipeline (which touches only that switch's
  // tables, cache, meters and per-switch metrics — all owned by the
  // node's shard during a slice); everything with global reach happens in
  // the apply half on the coordinator, in seq order. With no engine
  // installed the two phases run back to back, reproducing the classic
  // single-threaded delivery byte for byte. Host arrivals keep a no-op
  // compute phase: they stay sharded so they never fragment a slice, but
  // the telemetry-strip/SLO/host path shares sink-side state and thus
  // belongs to the coordinator.
  events_.schedule_sharded_at(
      at, static_cast<std::uint64_t>(node),
      [this, node, port, f = std::move(frame),
       result = dataplane::ForwardResult{},
       computed = false](EventQueue::Phase phase) mutable {
        if (phase == EventQueue::Phase::kCompute) {
          if (hosts_.contains(node)) return;
          const auto sw_it = switches_.find(node);
          if (sw_it == switches_.end() || !switch_up(node)) return;
          result = sw_it->second->ingress(now(), port, f);
          computed = true;
          return;
        }
        if (computed) {
          handle_forward_result(node, std::move(result));
          return;
        }
        deliver(node, port, std::move(f));
      });
}

void SimNetwork::handle_forward_result(topo::NodeId sw,
                                       dataplane::ForwardResult result) {
  for (auto& egress : result.outputs)
    transmit(sw, egress.port, std::move(egress.frame), egress.queue_id,
             result.in_port);
  if (result.packet_in) {
    for (const auto& handler : event_handlers_)
      handler(sw, openflow::Message{*result.packet_in});
  }
  if (telemetry_on_) maybe_flush_telemetry(sw);
}

namespace {
// ModStatus for operations aimed at a crashed switch.
dataplane::ModStatus switch_down_status() {
  return {false, openflow::ErrorType::BadRequest, /*switch down*/ 0xdd};
}
}  // namespace

dataplane::ModStatus SimNetwork::flow_mod(topo::NodeId sw,
                                          const openflow::FlowMod& mod) {
  if (!switch_up(sw)) return switch_down_status();
  std::vector<openflow::FlowRemoved> removed;
  const auto status = switches_.at(sw)->flow_mod(mod, now(), &removed);
  for (const auto& fr : removed)
    for (const auto& handler : event_handlers_)
      handler(sw, openflow::Message{fr});
  flush_table_status(sw);
  return status;
}

dataplane::ModStatus SimNetwork::group_mod(topo::NodeId sw,
                                           const openflow::GroupMod& mod) {
  if (!switch_up(sw)) return switch_down_status();
  return switches_.at(sw)->group_mod(mod);
}

dataplane::ModStatus SimNetwork::meter_mod(topo::NodeId sw,
                                           const openflow::MeterMod& mod) {
  if (!switch_up(sw)) return switch_down_status();
  return switches_.at(sw)->meter_mod(mod);
}

dataplane::ModStatus SimNetwork::commit_bundle(
    topo::NodeId sw, std::span<const openflow::Message> members) {
  if (!switch_up(sw)) return switch_down_status();
  std::vector<openflow::FlowRemoved> removed;
  const auto status = switches_.at(sw)->commit_bundle(members, now(), &removed);
  // Removals (evictions/deletes) surface only for a committed bundle; a
  // rolled-back attempt produced no observable dataplane events.
  for (const auto& fr : removed)
    for (const auto& handler : event_handlers_)
      handler(sw, openflow::Message{fr});
  flush_table_status(sw);
  return status;
}

void SimNetwork::packet_out(topo::NodeId sw, const openflow::PacketOut& msg) {
  if (!switch_up(sw)) return;
  handle_forward_result(sw, switches_.at(sw)->packet_out(now(), msg));
}

void SimNetwork::set_link_admin_up(topo::LinkId id, bool up) {
  const topo::Link* link = gen_.topo.link(id);
  if (!link || link->up == up) return;
  gen_.topo.set_link_up(id, up);
  ZEN_TRACE_INSTANT(up ? "link_up" : "link_down", "sim");
  for (const topo::NodeId endpoint : {link->a, link->b}) {
    const auto it = switches_.find(endpoint);
    if (it == switches_.end()) continue;
    auto status = it->second->set_port_link(link->port_at(endpoint), up);
    if (status) {
      for (const auto& handler : event_handlers_)
        handler(endpoint, openflow::Message{*status});
    }
  }
}

void SimNetwork::crash_switch(topo::NodeId id) {
  const auto it = switches_.find(id);
  if (it == switches_.end() || !switch_up(id)) return;
  down_switches_.insert(id);
  // Power loss: volatile forwarding state is gone the instant the switch
  // dies, not when it comes back.
  it->second->reset();
  ZEN_TRACE_INSTANT("switch_crash", "sim");
  ZEN_LOG(Info) << "sim: switch " << id << " crashed";
  for (const topo::Link* link : gen_.topo.links_of(id))
    set_link_admin_up(link->id, false);
}

void SimNetwork::reboot_switch(topo::NodeId id) {
  const auto it = switches_.find(id);
  if (it == switches_.end() || switch_up(id)) return;
  down_switches_.erase(id);
  ZEN_TRACE_INSTANT("switch_reboot", "sim");
  ZEN_LOG(Info) << "sim: switch " << id << " rebooted";
  for (const topo::Link* link : gen_.topo.links_of(id)) {
    // Revive only links whose far end is also powered.
    const topo::NodeId other = link->other(id);
    if (switches_.contains(other) && !switch_up(other)) continue;
    set_link_admin_up(link->id, true);
  }
}

void SimNetwork::schedule_link_failure(topo::LinkId id, double at,
                                       double repair_after) {
  events_.schedule_at(at, [this, id] { set_link_admin_up(id, false); });
  if (repair_after > 0) {
    events_.schedule_at(at + repair_after,
                        [this, id] { set_link_admin_up(id, true); });
  }
}

const LinkDirStats& SimNetwork::link_stats(topo::LinkId id, int dir) const {
  return link_runtime_.at(id).dirs[dir].stats;
}

double SimNetwork::link_utilization(topo::LinkId id, int dir,
                                    double window_s) const {
  if (window_s <= 0) return 0;
  const topo::Link* link = gen_.topo.link(id);
  if (!link) return 0;
  const auto& stats = link_runtime_.at(id).dirs[dir].stats;
  return (static_cast<double>(stats.bytes) * 8.0 / window_s) /
         link->capacity_bps;
}

std::uint64_t SimNetwork::total_link_drops() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [id, runtime] : link_runtime_)
    for (const auto& dir_state : runtime.dirs)
      total += dir_state.stats.dropped_queue + dir_state.stats.dropped_down;
  return total;
}

}  // namespace zen::sim
