// Discrete-event queue: the simulator's virtual clock.
//
// Events at equal times fire in scheduling order (a monotonic sequence
// number breaks ties), which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace zen::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  double now() const noexcept { return now_; }

  // Schedules `fn` at absolute time `at` (clamped to now).
  void schedule_at(double at, Callback fn);

  // Schedules `fn` after `delay` seconds.
  void schedule_in(double delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  // Runs the next event; returns false if the queue is empty.
  bool step();

  // Runs events with time <= until (advances the clock to `until` even if
  // the queue drains early).
  void run_until(double until);

  // Runs until the queue is empty or `max_events` fired.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t pending() const noexcept { return heap_.size(); }

 private:
  struct Event {
    double at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  double now_ = 0;
  std::uint64_t next_seq_ = 0;
  // A raw binary heap instead of std::priority_queue: top() is const there,
  // which forces step() to *copy* the callback (and any captured packet
  // buffers) out of the queue. pop_heap + move keeps delivery zero-copy.
  std::vector<Event> heap_;
};

}  // namespace zen::sim
