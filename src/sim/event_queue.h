// Discrete-event queue: the simulator's virtual clock.
//
// Events at equal times fire in scheduling order (a monotonic sequence
// number breaks ties), which keeps runs deterministic.
//
// Sharded events and the parallel slice
// -------------------------------------
// A *sharded* event is a two-phase callback keyed by the entity it touches
// (e.g. a packet delivery keyed by destination switch):
//
//   Compute — reads/writes only state owned by `key`'s shard. May not
//             schedule events, touch other shards, or block.
//   Apply   — runs on the coordinator thread with exclusive access to
//             everything; may schedule, transmit, call controllers.
//
// Without an engine installed, a sharded event behaves exactly like a
// plain event (Compute then Apply, inline, in seq order) — byte-identical
// to the single-threaded simulator. With an engine, step() peels the
// maximal contiguous run of sharded events at the head of the heap that
// share one timestamp, fans the Compute phases out across the engine's
// workers (same key -> same worker, FIFO), waits for quiescence, then
// runs every Apply phase in seq order. Because Apply order is the seq
// order either way, final state matches the inline run for any worker
// count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace zen::sim {

class ParallelEngine;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  enum class Phase { kCompute, kApply };
  using PhasedCallback = std::function<void(Phase)>;

  double now() const noexcept { return now_; }

  // Schedules `fn` at absolute time `at` (clamped to now).
  void schedule_at(double at, Callback fn);

  // Schedules `fn` after `delay` seconds.
  void schedule_in(double delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  // Schedules a two-phase sharded event (see header comment). Events with
  // equal keys at equal times keep their scheduling order through both
  // phases, so per-(switch,flow) packet order is preserved at any N.
  void schedule_sharded_at(double at, std::uint64_t key, PhasedCallback fn);
  void schedule_sharded_in(double delay, std::uint64_t key,
                           PhasedCallback fn) {
    schedule_sharded_at(now_ + delay, key, std::move(fn));
  }

  // Installs (or clears, with nullptr) the worker pool used for sharded
  // slices. Borrowed pointer; the engine must outlive the queue's run.
  void set_engine(ParallelEngine* engine) noexcept { engine_ = engine; }
  ParallelEngine* engine() const noexcept { return engine_; }

  // Runs the next event — or, when an engine is installed and the head of
  // the heap is a run of same-time sharded events, that whole slice.
  // Returns false if the queue is empty.
  bool step();

  // Runs events with time <= until (advances the clock to `until` even if
  // the queue drains early).
  void run_until(double until);

  // Runs until the queue is empty or at least `max_events` fired (a slice
  // that straddles the limit completes; the true count is returned).
  std::size_t run(std::size_t max_events = SIZE_MAX);

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t pending() const noexcept { return heap_.size(); }

  // Sharded events dispatched through the parallel path (slices of >= 2;
  // singleton slices and inline mode run on the coordinator).
  std::uint64_t parallel_events() const noexcept { return parallel_events_; }

 private:
  struct Event {
    double at;
    std::uint64_t seq;
    Callback fn;          // plain events
    PhasedCallback phased; // sharded events (exactly one of fn/phased set)
    std::uint64_t key = 0;
    bool sharded() const noexcept { return static_cast<bool>(phased); }
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Pops the head dispatch unit (one plain event, or a sharded slice) and
  // runs it. Returns the number of events executed (0 when empty).
  std::size_t step_slice();

  double now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t parallel_events_ = 0;
  ParallelEngine* engine_ = nullptr;
  // A raw binary heap instead of std::priority_queue: top() is const there,
  // which forces step() to *copy* the callback (and any captured packet
  // buffers) out of the queue. pop_heap + move keeps delivery zero-copy.
  std::vector<Event> heap_;
  std::vector<Event> slice_;  // scratch for the current sharded slice
};

}  // namespace zen::sim
