// FaultInjector: seeded chaos schedules for the simulated fabric.
//
// From a single seed it derives a deterministic "fault storm": link flaps
// (down then up) on inter-switch links and switch crash/reboot cycles
// (tables wiped, handshake replayed — see SimNetwork::crash_switch). The
// storm is computed up front, so tests and the chaos example can both
// replay a run bit-for-bit and inspect exactly which faults were injected.
//
// Control-channel impairments (message loss/delay/duplication) live one
// layer up, in controller::Channel — the injector stays protocol-agnostic,
// like the rest of zen_sim. Compose both for a full chaos run (see
// examples/chaos.cc).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/network.h"

namespace zen::sim {

class FaultInjector {
 public:
  struct Options {
    std::uint64_t seed = 1;
    // Storm window: faults start at `start_s` (absolute virtual time) and
    // all begin within `duration_s`; repairs may land a little after.
    double start_s = 0;
    double duration_s = 5.0;
    // Link flaps: a link goes down, then comes back after a downtime drawn
    // uniformly from [min, max].
    int link_flaps = 2;
    double flap_downtime_min_s = 0.2;
    double flap_downtime_max_s = 0.8;
    // Only flap switch-to-switch links (never cut a host off the fabric).
    bool core_links_only = true;
    // Switch crash/reboot cycles.
    int switch_reboots = 1;
    double reboot_downtime_min_s = 0.5;
    double reboot_downtime_max_s = 1.5;
    // Only crash switches without attached hosts (spines/cores), so every
    // intent endpoint stays reachable once the storm clears.
    bool avoid_edge_switches = true;
    // Table-pressure storm: bursts of short-lived junk rules pushed into
    // edge switches (the ones whose tables real traffic depends on), the
    // way a buggy/compromised tenant app would fill hardware tables. Rules
    // carry cookie 0 + importance 0, match unroutable destinations, and
    // hard-expire on their own, so pressure rises and drains by itself.
    int table_pressure_bursts = 0;
    int pressure_rules_per_burst = 16;
    std::uint16_t pressure_lifetime_min_s = 1;
    std::uint16_t pressure_lifetime_max_s = 3;
  };

  struct Event {
    enum class Kind : std::uint8_t {
      LinkDown, LinkUp, SwitchCrash, SwitchReboot, TablePressure
    };
    Kind kind;
    double at = 0;
    std::uint64_t target = 0;  // LinkId for flaps, NodeId for reboots/pressure
  };

  FaultInjector(SimNetwork& net, Options options)
      : net_(net), options_(options) {}

  // Derives the schedule from the seed and arms the event queue. Idempotent
  // per injector: a second call does nothing.
  void arm();

  // The injected schedule, ordered by time (valid after arm()).
  const std::vector<Event>& schedule() const noexcept { return schedule_; }

  // Virtual time of the last scheduled repair (0 before arm()). After this
  // instant the fabric is fault-free and convergence can be measured.
  double storm_end_s() const noexcept { return storm_end_s_; }

  std::size_t link_flaps_scheduled() const noexcept { return link_flaps_; }
  std::size_t switch_reboots_scheduled() const noexcept { return reboots_; }
  std::size_t pressure_bursts_scheduled() const noexcept { return bursts_; }
  // Junk rules actually accepted by switches (valid after the storm ran).
  std::uint64_t pressure_rules_installed() const noexcept {
    return pressure_installed_;
  }

 private:
  void inject_table_pressure(topo::NodeId sw, std::uint64_t burst_no);

  SimNetwork& net_;
  Options options_;
  std::vector<Event> schedule_;
  double storm_end_s_ = 0;
  std::size_t link_flaps_ = 0;
  std::size_t reboots_ = 0;
  std::size_t bursts_ = 0;
  std::uint64_t pressure_installed_ = 0;
  std::uint64_t pressure_seq_ = 0;
  bool armed_ = false;
};

const char* to_string(FaultInjector::Event::Kind kind) noexcept;

}  // namespace zen::sim
