#include "sim/host.h"

#include "obs/metrics.h"
#include "util/buffer.h"
#include "util/logging.h"

namespace zen::sim {

namespace {

// Timestamped payloads carry a 4-byte magic followed by the send time in
// nanoseconds; the magic distinguishes them from arbitrary payload bytes
// (a t=0 send is still a valid timestamp).
constexpr std::uint8_t kTsMagic[4] = {'Z', 'E', 'N', 'T'};

net::Bytes make_timestamped_payload(double now_s, std::size_t size) {
  net::Bytes payload(std::max<std::size_t>(size, 12), 0);
  std::copy(std::begin(kTsMagic), std::end(kTsMagic), payload.begin());
  const auto ns = static_cast<std::uint64_t>(now_s * 1e9);
  for (int i = 0; i < 8; ++i)
    payload[static_cast<std::size_t>(4 + i)] =
        static_cast<std::uint8_t>(ns >> (56 - 8 * i));
  return payload;
}

std::optional<std::uint64_t> read_timestamp(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < 12 ||
      !std::equal(std::begin(kTsMagic), std::end(kTsMagic), payload.begin()))
    return std::nullopt;
  std::uint64_t ns = 0;
  for (int i = 0; i < 8; ++i)
    ns = (ns << 8) | payload[static_cast<std::size_t>(4 + i)];
  return ns;
}

}  // namespace

SimHost::SimHost(topo::NodeId id, net::MacAddress mac, net::Ipv4Address ip)
    : id_(id), mac_(mac), ip_(ip) {}

void SimHost::emit(net::Bytes frame) {
  ++stats_.frames_sent;
  static obs::Counter& sent = obs::MetricsRegistry::global().counter(
      "zen_sim_host_frames_sent_total", "", "Frames emitted by all hosts");
  sent.inc();
  if (egress_) egress_(std::move(frame));
}

void SimHost::resolve_and_send(net::Ipv4Address dst, net::Bytes frame) {
  const auto it = arp_cache_.find(dst);
  if (it != arp_cache_.end()) {
    // Patch the destination MAC (bytes 0..5 of the Ethernet header).
    const auto& octets = it->second.octets();
    std::copy(octets.begin(), octets.end(), frame.begin());
    emit(std::move(frame));
    return;
  }
  auto& queue = pending_[dst];
  if (queue.size() >= kMaxPendingPerDst) {
    ++stats_.unresolved_drops;
    return;
  }
  const bool first = queue.empty();
  queue.push_back(std::move(frame));
  if (first) emit(net::build_arp_request(mac_, ip_, dst));
}

void SimHost::send_udp(net::Ipv4Address dst, std::uint16_t src_port,
                       std::uint16_t dst_port, std::size_t payload_size) {
  const net::Bytes payload = make_timestamped_payload(now(), payload_size);
  net::Bytes frame = net::build_ipv4_udp(mac_, net::MacAddress{}, ip_, dst,
                                         src_port, dst_port, payload);
  resolve_and_send(dst, std::move(frame));
}

void SimHost::send_tcp(net::Ipv4Address dst, const net::TcpSpec& spec,
                       std::size_t payload_size) {
  const net::Bytes payload = make_timestamped_payload(now(), payload_size);
  net::Bytes frame =
      net::build_ipv4_tcp(mac_, net::MacAddress{}, ip_, dst, spec, payload);
  resolve_and_send(dst, std::move(frame));
}

void SimHost::send_icmp_echo(net::Ipv4Address dst, std::uint16_t seq) {
  net::Bytes frame = net::build_ipv4_icmp_echo(
      mac_, net::MacAddress{}, ip_, dst, /*request=*/true,
      static_cast<std::uint16_t>(id_ & 0xffff), seq);
  resolve_and_send(dst, std::move(frame));
}

void SimHost::send_raw(net::Bytes frame) { emit(std::move(frame)); }

void SimHost::deliver(const net::Bytes& frame) {
  ++stats_.frames_received;
  static obs::Counter& received = obs::MetricsRegistry::global().counter(
      "zen_sim_host_frames_received_total", "",
      "Frames delivered to all hosts");
  received.inc();
  stats_.bytes_received += frame.size();

  auto parsed = net::parse_packet(frame);
  if (!parsed.ok()) return;
  const net::ParsedPacket& p = parsed.value();

  // Drop frames not addressed to us (switch flooding delivers broadly).
  if (p.eth.dst != mac_ && !p.eth.dst.is_broadcast() && !p.eth.dst.is_multicast())
    return;

  if (p.arp) {
    // Learn the sender mapping opportunistically.
    arp_cache_[p.arp->sender_ip] = p.arp->sender_mac;
    if (p.arp->opcode == net::ArpMessage::kRequest && p.arp->target_ip == ip_) {
      ++stats_.arp_requests_answered;
      emit(net::build_arp_reply(mac_, ip_, p.arp->sender_mac, p.arp->sender_ip));
    } else if (p.arp->opcode == net::ArpMessage::kReply &&
               p.arp->target_mac == mac_) {
      // Flush packets queued on this resolution.
      const auto it = pending_.find(p.arp->sender_ip);
      if (it != pending_.end()) {
        auto queue = std::move(it->second);
        pending_.erase(it);
        const auto& octets = p.arp->sender_mac.octets();
        for (auto& pending_frame : queue) {
          std::copy(octets.begin(), octets.end(), pending_frame.begin());
          emit(std::move(pending_frame));
        }
      }
    }
    return;
  }

  if (!p.ipv4 || p.ipv4->dst != ip_) return;

  if (p.icmp) {
    if (p.icmp->type == net::IcmpHeader::kEchoRequest) {
      ++stats_.icmp_echo_received;
      // Reflect src MAC from the request (fast path; no ARP needed).
      emit(net::build_ipv4_icmp_echo(mac_, p.eth.src, ip_, p.ipv4->src,
                                     /*request=*/false, p.icmp->identifier,
                                     p.icmp->sequence));
    } else if (p.icmp->type == net::IcmpHeader::kEchoReply) {
      ++stats_.icmp_reply_received;
    }
    return;
  }

  const std::span<const std::uint8_t> payload{frame.data() + p.payload_offset,
                                              frame.size() - p.payload_offset};
  if (p.udp) {
    ++stats_.udp_received;
    if (const auto sent_ns = read_timestamp(payload)) {
      const double latency_s = now() - static_cast<double>(*sent_ns) * 1e-9;
      if (latency_s >= 0) latency_us_.record(latency_s * 1e6);
    }
  } else if (p.tcp) {
    ++stats_.tcp_received;
    const auto sink = tcp_sinks_.find(p.tcp->dst_port);
    if (sink != tcp_sinks_.end()) sink->second(p, payload);
  }
}

}  // namespace zen::sim
