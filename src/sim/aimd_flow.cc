#include "sim/aimd_flow.h"

#include <algorithm>

namespace zen::sim {

AimdFlow::AimdFlow(SimNetwork& net, topo::NodeId src_host,
                   topo::NodeId dst_host, Options options)
    : net_(net),
      sender_(net.host_at(src_host)),
      receiver_(net.host_at(dst_host)),
      options_(options),
      cwnd_(options.initial_cwnd),
      ssthresh_(options.initial_ssthresh) {
  // Round the transfer up to whole segments.
  const auto seg = static_cast<std::uint64_t>(options_.segment_bytes);
  options_.total_bytes = (options_.total_bytes + seg - 1) / seg * seg;
}

AimdFlow::~AimdFlow() {
  receiver_.clear_tcp_sink(options_.dst_port);
  sender_.clear_tcp_sink(options_.src_port);
}

void AimdFlow::start() {
  if (running_) return;
  running_ = true;
  started_at_ = net_.now();
  // MAC resolution out of band: the transport study is about congestion,
  // not ARP.
  sender_.add_arp_entry(receiver_.ip(), receiver_.mac());
  receiver_.add_arp_entry(sender_.ip(), sender_.mac());

  // Receiver: cumulative-ACK responder with out-of-order buffering. Data
  // at the expected byte advances the edge (draining any buffered
  // segments); data beyond it is buffered; either way the current edge is
  // ACKed (a non-advancing ACK is the sender's duplicate-ACK signal).
  receiver_.set_tcp_sink(
      options_.dst_port,
      [this](const net::ParsedPacket& p, std::span<const std::uint8_t> payload) {
        const auto seg = static_cast<std::uint64_t>(options_.segment_bytes);
        if (p.tcp->seq == receiver_next_) {
          receiver_next_ += payload.size();
          // Drain contiguously buffered segments.
          while (!receiver_ooo_.empty() &&
                 *receiver_ooo_.begin() == receiver_next_) {
            receiver_ooo_.erase(receiver_ooo_.begin());
            receiver_next_ += seg;
          }
        } else if (p.tcp->seq > receiver_next_) {
          receiver_ooo_.insert(p.tcp->seq);
        }
        net::TcpSpec ack;
        ack.src_port = options_.dst_port;
        ack.dst_port = options_.src_port;
        ack.ack = static_cast<std::uint32_t>(receiver_next_);
        ack.flags = net::TcpHeader::kAck;
        receiver_.send_tcp(sender_.ip(), ack, 0);
      });

  // Sender: ACK processing.
  sender_.set_tcp_sink(
      options_.src_port,
      [this](const net::ParsedPacket& p, std::span<const std::uint8_t>) {
        if (p.tcp->flags & net::TcpHeader::kAck) on_ack(p.tcp->ack);
      });

  arm_timer();
  pump();
}

void AimdFlow::send_segment(std::uint64_t seq, bool retransmission) {
  net::TcpSpec spec;
  spec.src_port = options_.src_port;
  spec.dst_port = options_.dst_port;
  spec.seq = static_cast<std::uint32_t>(seq);
  spec.flags = net::TcpHeader::kPsh;
  sender_.send_tcp(receiver_.ip(), spec, options_.segment_bytes);
  ++stats_.segments_sent;
  if (retransmission) ++stats_.retransmits;
}

void AimdFlow::pump() {
  if (complete()) return;
  const auto seg = static_cast<std::uint64_t>(options_.segment_bytes);
  const auto window_bytes =
      static_cast<std::uint64_t>(cwnd_ * static_cast<double>(seg));
  while (next_seq_ < options_.total_bytes &&
         next_seq_ - acked_ + seg <= std::max<std::uint64_t>(window_bytes, seg)) {
    send_segment(next_seq_, false);
    next_seq_ += seg;
  }
  stats_.cwnd = cwnd_;
  stats_.max_cwnd = std::max(stats_.max_cwnd, cwnd_);
}

void AimdFlow::on_ack(std::uint64_t ack) {
  if (complete()) return;
  if (ack > acked_) {
    // New data acknowledged.
    acked_ = ack;
    stats_.bytes_acked = acked_;
    dup_acks_ = 0;
    if (cwnd_ < ssthresh_) {
      cwnd_ += 1.0;  // slow start
    } else {
      cwnd_ += 1.0 / cwnd_;  // congestion avoidance
    }
    timer_epoch_++;  // fresh progress: restart the timer
    arm_timer();
    if (acked_ >= options_.total_bytes) {
      stats_.completed_at = net_.now();
      stats_.cwnd = cwnd_;
      return;
    }
    pump();
  } else if (ack == acked_) {
    // Duplicate ACK: the segment at `acked_` was lost or reordered.
    if (++dup_acks_ == 3) {
      ++stats_.fast_retransmits;
      ssthresh_ = std::max(2.0, cwnd_ / 2.0);
      cwnd_ = ssthresh_;  // multiplicative decrease
      // The receiver buffers out-of-order data, so repairing the hole at
      // the ack edge is enough (SACK-like single retransmission).
      send_segment(acked_, true);
      dup_acks_ = 0;
    }
  }
}

void AimdFlow::arm_timer() {
  const std::uint64_t epoch = timer_epoch_;
  net_.events().schedule_in(std::max(options_.rto_s, options_.min_rto_s),
                            [this, epoch] {
                              if (epoch == timer_epoch_) on_timeout();
                            });
}

void AimdFlow::on_timeout() {
  if (complete() || acked_ >= options_.total_bytes) return;
  ++stats_.timeouts;
  ssthresh_ = std::max(2.0, cwnd_ / 2.0);
  cwnd_ = options_.initial_cwnd;  // back to slow start
  dup_acks_ = 0;
  // Go-back-N from the ack edge.
  next_seq_ = acked_;
  send_segment(acked_, true);
  next_seq_ += options_.segment_bytes;
  timer_epoch_++;
  arm_timer();
  pump();
}

double AimdFlow::throughput_bps() const noexcept {
  const double end = complete() ? stats_.completed_at : net_.now();
  const double elapsed = end - started_at_;
  if (elapsed <= 0) return 0;
  return static_cast<double>(stats_.bytes_acked) * 8.0 / elapsed;
}

}  // namespace zen::sim
