// SimHost: an end host attached to the simulated network.
//
// Hosts implement just enough of an IP stack to exercise the fabric:
// ARP resolution with a pending-packet queue, ICMP echo reply, UDP/TCP
// receive accounting, and one-way latency measurement via a timestamp the
// sender embeds in the first 8 payload bytes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "net/packet.h"
#include "topo/graph.h"
#include "util/histogram.h"

namespace zen::sim {

class SimNetwork;  // host -> network egress is via callback, see below

struct HostStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t udp_received = 0;
  std::uint64_t tcp_received = 0;
  std::uint64_t icmp_echo_received = 0;
  std::uint64_t icmp_reply_received = 0;
  std::uint64_t arp_requests_answered = 0;
  std::uint64_t unresolved_drops = 0;
  std::uint64_t bytes_received = 0;
};

class SimHost {
 public:
  // `egress` is called (by this host) whenever it emits a frame; the network
  // binds it to the host's access link.
  using EgressFn = std::function<void(net::Bytes frame)>;
  // Clock supplied by the simulator (virtual seconds).
  using ClockFn = std::function<double()>;

  SimHost(topo::NodeId id, net::MacAddress mac, net::Ipv4Address ip);

  void bind(EgressFn egress, ClockFn clock) {
    egress_ = std::move(egress);
    clock_ = std::move(clock);
  }

  topo::NodeId id() const noexcept { return id_; }
  net::MacAddress mac() const noexcept { return mac_; }
  net::Ipv4Address ip() const noexcept { return ip_; }

  // ---- sending ----

  // Sends a UDP datagram of `payload_size` bytes (>= 8; the first 8 carry
  // the send timestamp in nanoseconds for latency measurement).
  // If the destination MAC is unknown, ARP-resolves first and queues the
  // packet (bounded queue; overflow counts as unresolved_drops).
  void send_udp(net::Ipv4Address dst, std::uint16_t src_port,
                std::uint16_t dst_port, std::size_t payload_size);

  // Sends a TCP segment with the given flags (for policy/firewall tests).
  void send_tcp(net::Ipv4Address dst, const net::TcpSpec& spec,
                std::size_t payload_size);

  void send_icmp_echo(net::Ipv4Address dst, std::uint16_t seq);

  // Injects a pre-built frame as-is.
  void send_raw(net::Bytes frame);

  // ---- receiving (called by the network) ----
  void deliver(const net::Bytes& frame);

  // ---- observability ----
  const HostStats& stats() const noexcept { return stats_; }
  // One-way latency of received timestamped UDP payloads, in microseconds.
  const util::Histogram& latency_us() const noexcept { return latency_us_; }
  bool knows(net::Ipv4Address ip) const { return arp_cache_.contains(ip); }

  // Static ARP entry (skips resolution; used by proactive-routing setups).
  void add_arp_entry(net::Ipv4Address ip, net::MacAddress mac) {
    arp_cache_[ip] = mac;
  }

  // ---- L4 upcalls ----
  // Registers a handler for TCP segments addressed to `local_port`; the
  // transport layer (sim/aimd_flow.h) builds on this. The handler sees the
  // parsed packet and the raw payload bytes.
  using TcpSink =
      std::function<void(const net::ParsedPacket&, std::span<const std::uint8_t>)>;
  void set_tcp_sink(std::uint16_t local_port, TcpSink sink) {
    tcp_sinks_[local_port] = std::move(sink);
  }
  void clear_tcp_sink(std::uint16_t local_port) { tcp_sinks_.erase(local_port); }

 private:
  void resolve_and_send(net::Ipv4Address dst, net::Bytes frame_sans_eth_dst);
  void emit(net::Bytes frame);
  double now() const { return clock_ ? clock_() : 0; }

  topo::NodeId id_;
  net::MacAddress mac_;
  net::Ipv4Address ip_;
  EgressFn egress_;
  ClockFn clock_;

  std::unordered_map<net::Ipv4Address, net::MacAddress> arp_cache_;
  // Packets awaiting ARP resolution, per destination IP.
  std::unordered_map<net::Ipv4Address, std::deque<net::Bytes>> pending_;
  static constexpr std::size_t kMaxPendingPerDst = 64;

  HostStats stats_;
  util::Histogram latency_us_;
  std::unordered_map<std::uint16_t, TcpSink> tcp_sinks_;
};

}  // namespace zen::sim
