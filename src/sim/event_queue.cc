#include "sim/event_queue.h"

#include <algorithm>

#include "obs/metrics.h"
#include "sim/engine.h"

namespace zen::sim {

namespace {

struct QueueMetrics {
  obs::Counter& events;
  obs::Counter& parallel_events;
  obs::Counter& slices;
  obs::Gauge& depth;
  static QueueMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static QueueMetrics m{
        reg.counter("zen_sim_events_total", "",
                    "Discrete events executed across all event queues"),
        reg.counter("zen_sim_parallel_events_total", "",
                    "Sharded events dispatched through a parallel slice"),
        reg.counter("zen_sim_parallel_slices_total", "",
                    "Parallel slices (same-instant sharded runs of >= 2)"),
        reg.gauge("zen_sim_queue_depth", "",
                  "Pending events after the most recent step")};
    return m;
  }
};

// Trampoline so a PhasedCallback can ride in an engine Task's fn/ctx pair.
void run_compute(void* ctx) {
  (*static_cast<EventQueue::PhasedCallback*>(ctx))(
      EventQueue::Phase::kCompute);
}

}  // namespace

void EventQueue::schedule_at(double at, Callback fn) {
  heap_.push_back(
      Event{std::max(at, now_), next_seq_++, std::move(fn), nullptr, 0});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::schedule_sharded_at(double at, std::uint64_t key,
                                     PhasedCallback fn) {
  heap_.push_back(
      Event{std::max(at, now_), next_seq_++, nullptr, std::move(fn), key});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

std::size_t EventQueue::step_slice() {
  if (heap_.empty()) return 0;
  auto& metrics = QueueMetrics::get();

  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  now_ = ev.at;

  if (!ev.sharded() || engine_ == nullptr) {
    if (ev.sharded()) {
      // Inline mode: both phases back to back, exactly the seq-order
      // behavior a plain event would have. This is the determinism anchor
      // the parallel path is validated against.
      ev.phased(Phase::kCompute);
      ev.phased(Phase::kApply);
    } else {
      ev.fn();
    }
    metrics.events.inc();
    metrics.depth.set(static_cast<double>(heap_.size()));
    return 1;
  }

  // Peel the maximal contiguous run of sharded events at this instant.
  // A plain event at the same time ends the slice: plain events carry no
  // shard key, so we conservatively treat them as conflicting with
  // everything and fall back to strict seq order around them.
  slice_.clear();
  slice_.push_back(std::move(ev));
  while (!heap_.empty() && heap_.front().at == now_ &&
         heap_.front().sharded()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    slice_.push_back(std::move(heap_.back()));
    heap_.pop_back();
  }
  // pop order respects Later{}, so slice_ is already in seq order.

  if (slice_.size() == 1) {
    slice_[0].phased(Phase::kCompute);
    slice_[0].phased(Phase::kApply);
  } else {
    // Phase 1: fan the per-shard computes out across the pool. Same key ->
    // same worker in slice (seq) order, so per-entity effects stay ordered.
    std::vector<ParallelEngine::Task> tasks;
    tasks.reserve(slice_.size());
    for (Event& e : slice_)
      tasks.push_back(
          ParallelEngine::Task{e.key, &e.phased, &run_compute});
    engine_->run_batch(tasks);

    // Phase 2: applies in seq order on this (the coordinator) thread.
    // run_batch was a quiescence barrier, so applies may freely mutate
    // shared state and schedule follow-on events (which get fresh seqs
    // and thus fire after this slice, matching the inline order).
    for (Event& e : slice_) e.phased(Phase::kApply);

    parallel_events_ += slice_.size();
    metrics.parallel_events.inc(slice_.size());
    metrics.slices.inc();
  }

  const std::size_t n = slice_.size();
  slice_.clear();
  metrics.events.inc(n);
  metrics.depth.set(static_cast<double>(heap_.size()));
  return n;
}

bool EventQueue::step() { return step_slice() > 0; }

void EventQueue::run_until(double until) {
  while (!heap_.empty() && heap_.front().at <= until) step_slice();
  now_ = std::max(now_, until);
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t fired = 0;
  while (fired < max_events) {
    const std::size_t n = step_slice();
    if (n == 0) break;
    fired += n;
  }
  return fired;
}

}  // namespace zen::sim
