#include "sim/event_queue.h"

#include <algorithm>

namespace zen::sim {

void EventQueue::schedule_at(double at, Callback fn) {
  queue_.push(Event{std::max(at, now_), next_seq_++, std::move(fn)});
}

bool EventQueue::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the callback handle (std::function copy is cheap enough here).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.at;
  ev.fn();
  return true;
}

void EventQueue::run_until(double until) {
  while (!queue_.empty() && queue_.top().at <= until) step();
  now_ = std::max(now_, until);
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t fired = 0;
  while (fired < max_events && step()) ++fired;
  return fired;
}

}  // namespace zen::sim
