#include "sim/event_queue.h"

#include <algorithm>

#include "obs/metrics.h"

namespace zen::sim {

namespace {

struct QueueMetrics {
  obs::Counter& events;
  obs::Gauge& depth;
  static QueueMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static QueueMetrics m{
        reg.counter("zen_sim_events_total", "",
                    "Discrete events executed across all event queues"),
        reg.gauge("zen_sim_queue_depth", "",
                  "Pending events after the most recent step")};
    return m;
  }
};

}  // namespace

void EventQueue::schedule_at(double at, Callback fn) {
  heap_.push_back(Event{std::max(at, now_), next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  now_ = ev.at;
  ev.fn();
  auto& metrics = QueueMetrics::get();
  metrics.events.inc();
  metrics.depth.set(static_cast<double>(heap_.size()));
  return true;
}

void EventQueue::run_until(double until) {
  while (!heap_.empty() && heap_.front().at <= until) step();
  now_ = std::max(now_, until);
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t fired = 0;
  while (fired < max_events && step()) ++fired;
  return fired;
}

}  // namespace zen::sim
