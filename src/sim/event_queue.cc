#include "sim/event_queue.h"

#include <algorithm>

#include "obs/metrics.h"

namespace zen::sim {

namespace {

struct QueueMetrics {
  obs::Counter& events;
  obs::Gauge& depth;
  static QueueMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static QueueMetrics m{
        reg.counter("zen_sim_events_total", "",
                    "Discrete events executed across all event queues"),
        reg.gauge("zen_sim_queue_depth", "",
                  "Pending events after the most recent step")};
    return m;
  }
};

}  // namespace

void EventQueue::schedule_at(double at, Callback fn) {
  queue_.push(Event{std::max(at, now_), next_seq_++, std::move(fn)});
}

bool EventQueue::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the callback handle (std::function copy is cheap enough here).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.at;
  ev.fn();
  auto& metrics = QueueMetrics::get();
  metrics.events.inc();
  metrics.depth.set(static_cast<double>(queue_.size()));
  return true;
}

void EventQueue::run_until(double until) {
  while (!queue_.empty() && queue_.top().at <= until) step();
  now_ = std::max(now_, until);
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t fired = 0;
  while (fired < max_events && step()) ++fired;
  return fired;
}

}  // namespace zen::sim
