// SimNetwork: the discrete-event network substrate.
//
// Owns the dataplane switches, the hosts, and the link model, and moves
// frames between them under virtual time. Each link direction is a real
// transmitter: one frame serializes at a time, waiting frames sit in a
// two-class strict-priority DropTail queue (SetQueue >= 1 selects the
// priority class), so congestion, loss, serialization delay and QoS are
// all observable.
//
// The control plane is attached through a narrow seam: switch-originated
// events (PacketIn / PortStatus / FlowRemoved) are handed to a single
// callback as typed messages, and controller-originated operations enter
// through typed methods (flow_mod, packet_out, ...). The wire-protocol
// encoding/decoding and controller-latency modeling live one layer up, in
// the controller module, keeping this substrate protocol-agnostic.
#pragma once

#include <functional>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "dataplane/switch.h"
#include "sim/event_queue.h"
#include "sim/host.h"
#include "telemetry/switch_telemetry.h"
#include "topo/generators.h"

namespace zen::sim {

struct LinkDirStats {
  std::uint64_t delivered = 0;
  std::uint64_t dropped_queue = 0;
  std::uint64_t dropped_down = 0;
  std::uint64_t bytes = 0;
  std::uint64_t priority_delivered = 0;  // frames sent via the priority class
};

struct SimOptions {
  dataplane::SwitchConfig switch_config;
  // Per-direction link queue (bytes). ~42 MTU-sized packets by default.
  double queue_bytes = 64 * 1024;
  // Interval for flow-timeout sweeps (0 disables).
  double expiry_interval_s = 1.0;
  // INT-style telemetry + sampled flow export (disabled by default, so a
  // plain simulation is bit-for-bit identical to one without telemetry).
  telemetry::Options telemetry;
  // Dataplane worker threads for the sharded packet engine. 0 or 1 runs
  // everything inline on the simulation thread (byte-identical to the
  // classic single-threaded simulator); N > 1 partitions switches across
  // N per-core engines and fans same-instant independent deliveries out
  // in parallel. Final state is identical for any value — see
  // EventQueue's two-phase sharded dispatch.
  unsigned engine_workers = 0;
  // Worker spin before parking (-1 = auto). Forwarded to the engine.
  int engine_spin = -1;
};

class SimNetwork {
 public:
  // Builds switches and hosts from the generated topology. Hosts get
  // MAC = from_u64(node id) and IP = 10.x.y.z derived from the host index.
  // Installs the event queue as the process time source (util::clock) so
  // logs and traces are stamped with virtual seconds.
  SimNetwork(topo::GeneratedTopo generated, SimOptions options = {});
  ~SimNetwork();
  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  EventQueue& events() noexcept { return events_; }
  double now() const noexcept { return events_.now(); }
  // The sharded packet engine (nullptr when engine_workers <= 1).
  ParallelEngine* engine() noexcept { return engine_.get(); }
  topo::Topology& topology() noexcept { return gen_.topo; }
  const topo::GeneratedTopo& generated() const noexcept { return gen_; }

  dataplane::Switch& switch_at(topo::NodeId id) { return *switches_.at(id); }
  SimHost& host_at(topo::NodeId id) { return *hosts_.at(id); }
  const std::unordered_map<topo::NodeId, std::unique_ptr<SimHost>>& hosts()
      const noexcept {
    return hosts_;
  }
  const std::unordered_map<topo::NodeId, std::unique_ptr<dataplane::Switch>>&
  switches() const noexcept {
    return switches_;
  }

  // Host lookup by IP (nullptr if unknown).
  SimHost* host_by_ip(net::Ipv4Address ip) noexcept;

  // ---- control seam ----
  // PacketIn / PortStatus / FlowRemoved from any switch.
  using DatapathEventFn =
      std::function<void(topo::NodeId sw, openflow::Message msg)>;
  // Replaces all handlers (single-controller setups).
  void set_datapath_event_handler(DatapathEventFn fn) {
    event_handlers_.clear();
    event_handlers_.push_back(std::move(fn));
  }
  // Adds a handler (multi-controller setups: every controller's agents see
  // every datapath event; role filtering happens in the agents).
  void add_datapath_event_handler(DatapathEventFn fn) {
    event_handlers_.push_back(std::move(fn));
  }

  // ---- telemetry ----
  // (Re)configures per-switch telemetry: builds SwitchTelemetry objects,
  // marks host-facing ports as edges, and starts the export sweep. Called
  // from the constructor when SimOptions.telemetry.enabled; callable later
  // to turn telemetry on for an already-built network.
  void configure_telemetry(const telemetry::Options& opts);
  // The per-switch telemetry object (nullptr when telemetry is off).
  telemetry::SwitchTelemetry* telemetry_at(topo::NodeId sw) noexcept {
    const auto it = telemetry_.find(sw);
    return it == telemetry_.end() ? nullptr : it->second.get();
  }

  dataplane::ModStatus flow_mod(topo::NodeId sw, const openflow::FlowMod& mod);
  dataplane::ModStatus group_mod(topo::NodeId sw, const openflow::GroupMod& mod);
  dataplane::ModStatus meter_mod(topo::NodeId sw, const openflow::MeterMod& mod);
  // Atomic multi-mod apply (bundle commit): members apply all-or-nothing
  // on the switch; FlowRemoved fan-out happens only when the bundle
  // commits (see dataplane::Switch::commit_bundle).
  dataplane::ModStatus commit_bundle(topo::NodeId sw,
                                     std::span<const openflow::Message> members);
  void packet_out(topo::NodeId sw, const openflow::PacketOut& msg);

  // ---- failure injection ----
  // Administratively set a link up/down now; emits PortStatus on both
  // switch endpoints. In-flight frames already scheduled still arrive.
  void set_link_admin_up(topo::LinkId id, bool up);
  void schedule_link_failure(topo::LinkId id, double at, double repair_after);

  // Switch crash: forwarding state is wiped immediately (Switch::reset),
  // every attached link goes down (peers see PortStatus), and the switch
  // stops forwarding, emitting datapath events, and answering its control
  // channel until reboot_switch(). The controller notices only through
  // heartbeat timeouts — exactly like a real power loss.
  void crash_switch(topo::NodeId id);
  // Powers the switch back on with empty tables and revives its links.
  // No announcement is made: the controller must re-handshake and
  // reconcile (FlowRuleStore audit) to repopulate it.
  void reboot_switch(topo::NodeId id);
  bool switch_up(topo::NodeId id) const noexcept {
    return !down_switches_.contains(id);
  }

  // ---- link observability ----
  // dir 0 = a->b, dir 1 = b->a.
  const LinkDirStats& link_stats(topo::LinkId id, int dir) const;
  double link_utilization(topo::LinkId id, int dir, double window_s) const;

  void run_until(double t) { events_.run_until(t); }

  // Total frames dropped anywhere (links + switches) — convergence checks.
  std::uint64_t total_link_drops() const noexcept;

 private:
  struct LinkDir {
    bool busy = false;
    std::deque<net::Bytes> queue_priority;
    std::deque<net::Bytes> queue_best_effort;
    double queued_bytes = 0;
    LinkDirStats stats;
  };
  struct LinkRuntime {
    LinkDir dirs[2];
  };

  void transmit(topo::NodeId from, std::uint32_t port, net::Bytes frame,
                std::uint32_t queue_id = 0, std::uint32_t in_port = 0);
  void start_transmission(topo::LinkId link_id, int dir, net::Bytes frame);
  void on_transmit_complete(topo::LinkId link_id, int dir);
  void deliver(topo::NodeId node, std::uint32_t port, net::Bytes frame);
  // Schedules the arrival of `frame` at `node` as a two-phase sharded
  // event keyed by the destination: the switch-lookup half (ingress) runs
  // in the compute phase on the node's shard, the side effects (transmit,
  // PacketIn fan-out, host delivery) in the apply phase on the
  // coordinator, in seq order.
  void schedule_delivery(double at, topo::NodeId node, std::uint32_t port,
                         net::Bytes frame);
  void handle_forward_result(topo::NodeId sw, dataplane::ForwardResult result);
  void schedule_expiry_sweep();
  void schedule_telemetry_sweep();
  // Drains vacancy TableStatus events from `sw` and fans them out to the
  // control seam as Experimenter messages.
  void flush_table_status(topo::NodeId sw);
  // Emits a pending export batch for `sw` (if any) to the control seam.
  void maybe_flush_telemetry(topo::NodeId sw);
  std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(events_.now() * 1e9);
  }

  topo::GeneratedTopo gen_;
  SimOptions options_;
  EventQueue events_;
  std::unique_ptr<ParallelEngine> engine_;  // after events_: torn down first
  std::unordered_map<topo::NodeId, std::unique_ptr<dataplane::Switch>> switches_;
  std::unordered_map<topo::NodeId, std::unique_ptr<SimHost>> hosts_;
  std::unordered_map<net::Ipv4Address, topo::NodeId> ip_to_host_;
  std::unordered_map<topo::LinkId, LinkRuntime> link_runtime_;
  std::vector<DatapathEventFn> event_handlers_;
  // Telemetry: per-switch state, plus host -> (edge switch, port) for
  // sink-side trailer stripping. telemetry_on_ gates every hot-path check
  // so runs without telemetry pay a single bool test.
  std::unordered_map<topo::NodeId, std::unique_ptr<telemetry::SwitchTelemetry>>
      telemetry_;
  std::unordered_map<topo::NodeId, topo::NodeId> host_edge_switch_;
  std::unordered_set<topo::NodeId> down_switches_;
  bool telemetry_on_ = false;
  std::uint64_t clock_token_ = 0;
};

// Deterministic addressing helpers (shared with the controller module).
net::MacAddress host_mac(topo::NodeId host_id);
net::Ipv4Address host_ip(topo::NodeId host_id);

}  // namespace zen::sim
