// IntentManager: compiles intents to flow rules and keeps them honest
// across failures (the ONOS intent-framework analog).
//
// Registered as a controller App so it sees link and host events. Each
// installed intent remembers the exact (switch, FlowMod) set it pushed;
// on a link failure touching its path the intent is recompiled onto a
// surviving path (or parked as Failed until the topology heals).
#pragma once

#include <map>
#include <vector>

#include "controller/controller.h"
#include "controller/flow_rule_store.h"
#include "intent/intent.h"

namespace zen::intent {

class IntentManager : public controller::App {
 public:
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t compiled = 0;
    std::uint64_t recompiles = 0;
    std::uint64_t failures = 0;
    std::uint64_t degraded = 0;  // times an intent entered Degraded
  };

  std::string name() const override { return "intent_manager"; }

  // ---- northbound ----
  IntentId submit(IntentSpec spec);
  // Clustered handoff: re-homes an intent from a dead controller under a
  // fresh local id. `prior` is the state the previous owner last reported.
  // A Degraded prior is preserved without compiling — the intent was
  // parked for table pressure on switches this controller just adopted,
  // and blasting it back in would recreate the pressure (the
  // recompile-storm failure mode). It re-enters the normal recovery
  // ladder on VacancyUp / switch-up like any Degraded intent. Any other
  // prior state compiles immediately, exactly like submit().
  IntentId adopt(IntentSpec spec, IntentState prior);
  bool withdraw(IntentId id);
  IntentState state(IntentId id) const;
  // Switch sequence of the installed forward path (empty for Ban/uninstalled).
  std::vector<topo::NodeId> installed_path(IntentId id) const;
  // Backup path of a Protected intent (empty if none / unprotected).
  std::vector<topo::NodeId> backup_path(IntentId id) const;
  // True if the intent is Protected and its backup is installed.
  bool is_protected_active(IntentId id) const;
  std::size_t count_in_state(IntentState state) const;
  // Every non-withdrawn intent id, ascending — for auditors/monitors that
  // verify the dataplane against the declared intent set.
  std::vector<IntentId> intent_ids() const;
  // The spec as submitted (nullptr if the id is unknown or withdrawn).
  const IntentSpec* spec(IntentId id) const;
  const Stats& stats() const noexcept { return stats_; }

  // Recompile every non-withdrawn intent now (normally event-driven).
  void recompile_all();

  // ---- App events ----
  void on_link_event(const controller::LinkEvent& event) override;
  void on_host_discovered(const controller::HostInfo& host) override;
  void on_switch_up(controller::Dpid, const openflow::FeaturesReply&) override;
  // A switch declared dead: recompile every installed intent routed
  // through it onto surviving paths.
  void on_switch_down(controller::Dpid dpid) override;
  // A rule belonging to an intent we believe installed left the dataplane.
  // Timeout expiry is silent divergence — recompile. Capacity eviction is
  // back-pressure — park the intent as Degraded instead (recompiling would
  // recreate the pressure that evicted it). reason == Delete is our own
  // delete echoing back and is ignored.
  void on_flow_removed(controller::Dpid dpid,
                       const openflow::FlowRemoved& msg) override;
  // VacancyUp lifts the pressure: un-park the store's degraded rules on
  // that switch and recompile Degraded intents.
  void on_table_status(controller::Dpid dpid,
                       const openflow::TableStatus& status) override;

 private:
  struct InstalledRule {
    controller::Dpid dpid;
    openflow::FlowMod mod;  // as installed (used to build the delete)
  };

  struct InstalledGroup {
    controller::Dpid dpid;
    std::uint32_t group_id;
  };

  struct Record {
    IntentSpec spec;
    IntentState state = IntentState::Pending;
    std::vector<InstalledRule> rules;
    std::vector<InstalledGroup> groups;
    std::vector<topo::NodeId> path;         // forward (primary) path switches
    std::vector<topo::NodeId> backup_path;  // Protected kind only
    bool protected_active = false;          // backup actually installed
    // Virtual time this intent left Installed (or was submitted); feeds the
    // intent-convergence SLO when the next install lands. -1 = stable.
    double unstable_since_s = -1;
  };

  bool compile(IntentId id, Record& record);
  void mark_degraded(IntentId id);
  bool compile_direction(topo::PathEngine& engine, Record& record,
                         net::Ipv4Address src, net::Ipv4Address dst,
                         bool record_path);
  bool compile_protected(topo::PathEngine& engine, Record& record);
  bool compile_ban(Record& record);
  void install(IntentId id, Record& record);
  void remove_rules(Record& record);
  bool path_uses(const Record& record, controller::Dpid a, std::uint32_t a_port,
                 controller::Dpid b, std::uint32_t b_port) const;

  std::map<IntentId, Record> intents_;
  IntentId next_id_ = 1;
  std::map<controller::Dpid, std::uint32_t> next_group_id_;
  Stats stats_;
};

}  // namespace zen::intent
